// Experiment E2 — Table II of the paper: BLASTALL processing times on the
// DTV receiver (in use / standby) vs a reference PC, tests #1-12.
//
// The original hardware (ST7109 STB, Pentium Dual Core PC) and the exact
// BLAST inputs are unavailable. Reproduction strategy (see DESIGN.md):
//  * per-test problem sizes are calibrated so the modelled reference-PC
//    time (DP cells / reference throughput) matches the paper's PC-side
//    workload (paper STB-in-use / 20.6);
//  * the device model (in-use = 20.6x PC, standby = in-use / 1.65) then
//    produces the STB columns;
//  * the workload is REAL: every test also executes our seeded
//    local-alignment search on synthetic sequences of exactly those sizes,
//    and the measured host time is reported alongside (a seeded search is
//    sublinear in the matrix size, so it scales differently from the
//    modelled full-scan columns — both are shown).

#include <chrono>
#include <iostream>

#include "dtv/device_profile.hpp"
#include "util/table.hpp"
#include "workload/blast.hpp"
#include "workload/blast_tests.hpp"
#include "workload/sequence.hpp"

namespace {

double run_real_search(const oddci::workload::BlastTestSpec& spec,
                       std::uint64_t seed, std::uint64_t* hits,
                       std::uint64_t* cells) {
  using namespace oddci::workload;
  SequenceGenerator gen(seed);
  const std::string query = gen.random_dna(spec.query_length);
  auto sequences = gen.random_database(
      spec.db_sequences, std::max<std::size_t>(spec.avg_sequence_length / 2,
                                               12),
      spec.avg_sequence_length * 3 / 2);
  // Plant one homolog so the search has something to find, as a BLAST run
  // against a curated database would.
  sequences[sequences.size() / 2] =
      gen.mutate(query, 0.05, 0.005) + gen.random_dna(32);

  const auto t0 = std::chrono::steady_clock::now();
  BlastDatabase database(std::move(sequences), 11);
  BlastParams params;
  params.word_size = 11;
  const BlastResult result = blast_search(query, database, params);
  const auto t1 = std::chrono::steady_clock::now();
  *hits = result.hits.size();
  *cells = result.stats.cells;
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  using namespace oddci;
  using workload::kReferencePcCellsPerSecond;

  std::cout << "=== Table II: BLASTALL processing times, STB vs PC ===\n\n";

  const dtv::DeviceProfile stb = dtv::DeviceProfile::stb_st7109();
  const double in_use = stb.slowdown(dtv::PowerMode::kInUse);
  const double standby = stb.slowdown(dtv::PowerMode::kStandby);

  util::Table table({"#", "category", "qlen", "db residues",
                     "model PC (s)", "model STB in-use (s)",
                     "model STB standby (s)", "paper in-use (s)",
                     "paper standby (s)", "host seeded (s)", "host hits"});

  double ratio_sum = 0.0;
  int ratio_count = 0;
  for (const auto& spec : workload::table2_specs()) {
    const double pc = spec.reference_pc_seconds();
    const double stb_in_use = pc * in_use;
    const double stb_standby = pc * standby;

    std::uint64_t hits = 0, cells = 0;
    const double host = run_real_search(spec, 1000 + spec.id, &hits, &cells);

    table.add_row({util::Table::fmt_int(spec.id), spec.category,
                   util::Table::fmt_int(
                       static_cast<long long>(spec.query_length)),
                   util::Table::fmt_int(
                       static_cast<long long>(spec.db_residues())),
                   util::Table::fmt(pc, 3), util::Table::fmt(stb_in_use, 3),
                   util::Table::fmt(stb_standby, 3),
                   util::Table::fmt(spec.paper_stb_in_use_seconds, 3),
                   util::Table::fmt(spec.paper_stb_standby_seconds, 3),
                   util::Table::fmt(host, 4),
                   util::Table::fmt_int(static_cast<long long>(hits))});

    if (spec.paper_stb_in_use_seconds > 0.0) {
      ratio_sum += stb_in_use / spec.paper_stb_in_use_seconds;
      ++ratio_count;
    }
  }
  table.print(std::cout);

  const auto specs = workload::table2_specs();
  const double largest_hours =
      specs.back().reference_pc_seconds() * in_use / 3600.0;
  std::cout << "\nDevice model: STB in-use = " << in_use
            << "x reference PC; standby speedup = " << in_use / standby
            << "x (paper: 20.6x with <=10% error; 1.65x with <=17% error)\n"
            << "Reference-PC throughput assumed: "
            << kReferencePcCellsPerSecond / 1e6 << " Mcells/s\n"
            << "Largest test (#12) on STB in use: " << largest_hours
            << " h (paper: ~10.8 h)\n"
            << "Mean modelled/paper in-use ratio across tests: "
            << ratio_sum / ratio_count << " (1.0 = perfect)\n";
  return 0;
}

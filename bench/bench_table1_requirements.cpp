// Experiment E1 — Table I of the paper: which requirements (extremely high
// scalability, efficient setup, on-demand instantiation) each technology
// class meets. Regenerated from executable comparator models rather than
// transcribed: each model answers "how long to assemble N productive
// workers, with how many per-node interventions, and can the pool be
// retargeted on demand?", and a uniform judge converts the evidence into
// check marks.

#include <iostream>

#include "baseline/infrastructure.hpp"
#include "util/table.hpp"

int main() {
  using namespace oddci;

  std::cout << "=== Table I: Requirements vs Available Technologies ===\n\n";

  const auto models = baseline::default_models();
  const baseline::JudgeThresholds thresholds;

  util::Table evidence({"technology", "assemble 100 (s)", "assemble 1e6 (s)",
                        "interventions @1e6", "scale limit",
                        "retarget 1e4 (s)"});
  util::Table verdicts({"requirement", "Voluntary", "Desktop Grid", "IaaS",
                        "OddCI"});

  std::vector<baseline::RequirementVerdict> vs;
  for (const auto& model : models) {
    vs.push_back(baseline::judge(*model, thresholds));
    const auto& v = vs.back();
    auto fmt_or_dash = [](double x) {
      return x < 0 ? std::string("unreachable") : util::Table::fmt(x, 0);
    };
    evidence.add_row({v.technology, fmt_or_dash(v.assemble_1e2_seconds),
                      fmt_or_dash(v.assemble_1e6_seconds),
                      fmt_or_dash(v.interventions_1e6),
                      util::Table::fmt_int(
                          static_cast<long long>(model->scale_limit())),
                      util::Table::fmt(model->reconfigure_seconds(10'000),
                                       0)});
  }

  auto mark = [](bool b) { return b ? std::string("yes") : std::string("-"); };
  verdicts.add_row({"Extremely high scalability",
                    mark(vs[0].extremely_high_scalability),
                    mark(vs[1].extremely_high_scalability),
                    mark(vs[2].extremely_high_scalability),
                    mark(vs[3].extremely_high_scalability)});
  verdicts.add_row({"Efficient setup", mark(vs[0].efficient_setup),
                    mark(vs[1].efficient_setup), mark(vs[2].efficient_setup),
                    mark(vs[3].efficient_setup)});
  verdicts.add_row({"On-demand instantiation",
                    mark(vs[0].on_demand_instantiation),
                    mark(vs[1].on_demand_instantiation),
                    mark(vs[2].on_demand_instantiation),
                    mark(vs[3].on_demand_instantiation)});

  std::cout << "Evidence (model measurements):\n";
  evidence.print(std::cout);
  std::cout << "\nVerdicts (thresholds: reachable scale >= "
            << thresholds.scale_nodes << " nodes; zero-touch setup of "
            << thresholds.setup_probe_nodes << " nodes within "
            << thresholds.setup_seconds << " s):\n";
  verdicts.print(std::cout);
  std::cout << "\nPaper's Table I shape: every requirement met by some "
               "existing technology;\nonly OddCI meets all three.\n";
  return 0;
}

// Experiment E9 (ablation) — heartbeat load on the Controller. The paper
// notes that "millions of PNA may be simultaneously sending heartbeat
// messages to the Controller [so] the PNA must be appropriately configured
// ... so that the handling of these messages will not consume too much of
// the Controller's processing and networking resources" (Section 3.2), and
// leaves the mechanism to future work. This ablation quantifies the
// trade-off: heartbeat interval vs Controller message/bit load vs how fast
// lost members are detected (staleness latency).

#include <iostream>
#include <vector>

#include "bench_metrics.hpp"
#include "core/system.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace oddci;

struct LoadResult {
  double controller_msgs_per_second = 0.0;  ///< heartbeats or reports
  double controller_mbps = 0.0;
  double detection_seconds = -1.0;  ///< outage -> membership reflects it
};

LoadResult run(std::size_t population, double interval_s,
               std::size_t aggregators, std::uint64_t seed,
               obs::MetricsSnapshot* metrics_out = nullptr) {
  core::SystemConfig config;
  config.receivers = population;
  config.seed = seed;
  config.aggregators = aggregators;
  config.controller.default_heartbeat = sim::SimTime::from_seconds(interval_s);
  config.control.monitor_interval =
      sim::SimTime::from_seconds(std::max(10.0, interval_s / 2.0));
  config.control.overshoot_margin = 1.3;
  core::OddciSystem system(config);
  system.controller().deploy_pna();
  // Warm-up: let every PNA launch and start heartbeating.
  system.simulation().run_until(sim::SimTime::from_seconds(90));

  core::InstanceSpec spec;
  spec.name = "hb-ablation";
  spec.target_size = population / 2;
  spec.image_size = util::Bits::from_megabytes(1);
  spec.heartbeat_interval = config.controller.default_heartbeat;
  const auto id =
      system.provider().request_instance(spec, system.backend().node_id());
  system.simulation().run_until(sim::SimTime::from_minutes(10));

  // Measure steady-state Controller-side load over 10 simulated minutes.
  auto controller_msgs = [&] {
    return system.controller().stats().heartbeats_received +
           system.controller().stats().aggregate_reports_received;
  };
  const auto msg0 = controller_msgs();
  const auto bits0 = system.network().stats().bits_sent;
  system.simulation().run_until(system.simulation().now() +
                                sim::SimTime::from_minutes(10));
  const auto msg1 = controller_msgs();
  const auto bits1 = system.network().stats().bits_sent;

  LoadResult result;
  result.controller_msgs_per_second =
      static_cast<double>(msg1 - msg0) / 600.0;
  result.controller_mbps =
      static_cast<double>(bits1 - bits0) / 600.0 / 1e6;

  // Outage detection: kill 25% of the population, measure how long the
  // Controller takes to reflect the loss in the instance size.
  const std::size_t before = system.controller().status(id)->current_size;
  const auto& receivers = system.receivers();
  for (std::size_t i = 0; i < receivers.size(); i += 4) {
    receivers[i]->set_power_mode(dtv::PowerMode::kOff);
  }
  const sim::SimTime outage = system.simulation().now();
  while (system.simulation().now() - outage < sim::SimTime::from_hours(2)) {
    system.simulation().run_until(system.simulation().now() +
                                  sim::SimTime::from_seconds(10));
    if (system.controller().status(id)->current_size <
        before - before / 8) {
      result.detection_seconds =
          (system.simulation().now() - outage).seconds();
      break;
    }
  }
  if (metrics_out != nullptr) *metrics_out = system.metrics_snapshot();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Ablation: heartbeat interval vs Controller load and "
               "failure-detection latency ===\n\n";

  struct Case {
    std::size_t population;
    double interval_s;
    std::size_t aggregators;
  };
  const std::vector<Case> cases = {
      {500, 10, 0},  {500, 30, 0},  {500, 60, 0},  {500, 120, 0},
      {2000, 30, 0}, {2000, 120, 0}, {5000, 30, 0}, {5000, 120, 0},
      // The aggregation tier (paper future work): same populations,
      // Controller sees k reports per window instead of N heartbeats.
      {2000, 30, 8}, {5000, 30, 8}, {5000, 30, 32},
  };

  util::Table table({"PNAs", "interval (s)", "aggregators", "ctrl msgs/s",
                     "ctrl traffic (Mbps)", "loss detected in (s)",
                     "extrapolated msgs/s @1e6 nodes"});

  util::ThreadPool pool;
  // The first case doubles as the metrics capture for the bench's
  // machine-readable output files (heartbeat rate series in particular).
  obs::MetricsSnapshot captured;
  std::vector<std::future<LoadResult>> futures;
  for (const auto& c : cases) {
    obs::MetricsSnapshot* out = futures.empty() ? &captured : nullptr;
    futures.push_back(pool.submit([c, out] {
      return run(c.population, c.interval_s, c.aggregators, 555, out);
    }));
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const LoadResult r = futures[i].get();
    // Direct reporting scales with N; aggregated reporting does not (the
    // report *size* grows instead).
    const double extrapolated =
        cases[i].aggregators == 0
            ? r.controller_msgs_per_second * 1e6 /
                  static_cast<double>(cases[i].population)
            : r.controller_msgs_per_second;
    table.add_row(
        {util::Table::fmt_int(static_cast<long long>(cases[i].population)),
         util::Table::fmt(cases[i].interval_s, 0),
         util::Table::fmt_int(static_cast<long long>(cases[i].aggregators)),
         util::Table::fmt(r.controller_msgs_per_second, 1),
         util::Table::fmt(r.controller_mbps, 3),
         r.detection_seconds < 0 ? "not detected"
                                 : util::Table::fmt(r.detection_seconds, 0),
         util::Table::fmt(extrapolated, 0)});
  }
  table.print(std::cout);

  std::cout << "\nShape: direct heartbeat load scales as N/interval — the"
               " paper's future-work concern\nis real (1e6 nodes at 30 s"
               " interval is ~33k messages/s at the Controller). The\n"
               "aggregation tier caps the Controller's message rate at"
               " k/window regardless of N,\ntrading a small report-latency"
               " penalty in failure detection.\n";

  if (bench::metrics_enabled(argc, argv)) {
    bench::write_metrics("bench_ablation_heartbeat", captured);
  }
  return 0;
}

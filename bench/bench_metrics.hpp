#pragma once

#include <unistd.h>

#include <iostream>
#include <string>
#include <thread>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

/// Shared metrics-file emission for the bench binaries. Each bench captures
/// one representative run's MetricsSnapshot and writes it next to its stdout
/// tables — `<bench>_metrics.json` (full snapshot, schema oddci.metrics.v1)
/// plus `<bench>_series.csv` (time series only, long format) — so the
/// exporter wiring is exercised on every bench run and the trajectory has
/// machine-readable output. Pass `--no-metrics` to suppress the files.
namespace oddci::bench {

/// One-line JSON host descriptor shared by every BENCH_*.json writer —
/// wall-clock numbers only mean anything relative to the machine that
/// produced them, so each file records it next to the measurements.
inline std::string host_json() {
  std::string out = "{\"hardware_concurrency\": ";
  out += std::to_string(std::thread::hardware_concurrency());
  out += ", \"page_size\": ";
  out += std::to_string(sysconf(_SC_PAGESIZE));
  out += ", \"os\": \"";
#if defined(__linux__)
  out += "linux";
#elif defined(__APPLE__)
  out += "darwin";
#else
  out += "unknown";
#endif
  out += "\"}";
  return out;
}

inline bool metrics_enabled(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--no-metrics") return false;
  }
  return true;
}

/// Write `<stem>_metrics.json` and `<stem>_series.csv` from `snapshot`.
/// An empty snapshot (obs disabled or the capture run never executed) is
/// still written: the schema header alone is useful to the trajectory.
inline void write_metrics(const std::string& stem,
                          const obs::MetricsSnapshot& snapshot) {
  const std::string json_path = stem + "_metrics.json";
  const std::string csv_path = stem + "_series.csv";
  obs::write_json(json_path, snapshot);
  obs::write_series_csv(csv_path, snapshot);
  std::cout << "\nwrote " << json_path << " (" << snapshot.counters.size()
            << " counters, " << snapshot.series.size() << " series) and "
            << csv_path << "\n";
}

}  // namespace oddci::bench

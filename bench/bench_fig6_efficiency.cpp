// Experiment E5 — Figure 6 of the paper: efficiency E of an OddCI-DTV
// instance as a function of the application suitability Phi, for
// n/N in {1, 10, 100, 1000}, with (s+r) = 1 KB, I = 10 MB, beta = 1 Mbps,
// delta = 150 Kbps.
//
// Prints the full analytical curve family (Eq. 2) and, for a subset of
// points, the efficiency measured by running the job end-to-end in the
// discrete-event simulation (N = 50 reference set-top boxes).

#include <cmath>
#include <iostream>
#include <map>
#include <vector>

#include "analytical/models.hpp"
#include "bench_metrics.hpp"
#include "core/system.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/job.hpp"

namespace {

using namespace oddci;

constexpr std::size_t kSimNodes = 50;
const util::Bits kImage = util::Bits::from_megabytes(10);
const util::Bits kPayload = util::Bits::from_kilobytes(1);

analytical::JobModel job_model(double phi, std::size_t n) {
  analytical::SystemModel sm;
  analytical::JobModel jm;
  jm.n = n;
  jm.s_bits = kPayload.count() / 2.0;
  jm.r_bits = kPayload.count() / 2.0;
  jm.p_seconds =
      analytical::task_seconds_for_suitability(
          static_cast<double>(kPayload.count()), sm.delta, phi);
  jm.image = kImage;
  return jm;
}

double simulate_efficiency(double phi, std::size_t ratio, std::uint64_t seed,
                           obs::MetricsSnapshot* metrics_out = nullptr) {
  analytical::SystemModel sm;
  core::SystemConfig config;
  config.receivers = 3 * kSimNodes;
  config.seed = seed;
  config.control.overshoot_margin = 1.3;
  // For very long jobs (high phi), thin out heartbeats so the event count
  // stays bounded; the protocol tolerates any interval.
  const double est_makespan =
      analytical::makespan_seconds(sm, job_model(phi, ratio * kSimNodes),
                                   kSimNodes);
  config.controller.default_heartbeat = sim::SimTime::from_seconds(
      std::max(30.0, est_makespan / 500.0));
  config.control.monitor_interval = config.controller.default_heartbeat;

  core::OddciSystem system(config);
  const workload::Job job = workload::make_job_for_suitability(
      "fig6", kImage, ratio * kSimNodes, kPayload,
      config.delta, phi);
  const auto result = system.run_job(
      job, kSimNodes,
      sim::SimTime::from_seconds(est_makespan * 4.0 + 3600.0));
  if (metrics_out != nullptr) *metrics_out = result.metrics;
  if (!result.completed) return -1.0;
  return result.efficiency(job.task_count(), job.avg_reference_seconds(),
                           kSimNodes);
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Figure 6: efficiency vs suitability Phi ===\n"
            << "(s+r) = 1 KB, I = 10 MB, beta = 1 Mbps, delta = 150 Kbps\n\n";

  analytical::SystemModel sm;
  const std::vector<std::size_t> ratios = {1, 10, 100, 1000};
  std::vector<double> phis;
  for (double e = 0.0; e <= 5.0; e += 0.5) phis.push_back(std::pow(10.0, e));

  util::Table analytic({"Phi", "task p (s)", "E n/N=1", "E n/N=10",
                        "E n/N=100", "E n/N=1000"});
  for (double phi : phis) {
    std::vector<std::string> row;
    row.push_back(util::Table::fmt(phi, phi < 10 ? 1 : 0));
    row.push_back(util::Table::fmt(
        analytical::task_seconds_for_suitability(
            static_cast<double>(kPayload.count()), sm.delta, phi),
        4));
    for (std::size_t ratio : ratios) {
      const double e = analytical::efficiency(
          sm, job_model(phi, ratio * 100), 100);
      row.push_back(util::Table::fmt(e, 4));
    }
    analytic.add_row(row);
  }
  std::cout << "Analytical (Eq. 2):\n";
  analytic.print(std::cout);

  // Simulated subset: full ratio family at a few Phi values (the largest
  // phi x ratio combinations are hours of simulated time; keep the sweep
  // in seconds of wall clock).
  struct SimPoint {
    double phi;
    std::size_t ratio;
  };
  const std::vector<SimPoint> sim_points = {
      {1.0, 1},    {1.0, 10},   {1.0, 100},  {10.0, 1},  {10.0, 10},
      {10.0, 100}, {100.0, 1},  {100.0, 10}, {100.0, 100},
      {1000.0, 10}, {1000.0, 100},
  };

  util::ThreadPool pool;
  // The first simulated point's run_job also captures its RunResult
  // metrics for the bench's machine-readable output files.
  obs::MetricsSnapshot captured;
  std::vector<std::future<double>> futures;
  for (const auto& p : sim_points) {
    obs::MetricsSnapshot* out = futures.empty() ? &captured : nullptr;
    futures.push_back(pool.submit(
        [p, out] { return simulate_efficiency(p.phi, p.ratio, 4242, out); }));
  }

  util::Table simulated({"Phi", "n/N", "E analytical", "E simulated"});
  for (std::size_t i = 0; i < sim_points.size(); ++i) {
    const auto& p = sim_points[i];
    const double analytical_e = analytical::efficiency(
        sm, job_model(p.phi, p.ratio * kSimNodes), kSimNodes);
    const double sim_e = futures[i].get();
    simulated.add_row({util::Table::fmt(p.phi, 0),
                       util::Table::fmt_int(static_cast<long long>(p.ratio)),
                       util::Table::fmt(analytical_e, 4),
                       sim_e < 0 ? "timeout" : util::Table::fmt(sim_e, 4)});
  }
  std::cout << "\nSimulated (discrete-event, N = " << kSimNodes << "):\n";
  simulated.print(std::cout);

  std::cout << "\nShape checks (paper): E rises with Phi; larger n/N shifts"
               " the knee left;\nn/N >= 100 yields very high efficiency for"
               " most practical applications.\n";

  if (bench::metrics_enabled(argc, argv)) {
    bench::write_metrics("bench_fig6_efficiency", captured);
  }
  return 0;
}

// Broadcast fan-out + heartbeat-storm microbench for the fan-out fast
// path (verify-once control messages, shared decoded broadcasts, pooled
// heartbeat messages).
//
// Scenario, per population and per mode (fast path on / off — the off mode
// is the pre-fast-path behaviour kept in-tree as the A/B baseline):
//
//  1. Fan-out phase: deploy the PNA. One signed control message reaches
//     every receiver; the whole population decodes + verifies it (once per
//     receiver in baseline mode, once per *broadcast* in fast mode).
//  2. Storm phase: the population heartbeats at a 10 s cadence through the
//     aggregation tier for 10 simulated minutes (the allocation hot path:
//     one HeartbeatMessage per beat in baseline mode, a recycled pool slot
//     in fast mode).
//
// Both modes execute the identical event trajectory (asserted by the
// fanout_ab integration test), so wall-clock ratios are pure hot-path
// cost. Output: human table on stdout, BENCH_fanout.json shape via
// --json <path>. --quick shrinks to one small population for CI smoke.
//
// --byzantine replaces the sweep with the verification-overhead point:
// the byzantine_10pct acceptance scenario (100k receivers, 10% forgers,
// 5% free-riders, one colluding trio, on top of the crash/omission fault
// matrix) run twice — once with an honest population and the verifier
// off (the baseline dispatch bill), once defended (2-way sequential
// quorum + spot checks + reputation ledger). The JSON gains a
// "byzantine" section recording both bills and the overhead ratio the
// acceptance criterion bounds at 2.5x.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_metrics.hpp"
#include "core/system.hpp"

namespace {

using namespace oddci;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Current (not peak) resident set, from /proc/self/statm. Deltas around a
// run approximate its footprint; the allocator may retain freed pages, so
// treat them as indicative, not exact (see "rss_note" in the JSON).
double current_rss_mb() {
  std::ifstream statm("/proc/self/statm");
  std::uint64_t total_pages = 0;
  std::uint64_t resident_pages = 0;
  if (!(statm >> total_pages >> resident_pages)) return 0.0;
  return static_cast<double>(resident_pages) * 4096.0 / (1024.0 * 1024.0);
}

struct Point {
  std::size_t receivers = 0;
  std::size_t shards = 1;
  bool fast_path = false;
  core::HeartbeatMode hb_mode = core::HeartbeatMode::kNaive;
  double fanout_wall_s = 0.0;
  double storm_wall_s = 0.0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t events_executed = 0;
  double rss_delta_mb = 0.0;
  std::uint64_t controls_seen = 0;
  std::uint64_t verify_hits = 0;
  std::uint64_t verify_misses = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t pool_reused = 0;
  std::uint64_t pool_allocated = 0;
  std::uint64_t pooled_bytes = 0;
  std::uint64_t report_bytes_ingested = 0;
  double controller_tick_wall_s = 0.0;
};

const char* hb_mode_name(core::HeartbeatMode m) {
  return m == core::HeartbeatMode::kDelta ? "delta" : "naive";
}

// One run of the byzantine acceptance scenario (--byzantine), either as
// the honest baseline (adversaries off, verifier off: what the dispatch
// bill looks like when every PNA is honest under the same fault matrix)
// or defended (10%/5%/trio adversaries with the full verify pipeline).
struct ByzPoint {
  std::size_t receivers = 0;
  std::size_t shards = 1;
  bool defended = false;
  double wall_seconds = 0.0;
  bool completed = false;
  std::uint64_t assignments = 0;       ///< job-level task dispatches
  std::uint64_t tasks_verified = 0;
  std::uint64_t wrong_results = 0;
  std::uint64_t dispatched = 0;        ///< verify replica dispatches
  std::uint64_t spot_dispatched = 0;
  std::uint64_t outvoted = 0;
  std::uint64_t escalations = 0;
  std::uint64_t implausible_returns = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t trusted_promotions = 0;
};

// Mirrors examples/scenarios/byzantine_10pct.cfg and the byzantine_replay
// integration test so the three surfaces track the same acceptance point.
core::SystemConfig byzantine_config(std::size_t shards, bool defended) {
  core::SystemConfig config;
  config.receivers = 100'000;
  config.channels = 4;
  config.aggregators = 16;
  config.seed = 20260809;
  config.control.overshoot_margin = 1.3;
  config.shards = shards;
  config.fault.enabled = true;
  config.fault.message_loss = 0.01;
  config.fault.message_duplication = 0.01;
  config.fault.latency_spike_probability = 0.005;
  config.fault.pna_crashes_per_hour = 20.0;
  config.fault.pna_hangs_per_hour = 10.0;
  if (defended) {
    config.fault.byzantine_forger_fraction = 0.10;
    config.fault.byzantine_freerider_fraction = 0.05;
    config.fault.byzantine_collusion_size = 3;
    config.verify.enabled = true;
    config.verify.redundancy = 2;
    config.verify.spot_check_rate = 0.02;
    config.verify.min_observations = 6;
    config.verify.ewma_alpha = 0.3;
    config.verify.parole_failure_limit = 2;
  }
  return config;
}

ByzPoint run_byzantine_point(std::size_t shards, bool defended) {
  ByzPoint p;
  p.shards = shards;
  p.defended = defended;

  const auto t0 = Clock::now();
  core::OddciSystem system(byzantine_config(shards, defended));
  p.receivers = 100'000;
  const auto job = workload::make_uniform_job(
      "byzantine-bench", util::Bits::from_megabytes(2), 400,
      util::Bits::from_bytes(512), util::Bits::from_bytes(512), 10.0);
  const auto result = system.run_job(job, 100);
  p.wall_seconds = seconds_since(t0);

  p.completed = result.completed;
  p.assignments = result.job.assignments;
  if (const core::Verifier* verifier = system.verifier()) {
    const auto s = verifier->stats();
    p.tasks_verified = s.tasks_verified;
    p.wrong_results = s.wrong_results;
    p.dispatched = s.dispatched;
    p.spot_dispatched = s.spot_dispatched;
    p.outvoted = s.outvoted;
    p.escalations = s.escalations;
    p.implausible_returns = s.implausible_returns;
    p.quarantines = s.quarantines;
    p.trusted_promotions = s.trusted_promotions;
  }
  return p;
}

void print_byz_point(const ByzPoint& p) {
  std::printf("%-8s | %7.2f | %11llu | %8llu | %5llu | %8llu | %4llu | %11llu | %7llu\n",
              p.defended ? "defended" : "honest", p.wall_seconds,
              static_cast<unsigned long long>(p.assignments),
              static_cast<unsigned long long>(p.tasks_verified),
              static_cast<unsigned long long>(p.wrong_results),
              static_cast<unsigned long long>(p.dispatched),
              static_cast<unsigned long long>(p.spot_dispatched),
              static_cast<unsigned long long>(p.quarantines),
              static_cast<unsigned long long>(p.trusted_promotions));
}

void write_byz_json(std::ostream& out, const std::vector<ByzPoint>& byz) {
  out << "  \"byzantine\": {\n"
      << "    \"scenario\": {\"receivers\": 100000, \"channels\": 4, "
      << "\"aggregators\": 16, \"seed\": 20260809, \"tasks\": 400, "
      << "\"task_seconds\": 10, \"forgers\": 0.10, \"freeriders\": 0.05, "
      << "\"collusion\": 3, \"redundancy\": 2, \"spot_check_rate\": 0.02},\n"
      << "    \"points\": [\n";
  for (std::size_t i = 0; i < byz.size(); ++i) {
    const auto& p = byz[i];
    out << "      {\"mode\": \"" << (p.defended ? "defended" : "honest")
        << "\", \"shards\": " << p.shards
        << ", \"wall_seconds\": " << p.wall_seconds
        << ", \"completed\": " << (p.completed ? "true" : "false")
        << ", \"assignments\": " << p.assignments
        << ", \"tasks_verified\": " << p.tasks_verified
        << ", \"wrong_results\": " << p.wrong_results
        << ", \"replica_dispatches\": " << p.dispatched
        << ", \"spot_dispatches\": " << p.spot_dispatched
        << ", \"outvoted\": " << p.outvoted
        << ", \"escalations\": " << p.escalations
        << ", \"implausible_returns\": " << p.implausible_returns
        << ", \"quarantines\": " << p.quarantines
        << ", \"trusted_promotions\": " << p.trusted_promotions << "}"
        << (i + 1 < byz.size() ? "," : "") << "\n";
  }
  out << "    ]";
  // The acceptance ratio: the defended run's full verification bill
  // (replicas + spot checks) over the honest baseline's dispatch bill.
  const ByzPoint* honest = nullptr;
  const ByzPoint* defended = nullptr;
  for (const auto& p : byz) (p.defended ? defended : honest) = &p;
  if (honest != nullptr && defended != nullptr && honest->assignments > 0) {
    out << ",\n    \"overhead_vs_honest\": "
        << static_cast<double>(defended->dispatched +
                               defended->spot_dispatched) /
               static_cast<double>(honest->assignments)
        << ",\n    \"overhead_bound\": 2.5";
  }
  out << "\n  },\n";
}

Point run_point(std::size_t receivers, bool fast_path, std::size_t shards,
                core::HeartbeatMode hb_mode) {
  Point point;
  point.receivers = receivers;
  point.shards = shards;
  point.fast_path = fast_path;
  point.hb_mode = hb_mode;

  core::SystemConfig config;
  config.receivers = receivers;
  config.channels = 8;
  config.aggregators = 16;
  config.seed = 99;
  config.controller.default_heartbeat = sim::SimTime::from_seconds(10);
  config.fanout_fast_path = fast_path;
  config.shards = shards;
  config.heartbeat.mode = hb_mode;

  const double rss_before = current_rss_mb();
  const auto t0 = Clock::now();
  core::OddciSystem system(config);

  // Phase 1: one broadcast fans out to the whole population.
  system.controller().deploy_pna();
  system.kernel().run_until(sim::SimTime::from_seconds(120));
  point.fanout_wall_s = seconds_since(t0);

  // Phase 2: heartbeat storm through the aggregation tier.
  const auto storm0 = Clock::now();
  system.kernel().run_until(sim::SimTime::from_seconds(120 + 600));
  point.storm_wall_s = seconds_since(storm0);

  point.wall_seconds = seconds_since(t0);
  point.rss_delta_mb = current_rss_mb() - rss_before;
  point.events_executed = system.kernel().events_executed();
  point.events_per_sec =
      static_cast<double>(point.events_executed) / point.wall_seconds;

  const auto snap = system.metrics_snapshot();
  point.controls_seen = snap.counter_value("pna.control_messages_seen");
  point.verify_hits = snap.counter_value("verify_cache.hit");
  point.verify_misses = snap.counter_value("verify_cache.miss");
  point.heartbeats = snap.counter_value("pna.heartbeats_sent");
  point.pool_reused = snap.counter_value("heartbeat.pool_reused");
  point.pool_allocated = snap.counter_value("heartbeat.pool_allocated");
  point.pooled_bytes = snap.counter_value("heartbeat.pooled_bytes");
  point.report_bytes_ingested = system.controller().report_bytes_ingested();
  point.controller_tick_wall_s = system.controller().monitor_wall_seconds();
  return point;
}

void print_point(const Point& p) {
  std::printf("%9zu | %-8s | %-5s | %8.2f | %8.2f | %8.3g | %7.1f | %s\n",
              p.receivers, p.fast_path ? "fast" : "baseline",
              hb_mode_name(p.hb_mode), p.fanout_wall_s, p.storm_wall_s,
              p.events_per_sec, p.rss_delta_mb,
              ("ingest " + std::to_string(p.report_bytes_ingested / 1024) +
               " KiB" +
               (p.fast_path ? ", pool " + std::to_string(p.pool_reused) + "r"
                            : std::string()))
                  .c_str());
}

void write_json(const std::string& path, const std::vector<Point>& points,
                const std::vector<ByzPoint>& byz) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"fanout\",\n"
      << "  \"host\": " << oddci::bench::host_json() << ",\n"
      << "  \"scenario\": {\"channels\": 8, \"aggregators\": 16, "
      << "\"seed\": 99, \"heartbeat_s\": 10, \"fanout_sim_s\": 120, "
      << "\"storm_sim_s\": 600},\n";
  if (!byz.empty()) write_byz_json(out, byz);
  out
      << "  \"rss_note\": \"rss_delta_mb is current-RSS growth across the "
      << "run (from /proc/self/statm); the allocator may retain freed "
      << "pages from earlier points in the same process, so deltas are "
      << "indicative, not exact\",\n"
      << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    out << "    {\"receivers\": " << p.receivers
        << ", \"shards\": " << p.shards << ", \"mode\": \""
        << (p.fast_path ? "fast" : "baseline") << "\""
        << ", \"heartbeat_mode\": \"" << hb_mode_name(p.hb_mode) << "\""
        << ", \"fanout_wall_s\": " << p.fanout_wall_s
        << ", \"storm_wall_s\": " << p.storm_wall_s
        << ", \"wall_seconds\": " << p.wall_seconds
        << ", \"events_executed\": " << p.events_executed
        << ", \"events_per_sec\": " << p.events_per_sec
        << ", \"rss_delta_mb\": " << p.rss_delta_mb
        << ", \"controls_seen\": " << p.controls_seen
        << ", \"verify_hits\": " << p.verify_hits
        << ", \"verify_misses\": " << p.verify_misses
        << ", \"heartbeats_sent\": " << p.heartbeats
        << ", \"pool_reused\": " << p.pool_reused
        << ", \"pool_allocated\": " << p.pool_allocated
        << ", \"pooled_bytes\": " << p.pooled_bytes
        << ", \"report_bytes_ingested\": " << p.report_bytes_ingested
        << ", \"controller_tick_wall_s\": " << p.controller_tick_wall_s
        << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  // Fast-path A/B within each heartbeat mode.
  out << "  ],\n  \"speedups\": [\n";
  bool first = true;
  for (const auto& base : points) {
    if (base.fast_path) continue;
    for (const auto& fast : points) {
      if (!fast.fast_path || fast.receivers != base.receivers ||
          fast.hb_mode != base.hb_mode) {
        continue;
      }
      if (!first) out << ",\n";
      first = false;
      out << "    {\"receivers\": " << base.receivers
          << ", \"heartbeat_mode\": \"" << hb_mode_name(base.hb_mode) << "\""
          << ", \"wall_speedup\": " << base.wall_seconds / fast.wall_seconds
          << ", \"storm_speedup\": " << base.storm_wall_s / fast.storm_wall_s
          << "}";
    }
  }
  // Naive-vs-delta at the same fast-path setting: the O(changes) return
  // channel's win in ingested report bytes, Controller tick wall time and
  // storm wall time.
  out << "\n  ],\n  \"delta_speedups\": [\n";
  first = true;
  for (const auto& naive : points) {
    if (naive.hb_mode != core::HeartbeatMode::kNaive) continue;
    for (const auto& delta : points) {
      if (delta.hb_mode != core::HeartbeatMode::kDelta ||
          delta.receivers != naive.receivers ||
          delta.fast_path != naive.fast_path) {
        continue;
      }
      if (!first) out << ",\n";
      first = false;
      out << "    {\"receivers\": " << naive.receivers << ", \"mode\": \""
          << (naive.fast_path ? "fast" : "baseline") << "\""
          << ", \"ingest_bytes_ratio\": "
          << (delta.report_bytes_ingested > 0
                  ? static_cast<double>(naive.report_bytes_ingested) /
                        static_cast<double>(delta.report_bytes_ingested)
                  : 0.0)
          << ", \"tick_speedup\": "
          << (delta.controller_tick_wall_s > 0.0
                  ? naive.controller_tick_wall_s / delta.controller_tick_wall_s
                  : 0.0)
          << ", \"storm_speedup\": " << naive.storm_wall_s / delta.storm_wall_s
          << ", \"wall_speedup\": " << naive.wall_seconds / delta.wall_seconds
          << "}";
    }
  }
  out << "\n  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string hb_arg = "naive";
  bool quick = false;
  bool byzantine = false;
  std::size_t shards = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    if (arg == "--quick") quick = true;
    if (arg == "--byzantine") byzantine = true;
    if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::stoull(argv[++i]));
    }
    if (arg == "--heartbeat-mode" && i + 1 < argc) hb_arg = argv[++i];
  }
  if (hb_arg != "naive" && hb_arg != "delta" && hb_arg != "both") {
    std::cerr << "--heartbeat-mode must be naive, delta or both\n";
    return 2;
  }

  if (byzantine) {
    std::cout << "== Byzantine verification bill: honest baseline vs "
              << "defended adversarial population (100k receivers, "
              << "400 tasks) ==\n";
    std::cout << "mode     | wall s  | assignments | verified | wrong | "
              << "replicas | spot | quarantines | trusted\n";
    std::vector<ByzPoint> byz;
    byz.push_back(run_byzantine_point(shards, /*defended=*/false));
    print_byz_point(byz.back());
    byz.push_back(run_byzantine_point(shards, /*defended=*/true));
    print_byz_point(byz.back());
    const double overhead =
        static_cast<double>(byz[1].dispatched + byz[1].spot_dispatched) /
        static_cast<double>(byz[0].assignments);
    std::printf(
        "defended bill %.2fx honest baseline (%llu replica + %llu spot "
        "dispatches vs %llu honest assignments), %llu wrong results\n",
        overhead, static_cast<unsigned long long>(byz[1].dispatched),
        static_cast<unsigned long long>(byz[1].spot_dispatched),
        static_cast<unsigned long long>(byz[0].assignments),
        static_cast<unsigned long long>(byz[1].wrong_results));
    if (!json_path.empty()) {
      write_json(json_path, {}, byz);
      std::cout << "wrote " << json_path << "\n";
    }
    return 0;
  }

  const std::vector<std::size_t> populations =
      quick ? std::vector<std::size_t>{10'000}
            : std::vector<std::size_t>{100'000, 1'000'000};

  std::cout << "== Broadcast fan-out + heartbeat storm: baseline "
            << "(per-receiver verify, per-beat allocation) vs fast path ==\n";
  std::cout << "receivers | mode     | hb    | fanout s | storm s  | ev/s    "
            << " | dRSS MB | counters\n";
  // Sweep, per population:
  //  naive / delta : {baseline, fast} in the requested encoding;
  //  both          : the naive A/B pair plus one fast+delta point — the
  //                  direct naive-vs-delta comparison at the same
  //                  fast-path setting (delta_speedups in the JSON).
  struct Cell {
    bool fast;
    core::HeartbeatMode mode;
  };
  std::vector<Cell> cells;
  if (hb_arg == "naive" || hb_arg == "both") {
    cells.push_back({false, core::HeartbeatMode::kNaive});
    cells.push_back({true, core::HeartbeatMode::kNaive});
  }
  if (hb_arg == "delta") {
    cells.push_back({false, core::HeartbeatMode::kDelta});
  }
  if (hb_arg == "delta" || hb_arg == "both") {
    cells.push_back({true, core::HeartbeatMode::kDelta});
  }
  std::vector<Point> points;
  for (const auto receivers : populations) {
    // Baseline first, then fast. Note the ordering caveat: the allocator
    // is warm with pages the baseline point freed, which can understate
    // the fast point's RSS delta (see rss_note in the JSON).
    for (const Cell& cell : cells) {
      points.push_back(run_point(receivers, cell.fast, shards, cell.mode));
      print_point(points.back());
    }
  }

  for (const auto& base : points) {
    if (base.fast_path) continue;
    for (const auto& fast : points) {
      if (!fast.fast_path || fast.receivers != base.receivers ||
          fast.hb_mode != base.hb_mode) {
        continue;
      }
      std::printf("%9zu receivers (%s): wall %.2fx, storm %.2fx\n",
                  base.receivers, hb_mode_name(base.hb_mode),
                  base.wall_seconds / fast.wall_seconds,
                  base.storm_wall_s / fast.storm_wall_s);
    }
  }
  for (const auto& naive : points) {
    if (naive.hb_mode != core::HeartbeatMode::kNaive) continue;
    for (const auto& delta : points) {
      if (delta.hb_mode != core::HeartbeatMode::kDelta ||
          delta.receivers != naive.receivers ||
          delta.fast_path != naive.fast_path) {
        continue;
      }
      std::printf(
          "%9zu receivers naive->delta: ingest %.1fx fewer bytes, "
          "storm %.2fx, tick %.2fx\n",
          naive.receivers,
          delta.report_bytes_ingested > 0
              ? static_cast<double>(naive.report_bytes_ingested) /
                    static_cast<double>(delta.report_bytes_ingested)
              : 0.0,
          naive.storm_wall_s / delta.storm_wall_s,
          delta.controller_tick_wall_s > 0.0
              ? naive.controller_tick_wall_s / delta.controller_tick_wall_s
              : 0.0);
    }
  }

  if (!json_path.empty()) {
    write_json(json_path, points, {});
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

// Experiment E11 (extension) — the diurnal capacity rhythm of a TV
// audience. The paper's vision statement ("millions of underutilized
// devices") implicitly depends on when you ask: at prime time most powered
// boxes are in use (slow, 20.6x the PC); in the small hours they idle in
// standby (1.65x faster) or are off. This bench drives a 24 h audience
// model and measures (a) hourly capacity and (b) the makespan of the same
// job launched at prime time vs. at night.

#include <iostream>

#include "core/churn.hpp"
#include "core/system.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/job.hpp"

namespace {

using namespace oddci;

constexpr std::size_t kReceivers = 800;

core::SystemConfig base_config(std::uint64_t seed) {
  core::SystemConfig config;
  config.receivers = kReceivers;
  config.profile = dtv::DeviceProfile::stb_st7109();
  config.initial_power = dtv::PowerMode::kStandby;
  config.control.overshoot_margin = 1.3;
  config.seed = seed;
  return config;
}

/// Aggregate compute capacity in reference-PC equivalents.
double capacity_pc_equivalents(const core::OddciSystem& system) {
  double capacity = 0.0;
  for (const auto& receiver : system.receivers()) {
    if (!receiver->powered()) continue;
    capacity += 1.0 / receiver->profile().slowdown(receiver->power_mode());
  }
  return capacity;
}

double run_job_at_hour(double launch_hour, std::uint64_t seed) {
  core::OddciSystem system(base_config(seed));
  std::vector<dtv::Receiver*> raw;
  for (const auto& r : system.receivers()) raw.push_back(r.get());
  core::DiurnalAudience audience(system.simulation(), std::move(raw),
                                 seed * 7 + 1, core::DiurnalOptions{});
  // Simulation starts at simulated noon; deploy and settle, then wait
  // until the requested launch hour.
  audience.start(/*start_hour=*/12.0);
  system.controller().deploy_pna();
  const double wait_hours =
      launch_hour >= 12.0 ? launch_hour - 12.0 : launch_hour + 12.0;
  system.simulation().run_until(system.simulation().now() +
                                sim::SimTime::from_hours(wait_hours));

  const workload::Job job = workload::make_uniform_job(
      "diurnal", util::Bits::from_megabytes(4), 2000,
      util::Bits::from_bytes(512), util::Bits::from_bytes(512),
      /*reference PC seconds=*/10.0);
  const auto result =
      system.run_job(job, 150, sim::SimTime::from_hours(48));
  return result.completed ? result.makespan_seconds : -1.0;
}

}  // namespace

int main() {
  std::cout << "=== Diurnal audience: capacity rhythm and launch timing ===\n"
            << "(" << kReceivers << " ST7109 STBs, personal daily viewing "
               "schedules)\n\n";

  // (a) Hourly population profile over 24 h.
  core::OddciSystem system(base_config(2026));
  std::vector<dtv::Receiver*> raw;
  for (const auto& r : system.receivers()) raw.push_back(r.get());
  core::DiurnalAudience audience(system.simulation(), std::move(raw), 11,
                                 core::DiurnalOptions{});
  audience.start(/*start_hour=*/0.0);

  util::Table profile({"hour", "in use", "standby", "off",
                       "capacity (PC-equivalents)"});
  for (int hour = 0; hour < 24; hour += 2) {
    system.simulation().run_until(sim::SimTime::from_hours(hour));
    profile.add_row(
        {util::Table::fmt_int(hour),
         util::Table::fmt_int(
             static_cast<long long>(audience.in_use_count())),
         util::Table::fmt_int(
             static_cast<long long>(audience.standby_count())),
         util::Table::fmt_int(static_cast<long long>(audience.off_count())),
         util::Table::fmt(capacity_pc_equivalents(system), 1)});
  }
  profile.print(std::cout);

  // (b) Same job, launched at prime time vs at night.
  util::ThreadPool pool;
  auto prime = pool.submit([] { return run_job_at_hour(20.0, 3); });
  auto night = pool.submit([] { return run_job_at_hour(3.0, 3); });
  const double prime_m = prime.get();
  const double night_m = night.get();

  std::cout << "\nSame job (2000 x 10 s-PC tasks, 150-node instance):\n";
  util::Table launch({"launch time", "makespan (h)"});
  launch.add_row({"20:00 (prime time)",
                  prime_m < 0 ? "timeout" : util::Table::fmt(prime_m / 3600.0, 2)});
  launch.add_row({"03:00 (night)",
                  night_m < 0 ? "timeout" : util::Table::fmt(night_m / 3600.0, 2)});
  launch.print(std::cout);
  if (prime_m > 0 && night_m > 0) {
    std::cout << "\nNight launch advantage: "
              << util::Table::fmt(prime_m / night_m, 2)
              << "x faster (standby boxes run 1.65x faster and fewer join/"
                 "leave events disturb the instance).\n";
  }
  return 0;
}

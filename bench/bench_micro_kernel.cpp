// Experiment E10 — microbenchmarks of the substrates (google-benchmark):
// simulation-kernel event throughput, direct-channel message path, carousel
// acquisition math, signature, and the alignment workload engine.

#include <benchmark/benchmark.h>

#include <functional>

#include "broadcast/carousel.hpp"
#include "broadcast/signature.hpp"
#include "core/messages.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "workload/alignment.hpp"
#include "workload/blast.hpp"
#include "workload/sequence.hpp"

namespace {

using namespace oddci;

void BM_SimulationEventThroughput(benchmark::State& state) {
  const auto events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    int counter = 0;
    for (int i = 0; i < events; ++i) {
      sim.schedule_at(sim::SimTime::from_micros(i), [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimulationEventThroughput)->Arg(1000)->Arg(100000);

void BM_SimulationSelfScheduling(benchmark::State& state) {
  // Chained events (timer-style), the kernel's common pattern.
  for (auto _ : state) {
    sim::Simulation sim;
    int remaining = 100000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) {
        sim.schedule_in(sim::SimTime::from_micros(10), tick);
      }
    };
    sim.schedule_in(sim::SimTime::from_micros(10), tick);
    sim.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SimulationSelfScheduling);

class Sink final : public net::Endpoint {
 public:
  void on_message(net::NodeId, const net::MessagePtr&) override { ++count; }
  std::uint64_t count = 0;
};

void BM_NetworkMessagePath(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    net::Network net(sim);
    Sink a, b;
    const auto na = net.register_endpoint(
        &a, {util::BitRate::from_mbps(100), util::BitRate::from_mbps(100),
             sim::SimTime::from_millis(1)});
    const auto nb = net.register_endpoint(
        &b, {util::BitRate::from_mbps(100), util::BitRate::from_mbps(100),
             sim::SimTime::from_millis(1)});
    for (int i = 0; i < 10000; ++i) {
      net.send(na, nb,
               std::make_shared<core::HeartbeatMessage>(
                   i, core::PnaState::kIdle, core::kNoInstance));
    }
    sim.run();
    benchmark::DoNotOptimize(b.count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_NetworkMessagePath);

void BM_CarouselAcquisitionQuery(benchmark::State& state) {
  broadcast::ObjectCarousel carousel(util::BitRate::from_mbps(1.0));
  for (int i = 0; i < 32; ++i) {
    carousel.put_file("file-" + std::to_string(i),
                      util::Bits::from_kilobytes(64 + i), i);
  }
  carousel.commit(sim::SimTime::zero(), 12345);
  util::Random rng(1);
  for (auto _ : state) {
    const auto listen =
        sim::SimTime::from_seconds(rng.uniform(0.0, 1000.0));
    benchmark::DoNotOptimize(
        carousel.read_completion_time("file-17", listen));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CarouselAcquisitionQuery);

void BM_ControlMessageSignVerify(benchmark::State& state) {
  core::ControlMessage m;
  m.type = core::ControlType::kWakeup;
  m.instance = 7;
  m.probability = 0.25;
  m.image = {3, "image-3", util::Bits::from_megabytes(10)};
  for (auto _ : state) {
    m.sign_with(0xABCD);
    benchmark::DoNotOptimize(m.verify_with(0xABCD));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControlMessageSignVerify);

void BM_SmithWaterman(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  workload::SequenceGenerator gen(42);
  const std::string a = gen.random_dna(len);
  const std::string b = gen.mutate(a, 0.05, 0.01);
  std::uint64_t cells = 0;
  for (auto _ : state) {
    const auto r = workload::smith_waterman(a, b);
    cells += r.cells;
    benchmark::DoNotOptimize(r.score);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.SetLabel("items = DP cells");
}
BENCHMARK(BM_SmithWaterman)->Arg(256)->Arg(1024);

void BM_BlastSearch(benchmark::State& state) {
  const auto db_seqs = static_cast<std::size_t>(state.range(0));
  workload::SequenceGenerator gen(43);
  const std::string query = gen.random_dna(500);
  auto seqs = gen.random_database(db_seqs, 800, 1200);
  seqs[db_seqs / 2] = gen.mutate(query, 0.05, 0.005);
  workload::BlastDatabase database(std::move(seqs), 11);
  workload::BlastParams params;
  params.word_size = 11;
  for (auto _ : state) {
    const auto result = workload::blast_search(query, database, params);
    benchmark::DoNotOptimize(result.hits.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(database.total_residues()));
  state.SetLabel("items = db residues scanned");
}
BENCHMARK(BM_BlastSearch)->Arg(100)->Arg(1000);

void BM_RngUniform(benchmark::State& state) {
  util::Random rng(7);
  double acc = 0;
  for (auto _ : state) {
    acc += rng.uniform();
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngUniform);

}  // namespace

BENCHMARK_MAIN();

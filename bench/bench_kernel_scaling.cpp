// Kernel scaling benchmark for the pooled-event + timer-wheel refactor.
//
// Two parts:
//
//  1. Kernel A/B — a synthetic heartbeat workload (N recurring timers with
//     random phases plus a stream of one-shot cancellations, the shape the
//     OddCI control plane produces) is driven through (a) `NaiveKernel`,
//     an embedded replica of the pre-refactor kernel
//     (std::priority_queue + std::unordered_map<id, std::function>), and
//     (b) the pooled `sim::Simulation` with wheel-backed timers. The
//     events/sec ratio at each population is the refactor's score; the
//     acceptance bar is >= 3x at the million-timer point.
//
//  2. System sweep — full `OddciSystem::run_job` at 10k -> 1M receivers,
//     reporting events/sec, wall seconds per simulated hour, and peak RSS.
//
// Output: a human table on stdout and JSON (BENCH_kernel.json shape) on
// request via --json <path>.

#include <sys/resource.h>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_metrics.hpp"
#include "core/system.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "workload/job.hpp"

namespace {

using namespace oddci;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // kB -> MB
}

// Return allocator-retained free pages to the OS so the next sweep's
// baseline is tight. Without this, pages freed by a previous sweep stay
// resident and get silently reused, and the following sweep's RSS delta
// reads as ~0 (the historical `rss_delta_mb: 0` anomaly at the 100k
// point, which ran entirely inside the 10k sweep's retained pages).
void settle_allocator() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
}

// Current (not peak) resident set from /proc/self/statm. ru_maxrss is a
// process-global high-water mark: once the largest sweep has run, every
// later (or smaller, earlier-allocating) sweep reports the same number.
// Per-sweep current-RSS deltas (baseline taken after settle_allocator())
// attribute growth to the sweep that caused it.
double current_rss_mb() {
  std::ifstream statm("/proc/self/statm");
  std::uint64_t total_pages = 0;
  std::uint64_t resident_pages = 0;
  if (!(statm >> total_pages >> resident_pages)) return 0.0;
  return static_cast<double>(resident_pages) * 4096.0 / (1024.0 * 1024.0);
}

// ---------------------------------------------------------------------------
// Replica of the pre-refactor kernel, kept structurally identical to the
// seed `sim::Simulation` (git history): a std::priority_queue of
// (time, priority, id) entries, a hash map from id to std::function,
// cancellation via map erase with heap tombstones, and the pre-refactor
// pop path's two hash lookups per executed event (liveness check in
// pop_next, then find+erase in step). Kept here so the speedup claim stays
// measurable against this exact baseline.
class NaiveKernel {
 public:
  using Callback = std::function<void()>;

  std::uint64_t schedule_at(std::int64_t t, Callback cb, int priority = 10) {
    const std::uint64_t id = next_id_++;
    queue_.push(Entry{t, priority, id});
    pending_.emplace(id, std::move(cb));
    return id;
  }

  bool cancel(std::uint64_t id) {
    auto it = pending_.find(id);
    if (it == pending_.end()) return false;
    pending_.erase(it);
    return true;
  }

  [[nodiscard]] std::int64_t now() const { return now_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  void run_until(std::int64_t horizon) {
    while (!queue_.empty() && queue_.top().time <= horizon) {
      const Entry e = queue_.top();
      queue_.pop();
      if (pending_.count(e.id) == 0) continue;  // cancelled tombstone
      now_ = e.time;
      auto it = pending_.find(e.id);
      Callback cb = std::move(it->second);
      pending_.erase(it);
      ++executed_;
      cb();
    }
    now_ = horizon;
  }

 private:
  struct Entry {
    std::int64_t time;
    int priority;
    std::uint64_t id;
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      if (priority != other.priority) return priority > other.priority;
      return id > other.id;
    }
  };
  std::priority_queue<Entry> queue_;
  std::unordered_map<std::uint64_t, Callback> pending_;
  std::int64_t now_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
};

// Replica of the pre-refactor PeriodicTask: shared state behind a
// shared_ptr, each tick locks a weak_ptr, runs the stored std::function,
// and re-arms by scheduling a fresh closure. The pre-refactor system drove
// every receiver heartbeat through this path.
class NaivePeriodic {
 public:
  NaivePeriodic(NaiveKernel& kernel, std::int64_t start, std::int64_t period,
                std::function<void()> on_tick) {
    state_ = std::make_shared<State>();
    state_->kernel = &kernel;
    state_->period = period;
    state_->on_tick = std::move(on_tick);
    state_->active = true;
    arm(state_, start);
  }

 private:
  struct State {
    NaiveKernel* kernel = nullptr;
    std::int64_t period = 0;
    std::function<void()> on_tick;
    bool active = false;
  };

  static void arm(const std::shared_ptr<State>& state, std::int64_t at) {
    std::weak_ptr<State> weak = state;
    state->kernel->schedule_at(at, [weak] {
      auto s = weak.lock();
      if (!s || !s->active) return;
      s->on_tick();
      if (s->active) arm(s, s->kernel->now() + s->period);
    });
  }

  std::shared_ptr<State> state_;
};

struct KernelPoint {
  std::size_t population = 0;
  double naive_events_per_sec = 0.0;
  double pooled_events_per_sec = 0.0;
  double speedup = 0.0;
};

// Control-plane workload mirroring what `run_job` generates per heartbeat:
// the periodic beat fires, the heartbeat message crosses the network in
// two chained hops exactly as net::Network::send schedules them (an
// edge-arrival event whose handler schedules the downlink-completion
// event; each closure captures {this, from, to, shared_ptr message} =
// 32 bytes — beyond std::function's 16-byte small-object buffer, so the
// pre-refactor kernel heap-allocated both hops of every heartbeat), and
// the beat re-arms a liveness watchdog that is cancelled on the next beat
// (the dominant cancel source). `population` timers, 30 s period, random
// phase, one simulated hour. Message construction is deliberately hoisted
// out (a shared dummy payload) so the A/B measures kernel cost, not
// workload cost. Useful events = beat + 2 hops, identical on both sides,
// so the speedup is a pure wall-clock ratio.
constexpr std::int64_t kHourUs = 3'600'000'000;
constexpr std::int64_t kPeriodUs = 30'000'000;
constexpr std::int64_t kEdgeUs = 40'000;  // uplink + propagation to edge
constexpr std::int64_t kDownUs = 4'000;   // receiver downlink serialization

struct Payload {
  std::uint64_t wire_bits = 544;
  std::uint64_t* sink = nullptr;
};

KernelPoint kernel_ab(std::size_t population) {
  KernelPoint point;
  point.population = population;
  std::uint64_t naive_beats = 0;
  std::uint64_t pooled_beats = 0;

  {  // --- naive baseline (pre-refactor kernel replica) ---
    util::Random rng(7);
    NaiveKernel kernel;
    std::uint64_t delivered = 0;
    const auto message = std::make_shared<Payload>();
    message->sink = &delivered;
    std::vector<std::uint64_t> watchdog(population, 0);
    std::vector<NaivePeriodic> beats;
    beats.reserve(population);
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < population; ++i) {
      const auto phase =
          static_cast<std::int64_t>(rng.uniform(0.0, 1.0) * kPeriodUs);
      beats.emplace_back(kernel, phase, kPeriodUs, [&kernel, &watchdog,
                                                    message, i] {
        void* const self = &kernel;
        const auto from = static_cast<std::uint32_t>(i);
        const std::uint32_t to = 0;
        kernel.schedule_at(
            kernel.now() + kEdgeUs,
            [self, from, to, message] {
              NaiveKernel& k = *static_cast<NaiveKernel*>(self);
              k.schedule_at(k.now() + kDownUs,
                            [self, from, to, message] {
                              *message->sink += message->wire_bits != 0;
                            },
                            0);
            },
            0);
        if (watchdog[i] != 0) kernel.cancel(watchdog[i]);
        watchdog[i] = kernel.schedule_at(kernel.now() + 2 * kPeriodUs, [] {});
      });
    }
    kernel.run_until(kHourUs);
    naive_beats = delivered;
    point.naive_events_per_sec =
        static_cast<double>(3 * delivered) / seconds_since(t0);
  }

  {  // --- pooled kernel + wheel ---
    util::Random rng(7);
    sim::Simulation kernel;
    std::uint64_t delivered = 0;
    const auto message = std::make_shared<Payload>();
    message->sink = &delivered;
    std::vector<sim::TimerId> watchdog(population, sim::kInvalidTimer);
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < population; ++i) {
      const auto phase = sim::SimTime::from_micros(
          static_cast<std::int64_t>(rng.uniform(0.0, 1.0) * kPeriodUs));
      kernel.schedule_timer_at(
          phase,
          [&kernel, &watchdog, message, i] {
            void* const self = &kernel;
            const auto from = static_cast<std::uint32_t>(i);
            const std::uint32_t to = 0;
            kernel.schedule_in(
                sim::SimTime::from_micros(kEdgeUs),
                [self, from, to, message] {
                  auto& k = *static_cast<sim::Simulation*>(self);
                  k.schedule_in(sim::SimTime::from_micros(kDownUs),
                                [self, from, to, message] {
                                  *message->sink += message->wire_bits != 0;
                                },
                                sim::EventPriority::kDelivery);
                },
                sim::EventPriority::kDelivery);
            if (watchdog[i] != sim::kInvalidTimer) {
              kernel.cancel_timer(watchdog[i]);
            }
            watchdog[i] = kernel.schedule_timer_in(
                sim::SimTime::from_micros(2 * kPeriodUs), [] {});
          },
          sim::SimTime::from_micros(kPeriodUs));
    }
    kernel.run_until(sim::SimTime::from_micros(kHourUs));
    pooled_beats = delivered;
    point.pooled_events_per_sec =
        static_cast<double>(3 * delivered) / seconds_since(t0);
  }

  if (naive_beats != pooled_beats) {
    std::cerr << "kernel_ab: divergent beat counts (naive=" << naive_beats
              << ", pooled=" << pooled_beats << ")\n";
  }
  point.speedup = point.pooled_events_per_sec / point.naive_events_per_sec;
  return point;
}

struct SystemPoint {
  std::size_t receivers = 0;
  std::size_t shards = 1;
  bool completed = false;
  double events_per_sec = 0.0;
  double wall_seconds = 0.0;
  double wall_seconds_per_sim_hour = 0.0;
  double sim_seconds = 0.0;
  double peak_rss_mb = 0.0;
  /// Current-RSS growth across this sweep (see current_rss_mb()).
  double rss_delta_mb = 0.0;
  std::uint64_t events_executed = 0;
  obs::MetricsSnapshot metrics;
};

SystemPoint system_sweep(std::size_t receivers, std::size_t shards,
                         bool profile = false,
                         const std::string& profile_json = "") {
  SystemPoint point;
  point.receivers = receivers;
  point.shards = shards;

  core::SystemConfig config;
  config.receivers = receivers;
  config.channels = 8;
  config.aggregators = 16;
  config.seed = 99;
  config.control.overshoot_margin = 1.3;
  config.shards = shards;
  config.obs.profile = profile;

  settle_allocator();
  const double rss_before = current_rss_mb();
  const auto t0 = Clock::now();
  core::OddciSystem system(config);
  const auto job = workload::make_uniform_job(
      "kernel-sweep", util::Bits::from_megabytes(2), 500,
      util::Bits::from_bytes(512), util::Bits::from_bytes(512), 10.0);
  const auto result = system.run_job(job, receivers / 10);

  point.completed = result.completed;
  point.wall_seconds = seconds_since(t0);
  point.events_executed = system.kernel().events_executed();
  point.events_per_sec =
      static_cast<double>(point.events_executed) / point.wall_seconds;
  point.sim_seconds = system.kernel().now().seconds();
  point.wall_seconds_per_sim_hour =
      point.wall_seconds / (point.sim_seconds / 3600.0);
  point.peak_rss_mb = peak_rss_mb();
  point.rss_delta_mb = current_rss_mb() - rss_before;
  point.metrics = result.metrics;
  if (profile && !profile_json.empty()) {
    obs::write_profile_json(profile_json, system.profile_snapshot());
  }
  return point;
}

struct OverheadPoint {
  std::size_t receivers = 0;
  std::size_t shards = 1;
  int reps = 0;
  double off_wall_s = 0.0;
  double on_wall_s = 0.0;
  double overhead_pct = 0.0;
};

/// Profiler-cost A/B: the same seeded scenario with the kernel profiler
/// off and on, `reps` alternating pairs, best-of walls (min is the robust
/// statistic against scheduler noise on shared CI machines).
OverheadPoint profiler_overhead_ab(std::size_t receivers, std::size_t shards,
                                   int reps,
                                   const std::string& profile_json) {
  OverheadPoint point;
  point.receivers = receivers;
  point.shards = shards;
  point.reps = reps;
  point.off_wall_s = std::numeric_limits<double>::infinity();
  point.on_wall_s = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    point.off_wall_s = std::min(
        point.off_wall_s, system_sweep(receivers, shards).wall_seconds);
    const bool last = r + 1 == reps;
    point.on_wall_s = std::min(
        point.on_wall_s,
        system_sweep(receivers, shards, true, last ? profile_json : "")
            .wall_seconds);
  }
  point.overhead_pct =
      point.off_wall_s > 0.0
          ? 100.0 * (point.on_wall_s - point.off_wall_s) / point.off_wall_s
          : 0.0;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool quick = false;
  bool deep = false;
  std::size_t shards = 1;
  std::vector<std::size_t> shard_sweep;
  // Profiler-overhead A/B mode (appended after the requested sweeps):
  // --profile-overhead enables it, --overhead-gate <pct> makes a breach a
  // nonzero exit (the CI smoke), --overhead-pop overrides the population
  // (defaults to the sweep's largest), --overhead-reps the A/B pairs, and
  // --profile-json saves the final profiled run's oddci.profile.v1.
  bool profile_overhead = false;
  double overhead_gate = 0.0;
  std::size_t overhead_pop = 0;
  int overhead_reps = 3;
  std::string profile_json;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    if (arg == "--quick") quick = true;
    if (arg == "--deep") deep = true;  // adds the 10M-receiver point
    if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::stoull(argv[++i]));
    }
    if (arg == "--profile-overhead") profile_overhead = true;
    if (arg == "--overhead-gate" && i + 1 < argc) {
      overhead_gate = std::stod(argv[++i]);
    }
    if (arg == "--overhead-pop" && i + 1 < argc) {
      overhead_pop = static_cast<std::size_t>(std::stoull(argv[++i]));
    }
    if (arg == "--overhead-reps" && i + 1 < argc) {
      overhead_reps = std::stoi(argv[++i]);
    }
    if (arg == "--profile-json" && i + 1 < argc) profile_json = argv[++i];
    // Comma-separated shard counts for the fixed-population scaling
    // sweep, e.g. --shard-sweep 1,2,8 (run at the largest non-deep
    // population: 1M in the full sweep, 10k with --quick).
    if (arg == "--shard-sweep" && i + 1 < argc) {
      std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string item = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!item.empty()) shard_sweep.push_back(std::stoull(item));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    }
  }

  const std::vector<std::size_t> kernel_pops =
      quick ? std::vector<std::size_t>{10'000}
            : std::vector<std::size_t>{10'000, 100'000, 1'000'000};
  std::vector<std::size_t> system_pops =
      quick ? std::vector<std::size_t>{10'000}
            : std::vector<std::size_t>{10'000, 100'000, 1'000'000};
  // Shard scaling runs at the largest non-deep population (1M in the full
  // sweep) — the 10M point is a capacity probe, not the scaling scenario.
  const std::size_t shard_sweep_pop = system_pops.back();
  if (deep && !quick) system_pops.push_back(10'000'000);

  std::cout << "== Kernel A/B: naive (pre-refactor replica) vs pooled+wheel"
            << " — 1 simulated hour of heartbeats ==\n";
  std::cout << "population | naive ev/s | pooled ev/s | speedup\n";
  std::vector<KernelPoint> kernel_points;
  for (const auto population : kernel_pops) {
    const auto point = kernel_ab(population);
    kernel_points.push_back(point);
    std::printf("%10zu | %10.3g | %11.3g | %6.2fx\n", point.population,
                point.naive_events_per_sec, point.pooled_events_per_sec,
                point.speedup);
  }

  std::cout << "\n== System sweep: OddciSystem::run_job (shards=" << shards
            << ") ==\n";
  std::cout << "receivers | done | events | ev/s | wall s | wall s/sim h |"
            << " dRSS MB | peak RSS MB\n";
  std::vector<SystemPoint> system_points;
  for (const auto receivers : system_pops) {
    const auto point = system_sweep(receivers, shards);
    system_points.push_back(point);
    std::printf("%9zu | %4s | %.3g | %.3g | %6.1f | %12.1f | %7.1f |"
                " %11.1f\n",
                point.receivers, point.completed ? "yes" : "NO",
                static_cast<double>(point.events_executed),
                point.events_per_sec, point.wall_seconds,
                point.wall_seconds_per_sim_hour, point.rss_delta_mb,
                point.peak_rss_mb);
  }

  // Fixed-population shard scaling: the same scenario at each K. Different
  // K are different (each internally deterministic) trajectories, so the
  // comparison is wall clock for the same simulated workload, not
  // event-for-event.
  std::vector<SystemPoint> shard_points;
  if (!shard_sweep.empty()) {
    const std::size_t population = shard_sweep_pop;
    std::cout << "\n== Shard scaling at " << population << " receivers ==\n";
    std::cout << "shards | done | events | ev/s | wall s | speedup vs K=1\n";
    double k1_wall = 0.0;
    for (const auto k : shard_sweep) {
      const auto point = system_sweep(population, k);
      shard_points.push_back(point);
      if (k == 1) k1_wall = point.wall_seconds;
      std::printf("%6zu | %4s | %.3g | %.3g | %6.1f | %6.2fx\n", point.shards,
                  point.completed ? "yes" : "NO",
                  static_cast<double>(point.events_executed),
                  point.events_per_sec, point.wall_seconds,
                  k1_wall > 0.0 ? k1_wall / point.wall_seconds : 0.0);
    }
  }

  OverheadPoint overhead;
  if (profile_overhead) {
    const std::size_t population =
        overhead_pop != 0 ? overhead_pop : shard_sweep_pop;
    std::cout << "\n== Profiler overhead A/B at " << population
              << " receivers, " << shards << " shard(s), best of "
              << overhead_reps << " ==\n";
    overhead =
        profiler_overhead_ab(population, shards, overhead_reps, profile_json);
    std::printf("off %.2f s | on %.2f s | overhead %+.2f%%\n",
                overhead.off_wall_s, overhead.on_wall_s,
                overhead.overhead_pct);
    if (!profile_json.empty()) {
      std::cout << "wrote " << profile_json << "\n";
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    // Shard-scaling speedups only mean anything relative to the cores the
    // sweep had: K worker threads on fewer than K cores time-slice, so the
    // barrier cost shows up but the parallelism cannot.
    out << "{\n  \"host\": " << oddci::bench::host_json() << ",\n"
        << "  \"kernel_ab\": [\n";
    for (std::size_t i = 0; i < kernel_points.size(); ++i) {
      const auto& p = kernel_points[i];
      out << "    {\"population\": " << p.population
          << ", \"naive_events_per_sec\": " << p.naive_events_per_sec
          << ", \"pooled_events_per_sec\": " << p.pooled_events_per_sec
          << ", \"speedup\": " << p.speedup << "}"
          << (i + 1 < kernel_points.size() ? "," : "") << "\n";
    }
    const auto emit_system_point = [&out](const SystemPoint& p) {
      out << "    {\"receivers\": " << p.receivers
          << ", \"shards\": " << p.shards
          << ", \"completed\": " << (p.completed ? "true" : "false")
          << ", \"events_executed\": " << p.events_executed
          << ", \"events_per_sec\": " << p.events_per_sec
          << ", \"wall_seconds\": " << p.wall_seconds
          << ", \"wall_seconds_per_sim_hour\": "
          << p.wall_seconds_per_sim_hour
          << ", \"rss_delta_mb\": " << p.rss_delta_mb
          << ", \"peak_rss_mb\": " << p.peak_rss_mb << "}";
    };
    out << "  ],\n  \"system_sweep\": [\n";
    for (std::size_t i = 0; i < system_points.size(); ++i) {
      emit_system_point(system_points[i]);
      out << (i + 1 < system_points.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    if (!shard_points.empty()) {
      out << "  \"shard_scaling\": [\n";
      for (std::size_t i = 0; i < shard_points.size(); ++i) {
        emit_system_point(shard_points[i]);
        out << (i + 1 < shard_points.size() ? "," : "") << "\n";
      }
      out << "  ],\n";
    }
    if (profile_overhead) {
      out << "  \"profiler_overhead\": {\"receivers\": " << overhead.receivers
          << ", \"shards\": " << overhead.shards
          << ", \"reps\": " << overhead.reps
          << ", \"off_wall_seconds\": " << overhead.off_wall_s
          << ", \"on_wall_seconds\": " << overhead.on_wall_s
          << ", \"overhead_pct\": " << overhead.overhead_pct << "},\n";
    }
    out << "  \"heartbeat_note\": \"all sweeps run the default naive "
        << "heartbeat path (heartbeat_mode flags off), which the delta "
        << "return-channel PR keeps byte-identical — these numbers are the "
        << "O(receivers) baseline, including the 10M point. The "
        << "O(changes) delta-mode comparison (Controller ingest bytes, "
        << "monitor-tick wall) is recorded per population in "
        << "BENCH_fanout.json under delta_speedups.\",\n";
    out << "  \"rss_note\": \"peak_rss_mb is the process-global "
        << "high-water mark (ru_maxrss) and is monotone across sweeps — "
        << "identical values for consecutive points mean an earlier/larger "
        << "sweep set the peak. rss_delta_mb is per-sweep current-RSS "
        << "growth (/proc/self/statm) measured from a baseline taken after "
        << "a malloc_trim(0) settle, so allocator pages retained from "
        << "earlier sweeps no longer mask a sweep's own growth.\"\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }

  // Full instrumentation snapshot of the largest system-sweep run.
  if (!system_points.empty() && oddci::bench::metrics_enabled(argc, argv)) {
    oddci::bench::write_metrics("bench_kernel_scaling",
                                system_points.back().metrics);
  }

  if (profile_overhead && overhead_gate > 0.0 &&
      overhead.overhead_pct > overhead_gate) {
    std::cerr << "profiler overhead " << overhead.overhead_pct
              << "% exceeds the gate (" << overhead_gate << "%)\n";
    return 1;
  }
  return 0;
}

// Decision-engine comparison (experiment E14): the three control-loop
// engines — static (the paper's fixed overshoot-margin rule), proportional
// (PI ramp with churn compensation) and bandit (epsilon-greedy margin
// multipliers per deficit regime) — form the same instance out of the same
// churning, fault-injected population (the PR 5 fault matrix: message loss
// and duplication, latency spikes, partitions, controller/backend crashes,
// aggregator and PNA crash-restarts, control corruption).
//
// Per engine, two seeded phases on identical configs:
//
//  1. Formation: request an instance (2% of the population) and track the
//     membership every 10 s for 30 simulated minutes. Reported:
//     convergence time (first reach of target), peak churn overshoot
//     (max membership - target), and trims (unicast resets shed).
//  2. Job: run a uniform compute job on a fresh system and report the
//     paper's efficiency E = n*p / (M*N) plus the makespan.
//
// Output: human table on stdout, BENCH_control.json shape via --json
// <path>. --quick shrinks the population for CI smoke. Exit is nonzero if
// any engine fails to converge or if the proportional engine does not beat
// the static margin rule on overshoot at comparable convergence time —
// the acceptance gate for the closed-loop controller.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_metrics.hpp"
#include "control/policy.hpp"
#include "core/system.hpp"
#include "workload/job.hpp"

namespace {

using namespace oddci;

struct Scenario {
  std::size_t receivers = 100'000;
  std::size_t target = 2'000;
  std::size_t tasks = 4'000;
  int observe_ticks = 180;  ///< 10 s each: 30 simulated minutes
};

struct Point {
  std::string engine;
  double convergence_s = -1.0;  ///< first reach of target; -1 = never
  std::size_t overshoot_peak = 0;
  double overshoot_frac = 0.0;
  std::uint64_t trims = 0;
  std::uint64_t rebroadcasts = 0;
  double efficiency = 0.0;
  double makespan_s = 0.0;
  bool job_completed = false;
};

core::SystemConfig base_config(const Scenario& s,
                               control::EngineKind kind) {
  core::SystemConfig config;
  config.receivers = s.receivers;
  config.channels = 4;
  config.aggregators = 8;
  config.seed = 20260805;
  config.control.engine = kind;
  config.control.overshoot_margin = 1.3;
  if (kind == control::EngineKind::kProportional) {
    // A mild feedforward surplus (binomial shortfall + churn headroom)
    // keeps convergence in one broadcast round; the integral and the
    // hysteresis band absorb what the static 1.3 margin would overshoot.
    config.control.gain = 1.1;
    config.control.trim_hysteresis = 0.05;
  }
  // Receiver churn: the reason recomposition (and a control loop) exists.
  core::ChurnOptions churn;
  churn.mean_on_seconds = 3600.0;
  churn.mean_off_seconds = 1800.0;
  config.churn = churn;
  // The PR 5 fault matrix, verbatim from the replay acceptance test.
  config.fault.enabled = true;
  config.fault.message_loss = 0.01;
  config.fault.message_duplication = 0.01;
  config.fault.latency_spike_probability = 0.005;
  config.fault.partitions_per_hour = 3.0;
  config.fault.partition_duration = sim::SimTime::from_seconds(120);
  config.fault.aggregator_crashes_per_hour = 2.0;
  config.fault.pna_crashes_per_hour = 20.0;
  config.fault.pna_hangs_per_hour = 10.0;
  config.fault.control_corruptions_per_hour = 4.0;
  return config;
}

/// The scheduled control-plane crashes complete the PR 5 matrix for the
/// efficiency phase. They are kept out of the formation phase: a
/// controller restart triggers a population-wide rejoin wave whose
/// overshoot is recovery behaviour (the self-healing plane's domain), not
/// the decision engine's, and it swamps the policy signal being compared.
core::SystemConfig job_config(const Scenario& s, control::EngineKind kind) {
  core::SystemConfig config = base_config(s, kind);
  config.fault.controller_crash_at.push_back(sim::SimTime::from_seconds(500));
  config.fault.backend_crash_at.push_back(sim::SimTime::from_seconds(900));
  return config;
}

Point run_engine(const Scenario& s, control::EngineKind kind) {
  Point point;
  point.engine = std::string(control::to_string(kind));

  // Phase 1: instance formation under churn + the stochastic fault matrix.
  {
    core::OddciSystem system(base_config(s, kind));
    system.controller().deploy_pna();
    system.simulation().run_until(sim::SimTime::from_seconds(120));

    core::InstanceSpec spec;
    spec.name = "control-bench";
    spec.target_size = s.target;
    spec.image_size = util::Bits::from_megabytes(2);
    const auto id = system.provider().request_instance(
        spec, system.backend().node_id());
    const sim::SimTime t0 = system.simulation().now();

    std::size_t peak = 0;
    for (int tick = 0; tick < s.observe_ticks; ++tick) {
      system.simulation().run_until(system.simulation().now() +
                                    sim::SimTime::from_seconds(10));
      const std::size_t size = system.controller().status(id)->current_size;
      peak = std::max(peak, size);
      if (point.convergence_s < 0 && size >= s.target) {
        point.convergence_s = (system.simulation().now() - t0).seconds();
      }
    }
    point.overshoot_peak = peak > s.target ? peak - s.target : 0;
    point.overshoot_frac = static_cast<double>(point.overshoot_peak) /
                           static_cast<double>(s.target);
    point.trims = system.controller().status(id)->unicast_resets;
    point.rebroadcasts =
        system.controller().status(id)->wakeups_broadcast - 1;
  }

  // Phase 2: the paper's efficiency E = n*p / (M*N) on a fresh system with
  // the same engine, under the full matrix including the scheduled
  // controller and backend crashes.
  {
    core::OddciSystem system(job_config(s, kind));
    const auto job = workload::make_uniform_job(
        "control-bench-job", util::Bits::from_megabytes(2), s.tasks,
        util::Bits::from_bytes(512), util::Bits::from_bytes(512), 10.0);
    const auto result = system.run_job(job, s.target);
    point.job_completed = result.completed;
    point.makespan_s = result.makespan_seconds;
    if (result.makespan_seconds > 0.0) {
      point.efficiency = static_cast<double>(s.tasks) * 10.0 /
                         (result.makespan_seconds *
                          static_cast<double>(s.target));
    }
  }
  return point;
}

void write_json(const std::string& path, const Scenario& s,
                const std::vector<Point>& points) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"control\",\n"
      << "  \"host\": " << oddci::bench::host_json() << ",\n"
      << "  \"scenario\": {\"receivers\": " << s.receivers
      << ", \"target\": " << s.target << ", \"tasks\": " << s.tasks
      << ", \"observe_s\": " << s.observe_ticks * 10
      << ", \"seed\": 20260805, \"churn\": true, \"fault_matrix\": true},\n"
      << "  \"engines\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    out << "    {\"engine\": \"" << p.engine << "\""
        << ", \"convergence_s\": " << p.convergence_s
        << ", \"overshoot_peak\": " << p.overshoot_peak
        << ", \"overshoot_frac\": " << p.overshoot_frac
        << ", \"trims\": " << p.trims
        << ", \"rebroadcasts\": " << p.rebroadcasts
        << ", \"efficiency\": " << p.efficiency
        << ", \"makespan_s\": " << p.makespan_s
        << ", \"job_completed\": " << (p.job_completed ? "true" : "false")
        << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    if (arg == "--quick") quick = true;
  }

  Scenario scenario;
  if (quick) {
    scenario.receivers = 10'000;
    scenario.target = 200;
    scenario.tasks = 400;
    scenario.observe_ticks = 90;
  }

  std::cout << "== Decision engines under churn + the fault matrix ("
            << scenario.receivers << " receivers, target "
            << scenario.target << ") ==\n";
  std::cout << "engine       | converge s | overshoot | trims | "
            << "rebroadcast | efficiency E | makespan s\n";

  std::vector<Point> points;
  for (const auto kind :
       {control::EngineKind::kStatic, control::EngineKind::kProportional,
        control::EngineKind::kBandit}) {
    points.push_back(run_engine(scenario, kind));
    const auto& p = points.back();
    std::printf("%-12s | %10.1f | %6zu (%4.1f%%) | %5llu | %11llu | "
                "%12.3f | %10.1f\n",
                p.engine.c_str(), p.convergence_s, p.overshoot_peak,
                p.overshoot_frac * 100.0,
                static_cast<unsigned long long>(p.trims),
                static_cast<unsigned long long>(p.rebroadcasts),
                p.efficiency, p.makespan_s);
  }

  if (!json_path.empty()) {
    write_json(json_path, scenario, points);
    std::cout << "wrote " << json_path << "\n";
  }

  // Acceptance gates.
  int exit_code = 0;
  for (const auto& p : points) {
    if (p.convergence_s < 0) {
      std::cerr << "FAIL: engine '" << p.engine
                << "' never reached the target size\n";
      exit_code = 1;
    }
    if (!p.job_completed) {
      std::cerr << "FAIL: engine '" << p.engine
                << "' did not complete the job\n";
      exit_code = 1;
    }
  }
  const auto& st = points[0];
  const auto& pi = points[1];
  if (pi.overshoot_peak >= st.overshoot_peak) {
    std::cerr << "FAIL: proportional overshoot (" << pi.overshoot_peak
              << ") does not beat static (" << st.overshoot_peak << ")\n";
    exit_code = 1;
  }
  if (st.convergence_s > 0 && pi.convergence_s > 2.0 * st.convergence_s) {
    std::cerr << "FAIL: proportional convergence (" << pi.convergence_s
              << " s) is not comparable to static (" << st.convergence_s
              << " s)\n";
    exit_code = 1;
  }
  return exit_code;
}

// Experiment E4 — Section 5.1: the wakeup-process overhead W = 1.5 I/beta.
//
// Sweeps image size I and unused broadcast capacity beta, comparing the
// analytical model (best I/beta, mean 1.5 I/beta, worst 2 I/beta) against
// the discrete-event simulation: for each point the measured value is the
// time from the Provider's request until the instance reaches its target
// size, averaged over seeds (the carousel rotation is random per wakeup, so
// single runs land anywhere in [best, worst]).

#include <iostream>
#include <tuple>
#include <vector>

#include "analytical/models.hpp"
#include "bench_metrics.hpp"
#include "core/system.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/job.hpp"

namespace {

using namespace oddci;

double measure_wakeup(util::Bits image, util::BitRate beta,
                      std::uint64_t seed, double section_loss = 0.0,
                      core::BroadcastTechnology technology =
                          core::BroadcastTechnology::kDtvCarousel,
                      obs::MetricsSnapshot* metrics_out = nullptr) {
  core::SystemConfig config;
  config.receivers = 150;
  config.beta = beta;
  config.seed = seed;
  config.section_loss = section_loss;
  config.technology = technology;
  config.multicast.block_loss = section_loss;
  config.control.overshoot_margin = 1.3;
  core::OddciSystem system(config);
  // Measure instance formation directly: request an instance and wait for
  // the Provider's readiness callback.
  system.controller().deploy_pna();
  system.simulation().run_until(sim::SimTime::from_seconds(90));

  core::InstanceSpec spec;
  spec.name = "wakeup-probe";
  spec.target_size = 100;
  spec.image_size = image;
  const sim::SimTime t0 = system.simulation().now();
  double wakeup = -1.0;
  system.provider().request_instance(
      spec, system.backend().node_id(),
      [&](core::InstanceId, sim::SimTime at) {
        wakeup = (at - t0).seconds();
        system.simulation().stop();
      });
  system.simulation().run_until(t0 + sim::SimTime::from_hours(12));
  if (metrics_out != nullptr) *metrics_out = system.metrics_snapshot();
  return wakeup;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Section 5.1: wakeup overhead W vs image size and beta ===\n"
            << "(measured = first time the instance reaches its target size;"
            << " mean/min/max over 8 seeds)\n\n";

  struct Point {
    int image_mb;
    double beta_mbps;
  };
  const std::vector<Point> points = {
      {1, 1.0}, {2, 1.0}, {4, 1.0}, {8, 1.0}, {16, 1.0},
      {8, 0.5}, {8, 2.0}, {8, 4.0}, {8, 8.0},
  };
  constexpr int kSeeds = 8;

  util::Table table({"I (MB)", "beta (Mbps)", "model best (s)",
                     "model mean 1.5I/b (s)", "model worst (s)",
                     "measured mean (s)", "measured min", "measured max"});

  util::ThreadPool pool;
  // One representative run (first point, first seed) also captures its full
  // metrics snapshot for the bench's machine-readable output files.
  obs::MetricsSnapshot captured;
  bool capture_pending = true;
  for (const auto& point : points) {
    const auto image = util::Bits::from_megabytes(point.image_mb);
    const auto beta = util::BitRate::from_mbps(point.beta_mbps);

    std::vector<std::future<double>> futures;
    for (int s = 0; s < kSeeds; ++s) {
      obs::MetricsSnapshot* out =
          (capture_pending && s == 0) ? &captured : nullptr;
      capture_pending = capture_pending && s != 0;
      futures.push_back(pool.submit([image, beta, s, out] {
        return measure_wakeup(
            image, beta, 101 + 13 * s, 0.0,
            core::BroadcastTechnology::kDtvCarousel, out);
      }));
    }
    util::RunningStats stats;
    for (auto& f : futures) {
      const double w = f.get();
      if (w > 0) stats.add(w);
    }

    table.add_row({util::Table::fmt_int(point.image_mb),
                   util::Table::fmt(point.beta_mbps, 1),
                   util::Table::fmt(
                       analytical::wakeup_best_seconds(image, beta), 1),
                   util::Table::fmt(analytical::wakeup_seconds(image, beta),
                                    1),
                   util::Table::fmt(
                       analytical::wakeup_worst_seconds(image, beta), 1),
                   util::Table::fmt(stats.mean(), 1),
                   util::Table::fmt(stats.min(), 1),
                   util::Table::fmt(stats.max(), 1)});
  }
  table.print(std::cout);

  // Extension: wakeup under broadcast loss. Lost DSM-CC sections are
  // recovered on later cycles, so reception noise stretches the tail of the
  // join wave — each percent of loss costs extra full cycles for unlucky
  // receivers.
  std::cout << "\nWakeup under per-section broadcast loss (8 MB, 1 Mbps, "
               "4 KB sections, 8 seeds):\n";
  util::Table loss_table({"section loss", "measured mean (s)",
                          "measured max (s)", "vs clean mean"});
  const auto image8 = util::Bits::from_megabytes(8);
  const auto beta1 = util::BitRate::from_mbps(1.0);
  double clean_mean = 0.0;
  for (double loss : {0.0, 0.01, 0.05, 0.10}) {
    std::vector<std::future<double>> futures;
    for (int s = 0; s < kSeeds; ++s) {
      futures.push_back(pool.submit([image8, beta1, s, loss] {
        return measure_wakeup(image8, beta1, 301 + 17 * s, loss);
      }));
    }
    util::RunningStats stats;
    for (auto& f : futures) {
      const double w = f.get();
      if (w > 0) stats.add(w);
    }
    if (loss == 0.0) clean_mean = stats.mean();
    loss_table.add_row({util::Table::fmt(loss, 2),
                        util::Table::fmt(stats.mean(), 1),
                        util::Table::fmt(stats.max(), 1),
                        util::Table::fmt(stats.mean() / clean_mean, 2)});
  }
  loss_table.print(std::cout);

  // Extension: DTV carousel vs OddCI-IPTV (block-coded multicast, Section
  // 3.3). Multicast has no carousel phase wait, so wakeup approaches
  // I/beta; and loss degrades it gracefully instead of costing cycles.
  std::cout << "\nSubstrate comparison (8 MB image, 1 Mbps, 8 seeds):\n";
  util::Table medium_table(
      {"substrate", "loss", "measured mean (s)", "measured max (s)"});
  for (const auto& [label, tech, loss] :
       std::vector<std::tuple<const char*, core::BroadcastTechnology,
                              double>>{
           {"DTV carousel", core::BroadcastTechnology::kDtvCarousel, 0.0},
           {"IPTV multicast", core::BroadcastTechnology::kIpMulticast, 0.0},
           {"DTV carousel", core::BroadcastTechnology::kDtvCarousel, 0.05},
           {"IPTV multicast", core::BroadcastTechnology::kIpMulticast,
            0.05},
       }) {
    std::vector<std::future<double>> futures;
    for (int s = 0; s < kSeeds; ++s) {
      futures.push_back(pool.submit([s, tech = tech, loss = loss, image8,
                                     beta1] {
        return measure_wakeup(image8, beta1, 401 + 23 * s, loss, tech);
      }));
    }
    util::RunningStats stats;
    for (auto& f : futures) {
      const double w = f.get();
      if (w > 0) stats.add(w);
    }
    medium_table.add_row({label, util::Table::fmt(loss, 2),
                          util::Table::fmt(stats.mean(), 1),
                          util::Table::fmt(stats.max(), 1)});
  }
  medium_table.print(std::cout);

  std::cout << "\nPaper claim check: an 8 MB image at beta = 1 Mbps wakes up"
               " millions of nodes in ~"
            << util::Table::fmt(analytical::wakeup_seconds(
                                    util::Bits::from_megabytes(8),
                                    util::BitRate::from_mbps(1.0)),
                                0)
            << " s on average, independent of N.\n";

  if (bench::metrics_enabled(argc, argv)) {
    bench::write_metrics("bench_fig_wakeup", captured);
  }
  return 0;
}

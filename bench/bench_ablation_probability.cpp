// Experiment E8 (ablation) — the probability-gated wakeup: the wakeup
// message's `probability` attribute is the Controller's instrument for
// sizing an instance out of a large idle pool (Section 3.2). This ablation
// sweeps the initial probability and measures overshoot (joins beyond the
// target, later trimmed) and the time to reach the target, including the
// auto policy (deficit / idle-pool estimate, with overshoot margin).

#include <iostream>
#include <vector>

#include "bench_metrics.hpp"
#include "core/system.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/job.hpp"

namespace {

using namespace oddci;

struct ProbeResult {
  double wakeup_seconds = -1.0;
  std::size_t peak_joins = 0;
  std::uint64_t trims = 0;
  std::uint64_t rebroadcasts = 0;
};

ProbeResult run(std::size_t population, std::size_t target,
                double probability, double overshoot, std::uint64_t seed,
                obs::MetricsSnapshot* metrics_out = nullptr) {
  core::SystemConfig config;
  config.receivers = population;
  config.seed = seed;
  config.control.overshoot_margin = overshoot;
  core::OddciSystem system(config);
  system.controller().deploy_pna();
  system.simulation().run_until(sim::SimTime::from_seconds(120));

  core::InstanceSpec spec;
  spec.name = "prob-ablation";
  spec.target_size = target;
  spec.image_size = util::Bits::from_megabytes(2);
  // Unset leaves the wakeup probability to the controller's decision
  // engine; the bench's <= 0 convention maps onto the optional here.
  if (probability > 0.0) spec.initial_probability = probability;
  const sim::SimTime t0 = system.simulation().now();

  ProbeResult result;
  const auto id = system.provider().request_instance(
      spec, system.backend().node_id(),
      [&](core::InstanceId, sim::SimTime at) {
        result.wakeup_seconds = (at - t0).seconds();
      });

  // Observe for 20 minutes, tracking the join peak.
  for (int tick = 0; tick < 120; ++tick) {
    system.simulation().run_until(system.simulation().now() +
                                  sim::SimTime::from_seconds(10));
    result.peak_joins = std::max(result.peak_joins, system.busy_pna_count());
  }
  const auto* status = system.controller().status(id);
  result.trims = status->unicast_resets;
  result.rebroadcasts = status->wakeups_broadcast - 1;
  if (metrics_out != nullptr) *metrics_out = system.metrics_snapshot();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Ablation: wakeup probability vs instance formation ===\n"
            << "(population 1000 idle PNAs, target 100)\n\n";

  constexpr std::size_t kPopulation = 1000;
  constexpr std::size_t kTarget = 100;

  struct Case {
    const char* label;
    double probability;  // <= 0 means controller auto policy
    double overshoot;
  };
  const std::vector<Case> cases = {
      {"p = 1.0 (address everyone)", 1.0, 1.0},
      {"p = 0.5", 0.5, 1.0},
      {"p = 0.2", 0.2, 1.0},
      {"p = 0.1 (exact expectation)", 0.1, 1.0},
      {"p = 0.05 (undershoot)", 0.05, 1.0},
      {"auto (deficit/idle)", -1.0, 1.0},
      {"auto, margin 1.2", -1.0, 1.2},
      {"auto, margin 1.5", -1.0, 1.5},
  };

  util::Table table({"policy", "wakeup (s)", "peak joins", "overshoot",
                     "trims", "rebroadcasts"});

  util::ThreadPool pool;
  // The first case doubles as the metrics capture for the bench's
  // machine-readable output files.
  obs::MetricsSnapshot captured;
  std::vector<std::future<ProbeResult>> futures;
  for (const auto& c : cases) {
    obs::MetricsSnapshot* out = futures.empty() ? &captured : nullptr;
    futures.push_back(pool.submit([c, out] {
      return run(kPopulation, kTarget, c.probability, c.overshoot, 9001,
                 out);
    }));
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const ProbeResult r = futures[i].get();
    table.add_row(
        {cases[i].label,
         r.wakeup_seconds < 0 ? "never" : util::Table::fmt(r.wakeup_seconds, 1),
         util::Table::fmt_int(static_cast<long long>(r.peak_joins)),
         util::Table::fmt_int(
             static_cast<long long>(r.peak_joins > kTarget
                                        ? r.peak_joins - kTarget
                                        : 0)),
         util::Table::fmt_int(static_cast<long long>(r.trims)),
         util::Table::fmt_int(static_cast<long long>(r.rebroadcasts))});
  }
  table.print(std::cout);

  std::cout << "\nShape: p = 1 floods the instance (10x overshoot, heavy"
               " trimming); the exact\nexpectation p = target/pool risks"
               " binomial shortfall (extra rebroadcast rounds);\na small"
               " overshoot margin forms the instance in one round with"
               " modest trimming.\n";

  if (bench::metrics_enabled(argc, argv)) {
    bench::write_metrics("bench_ablation_probability", captured);
  }
  return 0;
}

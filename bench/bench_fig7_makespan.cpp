// Experiment E6 — Figure 7 of the paper: makespan of the application as a
// function of suitability Phi (log y-axis in the paper), same scenario as
// Figure 6: (s+r) = 1 KB, I = 10 MB, beta = 1 Mbps, delta = 150 Kbps,
// n/N in {1, 10, 100, 1000}.

#include <cmath>
#include <iostream>
#include <vector>

#include "analytical/models.hpp"
#include "bench_metrics.hpp"
#include "core/system.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/job.hpp"

namespace {

using namespace oddci;

constexpr std::size_t kSimNodes = 50;
const util::Bits kImage = util::Bits::from_megabytes(10);
const util::Bits kPayload = util::Bits::from_kilobytes(1);

analytical::JobModel job_model(double phi, std::size_t n) {
  analytical::SystemModel sm;
  analytical::JobModel jm;
  jm.n = n;
  jm.s_bits = kPayload.count() / 2.0;
  jm.r_bits = kPayload.count() / 2.0;
  jm.p_seconds = analytical::task_seconds_for_suitability(
      static_cast<double>(kPayload.count()), sm.delta, phi);
  jm.image = kImage;
  return jm;
}

double simulate_makespan(double phi, std::size_t ratio, std::uint64_t seed,
                         obs::MetricsSnapshot* metrics_out = nullptr) {
  analytical::SystemModel sm;
  core::SystemConfig config;
  config.receivers = 3 * kSimNodes;
  config.seed = seed;
  config.control.overshoot_margin = 1.3;
  const double est = analytical::makespan_seconds(
      sm, job_model(phi, ratio * kSimNodes), kSimNodes);
  config.controller.default_heartbeat =
      sim::SimTime::from_seconds(std::max(30.0, est / 500.0));
  config.control.monitor_interval = config.controller.default_heartbeat;

  core::OddciSystem system(config);
  const workload::Job job = workload::make_job_for_suitability(
      "fig7", kImage, ratio * kSimNodes, kPayload, config.delta, phi);
  const auto result = system.run_job(
      job, kSimNodes, sim::SimTime::from_seconds(est * 4.0 + 3600.0));
  if (metrics_out != nullptr) *metrics_out = result.metrics;
  return result.completed ? result.makespan_seconds : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Figure 7: makespan vs suitability Phi (log scale) ===\n"
            << "(s+r) = 1 KB, I = 10 MB, beta = 1 Mbps, delta = 150 Kbps\n\n";

  analytical::SystemModel sm;
  const std::vector<std::size_t> ratios = {1, 10, 100, 1000};
  std::vector<double> phis;
  for (double e = 0.0; e <= 5.0; e += 0.5) phis.push_back(std::pow(10.0, e));

  util::Table analytic({"Phi", "M n/N=1 (s)", "M n/N=10 (s)", "M n/N=100 (s)",
                        "M n/N=1000 (s)", "log10 spread"});
  for (double phi : phis) {
    std::vector<std::string> row;
    row.push_back(util::Table::fmt(phi, phi < 10 ? 1 : 0));
    double lo = 0, hi = 0;
    for (std::size_t ratio : ratios) {
      const double m =
          analytical::makespan_seconds(sm, job_model(phi, ratio * 100), 100);
      row.push_back(util::Table::fmt(m, 1));
      if (ratio == ratios.front()) lo = m;
      if (ratio == ratios.back()) hi = m;
    }
    row.push_back(util::Table::fmt(std::log10(hi / lo), 2));
    analytic.add_row(row);
  }
  std::cout << "Analytical (Eq. 1):\n";
  analytic.print(std::cout);

  struct SimPoint {
    double phi;
    std::size_t ratio;
  };
  const std::vector<SimPoint> sim_points = {
      {1.0, 1},   {1.0, 100},  {10.0, 10}, {100.0, 1},
      {100.0, 10}, {1000.0, 10},
  };
  util::ThreadPool pool;
  // The first simulated point's run_job also captures its RunResult
  // metrics for the bench's machine-readable output files.
  obs::MetricsSnapshot captured;
  std::vector<std::future<double>> futures;
  for (const auto& p : sim_points) {
    obs::MetricsSnapshot* out = futures.empty() ? &captured : nullptr;
    futures.push_back(pool.submit(
        [p, out] { return simulate_makespan(p.phi, p.ratio, 777, out); }));
  }
  util::Table simulated({"Phi", "n/N", "M analytical (s)", "M simulated (s)"});
  for (std::size_t i = 0; i < sim_points.size(); ++i) {
    const auto& p = sim_points[i];
    const double model = analytical::makespan_seconds(
        sm, job_model(p.phi, p.ratio * kSimNodes), kSimNodes);
    const double sim_m = futures[i].get();
    simulated.add_row({util::Table::fmt(p.phi, 0),
                       util::Table::fmt_int(static_cast<long long>(p.ratio)),
                       util::Table::fmt(model, 1),
                       sim_m < 0 ? "timeout" : util::Table::fmt(sim_m, 1)});
  }
  std::cout << "\nSimulated (discrete-event, N = " << kSimNodes << "):\n";
  simulated.print(std::cout);

  std::cout << "\nShape checks (paper): makespan grows linearly with Phi once"
               " task time dominates;\nhigh efficiency (large n/N) costs a"
               " proportionally longer makespan.\n";

  if (bench::metrics_enabled(argc, argv)) {
    bench::write_metrics("bench_fig7_makespan", captured);
  }
  return 0;
}

// Experiment E3 — Table III of the paper: BLASTCL3 (remote processing)
// tests #13-15. In BLASTCL3 the client ships the query to a remote server
// (NCBI) and downloads the report: local CPU barely matters, so — unlike
// Table II — the STB and the PC should perform nearly identically. The
// numbers in our source scan of the paper are illegible; the reproduction
// target is that structural collapse of the 20.6x gap (see EXPERIMENTS.md).
//
// The remote side is simulated: a well-provisioned server behind each
// device's return channel (delta = 150 Kbps for the STB, 10 Mbps broadband
// for the PC), with the server compute time derived from the same
// throughput model as Table II's reference PC (a server ~10x faster).

#include <iostream>

#include "core/messages.hpp"
#include "dtv/device_profile.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "util/table.hpp"
#include "workload/blast_tests.hpp"

namespace {

using namespace oddci;

/// One remote BLAST round trip: upload the query, wait for the server to
/// search, download the report.
struct RemoteRun {
  double total_seconds = 0.0;
  double network_seconds = 0.0;
  double server_seconds = 0.0;
};

class Collector final : public net::Endpoint {
 public:
  void on_message(net::NodeId, const net::MessagePtr&) override {
    ++deliveries;
  }
  int deliveries = 0;
};

RemoteRun simulate_remote(const workload::BlastTestSpec& spec,
                          util::BitRate client_rate,
                          double client_slowdown) {
  sim::Simulation sim;
  net::Network net(sim);

  Collector client, server;
  const net::NodeId client_id = net.register_endpoint(
      &client, {client_rate, client_rate, sim::SimTime::from_millis(40)});
  const net::NodeId server_id = net.register_endpoint(
      &server, {util::BitRate::from_mbps(1000),
                util::BitRate::from_mbps(1000), sim::SimTime::from_millis(5)});

  // Query in FASTA (~1 byte per residue + headers); report ~ 50 KB.
  const auto query_bits =
      util::Bits::from_bytes(static_cast<std::int64_t>(spec.query_length) + 256);
  const auto report_bits = util::Bits::from_kilobytes(50);

  // Local pre/post-processing: formatting the query and rendering the
  // report, a tiny CPU cost scaled by the device slowdown.
  const double local_cpu = 0.02 * client_slowdown;

  // Server search: same cell model as Table II, on a server 10x the
  // reference PC.
  const double server_cpu =
      spec.modelled_cells() / (10.0 * workload::kReferencePcCellsPerSecond);

  RemoteRun run;
  sim::SimTime upload_done;
  net.send(client_id, server_id,
           std::make_shared<core::BlobMessage>(core::kTagRemoteQuery, 1,
                                               query_bits));
  sim.run();
  upload_done = sim.now();
  sim.schedule_in(sim::SimTime::from_seconds(server_cpu), [] {});
  sim.run();
  net.send(server_id, client_id,
           std::make_shared<core::BlobMessage>(core::kTagRemoteAnswer, 1,
                                               report_bits));
  sim.run();

  run.server_seconds = server_cpu;
  run.network_seconds = sim.now().seconds() - server_cpu;
  run.total_seconds = sim.now().seconds() + local_cpu;
  return run;
}

}  // namespace

int main() {
  std::cout << "=== Table III: BLASTCL3 remote processing, tests #13-15 ===\n\n";

  const dtv::DeviceProfile stb = dtv::DeviceProfile::stb_st7109();

  util::Table table({"#", "qlen", "STB in-use (s)", "STB standby (s)",
                     "PC (s)", "STB/PC ratio"});

  for (const auto& spec : workload::table3_specs()) {
    const RemoteRun stb_use =
        simulate_remote(spec, util::BitRate::from_kbps(150),
                        stb.slowdown(dtv::PowerMode::kInUse));
    const RemoteRun stb_sby =
        simulate_remote(spec, util::BitRate::from_kbps(150),
                        stb.slowdown(dtv::PowerMode::kStandby));
    const RemoteRun pc = simulate_remote(spec, util::BitRate::from_mbps(10),
                                         1.0);
    table.add_row(
        {util::Table::fmt_int(spec.id),
         util::Table::fmt_int(static_cast<long long>(spec.query_length)),
         util::Table::fmt(stb_use.total_seconds, 3),
         util::Table::fmt(stb_sby.total_seconds, 3),
         util::Table::fmt(pc.total_seconds, 3),
         util::Table::fmt(stb_use.total_seconds / pc.total_seconds, 2)});
  }
  table.print(std::cout);

  std::cout << "\nShape check: remote processing is network/server bound, so\n"
               "the STB/PC gap collapses from 20.6x (Table II, local) to ~"
               "a few x\n(driven only by the slower ADSL return channel and "
               "trivial local I/O).\n";
  return 0;
}

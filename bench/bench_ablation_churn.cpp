// Experiment E7 (ablation) — churn resilience: how an instance's size
// evolves under receiver on/off churn, with and without the Controller's
// recomposition (wakeup retransmission). The paper motivates retransmission
// in Section 3.2 ("a PNA can generally be switched off at the will of its
// owner ... the Controller may need to retransmit wakeup control messages
// to recompose OddCI instances") but does not quantify it; this ablation
// does.

#include <iostream>
#include <vector>

#include "bench_metrics.hpp"
#include "core/system.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace oddci;

struct ChurnResult {
  double mean_size = 0.0;
  double min_size = 0.0;
  std::uint64_t recompositions = 0;
  std::uint64_t pruned = 0;
};

ChurnResult run(double mean_on_s, double mean_off_s, bool recomposition,
                std::uint64_t seed,
                obs::MetricsSnapshot* metrics_out = nullptr) {
  core::SystemConfig config;
  config.receivers = 400;
  config.seed = seed;
  config.control.overshoot_margin = 1.3;
  core::ChurnOptions churn;
  churn.mean_on_seconds = mean_on_s;
  churn.mean_off_seconds = mean_off_s;
  config.churn = churn;

  core::OddciSystem system(config);
  system.controller().deploy_pna();
  system.simulation().run_until(sim::SimTime::from_seconds(120));

  core::InstanceSpec spec;
  spec.name = "churn-ablation";
  spec.target_size = 100;
  spec.image_size = util::Bits::from_megabytes(2);
  const auto id =
      system.provider().request_instance(spec, system.backend().node_id());

  // Let the instance form; then optionally stop recruiting (no wakeup
  // retransmission, wakeup taken off air) — pruning and trimming continue
  // either way, so the comparison isolates recomposition itself.
  system.simulation().run_until(sim::SimTime::from_minutes(15));
  if (!recomposition) {
    system.controller().set_recruiting(id, false);
  }
  util::RunningStats size;
  for (int minute = 0; minute < 240; ++minute) {
    system.simulation().run_until(system.simulation().now() +
                                  sim::SimTime::from_minutes(1));
    size.add(static_cast<double>(
        system.controller().status(id)->current_size));
  }

  ChurnResult result;
  result.mean_size = size.mean();
  result.min_size = size.min();
  result.recompositions = system.controller().stats().recompositions;
  result.pruned = system.controller().stats().members_pruned;
  if (metrics_out != nullptr) *metrics_out = system.metrics_snapshot();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Ablation: instance size under churn, with vs without "
               "recomposition ===\n"
            << "(target size 100, population 400, 4 h observation)\n\n";

  struct Scenario {
    const char* label;
    double on_s;
    double off_s;
  };
  const std::vector<Scenario> scenarios = {
      {"gentle (2h on / 30min off)", 7200, 1800},
      {"moderate (1h on / 30min off)", 3600, 1800},
      {"harsh (20min on / 20min off)", 1200, 1200},
  };

  util::Table table({"churn", "recompose", "mean size", "min size",
                     "rebroadcasts", "members pruned"});

  util::ThreadPool pool;
  // The first scenario's recomposition run doubles as the metrics capture
  // for the bench's machine-readable output files.
  obs::MetricsSnapshot captured;
  std::vector<std::future<ChurnResult>> futures;
  for (const auto& s : scenarios) {
    for (bool recompose : {true, false}) {
      obs::MetricsSnapshot* out =
          (futures.empty() && recompose) ? &captured : nullptr;
      futures.push_back(pool.submit([s, recompose, out] {
        return run(s.on_s, s.off_s, recompose, 31337, out);
      }));
    }
  }
  std::size_t i = 0;
  for (const auto& s : scenarios) {
    for (bool recompose : {true, false}) {
      const ChurnResult r = futures[i++].get();
      table.add_row({s.label, recompose ? "yes" : "no",
                     util::Table::fmt(r.mean_size, 1),
                     util::Table::fmt(r.min_size, 0),
                     util::Table::fmt_int(
                         static_cast<long long>(r.recompositions)),
                     util::Table::fmt_int(static_cast<long long>(r.pruned))});
    }
  }
  table.print(std::cout);

  std::cout << "\nShape: without recomposition the instance decays toward the"
               " churn's steady state;\nwith recomposition it hovers near the"
               " target at the cost of periodic rebroadcasts.\n";

  if (bench::metrics_enabled(argc, argv)) {
    bench::write_metrics("bench_ablation_churn", captured);
  }
  return 0;
}

#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include "sim/time.hpp"

namespace oddci::obs {
namespace {

using sim::SimTime;

TraceEvent make_event(std::uint64_t span, std::int64_t t_micros = 0) {
  TraceEvent e;
  e.t_micros = t_micros;
  e.trace_id = span;
  e.span_id = span;
  e.kind = TraceEventKind::kHeartbeatSent;
  e.component = TraceComponent::kPna;
  return e;
}

TEST(FlightRecorder, RejectsZeroCapacity) {
  EXPECT_THROW(FlightRecorder(0), std::invalid_argument);
}

TEST(FlightRecorder, RetainsEverythingBelowCapacity) {
  FlightRecorder rec(8);
  EXPECT_TRUE(rec.empty());
  for (std::uint64_t i = 1; i <= 5; ++i) rec.record(make_event(i));

  EXPECT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.total_recorded(), 5u);
  EXPECT_EQ(rec.overwritten(), 0u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].span_id, i + 1);  // oldest first
  }
}

TEST(FlightRecorder, OverwritesOldestWhenFull) {
  FlightRecorder rec(4);
  for (std::uint64_t i = 1; i <= 10; ++i) rec.record(make_event(i));

  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.overwritten(), 6u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // The flight recorder keeps the newest window, chronological order.
  EXPECT_EQ(events[0].span_id, 7u);
  EXPECT_EQ(events[1].span_id, 8u);
  EXPECT_EQ(events[2].span_id, 9u);
  EXPECT_EQ(events[3].span_id, 10u);
}

TEST(FlightRecorder, WrapsRepeatedly) {
  FlightRecorder rec(3);
  for (std::uint64_t i = 1; i <= 301; ++i) rec.record(make_event(i));
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().span_id, 299u);
  EXPECT_EQ(events.back().span_id, 301u);
}

TEST(FlightRecorder, ClearDropsEventsButKeepsCounters) {
  FlightRecorder rec(4);
  for (std::uint64_t i = 1; i <= 6; ++i) rec.record(make_event(i));
  rec.clear();

  EXPECT_TRUE(rec.empty());
  EXPECT_EQ(rec.events().size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 6u);  // history keeps counting

  // Id allocation continues past a clear: a fresh emit never reuses ids.
  const TraceContext ctx = rec.emit(
      SimTime::from_seconds(1.0), TraceEventKind::kInstanceRequest,
      TraceComponent::kProvider);
  EXPECT_GT(ctx.parent_span, 0u);
}

TEST(FlightRecorder, EmitStartsRootAndChainsChildren) {
  FlightRecorder rec(16);

  // Zero parent context -> new root: trace id equals the fresh span id.
  const TraceContext root = rec.emit(
      SimTime::from_seconds(1.0), TraceEventKind::kInstanceRequest,
      TraceComponent::kProvider, {}, /*actor=*/9, /*arg=*/100);
  EXPECT_TRUE(root.valid());
  EXPECT_EQ(root.trace_id, root.parent_span);

  const TraceContext child = rec.emit(
      SimTime::from_seconds(2.0), TraceEventKind::kControlFormat,
      TraceComponent::kController, root, /*actor=*/1, /*arg=*/2);
  EXPECT_EQ(child.trace_id, root.trace_id);  // same causal chain
  EXPECT_NE(child.parent_span, root.parent_span);

  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].parent_span, 0u);
  EXPECT_EQ(events[0].actor, 9u);
  EXPECT_EQ(events[0].arg, 100u);
  EXPECT_EQ(events[1].trace_id, events[0].trace_id);
  EXPECT_EQ(events[1].parent_span, events[0].span_id);
  EXPECT_EQ(events[1].t_micros, SimTime::from_seconds(2.0).micros());
  EXPECT_EQ(events[1].context().trace_id, child.trace_id);
}

TEST(FlightRecorder, DeterministicIdAssignment) {
  // Two recorders fed the same emission sequence produce identical events
  // — the property byte-identical exports rest on.
  FlightRecorder a(8), b(8);
  for (FlightRecorder* rec : {&a, &b}) {
    const TraceContext root = rec->emit(
        SimTime::from_seconds(1.0), TraceEventKind::kInstanceRequest,
        TraceComponent::kProvider, {}, 1, 50);
    rec->emit(SimTime::from_seconds(1.5), TraceEventKind::kControlFormat,
              TraceComponent::kController, root, 0, 1);
  }
  EXPECT_EQ(a.events(), b.events());
}

TEST(FlightRecorder, KindAndComponentNamesRoundTrip) {
  for (auto k = static_cast<std::uint8_t>(TraceEventKind::kInstanceRequest);
       k <= static_cast<std::uint8_t>(TraceEventKind::kMessageDropped); ++k) {
    const auto kind = static_cast<TraceEventKind>(k);
    EXPECT_NE(to_string(kind), "unknown");
    EXPECT_EQ(kind_from_string(to_string(kind)), kind);
  }
  for (auto c = static_cast<std::uint8_t>(TraceComponent::kProvider);
       c <= static_cast<std::uint8_t>(TraceComponent::kNetwork); ++c) {
    const auto component = static_cast<TraceComponent>(c);
    EXPECT_NE(to_string(component), "unknown");
    EXPECT_EQ(component_from_string(to_string(component)), component);
  }
  EXPECT_EQ(kind_from_string("no.such.kind"), TraceEventKind{});
  EXPECT_EQ(component_from_string("no.such.component"), TraceComponent{});
}

}  // namespace
}  // namespace oddci::obs

#include <gtest/gtest.h>

#include "core/system.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "workload/job.hpp"

namespace oddci::core {
namespace {

// --- RunResult::efficiency edge cases ---------------------------------------

TEST(RunResultEfficiency, ZeroNodesYieldsZero) {
  RunResult result;
  result.makespan_seconds = 100.0;
  EXPECT_DOUBLE_EQ(result.efficiency(1000, 30.0, 0), 0.0);
}

TEST(RunResultEfficiency, UnfinishedJobYieldsZero) {
  RunResult result;  // makespan stays at the "did not finish" sentinel
  EXPECT_LT(result.makespan_seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.efficiency(1000, 30.0, 100), 0.0);
  result.makespan_seconds = 0.0;
  EXPECT_DOUBLE_EQ(result.efficiency(1000, 30.0, 100), 0.0);
}

TEST(RunResultEfficiency, MatchesEquationTwo) {
  RunResult result;
  result.makespan_seconds = 600.0;
  // E = n * p / (M * N) = 1000 * 30 / (600 * 100) = 0.5
  EXPECT_DOUBLE_EQ(result.efficiency(1000, 30.0, 100), 0.5);
}

// --- SystemConfig validation of the merged controller knobs ------------------

TEST(SystemConfigValidate, RejectsBadControllerKnobs) {
  SystemConfig config;
  config.controller.overshoot_margin = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SystemConfig{};
  config.controller.default_heartbeat = sim::SimTime::zero();
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SystemConfig{};
  config.controller.monitor_interval = sim::SimTime::zero();
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SystemConfig{};
  config.obs.sample_interval = sim::SimTime::zero();
  EXPECT_THROW(config.validate(), std::invalid_argument);
  // ...unless observability is off entirely.
  config.obs.enabled = false;
  EXPECT_NO_THROW(config.validate());
}

// --- bounds-checked channel accessor ----------------------------------------

TEST(OddciSystemChannel, BoundsChecked) {
  SystemConfig config;
  config.receivers = 10;
  config.channels = 2;
  OddciSystem system(config);
  EXPECT_NO_THROW((void)system.channel());
  EXPECT_NO_THROW((void)system.channel(1));
  EXPECT_THROW((void)system.channel(2), std::out_of_range);
}

// --- acceptance: 100k-receiver run with full instrumentation ----------------

TEST(SystemMetrics, HundredThousandReceiverRunExportsFullSnapshot) {
  SystemConfig config;
  config.receivers = 100'000;
  config.channels = 8;
  config.aggregators = 16;
  config.seed = 99;
  config.controller.overshoot_margin = 1.3;
  // Sample fast enough to watch the join wave, not just steady state.
  config.obs.sample_interval = sim::SimTime::from_seconds(5);

  OddciSystem system(config);
  // Several task waves so the run spans multiple sampler intervals after
  // the instance forms.
  const workload::Job job = workload::make_uniform_job(
      "acceptance", util::Bits::from_megabytes(2), 30'000,
      util::Bits::from_bytes(512), util::Bits::from_bytes(512), 10.0);
  const RunResult result = system.run_job(job, 10'000);
  ASSERT_TRUE(result.completed);

  const obs::MetricsSnapshot& m = result.metrics;
  // Instance-size series tracked the formation of a 10k-member instance.
  const obs::SeriesSample* sizes = m.find_series("series.instance_size");
  ASSERT_NE(sizes, nullptr);
  ASSERT_FALSE(sizes->values.empty());
  double peak = 0.0;
  for (double v : sizes->values) peak = std::max(peak, v);
  EXPECT_GE(peak, 9'000.0);

  // Join latency histogram populated by every member admission.
  const obs::HistogramSample* joins =
      m.find_histogram("controller.join_latency_seconds");
  ASSERT_NE(joins, nullptr);
  EXPECT_GE(joins->count, 9'000u);
  EXPECT_GT(joins->sum, 0.0);

  // Heartbeat counters: the population reported, the controller heard.
  EXPECT_GT(m.counter_value("pna.heartbeats_sent"), 100'000u);
  EXPECT_GT(m.counter_value("controller.heartbeats_received") +
                m.counter_value("controller.aggregate_reports_received"),
            0u);

  // Legacy RunResult views mirror the registry cells.
  EXPECT_EQ(result.controller.heartbeats_received,
            m.counter_value("controller.heartbeats_received"));
  EXPECT_EQ(result.network.messages_delivered,
            m.counter_value("net.messages_delivered"));

  // And the whole snapshot survives a JSON export round-trip.
  const std::string path =
      ::testing::TempDir() + "/oddci_acceptance_metrics.json";
  obs::write_json(path, m);
  EXPECT_EQ(obs::read_json(path), m);
}

}  // namespace
}  // namespace oddci::core

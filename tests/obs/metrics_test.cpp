#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/trace.hpp"

namespace oddci::obs {
namespace {

// --- Counter / Gauge --------------------------------------------------------

TEST(Counter, IncrementForms) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  ++c;
  c.inc();
  c.inc(3);
  c += 5;
  EXPECT_EQ(c.value(), 10u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

// --- LogHistogram bucketing -------------------------------------------------

TEST(LogHistogram, BucketIndexEdges) {
  constexpr double kMin = 1e-6;
  // Everything below the floor — including zero, negatives and NaN —
  // lands in bucket 0.
  EXPECT_EQ(LogHistogram::bucket_index(0.0, kMin), 0u);
  EXPECT_EQ(LogHistogram::bucket_index(-1.0, kMin), 0u);
  EXPECT_EQ(LogHistogram::bucket_index(kMin / 2, kMin), 0u);
  EXPECT_EQ(LogHistogram::bucket_index(
                std::numeric_limits<double>::quiet_NaN(), kMin),
            0u);
  // The floor itself opens bucket 1; each power of two advances one bucket.
  EXPECT_EQ(LogHistogram::bucket_index(kMin, kMin), 1u);
  EXPECT_EQ(LogHistogram::bucket_index(kMin * 1.999, kMin), 1u);
  EXPECT_EQ(LogHistogram::bucket_index(kMin * 2.0, kMin), 2u);
  EXPECT_EQ(LogHistogram::bucket_index(kMin * 4.0, kMin), 3u);
  // Far beyond the top regular bucket: overflow.
  EXPECT_EQ(LogHistogram::bucket_index(
                std::numeric_limits<double>::infinity(), kMin),
            LogHistogram::kBucketCount - 1);
  EXPECT_EQ(LogHistogram::bucket_index(1e30, kMin),
            LogHistogram::kBucketCount - 1);
}

TEST(LogHistogram, BucketIndexMonotonic) {
  constexpr double kMin = 1e-6;
  std::size_t prev = 0;
  for (double x = kMin / 4; x < 1e9; x *= 1.7) {
    const std::size_t i = LogHistogram::bucket_index(x, kMin);
    EXPECT_GE(i, prev) << "x=" << x;
    EXPECT_LT(i, LogHistogram::kBucketCount);
    prev = i;
  }
}

TEST(LogHistogram, SamplesLandInsideTheirBucketEdges) {
  LogHistogram h(1e-6);
  for (double x : {1e-7, 1e-6, 3e-5, 0.4, 17.0, 3600.0}) {
    h.record(x);
    const std::size_t i = LogHistogram::bucket_index(x, h.min_value());
    EXPECT_GE(h.bucket(i), 1u);
    EXPECT_LE(h.bucket_lo(i), x);
    EXPECT_GT(h.bucket_hi(i), x);
  }
  EXPECT_EQ(h.count(), 6u);
}

TEST(LogHistogram, SummaryStats) {
  LogHistogram h(1e-3);
  h.record(0.5);
  h.record(1.5);
  h.record(4.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
  // The median lies in the bucket holding the second sample.
  const double med = h.quantile(0.5);
  EXPECT_GE(med, 1.0);
  EXPECT_LE(med, 2.1);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

// --- TimeSeries -------------------------------------------------------------

TEST(TimeSeries, CapCountsDropped) {
  TimeSeries s(3);
  for (int i = 0; i < 5; ++i) {
    s.record(static_cast<double>(i), static_cast<double>(i * i));
  }
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.dropped(), 2u);
  EXPECT_DOUBLE_EQ(s.times().back(), 2.0);
}

// --- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistry, OwnedCellsAreStableAndReused) {
  MetricsRegistry reg;
  Counter& a = reg.counter("a");
  Counter& again = reg.counter("a");
  EXPECT_EQ(&a, &again);
  ++a;
  // Registering more metrics must not invalidate earlier cells.
  for (int i = 0; i < 100; ++i) {
    reg.counter("c" + std::to_string(i));
  }
  ++again;
  EXPECT_EQ(reg.counter("a").value(), 2u);
  EXPECT_TRUE(reg.has("a"));
  EXPECT_FALSE(reg.has("missing"));
}

TEST(MetricsRegistry, SnapshotIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.counter("z.last").inc(1);
  reg.counter("a.first").inc(2);
  Counter linked;
  linked.inc(7);
  reg.link_counter("m.linked", linked);
  reg.gauge("g").set(3.5);
  reg.link_probe("p.lazy", [] { return 11.0; });
  reg.histogram("h").record(0.25);
  reg.series("s").record(1.0, 2.0);

  const MetricsSnapshot snap = reg.snapshot(42.0);
  EXPECT_DOUBLE_EQ(snap.taken_at_seconds, 42.0);
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[1].name, "m.linked");
  EXPECT_EQ(snap.counters[2].name, "z.last");
  EXPECT_EQ(snap.counter_value("m.linked"), 7u);
  EXPECT_EQ(snap.counter_value("missing", 99u), 99u);
  // Probes are exported as gauges, merged and sorted with the real ones.
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].name, "g");
  EXPECT_EQ(snap.gauges[1].name, "p.lazy");
  EXPECT_DOUBLE_EQ(snap.gauges[1].value, 11.0);
  ASSERT_NE(snap.find_histogram("h"), nullptr);
  EXPECT_EQ(snap.find_histogram("h")->count, 1u);
  ASSERT_NE(snap.find_series("s"), nullptr);
  EXPECT_EQ(snap.find_series("s")->times.size(), 1u);
}

TEST(MetricsRegistry, SpanRetentionIsBounded) {
  MetricsRegistry reg;
  reg.set_max_spans(4);
  for (int i = 0; i < 10; ++i) {
    reg.record_span("cycle", static_cast<std::uint64_t>(i),
                    static_cast<double>(i), static_cast<double>(i) + 0.5);
  }
  EXPECT_EQ(reg.spans_dropped(), 6u);
  EXPECT_EQ(reg.snapshot(0.0).spans.size(), 4u);
}

// --- Tracer -----------------------------------------------------------------

TEST(Tracer, SpanLifecycle) {
  MetricsRegistry reg;
  Tracer tracer(reg);
  LogHistogram latency(1e-3);

  tracer.begin("form", 1, 10.0);
  EXPECT_EQ(tracer.open_count(), 1u);
  EXPECT_DOUBLE_EQ(tracer.end("form", 1, 12.5, &latency), 2.5);
  EXPECT_EQ(tracer.open_count(), 0u);
  EXPECT_EQ(latency.count(), 1u);

  // Ending a never-begun span is a counted no-op.
  EXPECT_LT(tracer.end("form", 2, 1.0), 0.0);
  EXPECT_EQ(tracer.unmatched_ends(), 1u);

  // Discarded spans are not exported.
  tracer.begin("form", 3, 1.0);
  EXPECT_TRUE(tracer.discard("form", 3));
  EXPECT_FALSE(tracer.discard("form", 3));

  const MetricsSnapshot snap = reg.snapshot(20.0);
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].name, "form");
  EXPECT_DOUBLE_EQ(snap.spans[0].start_seconds, 10.0);
  EXPECT_DOUBLE_EQ(snap.spans[0].end_seconds, 12.5);
}

TEST(Tracer, ReBeginRestartsTheSpan) {
  MetricsRegistry reg;
  Tracer tracer(reg);
  tracer.begin("form", 1, 10.0);
  tracer.begin("form", 1, 20.0);  // wakeup retransmitted
  EXPECT_DOUBLE_EQ(tracer.end("form", 1, 25.0), 5.0);
}

TEST(Tracer, InterningAssignsStableIds) {
  MetricsRegistry reg;
  Tracer tracer(reg);

  const Tracer::NameId form = tracer.intern("instance.form");
  const Tracer::NameId cycle = tracer.intern("task.cycle");
  EXPECT_NE(form, 0u);
  EXPECT_NE(form, cycle);
  EXPECT_EQ(tracer.intern("instance.form"), form);  // idempotent
  EXPECT_EQ(tracer.interned_count(), 2u);
  EXPECT_EQ(tracer.name_of(form), "instance.form");
  EXPECT_EQ(tracer.name_of(0), "");
  EXPECT_EQ(tracer.name_of(99), "");
}

TEST(Tracer, IdAndStringPathsShareSpans) {
  MetricsRegistry reg;
  Tracer tracer(reg);

  // A span begun through the hot id path must be visible to the string
  // convenience overload, and vice versa.
  const Tracer::NameId id = tracer.intern("task.cycle");
  tracer.begin(id, 7, 1.0);
  EXPECT_DOUBLE_EQ(tracer.end("task.cycle", 7, 3.0), 2.0);

  tracer.begin("task.cycle", 8, 5.0);
  EXPECT_TRUE(tracer.discard(id, 8));
  EXPECT_EQ(tracer.open_count(), 0u);

  // The exported span carries the interned name, not an id.
  const MetricsSnapshot snap = reg.snapshot(10.0);
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].name, "task.cycle");
}

}  // namespace
}  // namespace oddci::obs

#include "obs/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/system.hpp"
#include "obs/json.hpp"
#include "sim/time.hpp"
#include "workload/job.hpp"

namespace oddci::obs {
namespace {

using sim::SimTime;

TraceEvent make_event(std::uint64_t trace, std::uint64_t span,
                      std::uint64_t parent, std::int64_t t_micros,
                      TraceEventKind kind, TraceComponent component,
                      std::uint64_t actor = 0, std::uint64_t arg = 0) {
  TraceEvent e;
  e.t_micros = t_micros;
  e.trace_id = trace;
  e.span_id = span;
  e.parent_span = parent;
  e.actor = actor;
  e.arg = arg;
  e.kind = kind;
  e.component = component;
  return e;
}

TEST(TraceExport, RoundTripIsExact) {
  // Ids above 2^53 would be mangled by a double-based JSON reader; the
  // exporter carries them as strings, so the round trip must be exact.
  const std::uint64_t big = (1ULL << 63) + 12345;
  const std::vector<TraceEvent> events = {
      make_event(big, big, 0, 0, TraceEventKind::kInstanceRequest,
                 TraceComponent::kProvider, big - 1, big - 2),
      make_event(big, big + 1, big, 1500000, TraceEventKind::kControlFormat,
                 TraceComponent::kController, 7, 2),
      make_event(big, big + 2, big + 1, 2750000,
                 TraceEventKind::kMemberJoined, TraceComponent::kPna, 42, 1),
  };
  const std::string json = to_chrome_trace(events);
  EXPECT_EQ(events_from_chrome_trace(json), events);
}

TEST(TraceExport, ChromeTraceStructure) {
  const std::vector<TraceEvent> events = {
      make_event(1, 1, 0, 1000000, TraceEventKind::kInstanceRequest,
                 TraceComponent::kProvider),
      make_event(1, 2, 1, 2000000, TraceEventKind::kControlFormat,
                 TraceComponent::kController),
  };
  const json::Value root = json::parse(to_chrome_trace(events));
  const json::Object& obj = root.as_object();
  EXPECT_EQ(json::member(obj, "schema").as_string(), kTraceSchema);

  const json::Array& items = json::member(obj, "traceEvents").as_array();
  std::size_t metadata = 0, slices = 0, flow_starts = 0, flow_ends = 0;
  for (const json::Value& item : items) {
    const json::Object& eo = item.as_object();
    const std::string& ph = json::member(eo, "ph").as_string();
    // Every event carries the fields the Chrome trace viewer requires.
    EXPECT_NE(json::find(eo, "pid"), nullptr);
    EXPECT_NE(json::find(eo, "tid"), nullptr);
    if (ph == "M") {
      ++metadata;
    } else if (ph == "X") {
      ++slices;
      EXPECT_NE(json::find(eo, "ts"), nullptr);
      EXPECT_NE(json::find(eo, "dur"), nullptr);
      EXPECT_NE(json::find(eo, "args"), nullptr);
    } else if (ph == "s") {
      ++flow_starts;
    } else if (ph == "f") {
      ++flow_ends;
    } else {
      FAIL() << "unexpected phase " << ph;
    }
  }
  EXPECT_EQ(metadata, 8u);  // one thread_name record per component track
  EXPECT_EQ(slices, events.size());
  EXPECT_EQ(flow_starts, 1u);  // one parent->child edge
  EXPECT_EQ(flow_ends, 1u);
}

TEST(TraceExport, FlowArrowsAnchorAtTheParentEvent) {
  const std::vector<TraceEvent> events = {
      make_event(1, 1, 0, 1000000, TraceEventKind::kInstanceRequest,
                 TraceComponent::kProvider),
      make_event(1, 2, 1, 5000000, TraceEventKind::kControlFormat,
                 TraceComponent::kController),
  };
  const json::Value root = json::parse(to_chrome_trace(events));
  const json::Object& obj = root.as_object();
  for (const json::Value& item : json::member(obj, "traceEvents").as_array()) {
    const json::Object& eo = item.as_object();
    const std::string& ph = json::member(eo, "ph").as_string();
    if (ph == "s") {
      // The arrow starts on the provider's track at the parent's time...
      EXPECT_EQ(json::member(eo, "tid").as_u64(),
                static_cast<std::uint64_t>(TraceComponent::kProvider));
      EXPECT_EQ(json::member(eo, "ts").as_i64(), 1000000);
    } else if (ph == "f") {
      // ...and ends on the controller's track at the child's time.
      EXPECT_EQ(json::member(eo, "tid").as_u64(),
                static_cast<std::uint64_t>(TraceComponent::kController));
      EXPECT_EQ(json::member(eo, "ts").as_i64(), 5000000);
    }
  }
}

TEST(TraceExport, OverwrittenParentGetsNoArrow) {
  // Parent span 1 is not among the retained events (the ring overwrote
  // it); the child keeps its ids in args but no dangling flow is emitted.
  const std::vector<TraceEvent> events = {
      make_event(1, 2, 1, 2000000, TraceEventKind::kControlFormat,
                 TraceComponent::kController),
  };
  const std::string json_text = to_chrome_trace(events);
  EXPECT_EQ(json_text.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_EQ(json_text.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_EQ(events_from_chrome_trace(json_text), events);
}

TEST(TraceExport, RejectsForeignSchemaAndMalformedInput) {
  EXPECT_THROW(events_from_chrome_trace("{\"traceEvents\":[]}"),
               std::runtime_error);
  EXPECT_THROW(
      events_from_chrome_trace(
          "{\"schema\":\"other.v9\",\"traceEvents\":[]}"),
      std::runtime_error);
  EXPECT_THROW(events_from_chrome_trace("{\"schema\":"), std::runtime_error);
  EXPECT_THROW(events_from_chrome_trace("not json"), std::runtime_error);
}

TEST(TraceExport, FileRoundTrip) {
  FlightRecorder rec(8);
  const TraceContext root =
      rec.emit(SimTime::from_seconds(1.0), TraceEventKind::kInstanceRequest,
               TraceComponent::kProvider, {}, 1, 10);
  rec.emit(SimTime::from_seconds(2.0), TraceEventKind::kControlFormat,
           TraceComponent::kController, root, 0, 1);

  const std::string path =
      testing::TempDir() + "/oddci_trace_export_test.trace.json";
  write_chrome_trace(path, rec);
  EXPECT_EQ(read_chrome_trace(path), rec.events());
  std::remove(path.c_str());
}

core::SystemConfig small_traced_config() {
  core::SystemConfig config;
  config.receivers = 120;
  config.seed = 11;
  config.obs.trace = true;
  return config;
}

std::string run_and_export(const core::SystemConfig& config) {
  core::OddciSystem system(config);
  const workload::Job job = workload::make_uniform_job(
      "trace-det", util::Bits::from_megabytes(2), 30,
      util::Bits::from_bytes(256), util::Bits::from_bytes(256), 10.0);
  const core::RunResult result = system.run_job(job, 10);
  EXPECT_TRUE(result.completed);
  EXPECT_NE(system.flight_recorder(), nullptr);
  EXPECT_FALSE(system.flight_recorder()->empty());
  return to_chrome_trace(*system.flight_recorder());
}

TEST(TraceExport, SeededSystemRunsExportByteIdentical) {
  // Acceptance criterion: two same-seed runs with the recorder enabled
  // produce byte-identical Chrome-trace exports.
  const std::string first = run_and_export(small_traced_config());
  const std::string second = run_and_export(small_traced_config());
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);

  // The causal chain reaches every layer: wakeup cycle and task cycle.
  for (const char* kind :
       {"instance.request", "control.format", "carousel.commit",
        "control.received", "wakeup.accepted", "image.acquired",
        "heartbeat.sent", "member.joined", "instance.ready",
        "task.dispatched", "task.executed", "task.result"}) {
    EXPECT_NE(first.find(kind), std::string::npos) << kind;
  }

  // And the dispatch chain is causally rooted in the Provider's request:
  // every task.dispatched parent resolves up to the instance's root.
  const std::vector<TraceEvent> events = events_from_chrome_trace(first);
  std::uint64_t root_trace = 0;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kInstanceRequest) {
      root_trace = e.trace_id;
      break;
    }
  }
  ASSERT_NE(root_trace, 0u);
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kTaskDispatched) {
      EXPECT_EQ(e.trace_id, root_trace);
    }
  }
}

TEST(TraceExport, DisabledByDefaultRecordsNothing) {
  core::SystemConfig config;
  config.receivers = 50;
  core::OddciSystem system(config);
  EXPECT_EQ(system.flight_recorder(), nullptr);
}

}  // namespace
}  // namespace oddci::obs

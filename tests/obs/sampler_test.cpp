#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include "core/system.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"
#include "workload/job.hpp"

namespace oddci::obs {
namespace {

TEST(Sampler, OptionsValidate) {
  Sampler::Options bad;
  bad.interval = sim::SimTime::zero();
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = Sampler::Options{};
  bad.max_points = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Sampler, GaugeSeriesRecordsEveryInterval) {
  sim::Simulation simulation;
  MetricsRegistry reg;
  Sampler::Options opts;
  opts.interval = sim::SimTime::from_seconds(10);
  Sampler sampler(simulation, reg, opts);

  double level = 0.0;
  sampler.add_gauge_series("level", [&level] { return level; });
  sampler.start();
  EXPECT_TRUE(sampler.running());

  simulation.schedule_at(sim::SimTime::from_seconds(15),
                         [&level] { level = 5.0; });
  simulation.run_until(sim::SimTime::from_seconds(35));

  const MetricsSnapshot snap = reg.snapshot(35.0);
  const SeriesSample* s = snap.find_series("level");
  ASSERT_NE(s, nullptr);
  // First tick one interval after start: t = 10, 20, 30.
  ASSERT_EQ(s->times.size(), 3u);
  EXPECT_DOUBLE_EQ(s->times[0], 10.0);
  EXPECT_DOUBLE_EQ(s->values[0], 0.0);
  EXPECT_DOUBLE_EQ(s->values[1], 5.0);
  EXPECT_DOUBLE_EQ(s->values[2], 5.0);
  EXPECT_EQ(sampler.ticks(), 3u);
}

TEST(Sampler, RateSeriesIsPerSecondDelta) {
  sim::Simulation simulation;
  MetricsRegistry reg;
  Sampler::Options opts;
  opts.interval = sim::SimTime::from_seconds(10);
  Sampler sampler(simulation, reg, opts);

  Counter beats;
  sampler.add_rate_series("rate", beats);
  sampler.start();

  // 30 increments in the first interval, none in the second.
  simulation.schedule_at(sim::SimTime::from_seconds(5),
                         [&beats] { beats.inc(30); });
  simulation.run_until(sim::SimTime::from_seconds(25));

  const MetricsSnapshot snap = reg.snapshot(25.0);
  const SeriesSample* s = snap.find_series("rate");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->times.size(), 2u);
  EXPECT_DOUBLE_EQ(s->values[0], 3.0);  // 30 per 10 s
  EXPECT_DOUBLE_EQ(s->values[1], 0.0);
}

TEST(Sampler, ProbesMustRegisterBeforeStart) {
  sim::Simulation simulation;
  MetricsRegistry reg;
  Sampler sampler(simulation, reg);
  sampler.start();
  EXPECT_THROW(sampler.add_gauge_series("late", [] { return 0.0; }),
               std::logic_error);
  Counter c;
  EXPECT_THROW(sampler.add_rate_series("late", c), std::logic_error);
  sampler.stop();
  EXPECT_FALSE(sampler.running());
}

// Two runs of the same seeded scenario must produce bit-identical
// snapshots — counters, histograms, sampled series and spans alike. The
// sampler reads counters only (no RNG, no allocation on the tick path), so
// any divergence here means the instrumentation perturbed the simulation.
TEST(Sampler, SeededRunsProduceBitIdenticalSnapshots) {
  const auto run_once = [] {
    core::SystemConfig config;
    config.receivers = 300;
    config.seed = 1234;
    config.control.overshoot_margin = 1.3;
    core::OddciSystem system(config);
    const workload::Job job = workload::make_uniform_job(
        "determinism", util::Bits::from_megabytes(2), 200,
        util::Bits::from_bytes(512), util::Bits::from_bytes(512), 10.0);
    return system.run_job(job, 50);
  };

  const core::RunResult a = run_once();
  const core::RunResult b = run_once();
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.metrics, b.metrics);
  // Spot-check the snapshot is non-trivial, not vacuously equal.
  EXPECT_GT(a.metrics.counter_value("pna.heartbeats_sent"), 0u);
  const SeriesSample* sizes = a.metrics.find_series("series.instance_size");
  ASSERT_NE(sizes, nullptr);
  EXPECT_FALSE(sizes->times.empty());
}

// Disabling observability removes the registry, the sampler and the
// snapshot — and must not change the simulation itself.
TEST(Sampler, ObsDisabledLeavesRunIdentical) {
  const auto run_once = [](bool obs_enabled) {
    core::SystemConfig config;
    config.receivers = 300;
    config.seed = 1234;
    config.control.overshoot_margin = 1.3;
    config.obs.enabled = obs_enabled;
    core::OddciSystem system(config);
    EXPECT_EQ(system.metrics() != nullptr, obs_enabled);
    EXPECT_EQ(system.sampler() != nullptr, obs_enabled);
    const workload::Job job = workload::make_uniform_job(
        "determinism", util::Bits::from_megabytes(2), 200,
        util::Bits::from_bytes(512), util::Bits::from_bytes(512), 10.0);
    return system.run_job(job, 50);
  };

  const core::RunResult with_obs = run_once(true);
  const core::RunResult without_obs = run_once(false);
  EXPECT_EQ(without_obs.metrics, obs::MetricsSnapshot{});
  EXPECT_DOUBLE_EQ(with_obs.makespan_seconds, without_obs.makespan_seconds);
  EXPECT_DOUBLE_EQ(with_obs.wakeup_seconds, without_obs.wakeup_seconds);
  EXPECT_EQ(with_obs.network.messages_delivered,
            without_obs.network.messages_delivered);
}

}  // namespace
}  // namespace oddci::obs

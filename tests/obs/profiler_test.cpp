// Kernel profiler accounting and the conservation-invariant health
// auditor: window math (barrier charge, utilization, imbalance), the
// oddci.profile.v1 round trip, histogram quantiles in the metrics export,
// and the auditor's severity grading on cooked ledgers.

#include <gtest/gtest.h>

#include <string>

#include "obs/export.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace oddci::obs {
namespace {

TEST(KernelProfiler, ChargesWindowRemainderToBarrierStall) {
  KernelProfiler profiler(2);
  // Shard 0 burned 80 ns of the 100 ns window, shard 1 burned 20 ns.
  profiler.add_execute(0, 80);
  profiler.add_execute(1, 20);
  profiler.on_window(100);

  EXPECT_EQ(profiler.windows(), 1u);
  EXPECT_EQ(profiler.execute_nanos(0), 80u);
  EXPECT_EQ(profiler.execute_nanos(1), 20u);
  EXPECT_EQ(profiler.barrier_nanos(0), 20u);
  EXPECT_EQ(profiler.barrier_nanos(1), 80u);
  // busy_sum / (k * span) = 100 / 200.
  EXPECT_DOUBLE_EQ(profiler.utilization_mean(), 0.5);
  // busy_max / mean = 80 / 50.
  EXPECT_DOUBLE_EQ(profiler.imbalance_mean(), 1.6);
  EXPECT_DOUBLE_EQ(profiler.imbalance_max(), 1.6);
}

TEST(KernelProfiler, WindowDeltasAreIncrementalAcrossWindows) {
  KernelProfiler profiler(2);
  profiler.add_execute(0, 50);
  profiler.add_execute(1, 50);
  profiler.on_window(50);
  // Perfectly balanced first window: no stall, imbalance 1.
  EXPECT_EQ(profiler.barrier_nanos(0), 0u);
  EXPECT_DOUBLE_EQ(profiler.imbalance_max(), 1.0);

  // Second window only shard 0 works; the delta (not the running total)
  // must be charged.
  profiler.add_execute(0, 40);
  profiler.on_window(40);
  EXPECT_EQ(profiler.barrier_nanos(0), 0u);
  EXPECT_EQ(profiler.barrier_nanos(1), 40u);
  EXPECT_DOUBLE_EQ(profiler.imbalance_max(), 2.0);
  // Utilization: mean of 1.0 and 40/80.
  EXPECT_DOUBLE_EQ(profiler.utilization_mean(), 0.75);
}

TEST(KernelProfiler, AnExecuteOverrunNeverUnderflowsTheBarrierCharge) {
  KernelProfiler profiler(1);
  // The coordinator's span is measured around the worker wait, so a shard
  // can report more execute time than the span; the stall must clamp at 0.
  profiler.add_execute(0, 120);
  profiler.on_window(100);
  EXPECT_EQ(profiler.barrier_nanos(0), 0u);
}

TEST(KernelProfiler, DrainAndGlobalAccumulate) {
  KernelProfiler profiler(4);
  profiler.add_drain(100, 7);
  profiler.add_drain(50, 11);
  profiler.add_global(30, 2);
  EXPECT_EQ(profiler.drain_nanos(), 150u);
  EXPECT_EQ(profiler.drain_calls(), 2u);
  EXPECT_EQ(profiler.mail_items(), 18u);
  EXPECT_EQ(profiler.mail_items_max(), 11u);
  EXPECT_EQ(profiler.global_nanos(), 30u);
  EXPECT_EQ(profiler.global_tasks(), 2u);
}

TEST(ProfileSnapshot, JsonRoundTripIsExact) {
  KernelProfiler profiler(2);
  profiler.begin_run();
  profiler.add_execute(0, 1'000);
  profiler.add_execute(1, 3'000);
  profiler.on_window(4'000);
  profiler.add_drain(500, 3);
  profiler.add_global(200, 1);
  profiler.end_run(1'000'000);

  ProfileSnapshot snapshot = take_profile(profiler);
  snapshot.cross_posts = 42;
  snapshot.clamped_posts = 7;
  snapshot.per_shard[0].events_executed = 123;
  snapshot.per_shard[0].events_scheduled = 130;
  snapshot.per_shard[0].events_cancelled = 2;
  snapshot.per_shard[0].events_pending = 5;

  const std::string json = to_profile_json(snapshot);
  EXPECT_NE(json.find(kProfileSchema), std::string::npos);
  const ProfileSnapshot parsed = profile_from_json(json);
  EXPECT_EQ(parsed, snapshot);
  // Re-export of the parse is the fixed point.
  EXPECT_EQ(to_profile_json(parsed), json);
}

TEST(ProfileSnapshot, ForeignSchemaIsRejected) {
  EXPECT_THROW(profile_from_json(R"({"schema":"oddci.metrics.v1"})"),
               std::runtime_error);
}

TEST(HistogramQuantile, MatchesTheLiveHistogram) {
  LogHistogram hist(1e-3);
  for (int i = 1; i <= 1000; ++i) hist.record(static_cast<double>(i) / 100.0);

  HistogramSample sample;
  sample.min_value = hist.min_value();
  sample.count = hist.count();
  sample.sum = hist.sum();
  sample.min = hist.min();
  sample.max = hist.max();
  for (std::size_t i = 0; i < LogHistogram::kBucketCount; ++i) {
    sample.buckets.push_back(hist.bucket(i));
  }
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(histogram_quantile(sample, q), hist.quantile(q))
        << "q=" << q;
  }
  EXPECT_EQ(histogram_quantile(HistogramSample{}, 0.5), 0.0);
}

TEST(MetricsExport, HistogramsCarryQuantiles) {
  MetricsRegistry registry;
  LogHistogram hist(1e-3);
  for (int i = 1; i <= 100; ++i) hist.record(static_cast<double>(i));
  registry.link_histogram("test.latency", hist);
  const MetricsSnapshot snap = registry.snapshot(1.0);
  const std::string json = to_json(snap);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  // Quantiles are derived, not state: the parse-and-re-export fixed point
  // must hold with them present.
  EXPECT_EQ(to_json(snapshot_from_json(json)), json);
}

// --- health auditor ---------------------------------------------------------

HealthLedger clean_ledger() {
  HealthLedger ledger;
  ledger.messages_sent = 1'000;
  ledger.messages_lost = 50;
  ledger.messages_duplicated = 10;
  ledger.arrivals_scheduled = 960;  // sent - lost + duplicated
  ledger.messages_delivered = 950;
  ledger.messages_dropped = 5;  // 5 still in flight
  ledger.heartbeats_emitted = 400;
  ledger.heartbeats_lost = 20;
  ledger.heartbeats_duplicated = 4;
  ledger.heartbeats_received = 380;
  ledger.heartbeats_dropped = 2;  // 2 in flight
  ledger.shards.push_back({200, 150, 10, 40});
  ledger.pool_active = true;
  ledger.pool_acquired = 400;
  ledger.pool_expected = 400;
  return ledger;
}

TEST(HealthAuditor, CleanLedgerPassesAllChecks) {
  const HealthReport mid = HealthAuditor::evaluate(clean_ledger(), 10.0,
                                                   /*at_end=*/false);
  EXPECT_TRUE(mid.ok());
  EXPECT_EQ(mid.worst(), HealthSeverity::kOk);

  // At run end, in-flight remainders demote to Info — still ok().
  const HealthReport end = HealthAuditor::evaluate(clean_ledger(), 10.0,
                                                   /*at_end=*/true);
  EXPECT_TRUE(end.ok());
  EXPECT_EQ(end.worst(), HealthSeverity::kInfo);
}

TEST(HealthAuditor, LossUndercountIsCritical) {
  HealthLedger ledger = clean_ledger();
  // The injector "forgot" 10 losses: scheduled arrivals no longer match
  // sent - lost + duplicated.
  ledger.messages_lost -= 10;
  const HealthReport report =
      HealthAuditor::evaluate(ledger, 10.0, /*at_end=*/true);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.worst(), HealthSeverity::kCritical);
}

TEST(HealthAuditor, NegativeResidualsAreCritical) {
  // More deliveries+drops than scheduled arrivals: double delivery.
  HealthLedger over = clean_ledger();
  over.messages_delivered = 970;
  EXPECT_EQ(HealthAuditor::evaluate(over, 1.0, true).worst(),
            HealthSeverity::kCritical);

  // More heartbeats heard than survived the wire.
  HealthLedger hb = clean_ledger();
  hb.heartbeats_received = 999;
  EXPECT_EQ(HealthAuditor::evaluate(hb, 1.0, true).worst(),
            HealthSeverity::kCritical);
}

TEST(HealthAuditor, ShardEventImbalanceIsCritical) {
  HealthLedger ledger = clean_ledger();
  ledger.shards.push_back({100, 90, 5, 4});  // 99 != 100
  const HealthReport report = HealthAuditor::evaluate(ledger, 1.0, false);
  EXPECT_EQ(report.worst(), HealthSeverity::kCritical);
}

TEST(HealthAuditor, PoolImbalanceOnlyCountsWhenActive) {
  HealthLedger ledger = clean_ledger();
  ledger.pool_acquired = 399;
  EXPECT_EQ(HealthAuditor::evaluate(ledger, 1.0, false).worst(),
            HealthSeverity::kCritical);
  ledger.pool_active = false;
  EXPECT_TRUE(HealthAuditor::evaluate(ledger, 1.0, false).ok());
}

TEST(HealthAuditor, SamplingRecordsTheFirstViolation) {
  HealthLedger ledger = clean_ledger();
  bool tampered = false;
  HealthAuditor auditor([&] {
    HealthLedger l = ledger;
    if (tampered) l.messages_lost -= 10;
    return l;
  });
  auditor.sample(10.0);
  tampered = true;
  auditor.sample(20.0);
  auditor.sample(30.0);
  const HealthReport report = auditor.finalize(40.0);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.samples, 3u);
  EXPECT_DOUBLE_EQ(report.first_violation_seconds, 20.0);
  EXPECT_NE(report.to_text().find("critical"), std::string::npos);
}

}  // namespace
}  // namespace oddci::obs

#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "obs/metrics.hpp"

namespace oddci::obs {
namespace {

// A snapshot exercising every section with values that stress the
// serializer: uint64 beyond 2^53 (not representable as a double), doubles
// with no finite decimal expansion, zeros, and empty collections.
MetricsSnapshot sample_snapshot() {
  MetricsRegistry reg;
  reg.counter("big").inc(0x20000000000001ull);  // 2^53 + 1
  reg.counter("zero");
  reg.gauge("g.pi").set(3.141592653589793);
  reg.gauge("g.tenth").set(0.1);
  LogHistogram& h = reg.histogram("lat", 1e-6);
  h.record(0.0);  // below the floor -> bucket 0
  h.record(2.5e-4);
  h.record(1.0 / 3.0);
  TimeSeries& s = reg.series("ts", 2);
  s.record(10.0, 1.0);
  s.record(20.0, 0.125);
  s.record(30.0, 9.0);  // over the cap -> dropped
  reg.record_span("cycle", 7, 1.25, 2.75);
  return reg.snapshot(123.456);
}

TEST(JsonExport, RoundTripIsBitIdentical) {
  const MetricsSnapshot original = sample_snapshot();
  const std::string json = to_json(original);
  EXPECT_NE(json.find(kMetricsSchema), std::string::npos);
  const MetricsSnapshot parsed = snapshot_from_json(json);
  EXPECT_EQ(parsed, original);
  // A second serialize -> parse cycle must be a fixed point.
  EXPECT_EQ(to_json(parsed), json);
}

TEST(JsonExport, LargeCounterSurvivesExactly) {
  const MetricsSnapshot parsed = snapshot_from_json(to_json(sample_snapshot()));
  // 2^53 + 1 is where double-roundtripping integers starts losing bits.
  EXPECT_EQ(parsed.counter_value("big"), 0x20000000000001ull);
}

TEST(JsonExport, HistogramBucketsSurvive) {
  const MetricsSnapshot original = sample_snapshot();
  const MetricsSnapshot parsed = snapshot_from_json(to_json(original));
  const HistogramSample* h = parsed.find_histogram("lat");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->buckets.size(), LogHistogram::kBucketCount);
  EXPECT_EQ(h->count, 3u);
  EXPECT_EQ(h->buckets[0], 1u);  // the below-floor sample
  EXPECT_EQ(*h, *original.find_histogram("lat"));
}

TEST(JsonExport, EmptySnapshotRoundTrips) {
  const MetricsSnapshot empty;
  EXPECT_EQ(snapshot_from_json(to_json(empty)), empty);
}

TEST(JsonExport, RejectsWrongSchemaAndGarbage) {
  EXPECT_THROW((void)snapshot_from_json("{\"schema\":\"other.v9\"}"),
               std::runtime_error);
  EXPECT_THROW((void)snapshot_from_json("not json at all"),
               std::runtime_error);
  EXPECT_THROW((void)snapshot_from_json(""), std::runtime_error);
}

TEST(JsonExport, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/oddci_obs_export_test.json";
  const MetricsSnapshot original = sample_snapshot();
  write_json(path, original);
  EXPECT_EQ(read_json(path), original);
}

TEST(CsvExport, SeriesRoundTrip) {
  const MetricsSnapshot original = sample_snapshot();
  const std::string csv = series_to_csv(original);
  EXPECT_EQ(csv.rfind("series,time,value\n", 0), 0u);
  const std::vector<SeriesSample> parsed = series_from_csv(csv);
  ASSERT_EQ(parsed.size(), original.series.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].name, original.series[i].name);
    EXPECT_EQ(parsed[i].times, original.series[i].times);
    EXPECT_EQ(parsed[i].values, original.series[i].values);
  }
}

TEST(CsvExport, EmptySeriesYieldsHeaderOnly) {
  const MetricsSnapshot empty;
  EXPECT_EQ(series_to_csv(empty), "series,time,value\n");
  EXPECT_TRUE(series_from_csv("series,time,value\n").empty());
}

}  // namespace
}  // namespace oddci::obs

// A/B byte-identity of the fan-out fast path at population scale: a seeded
// 100k-receiver job must produce byte-identical metrics and flight-recorder
// exports with the fast path on and off (after stripping the counters that
// only exist in fast-path mode). The fast path is an implementation
// shortcut — shared decode, memoized verification, pooled heartbeats — and
// must never change what the simulation *does*, only what it costs.

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "core/system.hpp"
#include "obs/export.hpp"
#include "obs/trace_export.hpp"
#include "workload/job.hpp"

namespace oddci::core {
namespace {

// Cells registered only when the fast path is active; everything else in
// the snapshot must match byte-for-byte across modes.
bool fast_path_only_cell(std::string_view name) {
  return name.starts_with("verify_cache.") ||
         name.starts_with("heartbeat.pool") ||
         name.starts_with("wire.writer");
}

struct Artifacts {
  std::string metrics_json;
  std::string trace_json;
  double makespan = 0.0;
  bool completed = false;
};

Artifacts run_once(bool fast_path) {
  SystemConfig config;
  config.receivers = 100'000;
  config.channels = 4;
  config.aggregators = 8;
  config.seed = 20260806;
  config.control.overshoot_margin = 1.3;
  config.fanout_fast_path = fast_path;
  config.obs.trace = true;
  config.obs.trace_capacity = 1 << 15;

  OddciSystem system(config);
  const auto job = workload::make_uniform_job(
      "fanout-ab", util::Bits::from_megabytes(2), 400,
      util::Bits::from_bytes(512), util::Bits::from_bytes(512), 10.0);
  const auto result = system.run_job(job, 200);

  obs::MetricsSnapshot snap = result.metrics;
  std::erase_if(snap.counters, [](const obs::CounterSample& c) {
    return fast_path_only_cell(c.name);
  });
  std::erase_if(snap.gauges, [](const obs::GaugeSample& g) {
    return fast_path_only_cell(g.name);
  });

  Artifacts out;
  out.metrics_json = obs::to_json(snap);
  out.trace_json = obs::to_chrome_trace(*system.flight_recorder());
  out.makespan = result.makespan_seconds;
  out.completed = result.completed;
  return out;
}

TEST(FanoutAb, HundredThousandReceiverRunIsByteIdenticalAcrossModes) {
  const Artifacts fast = run_once(true);
  const Artifacts slow = run_once(false);

  ASSERT_TRUE(fast.completed);
  ASSERT_TRUE(slow.completed);
  EXPECT_DOUBLE_EQ(fast.makespan, slow.makespan);
  // The whole observable record — every counter, gauge, histogram, series
  // and span — is byte-identical once the fast-path-only cells are removed.
  EXPECT_EQ(fast.metrics_json, slow.metrics_json);
  // Same for the causal flight recorder: same hops, same order, same bytes.
  EXPECT_EQ(fast.trace_json, slow.trace_json);
}

}  // namespace
}  // namespace oddci::core

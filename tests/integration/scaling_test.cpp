// Integration tests for the scale-oriented extensions: multi-channel
// distribution (Section 4.3) and the heartbeat-aggregation tier (the
// paper's future-work answer to the Controller bottleneck).

#include <gtest/gtest.h>

#include "core/system.hpp"
#include "workload/job.hpp"

namespace oddci::core {
namespace {

workload::Job small_job(std::size_t tasks = 200, double p = 10.0) {
  return workload::make_uniform_job(
      "scale", util::Bits::from_megabytes(2), tasks,
      util::Bits::from_bytes(512), util::Bits::from_bytes(512), p);
}

TEST(MultiChannel, JobCompletesAcrossChannels) {
  SystemConfig config;
  config.receivers = 120;
  config.channels = 3;
  config.seed = 41;
  config.control.overshoot_margin = 1.3;
  OddciSystem system(config);
  EXPECT_EQ(system.channels().size(), 3u);
  const auto result = system.run_job(small_job(), 60);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.job.results_received, 200u);
}

TEST(MultiChannel, ReceiversSpreadAcrossChannels) {
  SystemConfig config;
  config.receivers = 90;
  config.channels = 3;
  config.seed = 42;
  OddciSystem system(config);
  for (const auto& channel : system.channels()) {
    EXPECT_EQ(channel->tuned_count(), 30u);
  }
}

TEST(MultiChannel, MoreChannelsReachMoreReceiversThanOne) {
  // With per-channel tuning, a single channel only reaches its own
  // audience; an instance larger than one channel's audience needs the
  // multi-channel deployment.
  SystemConfig config;
  config.receivers = 120;
  config.channels = 3;
  config.seed = 43;
  config.control.overshoot_margin = 1.3;
  OddciSystem system(config);
  system.controller().deploy_pna();
  system.simulation().run_until(sim::SimTime::from_seconds(120));

  InstanceSpec spec;
  spec.name = "wide";
  spec.target_size = 100;  // more than any single 40-receiver channel
  spec.image_size = util::Bits::from_megabytes(1);
  const auto id =
      system.provider().request_instance(spec, system.backend().node_id());
  system.simulation().run_until(sim::SimTime::from_minutes(10));
  EXPECT_GE(system.controller().status(id)->current_size, 100u);
}

TEST(MultiChannel, ZeroChannelsRejected) {
  SystemConfig config;
  config.channels = 0;
  EXPECT_THROW(OddciSystem{config}, std::invalid_argument);
}

TEST(Aggregation, JobCompletesThroughAggregators) {
  SystemConfig config;
  config.receivers = 150;
  config.aggregators = 4;
  config.seed = 44;
  config.control.overshoot_margin = 1.3;
  OddciSystem system(config);
  EXPECT_EQ(system.aggregators().size(), 4u);
  const auto result = system.run_job(small_job(), 60);
  EXPECT_TRUE(result.completed);

  // All agent traffic went through the tier: the Controller received
  // consolidated reports, not raw heartbeats.
  EXPECT_EQ(result.controller.heartbeats_received, 0u);
  EXPECT_GT(result.controller.aggregate_reports_received, 0u);
  std::uint64_t forwarded = 0;
  for (const auto& agg : system.aggregators()) {
    EXPECT_GT(agg->stats().heartbeats_received, 0u);
    forwarded += agg->stats().entries_forwarded;
  }
  EXPECT_GT(forwarded, 0u);
}

TEST(Aggregation, ControllerMessageLoadDropsMassively) {
  auto controller_messages = [](std::size_t aggregators) {
    SystemConfig config;
    config.receivers = 300;
    config.aggregators = aggregators;
    config.seed = 45;
    config.controller.default_heartbeat = sim::SimTime::from_seconds(10);
    OddciSystem system(config);
    system.controller().deploy_pna();
    system.simulation().run_until(sim::SimTime::from_minutes(10));
    return system.controller().stats().heartbeats_received +
           system.controller().stats().aggregate_reports_received;
  };
  const auto direct = controller_messages(0);
  const auto aggregated = controller_messages(4);
  // 300 nodes at 10 s intervals vs 4 reports per 10 s window.
  EXPECT_GT(direct, 10 * aggregated);
}

TEST(Aggregation, TrimmingStillWorksThroughTier) {
  // Unicast resets bypass the aggregators (the Controller replies straight
  // to the PNA's direct-channel address), so oversized instances shrink.
  SystemConfig config;
  config.receivers = 100;
  config.aggregators = 2;
  config.seed = 46;
  config.control.overshoot_margin = 3.0;  // deliberate heavy overshoot
  OddciSystem system(config);
  system.controller().deploy_pna();
  system.simulation().run_until(sim::SimTime::from_seconds(120));

  InstanceSpec spec;
  spec.name = "trim-through-tier";
  spec.target_size = 20;
  spec.image_size = util::Bits::from_megabytes(1);
  const auto id =
      system.provider().request_instance(spec, system.backend().node_id());
  system.simulation().run_until(sim::SimTime::from_minutes(15));
  EXPECT_EQ(system.controller().status(id)->current_size, 20u);
  EXPECT_GT(system.controller().stats().unicast_resets, 0u);
}

TEST(OddciIptv, JobCompletesOverMulticast) {
  SystemConfig config;
  config.receivers = 120;
  config.technology = BroadcastTechnology::kIpMulticast;
  config.seed = 48;
  config.control.overshoot_margin = 1.3;
  OddciSystem system(config);
  const auto result = system.run_job(small_job(), 60);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.job.results_received, 200u);
  EXPECT_GT(result.wakeup_seconds, 0.0);
}

TEST(OddciIptv, WakeupFasterThanCarousel) {
  // Block-coded multicast has no carousel phase wait: wakeup ~ I/beta
  // (plus FEC) instead of ~1.5 I/beta.
  auto wakeup_for = [](BroadcastTechnology tech) {
    SystemConfig config;
    config.receivers = 120;
    config.technology = tech;
    config.seed = 49;
    config.control.overshoot_margin = 1.3;
    OddciSystem system(config);
    const auto result = system.run_job(small_job(50, 30.0), 60,
                                       sim::SimTime::from_hours(12));
    return result.wakeup_seconds;
  };
  const double dtv = wakeup_for(BroadcastTechnology::kDtvCarousel);
  const double iptv = wakeup_for(BroadcastTechnology::kIpMulticast);
  ASSERT_GT(dtv, 0.0);
  ASSERT_GT(iptv, 0.0);
  EXPECT_LT(iptv, dtv);
}

TEST(OddciIptv, LossyMulticastStillCompletes) {
  SystemConfig config;
  config.receivers = 100;
  config.technology = BroadcastTechnology::kIpMulticast;
  config.multicast.block_loss = 0.15;
  config.seed = 50;
  config.control.overshoot_margin = 1.3;
  OddciSystem system(config);
  const auto result = system.run_job(small_job(100, 5.0), 40);
  EXPECT_TRUE(result.completed);
}

TEST(Aggregation, ChurnRecoveryThroughTier) {
  SystemConfig config;
  config.receivers = 200;
  config.aggregators = 3;
  config.seed = 47;
  config.control.overshoot_margin = 1.3;
  ChurnOptions churn;
  churn.mean_on_seconds = 1200;
  churn.mean_off_seconds = 600;
  config.churn = churn;
  OddciSystem system(config);
  const auto result =
      system.run_job(small_job(300, 10.0), 40, sim::SimTime::from_hours(12));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.job.results_received, 300u);
}

}  // namespace
}  // namespace oddci::core

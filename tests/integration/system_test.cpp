#include "core/system.hpp"

#include <gtest/gtest.h>

#include "workload/job.hpp"

namespace oddci::core {
namespace {

SystemConfig small_config() {
  SystemConfig config;
  config.receivers = 100;
  config.seed = 13;
  // Slight over-recruitment so the instance forms in the first wakeup wave
  // (without it, a binomial shortfall can leave formation to a later
  // recomposition round that a short job may not live to see).
  config.control.overshoot_margin = 1.3;
  return config;
}

workload::Job small_job(std::size_t tasks = 200, double p = 10.0) {
  return workload::make_uniform_job(
      "it", util::Bits::from_megabytes(2), tasks,
      util::Bits::from_bytes(512), util::Bits::from_bytes(512), p);
}

TEST(SystemIntegration, JobRunsToCompletion) {
  OddciSystem system(small_config());
  const auto result = system.run_job(small_job(), 50);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.job.results_received, 200u);
  EXPECT_GT(result.wakeup_seconds, 0.0);
  EXPECT_GT(result.makespan_seconds, result.wakeup_seconds);
  EXPECT_GE(result.controller.heartbeats_received, 100u);
}

TEST(SystemIntegration, WakeupWithinCarouselBounds) {
  SystemConfig config = small_config();
  OddciSystem system(config);
  const workload::Job job = small_job();
  const auto result = system.run_job(job, 50);
  // The carousel cycle includes the image + PNA xlet + config; acquisition
  // of the image cannot beat a single read at beta.
  const double read_s = util::transmission_seconds(job.image_size,
                                                   config.beta);
  const double cycle_s = util::transmission_seconds(
      job.image_size + config.controller.pna_xlet_size + util::Bits::from_bytes(512),
      config.beta);
  EXPECT_GE(result.wakeup_seconds, read_s * 0.99);
  // One full cycle of waiting plus the read, plus signalling/heartbeat slack.
  EXPECT_LE(result.wakeup_seconds, cycle_s + read_s + 35.0);
}

TEST(SystemIntegration, DeterministicUnderSeed) {
  auto run_once = [] {
    OddciSystem system(small_config());
    return system.run_job(small_job(), 30);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_DOUBLE_EQ(a.wakeup_seconds, b.wakeup_seconds);
  EXPECT_EQ(a.network.messages_delivered, b.network.messages_delivered);
}

TEST(SystemIntegration, DifferentSeedsDiffer) {
  SystemConfig c1 = small_config();
  SystemConfig c2 = small_config();
  c2.seed = 14;
  OddciSystem s1(c1), s2(c2);
  const auto a = s1.run_job(small_job(), 30);
  const auto b = s2.run_job(small_job(), 30);
  EXPECT_NE(a.makespan_seconds, b.makespan_seconds);
}

TEST(SystemIntegration, InstanceSizeCapsParallelism) {
  // Twice the instance size roughly halves the task-processing phase.
  OddciSystem sys_small(small_config());
  OddciSystem sys_large(small_config());
  const auto small = sys_small.run_job(small_job(400), 20);
  const auto large = sys_large.run_job(small_job(400), 80);
  ASSERT_TRUE(small.completed);
  ASSERT_TRUE(large.completed);
  const double small_compute = small.makespan_seconds - small.wakeup_seconds;
  const double large_compute = large.makespan_seconds - large.wakeup_seconds;
  EXPECT_GT(small_compute, 2.0 * large_compute);
}

TEST(SystemIntegration, PartiallyTunedPopulationStillWorks) {
  SystemConfig config = small_config();
  config.tuned_fraction = 0.5;
  OddciSystem system(config);
  const auto result = system.run_job(small_job(), 30);
  EXPECT_TRUE(result.completed);
}

TEST(SystemIntegration, OversubscribedTargetNeverForms) {
  // Target bigger than the tuned population: the wakeup can never complete,
  // but the job still finishes on the nodes that did join.
  SystemConfig config = small_config();
  config.receivers = 20;
  OddciSystem system(config);
  const auto result =
      system.run_job(small_job(50), 40, sim::SimTime::from_hours(2));
  EXPECT_TRUE(result.completed);
  EXPECT_LT(result.final_instance_size, 40u);
}

TEST(SystemIntegration, SequentialJobsReuseThePlatform) {
  OddciSystem system(small_config());
  const auto first = system.run_job(small_job(100), 30);
  ASSERT_TRUE(first.completed);
  const auto second = system.run_job(small_job(100), 30,
                                     sim::SimTime::from_hours(4));
  EXPECT_TRUE(second.completed);
}

TEST(SystemIntegration, InUsePopulationIsSlower) {
  SystemConfig standby_cfg = small_config();
  standby_cfg.profile = dtv::DeviceProfile::stb_st7109();
  standby_cfg.initial_power = dtv::PowerMode::kStandby;
  SystemConfig inuse_cfg = standby_cfg;
  inuse_cfg.initial_power = dtv::PowerMode::kInUse;

  OddciSystem standby(standby_cfg), inuse(inuse_cfg);
  // Compute-heavy tasks so the execution phase dominates the makespan
  // regardless of exactly when the instance formally reaches its target.
  const workload::Job job = small_job(400, 5.0);
  const auto a = standby.run_job(job, 50, sim::SimTime::from_hours(8));
  const auto b = inuse.run_job(job, 50, sim::SimTime::from_hours(8));
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_GT(b.makespan_seconds, a.makespan_seconds);
}

TEST(SystemIntegration, ConfigValidation) {
  SystemConfig config;
  config.receivers = 0;
  EXPECT_THROW(OddciSystem{config}, std::invalid_argument);
  config = SystemConfig{};
  config.tuned_fraction = 1.5;
  EXPECT_THROW(OddciSystem{config}, std::invalid_argument);
  config = SystemConfig{};
  config.initial_power = dtv::PowerMode::kOff;
  EXPECT_THROW(OddciSystem{config}, std::invalid_argument);
}

TEST(SystemIntegration, EfficiencyFormula) {
  RunResult r;
  r.makespan_seconds = 100.0;
  // E = n * p / (M * N) = 1000 * 1 / (100 * 20) = 0.5
  EXPECT_DOUBLE_EQ(r.efficiency(1000, 1.0, 20), 0.5);
  EXPECT_DOUBLE_EQ(r.efficiency(1000, 1.0, 0), 0.0);
  r.makespan_seconds = -1.0;
  EXPECT_DOUBLE_EQ(r.efficiency(1000, 1.0, 20), 0.0);
}

}  // namespace
}  // namespace oddci::core

// Cross-validation of the discrete-event simulation against the paper's
// closed-form models (Section 5): the measured wakeup, makespan and
// efficiency must track W = 1.5 I/beta, Eq. (1) and Eq. (2).

#include <gtest/gtest.h>

#include "analytical/models.hpp"
#include "core/system.hpp"
#include "util/stats.hpp"
#include "workload/job.hpp"

namespace oddci {
namespace {

core::SystemConfig base_config(std::uint64_t seed) {
  core::SystemConfig config;
  config.receivers = 400;
  config.seed = seed;
  config.control.overshoot_margin = 1.3;  // form the instance in one broadcast
  return config;
}

TEST(ModelValidation, WakeupMeanApproaches1Point5Cycles) {
  // Across seeds the measured wakeup time (first time the instance hits its
  // target) averages close to the analytical 1.5 I/beta, within the spread
  // allowed by the random carousel rotation.
  const auto image = util::Bits::from_megabytes(4);
  util::RunningStats w;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    core::OddciSystem system(base_config(seed));
    const workload::Job job = workload::make_uniform_job(
        "w", image, 100, util::Bits(0), util::Bits::from_bytes(128), 5.0);
    const auto result = system.run_job(job, 100);
    ASSERT_GT(result.wakeup_seconds, 0.0) << "seed " << seed;
    w.add(result.wakeup_seconds);
  }
  const double model = analytical::wakeup_seconds(
      image, util::BitRate::from_mbps(1.0));
  const double best = analytical::wakeup_best_seconds(
      image, util::BitRate::from_mbps(1.0));
  const double worst = analytical::wakeup_worst_seconds(
      image, util::BitRate::from_mbps(1.0));
  // Every sample within [best, worst] + signalling/heartbeat slack.
  EXPECT_GE(w.min(), best * 0.99);
  EXPECT_LE(w.max(), worst + 40.0);
  // Mean within 20% of 1.5 I/beta.
  EXPECT_NEAR(w.mean(), model, model * 0.20);
}

TEST(ModelValidation, MakespanTracksEquationOne) {
  analytical::SystemModel sm;
  for (const double phi : {10.0, 100.0, 1000.0}) {
    core::OddciSystem system(base_config(77));
    const std::size_t N = 100;
    const std::size_t n = 10 * N;
    workload::Job job = workload::make_job_for_suitability(
        "m", util::Bits::from_megabytes(10), n, util::Bits::from_kilobytes(1),
        sm.delta, phi);
    const auto result =
        system.run_job(job, N, sim::SimTime::from_hours(48));
    ASSERT_TRUE(result.completed) << "phi " << phi;

    analytical::JobModel jm;
    jm.n = n;
    jm.s_bits = job.avg_input_bits();
    jm.r_bits = job.avg_result_bits();
    jm.p_seconds = job.avg_reference_seconds();
    jm.image = job.image_size;
    const double model = analytical::makespan_seconds(sm, jm, N);
    // Eq. (1) ignores the per-task dispatch round trip, so short tasks
    // (low phi) run measurably above the model; the gap closes as the task
    // time dominates. Downward, a single run can only beat the model by
    // the wakeup spread: W is a mean over carousel rotations, and a lucky
    // rotation starts at the best case I/beta.
    const double w_spread =
        analytical::wakeup_seconds(jm.image, sm.beta) -
        analytical::wakeup_best_seconds(jm.image, sm.beta);
    const double tolerance = phi >= 1000.0 ? 0.25 : 0.60;
    EXPECT_GE(result.makespan_seconds, model - w_spread - 10.0)
        << "phi " << phi;
    EXPECT_LE(result.makespan_seconds, model * (1.0 + tolerance) + w_spread)
        << "phi " << phi;
  }
}

TEST(ModelValidation, EfficiencyRisesWithSuitability) {
  analytical::SystemModel sm;
  double last_measured = 0.0;
  for (const double phi : {1.0, 10.0, 100.0}) {
    core::OddciSystem system(base_config(99));
    const std::size_t N = 50;
    const std::size_t n = 20 * N;
    workload::Job job = workload::make_job_for_suitability(
        "e", util::Bits::from_megabytes(10), n, util::Bits::from_kilobytes(1),
        sm.delta, phi);
    const auto result =
        system.run_job(job, N, sim::SimTime::from_hours(48));
    ASSERT_TRUE(result.completed);
    const double measured =
        result.efficiency(n, job.avg_reference_seconds(), N);
    EXPECT_GT(measured, last_measured) << "phi " << phi;
    last_measured = measured;
  }
  // Analytical E(phi=100, n/N=20) is ~0.46; the simulation additionally
  // pays the per-task request round trip the model ignores.
  EXPECT_GT(last_measured, 0.35);
}

TEST(ModelValidation, HigherRatioImprovesEfficiency) {
  // Figure 6's family: at fixed phi, larger n/N gives higher efficiency.
  analytical::SystemModel sm;
  const double phi = 10.0;
  double last = 0.0;
  for (const std::size_t ratio : {1u, 10u, 50u}) {
    core::OddciSystem system(base_config(55));
    const std::size_t N = 50;
    workload::Job job = workload::make_job_for_suitability(
        "r", util::Bits::from_megabytes(10), ratio * N,
        util::Bits::from_kilobytes(1), sm.delta, phi);
    const auto result =
        system.run_job(job, N, sim::SimTime::from_hours(100));
    ASSERT_TRUE(result.completed);
    const double measured =
        result.efficiency(ratio * N, job.avg_reference_seconds(), N);
    EXPECT_GT(measured, last) << "ratio " << ratio;
    last = measured;
  }
}

}  // namespace
}  // namespace oddci

// The profiler's determinism boundary: turning the kernel profiler on
// must not perturb the simulation by a single byte. Same seed, same K,
// profiler off vs on — the metrics JSON and Chrome-trace exports compare
// byte-identical, with and without the PR 5 fault matrix. Also the health
// auditor's end-to-end contract: clean report on an honest run, critical
// report when the run's loss accounting is tampered with.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/system.hpp"
#include "obs/export.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_export.hpp"
#include "workload/job.hpp"

namespace oddci::core {
namespace {

struct Export {
  std::string metrics_json;
  std::string chrome_trace;
  bool completed = false;
  std::int64_t final_now_us = 0;

  bool operator==(const Export&) const = default;
};

SystemConfig scenario(std::size_t shards) {
  SystemConfig config;
  config.receivers = 10'000;
  config.channels = 4;
  config.aggregators = 8;
  config.seed = 20260809;
  config.control.overshoot_margin = 1.3;
  config.obs.trace = true;
  config.obs.trace_capacity = 1 << 16;
  config.shards = shards;
  return config;
}

SystemConfig fault_matrix(std::size_t shards) {
  SystemConfig config = scenario(shards);
  config.fault.enabled = true;
  config.fault.message_loss = 0.01;
  config.fault.message_duplication = 0.01;
  config.fault.latency_spike_probability = 0.005;
  config.fault.partitions_per_hour = 6.0;
  config.fault.partition_duration = sim::SimTime::from_seconds(60);
  config.fault.controller_crash_at.push_back(sim::SimTime::from_seconds(150));
  config.fault.pna_crashes_per_hour = 20.0;
  config.fault.control_corruptions_per_hour = 4.0;
  return config;
}

struct Outcome {
  Export exported;
  obs::HealthReport health;
  obs::ProfileSnapshot profile;
};

Outcome run_scenario(const SystemConfig& config) {
  OddciSystem system(config);
  const auto job = workload::make_uniform_job(
      "profiler-determinism", util::Bits::from_megabytes(2), 100,
      util::Bits::from_bytes(512), util::Bits::from_bytes(512), 10.0);
  const auto result = system.run_job(job, 50);

  Outcome run;
  run.exported.metrics_json = obs::to_json(result.metrics);
  run.exported.chrome_trace =
      obs::to_chrome_trace(obs::merge_events(system.flight_recorders()));
  run.exported.completed = result.completed;
  run.exported.final_now_us = system.kernel().now().micros();
  run.health = result.health;
  run.profile = system.profile_snapshot();
  return run;
}

class ProfilerByteIdentity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ProfilerByteIdentity, ProfilerOnAndOffExportTheSameBytes) {
  const std::size_t shards = GetParam();

  SystemConfig off = scenario(shards);
  off.obs.profile = false;
  SystemConfig on = scenario(shards);
  on.obs.profile = true;

  const Outcome plain = run_scenario(off);
  const Outcome profiled = run_scenario(on);

  EXPECT_EQ(plain.exported, profiled.exported);
  EXPECT_TRUE(plain.exported.completed);

  // The profiled run actually measured something...
  EXPECT_EQ(profiled.profile.shards, shards);
  EXPECT_GE(profiled.profile.runs, 1u);  // run_job may slice run_until
  EXPECT_GT(profiled.profile.run_wall_seconds, 0.0);
  EXPECT_GT(profiled.profile.execute_seconds_total(), 0.0);
  if (shards > 1) {
    EXPECT_GT(profiled.profile.windows, 0u);
  }
  // ...and the unprofiled run has nothing: the snapshot is empty, not
  // secretly collected.
  EXPECT_EQ(plain.profile.runs, 0u);
  EXPECT_EQ(plain.profile.run_wall_seconds, 0.0);
}

TEST_P(ProfilerByteIdentity, ProfilerOnAndOffMatchUnderTheFaultMatrix) {
  const std::size_t shards = GetParam();

  SystemConfig off = fault_matrix(shards);
  off.obs.profile = false;
  SystemConfig on = fault_matrix(shards);
  on.obs.profile = true;

  const Outcome plain = run_scenario(off);
  const Outcome profiled = run_scenario(on);

  EXPECT_EQ(plain.exported, profiled.exported);
  EXPECT_TRUE(plain.exported.completed);
  EXPECT_NE(plain.exported.metrics_json.find("fault.messages_lost"),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ProfilerByteIdentity,
                         ::testing::Values(std::size_t{1}, std::size_t{4}),
                         [](const auto& info) {
                           return "K" + std::to_string(info.param);
                         });

// The auditor passes honest runs: conservation holds fault-off and under
// the full fault matrix (losses are counted, so the books still balance).
TEST(HealthAudit, HonestRunsReportClean) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    const Outcome plain = run_scenario(scenario(shards));
    EXPECT_TRUE(plain.health.ok())
        << "K=" << shards << "\n"
        << plain.health.to_text();
    EXPECT_GT(plain.health.samples, 0u);

    const Outcome faulted = run_scenario(fault_matrix(shards));
    EXPECT_TRUE(faulted.health.ok())
        << "K=" << shards << " (fault matrix)\n"
        << faulted.health.to_text();
  }
}

// Seeded violation: under-report injected losses and the message
// conservation check must flag the run as critical, with the first
// violating sample timestamped.
TEST(HealthAudit, LossUndercountIsFlaggedCritical) {
  SystemConfig config = fault_matrix(4);
  config.obs.health_tamper_lost = 5;
  const Outcome tampered = run_scenario(config);

  EXPECT_FALSE(tampered.health.ok());
  EXPECT_EQ(tampered.health.worst(), obs::HealthSeverity::kCritical);
  EXPECT_GE(tampered.health.first_violation_seconds, 0.0);
  EXPECT_NE(tampered.health.to_text().find("net.message_conservation"),
            std::string::npos);
}

}  // namespace
}  // namespace oddci::core

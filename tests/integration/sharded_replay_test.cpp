// Sharded-kernel determinism: a seeded scenario on K worker shards must
// replay byte for byte — identical metrics JSON and Chrome-trace exports —
// for any fixed K, including across thread-scheduling noise. Different K
// are allowed (expected, even) to produce different trajectories; each K
// is its own deterministic universe. This is the acceptance gate for the
// conservative time-window barrier and the mailbox drain order.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/system.hpp"
#include "obs/export.hpp"
#include "obs/trace_export.hpp"
#include "workload/job.hpp"

namespace oddci::core {
namespace {

struct Export {
  std::string metrics_json;
  std::string chrome_trace;
  bool completed = false;
  std::uint64_t unique_results = 0;
  std::uint64_t cross_posts = 0;
  std::uint64_t windows_run = 0;
  std::int64_t final_now_us = 0;

  bool operator==(const Export&) const = default;
};

SystemConfig scenario(std::size_t shards) {
  SystemConfig config;
  config.receivers = 10'000;
  config.channels = 4;
  config.aggregators = 8;
  config.seed = 20260809;
  config.control.overshoot_margin = 1.3;
  config.obs.trace = true;
  config.obs.trace_capacity = 1 << 16;
  config.shards = shards;
  return config;
}

Export run_scenario(const SystemConfig& config) {
  OddciSystem system(config);
  const auto job = workload::make_uniform_job(
      "sharded-replay", util::Bits::from_megabytes(2), 100,
      util::Bits::from_bytes(512), util::Bits::from_bytes(512), 10.0);
  const auto result = system.run_job(job, 50);

  Export e;
  e.metrics_json = obs::to_json(result.metrics);
  e.chrome_trace = obs::to_chrome_trace(
      obs::merge_events(system.flight_recorders()));
  e.completed = result.completed;
  e.unique_results = result.job.results_received -
                     result.job.duplicate_results - result.job.late_results;
  e.cross_posts = system.kernel().cross_posts();
  e.windows_run = system.kernel().windows_run();
  e.final_now_us = system.kernel().now().micros();
  return e;
}

class ShardedReplay : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardedReplay, SameSeedSameShardCountExportsAreByteIdentical) {
  const std::size_t shards = GetParam();
  const Export first = run_scenario(scenario(shards));
  const Export second = run_scenario(scenario(shards));

  EXPECT_EQ(first.final_now_us, second.final_now_us);
  EXPECT_EQ(first.cross_posts, second.cross_posts);
  EXPECT_EQ(first.windows_run, second.windows_run);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
  EXPECT_EQ(first.chrome_trace, second.chrome_trace);
  EXPECT_EQ(first, second);

  // And the run did real work.
  EXPECT_TRUE(first.completed);
  EXPECT_EQ(first.unique_results, 100u);
  if (shards > 1) {
    // The population actually spans shards: heartbeats stay local by
    // placement, but control-plane hops (joins, task traffic) cross.
    EXPECT_GT(first.cross_posts, 0u);
    EXPECT_GT(first.windows_run, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedReplay,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{8}),
                         [](const auto& info) {
                           return "K" + std::to_string(info.param);
                         });

// shards = 1 must take the classic single-kernel path exactly: same
// trajectory as a config that never mentions sharding. (Equality with the
// pre-refactor tree is pinned by Replay.SeededHundredThousandReceiver...,
// whose scenario and fingerprint are unchanged.)
TEST(ShardedReplay, SingleShardIsTheClassicKernel) {
  SystemConfig classic = scenario(1);
  classic.obs.trace = true;
  const Export one = run_scenario(classic);

  SystemConfig untouched = scenario(1);
  untouched.shards = 1;  // explicit default
  untouched.window = sim::SimTime::zero();
  const Export defaulted = run_scenario(untouched);

  EXPECT_EQ(one, defaulted);
  EXPECT_EQ(one.cross_posts, 0u);
  EXPECT_EQ(one.windows_run, 0u);
}

// The fault matrix on a sharded kernel: per-shard wire streams, plan
// events as coordinator global tasks. Still byte-replayable at fixed K,
// and the job still loses nothing.
TEST(ShardedReplay, FaultMatrixOnFourShardsIsByteIdentical) {
  auto build = [] {
    SystemConfig config = scenario(4);
    config.fault.enabled = true;
    config.fault.message_loss = 0.01;
    config.fault.message_duplication = 0.01;
    config.fault.latency_spike_probability = 0.005;
    config.fault.partitions_per_hour = 6.0;
    config.fault.partition_duration = sim::SimTime::from_seconds(60);
    config.fault.controller_crash_at.push_back(
        sim::SimTime::from_seconds(150));
    config.fault.pna_crashes_per_hour = 20.0;
    config.fault.control_corruptions_per_hour = 4.0;
    return config;
  };

  const Export first = run_scenario(build());
  const Export second = run_scenario(build());

  EXPECT_EQ(first.metrics_json, second.metrics_json);
  EXPECT_EQ(first.chrome_trace, second.chrome_trace);
  EXPECT_EQ(first, second);
  EXPECT_TRUE(first.completed);
  EXPECT_EQ(first.unique_results, 100u);
  EXPECT_NE(first.metrics_json.find("fault.messages_lost"),
            std::string::npos);
}

// Churn (power cycling) across shards: re-tunes route through the
// mailboxes with stable listener ids; replay must stay exact.
TEST(ShardedReplay, ChurningPopulationOnTwoShardsIsByteIdentical) {
  auto build = [] {
    SystemConfig config = scenario(2);
    config.receivers = 4'000;
    ChurnOptions churn;
    churn.mean_on_seconds = 300.0;
    churn.mean_off_seconds = 120.0;
    config.churn = churn;
    return config;
  };

  const Export first = run_scenario(build());
  const Export second = run_scenario(build());
  EXPECT_EQ(first, second);
  EXPECT_TRUE(first.completed);
}

}  // namespace
}  // namespace oddci::core

// Byzantine matrix determinism and defense acceptance: a population with
// 10% result forgers, 5% free-riders, and one 3-member colluding group,
// on top of the PR 5 crash/omission fault matrix, must (a) replay byte
// for byte per (seed, shard count) — identical metrics JSON and Chrome
// trace — and (b) finish the job with zero wrong results at bounded
// redundancy overhead. A verify-off run must carry none of the subsystem's
// metric cells (the "disabled costs nothing" contract; the pre-PR
// trajectory itself is pinned by the unchanged Replay fingerprints).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/system.hpp"
#include "obs/export.hpp"
#include "obs/trace_export.hpp"
#include "workload/job.hpp"

namespace oddci::core {
namespace {

struct Export {
  std::string metrics_json;
  std::string chrome_trace;
  bool completed = false;
  std::uint64_t unique_results = 0;
  std::uint64_t tasks_failed = 0;
  std::uint64_t wrong_results = 0;
  std::uint64_t tasks_verified = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t spot_dispatched = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t implausible_returns = 0;
  std::uint64_t assignments = 0;
  bool health_ok = false;
  std::int64_t final_now_us = 0;

  bool operator==(const Export&) const = default;
};

SystemConfig byzantine_scenario(std::size_t shards) {
  SystemConfig config;
  config.receivers = 100'000;
  config.channels = 4;
  config.aggregators = 16;
  config.seed = 20260809;
  config.control.overshoot_margin = 1.3;
  config.obs.trace = true;
  config.obs.trace_capacity = 1 << 18;
  config.shards = shards;
  // The PR 5 crash/omission matrix underneath the adversaries.
  config.fault.enabled = true;
  config.fault.message_loss = 0.01;
  config.fault.message_duplication = 0.01;
  config.fault.latency_spike_probability = 0.005;
  config.fault.pna_crashes_per_hour = 20.0;
  config.fault.pna_hangs_per_hour = 10.0;
  // The adversarial population.
  config.fault.byzantine_forger_fraction = 0.10;
  config.fault.byzantine_freerider_fraction = 0.05;
  config.fault.byzantine_collusion_size = 3;
  // The defense.
  config.verify.enabled = true;
  config.verify.redundancy = 2;
  config.verify.spot_check_rate = 0.02;
  config.verify.min_observations = 6;
  // Aggressive ledger: adversaries in this population always produce
  // wrong outcomes and honest nodes never do, so two strikes quarantine
  // (0.5 -> 0.35 -> 0.245) and failed parole probes are cut off early.
  config.verify.ewma_alpha = 0.3;
  config.verify.parole_failure_limit = 2;
  return config;
}

// Same faults, no adversaries, no defense: what the dispatch bill looks
// like when every PNA is honest. The overhead bound is measured against
// this run's assignments (the honest baseline itself pays for timeouts
// and crash re-dispatches under the matrix).
SystemConfig honest_scenario(std::size_t shards) {
  SystemConfig config = byzantine_scenario(shards);
  config.fault.byzantine_forger_fraction = 0.0;
  config.fault.byzantine_freerider_fraction = 0.0;
  config.fault.byzantine_collusion_size = 0;
  config.verify = VerifyOptions{};
  return config;
}

Export run_scenario(const SystemConfig& config) {
  OddciSystem system(config);
  const auto job = workload::make_uniform_job(
      "byzantine-matrix", util::Bits::from_megabytes(2), 400,
      util::Bits::from_bytes(512), util::Bits::from_bytes(512), 10.0);
  const auto result = system.run_job(job, 100);

  Export e;
  e.metrics_json = obs::to_json(result.metrics);
  e.chrome_trace =
      obs::to_chrome_trace(obs::merge_events(system.flight_recorders()));
  e.completed = result.completed;
  e.unique_results = result.job.results_received -
                     result.job.duplicate_results - result.job.late_results;
  e.tasks_failed = result.job.tasks_failed;
  if (const Verifier* verifier = system.verifier()) {
    const auto s = verifier->stats();
    e.wrong_results = s.wrong_results;
    e.tasks_verified = s.tasks_verified;
    e.dispatched = s.dispatched;
    e.spot_dispatched = s.spot_dispatched;
    e.quarantines = s.quarantines;
    e.implausible_returns = s.implausible_returns;
  }
  e.assignments = result.job.assignments;
  e.health_ok = result.health.ok();
  e.final_now_us = system.kernel().now().micros();
  return e;
}

class ByzantineReplay : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ByzantineReplay, MatrixReplaysByteIdenticallyAndDefenseHolds) {
  const std::size_t shards = GetParam();
  const Export first = run_scenario(byzantine_scenario(shards));
  const Export second = run_scenario(byzantine_scenario(shards));

  // (a) Determinism: the whole verified trajectory per (seed, K).
  EXPECT_EQ(first.final_now_us, second.final_now_us);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
  EXPECT_EQ(first.chrome_trace, second.chrome_trace);
  EXPECT_EQ(first, second);

  // (b) Defense: the job finishes, no forged result survives a quorum,
  // and the full verification bill (replicas + spot checks) stays within
  // 2.5x what the honest population pays for the same job under the same
  // fault matrix.
  EXPECT_TRUE(first.completed);
  EXPECT_EQ(first.tasks_failed, 0u);
  EXPECT_EQ(first.wrong_results, 0u);
  ASSERT_GE(first.tasks_verified, 400u);
  const Export honest = run_scenario(honest_scenario(shards));
  EXPECT_TRUE(honest.completed);
  ASSERT_GT(honest.assignments, 0u);
  const double overhead =
      static_cast<double>(first.dispatched + first.spot_dispatched) /
      static_cast<double>(honest.assignments);
  EXPECT_LE(overhead, 2.5) << "dispatched=" << first.dispatched
                           << " spot=" << first.spot_dispatched
                           << " honest_baseline=" << honest.assignments;
  // The reputation ledger actually caught adversaries, and the
  // plausibility floor flagged the free-riders' instant returns.
  EXPECT_GT(first.quarantines, 0u);
  EXPECT_GT(first.implausible_returns, 0u);
  // Conservation + byzantine-detection audits pass.
  EXPECT_TRUE(first.health_ok);
  // The exports embed the verify.* cells, so the byte-compare above pins
  // their exact values; spot-check that they are present at all.
  EXPECT_NE(first.metrics_json.find("verify.dispatches"), std::string::npos);
  EXPECT_NE(first.metrics_json.find("reputation.quarantines"),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ByzantineReplay,
                         ::testing::Values(std::size_t{1}, std::size_t{4}),
                         [](const auto& info) {
                           return "K" + std::to_string(info.param);
                         });

// Disabled costs nothing: a verify-off, adversary-off run registers none
// of the subsystem's metric cells, so its snapshot is byte-identical to a
// tree without the subsystem (the exact pre-PR trajectory is pinned by
// Replay.SeededHundredThousandReceiverRunIsBitIdentical, unchanged).
TEST(ByzantineReplay, VerifyOffSnapshotHasNoVerifyCells) {
  SystemConfig config;
  config.receivers = 5'000;
  config.channels = 2;
  config.aggregators = 4;
  config.seed = 20260809;
  config.fault.enabled = true;
  config.fault.message_loss = 0.01;
  OddciSystem system(config);
  EXPECT_EQ(system.verifier(), nullptr);
  EXPECT_EQ(system.byzantine_table(), nullptr);

  const auto job = workload::make_uniform_job(
      "verify-off", util::Bits::from_megabytes(2), 50,
      util::Bits::from_bytes(512), util::Bits::from_bytes(512), 10.0);
  const auto result = system.run_job(job, 25);
  EXPECT_TRUE(result.completed);

  const std::string json = obs::to_json(result.metrics);
  EXPECT_EQ(json.find("verify."), std::string::npos);
  EXPECT_EQ(json.find("reputation."), std::string::npos);
  EXPECT_EQ(json.find("pna.results_forged"), std::string::npos);
  EXPECT_EQ(json.find("pna.results_freeridden"), std::string::npos);
  EXPECT_EQ(json.find("backend.task_revotes"), std::string::npos);
}

// Adversaries without the defense: profiles alone (verify off) must not
// fail the run's conservation audit — forged digests ride the existing
// result path and the naive Backend simply cannot see them. (This is the
// "attack exists" baseline E16 plots against.)
TEST(ByzantineReplay, AdversariesWithoutVerificationStillConserve) {
  SystemConfig config;
  config.receivers = 5'000;
  config.channels = 2;
  config.aggregators = 4;
  config.seed = 20260809;
  config.fault.enabled = true;
  config.fault.byzantine_forger_fraction = 0.10;
  config.fault.byzantine_freerider_fraction = 0.05;
  config.fault.byzantine_collusion_size = 3;
  OddciSystem system(config);
  EXPECT_EQ(system.verifier(), nullptr);
  ASSERT_NE(system.byzantine_table(), nullptr);
  EXPECT_GT(system.byzantine_table()->adversaries(), 0u);

  const auto job = workload::make_uniform_job(
      "undefended", util::Bits::from_megabytes(2), 50,
      util::Bits::from_bytes(512), util::Bits::from_bytes(512), 10.0);
  const auto result = system.run_job(job, 25);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.health.ok());

  // The adversary counters exist (the profile table is active) and the
  // forgers actually forged.
  const std::string json = obs::to_json(result.metrics);
  EXPECT_NE(json.find("pna.results_forged"), std::string::npos);
  // But no verify/reputation machinery was built.
  EXPECT_EQ(json.find("verify."), std::string::npos);
}

}  // namespace
}  // namespace oddci::core

// Failure-injection scenarios: receiver churn, mass outages, and the
// Controller's recomposition keeping instances alive.

#include <gtest/gtest.h>

#include "core/system.hpp"
#include "workload/job.hpp"

namespace oddci::core {
namespace {

workload::Job job_of(std::size_t tasks, double p) {
  return workload::make_uniform_job(
      "fault", util::Bits::from_megabytes(1), tasks,
      util::Bits::from_bytes(256), util::Bits::from_bytes(256), p);
}

TEST(FaultInjection, JobCompletesUnderChurn) {
  SystemConfig config;
  config.receivers = 300;
  config.seed = 21;
  ChurnOptions churn;
  churn.mean_on_seconds = 1200;
  churn.mean_off_seconds = 600;
  config.churn = churn;
  config.control.overshoot_margin = 1.3;

  OddciSystem system(config);
  const auto result =
      system.run_job(job_of(300, 10.0), 50, sim::SimTime::from_hours(12));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.job.results_received, 300u);
  // Churn forces re-dispatch and/or recomposition at some point.
  EXPECT_GT(result.job.reassignments + result.controller.recompositions +
                result.controller.members_pruned,
            0u);
}

TEST(FaultInjection, RecompositionReplacesLostMembers) {
  SystemConfig config;
  config.receivers = 200;
  config.seed = 22;
  ChurnOptions churn;
  churn.mean_on_seconds = 600;  // aggressive: ~10 min sessions
  churn.mean_off_seconds = 300;
  config.churn = churn;

  OddciSystem system(config);
  system.controller().deploy_pna();
  system.simulation().run_until(sim::SimTime::from_seconds(120));

  InstanceSpec spec;
  spec.name = "churny";
  spec.target_size = 30;
  spec.image_size = util::Bits::from_megabytes(1);
  const InstanceId id =
      system.provider().request_instance(spec, system.backend().node_id());

  system.simulation().run_until(sim::SimTime::from_hours(3));
  const InstanceStatus* st = system.controller().status(id);
  ASSERT_NE(st, nullptr);
  // Members were lost (pruned) and wakeups were retransmitted to recompose.
  EXPECT_GT(system.controller().stats().members_pruned, 0u);
  EXPECT_GT(st->wakeups_broadcast, 1u);
  // Despite the churn the instance hovers near its target.
  EXPECT_GE(st->current_size, 20u);
}

TEST(FaultInjection, MassOutageThenRecovery) {
  SystemConfig config;
  config.receivers = 150;
  config.seed = 23;
  OddciSystem system(config);
  system.controller().deploy_pna();
  system.simulation().run_until(sim::SimTime::from_seconds(120));

  InstanceSpec spec;
  spec.name = "outage";
  spec.target_size = 40;
  spec.image_size = util::Bits::from_megabytes(1);
  const InstanceId id =
      system.provider().request_instance(spec, system.backend().node_id());
  system.simulation().run_until(sim::SimTime::from_seconds(600));
  ASSERT_GE(system.controller().status(id)->current_size, 40u);

  // Power off 60% of the population at once.
  const auto& receivers = system.receivers();
  for (std::size_t i = 0; i < receivers.size(); ++i) {
    if (i % 5 < 3) {
      receivers[i]->set_power_mode(dtv::PowerMode::kOff);
    }
  }
  // The controller prunes the dead members (recomposition may already be
  // refilling from survivors, so assert on the pruning counter, not size).
  system.simulation().run_until(sim::SimTime::from_seconds(900));
  EXPECT_GT(system.controller().stats().members_pruned, 0u);

  // ...survivors return, and recomposition refills the instance.
  for (const auto& receiver : receivers) {
    if (!receiver->powered()) {
      receiver->set_power_mode(dtv::PowerMode::kStandby);
    }
  }
  system.simulation().run_until(sim::SimTime::from_hours(2));
  EXPECT_GE(system.controller().status(id)->current_size, 40u);
}

TEST(FaultInjection, TasksLostToTrimmingAreRedispatched) {
  // Deliberate heavy overshoot: many PNAs join, the trim resets some while
  // they hold tasks; the Backend timeout must recover every task.
  SystemConfig config;
  config.receivers = 200;
  config.seed = 24;
  config.control.overshoot_margin = 4.0;
  OddciSystem system(config);
  const auto result =
      system.run_job(job_of(400, 20.0), 20, sim::SimTime::from_hours(12));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.job.results_received, 400u);
}

// --- seeded fault-injection subsystem (src/fault/) --------------------------

// Every unique result accounted for exactly once: received minus the
// deduped duplicates and post-completion stragglers equals the task count.
void expect_zero_loss(const RunResult& result, std::size_t tasks) {
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.job.results_received - result.job.duplicate_results -
                result.job.late_results,
            tasks);
  EXPECT_EQ(result.job.tasks_failed, 0u);
}

TEST(FaultInjection, ChannelFaultsJobCompletesWithoutLoss) {
  SystemConfig config;
  config.receivers = 300;
  config.seed = 31;
  config.control.overshoot_margin = 1.3;
  config.fault.enabled = true;
  config.fault.message_loss = 0.02;
  config.fault.message_duplication = 0.02;
  config.fault.latency_spike_probability = 0.01;

  OddciSystem system(config);
  const auto result =
      system.run_job(job_of(300, 10.0), 50, sim::SimTime::from_hours(12));
  expect_zero_loss(result, 300u);
  const auto* injector = system.fault_injector();
  ASSERT_NE(injector, nullptr);
  EXPECT_GT(injector->stats().messages_lost, 0u);
  EXPECT_GT(injector->stats().messages_duplicated, 0u);
}

TEST(FaultInjection, AggregatorFailoverRehomesHeartbeats) {
  SystemConfig config;
  config.receivers = 400;
  config.aggregators = 4;
  config.seed = 32;
  config.control.overshoot_margin = 1.3;
  config.fault.enabled = true;
  // The job window is a few sim minutes; rates are per hour, so crank
  // them until several crashes land inside it.
  config.fault.aggregator_crashes_per_hour = 90.0;
  config.fault.aggregator_downtime = sim::SimTime::from_seconds(60);
  config.fault.aggregator_failover_timeout = sim::SimTime::from_seconds(25);

  OddciSystem system(config);
  const auto result =
      system.run_job(job_of(600, 10.0), 60, sim::SimTime::from_hours(12));
  expect_zero_loss(result, 600u);
  EXPECT_GT(system.fault_injector()->stats().aggregator_crashes, 0u);
  // A crashed aggregator went silent long enough to be voided from the
  // routing, and its later reports restored it.
  EXPECT_GT(system.controller().aggregator_failovers(), 0u);
  EXPECT_GT(system.controller().aggregator_restores(), 0u);
}

TEST(FaultInjection, PartitionWithDuplicationDedupesEndToEnd) {
  SystemConfig config;
  config.receivers = 400;
  config.aggregators = 4;
  config.seed = 33;
  config.control.overshoot_margin = 1.3;
  config.fault.enabled = true;
  config.fault.message_duplication = 0.05;
  config.fault.partitions_per_hour = 60.0;
  config.fault.partition_duration = sim::SimTime::from_seconds(90);
  config.fault.aggregator_failover_timeout = sim::SimTime::from_seconds(45);

  OddciSystem system(config);
  const auto result =
      system.run_job(job_of(300, 10.0), 60, sim::SimTime::from_hours(12));
  expect_zero_loss(result, 300u);
  const auto stats = system.fault_injector()->stats();
  EXPECT_GT(stats.partitions_started, 0u);
  EXPECT_GT(stats.messages_duplicated, 0u);
  // Duplicated deliveries (and result-retry re-sends crossing their ack)
  // must be absorbed by the Backend's ledger, never double-counted.
  EXPECT_EQ(system.backend().tasks_done(), 300u);
}

TEST(FaultInjection, CorruptedControlMessagesDieInVerification) {
  SystemConfig config;
  config.receivers = 200;
  config.seed = 34;
  config.control.overshoot_margin = 1.3;
  config.fault.enabled = true;
  config.fault.control_corruptions_per_hour = 180.0;
  config.fault.corrupt_exposure = sim::SimTime::from_seconds(5);

  OddciSystem system(config);
  const auto result =
      system.run_job(job_of(200, 10.0), 40, sim::SimTime::from_hours(12));
  expect_zero_loss(result, 200u);
  EXPECT_GT(system.fault_injector()->stats().control_corruptions, 0u);
  // The tampered configuration reached agents and failed signature
  // verification — and never made it past it (the job ran unharmed).
  EXPECT_GT(result.metrics.find_counter("pna.signature_failures")->value, 0u);
}

TEST(FaultInjection, ControllerCrashRebuildsMembershipFromHeartbeats) {
  SystemConfig config;
  config.receivers = 300;
  config.seed = 35;
  config.control.overshoot_margin = 1.3;
  config.fault.enabled = true;
  // Crash mid-job: warmup is 90 s, the job starts right after and runs a
  // few minutes.
  config.fault.controller_crash_at.push_back(
      sim::SimTime::from_seconds(140));
  config.fault.controller_downtime = sim::SimTime::from_seconds(45);

  OddciSystem system(config);
  const auto result =
      system.run_job(job_of(600, 10.0), 50, sim::SimTime::from_hours(12));
  expect_zero_loss(result, 600u);
  EXPECT_EQ(system.fault_injector()->stats().controller_crashes, 1u);
}

TEST(FaultInjection, BackendCrashRequeuesOutstandingTasks) {
  SystemConfig config;
  config.receivers = 300;
  config.seed = 36;
  config.control.overshoot_margin = 1.3;
  config.fault.enabled = true;
  config.fault.backend_crash_at.push_back(sim::SimTime::from_seconds(140));
  config.fault.backend_downtime = sim::SimTime::from_seconds(45);

  OddciSystem system(config);
  const auto result =
      system.run_job(job_of(600, 10.0), 50, sim::SimTime::from_hours(12));
  expect_zero_loss(result, 600u);
  EXPECT_EQ(system.fault_injector()->stats().backend_crashes, 1u);
  EXPECT_GT(result.job.crash_requeues, 0u);
}

TEST(FaultInjection, FaultOffSnapshotHasNoFaultCells) {
  SystemConfig config;
  config.receivers = 50;
  config.seed = 37;
  OddciSystem system(config);
  const auto result =
      system.run_job(job_of(20, 1.0), 10, sim::SimTime::from_hours(2));
  EXPECT_TRUE(result.completed);
  for (const auto& counter : result.metrics.counters) {
    EXPECT_EQ(counter.name.rfind("fault.", 0), std::string::npos)
        << counter.name;
    EXPECT_EQ(counter.name.rfind("recovery.", 0), std::string::npos)
        << counter.name;
  }
}

TEST(FaultInjection, UntunedReceiversNeverParticipate) {
  SystemConfig config;
  config.receivers = 100;
  config.tuned_fraction = 0.0;
  config.seed = 25;
  OddciSystem system(config);
  const auto result =
      system.run_job(job_of(10, 1.0), 10, sim::SimTime::from_hours(1));
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.final_instance_size, 0u);
  EXPECT_EQ(result.controller.heartbeats_received, 0u);
}

}  // namespace
}  // namespace oddci::core

// Failure-injection scenarios: receiver churn, mass outages, and the
// Controller's recomposition keeping instances alive.

#include <gtest/gtest.h>

#include "core/system.hpp"
#include "workload/job.hpp"

namespace oddci::core {
namespace {

workload::Job job_of(std::size_t tasks, double p) {
  return workload::make_uniform_job(
      "fault", util::Bits::from_megabytes(1), tasks,
      util::Bits::from_bytes(256), util::Bits::from_bytes(256), p);
}

TEST(FaultInjection, JobCompletesUnderChurn) {
  SystemConfig config;
  config.receivers = 300;
  config.seed = 21;
  ChurnOptions churn;
  churn.mean_on_seconds = 1200;
  churn.mean_off_seconds = 600;
  config.churn = churn;
  config.controller.overshoot_margin = 1.3;

  OddciSystem system(config);
  const auto result =
      system.run_job(job_of(300, 10.0), 50, sim::SimTime::from_hours(12));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.job.results_received, 300u);
  // Churn forces re-dispatch and/or recomposition at some point.
  EXPECT_GT(result.job.reassignments + result.controller.recompositions +
                result.controller.members_pruned,
            0u);
}

TEST(FaultInjection, RecompositionReplacesLostMembers) {
  SystemConfig config;
  config.receivers = 200;
  config.seed = 22;
  ChurnOptions churn;
  churn.mean_on_seconds = 600;  // aggressive: ~10 min sessions
  churn.mean_off_seconds = 300;
  config.churn = churn;

  OddciSystem system(config);
  system.controller().deploy_pna();
  system.simulation().run_until(sim::SimTime::from_seconds(120));

  InstanceSpec spec;
  spec.name = "churny";
  spec.target_size = 30;
  spec.image_size = util::Bits::from_megabytes(1);
  const InstanceId id =
      system.provider().request_instance(spec, system.backend().node_id());

  system.simulation().run_until(sim::SimTime::from_hours(3));
  const InstanceStatus* st = system.controller().status(id);
  ASSERT_NE(st, nullptr);
  // Members were lost (pruned) and wakeups were retransmitted to recompose.
  EXPECT_GT(system.controller().stats().members_pruned, 0u);
  EXPECT_GT(st->wakeups_broadcast, 1u);
  // Despite the churn the instance hovers near its target.
  EXPECT_GE(st->current_size, 20u);
}

TEST(FaultInjection, MassOutageThenRecovery) {
  SystemConfig config;
  config.receivers = 150;
  config.seed = 23;
  OddciSystem system(config);
  system.controller().deploy_pna();
  system.simulation().run_until(sim::SimTime::from_seconds(120));

  InstanceSpec spec;
  spec.name = "outage";
  spec.target_size = 40;
  spec.image_size = util::Bits::from_megabytes(1);
  const InstanceId id =
      system.provider().request_instance(spec, system.backend().node_id());
  system.simulation().run_until(sim::SimTime::from_seconds(600));
  ASSERT_GE(system.controller().status(id)->current_size, 40u);

  // Power off 60% of the population at once.
  const auto& receivers = system.receivers();
  for (std::size_t i = 0; i < receivers.size(); ++i) {
    if (i % 5 < 3) {
      receivers[i]->set_power_mode(dtv::PowerMode::kOff);
    }
  }
  // The controller prunes the dead members (recomposition may already be
  // refilling from survivors, so assert on the pruning counter, not size).
  system.simulation().run_until(sim::SimTime::from_seconds(900));
  EXPECT_GT(system.controller().stats().members_pruned, 0u);

  // ...survivors return, and recomposition refills the instance.
  for (const auto& receiver : receivers) {
    if (!receiver->powered()) {
      receiver->set_power_mode(dtv::PowerMode::kStandby);
    }
  }
  system.simulation().run_until(sim::SimTime::from_hours(2));
  EXPECT_GE(system.controller().status(id)->current_size, 40u);
}

TEST(FaultInjection, TasksLostToTrimmingAreRedispatched) {
  // Deliberate heavy overshoot: many PNAs join, the trim resets some while
  // they hold tasks; the Backend timeout must recover every task.
  SystemConfig config;
  config.receivers = 200;
  config.seed = 24;
  config.controller.overshoot_margin = 4.0;
  OddciSystem system(config);
  const auto result =
      system.run_job(job_of(400, 20.0), 20, sim::SimTime::from_hours(12));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.job.results_received, 400u);
}

TEST(FaultInjection, UntunedReceiversNeverParticipate) {
  SystemConfig config;
  config.receivers = 100;
  config.tuned_fraction = 0.0;
  config.seed = 25;
  OddciSystem system(config);
  const auto result =
      system.run_job(job_of(10, 1.0), 10, sim::SimTime::from_hours(1));
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.final_instance_size, 0u);
  EXPECT_EQ(result.controller.heartbeats_received, 0u);
}

}  // namespace
}  // namespace oddci::core

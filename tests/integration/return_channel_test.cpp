// O(changes) return channel, end to end: delta encoding must deliver the
// same job outcome as the naive tree for a fraction of the Controller's
// ingest bytes, stay byte-identical under seeded replay per (seed, K,
// mode) — including the fault matrix with aggregator failover forcing
// resyncs — and survive a constrained, queue-bounded return channel
// without violating any conservation invariant.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/system.hpp"
#include "obs/export.hpp"
#include "obs/trace_export.hpp"
#include "workload/job.hpp"

namespace oddci::core {
namespace {

SystemConfig base_config(HeartbeatMode mode, std::size_t shards,
                         std::size_t receivers) {
  SystemConfig config;
  config.receivers = receivers;
  config.channels = 2;
  config.aggregators = 4;
  config.shards = shards;
  config.seed = 20260809;
  config.control.overshoot_margin = 1.3;
  config.heartbeat.mode = mode;
  return config;
}

RunResult run_small_job(OddciSystem& system, std::size_t tasks,
                        std::size_t instance_size) {
  const auto job = workload::make_uniform_job(
      "return-channel", util::Bits::from_megabytes(2), tasks,
      util::Bits::from_bytes(512), util::Bits::from_bytes(512), 10.0);
  return system.run_job(job, instance_size);
}

TEST(ReturnChannel, DeltaMatchesNaiveOutcomeAndCutsIngestBytes) {
  // Long enough that steady-state windows dominate the delta path's
  // one-time resync cost (the 10x acceptance point lives in the fan-out
  // bench at 1M; this guards the asymptotic shape at test scale).
  SystemConfig naive_cfg =
      base_config(HeartbeatMode::kNaive, 1, 5'000);
  OddciSystem naive(naive_cfg);
  const RunResult naive_result = run_small_job(naive, 600, 50);
  const std::uint64_t naive_bytes = naive.controller().report_bytes_ingested();

  SystemConfig delta_cfg =
      base_config(HeartbeatMode::kDelta, 1, 5'000);
  OddciSystem delta(delta_cfg);
  const RunResult delta_result = run_small_job(delta, 600, 50);
  const std::uint64_t delta_bytes = delta.controller().report_bytes_ingested();

  // Identical work done, per mode.
  EXPECT_TRUE(naive_result.completed);
  EXPECT_TRUE(delta_result.completed);
  EXPECT_EQ(naive_result.job.results_received,
            delta_result.job.results_received);
  EXPECT_EQ(naive_result.job.tasks_failed, delta_result.job.tasks_failed);
  EXPECT_EQ(delta_result.final_instance_size,
            naive_result.final_instance_size);

  // The point of the PR: steady-state members are never re-shipped, so the
  // Controller ingests a fraction of the naive report volume.
  EXPECT_GT(naive_bytes, 0u);
  EXPECT_LT(delta_bytes * 5, naive_bytes);

  // Delta application reconstructed the membership view exactly.
  EXPECT_TRUE(delta_result.health.ok()) << delta_result.health.to_text();
  EXPECT_EQ(delta.controller().delta_stats().checksum_failures, 0u);
}

// Per (seed, K, mode): two in-process runs must export byte-identical
// metrics JSON and Chrome traces. This pins the delta path (and pacing-free
// naive path) to the kernel's determinism contract across shard counts.
TEST(ReturnChannel, SeededExportsAreByteIdenticalPerSeedShardsMode) {
  struct Export {
    std::string metrics_json;
    std::string chrome_trace;
    bool completed = false;
  };
  auto run_once = [](HeartbeatMode mode, std::size_t shards) {
    SystemConfig config = base_config(mode, shards, 2'000);
    config.obs.trace = true;
    config.obs.trace_capacity = 1 << 16;
    OddciSystem system(config);
    const RunResult result = run_small_job(system, 100, 40);
    Export e;
    e.metrics_json = obs::to_json(result.metrics);
    e.chrome_trace = obs::to_chrome_trace(*system.flight_recorder());
    e.completed = result.completed;
    return e;
  };

  for (const HeartbeatMode mode :
       {HeartbeatMode::kNaive, HeartbeatMode::kDelta}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      const Export first = run_once(mode, shards);
      const Export second = run_once(mode, shards);
      EXPECT_TRUE(first.completed)
          << "mode=" << static_cast<int>(mode) << " K=" << shards;
      EXPECT_EQ(first.metrics_json, second.metrics_json)
          << "mode=" << static_cast<int>(mode) << " K=" << shards;
      EXPECT_EQ(first.chrome_trace, second.chrome_trace)
          << "mode=" << static_cast<int>(mode) << " K=" << shards;
    }
  }
}

// Full fault matrix in delta mode with a relay tier: aggregator
// crash-restarts must force post-restart resyncs, the job must lose and
// double-count nothing, and the whole trajectory must replay byte for
// byte.
TEST(ReturnChannel, FaultMatrixAggregatorFailoverForcesResyncAndReplays) {
  struct Export {
    std::string metrics_json;
    bool completed = false;
    std::uint64_t unique_results = 0;
    std::uint64_t tasks_failed = 0;
    std::uint64_t resyncs_applied = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t checksum_failures = 0;
    bool health_ok = false;
    std::string health_text;
  };
  auto run_matrix = [] {
    SystemConfig config = base_config(HeartbeatMode::kDelta, 1, 20'000);
    config.heartbeat.tree_fanin = 2;  // 4 leaves -> 2 relays
    config.fault.enabled = true;
    config.fault.message_loss = 0.01;
    config.fault.message_duplication = 0.01;
    config.fault.partitions_per_hour = 6.0;
    config.fault.partition_duration = sim::SimTime::from_seconds(30);
    config.fault.aggregator_crashes_per_hour = 60.0;
    config.fault.pna_crashes_per_hour = 20.0;
    OddciSystem system(config);
    const RunResult result = run_small_job(system, 400, 50);
    Export e;
    e.metrics_json = obs::to_json(result.metrics);
    e.completed = result.completed;
    e.unique_results = result.job.results_received -
                       result.job.duplicate_results - result.job.late_results;
    e.tasks_failed = result.job.tasks_failed;
    const auto delta = system.controller().delta_stats();
    e.resyncs_applied = delta.resyncs_applied;
    e.frames_received = delta.frames_received;
    e.checksum_failures = delta.checksum_failures;
    e.health_ok = result.health.ok();
    e.health_text = result.health.to_text();
    return e;
  };

  const Export first = run_matrix();
  const Export second = run_matrix();

  EXPECT_EQ(first.metrics_json, second.metrics_json);
  EXPECT_EQ(first.resyncs_applied, second.resyncs_applied);
  EXPECT_EQ(first.frames_received, second.frames_received);

  EXPECT_TRUE(first.completed);
  EXPECT_EQ(first.unique_results, 400u);
  EXPECT_EQ(first.tasks_failed, 0u);
  EXPECT_TRUE(first.health_ok) << first.health_text;
  EXPECT_EQ(first.checksum_failures, 0u);

  // Every leaf resyncs once at startup; failover-forced resyncs push the
  // count past the leaf count (4 here).
  EXPECT_GT(first.resyncs_applied, 4u);
  EXPECT_GT(first.frames_received, 0u);
}

// Wakeup storm over the modeled return channel with pacing on: the run
// must converge, the new queue/pacing observability must be present in the
// snapshot, and no conservation check may fire.
TEST(ReturnChannel, ConstrainedChannelStormConvergesWithHealthyQueues) {
  SystemConfig config = base_config(HeartbeatMode::kDelta, 1, 20'000);
  config.heartbeat.paced = true;
  config.return_channel.enabled = true;
  OddciSystem system(config);
  const RunResult result = run_small_job(system, 200, 100);

  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.health.ok()) << result.health.to_text();

  // Return-channel health is visible: queue-drop counters, backlog gauges
  // and the pacing counter all registered.
  const std::string json = obs::to_json(result.metrics);
  EXPECT_NE(json.find("net.uplink_queue_dropped"), std::string::npos);
  EXPECT_NE(json.find("net.downlink_queue_dropped"), std::string::npos);
  EXPECT_NE(json.find("net.controller_downlink_backlog_seconds"),
            std::string::npos);
  EXPECT_NE(json.find("net.aggregator_uplink_backlog_seconds"),
            std::string::npos);
  EXPECT_NE(json.find("pna.heartbeats_paced"), std::string::npos);
  EXPECT_NE(json.find("controller.delta_frames_received"), std::string::npos);

  // The delta membership conservation check ran and passed.
  bool saw_delta_check = false;
  for (const auto& finding : result.health.findings) {
    if (finding.check == "delta.membership") {
      saw_delta_check = true;
      EXPECT_EQ(finding.severity, obs::HealthSeverity::kOk) << finding.detail;
    }
  }
  EXPECT_TRUE(saw_delta_check);
}

// Starve the Controller's downlink until delta frames tail-drop (the four
// leaves' window-aligned resync bursts collide there): drops must be
// counted (not silently lost), the delta protocol must notice (gaps,
// skips or resync requests), and every conservation balance must still
// hold.
TEST(ReturnChannel, TailDropsAreAccountedAndNeverBreakConservation) {
  SystemConfig config = base_config(HeartbeatMode::kDelta, 1, 4'000);
  config.return_channel.enabled = true;
  config.return_channel.controller_downlink = util::BitRate::from_mbps(0.2);
  config.return_channel.queue_limit = sim::SimTime::from_millis(500);
  OddciSystem system(config);
  const RunResult result = run_small_job(system, 100, 40);

  // The starved channel sheds frames...
  EXPECT_GT(result.network.downlink_queue_dropped, 0u);
  // ...but every shed frame is accounted: no critical conservation finding
  // (in-flight residue at run end is kInfo and fine).
  EXPECT_TRUE(result.health.ok()) << result.health.to_text();
  // And the Controller observed the disruption through the protocol, not
  // through silent divergence.
  const auto delta = system.controller().delta_stats();
  EXPECT_EQ(delta.checksum_failures, 0u);
  EXPECT_GT(delta.gaps_detected + delta.frames_skipped + delta.resync_requests,
            0u);
}

}  // namespace
}  // namespace oddci::core

// Determinism-at-scale: the same seeded scenario, run twice in the same
// process, must produce bit-identical trajectories. This is the acceptance
// gate for the pooled-event kernel and the timer wheel — any hidden
// dependence on heap-allocation order, slot recycling, or wheel cascade
// timing shows up here as a divergent counter.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/system.hpp"
#include "obs/export.hpp"
#include "obs/trace_export.hpp"
#include "workload/job.hpp"

namespace oddci::core {
namespace {

struct Trajectory {
  std::uint64_t events_executed = 0;
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_cancelled = 0;
  std::int64_t final_now_us = 0;
  bool completed = false;
  double wakeup_seconds = 0.0;
  double makespan_seconds = 0.0;
  std::size_t final_instance_size = 0;
  std::uint64_t results_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::int64_t bits_sent = 0;
  std::uint64_t aggregate_reports = 0;

  bool operator==(const Trajectory&) const = default;
};

Trajectory run_scenario(std::size_t receivers) {
  SystemConfig config;
  config.receivers = receivers;
  config.channels = 4;
  config.aggregators = 8;
  config.seed = 20260805;
  config.control.overshoot_margin = 1.3;
  OddciSystem system(config);

  const auto job = workload::make_uniform_job(
      "replay", util::Bits::from_megabytes(2), 400,
      util::Bits::from_bytes(512), util::Bits::from_bytes(512), 10.0);
  const auto result = system.run_job(job, 200);

  Trajectory t;
  t.events_executed = system.simulation().events_executed();
  t.events_scheduled = system.simulation().events_scheduled();
  t.events_cancelled = system.simulation().events_cancelled();
  t.final_now_us = system.simulation().now().micros();
  t.completed = result.completed;
  t.wakeup_seconds = result.wakeup_seconds;
  t.makespan_seconds = result.makespan_seconds;
  t.final_instance_size = result.final_instance_size;
  t.results_received = result.job.results_received;
  t.messages_sent = result.network.messages_sent;
  t.messages_delivered = result.network.messages_delivered;
  t.messages_dropped = result.network.messages_dropped;
  t.bits_sent = result.network.bits_sent;
  t.aggregate_reports = result.controller.aggregate_reports_received;
  return t;
}

TEST(Replay, SeededHundredThousandReceiverRunIsBitIdentical) {
  const Trajectory first = run_scenario(100'000);
  const Trajectory second = run_scenario(100'000);

  // Spelled out field by field so a divergence names the counter.
  EXPECT_EQ(first.events_executed, second.events_executed);
  EXPECT_EQ(first.events_scheduled, second.events_scheduled);
  EXPECT_EQ(first.events_cancelled, second.events_cancelled);
  EXPECT_EQ(first.final_now_us, second.final_now_us);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.wakeup_seconds, second.wakeup_seconds);
  EXPECT_EQ(first.makespan_seconds, second.makespan_seconds);
  EXPECT_EQ(first.final_instance_size, second.final_instance_size);
  EXPECT_EQ(first.results_received, second.results_received);
  EXPECT_EQ(first.messages_sent, second.messages_sent);
  EXPECT_EQ(first.messages_delivered, second.messages_delivered);
  EXPECT_EQ(first.messages_dropped, second.messages_dropped);
  EXPECT_EQ(first.bits_sent, second.bits_sent);
  EXPECT_EQ(first.aggregate_reports, second.aggregate_reports);
  EXPECT_EQ(first, second);

  // And the run must have done real work.
  EXPECT_TRUE(first.completed);
  EXPECT_GT(first.events_executed, 100'000u);
  EXPECT_GT(first.messages_delivered, 0u);
}

// The full fault matrix — channel faults, partitions, server and PNA
// crash-restarts, control corruption — driven by one seed, at 100k
// receivers, must replay byte for byte: identical metrics JSON and Chrome
// trace exports, and a job that loses or double-counts nothing.
TEST(Replay, SeededFaultMatrixExportsAreByteIdentical) {
  struct Export {
    std::string metrics_json;
    std::string chrome_trace;
    bool completed = false;
    std::uint64_t unique_results = 0;
    std::uint64_t tasks_failed = 0;
    std::uint64_t events_executed = 0;
  };

  auto run_matrix = [] {
    SystemConfig config;
    config.receivers = 100'000;
    config.channels = 4;
    config.aggregators = 8;
    config.seed = 20260805;
    config.control.overshoot_margin = 1.3;
    config.obs.trace = true;
    config.obs.trace_capacity = 1 << 18;
    config.fault.enabled = true;
    config.fault.message_loss = 0.01;
    config.fault.message_duplication = 0.01;
    config.fault.latency_spike_probability = 0.005;
    config.fault.partitions_per_hour = 3.0;
    config.fault.partition_duration = sim::SimTime::from_seconds(120);
    config.fault.controller_crash_at.push_back(
        sim::SimTime::from_seconds(500));
    config.fault.backend_crash_at.push_back(sim::SimTime::from_seconds(900));
    config.fault.aggregator_crashes_per_hour = 2.0;
    config.fault.pna_crashes_per_hour = 20.0;
    config.fault.pna_hangs_per_hour = 10.0;
    config.fault.control_corruptions_per_hour = 4.0;
    OddciSystem system(config);

    const auto job = workload::make_uniform_job(
        "fault-matrix", util::Bits::from_megabytes(2), 400,
        util::Bits::from_bytes(512), util::Bits::from_bytes(512), 10.0);
    const auto result = system.run_job(job, 200);

    Export e;
    e.metrics_json = obs::to_json(result.metrics);
    e.chrome_trace = obs::to_chrome_trace(*system.flight_recorder());
    e.completed = result.completed;
    e.unique_results = result.job.results_received -
                       result.job.duplicate_results - result.job.late_results;
    e.tasks_failed = result.job.tasks_failed;
    e.events_executed = system.simulation().events_executed();
    return e;
  };

  const Export first = run_matrix();
  const Export second = run_matrix();

  EXPECT_EQ(first.events_executed, second.events_executed);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
  EXPECT_EQ(first.chrome_trace, second.chrome_trace);

  // Zero lost, zero double-counted, despite the whole matrix firing.
  EXPECT_TRUE(first.completed);
  EXPECT_EQ(first.unique_results, 400u);
  EXPECT_EQ(first.tasks_failed, 0u);
  // The matrix actually fired (exports embed the fault.* counters, so the
  // byte-compare above already pins their exact values).
  EXPECT_NE(first.metrics_json.find("fault.messages_lost"),
            std::string::npos);
}

TEST(Replay, DifferentSeedsDiverge) {
  // Sanity check that the trajectory fingerprint is actually sensitive:
  // with another seed the message counts should not all coincide.
  SystemConfig config;
  config.receivers = 2'000;
  config.channels = 2;
  config.aggregators = 2;
  config.control.overshoot_margin = 1.3;

  auto fingerprint = [&](std::uint64_t seed) {
    config.seed = seed;
    OddciSystem system(config);
    const auto job = workload::make_uniform_job(
        "replay", util::Bits::from_megabytes(2), 100,
        util::Bits::from_bytes(512), util::Bits::from_bytes(512), 10.0);
    (void)system.run_job(job, 50);
    return system.simulation().events_executed();
  };
  EXPECT_NE(fingerprint(1), fingerprint(2));
}

}  // namespace
}  // namespace oddci::core

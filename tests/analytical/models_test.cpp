#include "analytical/models.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace oddci::analytical {
namespace {

TEST(Wakeup, FormulaMatchesPaper) {
  // W = 1.5 * I / beta; 10 MB at 1 Mbps = 1.5 * 83886080 / 1e6.
  const auto image = util::Bits::from_megabytes(10);
  const auto beta = util::BitRate::from_mbps(1.0);
  EXPECT_NEAR(wakeup_seconds(image, beta), 1.5 * 83886080.0 / 1e6, 1e-6);
  EXPECT_NEAR(wakeup_best_seconds(image, beta), 83.886, 1e-3);
  EXPECT_NEAR(wakeup_worst_seconds(image, beta), 2 * 83.886, 1e-2);
  EXPECT_THROW(wakeup_seconds(image, util::BitRate(0)),
               std::invalid_argument);
}

TEST(Wakeup, PaperClaimMinutesForTypicalImages) {
  // Section 5.1: typical images <= 8 MB at beta >= 1 Mbps wake up within a
  // couple of minutes, independent of the number of nodes.
  const double w = wakeup_seconds(util::Bits::from_megabytes(8),
                                  util::BitRate::from_mbps(1.0));
  EXPECT_LT(w, 120.0);
}

JobModel fig6_job(double phi, std::size_t n) {
  // Figure 6 scenario: (s + r) = 1 KB, delta = 150 Kbps, I = 10 MB.
  JobModel jm;
  jm.n = n;
  jm.s_bits = 512 * 8.0;
  jm.r_bits = 512 * 8.0;
  jm.p_seconds = task_seconds_for_suitability(
      1024 * 8.0, util::BitRate::from_kbps(150.0), phi);
  jm.image = util::Bits::from_megabytes(10);
  return jm;
}

TEST(Makespan, EquationOne) {
  SystemModel sm;
  JobModel jm;
  jm.n = 1000;
  jm.s_bits = 4096;
  jm.r_bits = 4096;
  jm.p_seconds = 30.0;
  jm.image = util::Bits::from_megabytes(10);
  const std::size_t N = 100;
  const double expected =
      1.5 * 83886080.0 / 1e6 + 10.0 * (8192.0 / 150e3 + 30.0);
  EXPECT_NEAR(makespan_seconds(sm, jm, N), expected, 1e-6);
  EXPECT_THROW(makespan_seconds(sm, jm, 0), std::invalid_argument);
  jm.n = 0;
  EXPECT_THROW(makespan_seconds(sm, jm, N), std::invalid_argument);
}

TEST(Efficiency, EquationTwo) {
  SystemModel sm;
  JobModel jm;
  jm.n = 1000;
  jm.s_bits = 4096;
  jm.r_bits = 4096;
  jm.p_seconds = 30.0;
  jm.image = util::Bits::from_megabytes(10);
  const double M = makespan_seconds(sm, jm, 100);
  EXPECT_NEAR(efficiency(sm, jm, 100), 1000.0 * 30.0 / (M * 100.0), 1e-12);
}

TEST(Efficiency, MonotoneInSuitabilityAndRatio) {
  SystemModel sm;
  // Rising phi at fixed ratio raises E.
  double last = 0.0;
  for (double phi : {1.0, 10.0, 100.0, 1000.0, 100000.0}) {
    const double e = efficiency(sm, fig6_job(phi, 100 * 100), 100);
    EXPECT_GT(e, last);
    last = e;
  }
  EXPECT_GT(last, 0.95);  // Figure 6: high phi, ratio 100 => E near 1.

  // Rising ratio at fixed phi raises E.
  last = 0.0;
  for (std::size_t ratio : {1u, 10u, 100u, 1000u}) {
    const double e = efficiency(sm, fig6_job(10.0, ratio * 100), 100);
    EXPECT_GT(e, last);
    last = e;
  }
}

TEST(Efficiency, Figure6AnchorPoints) {
  // Representative checks of the Figure 6 curve family: with phi = 1 and
  // n/N = 1 the system is hopeless; with phi >= 100 and n/N >= 100 it is
  // excellent.
  SystemModel sm;
  EXPECT_LT(efficiency(sm, fig6_job(1.0, 100), 100), 0.01);
  EXPECT_GT(efficiency(sm, fig6_job(100.0, 100 * 100), 100), 0.8);
  // The paper: a ratio above 100 is generally enough for high efficiency
  // for most practical applications (phi >= ~300 crosses 0.9).
  EXPECT_GT(efficiency(sm, fig6_job(316.0, 100 * 100), 100), 0.9);
  EXPECT_GT(efficiency(sm, fig6_job(1000.0, 100 * 100), 100), 0.97);
}

TEST(Suitability, DefinitionAndInversion) {
  const auto delta = util::BitRate::from_kbps(150.0);
  // Paper: with (s+r) = 1 KB, phi = 1 corresponds to p ~ 53 ms.
  const double p = task_seconds_for_suitability(1024 * 8.0, delta, 1.0);
  EXPECT_NEAR(p, 0.0546, 1e-3);
  EXPECT_NEAR(suitability(512 * 8, 512 * 8, delta, p), 1.0, 1e-9);
  // phi = 100000 corresponds to ~1.5 hours.
  const double p_big =
      task_seconds_for_suitability(1024 * 8.0, delta, 100000.0);
  EXPECT_NEAR(p_big / 3600.0, 1.5, 0.05);
  EXPECT_THROW(suitability(1, 1, delta, 0.0), std::invalid_argument);
  EXPECT_THROW(task_seconds_for_suitability(0.0, delta, 1.0),
               std::invalid_argument);
}

TEST(RatioForEfficiency, InvertsEquationTwo) {
  SystemModel sm;
  const JobModel jm = fig6_job(100.0, 1);  // n unused by the inversion
  for (double target : {0.5, 0.8, 0.9}) {
    const double k = ratio_for_efficiency(sm, jm, target);
    ASSERT_GT(k, 0.0) << target;
    // Plug back: a job with n = k*N at N nodes hits the target efficiency.
    JobModel check = jm;
    const std::size_t N = 1000;
    check.n = static_cast<std::size_t>(k * N + 0.5);
    EXPECT_NEAR(efficiency(sm, check, N), target, 0.01);
  }
  // Unreachable targets are signalled.
  const double asym = asymptotic_efficiency(sm, jm);
  EXPECT_LT(ratio_for_efficiency(sm, jm, asym + 0.001), 0.0);
  EXPECT_THROW(ratio_for_efficiency(sm, jm, 0.0), std::invalid_argument);
  EXPECT_THROW(ratio_for_efficiency(sm, jm, 1.0), std::invalid_argument);
}

TEST(AsymptoticEfficiency, BoundsEfficiency) {
  SystemModel sm;
  const JobModel jm = fig6_job(10.0, 100000 * 100);
  const double asym = asymptotic_efficiency(sm, jm);
  EXPECT_LT(efficiency(sm, jm, 100), asym);
  EXPECT_NEAR(efficiency(sm, jm, 100), asym, 0.01);  // huge ratio: close
}

TEST(Suitability, Figure6TaskDurationRange) {
  // "The average execution time of a task varies from 53 ms (phi = 1) to
  // approximately one and a half hour (phi = 100,000)" — with the paper's
  // phi defined as (s+r)/(delta*p), larger phi means *smaller* p, so the
  // quoted range maps phi = 1 -> 53 ms when p is the varying quantity.
  const auto delta = util::BitRate::from_kbps(150.0);
  const double p1 = task_seconds_for_suitability(8192.0, delta, 1.0);
  EXPECT_NEAR(p1 * 1000.0, 53.0, 3.0);
}

}  // namespace
}  // namespace oddci::analytical

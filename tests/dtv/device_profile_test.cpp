#include "dtv/device_profile.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace oddci::dtv {
namespace {

TEST(DeviceProfile, Stb7109MatchesPaperRatios) {
  const DeviceProfile stb = DeviceProfile::stb_st7109();
  // In use: 20.6x the reference PC.
  EXPECT_NEAR(stb.slowdown(PowerMode::kInUse), 20.6, 1e-9);
  // Standby is 1.65x faster than in use.
  EXPECT_NEAR(stb.slowdown(PowerMode::kInUse) /
                  stb.slowdown(PowerMode::kStandby),
              1.65, 1e-9);
  EXPECT_EQ(stb.ram, util::Bits::from_megabytes(256));
  EXPECT_EQ(stb.flash, util::Bits::from_megabytes(32));
}

TEST(DeviceProfile, ReferencePcIsUnit) {
  const DeviceProfile pc = DeviceProfile::reference_pc();
  EXPECT_DOUBLE_EQ(pc.slowdown(PowerMode::kStandby), 1.0);
  EXPECT_DOUBLE_EQ(pc.slowdown(PowerMode::kInUse), 1.0);
}

TEST(DeviceProfile, ReferenceStbIsUnit) {
  const DeviceProfile stb = DeviceProfile::reference_stb();
  EXPECT_DOUBLE_EQ(stb.slowdown(PowerMode::kStandby), 1.0);
  EXPECT_DOUBLE_EQ(stb.slowdown(PowerMode::kInUse), 1.0);
}

TEST(DeviceProfile, OffHasNoSlowdown) {
  EXPECT_THROW(DeviceProfile::stb_st7109().slowdown(PowerMode::kOff),
               std::logic_error);
}

TEST(DeviceProfile, InUseAlwaysAtLeastStandby) {
  for (const auto& p :
       {DeviceProfile::reference_pc(), DeviceProfile::stb_st7109(),
        DeviceProfile::mobile_phone(), DeviceProfile::reference_stb()}) {
    EXPECT_GE(p.slowdown(PowerMode::kInUse), p.slowdown(PowerMode::kStandby))
        << p.name;
  }
}

TEST(DeviceProfile, PowerModeNames) {
  EXPECT_STREQ(to_string(PowerMode::kOff), "off");
  EXPECT_STREQ(to_string(PowerMode::kStandby), "standby");
  EXPECT_STREQ(to_string(PowerMode::kInUse), "in-use");
}

}  // namespace
}  // namespace oddci::dtv

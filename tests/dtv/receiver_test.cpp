#include "dtv/receiver.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "broadcast/channel.hpp"

namespace oddci::dtv {
namespace {

constexpr auto kMbps = [](double m) { return util::BitRate::from_mbps(m); };

class SmallMessage final : public net::Message {
 public:
  [[nodiscard]] util::Bits wire_size() const override {
    return util::Bits(800);
  }
  [[nodiscard]] int tag() const override { return 1; }
};

struct ReceiverTest : ::testing::Test {
  sim::Simulation sim;
  net::Network net{sim};
  broadcast::BroadcastChannel channel{
      sim, broadcast::TransportStream(kMbps(1.1),
                                      util::BitRate::from_kbps(100)),
      7, sim::SimTime::from_millis(500)};
  net::LinkSpec link{util::BitRate::from_kbps(150),
                     util::BitRate::from_kbps(150),
                     sim::SimTime::from_millis(10)};
  std::unique_ptr<Receiver> receiver = std::make_unique<Receiver>(
      sim, net, DeviceProfile::stb_st7109(), link);
};

TEST_F(ReceiverTest, StartsInStandbyAndRegistered) {
  EXPECT_EQ(receiver->power_mode(), PowerMode::kStandby);
  EXPECT_TRUE(receiver->powered());
  EXPECT_TRUE(net.attached(receiver->node_id()));
}

TEST_F(ReceiverTest, ExecutionScalesWithProfileAndPowerMode) {
  // Standby: 20.6/1.65 = 12.4848x.
  EXPECT_NEAR(receiver->scaled_seconds(1.0), 20.6 / 1.65, 1e-9);
  receiver->set_power_mode(PowerMode::kInUse);
  EXPECT_NEAR(receiver->scaled_seconds(1.0), 20.6, 1e-9);

  bool done = false;
  receiver->execute(1.0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(sim.now().seconds(), 20.6, 1e-3);
}

TEST_F(ReceiverTest, ExecutionsSerializeFifo) {
  receiver->set_power_mode(PowerMode::kInUse);
  std::vector<double> completions;
  receiver->execute(1.0, [&] { completions.push_back(sim.now().seconds()); });
  receiver->execute(1.0, [&] { completions.push_back(sim.now().seconds()); });
  sim.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_NEAR(completions[0], 20.6, 1e-3);
  EXPECT_NEAR(completions[1], 41.2, 1e-3);
}

TEST_F(ReceiverTest, CancelExecutionSuppressesCallback) {
  bool done = false;
  const auto token = receiver->execute(1.0, [&] { done = true; });
  EXPECT_TRUE(receiver->cancel_execution(token));
  EXPECT_FALSE(receiver->cancel_execution(token));
  sim.run();
  EXPECT_FALSE(done);
}

TEST_F(ReceiverTest, ExecuteValidatesArguments) {
  EXPECT_THROW(receiver->execute(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(receiver->execute(1.0, nullptr), std::invalid_argument);
  receiver->set_power_mode(PowerMode::kOff);
  EXPECT_THROW(receiver->scaled_seconds(1.0), std::logic_error);
}

TEST_F(ReceiverTest, PowerOffCancelsExecutionsAndDetaches) {
  bool done = false;
  receiver->execute(1.0, [&] { done = true; });
  receiver->set_power_mode(PowerMode::kOff);
  sim.run();
  EXPECT_FALSE(done);
  EXPECT_FALSE(net.attached(receiver->node_id()));
  EXPECT_FALSE(receiver->powered());
}

TEST_F(ReceiverTest, PowerOnReattaches) {
  receiver->set_power_mode(PowerMode::kOff);
  receiver->set_power_mode(PowerMode::kStandby);
  EXPECT_TRUE(net.attached(receiver->node_id()));
}

TEST_F(ReceiverTest, MessagesReachInstalledHandler) {
  Receiver peer(sim, net, DeviceProfile::reference_pc(), link);
  int got = 0;
  receiver->set_message_handler(
      [&](net::NodeId, const net::MessagePtr&) { ++got; });
  peer.send(receiver->node_id(), std::make_shared<SmallMessage>());
  sim.run();
  EXPECT_EQ(got, 1);
  receiver->clear_message_handler();
  peer.send(receiver->node_id(), std::make_shared<SmallMessage>());
  sim.run();
  EXPECT_EQ(got, 1);
}

TEST_F(ReceiverTest, SendWhileOffIsDropped) {
  Receiver peer(sim, net, DeviceProfile::reference_pc(), link);
  int got = 0;
  peer.set_message_handler(
      [&](net::NodeId, const net::MessagePtr&) { ++got; });
  receiver->set_power_mode(PowerMode::kOff);
  receiver->send(peer.node_id(), std::make_shared<SmallMessage>());
  sim.run();
  EXPECT_EQ(got, 0);
}

TEST_F(ReceiverTest, CarouselReadFailsWhenUntunedOrMissing) {
  int failures = 0;
  receiver->read_carousel_file(
      "f", [&](bool ok, const broadcast::CarouselFile&) {
        if (!ok) ++failures;
      });
  EXPECT_EQ(failures, 1);  // not tuned

  receiver->tune(channel);
  receiver->read_carousel_file(
      "f", [&](bool ok, const broadcast::CarouselFile&) {
        if (!ok) ++failures;
      });
  EXPECT_EQ(failures, 2);  // nothing committed / file absent
}

TEST_F(ReceiverTest, CarouselReadCompletesAfterAcquisition) {
  receiver->tune(channel);
  channel.carousel().put_file("f", util::Bits(1'000'000), 1);
  channel.commit();
  bool ok_read = false;
  sim::SimTime done_at;
  receiver->read_carousel_file(
      "f", [&](bool ok, const broadcast::CarouselFile& file) {
        ok_read = ok;
        done_at = sim.now();
        EXPECT_EQ(file.name, "f");
        EXPECT_EQ(file.content_id, 1u);
      });
  sim.run();
  EXPECT_TRUE(ok_read);
  // At 1 Mbps the 1 Mbit file needs at least 1 s (plus phase wait).
  EXPECT_GE(done_at.seconds(), 1.0 - 1e-6);
}

TEST_F(ReceiverTest, CarouselReadInvalidatedByPowerOff) {
  receiver->tune(channel);
  channel.carousel().put_file("f", util::Bits(1'000'000), 1);
  channel.commit();
  bool ok_read = true;
  bool called = false;
  receiver->read_carousel_file(
      "f", [&](bool ok, const broadcast::CarouselFile&) {
        called = true;
        ok_read = ok;
      });
  receiver->set_power_mode(PowerMode::kOff);
  sim.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok_read);
}

TEST_F(ReceiverTest, CarouselReadSurvivesUnrelatedCommit) {
  receiver->tune(channel);
  channel.carousel().put_file("f", util::Bits(1'000'000), 1);
  channel.carousel().put_file("other", util::Bits(1'000'000), 2);
  channel.commit();
  bool ok_read = false;
  receiver->read_carousel_file(
      "f",
      [&](bool ok, const broadcast::CarouselFile&) { ok_read = ok; });
  // Update the *other* module: module-version semantics keep our read.
  channel.carousel().put_file("other", util::Bits(1'000'000), 3);
  channel.commit();
  sim.run();
  EXPECT_TRUE(ok_read);
}

TEST_F(ReceiverTest, CarouselReadInvalidatedByModuleUpdate) {
  receiver->tune(channel);
  channel.carousel().put_file("f", util::Bits(1'000'000), 1);
  channel.commit();
  bool ok_read = true;
  receiver->read_carousel_file(
      "f",
      [&](bool ok, const broadcast::CarouselFile&) { ok_read = ok; });
  channel.carousel().put_file("f", util::Bits(1'000'000), 5);  // version bump
  channel.commit();
  sim.run();
  EXPECT_FALSE(ok_read);
}

TEST_F(ReceiverTest, AutostartLaunchesAfterBaseFileAcquisition) {
  int launches = 0;
  receiver->application_manager().register_factory("app", [&] {
    ++launches;
    class Nop final : public Xlet {
      void init_xlet(XletContext&) override {}
      void start_xlet() override {}
      void pause_xlet() override {}
      void destroy_xlet(bool) override {}
    };
    return std::make_unique<Nop>();
  });
  receiver->tune(channel);
  broadcast::AitEntry e;
  e.application_id = 1;
  e.control_code = broadcast::AppControlCode::kAutostart;
  e.application_name = "app";
  e.base_file = "app.jar";
  channel.ait().upsert(e);
  channel.carousel().put_file("app.jar", util::Bits(100'000), 1);
  channel.commit();
  sim.run();
  EXPECT_EQ(launches, 1);
  EXPECT_TRUE(receiver->application_manager().running(1));
}

TEST_F(ReceiverTest, ChannelChangeDestroysApps) {
  receiver->application_manager().register_factory("app", [] {
    class Nop final : public Xlet {
      void init_xlet(XletContext&) override {}
      void start_xlet() override {}
      void pause_xlet() override {}
      void destroy_xlet(bool) override {}
    };
    return std::make_unique<Nop>();
  });
  receiver->application_manager().launch(1, "app");
  broadcast::BroadcastChannel other{
      sim, broadcast::TransportStream(kMbps(1.1),
                                      util::BitRate::from_kbps(100)),
      8};
  receiver->tune(channel);
  EXPECT_TRUE(receiver->application_manager().running(1));
  receiver->tune(other);
  EXPECT_FALSE(receiver->application_manager().running(1));
  // `other` is destroyed before the fixture's receiver; tune back so
  // ~Receiver does not untune a dead channel.
  receiver->tune(channel);
}

}  // namespace
}  // namespace oddci::dtv

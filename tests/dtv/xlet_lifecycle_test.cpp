#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "broadcast/channel.hpp"
#include "dtv/receiver.hpp"

namespace oddci::dtv {
namespace {

/// Records every lifecycle call in order.
class TraceXlet final : public Xlet {
 public:
  explicit TraceXlet(std::vector<std::string>* trace) : trace_(trace) {}
  void init_xlet(XletContext&) override { trace_->push_back("init"); }
  void start_xlet() override { trace_->push_back("start"); }
  void pause_xlet() override { trace_->push_back("pause"); }
  void destroy_xlet(bool unconditional) override {
    trace_->push_back(unconditional ? "destroy!" : "destroy");
  }

 private:
  std::vector<std::string>* trace_;
};

struct XletLifecycleTest : ::testing::Test {
  sim::Simulation sim;
  net::Network net{sim};
  net::LinkSpec link{util::BitRate::from_mbps(1), util::BitRate::from_mbps(1),
                     sim::SimTime::zero()};
  Receiver receiver{sim, net, DeviceProfile::reference_stb(), link};
  std::vector<std::string> trace;

  void SetUp() override {
    receiver.application_manager().register_factory(
        "trace", [this] { return std::make_unique<TraceXlet>(&trace); });
  }
};

TEST_F(XletLifecycleTest, LaunchFollowsFigure4) {
  auto& am = receiver.application_manager();
  EXPECT_TRUE(am.launch(1, "trace"));
  // Loaded -> initXlet -> Paused -> startXlet -> Started.
  EXPECT_EQ(trace, (std::vector<std::string>{"init", "start"}));
  EXPECT_EQ(am.state(1), XletState::kStarted);
  EXPECT_TRUE(am.running(1));
  EXPECT_EQ(am.active_count(), 1u);
}

TEST_F(XletLifecycleTest, LaunchUnknownFactoryFails) {
  EXPECT_FALSE(receiver.application_manager().launch(1, "unknown"));
}

TEST_F(XletLifecycleTest, DoubleLaunchFails) {
  auto& am = receiver.application_manager();
  EXPECT_TRUE(am.launch(1, "trace"));
  EXPECT_FALSE(am.launch(1, "trace"));
  EXPECT_EQ(am.active_count(), 1u);
}

TEST_F(XletLifecycleTest, PauseResumeCycle) {
  auto& am = receiver.application_manager();
  am.launch(1, "trace");
  EXPECT_TRUE(am.pause(1));
  EXPECT_EQ(am.state(1), XletState::kPaused);
  EXPECT_FALSE(am.pause(1));  // already paused
  EXPECT_TRUE(am.resume(1));
  EXPECT_EQ(am.state(1), XletState::kStarted);
  EXPECT_FALSE(am.resume(1));  // already started
  EXPECT_EQ(trace,
            (std::vector<std::string>{"init", "start", "pause", "start"}));
}

TEST_F(XletLifecycleTest, DestroyIsTerminalAndRemoves) {
  auto& am = receiver.application_manager();
  am.launch(1, "trace");
  EXPECT_TRUE(am.destroy(1));
  EXPECT_EQ(trace.back(), "destroy!");
  EXPECT_FALSE(am.running(1));
  EXPECT_EQ(am.state(1), XletState::kDestroyed);
  EXPECT_FALSE(am.destroy(1));
  EXPECT_FALSE(am.pause(1));
  EXPECT_FALSE(am.resume(1));
  // A destroyed instance can never be restarted, but a *new* instance of
  // the same application can be launched.
  EXPECT_TRUE(am.launch(1, "trace"));
}

TEST_F(XletLifecycleTest, DestroyAllClearsEverything) {
  auto& am = receiver.application_manager();
  am.launch(1, "trace");
  am.launch(2, "trace");
  am.destroy_all();
  EXPECT_EQ(am.active_count(), 0u);
  EXPECT_EQ(std::count(trace.begin(), trace.end(), "destroy!"), 2);
}

TEST_F(XletLifecycleTest, ProcessAitAutostartsAndDestroys) {
  auto& am = receiver.application_manager();
  broadcast::Ait ait;
  broadcast::AitEntry e;
  e.application_id = 5;
  e.control_code = broadcast::AppControlCode::kAutostart;
  e.application_name = "trace";
  ait.upsert(e);
  am.process_ait(ait);
  EXPECT_TRUE(am.running(5));
  // Re-processing the same AIT must not relaunch.
  am.process_ait(ait);
  EXPECT_EQ(am.active_count(), 1u);

  e.control_code = broadcast::AppControlCode::kKill;
  ait.upsert(e);
  am.process_ait(ait);
  EXPECT_FALSE(am.running(5));
}

TEST_F(XletLifecycleTest, StateNames) {
  EXPECT_STREQ(to_string(XletState::kLoaded), "Loaded");
  EXPECT_STREQ(to_string(XletState::kPaused), "Paused");
  EXPECT_STREQ(to_string(XletState::kStarted), "Started");
  EXPECT_STREQ(to_string(XletState::kDestroyed), "Destroyed");
}

}  // namespace
}  // namespace oddci::dtv

#include "broadcast/ait.hpp"

#include <gtest/gtest.h>

namespace oddci::broadcast {
namespace {

AitEntry entry(std::uint32_t id, AppControlCode code,
               const std::string& name = "app") {
  AitEntry e;
  e.application_id = id;
  e.control_code = code;
  e.application_name = name;
  e.base_file = name + ".jar";
  return e;
}

TEST(Ait, UpsertInsertsAndBumpsVersion) {
  Ait ait;
  EXPECT_EQ(ait.version(), 0u);
  ait.upsert(entry(1, AppControlCode::kAutostart));
  EXPECT_EQ(ait.version(), 1u);
  EXPECT_EQ(ait.entries().size(), 1u);
  ait.upsert(entry(2, AppControlCode::kPresent));
  EXPECT_EQ(ait.version(), 2u);
  EXPECT_EQ(ait.entries().size(), 2u);
}

TEST(Ait, UpsertReplacesExisting) {
  Ait ait;
  ait.upsert(entry(1, AppControlCode::kAutostart, "a"));
  ait.upsert(entry(1, AppControlCode::kKill, "a"));
  EXPECT_EQ(ait.entries().size(), 1u);
  EXPECT_EQ(ait.find(1)->control_code, AppControlCode::kKill);
  EXPECT_EQ(ait.version(), 2u);
}

TEST(Ait, RemoveExistingAndMissing) {
  Ait ait;
  ait.upsert(entry(1, AppControlCode::kPresent));
  EXPECT_TRUE(ait.remove(1));
  EXPECT_EQ(ait.entries().size(), 0u);
  EXPECT_EQ(ait.version(), 2u);
  EXPECT_FALSE(ait.remove(1));
  EXPECT_EQ(ait.version(), 2u);  // no bump on no-op
}

TEST(Ait, FindReturnsNulloptForUnknown) {
  Ait ait;
  EXPECT_FALSE(ait.find(7).has_value());
}

TEST(Ait, AutostartFilter) {
  Ait ait;
  ait.upsert(entry(1, AppControlCode::kAutostart, "trigger"));
  ait.upsert(entry(2, AppControlCode::kPresent, "manual"));
  ait.upsert(entry(3, AppControlCode::kAutostart, "trigger2"));
  ait.upsert(entry(4, AppControlCode::kDestroy, "dying"));
  const auto autos = ait.autostart_entries();
  ASSERT_EQ(autos.size(), 2u);
  EXPECT_EQ(autos[0].application_id, 1u);
  EXPECT_EQ(autos[1].application_id, 3u);
}

TEST(Ait, ControlCodeNames) {
  EXPECT_STREQ(to_string(AppControlCode::kAutostart), "AUTOSTART");
  EXPECT_STREQ(to_string(AppControlCode::kPresent), "PRESENT");
  EXPECT_STREQ(to_string(AppControlCode::kDestroy), "DESTROY");
  EXPECT_STREQ(to_string(AppControlCode::kKill), "KILL");
}

}  // namespace
}  // namespace oddci::broadcast

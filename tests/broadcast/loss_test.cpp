#include <gtest/gtest.h>

#include "broadcast/channel.hpp"
#include "util/stats.hpp"

namespace oddci::broadcast {
namespace {

constexpr auto kMbps = [](double m) { return util::BitRate::from_mbps(m); };

struct LossTest : ::testing::Test {
  sim::Simulation sim;
  BroadcastChannel channel{
      sim, TransportStream(kMbps(1.1), util::BitRate::from_kbps(100)), 77};

  void stage_image() {
    channel.carousel().put_file("image", util::Bits::from_megabytes(1), 1);
    channel.commit();
  }
};

TEST_F(LossTest, ZeroLossMatchesDeterministicModel) {
  stage_image();
  const auto a = channel.file_ready_at("image", sim.now());
  const auto b = channel.carousel().read_completion_time("image", sim.now());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, *b);
}

TEST_F(LossTest, LossOnlyAddsWholeCycles) {
  channel.set_section_loss(0.05);
  stage_image();
  const double cycle = channel.carousel().current().cycle_seconds();
  const auto base =
      channel.carousel().read_completion_time("image", sim.now());
  for (int i = 0; i < 200; ++i) {
    const auto t = channel.file_ready_at("image", sim.now());
    ASSERT_TRUE(t.has_value());
    const double extra = (*t - *base).seconds();
    EXPECT_GE(extra, -1e-9);
    // Extra latency is an integer number of carousel cycles.
    const double cycles = extra / cycle;
    EXPECT_NEAR(cycles, std::round(cycles), 1e-6);
  }
}

TEST_F(LossTest, HigherLossMeansLongerMeanAcquisition) {
  stage_image();
  auto mean_extra = [&](double loss) {
    channel.set_section_loss(loss);
    util::RunningStats stats;
    for (int i = 0; i < 500; ++i) {
      const auto t = channel.file_ready_at("image", sim.now());
      stats.add(t->seconds());
    }
    return stats.mean();
  };
  const double low = mean_extra(0.01);
  const double high = mean_extra(0.10);
  EXPECT_GT(high, low);
}

TEST_F(LossTest, SmallFilesSufferLessThanLargeOnes) {
  channel.set_section_loss(0.05);
  channel.carousel().put_file("big", util::Bits::from_megabytes(4), 1);
  channel.carousel().put_file("tiny", util::Bits::from_bytes(512), 2);
  channel.commit();
  const double cycle = channel.carousel().current().cycle_seconds();
  util::RunningStats big_extra, tiny_extra;
  for (int i = 0; i < 300; ++i) {
    const auto base_big =
        channel.carousel().read_completion_time("big", sim.now());
    const auto base_tiny =
        channel.carousel().read_completion_time("tiny", sim.now());
    big_extra.add((*channel.file_ready_at("big", sim.now()) - *base_big)
                      .seconds() /
                  cycle);
    tiny_extra.add((*channel.file_ready_at("tiny", sim.now()) - *base_tiny)
                       .seconds() /
                   cycle);
  }
  // A 1024-section file waits for its slowest section; a 1-section file
  // rarely needs a retry at all.
  EXPECT_GT(big_extra.mean(), tiny_extra.mean());
  EXPECT_LT(tiny_extra.mean(), 0.1);
}

TEST_F(LossTest, Validation) {
  EXPECT_THROW(channel.set_section_loss(-0.1), std::invalid_argument);
  EXPECT_THROW(channel.set_section_loss(1.0), std::invalid_argument);
  EXPECT_THROW(channel.set_section_loss(0.1, util::Bits(0)),
               std::invalid_argument);
  EXPECT_NO_THROW(channel.set_section_loss(0.0));
}

}  // namespace
}  // namespace oddci::broadcast

#include "broadcast/carousel.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"

namespace oddci::broadcast {
namespace {

constexpr auto kMbps = [](double m) { return util::BitRate::from_mbps(m); };

TEST(Carousel, CommitBuildsSnapshot) {
  ObjectCarousel c(kMbps(1));
  c.put_file("image", util::Bits::from_megabytes(10), 1);
  c.put_file("config", util::Bits::from_bytes(512), 2);
  EXPECT_FALSE(c.has_committed());
  const auto gen = c.commit(sim::SimTime::zero());
  EXPECT_EQ(gen, 1u);
  EXPECT_TRUE(c.has_committed());
  EXPECT_EQ(c.current().files.size(), 2u);
  EXPECT_EQ(c.current().total_size().count(),
            util::Bits::from_megabytes(10).count() + 512 * 8);
}

TEST(Carousel, PutFileValidation) {
  ObjectCarousel c(kMbps(1));
  EXPECT_THROW(c.put_file("", util::Bits(8), 1), std::invalid_argument);
  EXPECT_THROW(c.put_file("f", util::Bits(0), 1), std::invalid_argument);
  EXPECT_THROW(ObjectCarousel(util::BitRate(0)), std::invalid_argument);
}

TEST(Carousel, UpdateBumpsVersion) {
  ObjectCarousel c(kMbps(1));
  c.put_file("f", util::Bits(800), 1);
  c.commit(sim::SimTime::zero());
  EXPECT_EQ(c.current().find("f")->version, 1u);
  c.put_file("f", util::Bits(800), 9);
  c.commit(sim::SimTime::from_seconds(1));
  EXPECT_EQ(c.current().find("f")->version, 2u);
  EXPECT_EQ(c.current().find("f")->content_id, 9u);
  EXPECT_EQ(c.current().generation, 2u);
}

TEST(Carousel, RemoveFile) {
  ObjectCarousel c(kMbps(1));
  c.put_file("a", util::Bits(8), 1);
  c.put_file("b", util::Bits(8), 2);
  EXPECT_TRUE(c.remove_file("a"));
  EXPECT_FALSE(c.remove_file("a"));
  c.commit(sim::SimTime::zero());
  EXPECT_EQ(c.current().find("a"), nullptr);
  EXPECT_NE(c.current().find("b"), nullptr);
}

TEST(Carousel, SingleFileAcquisitionBounds) {
  // One 1 Mbit file at 1 Mbps: cycle = 1 s, read = 1 s.
  ObjectCarousel c(kMbps(1));
  c.put_file("image", util::Bits(1'000'000), 1);
  c.commit(sim::SimTime::zero());  // phase 0

  // Listening from the exact cycle start: best case, one full read.
  auto t = c.read_completion_time("image", sim::SimTime::zero());
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(t->seconds(), 1.0, 1e-6);

  // Listening 0.25 s into the cycle: wait 0.75 s for the next start, then
  // read 1 s.
  t = c.read_completion_time("image", sim::SimTime::from_millis(250));
  EXPECT_NEAR(t->seconds() - 0.25, 0.75 + 1.0, 1e-6);
}

TEST(Carousel, PhaseRotationShiftsSchedule) {
  ObjectCarousel c(kMbps(1));
  c.put_file("image", util::Bits(1'000'000), 1);
  // Start the generation half-way through the cycle.
  c.commit(sim::SimTime::zero(), 500'000);
  // At t = 0 the phase is 0.5 s: wait 0.5 s then read 1 s.
  const auto t = c.read_completion_time("image", sim::SimTime::zero());
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(t->seconds(), 1.5, 1e-6);
}

TEST(Carousel, PhaseWrapsModuloCycle) {
  ObjectCarousel c(kMbps(1));
  c.put_file("image", util::Bits(1'000'000), 1);
  c.commit(sim::SimTime::zero(), 2'500'000);  // = 0.5 cycles after wrap
  const auto t = c.read_completion_time("image", sim::SimTime::zero());
  EXPECT_NEAR(t->seconds(), 1.5, 1e-6);
}

TEST(Carousel, MultiFileLayoutOffsets) {
  // Two files at 1 Mbps: "a" (1 Mbit) then "b" (1 Mbit); cycle = 2 s.
  ObjectCarousel c(kMbps(1));
  c.put_file("a", util::Bits(1'000'000), 1);
  c.put_file("b", util::Bits(1'000'000), 2);
  c.commit(sim::SimTime::zero());
  // Listening from t=0 (phase 0): "a" reads immediately (1 s); "b" starts
  // at offset 1 s, done at 2 s.
  EXPECT_NEAR(c.read_completion_time("a", sim::SimTime::zero())->seconds(),
              1.0, 1e-6);
  EXPECT_NEAR(c.read_completion_time("b", sim::SimTime::zero())->seconds(),
              2.0, 1e-6);
  // Listening from t=1.5 (mid-"b"): must wait until b's next start at 3 s,
  // done at 4 s.
  EXPECT_NEAR(
      c.read_completion_time("b", sim::SimTime::from_millis(1500))->seconds(),
      4.0, 1e-6);
}

TEST(Carousel, UnknownFileReturnsNullopt) {
  ObjectCarousel c(kMbps(1));
  c.put_file("a", util::Bits(8), 1);
  c.commit(sim::SimTime::zero());
  EXPECT_FALSE(c.read_completion_time("nope", sim::SimTime::zero()));
  EXPECT_FALSE(c.mean_acquisition_seconds("nope"));
}

TEST(Carousel, ListenBeforeEpochThrows) {
  ObjectCarousel c(kMbps(1));
  c.put_file("a", util::Bits(8), 1);
  c.commit(sim::SimTime::from_seconds(10));
  EXPECT_THROW(c.read_completion_time("a", sim::SimTime::from_seconds(9)),
               std::invalid_argument);
}

TEST(Carousel, MeanAcquisitionIsHalfCyclePlusRead) {
  ObjectCarousel c(kMbps(1));
  c.put_file("image", util::Bits(1'000'000), 1);
  c.commit(sim::SimTime::zero());
  // Single file: mean = 0.5 * 1 s + 1 s = 1.5 s — the paper's 1.5 I/beta.
  EXPECT_NEAR(*c.mean_acquisition_seconds("image"), 1.5, 1e-9);
}

// Property: over uniformly random listen phases, the empirical mean
// acquisition latency converges to the analytical mean, and every sample is
// within [read, cycle + read].
TEST(Carousel, AcquisitionLatencyDistributionProperty) {
  ObjectCarousel c(kMbps(1));
  c.put_file("image", util::Bits::from_megabytes(1), 1);
  c.put_file("config", util::Bits::from_bytes(512), 2);
  c.commit(sim::SimTime::zero());

  const double cycle = c.current().cycle_seconds();
  const double read =
      util::transmission_seconds(c.current().find("image")->size,
                                 c.current().rate);
  util::Random rng(99);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto listen = sim::SimTime::from_seconds(rng.uniform(0.0, 100.0));
    const auto done = c.read_completion_time("image", listen);
    ASSERT_TRUE(done.has_value());
    const double latency = (*done - listen).seconds();
    EXPECT_GE(latency, read - 1e-6);
    EXPECT_LE(latency, cycle + read + 1e-6);
    sum += latency;
  }
  EXPECT_NEAR(sum / n, *c.mean_acquisition_seconds("image"), cycle * 0.02);
}

}  // namespace
}  // namespace oddci::broadcast

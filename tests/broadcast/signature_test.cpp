#include "broadcast/signature.hpp"

#include <gtest/gtest.h>

namespace oddci::broadcast {
namespace {

TEST(Signature, SignVerifyRoundTrip) {
  const Signature s = sign(0xDEADBEEF, "wakeup instance 7");
  EXPECT_TRUE(verify(0xDEADBEEF, "wakeup instance 7", s));
}

TEST(Signature, WrongKeyFails) {
  const Signature s = sign(1, "content");
  EXPECT_FALSE(verify(2, "content", s));
}

TEST(Signature, TamperedContentFails) {
  const Signature s = sign(1, "content");
  EXPECT_FALSE(verify(1, "contenT", s));
  EXPECT_FALSE(verify(1, "content ", s));
  EXPECT_FALSE(verify(1, "", s));
}

TEST(Signature, Deterministic) {
  EXPECT_EQ(sign(7, "abc"), sign(7, "abc"));
}

TEST(Signature, EmptyContentIsSignable) {
  const Signature s = sign(7, "");
  EXPECT_TRUE(verify(7, "", s));
  EXPECT_NE(s, 0u);
}

TEST(SignBuffer, FieldsAreLengthPrefixed) {
  // "ab" + "c" must not collide with "a" + "bc".
  SignBuffer a, b;
  a.add("ab").add("c");
  b.add("a").add("bc");
  EXPECT_NE(a.bytes(), b.bytes());
}

TEST(SignBuffer, NumericEncodings) {
  SignBuffer buf;
  buf.add_u64(42).add_i64(-1).add_double(1.5);
  EXPECT_EQ(buf.bytes().size(), 24u);
  SignBuffer same;
  same.add_u64(42).add_i64(-1).add_double(1.5);
  EXPECT_EQ(buf.bytes(), same.bytes());
  SignBuffer diff;
  diff.add_u64(42).add_i64(-1).add_double(1.5000001);
  EXPECT_NE(buf.bytes(), diff.bytes());
}

}  // namespace
}  // namespace oddci::broadcast

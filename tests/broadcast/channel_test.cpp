#include "broadcast/channel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace oddci::broadcast {
namespace {

constexpr auto kMbps = [](double m) { return util::BitRate::from_mbps(m); };

class RecordingListener final : public BroadcastListener {
 public:
  explicit RecordingListener(sim::Simulation& sim) : sim_(&sim) {}
  void on_signalling(const Ait& ait,
                     const CarouselSnapshot& snapshot) override {
    events.push_back({sim_->now(), ait.version(), snapshot.generation});
  }
  struct Event {
    sim::SimTime at;
    std::uint32_t ait_version;
    std::uint64_t generation;
  };
  std::vector<Event> events;

 private:
  sim::Simulation* sim_;
};

struct ChannelTest : ::testing::Test {
  sim::Simulation sim;
  BroadcastChannel channel{
      sim, TransportStream(kMbps(1.1), util::BitRate::from_kbps(100)), 42,
      sim::SimTime::from_millis(500)};
};

TEST_F(ChannelTest, CarouselRateIsUnusedCapacity) {
  EXPECT_NEAR(channel.carousel_rate().bps(), 1e6, 1.0);
}

TEST_F(ChannelTest, CommitNotifiesTunedListenersWithinRepetition) {
  RecordingListener l1(sim), l2(sim);
  channel.tune(&l1);
  channel.tune(&l2);
  channel.carousel().put_file("f", util::Bits(800), 1);
  channel.commit();
  sim.run();
  ASSERT_EQ(l1.events.size(), 1u);
  ASSERT_EQ(l2.events.size(), 1u);
  EXPECT_LE(l1.events[0].at.seconds(), 0.5);
  EXPECT_LE(l2.events[0].at.seconds(), 0.5);
  EXPECT_NE(l1.events[0].at, l2.events[0].at);  // phase jitter differs
}

TEST_F(ChannelTest, LateTunerAcquiresCurrentSignalling) {
  channel.carousel().put_file("f", util::Bits(800), 1);
  channel.commit();
  sim.run();
  RecordingListener late(sim);
  channel.tune(&late);
  sim.run();
  ASSERT_EQ(late.events.size(), 1u);
  EXPECT_EQ(late.events[0].generation, 1u);
}

TEST_F(ChannelTest, TuneBeforeAnyCommitDeliversNothing) {
  RecordingListener l(sim);
  channel.tune(&l);
  sim.run();
  EXPECT_TRUE(l.events.empty());
}

TEST_F(ChannelTest, UntunedListenerMissesUpdates) {
  RecordingListener l(sim);
  const ListenerId id = channel.tune(&l);
  channel.untune(id);
  channel.carousel().put_file("f", util::Bits(800), 1);
  channel.commit();
  sim.run();
  EXPECT_TRUE(l.events.empty());
  EXPECT_EQ(channel.tuned_count(), 0u);
}

TEST_F(ChannelTest, UntuneDuringPendingAcquisitionDropsIt) {
  RecordingListener l(sim);
  const ListenerId id = channel.tune(&l);
  channel.carousel().put_file("f", util::Bits(800), 1);
  channel.commit();
  channel.untune(id);  // before the phase delay elapses
  sim.run();
  EXPECT_TRUE(l.events.empty());
}

TEST_F(ChannelTest, SupersededCommitOnlyDeliversLatest) {
  RecordingListener l(sim);
  channel.tune(&l);
  channel.carousel().put_file("f", util::Bits(800), 1);
  channel.commit();
  channel.carousel().put_file("f", util::Bits(800), 2);
  channel.commit();  // same timestamp: supersedes generation 1
  sim.run();
  ASSERT_EQ(l.events.size(), 1u);
  EXPECT_EQ(l.events[0].generation, 2u);
}

TEST_F(ChannelTest, AitTravelsWithSignalling) {
  RecordingListener l(sim);
  channel.tune(&l);
  AitEntry e;
  e.application_id = 1;
  e.control_code = AppControlCode::kAutostart;
  e.application_name = "pna";
  channel.ait().upsert(e);
  channel.carousel().put_file("pna.xlet", util::Bits(800), 1);
  channel.commit();
  sim.run();
  ASSERT_EQ(l.events.size(), 1u);
  EXPECT_EQ(l.events[0].ait_version, 1u);
}

TEST_F(ChannelTest, FileReadyAtDelegatesToCarousel) {
  channel.carousel().put_file("f", util::Bits(1'000'000), 1);
  channel.commit();
  const auto t = channel.file_ready_at("f", sim.now());
  ASSERT_TRUE(t.has_value());
  EXPECT_GE(t->seconds(), 1.0 - 1e-6);  // at least the read time at 1 Mbps
  EXPECT_FALSE(channel.file_ready_at("missing", sim.now()));
}

TEST_F(ChannelTest, CommitCountTracks) {
  channel.carousel().put_file("f", util::Bits(800), 1);
  channel.commit();
  channel.commit();
  EXPECT_EQ(channel.commits(), 2u);
}

}  // namespace
}  // namespace oddci::broadcast

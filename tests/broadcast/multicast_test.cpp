#include "broadcast/multicast.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace oddci::broadcast {
namespace {

constexpr auto kMbps = [](double m) { return util::BitRate::from_mbps(m); };

class Recorder final : public BroadcastListener {
 public:
  explicit Recorder(sim::Simulation& sim) : sim_(&sim) {}
  void on_signalling(const Ait& ait,
                     const CarouselSnapshot& snapshot) override {
    events.push_back({sim_->now(), ait.version(), snapshot.generation});
  }
  struct Event {
    sim::SimTime at;
    std::uint32_t ait_version;
    std::uint64_t generation;
  };
  std::vector<Event> events;

 private:
  sim::Simulation* sim_;
};

struct MulticastTest : ::testing::Test {
  sim::Simulation sim;
  MulticastChannel channel{sim, kMbps(1.0), 7};
};

TEST_F(MulticastTest, AcquisitionHasNoPhaseWait) {
  // 1 Mbit file on a 1 Mbps channel with 5% FEC: ~1.05 s + join latency,
  // regardless of when the receiver starts listening — block coding has no
  // carousel phase.
  channel.put_file("image", util::Bits(1'000'000), 1);
  channel.commit();
  for (double at : {0.0, 0.37, 0.91}) {
    const auto t = channel.file_ready_at(
        "image", sim::SimTime::from_seconds(at));
    ASSERT_TRUE(t.has_value());
    const double latency = t->seconds() - at;
    EXPECT_NEAR(latency, 0.15 + 1.05, 0.05) << "listen at " << at;
  }
}

TEST_F(MulticastTest, CapacitySplitsAcrossSessions) {
  channel.put_file("a", util::Bits(1'000'000), 1);
  channel.put_file("b", util::Bits(1'000'000), 2);
  channel.commit();
  // Two sessions at 0.5 Mbps each: ~2.1 s per file.
  const auto t = channel.file_ready_at("a", sim.now());
  EXPECT_NEAR(t->seconds(), 0.15 + 2.1, 0.1);
}

TEST_F(MulticastTest, LossInflatesGracefully) {
  MulticastOptions lossy;
  lossy.block_loss = 0.10;
  MulticastChannel noisy(sim, kMbps(1.0), 8, lossy);
  noisy.put_file("image", util::Bits(1'000'000), 1);
  noisy.commit();
  // 10% loss costs ~1/0.9 = 11% extra, NOT whole extra cycles.
  const auto t = noisy.file_ready_at("image", sim.now());
  EXPECT_NEAR(t->seconds(), 0.15 + 1.05 / 0.9, 0.08);
}

TEST_F(MulticastTest, ListenersNotifiedOnCommitAndLateTune) {
  Recorder early(sim);
  channel.tune(&early);
  channel.put_file("f", util::Bits(800), 1);
  channel.commit();
  sim.run_until(sim::SimTime::from_seconds(1));
  ASSERT_EQ(early.events.size(), 1u);
  EXPECT_LE(early.events[0].at.seconds(), 0.5);

  Recorder late(sim);
  channel.tune(&late);
  sim.run_until(sim::SimTime::from_seconds(2));
  ASSERT_EQ(late.events.size(), 1u);
  EXPECT_EQ(late.events[0].generation, 1u);
}

TEST_F(MulticastTest, UntunedListenerDropped) {
  Recorder r(sim);
  const auto id = channel.tune(&r);
  channel.untune(id);
  channel.put_file("f", util::Bits(800), 1);
  channel.commit();
  sim.run();
  EXPECT_TRUE(r.events.empty());
  EXPECT_EQ(channel.tuned_count(), 0u);
}

TEST_F(MulticastTest, VersionBumpOnReplace) {
  channel.put_file("f", util::Bits(800), 1);
  channel.commit();
  EXPECT_EQ(channel.current().find("f")->version, 1u);
  channel.put_file("f", util::Bits(800), 2);
  channel.commit();
  EXPECT_EQ(channel.current().find("f")->version, 2u);
  EXPECT_TRUE(channel.remove_file("f"));
  channel.commit();
  EXPECT_EQ(channel.current().find("f"), nullptr);
}

TEST_F(MulticastTest, HorizonCoversSlowestFile) {
  channel.put_file("big", util::Bits(8'000'000), 1);
  channel.put_file("small", util::Bits(8'000), 2);
  channel.commit();
  const double horizon = channel.acquisition_horizon_seconds();
  const auto big = channel.acquisition_seconds("big");
  EXPECT_GE(horizon, *big * 1.99);
}

TEST_F(MulticastTest, Validation) {
  EXPECT_THROW(MulticastChannel(sim, util::BitRate(0), 1),
               std::invalid_argument);
  MulticastOptions bad;
  bad.block_loss = 1.0;
  EXPECT_THROW(MulticastChannel(sim, kMbps(1), 1, bad),
               std::invalid_argument);
  bad = MulticastOptions{};
  bad.fec_overhead = -0.1;
  EXPECT_THROW(MulticastChannel(sim, kMbps(1), 1, bad),
               std::invalid_argument);
  EXPECT_THROW(channel.put_file("", util::Bits(8), 1), std::invalid_argument);
  EXPECT_THROW(channel.put_file("f", util::Bits(0), 1),
               std::invalid_argument);
  EXPECT_THROW(channel.tune(nullptr), std::invalid_argument);
  EXPECT_FALSE(channel.file_ready_at("missing", sim.now()));
}

}  // namespace
}  // namespace oddci::broadcast

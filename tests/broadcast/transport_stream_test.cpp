#include "broadcast/transport_stream.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace oddci::broadcast {
namespace {

constexpr auto kMbps = [](double m) { return util::BitRate::from_mbps(m); };

TEST(TransportStream, UnusedIsTotalMinusReserved) {
  TransportStream ts(kMbps(19.0), util::BitRate::from_kbps(100));
  ts.add_stream({0x100, "video", kMbps(12.0)});
  ts.add_stream({0x101, "audio", util::BitRate::from_kbps(256)});
  EXPECT_NEAR(ts.unused().bps(), 19e6 - 12e6 - 256e3 - 100e3, 1.0);
  EXPECT_NEAR(ts.reserved().bps(), 12e6 + 256e3 + 100e3, 1.0);
}

TEST(TransportStream, RejectsOversubscription) {
  TransportStream ts(kMbps(10.0));
  ts.add_stream({1, "video", kMbps(9.0)});
  EXPECT_THROW(ts.add_stream({2, "video", kMbps(2.0)}),
               std::invalid_argument);
  // The failed add must not have been recorded.
  EXPECT_EQ(ts.streams().size(), 1u);
}

TEST(TransportStream, RejectsDuplicatePid) {
  TransportStream ts(kMbps(10.0));
  ts.add_stream({1, "video", kMbps(1.0)});
  EXPECT_THROW(ts.add_stream({1, "audio", kMbps(1.0)}),
               std::invalid_argument);
}

TEST(TransportStream, RemoveStreamFreesCapacity) {
  TransportStream ts(kMbps(10.0));
  ts.add_stream({1, "video", kMbps(8.0)});
  const double before = ts.unused().bps();
  EXPECT_TRUE(ts.remove_stream(1));
  EXPECT_FALSE(ts.remove_stream(1));
  EXPECT_GT(ts.unused().bps(), before);
}

TEST(TransportStream, ConstructorValidation) {
  EXPECT_THROW(TransportStream(util::BitRate(0)), std::invalid_argument);
  EXPECT_THROW(TransportStream(kMbps(1.0), kMbps(1.0)),
               std::invalid_argument);  // signalling >= total
  EXPECT_THROW(TransportStream(kMbps(1.0), util::BitRate(-1.0)),
               std::invalid_argument);
}

TEST(TransportStream, StreamRateValidation) {
  TransportStream ts(kMbps(10.0));
  EXPECT_THROW(ts.add_stream({1, "x", util::BitRate(0)}),
               std::invalid_argument);
}

}  // namespace
}  // namespace oddci::broadcast

// Security semantics of the verify-once fast path. The cache must be a
// pure memoization of broadcast::verify — never an amplifier: a tampered
// payload that shares (or forges) a cached digest still fails, a rotated
// key never reuses a stale verdict, and a unique-message flood cannot grow
// the table past its capacity.

#include "broadcast/verify_cache.hpp"

#include <gtest/gtest.h>

#include <string>

#include "broadcast/signature.hpp"

namespace oddci::broadcast {
namespace {

TEST(VerifyCache, FirstLookupMissesThenHits) {
  VerifyCache cache;
  const SigningKey key = 0xFEEDFACE;
  const std::string content = "wakeup instance 7";
  const Signature sig = sign(key, content);

  EXPECT_TRUE(cache.verify(content, key, sig));
  EXPECT_EQ(cache.misses().value(), 1u);
  EXPECT_EQ(cache.hits().value(), 0u);

  // A population of receivers asking the same question costs no further
  // signature hashes.
  for (int i = 0; i < 99; ++i) {
    EXPECT_TRUE(cache.verify(content, key, sig));
  }
  EXPECT_EQ(cache.misses().value(), 1u);
  EXPECT_EQ(cache.hits().value(), 99u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(VerifyCache, BitFlippedPayloadIsRejected) {
  VerifyCache cache;
  const SigningKey key = 0x1234;
  const std::string content = "control message canonical bytes";
  const Signature sig = sign(key, content);
  ASSERT_TRUE(cache.verify(content, key, sig));

  std::string tampered = content;
  tampered[4] ^= 0x01;
  EXPECT_FALSE(cache.verify(tampered, key, sig));
}

TEST(VerifyCache, ForcedSiblingDigestStillRejectsTamperedBytes) {
  // Adversarial case: a tampered payload presented with the *cached*
  // digest (as if the attacker found a digest collision). The hit path
  // must re-check byte identity, fall through to full verification, and
  // reject — a colliding digest alone can never surface a cached verdict.
  VerifyCache cache;
  const SigningKey key = 0xABCD;
  const std::string content = "authentic payload";
  const Signature sig = sign(key, content);
  const std::uint64_t digest = content_digest(content);
  ASSERT_TRUE(cache.verify(content, digest, key, sig));
  ASSERT_EQ(cache.misses().value(), 1u);

  std::string tampered = content;
  tampered[0] ^= 0x80;
  // Same digest, same key, same claimed signature — different bytes.
  EXPECT_FALSE(cache.verify(tampered, digest, key, sig));
  // It could not have been served from the cache.
  EXPECT_EQ(cache.hits().value(), 0u);
  EXPECT_EQ(cache.misses().value(), 2u);

  // And the authentic entry is still served correctly afterwards.
  EXPECT_TRUE(cache.verify(content, digest, key, sig));
  EXPECT_EQ(cache.hits().value(), 1u);
}

TEST(VerifyCache, KeyRotationInvalidatesPriorVerdicts) {
  VerifyCache cache;
  const SigningKey old_key = 111;
  const SigningKey new_key = 222;
  const std::string content = "signed under the old key";
  const Signature old_sig = sign(old_key, content);

  ASSERT_TRUE(cache.verify(content, old_key, old_sig));
  // Same bytes and signature under a rotated trusted key: the cached
  // positive verdict must not apply.
  EXPECT_FALSE(cache.verify(content, new_key, old_sig));
  // Re-signed under the new key verifies on its own entry.
  EXPECT_TRUE(cache.verify(content, new_key, sign(new_key, content)));
  // The old entry's verdict was never reused for either query.
  EXPECT_EQ(cache.misses().value(), 3u);
}

TEST(VerifyCache, NegativeVerdictsAreMemoizedToo) {
  VerifyCache cache;
  const SigningKey key = 7;
  const std::string content = "forged broadcast";
  const Signature bogus = 0xDEADBEEF;

  EXPECT_FALSE(cache.verify(content, key, bogus));
  EXPECT_FALSE(cache.verify(content, key, bogus));
  // The forgery cost the population one hash, not two.
  EXPECT_EQ(cache.misses().value(), 1u);
  EXPECT_EQ(cache.hits().value(), 1u);
}

TEST(VerifyCache, BoundedUnderUniqueMessageFlood) {
  VerifyCache cache(8);
  const SigningKey key = 42;
  for (int i = 0; i < 10'000; ++i) {
    const std::string content = "unique message " + std::to_string(i);
    EXPECT_TRUE(cache.verify(content, key, sign(key, content)));
    ASSERT_LE(cache.size(), 8u);
  }
  EXPECT_EQ(cache.size(), 8u);
  EXPECT_EQ(cache.capacity(), 8u);
  EXPECT_EQ(cache.misses().value(), 10'000u);
}

TEST(VerifyCache, FifoEvictionDropsOldestEntry) {
  VerifyCache cache(2);
  const SigningKey key = 9;
  const std::string a = "message a";
  const std::string b = "message b";
  const std::string c = "message c";
  ASSERT_TRUE(cache.verify(a, key, sign(key, a)));
  ASSERT_TRUE(cache.verify(b, key, sign(key, b)));
  ASSERT_TRUE(cache.verify(c, key, sign(key, c)));  // evicts a

  EXPECT_TRUE(cache.verify(b, key, sign(key, b)));  // still cached
  EXPECT_EQ(cache.hits().value(), 1u);
  EXPECT_TRUE(cache.verify(a, key, sign(key, a)));  // re-verified
  EXPECT_EQ(cache.misses().value(), 4u);
}

TEST(VerifyCache, ZeroCapacityClampsToOne) {
  VerifyCache cache(0);
  EXPECT_EQ(cache.capacity(), 1u);
  const SigningKey key = 3;
  EXPECT_TRUE(cache.verify("x", key, sign(key, "x")));
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace oddci::broadcast

#include "net/network.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/simulation.hpp"

namespace oddci::net {
namespace {

/// Fixed-size test message.
class TestMessage final : public Message {
 public:
  explicit TestMessage(std::int64_t bits, int id = 0)
      : bits_(bits), id_(id) {}
  [[nodiscard]] util::Bits wire_size() const override {
    return util::Bits(bits_);
  }
  [[nodiscard]] int tag() const override { return 99; }
  [[nodiscard]] int id() const { return id_; }

 private:
  std::int64_t bits_;
  int id_;
};

/// Endpoint that records deliveries with timestamps.
class Recorder final : public Endpoint {
 public:
  explicit Recorder(sim::Simulation& sim) : sim_(&sim) {}
  void on_message(NodeId from, const MessagePtr& message) override {
    deliveries.push_back({from, sim_->now(),
                          static_cast<const TestMessage&>(*message).id()});
  }
  struct Delivery {
    NodeId from;
    sim::SimTime at;
    int id;
  };
  std::vector<Delivery> deliveries;

 private:
  sim::Simulation* sim_;
};

struct NetworkTest : ::testing::Test {
  sim::Simulation sim;
  Network net{sim};
  LinkSpec fast{util::BitRate::from_mbps(100), util::BitRate::from_mbps(100),
                sim::SimTime::zero()};
};

TEST_F(NetworkTest, DeliversWithSerializationAndLatency) {
  Recorder a(sim), b(sim);
  // 1 Mbps uplink, 2 Mbps downlink, 10 ms latency.
  const NodeId na = net.register_endpoint(
      &a, {util::BitRate::from_mbps(1), util::BitRate::from_mbps(2),
           sim::SimTime::from_millis(10)});
  const NodeId nb = net.register_endpoint(
      &b, {util::BitRate::from_mbps(1), util::BitRate::from_mbps(2),
           sim::SimTime::from_millis(10)});

  // 1 Mbit message: 1 s on A's uplink + 10 ms latency + 0.5 s on B's
  // downlink = 1.51 s.
  net.send(na, nb, std::make_shared<TestMessage>(1'000'000));
  sim.run();
  ASSERT_EQ(b.deliveries.size(), 1u);
  EXPECT_EQ(b.deliveries[0].from, na);
  EXPECT_NEAR(b.deliveries[0].at.seconds(), 1.51, 1e-6);
}

TEST_F(NetworkTest, UplinkSerializesFifo) {
  Recorder a(sim), b(sim);
  const NodeId na = net.register_endpoint(
      &a, {util::BitRate::from_mbps(1), util::BitRate::from_mbps(1000),
           sim::SimTime::zero()});
  const NodeId nb = net.register_endpoint(&b, fast);
  // Two 1 Mbit messages sent back-to-back: second departs after the first.
  net.send(na, nb, std::make_shared<TestMessage>(1'000'000, 1));
  net.send(na, nb, std::make_shared<TestMessage>(1'000'000, 2));
  sim.run();
  ASSERT_EQ(b.deliveries.size(), 2u);
  EXPECT_EQ(b.deliveries[0].id, 1);
  EXPECT_EQ(b.deliveries[1].id, 2);
  // 1 s uplink serialization + 1 Mbit / 100 Mbps = 10 ms downlink.
  EXPECT_NEAR(b.deliveries[0].at.seconds(), 1.01, 1e-4);
  EXPECT_NEAR(b.deliveries[1].at.seconds(), 2.01, 1e-4);
}

TEST_F(NetworkTest, DownlinkCongestionFromManySenders) {
  // Ten senders with fast uplinks target one receiver with a slow downlink:
  // deliveries serialize on the receiver side.
  Recorder sink(sim);
  const NodeId ns = net.register_endpoint(
      &sink, {util::BitRate::from_mbps(1000), util::BitRate::from_mbps(1),
              sim::SimTime::zero()});
  std::vector<std::unique_ptr<Recorder>> senders;
  for (int i = 0; i < 10; ++i) {
    senders.push_back(std::make_unique<Recorder>(sim));
    const NodeId id = net.register_endpoint(senders.back().get(), fast);
    net.send(id, ns, std::make_shared<TestMessage>(1'000'000, i));
  }
  sim.run();
  ASSERT_EQ(sink.deliveries.size(), 10u);
  // Last delivery completes at ~10 s (10 x 1 s of downlink serialization).
  EXPECT_NEAR(sink.deliveries.back().at.seconds(), 10.0, 0.1);
}

TEST_F(NetworkTest, DetachedEndpointDropsMessages) {
  Recorder a(sim), b(sim);
  const NodeId na = net.register_endpoint(&a, fast);
  const NodeId nb = net.register_endpoint(&b, fast);
  net.send(na, nb, std::make_shared<TestMessage>(8));
  net.unregister_endpoint(nb);
  sim.run();
  EXPECT_TRUE(b.deliveries.empty());
  EXPECT_EQ(net.stats().messages_dropped, 1u);
  EXPECT_FALSE(net.attached(nb));
}

TEST_F(NetworkTest, ReattachRestoresDelivery) {
  Recorder a(sim), b(sim);
  const NodeId na = net.register_endpoint(&a, fast);
  const NodeId nb = net.register_endpoint(&b, fast);
  net.unregister_endpoint(nb);
  net.reattach_endpoint(nb, &b);
  net.send(na, nb, std::make_shared<TestMessage>(8));
  sim.run();
  EXPECT_EQ(b.deliveries.size(), 1u);
  EXPECT_TRUE(net.attached(nb));
}

TEST_F(NetworkTest, StatsCountBits) {
  Recorder a(sim), b(sim);
  const NodeId na = net.register_endpoint(&a, fast);
  const NodeId nb = net.register_endpoint(&b, fast);
  net.send(na, nb, std::make_shared<TestMessage>(100));
  net.send(na, nb, std::make_shared<TestMessage>(28));
  sim.run();
  EXPECT_EQ(net.stats().messages_sent, 2u);
  EXPECT_EQ(net.stats().messages_delivered, 2u);
  EXPECT_EQ(net.stats().bits_sent, 128);
}

TEST_F(NetworkTest, ValidatesArguments) {
  Recorder a(sim);
  EXPECT_THROW(net.register_endpoint(nullptr, fast), std::invalid_argument);
  EXPECT_THROW(net.register_endpoint(
                   &a, {util::BitRate(0), util::BitRate(1), sim::SimTime()}),
               std::invalid_argument);
  EXPECT_THROW(
      net.register_endpoint(
          &a, {util::BitRate(1), util::BitRate(1),
               sim::SimTime::from_seconds(-1)}),
      std::invalid_argument);
  const NodeId na = net.register_endpoint(&a, fast);
  EXPECT_THROW(net.send(na, 999, std::make_shared<TestMessage>(8)),
               std::out_of_range);
  EXPECT_THROW(net.send(na, na, nullptr), std::invalid_argument);
  EXPECT_THROW(net.unregister_endpoint(999), std::out_of_range);
}

TEST_F(NetworkTest, SelfSendWorks) {
  Recorder a(sim);
  const NodeId na = net.register_endpoint(&a, fast);
  net.send(na, na, std::make_shared<TestMessage>(8));
  sim.run();
  EXPECT_EQ(a.deliveries.size(), 1u);
}

}  // namespace
}  // namespace oddci::net

// Randomized invariants of the direct-channel network:
//  * conservation — every message is delivered exactly once (no detached
//    endpoints in this test);
//  * per-pair FIFO — two messages A -> B are delivered in send order;
//  * physics — no delivery earlier than serialization + propagation allows.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace oddci::net {
namespace {

class SeqMessage final : public Message {
 public:
  SeqMessage(std::int64_t bits, std::uint64_t seq) : bits_(bits), seq_(seq) {}
  [[nodiscard]] util::Bits wire_size() const override {
    return util::Bits(bits_);
  }
  [[nodiscard]] int tag() const override { return 1; }
  [[nodiscard]] std::uint64_t seq() const { return seq_; }

 private:
  std::int64_t bits_;
  std::uint64_t seq_;
};

class SeqSink final : public Endpoint {
 public:
  explicit SeqSink(sim::Simulation& sim) : sim_(&sim) {}
  void on_message(NodeId from, const MessagePtr& message) override {
    const auto& m = static_cast<const SeqMessage&>(*message);
    received.push_back({from, m.seq(), sim_->now()});
  }
  struct Rx {
    NodeId from;
    std::uint64_t seq;
    sim::SimTime at;
  };
  std::vector<Rx> received;

 private:
  sim::Simulation* sim_;
};

class NetworkPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkPropertyTest, ConservationFifoAndPhysics) {
  util::Random rng(GetParam());
  sim::Simulation sim;
  Network net(sim);

  constexpr std::size_t kNodes = 6;
  std::vector<std::unique_ptr<SeqSink>> sinks;
  std::vector<NodeId> ids;
  std::vector<LinkSpec> specs;
  for (std::size_t i = 0; i < kNodes; ++i) {
    sinks.push_back(std::make_unique<SeqSink>(sim));
    LinkSpec spec{util::BitRate::from_kbps(rng.uniform(100.0, 2000.0)),
                  util::BitRate::from_kbps(rng.uniform(100.0, 2000.0)),
                  sim::SimTime::from_millis(
                      static_cast<std::int64_t>(rng.uniform_u64(80)))};
    specs.push_back(spec);
    ids.push_back(net.register_endpoint(sinks.back().get(), spec));
  }

  // Random traffic, recorded per (src, dst) pair with send time.
  struct Sent {
    std::uint64_t seq;
    sim::SimTime sent_at;
    std::int64_t bits;
  };
  std::map<std::pair<NodeId, NodeId>, std::vector<Sent>> sent;
  std::uint64_t next_seq = 0;
  const int rounds = 120;
  for (int r = 0; r < rounds; ++r) {
    sim.run_until(sim.now() + sim::SimTime::from_millis(
                                  static_cast<std::int64_t>(
                                      rng.uniform_u64(30))));
    const NodeId src = ids[rng.uniform_u64(kNodes)];
    NodeId dst = ids[rng.uniform_u64(kNodes)];
    const auto bits =
        static_cast<std::int64_t>(1 + rng.uniform_u64(200'000));
    const std::uint64_t seq = next_seq++;
    sent[{src, dst}].push_back({seq, sim.now(), bits});
    net.send(src, dst, std::make_shared<SeqMessage>(bits, seq));
  }
  sim.run();

  // Conservation.
  std::size_t delivered = 0;
  for (const auto& sink : sinks) delivered += sink->received.size();
  EXPECT_EQ(delivered, static_cast<std::size_t>(rounds));
  EXPECT_EQ(net.stats().messages_delivered, static_cast<std::uint64_t>(rounds));
  EXPECT_EQ(net.stats().messages_dropped, 0u);

  // FIFO per (src, dst) + physics lower bound per message.
  for (std::size_t d = 0; d < kNodes; ++d) {
    std::map<NodeId, std::uint64_t> last_seq_from;
    for (const auto& rx : sinks[d]->received) {
      auto it = last_seq_from.find(rx.from);
      if (it != last_seq_from.end()) {
        EXPECT_LT(it->second, rx.seq)
            << "FIFO violated from " << rx.from << " to " << ids[d];
      }
      last_seq_from[rx.from] = rx.seq;

      // Find the send record.
      const auto& history = sent[{rx.from, ids[d]}];
      const auto sent_it =
          std::find_if(history.begin(), history.end(),
                       [&](const Sent& s) { return s.seq == rx.seq; });
      ASSERT_NE(sent_it, history.end());
      const std::size_t src_index =
          std::find(ids.begin(), ids.end(), rx.from) - ids.begin();
      const double min_latency =
          static_cast<double>(sent_it->bits) / specs[src_index].uplink.bps() +
          specs[src_index].latency.seconds() +
          static_cast<double>(sent_it->bits) / specs[d].downlink.bps();
      // SimTime quantizes to whole microseconds (up to 3 rounding steps).
      EXPECT_GE((rx.at - sent_it->sent_at).seconds() + 4e-6, min_latency);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace oddci::net

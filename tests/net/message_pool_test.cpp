// MessagePool recycling semantics: an exclusively-held slot is reused in
// place (same object, same control block), anything still referenced is
// left alone, and a full ring degrades to plain allocation — correctness
// never depends on consumers releasing promptly.

#include "net/message_pool.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/messages.hpp"

namespace oddci::net {
namespace {

using oddci::core::HeartbeatMessage;
using oddci::core::PnaState;

TEST(MessagePool, RecyclesExclusivelyHeldSlot) {
  MessagePool<HeartbeatMessage> pool(4);
  const HeartbeatMessage* raw = nullptr;
  {
    auto first = pool.acquire(1u, PnaState::kIdle, 0u);
    raw = first.get();
  }  // dropped: the pool holds the only reference
  // Cursor walks the ring; after a full lap the released slot is reused.
  for (int i = 0; i < 3; ++i) (void)pool.acquire(9u, PnaState::kIdle, 0u);
  auto again = pool.acquire(2u, PnaState::kBusy, 7u);
  EXPECT_EQ(again.get(), raw);  // same object, no new allocation
  EXPECT_EQ(again->pna_id(), 2u);
  EXPECT_EQ(again->state(), PnaState::kBusy);
  EXPECT_EQ(again->instance(), 7u);
  EXPECT_EQ(pool.reused().value(), 1u);
  EXPECT_EQ(pool.allocated().value(), 4u);
}

TEST(MessagePool, InFlightMessagesAreNeverRecycled) {
  MessagePool<HeartbeatMessage> pool(2);
  auto a = pool.acquire(1u, PnaState::kIdle, 0u);
  auto b = pool.acquire(2u, PnaState::kIdle, 0u);
  // Both slots are still referenced: the next acquire must not touch them.
  auto c = pool.acquire(3u, PnaState::kBusy, 5u);
  EXPECT_NE(c.get(), a.get());
  EXPECT_NE(c.get(), b.get());
  EXPECT_EQ(a->pna_id(), 1u);  // untouched
  EXPECT_EQ(b->pna_id(), 2u);
  EXPECT_EQ(pool.reused().value(), 0u);
  EXPECT_EQ(pool.allocated().value(), 3u);
}

TEST(MessagePool, PooledBytesCountWireBytesServedFromSlots) {
  MessagePool<HeartbeatMessage> pool(1);
  const auto beat_bytes = static_cast<std::uint64_t>(
      oddci::core::kHeaderBits.count() / 8);
  {
    auto m = pool.acquire(1u, PnaState::kIdle, 0u);
    EXPECT_EQ(pool.pooled_bytes().value(), beat_bytes);
  }
  {
    auto m = pool.acquire(2u, PnaState::kIdle, 0u);  // recycled
    EXPECT_EQ(pool.pooled_bytes().value(), 2 * beat_bytes);

    // Off-ring fallback while the slot is busy: not pooled, not counted.
    auto overflow = pool.acquire(3u, PnaState::kIdle, 0u);
    EXPECT_EQ(pool.pooled_bytes().value(), 2 * beat_bytes);
  }
  EXPECT_EQ(pool.reused().value(), 1u);
  EXPECT_EQ(pool.allocated().value(), 2u);
}

TEST(MessagePool, LinkMetricsExposesPrefixedCounters) {
  MessagePool<HeartbeatMessage> pool(2);
  obs::MetricsRegistry registry;
  pool.link_metrics(registry, "heartbeat");
  { auto m = pool.acquire(1u, PnaState::kIdle, 0u); }
  { auto m = pool.acquire(2u, PnaState::kIdle, 0u); }

  const auto snap = registry.snapshot(0.0);
  EXPECT_EQ(snap.counter_value("heartbeat.pool_allocated"), 2u);
  EXPECT_EQ(snap.counter_value("heartbeat.pool_reused"), 0u);
  EXPECT_GT(snap.counter_value("heartbeat.pooled_bytes"), 0u);
}

}  // namespace
}  // namespace oddci::net

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

namespace oddci::util {
namespace {

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(123), b(123), c(124);
  EXPECT_EQ(a.next(), b.next());
  SplitMix64 a2(123);
  EXPECT_NE(a2.next(), c.next());
}

TEST(Xoshiro256, Reproducible) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro256, JumpDecorrelates) {
  Xoshiro256 a(42), b(42);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Random, UniformInUnitInterval) {
  Random rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Random, UniformMeanConverges) {
  Random rng(2);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Random, UniformRange) {
  Random rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 7.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.0);
  }
}

TEST(Random, UniformU64BoundsRespected) {
  Random rng(4);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_u64(13), 13u);
  }
  EXPECT_THROW(rng.uniform_u64(0), std::invalid_argument);
}

TEST(Random, UniformU64CoversAllResidues) {
  Random rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Random, BernoulliEdgeCases) {
  Random rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Random, BernoulliFrequency) {
  Random rng(7);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Random, ExponentialMeanAndPositivity) {
  Random rng(8);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(5.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Random, WeibullShapeOneIsExponential) {
  Random rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.weibull(1.0, 2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
  EXPECT_THROW(rng.weibull(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.weibull(1.0, 0.0), std::invalid_argument);
}

TEST(Random, ParetoMinimumRespected) {
  Random rng(10);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 3.0), 3.0);
  }
  EXPECT_THROW(rng.pareto(0.0, 1.0), std::invalid_argument);
}

TEST(Random, ParetoMeanForAlphaAboveOne) {
  Random rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.pareto(3.0, 1.0);
  // mean = alpha*xm/(alpha-1) = 1.5
  EXPECT_NEAR(sum / n, 1.5, 0.05);
}

TEST(Random, NormalMoments) {
  Random rng(12);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Random, LognormalMedian) {
  Random rng(13);
  std::vector<double> xs;
  const int n = 50001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(rng.lognormal(std::log(4.0), 0.5));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 4.0, 0.2);
}

TEST(Random, SplitProducesIndependentStreams) {
  Random parent(14);
  Random child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.uniform() == child.uniform()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace oddci::util

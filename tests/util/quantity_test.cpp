#include "util/quantity.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace oddci::util {
namespace {

TEST(Bits, ConversionsRoundTrip) {
  const Bits b = Bits::from_megabytes(10);
  EXPECT_EQ(b.count(), 10LL * 1024 * 1024 * 8);
  EXPECT_DOUBLE_EQ(b.megabytes(), 10.0);
  EXPECT_DOUBLE_EQ(b.kilobytes(), 10.0 * 1024.0);
  EXPECT_DOUBLE_EQ(b.bytes(), 10.0 * 1024.0 * 1024.0);
}

TEST(Bits, FromBytesAndKilobytes) {
  EXPECT_EQ(Bits::from_bytes(1).count(), 8);
  EXPECT_EQ(Bits::from_kilobytes(1).count(), 8192);
}

TEST(Bits, Arithmetic) {
  const Bits a = Bits::from_bytes(100);
  const Bits b = Bits::from_bytes(28);
  EXPECT_EQ((a + b).count(), 128 * 8);
  EXPECT_EQ((a - b).count(), 72 * 8);
  EXPECT_EQ((a * 3).count(), 300 * 8);
  EXPECT_EQ((3 * a).count(), 300 * 8);
  Bits c = a;
  c += b;
  EXPECT_EQ(c, a + b);
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(Bits, Ordering) {
  EXPECT_LT(Bits(7), Bits(8));
  EXPECT_EQ(Bits(8), Bits::from_bytes(1));
  EXPECT_GT(Bits::from_megabytes(1), Bits::from_kilobytes(1023));
}

TEST(BitRate, Conversions) {
  const BitRate r = BitRate::from_mbps(1.5);
  EXPECT_DOUBLE_EQ(r.bps(), 1.5e6);
  EXPECT_DOUBLE_EQ(r.kbps(), 1500.0);
  EXPECT_DOUBLE_EQ(r.mbps(), 1.5);
  EXPECT_DOUBLE_EQ(BitRate::from_kbps(150).bps(), 150e3);
}

TEST(BitRate, Arithmetic) {
  const BitRate a = BitRate::from_mbps(2.0);
  const BitRate b = BitRate::from_mbps(0.5);
  EXPECT_DOUBLE_EQ((a + b).mbps(), 2.5);
  EXPECT_DOUBLE_EQ((a - b).mbps(), 1.5);
  EXPECT_DOUBLE_EQ((a * 2.0).mbps(), 4.0);
}

TEST(TransmissionSeconds, PaperWakeupNumbers) {
  // Section 5.1: an 8 MB image at beta = 1 Mbps: I/beta ~ 67.1 s, so the
  // paper's "less than 64 seconds" refers to a decimal-MB reading; our
  // binary MB gives 8 * 2^20 * 8 / 1e6.
  const double s =
      transmission_seconds(Bits::from_megabytes(8), BitRate::from_mbps(1.0));
  EXPECT_NEAR(s, 67.1, 0.1);
}

TEST(TransmissionSeconds, RejectsNonPositiveRate) {
  EXPECT_THROW(transmission_seconds(Bits(8), BitRate(0.0)),
               std::invalid_argument);
  EXPECT_THROW(transmission_seconds(Bits(8), BitRate(-1.0)),
               std::invalid_argument);
}

TEST(TransmissionSeconds, RejectsNegativeData) {
  EXPECT_THROW(transmission_seconds(Bits(-1), BitRate(1.0)),
               std::invalid_argument);
}

TEST(TransmissionSeconds, ZeroDataIsInstant) {
  EXPECT_DOUBLE_EQ(transmission_seconds(Bits(0), BitRate(1e6)), 0.0);
}

TEST(Quantity, ToStringPicksUnits) {
  EXPECT_NE(Bits::from_megabytes(2).to_string().find("MB"),
            std::string::npos);
  EXPECT_NE(Bits::from_kilobytes(2).to_string().find("KB"),
            std::string::npos);
  EXPECT_NE(Bits(12).to_string().find("bits"), std::string::npos);
  EXPECT_NE(BitRate::from_mbps(2).to_string().find("Mbps"),
            std::string::npos);
  EXPECT_NE(BitRate::from_kbps(2).to_string().find("Kbps"),
            std::string::npos);
  EXPECT_NE(BitRate(12).to_string().find("bps"), std::string::npos);
}

}  // namespace
}  // namespace oddci::util

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace oddci::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.confidence_halfwidth(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Random rng(1);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, ConfidenceShrinksWithSamples) {
  Random rng(2);
  RunningStats small, big;
  for (int i = 0; i < 10; ++i) small.add(rng.normal(0, 1));
  for (int i = 0; i < 1000; ++i) big.add(rng.normal(0, 1));
  EXPECT_GT(small.confidence_halfwidth(0.90), big.confidence_halfwidth(0.90));
  EXPECT_LT(big.confidence_halfwidth(0.90), big.confidence_halfwidth(0.99));
}

TEST(Samples, PercentilesOnKnownData) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(25), 25.75, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(Samples, PercentileValidation) {
  Samples s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), std::invalid_argument);
  EXPECT_THROW(s.percentile(101), std::invalid_argument);
  EXPECT_DOUBLE_EQ(s.percentile(50), 1.0);  // single element
}

TEST(Samples, EmptyReturnsZero) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(Samples, AddAfterPercentileStillSorted) {
  Samples s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Samples, MeanAndStddev) {
  Samples s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Histogram, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);    // bucket 0
  h.add(9.999);  // bucket 9
  h.add(5.0);    // bucket 5
  h.add(-0.1);   // underflow
  h.add(10.0);   // overflow (hi is exclusive)
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(5), 6.0);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
}

}  // namespace
}  // namespace oddci::util

#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace oddci::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsAlign) {
  Table t({"a", "long-header"});
  t.add_row({"xxxxxxxx", "y"});
  std::istringstream lines(t.render());
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) {
      width = line.size();
    } else {
      EXPECT_EQ(line.size(), width);
    }
  }
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.0, 0), "3");
  EXPECT_EQ(Table::fmt_int(-42), "-42");
}

TEST(Table, PrintWritesToStream) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.render());
}

}  // namespace
}  // namespace oddci::util

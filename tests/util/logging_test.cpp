#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace oddci::util {
namespace {

/// Restores the global logger on scope exit so tests cannot leak a sink,
/// clock or level into each other.
class LoggerGuard {
 public:
  LoggerGuard() : previous_level_(Logger::instance().level()) {}
  ~LoggerGuard() {
    Logger::instance().clear_sink();
    Logger::instance().clear_clock();
    Logger::instance().set_level(previous_level_);
  }

 private:
  LogLevel previous_level_;
};

TEST(Logger, SinkReceivesFormattedLines) {
  LoggerGuard guard;
  std::vector<std::string> lines;
  std::vector<LogLevel> levels;
  Logger::instance().set_level(LogLevel::kTrace);
  Logger::instance().set_sink([&](LogLevel level, const std::string& line) {
    levels.push_back(level);
    lines.push_back(line);
  });

  ODDCI_LOG_TRACE("controller") << "wakeup broadcast";
  ODDCI_LOG_INFO("provider") << "instance " << 3 << " ready";

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(levels[0], LogLevel::kTrace);
  EXPECT_EQ(lines[0], "[TRACE] controller: wakeup broadcast");
  EXPECT_EQ(levels[1], LogLevel::kInfo);
  EXPECT_EQ(lines[1], "[INFO] provider: instance 3 ready");
}

TEST(Logger, ClockStampsLinesWithSimTime) {
  LoggerGuard guard;
  std::vector<std::string> lines;
  double now = 12.5;
  Logger::instance().set_level(LogLevel::kTrace);
  Logger::instance().set_sink(
      [&](LogLevel, const std::string& line) { lines.push_back(line); });
  Logger::instance().set_clock([&now] { return now; });

  ODDCI_LOG_TRACE("pna") << "heartbeat";
  now = 99.000001;
  ODDCI_LOG_TRACE("pna") << "heartbeat";

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "[TRACE] t=12.500000 pna: heartbeat");
  EXPECT_EQ(lines[1], "[TRACE] t=99.000001 pna: heartbeat");

  // Removing the clock removes the stamp.
  Logger::instance().clear_clock();
  ODDCI_LOG_TRACE("pna") << "heartbeat";
  EXPECT_EQ(lines.back(), "[TRACE] pna: heartbeat");
}

TEST(Logger, LevelFilterAppliesBeforeTheSink) {
  LoggerGuard guard;
  std::size_t calls = 0;
  Logger::instance().set_level(LogLevel::kWarn);
  Logger::instance().set_sink(
      [&](LogLevel, const std::string&) { ++calls; });

  ODDCI_LOG_TRACE("x") << "suppressed";
  ODDCI_LOG_INFO("x") << "suppressed";
  ODDCI_LOG(LogLevel::kError, "x") << "kept";

  EXPECT_EQ(calls, 1u);
}

}  // namespace
}  // namespace oddci::util

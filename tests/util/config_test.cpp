#include "util/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace oddci::util {
namespace {

TEST(Config, ParsesKeyValues) {
  const Config c = Config::parse("a = 1\nb=hello\n c  =  2.5 \n");
  EXPECT_EQ(c.get_int("a", 0), 1);
  EXPECT_EQ(c.get_string("b", ""), "hello");
  EXPECT_DOUBLE_EQ(c.get_double("c", 0.0), 2.5);
}

TEST(Config, CommentsAndBlankLines) {
  const Config c = Config::parse("# full comment\n\nx = 3 # trailing\n");
  EXPECT_EQ(c.get_int("x", 0), 3);
  EXPECT_FALSE(c.contains("#"));
}

TEST(Config, FallbacksWhenMissing) {
  const Config c = Config::parse("");
  EXPECT_EQ(c.get_int("missing", 42), 42);
  EXPECT_EQ(c.get_string("missing", "d"), "d");
  EXPECT_DOUBLE_EQ(c.get_double("missing", 1.5), 1.5);
  EXPECT_TRUE(c.get_bool("missing", true));
  EXPECT_FALSE(c.get("missing").has_value());
}

TEST(Config, BoolParsing) {
  const Config c = Config::parse(
      "t1=true\nt2=1\nt3=YES\nt4=On\nf1=false\nf2=0\nf3=no\nf4=OFF\nbad=maybe");
  EXPECT_TRUE(c.get_bool("t1", false));
  EXPECT_TRUE(c.get_bool("t2", false));
  EXPECT_TRUE(c.get_bool("t3", false));
  EXPECT_TRUE(c.get_bool("t4", false));
  EXPECT_FALSE(c.get_bool("f1", true));
  EXPECT_FALSE(c.get_bool("f2", true));
  EXPECT_FALSE(c.get_bool("f3", true));
  EXPECT_FALSE(c.get_bool("f4", true));
  EXPECT_THROW(c.get_bool("bad", true), std::runtime_error);
}

TEST(Config, MalformedLinesThrow) {
  EXPECT_THROW(Config::parse("novalue\n"), std::runtime_error);
  EXPECT_THROW(Config::parse("= empty key\n"), std::runtime_error);
}

TEST(Config, NonNumericValuesNameTheKey) {
  const Config c = Config::parse("n = abc\nx = 1.5extra\n");
  try {
    c.get_int("n", 0);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("'abc'"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("key n"), std::string::npos);
  }
  EXPECT_THROW(c.get_double("x", 0.0), std::runtime_error);
}

TEST(Config, SetOverrides) {
  Config c = Config::parse("k=1");
  c.set("k", "2");
  EXPECT_EQ(c.get_int("k", 0), 2);
}

TEST(Config, LoadFromFile) {
  const std::string path = ::testing::TempDir() + "/oddci_config_test.cfg";
  {
    std::ofstream f(path);
    f << "receivers = 123\n";
  }
  const Config c = Config::load(path);
  EXPECT_EQ(c.get_int("receivers", 0), 123);
  std::remove(path.c_str());
  EXPECT_THROW(Config::load(path), std::runtime_error);
}

}  // namespace
}  // namespace oddci::util

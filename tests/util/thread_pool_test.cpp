#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace oddci::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ResultsAggregateCorrectly) {
  ThreadPool pool(4);
  std::vector<std::future<long>> futures;
  for (long i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  long sum = 0;
  for (auto& f : futures) sum += f.get();
  long expected = 0;
  for (long i = 0; i < 50; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPool, DefaultSizeUsesHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace oddci::util

#include "workload/blast.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/sequence.hpp"

namespace oddci::workload {
namespace {

BlastParams small_params() {
  BlastParams p;
  p.word_size = 8;
  p.gapped_trigger = 20;
  p.min_report_score = 24;
  return p;
}

TEST(BlastDatabase, IndexesAllWords) {
  BlastDatabase db({"ACGTACGTACGT"}, 8);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.total_residues(), 12u);
  // 12 - 8 + 1 = 5 word positions.
  const auto key = BlastDatabase::pack_word("ACGTACGT", 0, 8);
  const auto* postings = db.lookup(key);
  ASSERT_NE(postings, nullptr);
  // "ACGTACGT" occurs at positions 0 and 4.
  EXPECT_EQ(postings->size(), 2u);
}

TEST(BlastDatabase, PackWordIsInjectiveOnDifferentWords) {
  EXPECT_NE(BlastDatabase::pack_word("AAAAAAAA", 0, 8),
            BlastDatabase::pack_word("AAAAAAAC", 0, 8));
  EXPECT_EQ(BlastDatabase::pack_word("GATTACAA", 0, 8),
            BlastDatabase::pack_word("GATTACAA", 0, 8));
}

TEST(BlastDatabase, Validation) {
  EXPECT_THROW(BlastDatabase({}, 8), std::invalid_argument);
  EXPECT_THROW(BlastDatabase({"ACGT"}, 3), std::invalid_argument);
  EXPECT_THROW(BlastDatabase({"ACGT"}, 32), std::invalid_argument);
  EXPECT_THROW(BlastDatabase({"ACGN"}, 4), std::invalid_argument);
  // A sequence shorter than the word size indexes nothing but is kept.
  BlastDatabase db({"ACG", "ACGTACGTAC"}, 8);
  EXPECT_EQ(db.size(), 2u);
}

TEST(BlastSearch, FindsPlantedHomolog) {
  SequenceGenerator gen(21);
  const std::string query = gen.random_dna(300);
  std::vector<std::string> db;
  for (int i = 0; i < 30; ++i) db.push_back(gen.random_dna(500));
  // Plant a mutated copy of the query inside subject 17.
  db[17] = gen.random_dna(100) + gen.mutate(query, 0.05, 0.005) +
           gen.random_dna(100);

  BlastDatabase database(db, 8);
  const auto result = blast_search(query, database, small_params());
  ASSERT_FALSE(result.hits.empty());
  EXPECT_EQ(result.hits[0].subject, 17u);
  EXPECT_GT(result.hits[0].score, 100);
  EXPECT_LT(result.hits[0].evalue, 1e-10);
  EXPECT_GT(result.stats.seed_hits, 0u);
  EXPECT_GT(result.stats.cells, 0u);
}

TEST(BlastSearch, NoHitsInUnrelatedDatabase) {
  SequenceGenerator gen(22);
  // Low-complexity query vs unrelated random db with a strict threshold.
  const std::string query = gen.random_dna(100);
  BlastDatabase database(gen.random_database(10, 200, 300), 12);
  BlastParams p;
  p.word_size = 12;
  p.min_report_score = 60;
  const auto result = blast_search(query, database, p);
  EXPECT_TRUE(result.hits.empty());
}

TEST(BlastSearch, HitsSortedByScoreAndCapped) {
  SequenceGenerator gen(23);
  const std::string query = gen.random_dna(200);
  std::vector<std::string> db;
  // Plant copies of varying quality.
  db.push_back(gen.mutate(query, 0.20, 0.0));
  db.push_back(gen.mutate(query, 0.02, 0.0));
  db.push_back(gen.mutate(query, 0.10, 0.0));
  db.push_back(gen.random_dna(200));
  BlastDatabase database(db, 8);
  BlastParams p = small_params();
  const auto result = blast_search(query, database, p);
  ASSERT_GE(result.hits.size(), 2u);
  for (std::size_t i = 1; i < result.hits.size(); ++i) {
    EXPECT_GE(result.hits[i - 1].score, result.hits[i].score);
  }
  EXPECT_EQ(result.hits[0].subject, 1u);  // the 2% copy scores best

  p.max_hits = 1;
  const auto capped = blast_search(query, database, p);
  EXPECT_EQ(capped.hits.size(), 1u);
}

TEST(BlastSearch, OneHitPerSubject) {
  SequenceGenerator gen(24);
  const std::string query = gen.random_dna(150);
  // Subject contains the query twice: still one (best) hit reported.
  const std::string subject =
      query + gen.random_dna(50) + gen.mutate(query, 0.05, 0.0);
  BlastDatabase database({subject}, 8);
  const auto result = blast_search(query, database, small_params());
  EXPECT_EQ(result.hits.size(), 1u);
}

TEST(BlastSearch, Validation) {
  BlastDatabase database({"ACGTACGTACGTACGT"}, 8);
  BlastParams p = small_params();
  EXPECT_THROW(blast_search("ACGT", database, p), std::invalid_argument);
  EXPECT_THROW(blast_search("ACGNACGTACGT", database, p),
               std::invalid_argument);
  p.word_size = 11;  // mismatch with database index
  EXPECT_THROW(blast_search("ACGTACGTACGTACGT", database, p),
               std::invalid_argument);
  p = small_params();
  p.max_hits = 0;
  EXPECT_THROW(blast_search("ACGTACGTACGTACGT", database, p),
               std::invalid_argument);
}

TEST(BlastSignificance, BitScoreMonotone) {
  EXPECT_GT(bit_score(100), bit_score(50));
  EXPECT_GT(bit_score(50), 0.0);
}

TEST(BlastSignificance, EvalueScalesWithSearchSpace) {
  const double small = expect_value(60, 100, 10'000);
  const double big = expect_value(60, 100, 1'000'000);
  EXPECT_NEAR(big / small, 100.0, 1e-6);
  EXPECT_GT(expect_value(30, 100, 10'000), expect_value(60, 100, 10'000));
}

TEST(BlastSearch, DiagonalDedupLimitsExtensions) {
  // A repetitive query over a repetitive subject generates many seed hits
  // on the same diagonal; the per-diagonal extent check must collapse them.
  const std::string rep(200, 'A');
  BlastDatabase database({rep}, 8);
  const auto result = blast_search(rep, database, small_params());
  EXPECT_GT(result.stats.seed_hits, 10000u);
  // Without dedup every seed would extend: extensions << seed hits.
  EXPECT_LT(result.stats.ungapped_extensions, result.stats.seed_hits / 10);
}

}  // namespace
}  // namespace oddci::workload

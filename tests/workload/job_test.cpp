#include "workload/job.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace oddci::workload {
namespace {

TEST(Job, UniformJobAverages) {
  const Job job = make_uniform_job("j", util::Bits::from_megabytes(1), 100,
                                   util::Bits::from_bytes(512),
                                   util::Bits::from_bytes(256), 30.0);
  EXPECT_EQ(job.task_count(), 100u);
  EXPECT_DOUBLE_EQ(job.avg_input_bits(), 512 * 8.0);
  EXPECT_DOUBLE_EQ(job.avg_result_bits(), 256 * 8.0);
  EXPECT_DOUBLE_EQ(job.avg_reference_seconds(), 30.0);
  EXPECT_DOUBLE_EQ(job.total_reference_seconds(), 3000.0);
}

TEST(Job, ValidationCatchesNonsense) {
  Job job = make_uniform_job("j", util::Bits(8), 1, util::Bits(0),
                             util::Bits(0), 1.0);
  job.tasks.clear();
  EXPECT_THROW(job.validate(), std::invalid_argument);

  job = make_uniform_job("j", util::Bits(8), 1, util::Bits(0), util::Bits(0),
                         1.0);
  job.image_size = util::Bits(0);
  EXPECT_THROW(job.validate(), std::invalid_argument);

  job = make_uniform_job("j", util::Bits(8), 1, util::Bits(0), util::Bits(0),
                         1.0);
  job.tasks[0].reference_seconds = 0.0;
  EXPECT_THROW(job.validate(), std::invalid_argument);

  job = make_uniform_job("j", util::Bits(8), 1, util::Bits(0), util::Bits(0),
                         1.0);
  job.tasks[0].input_size = util::Bits(-8);
  EXPECT_THROW(job.validate(), std::invalid_argument);
}

TEST(Job, SuitabilityMatchesDefinition) {
  const auto delta = util::BitRate::from_kbps(150);
  const Job job = make_uniform_job("j", util::Bits(8), 10,
                                   util::Bits::from_bytes(512),
                                   util::Bits::from_bytes(512), 0.0546);
  // Phi = delta * p / (s + r) = 150000 * 0.0546 / 8192 ~ 1.0
  EXPECT_NEAR(suitability(job, delta), 150e3 * 0.0546 / 8192.0, 1e-9);
  EXPECT_THROW(suitability(job, util::BitRate(0)), std::invalid_argument);
}

TEST(Job, ParametricJobIsInfinitelySuitable) {
  const Job job = make_uniform_job("param", util::Bits(8), 10, util::Bits(0),
                                   util::Bits(0), 1.0);
  EXPECT_TRUE(std::isinf(suitability(job, util::BitRate::from_kbps(150))));
}

TEST(Job, SuitabilityInversionRoundTrips) {
  const auto delta = util::BitRate::from_kbps(150);
  const auto payload = util::Bits::from_kilobytes(1);
  for (double phi : {1.0, 10.0, 100.0, 1000.0, 100000.0}) {
    const Job job = make_job_for_suitability("j", util::Bits(80), 10, payload,
                                             delta, phi);
    EXPECT_NEAR(suitability(job, delta), phi, phi * 1e-9);
  }
  EXPECT_THROW(make_job_for_suitability("j", util::Bits(80), 10, payload,
                                        delta, 0.0),
               std::invalid_argument);
  EXPECT_THROW(make_job_for_suitability("j", util::Bits(80), 10,
                                        util::Bits(0), delta, 1.0),
               std::invalid_argument);
}

TEST(Job, PayloadSplitPreservesTotal) {
  const Job job = make_job_for_suitability(
      "j", util::Bits(80), 5, util::Bits(8193),  // odd bit count
      util::BitRate::from_kbps(150), 10.0);
  EXPECT_EQ(job.tasks[0].input_size.count() +
                job.tasks[0].result_size.count(),
            8193);
}

TEST(Job, LognormalJobMedianApproximatesTarget) {
  util::Random rng(31);
  const Job job = make_lognormal_job("j", util::Bits(80), 20001,
                                     util::Bits(8), util::Bits(8), 10.0, 0.5,
                                     rng);
  std::vector<double> ps;
  ps.reserve(job.tasks.size());
  for (const auto& t : job.tasks) ps.push_back(t.reference_seconds);
  std::nth_element(ps.begin(), ps.begin() + ps.size() / 2, ps.end());
  EXPECT_NEAR(ps[ps.size() / 2], 10.0, 0.5);
  EXPECT_THROW(make_lognormal_job("j", util::Bits(80), 10, util::Bits(8),
                                  util::Bits(8), 0.0, 0.5, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace oddci::workload

#include "workload/fasta.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

namespace oddci::workload {
namespace {

TEST(Fasta, ParsesMultiRecord) {
  const auto recs = parse_fasta(
      ">seq1 first sequence\nACGT\nACGT\n>seq2\nTTTT\n");
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].id, "seq1");
  EXPECT_EQ(recs[0].description, "first sequence");
  EXPECT_EQ(recs[0].sequence, "ACGTACGT");
  EXPECT_EQ(recs[1].id, "seq2");
  EXPECT_TRUE(recs[1].description.empty());
  EXPECT_EQ(recs[1].sequence, "TTTT");
}

TEST(Fasta, HandlesCrlfAndBlankLines) {
  const auto recs = parse_fasta(">a\r\nAC\r\n\r\nGT\r\n");
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].sequence, "ACGT");
}

TEST(Fasta, RejectsMalformedInput) {
  EXPECT_THROW(parse_fasta("ACGT\n"), std::runtime_error);
  EXPECT_THROW(parse_fasta(">\nACGT\n"), std::runtime_error);
  EXPECT_THROW(parse_fasta(">empty-record\n>next\nAC\n"), std::runtime_error);
}

TEST(Fasta, EmptyInputYieldsNoRecords) {
  EXPECT_TRUE(parse_fasta("").empty());
}

TEST(Fasta, WriteWrapsLines) {
  std::vector<FastaRecord> recs = {{"id", "desc", std::string(150, 'A')}};
  const std::string text = write_fasta(recs, 70);
  EXPECT_NE(text.find(">id desc\n"), std::string::npos);
  // 150 chars at width 70: lines of 70, 70, 10.
  const auto first_newline = text.find('\n');
  const auto second_newline = text.find('\n', first_newline + 1);
  EXPECT_EQ(second_newline - first_newline - 1, 70u);
  EXPECT_THROW(write_fasta(recs, 0), std::invalid_argument);
}

TEST(Fasta, RoundTrip) {
  std::vector<FastaRecord> recs = {{"a", "x y z", "ACGTACGTAC"},
                                   {"b", "", "TTTTT"}};
  const auto parsed = parse_fasta(write_fasta(recs, 4));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].id, recs[0].id);
  EXPECT_EQ(parsed[0].description, recs[0].description);
  EXPECT_EQ(parsed[0].sequence, recs[0].sequence);
  EXPECT_EQ(parsed[1].sequence, recs[1].sequence);
}

TEST(Fasta, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/oddci_fasta_test.fa";
  std::vector<FastaRecord> recs = {{"q", "query", "GATTACA"}};
  save_fasta_file(path, recs);
  const auto loaded = load_fasta_file(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].sequence, "GATTACA");
  std::remove(path.c_str());
  EXPECT_THROW(load_fasta_file(path), std::runtime_error);
}

}  // namespace
}  // namespace oddci::workload

#include "workload/blast_tests.hpp"

#include <gtest/gtest.h>

namespace oddci::workload {
namespace {

TEST(BlastTestSpecs, Table2HasTwelveTestsInPaperOrder) {
  const auto specs = table2_specs();
  ASSERT_EQ(specs.size(), 12u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].id, static_cast<int>(i) + 1);
    EXPECT_FALSE(specs[i].remote);
    EXPECT_GT(specs[i].query_length, 0u);
    EXPECT_GT(specs[i].db_residues(), 0u);
    EXPECT_GT(specs[i].paper_stb_in_use_seconds, 0.0);
  }
  EXPECT_EQ(specs[0].category, "small-db");
  EXPECT_EQ(specs[11].category, "large-db");
}

TEST(BlastTestSpecs, ModelledPcTimesMatchPaperViaSlowdown) {
  // The calibration contract: modelled reference-PC time ~= paper's
  // STB-in-use time / 20.6 for every local test.
  for (const auto& spec : table2_specs()) {
    const double target = spec.paper_stb_in_use_seconds / 20.6;
    EXPECT_NEAR(spec.reference_pc_seconds(), target, target * 0.15)
        << "test #" << spec.id;
  }
}

TEST(BlastTestSpecs, LargestTestTakesHoursOnStb) {
  const auto specs = table2_specs();
  const auto& t12 = specs.back();
  // Paper: ~10.8 h on the STB in use.
  const double stb_in_use = t12.reference_pc_seconds() * 20.6;
  EXPECT_NEAR(stb_in_use / 3600.0, 10.8, 1.0);
}

TEST(BlastTestSpecs, Table3IsRemote) {
  const auto specs = table3_specs();
  ASSERT_EQ(specs.size(), 3u);
  for (const auto& spec : specs) {
    EXPECT_TRUE(spec.remote);
    EXPECT_EQ(spec.category, "remote");
    EXPECT_GE(spec.id, 13);
    EXPECT_LE(spec.id, 15);
  }
}

TEST(BlastTestSpecs, CellModelScalesWithProblemSize) {
  BlastTestSpec small{1, "x", 100, 10, 100, false, 0, 0};
  BlastTestSpec big{2, "x", 200, 10, 100, false, 0, 0};
  EXPECT_DOUBLE_EQ(big.modelled_cells(), 2.0 * small.modelled_cells());
}

}  // namespace
}  // namespace oddci::workload

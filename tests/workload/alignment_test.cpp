#include "workload/alignment.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "workload/sequence.hpp"

namespace oddci::workload {
namespace {

TEST(Scoring, Validation) {
  Scoring ok;
  EXPECT_NO_THROW(ok.validate());
  Scoring bad = ok;
  bad.match = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.mismatch = 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.gap_open = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.gap_extend = 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(SmithWaterman, PerfectMatchScoresFullLength) {
  const Scoring sc;
  const auto r = smith_waterman("ACGTACGT", "ACGTACGT", sc);
  EXPECT_EQ(r.score, 8 * sc.match);
  EXPECT_EQ(r.query_end, 8u);
  EXPECT_EQ(r.subject_end, 8u);
  EXPECT_EQ(r.cells, 64u);
}

TEST(SmithWaterman, FindsEmbeddedMatch) {
  // Query embedded in a larger subject.
  const Scoring sc;
  const std::string query = "GATTACA";
  const std::string subject = "TTTTTTGATTACATTTTTT";
  const auto r = smith_waterman(query, subject, sc);
  EXPECT_EQ(r.score, 7 * sc.match);
  EXPECT_EQ(r.subject_end, 13u);  // end of GATTACA within subject
}

TEST(SmithWaterman, MismatchReducesScore) {
  const Scoring sc;
  const auto exact = smith_waterman("ACGTACGTAC", "ACGTACGTAC", sc);
  const auto noisy = smith_waterman("ACGTACGTAC", "ACGTTCGTAC", sc);
  EXPECT_LT(noisy.score, exact.score);
  EXPECT_GT(noisy.score, 0);
}

TEST(SmithWaterman, LocalAlignmentIgnoresFlankingJunk) {
  const Scoring sc;
  // Same core alignment regardless of unrelated flanks.
  const auto a = smith_waterman("GATTACA", "GATTACA", sc);
  const auto b = smith_waterman("CCCCGATTACACCCC", "TTTTGATTACATTTT", sc);
  EXPECT_EQ(a.score, b.score);
}

TEST(SmithWaterman, GapAlignmentBeatsDoubleMismatch) {
  // Subject has one base deleted; an affine gap should bridge it.
  const Scoring sc;
  const std::string query = "AAAACGTTTTGGGGCCCC";
  std::string subject = query;
  subject.erase(7, 1);  // delete one base
  const auto r = smith_waterman(query, subject, sc);
  // Expected: all residues matched but one gap: score ~ 17*2 - 5.
  EXPECT_EQ(r.score, 17 * sc.match + sc.gap_open);
}

TEST(SmithWaterman, EmptyInputsScoreZero) {
  const auto r1 = smith_waterman("", "ACGT");
  EXPECT_EQ(r1.score, 0);
  const auto r2 = smith_waterman("ACGT", "");
  EXPECT_EQ(r2.score, 0);
}

TEST(SmithWaterman, DisjointSequencesScoreNearZero) {
  const auto r = smith_waterman("AAAAAAAA", "CCCCCCCC");
  EXPECT_EQ(r.score, 0);
}

TEST(UngappedExtend, ExtendsThroughMatchesBothDirections) {
  const Scoring sc;
  const std::string q = "TTTGATTACATTT";
  const std::string s = "CCCGATTACACCC";
  // Seed on "TTAC" at q[5], s[5] (seed_len 4).
  const auto r = ungapped_extend(q, s, 5, 5, 4, sc, 20);
  // Extends left to cover GAT and right to cover A: GATTACA = 7 matches.
  EXPECT_EQ(r.score, 7 * sc.match);
  EXPECT_EQ(r.query_begin, 3u);
  EXPECT_EQ(r.query_end, 10u);
}

TEST(UngappedExtend, XDropTerminatesExtension) {
  const Scoring sc;
  // After the seed, pure mismatches: x_drop stops quickly.
  const std::string q = "GATTAAAAAAAA";
  const std::string s = "GATTCCCCCCCC";
  const auto r = ungapped_extend(q, s, 0, 0, 4, sc, 5);
  EXPECT_EQ(r.score, 4 * sc.match);
  EXPECT_LT(r.query_end, q.size());  // did not extend to the end
}

TEST(UngappedExtend, Validation) {
  const Scoring sc;
  EXPECT_THROW(ungapped_extend("ACGT", "ACGT", 2, 2, 4, sc, 10),
               std::invalid_argument);  // seed overruns
  EXPECT_THROW(ungapped_extend("ACGT", "ACGT", 0, 0, 4, sc, 0),
               std::invalid_argument);  // bad x_drop
}

TEST(BandedAlign, MatchesFullDpOnNarrowProblems) {
  const Scoring sc;
  SequenceGenerator gen(11);
  for (int i = 0; i < 20; ++i) {
    const std::string a = gen.random_dna(60);
    const std::string b = gen.mutate(a, 0.05, 0.01);
    const auto full = smith_waterman(a, b, sc);
    const auto banded = banded_align(a, b, sc, 16);
    // With few indels, the optimum lies inside the band.
    EXPECT_EQ(banded.score, full.score) << "iteration " << i;
  }
}

TEST(BandedAlign, CheaperThanFullDp) {
  const Scoring sc;
  SequenceGenerator gen(12);
  const std::string a = gen.random_dna(500);
  const std::string b = gen.mutate(a, 0.03, 0.0);
  const auto full = smith_waterman(a, b, sc);
  const auto banded = banded_align(a, b, sc, 8);
  EXPECT_LT(banded.cells, full.cells / 5);
}

TEST(BandedAlign, Validation) {
  EXPECT_THROW(banded_align("A", "A", Scoring{}, 0), std::invalid_argument);
  const auto r = banded_align("", "ACGT", Scoring{}, 4);
  EXPECT_EQ(r.score, 0);
}

// Property sweep: score is symmetric in (query, subject) for symmetric
// scoring, and never negative, and never exceeds match * min(len).
class AlignmentPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AlignmentPropertyTest, ScoreBoundsAndSymmetry) {
  SequenceGenerator gen(GetParam());
  const Scoring sc;
  const std::string a = gen.random_dna(40 + GetParam() % 60);
  const std::string b = gen.random_dna(40 + (GetParam() * 7) % 60);
  const auto ab = smith_waterman(a, b, sc);
  const auto ba = smith_waterman(b, a, sc);
  EXPECT_EQ(ab.score, ba.score);
  EXPECT_GE(ab.score, 0);
  const auto cap =
      static_cast<int>(std::min(a.size(), b.size())) * sc.match;
  EXPECT_LE(ab.score, cap);
  // Self-alignment is maximal.
  const auto aa = smith_waterman(a, a, sc);
  EXPECT_EQ(aa.score, static_cast<int>(a.size()) * sc.match);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, AlignmentPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace oddci::workload

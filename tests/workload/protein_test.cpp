#include "workload/protein.hpp"

#include <gtest/gtest.h>

namespace oddci::workload {
namespace {

TEST(Protein, AminoIndexRoundTrip) {
  for (std::size_t i = 0; i < kAminoAcids.size(); ++i) {
    EXPECT_EQ(amino_index(kAminoAcids[i]), i);
  }
  EXPECT_EQ(amino_index('B'), 0xFF);
  EXPECT_EQ(amino_index('X'), 0xFF);
  EXPECT_EQ(amino_index('a'), 0xFF);  // case-sensitive by design
}

TEST(Protein, Blosum62KnownValues) {
  EXPECT_EQ(blosum62('A', 'A'), 4);
  EXPECT_EQ(blosum62('W', 'W'), 11);
  EXPECT_EQ(blosum62('A', 'W'), -3);
  EXPECT_EQ(blosum62('L', 'I'), 2);
  EXPECT_EQ(blosum62('D', 'E'), 2);
  EXPECT_THROW(blosum62('A', 'X'), std::invalid_argument);
}

TEST(Protein, Blosum62IsSymmetric) {
  for (char a : kAminoAcids) {
    for (char b : kAminoAcids) {
      EXPECT_EQ(blosum62(a, b), blosum62(b, a)) << a << " vs " << b;
    }
  }
}

TEST(Protein, DiagonalIsRowMaximum) {
  // Self-substitution scores highest in (almost) every row; BLOSUM62's
  // diagonal dominates its row for all residues.
  for (char a : kAminoAcids) {
    for (char b : kAminoAcids) {
      if (a == b) continue;
      EXPECT_GT(blosum62(a, a), blosum62(a, b)) << a << " vs " << b;
    }
  }
}

TEST(Protein, SelfAlignmentScoresDiagonalSum) {
  const std::string peptide = "MKTAYIAKQR";
  int expected = 0;
  for (char c : peptide) expected += blosum62(c, c);
  const auto r = smith_waterman_protein(peptide, peptide);
  EXPECT_EQ(r.score, expected);
}

TEST(Protein, HomologScoresAboveRandom) {
  ProteinGenerator gen(61);
  const std::string query = gen.random_protein(120);
  const std::string homolog = gen.mutate(query, 0.2);
  const std::string unrelated = gen.random_protein(120);
  const auto h = smith_waterman_protein(query, homolog);
  const auto u = smith_waterman_protein(query, unrelated);
  EXPECT_GT(h.score, 2 * u.score);
}

TEST(Protein, ConservativeSubstitutionBeatsRadical) {
  // L->I (score 2) vs L->P (score -3) inside an identical context.
  const std::string query = "AAAALAAAA";
  const auto conservative = smith_waterman_protein(query, "AAAAIAAAA");
  const auto radical = smith_waterman_protein(query, "AAAAPAAAA");
  EXPECT_GT(conservative.score, radical.score);
}

TEST(Protein, Validation) {
  EXPECT_THROW(smith_waterman_protein("MKT", "MXT"), std::invalid_argument);
  ProteinScoring bad;
  bad.gap_open = 1;
  EXPECT_THROW(smith_waterman_protein("MKT", "MKT", bad),
               std::invalid_argument);
  EXPECT_EQ(smith_waterman_protein("", "MKT").score, 0);
}

TEST(ProteinGenerator, ProducesValidSequences) {
  ProteinGenerator gen(62);
  const std::string s = gen.random_protein(5000);
  EXPECT_EQ(s.size(), 5000u);
  EXPECT_TRUE(is_valid_protein(s));
}

TEST(ProteinGenerator, BackgroundFrequenciesRealistic) {
  ProteinGenerator gen(63);
  const std::string s = gen.random_protein(100000);
  std::size_t leu = 0, trp = 0;
  for (char c : s) {
    if (c == 'L') ++leu;
    if (c == 'W') ++trp;
  }
  // Leucine ~9%, tryptophan ~1.3% in natural proteins.
  EXPECT_NEAR(static_cast<double>(leu) / s.size(), 0.090, 0.01);
  EXPECT_NEAR(static_cast<double>(trp) / s.size(), 0.013, 0.005);
}

TEST(ProteinGenerator, MutateRateRespected) {
  ProteinGenerator gen(64);
  const std::string s = gen.random_protein(20000);
  const std::string m = gen.mutate(s, 0.3);
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != m[i]) ++diffs;
  }
  // Substitutes are drawn from the background, so ~7% of "mutations" keep
  // the same residue: effective rate ~ 0.3 * (1 - bg(res)).
  EXPECT_NEAR(static_cast<double>(diffs) / s.size(), 0.28, 0.02);
  EXPECT_THROW(gen.mutate(s, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace oddci::workload

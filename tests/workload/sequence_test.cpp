#include "workload/sequence.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace oddci::workload {
namespace {

TEST(Sequence, DnaCodeRoundTrip) {
  for (std::uint8_t code = 0; code < 4; ++code) {
    EXPECT_EQ(dna_code(dna_char(code)), code);
  }
  EXPECT_EQ(dna_code('a'), 0);
  EXPECT_EQ(dna_code('t'), 3);
  EXPECT_EQ(dna_code('N'), 0xFF);
  EXPECT_THROW(dna_char(4), std::invalid_argument);
}

TEST(Sequence, Validation) {
  EXPECT_TRUE(is_valid_dna("ACGTacgt"));
  EXPECT_FALSE(is_valid_dna("ACGX"));
  EXPECT_TRUE(is_valid_dna(""));
}

TEST(Sequence, EncodeDna) {
  const auto enc = encode_dna("ACGT");
  ASSERT_EQ(enc.size(), 4u);
  EXPECT_EQ(enc[0], 0);
  EXPECT_EQ(enc[3], 3);
  EXPECT_THROW(encode_dna("ACGN"), std::invalid_argument);
}

TEST(Sequence, ReverseComplement) {
  EXPECT_EQ(reverse_complement("ACGT"), "ACGT");  // palindrome
  EXPECT_EQ(reverse_complement("AAAA"), "TTTT");
  EXPECT_EQ(reverse_complement("GATTACA"), "TGTAATC");
  EXPECT_EQ(reverse_complement(reverse_complement("GGCATT")), "GGCATT");
  EXPECT_THROW(reverse_complement("N"), std::invalid_argument);
}

TEST(SequenceGenerator, RandomDnaIsValidAndDeterministic) {
  SequenceGenerator a(1), b(1), c(2);
  const std::string s1 = a.random_dna(1000);
  EXPECT_EQ(s1.size(), 1000u);
  EXPECT_TRUE(is_valid_dna(s1));
  EXPECT_EQ(s1, b.random_dna(1000));
  EXPECT_NE(s1, c.random_dna(1000));
}

TEST(SequenceGenerator, BaseCompositionRoughlyUniform) {
  SequenceGenerator gen(3);
  const std::string s = gen.random_dna(40000);
  std::size_t counts[4] = {0, 0, 0, 0};
  for (char ch : s) counts[dna_code(ch)]++;
  for (auto count : counts) {
    EXPECT_NEAR(static_cast<double>(count) / s.size(), 0.25, 0.02);
  }
}

TEST(SequenceGenerator, MutateZeroRatesIsIdentity) {
  SequenceGenerator gen(4);
  const std::string s = gen.random_dna(500);
  EXPECT_EQ(gen.mutate(s, 0.0, 0.0), s);
}

TEST(SequenceGenerator, MutateSubstitutionRateApproximate) {
  SequenceGenerator gen(5);
  const std::string s = gen.random_dna(20000);
  const std::string m = gen.mutate(s, 0.1, 0.0);
  ASSERT_EQ(m.size(), s.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != m[i]) ++diffs;
  }
  EXPECT_NEAR(static_cast<double>(diffs) / s.size(), 0.1, 0.01);
}

TEST(SequenceGenerator, MutateSubstitutionNeverProducesSameBase) {
  // The substituted base must differ from the original (otherwise the
  // effective rate would be 3/4 of the nominal one).
  SequenceGenerator gen(6);
  const std::string s(5000, 'A');
  const std::string m = gen.mutate(s, 1.0, 0.0);
  for (char ch : m) {
    EXPECT_NE(ch, 'A');
  }
}

TEST(SequenceGenerator, MutateIndelsChangeLength) {
  SequenceGenerator gen(7);
  const std::string s = gen.random_dna(10000);
  const std::string m = gen.mutate(s, 0.0, 0.2);
  EXPECT_NE(m.size(), s.size());  // overwhelmingly likely
  EXPECT_TRUE(is_valid_dna(m));
}

TEST(SequenceGenerator, MutateValidatesRates) {
  SequenceGenerator gen(8);
  EXPECT_THROW(gen.mutate("ACGT", -0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(gen.mutate("ACGT", 0.0, 1.5), std::invalid_argument);
}

TEST(SequenceGenerator, RandomDatabaseRespectsLengthRange) {
  SequenceGenerator gen(9);
  const auto db = gen.random_database(50, 100, 200);
  EXPECT_EQ(db.size(), 50u);
  for (const auto& s : db) {
    EXPECT_GE(s.size(), 100u);
    EXPECT_LE(s.size(), 200u);
  }
  EXPECT_THROW(gen.random_database(5, 0, 10), std::invalid_argument);
  EXPECT_THROW(gen.random_database(5, 10, 5), std::invalid_argument);
}

}  // namespace
}  // namespace oddci::workload

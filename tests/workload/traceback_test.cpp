#include "workload/traceback.hpp"

#include <gtest/gtest.h>

#include "workload/sequence.hpp"

namespace oddci::workload {
namespace {

TEST(Traceback, PerfectMatchIsAllMatches) {
  const auto a = smith_waterman_traceback("GATTACA", "GATTACA");
  EXPECT_EQ(a.summary.score, 14);
  EXPECT_EQ(a.query_aligned, "GATTACA");
  EXPECT_EQ(a.subject_aligned, "GATTACA");
  EXPECT_EQ(a.midline, "|||||||");
  EXPECT_EQ(a.cigar, "7M");
  EXPECT_DOUBLE_EQ(a.identity(), 1.0);
  EXPECT_EQ(a.matches(), 7u);
  EXPECT_EQ(a.mismatches(), 0u);
  EXPECT_EQ(a.gaps(), 0u);
}

TEST(Traceback, ScoreMatchesScoreOnlyImplementation) {
  SequenceGenerator gen(51);
  const Scoring sc;
  for (int i = 0; i < 25; ++i) {
    const std::string a = gen.random_dna(80);
    const std::string b = gen.mutate(a, 0.08, 0.02);
    const auto fast = smith_waterman(a, b, sc);
    const auto full = smith_waterman_traceback(a, b, sc);
    EXPECT_EQ(full.summary.score, fast.score) << "iteration " << i;
  }
}

TEST(Traceback, SpansAreExact) {
  // Query core embedded with junk flanks on both sides.
  const std::string query = "CCCCCCGATTACAGGGGGG";
  const std::string subject = "TTTTGATTACATTTT";
  const auto a = smith_waterman_traceback(query, subject);
  EXPECT_EQ(a.query_aligned, "GATTACA");
  EXPECT_EQ(a.summary.query_begin, 6u);
  EXPECT_EQ(a.summary.query_end, 13u);
  EXPECT_EQ(a.summary.subject_begin, 4u);
  EXPECT_EQ(a.summary.subject_end, 11u);
}

TEST(Traceback, DeletionShowsAsGapAndCigarD) {
  // Subject lost one base relative to the query.
  const std::string query = "AAAACGTTTTGGGGCCCC";
  std::string subject = query;
  subject.erase(7, 1);
  const auto a = smith_waterman_traceback(query, subject);
  EXPECT_NE(a.cigar.find('I'), std::string::npos)
      << "query base missing from subject = insertion, CIGAR " << a.cigar;
  EXPECT_EQ(a.gaps(), 1u);
  EXPECT_EQ(a.matches(), 17u);
}

TEST(Traceback, AlignmentColumnsAreConsistent) {
  SequenceGenerator gen(52);
  const std::string q = gen.random_dna(120);
  const std::string s = gen.mutate(q, 0.1, 0.03);
  const auto a = smith_waterman_traceback(q, s);
  ASSERT_EQ(a.query_aligned.size(), a.subject_aligned.size());
  ASSERT_EQ(a.query_aligned.size(), a.midline.size());
  // No column can be a double gap, midline '|' implies equality.
  for (std::size_t i = 0; i < a.midline.size(); ++i) {
    EXPECT_FALSE(a.query_aligned[i] == '-' && a.subject_aligned[i] == '-');
    if (a.midline[i] == '|') {
      EXPECT_EQ(a.query_aligned[i], a.subject_aligned[i]);
    }
  }
  // Stripping gaps recovers contiguous substrings of the inputs.
  std::string q_stripped, s_stripped;
  for (char c : a.query_aligned) {
    if (c != '-') q_stripped.push_back(c);
  }
  for (char c : a.subject_aligned) {
    if (c != '-') s_stripped.push_back(c);
  }
  EXPECT_EQ(q_stripped, q.substr(a.summary.query_begin,
                                 a.summary.query_end -
                                     a.summary.query_begin));
  EXPECT_EQ(s_stripped, s.substr(a.summary.subject_begin,
                                 a.summary.subject_end -
                                     a.summary.subject_begin));
}

TEST(Traceback, CigarLengthsSumToColumns) {
  SequenceGenerator gen(53);
  const std::string q = gen.random_dna(150);
  const std::string s = gen.mutate(q, 0.06, 0.04);
  const auto a = smith_waterman_traceback(q, s);
  std::size_t total = 0, run = 0;
  for (char c : a.cigar) {
    if (c >= '0' && c <= '9') {
      run = run * 10 + static_cast<std::size_t>(c - '0');
    } else {
      total += run;
      run = 0;
    }
  }
  EXPECT_EQ(total, a.query_aligned.size());
}

TEST(Traceback, EmptyAndDisjointInputs) {
  EXPECT_EQ(smith_waterman_traceback("", "ACGT").summary.score, 0);
  const auto a = smith_waterman_traceback("AAAA", "CCCC");
  EXPECT_EQ(a.summary.score, 0);
  EXPECT_TRUE(a.cigar.empty());
}

TEST(Traceback, MaxCellsGuard) {
  SequenceGenerator gen(54);
  const std::string big = gen.random_dna(1000);
  EXPECT_THROW(smith_waterman_traceback(big, big, Scoring{}, 1000),
               std::invalid_argument);
}

TEST(Traceback, FormatProducesBlocks) {
  const auto a = smith_waterman_traceback("GATTACAGATTACA", "GATTACAGATTACA");
  const std::string text = format_alignment(a, 7);
  EXPECT_NE(text.find("Score 28"), std::string::npos);
  EXPECT_NE(text.find("identity 100%"), std::string::npos);
  EXPECT_NE(text.find("Query  GATTACA"), std::string::npos);
  EXPECT_THROW(format_alignment(a, 0), std::invalid_argument);
}

}  // namespace
}  // namespace oddci::workload

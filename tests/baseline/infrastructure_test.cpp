#include "baseline/infrastructure.hpp"

#include <gtest/gtest.h>

namespace oddci::baseline {
namespace {

TEST(Voluntary, RecruitmentTakesMonthsForMillions) {
  VoluntaryComputingModel model;
  const auto r = model.assemble(1'000'000);
  ASSERT_TRUE(r.achievable);
  // ~5000/day peak: a million volunteers needs ~200 days.
  EXPECT_GT(r.seconds, 100.0 * 86400.0);
  EXPECT_DOUBLE_EQ(r.interventions, 0.0);
}

TEST(Voluntary, ScalesBeyondDesktopGridsButNotOnDemand) {
  VoluntaryComputingModel model;
  EXPECT_GT(model.scale_limit(), std::size_t{100'000'000});
  EXPECT_FALSE(model.on_demand());
  // Retargeting requires a campaign, not an API call.
  EXPECT_GT(model.reconfigure_seconds(1000), 86400.0);
}

TEST(Voluntary, UnreachablePopulationSignalled) {
  VoluntaryComputingModel model;
  EXPECT_FALSE(model.assemble(1'000'000'000).achievable);
}

TEST(DesktopGrid, SetupCostScalesLinearly) {
  DesktopGridModel model;
  const auto small = model.assemble(100);
  const auto large = model.assemble(10'000);
  ASSERT_TRUE(small.achievable);
  ASSERT_TRUE(large.achievable);
  EXPECT_NEAR(large.seconds / small.seconds, 100.0, 1.0);
  EXPECT_EQ(large.interventions, 10'000.0);
}

TEST(DesktopGrid, CeilingBlocksMillionNodes) {
  DesktopGridModel model;
  EXPECT_FALSE(model.assemble(1'000'000).achievable);
  EXPECT_TRUE(model.on_demand());
}

TEST(Iaas, ProvisioningIsZeroTouchButBounded) {
  IaasModel model;
  const auto r = model.assemble(1'000);
  ASSERT_TRUE(r.achievable);
  EXPECT_DOUBLE_EQ(r.interventions, 0.0);
  EXPECT_FALSE(model.assemble(100'000).achievable);  // quota
  EXPECT_TRUE(model.on_demand());
}

TEST(Iaas, WavesScaleWithConcurrency) {
  IaasModel::Params p;
  p.provisioning_concurrency = 10;
  IaasModel model(p);
  const auto r100 = model.assemble(100);
  const auto r1000 = model.assemble(1000);
  EXPECT_NEAR(r1000.seconds / r100.seconds, 10.0, 0.1);
}

TEST(Oddci, AssemblyTimeIndependentOfScale) {
  OddciModel model;
  const auto small = model.assemble(100);
  const auto huge = model.assemble(100'000'000);
  ASSERT_TRUE(small.achievable);
  ASSERT_TRUE(huge.achievable);
  EXPECT_DOUBLE_EQ(small.seconds, huge.seconds);
  // 1.5 * 10 MB / 1 Mbps ~ 126 s.
  EXPECT_NEAR(small.seconds, 1.5 * 83886080.0 / 1e6, 1e-6);
  EXPECT_DOUBLE_EQ(huge.interventions, 0.0);
  EXPECT_TRUE(model.on_demand());
}

TEST(Judge, ReproducesTableOne) {
  // The paper's Table I: every requirement is met by at least one existing
  // technology, but only OddCI meets all three.
  const auto models = default_models();
  int met_all = 0;
  bool scal_met = false, setup_met = false, od_met = false;
  for (const auto& model : models) {
    const auto v = judge(*model);
    if (v.technology == "voluntary-computing") {
      // Table I: voluntary computing reaches extreme scale, but its setup
      // (a months-long recruitment campaign) is not efficient and the pool
      // cannot be instantiated on demand.
      EXPECT_TRUE(v.extremely_high_scalability);
      EXPECT_FALSE(v.efficient_setup);
      EXPECT_FALSE(v.on_demand_instantiation);
    }
    if (v.technology == "desktop-grid") {
      EXPECT_FALSE(v.extremely_high_scalability);
      EXPECT_FALSE(v.efficient_setup);
      EXPECT_TRUE(v.on_demand_instantiation);
    }
    if (v.technology == "iaas") {
      // IaaS: zero-touch and on demand, but quota/provisioning bounded.
      EXPECT_FALSE(v.extremely_high_scalability);
      EXPECT_TRUE(v.efficient_setup);
      EXPECT_TRUE(v.on_demand_instantiation);
    }
    if (v.technology == "oddci") {
      EXPECT_TRUE(v.extremely_high_scalability);
      EXPECT_TRUE(v.efficient_setup);
      EXPECT_TRUE(v.on_demand_instantiation);
    }
    scal_met |= v.extremely_high_scalability;
    setup_met |= v.efficient_setup;
    od_met |= v.on_demand_instantiation;
    if (v.extremely_high_scalability && v.efficient_setup &&
        v.on_demand_instantiation) {
      ++met_all;
    }
  }
  EXPECT_TRUE(scal_met && setup_met && od_met);
  EXPECT_EQ(met_all, 1);  // only OddCI
}

TEST(Judge, EvidenceFieldsPopulated) {
  const OddciModel model;
  const auto v = judge(model);
  EXPECT_GT(v.assemble_1e2_seconds, 0.0);
  EXPECT_GT(v.assemble_1e6_seconds, 0.0);
  EXPECT_EQ(v.interventions_1e6, 0.0);
}

}  // namespace
}  // namespace oddci::baseline

// Property tests for the hierarchical timer wheel, checked against a naive
// reference scheduler (a flat multimap of deadlines). The wheel guarantees
// exact-microsecond firing times and deterministic replay; it does NOT
// guarantee any particular order between timers expiring at the same
// timestamp, so ties are compared as per-timestamp multisets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <vector>

#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace oddci::sim {
namespace {

/// Reference model: fires each armed id at its exact deadline; periodic
/// timers re-arm with exact arithmetic (deadline += period).
class NaiveScheduler {
 public:
  void arm(int id, SimTime deadline, SimTime period) {
    armed_[id] = {deadline, period};
  }

  bool disarm(int id) { return armed_.erase(id) > 0; }

  /// All (time, id) firings with time <= horizon, in time order.
  std::vector<std::pair<std::int64_t, int>> run_until(SimTime horizon) {
    std::vector<std::pair<std::int64_t, int>> fired;
    for (;;) {
      auto next = armed_.end();
      for (auto it = armed_.begin(); it != armed_.end(); ++it) {
        if (next == armed_.end() ||
            it->second.deadline < next->second.deadline) {
          next = it;
        }
      }
      if (next == armed_.end() || next->second.deadline > horizon) break;
      fired.emplace_back(next->second.deadline.micros(), next->first);
      if (next->second.period > SimTime::zero()) {
        next->second.deadline += next->second.period;
      } else {
        armed_.erase(next);
      }
    }
    return fired;
  }

 private:
  struct Armed {
    SimTime deadline;
    SimTime period;
  };
  std::map<int, Armed> armed_;
};

/// Group (time, id) firings into per-timestamp sorted id lists so that
/// cross-timer tie order (unspecified for the wheel) is ignored.
std::map<std::int64_t, std::vector<int>> by_timestamp(
    const std::vector<std::pair<std::int64_t, int>>& fired) {
  std::map<std::int64_t, std::vector<int>> grouped;
  for (const auto& [t, id] : fired) grouped[t].push_back(id);
  for (auto& [t, ids] : grouped) std::sort(ids.begin(), ids.end());
  return grouped;
}

TEST(TimerWheel, OneShotFiresAtExactDeadline) {
  Simulation sim;
  std::int64_t fired_at = -1;
  sim.schedule_timer_in(SimTime::from_micros(123457),
                        [&] { fired_at = sim.now().micros(); });
  sim.run_until(SimTime::from_seconds(1));
  EXPECT_EQ(fired_at, 123457);  // exact, not rounded to a wheel tick
}

TEST(TimerWheel, DistinctDeadlinesFireInGlobalTimeOrder) {
  Simulation sim;
  util::Random rng(7);
  NaiveScheduler reference;
  std::vector<std::pair<std::int64_t, int>> fired;
  for (int id = 0; id < 500; ++id) {
    // Deadlines spread over ~2 hours so every wheel level participates.
    const auto deadline =
        SimTime::from_micros(1 + static_cast<std::int64_t>(
                                     rng.uniform(0.0, 7.2e9)));
    sim.schedule_timer_at(deadline, [&fired, &sim, id] {
      fired.emplace_back(sim.now().micros(), id);
    });
    reference.arm(id, deadline, SimTime::zero());
  }
  const auto horizon = SimTime::from_hours(3);
  sim.run_until(horizon);
  const auto expected = reference.run_until(horizon);
  ASSERT_EQ(fired.size(), expected.size());
  // Random 64-bit microsecond draws: ties are virtually impossible, so the
  // full (time, id) sequence must match exactly.
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end(),
                             [](const auto& a, const auto& b) {
                               return a.first < b.first;
                             }));
  EXPECT_EQ(by_timestamp(fired), by_timestamp(expected));
}

TEST(TimerWheel, PeriodicTicksUseExactArithmetic) {
  Simulation sim;
  std::vector<std::int64_t> ticks;
  // An awkward period that never aligns with the 1.024 ms wheel quantum.
  const auto period = SimTime::from_micros(999'983);  // prime
  sim.schedule_timer_at(SimTime::from_micros(500), [&] {
    ticks.push_back(sim.now().micros());
  }, period);
  sim.run_until(SimTime::from_seconds(30));
  ASSERT_GE(ticks.size(), 30u);
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    EXPECT_EQ(ticks[i], 500 + static_cast<std::int64_t>(i) * 999'983);
  }
}

TEST(TimerWheel, RandomizedMixedWorkloadMatchesReference) {
  Simulation sim;
  util::Random rng(99);
  NaiveScheduler reference;
  std::vector<std::pair<std::int64_t, int>> fired;
  std::vector<TimerId> handles(300, kInvalidTimer);

  for (int id = 0; id < 300; ++id) {
    const auto deadline = SimTime::from_micros(
        1 + static_cast<std::int64_t>(rng.uniform(0.0, 1.0e8)));
    // A third of the timers are periodic with coarse periods.
    const bool periodic = rng.bernoulli(1.0 / 3.0);
    const auto period =
        periodic ? SimTime::from_micros(static_cast<std::int64_t>(
                       rng.uniform(1.0e6, 3.0e7)))
                 : SimTime::zero();
    handles[static_cast<std::size_t>(id)] = sim.schedule_timer_at(
        deadline,
        [&fired, &sim, id] { fired.emplace_back(sim.now().micros(), id); },
        period);
    reference.arm(id, deadline, period);
  }
  // Cancel a random subset before anything runs.
  for (int id = 0; id < 300; id += 7) {
    EXPECT_TRUE(sim.cancel_timer(handles[static_cast<std::size_t>(id)]));
    EXPECT_TRUE(reference.disarm(id));
  }
  const auto horizon = SimTime::from_micros(250'000'000);
  sim.run_until(horizon);
  const auto expected = reference.run_until(horizon);
  ASSERT_EQ(fired.size(), expected.size());
  EXPECT_EQ(by_timestamp(fired), by_timestamp(expected));
}

TEST(TimerWheel, CancelBeforeExpiryPreventsFiring) {
  Simulation sim;
  int count = 0;
  const TimerId id =
      sim.schedule_timer_in(SimTime::from_seconds(5), [&] { ++count; });
  EXPECT_TRUE(sim.timer_active(id));
  sim.run_until(SimTime::from_seconds(2));
  EXPECT_TRUE(sim.cancel_timer(id));
  EXPECT_FALSE(sim.timer_active(id));
  EXPECT_FALSE(sim.cancel_timer(id));  // second cancel is a no-op
  sim.run_until(SimTime::from_seconds(10));
  EXPECT_EQ(count, 0);
}

TEST(TimerWheel, OneShotHandleGoesInactiveAfterFiring) {
  Simulation sim;
  const TimerId id = sim.schedule_timer_in(SimTime::from_seconds(1), [] {});
  sim.run_until(SimTime::from_seconds(2));
  EXPECT_FALSE(sim.timer_active(id));
  EXPECT_FALSE(sim.cancel_timer(id));
}

TEST(TimerWheel, HandleGenerationsRejectStaleIds) {
  Simulation sim;
  // Fire and recycle slots many times; a retained stale handle must never
  // alias a newer timer occupying the same slot.
  const TimerId first = sim.schedule_timer_in(SimTime::from_millis(1), [] {});
  sim.run_until(SimTime::from_millis(10));
  int count = 0;
  const TimerId second =
      sim.schedule_timer_in(SimTime::from_seconds(5), [&] { ++count; });
  EXPECT_NE(first, second);
  EXPECT_FALSE(sim.cancel_timer(first));  // stale: must not hit `second`
  sim.run_until(SimTime::from_seconds(10));
  EXPECT_EQ(count, 1);
}

TEST(TimerWheel, FarFutureDeadlineCascadesThroughAllLevels) {
  Simulation sim;
  std::int64_t fired_at = -1;
  // ~11.6 days: lands in a high wheel level and must cascade down to fire
  // at the exact microsecond.
  const auto deadline = SimTime::from_micros(1'000'000'000'007);
  sim.schedule_timer_at(deadline, [&] { fired_at = sim.now().micros(); });
  // Keep the heap lightly loaded so the run is cascade-driven.
  sim.run_until(deadline + SimTime::from_seconds(1));
  EXPECT_EQ(fired_at, 1'000'000'000'007);
}

TEST(TimerWheel, WrappedSlotDoesNotMaskNearerBuckets) {
  // Regression: a timer a full wheel-rotation away occupies the *current*
  // slot of its level. The next-due scan must not let it hide other
  // buckets of that level that are due much sooner.
  Simulation sim;
  std::vector<std::int64_t> fired;
  const auto tick = SimTime::from_micros(1024);  // one wheel quantum
  // Far timer: exactly 64 level-1 windows ahead -> same level-1 slot as
  // "now". Near timer: a few level-1 windows ahead, different slot.
  sim.schedule_timer_at(tick * (64 * 64 + 70) + SimTime::from_micros(3),
                        [&] { fired.push_back(sim.now().micros()); });
  sim.schedule_timer_at(tick * (3 * 64) + SimTime::from_micros(2),
                        [&] { fired.push_back(sim.now().micros()); });
  sim.run_until(tick * (66 * 64));
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 1024 * (3 * 64) + 2);
  EXPECT_EQ(fired[1], 1024 * (64 * 64 + 70) + 3);
}

TEST(TimerWheel, PeriodicCancelFromOwnCallbackStopsRearm) {
  Simulation sim;
  int count = 0;
  TimerId id = kInvalidTimer;
  id = sim.schedule_timer_in(
      SimTime::from_seconds(1),
      [&] {
        if (++count == 3) sim.cancel_timer(id);
      },
      SimTime::from_seconds(1));
  sim.run_until(SimTime::from_seconds(10));
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(sim.timer_active(id));
}

TEST(TimerWheel, CallbackCanScheduleMoreTimers) {
  // Scheduling from inside a firing callback may grow the wheel's slab;
  // the executing timer must survive the reallocation.
  Simulation sim;
  int fired = 0;
  std::int64_t chain_depth = 0;
  std::function<void(int)> arm = [&](int depth) {
    sim.schedule_timer_in(SimTime::from_millis(7), [&, depth] {
      ++fired;
      chain_depth = std::max<std::int64_t>(chain_depth, depth);
      if (depth < 50) arm(depth + 1);
      // Burst of extra timers to force slab growth mid-callback.
      for (int i = 0; i < 8; ++i) {
        sim.schedule_timer_in(SimTime::from_millis(900 + i), [&] { ++fired; });
      }
    });
  };
  arm(0);
  sim.run_until(SimTime::from_seconds(5));
  EXPECT_EQ(chain_depth, 50);
  EXPECT_EQ(fired, 51 + 51 * 8);
}

TEST(TimerWheel, RejectsInvalidArguments) {
  Simulation sim;
  sim.run_until(SimTime::from_seconds(1));
  EXPECT_THROW(sim.schedule_timer_at(SimTime::zero(), [] {}),
               std::invalid_argument);
  EXPECT_THROW(
      sim.schedule_timer_in(SimTime::from_seconds(-1), [] {}),
      std::invalid_argument);
  EXPECT_THROW(sim.schedule_timer_in(SimTime::from_seconds(1), EventFn{}),
               std::invalid_argument);
  EXPECT_THROW(sim.schedule_timer_in(SimTime::from_seconds(1), [] {},
                                     SimTime::from_seconds(-2)),
               std::invalid_argument);
}

TEST(TimerWheel, DoubleRunIsDeterministic) {
  auto run = [] {
    Simulation sim;
    util::Random rng(1234);
    std::vector<std::pair<std::int64_t, int>> fired;
    for (int id = 0; id < 200; ++id) {
      const auto deadline = SimTime::from_micros(
          1 + static_cast<std::int64_t>(rng.uniform(0.0, 5.0e8)));
      const auto period =
          rng.bernoulli(0.5)
              ? SimTime::from_micros(static_cast<std::int64_t>(
                    rng.uniform(1.0e6, 1.0e7)))
              : SimTime::zero();
      sim.schedule_timer_at(
          deadline,
          [&fired, &sim, id] { fired.emplace_back(sim.now().micros(), id); },
          period);
    }
    sim.run_until(SimTime::from_micros(600'000'000));
    return fired;
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);  // bit-identical, including tie order
}

}  // namespace
}  // namespace oddci::sim

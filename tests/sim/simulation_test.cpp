#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace oddci::sim {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(SimTime::from_seconds(1.5).micros(), 1'500'000);
  EXPECT_EQ(SimTime::from_millis(3).micros(), 3000);
  EXPECT_EQ(SimTime::from_minutes(2).micros(), 120'000'000);
  EXPECT_EQ(SimTime::from_hours(1).micros(), 3'600'000'000LL);
  EXPECT_DOUBLE_EQ(SimTime::from_micros(2'500'000).seconds(), 2.5);
  EXPECT_DOUBLE_EQ(SimTime::from_micros(1500).millis(), 1.5);
}

TEST(SimTime, RoundsToNearestMicro) {
  EXPECT_EQ(SimTime::from_seconds(1e-7).micros(), 0);
  EXPECT_EQ(SimTime::from_seconds(6e-7).micros(), 1);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::from_seconds(2.0);
  const SimTime b = SimTime::from_seconds(0.5);
  EXPECT_EQ((a + b).micros(), 2'500'000);
  EXPECT_EQ((a - b).micros(), 1'500'000);
  EXPECT_EQ((b * 4).micros(), 2'000'000);
  EXPECT_LT(b, a);
  EXPECT_EQ(SimTime::zero().micros(), 0);
  EXPECT_GT(SimTime::max(), SimTime::from_hours(1e6));
}

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::from_seconds(3), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::from_seconds(1), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::from_seconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::from_seconds(3));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulation, TiesBreakByPriorityThenSequence) {
  Simulation sim;
  std::vector<int> order;
  const SimTime t = SimTime::from_seconds(1);
  sim.schedule_at(t, [&] { order.push_back(1); }, EventPriority::kTimer);
  sim.schedule_at(t, [&] { order.push_back(2); }, EventPriority::kDelivery);
  sim.schedule_at(t, [&] { order.push_back(3); }, EventPriority::kDelivery);
  sim.run();
  // Deliveries (priority 0) run before timers; equal priorities in
  // scheduling order.
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(Simulation, ScheduleInIsRelative) {
  Simulation sim;
  SimTime seen;
  sim.schedule_at(SimTime::from_seconds(5), [&] {
    sim.schedule_in(SimTime::from_seconds(2), [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, SimTime::from_seconds(7));
}

TEST(Simulation, RejectsPastAndEmptyCallbacks) {
  Simulation sim;
  sim.schedule_at(SimTime::from_seconds(1), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(SimTime::from_millis(500), [] {}),
               std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(SimTime::from_seconds(-1), [] {}),
               std::invalid_argument);
  EXPECT_THROW(sim.schedule_at(SimTime::from_seconds(2), nullptr),
               std::invalid_argument);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const EventId id =
      sim.schedule_at(SimTime::from_seconds(1), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // already cancelled
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.events_cancelled(), 1u);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulation, CancelAfterExecutionReturnsFalse) {
  Simulation sim;
  const EventId id = sim.schedule_at(SimTime::from_seconds(1), [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulation, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulation sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(SimTime::from_seconds(i), [&] { ++count; });
  }
  sim.run_until(SimTime::from_seconds(5));
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), SimTime::from_seconds(5));
  sim.run_until(SimTime::from_seconds(20));
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.now(), SimTime::from_seconds(20));  // clock reaches horizon
  EXPECT_THROW(sim.run_until(SimTime::from_seconds(19)),
               std::invalid_argument);
}

TEST(Simulation, EventsAtExactHorizonRun) {
  Simulation sim;
  bool ran = false;
  sim.schedule_at(SimTime::from_seconds(5), [&] { ran = true; });
  sim.run_until(SimTime::from_seconds(5));
  EXPECT_TRUE(ran);
}

TEST(Simulation, StopInterruptsRun) {
  Simulation sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(SimTime::from_seconds(i), [&] {
      ++count;
      if (count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(sim.empty());
  sim.run();  // resumes
  EXPECT_EQ(count, 10);
}

TEST(Simulation, StepExecutesExactlyOne) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(SimTime::from_seconds(1), [&] { ++count; });
  sim.schedule_at(SimTime::from_seconds(2), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) {
      sim.schedule_in(SimTime::from_millis(1), recurse);
    }
  };
  sim.schedule_in(SimTime::from_millis(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), SimTime::from_millis(100));
}

TEST(Simulation, DeterministicReplay) {
  auto trace = [] {
    Simulation sim;
    std::vector<std::int64_t> times;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(SimTime::from_micros((i * 7919) % 1000),
                      [&times, &sim] { times.push_back(sim.now().micros()); });
    }
    sim.run();
    return times;
  };
  EXPECT_EQ(trace(), trace());
}

}  // namespace
}  // namespace oddci::sim

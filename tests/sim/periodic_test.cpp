#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulation.hpp"

namespace oddci::sim {
namespace {

TEST(PeriodicTask, TicksAtFixedPeriod) {
  Simulation sim;
  std::vector<std::int64_t> ticks;
  PeriodicTask task(sim, SimTime::from_seconds(1), SimTime::from_seconds(2),
                    [&] { ticks.push_back(sim.now().micros()); });
  sim.run_until(SimTime::from_seconds(10));
  // t = 1, 3, 5, 7, 9
  ASSERT_EQ(ticks.size(), 5u);
  EXPECT_EQ(ticks[0], 1'000'000);
  EXPECT_EQ(ticks[4], 9'000'000);
}

TEST(PeriodicTask, CancelStopsFutureTicks) {
  Simulation sim;
  int count = 0;
  PeriodicTask task(sim, SimTime::from_seconds(1), SimTime::from_seconds(1),
                    [&] { ++count; });
  sim.schedule_at(SimTime::from_seconds(3) + SimTime::from_millis(500),
                  [&] { task.cancel(); });
  sim.run_until(SimTime::from_seconds(10));
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(task.active());
}

TEST(PeriodicTask, CancelFromWithinOwnCallback) {
  Simulation sim;
  int count = 0;
  PeriodicTask task(sim, SimTime::from_seconds(1), SimTime::from_seconds(1),
                    [&] {
                      if (++count == 2) task.cancel();
                    });
  sim.run_until(SimTime::from_seconds(10));
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, DestructionBeforeSimulationEndIsSafe) {
  Simulation sim;
  int count = 0;
  {
    PeriodicTask task(sim, SimTime::from_seconds(1), SimTime::from_seconds(1),
                      [&] { ++count; });
    sim.run_until(SimTime::from_seconds(2));
    task.cancel();
  }  // task destroyed; its shared state must not dangle
  sim.run_until(SimTime::from_seconds(5));
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, RejectsNonPositivePeriod) {
  Simulation sim;
  EXPECT_THROW(PeriodicTask(sim, SimTime::zero(), SimTime::zero(), [] {}),
               std::invalid_argument);
}

TEST(PeriodicTask, MoveKeepsTicking) {
  Simulation sim;
  int count = 0;
  PeriodicTask a(sim, SimTime::from_seconds(1), SimTime::from_seconds(1),
                 [&] { ++count; });
  PeriodicTask b = std::move(a);
  sim.run_until(SimTime::from_seconds(3));
  EXPECT_EQ(count, 3);
  b.cancel();
  sim.run_until(SimTime::from_seconds(6));
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTask, DefaultConstructedIsInactive) {
  PeriodicTask task;
  EXPECT_FALSE(task.active());
  task.cancel();  // no-op, must not crash
}

TEST(PeriodicTask, CancelOnMovedFromHandleDoesNotKillLiveTimer) {
  // Regression: moves must transfer ownership, not share it. Cancelling
  // (or destroying) the moved-from husk previously cancelled the live
  // timer out from under the new owner.
  Simulation sim;
  int count = 0;
  PeriodicTask a(sim, SimTime::from_seconds(1), SimTime::from_seconds(1),
                 [&] { ++count; });
  PeriodicTask b = std::move(a);
  EXPECT_FALSE(a.active());
  EXPECT_TRUE(b.active());
  a.cancel();  // must be a no-op on the husk
  sim.run_until(SimTime::from_seconds(3));
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(b.active());
}

TEST(PeriodicTask, MovedFromDestructorDoesNotKillLiveTimer) {
  Simulation sim;
  int count = 0;
  PeriodicTask outer;
  {
    PeriodicTask inner(sim, SimTime::from_seconds(1),
                       SimTime::from_seconds(1), [&] { ++count; });
    outer = std::move(inner);
  }  // inner (moved-from) destroyed; the timer must keep ticking
  sim.run_until(SimTime::from_seconds(3));
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(outer.active());
}

TEST(PeriodicTask, MoveAssignOverActiveTaskCancelsIt) {
  Simulation sim;
  int old_count = 0;
  int new_count = 0;
  PeriodicTask task(sim, SimTime::from_seconds(1), SimTime::from_seconds(1),
                    [&] { ++old_count; });
  sim.run_until(SimTime::from_seconds(2));
  task = PeriodicTask(sim, SimTime::from_seconds(3), SimTime::from_seconds(1),
                      [&] { ++new_count; });
  sim.run_until(SimTime::from_seconds(5));
  EXPECT_EQ(old_count, 2);  // stopped by the assignment
  EXPECT_EQ(new_count, 3);  // t = 3, 4, 5
}

TEST(PeriodicTask, SelfMoveAssignIsSafe) {
  Simulation sim;
  int count = 0;
  PeriodicTask task(sim, SimTime::from_seconds(1), SimTime::from_seconds(1),
                    [&] { ++count; });
  PeriodicTask& alias = task;
  task = std::move(alias);
  sim.run_until(SimTime::from_seconds(2));
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(task.active());
}

}  // namespace
}  // namespace oddci::sim

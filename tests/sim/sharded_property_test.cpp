// Properties of the conservative time-window barrier (sim/sharded.hpp):
//  * no cross-shard delivery executes inside the window it was sent in —
//    everything is clamped to a boundary at or after max(send time, at);
//  * mailbox drains are deterministic: within one boundary, deliveries to
//    a shard run in (source shard, send sequence) order;
//  * K = 1 degenerates to the classic kernel (no clamping, no windows).

#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/sharded.hpp"
#include "sim/simulation.hpp"

namespace oddci::sim {
namespace {

ShardedSimulation::Options opts(std::size_t shards, SimTime window) {
  ShardedSimulation::Options o;
  o.shards = shards;
  o.window = window;
  return o;
}

TEST(ShardedBarrier, CrossShardPostsNeverExecuteInsideTheirSendWindow) {
  const SimTime w = SimTime::from_millis(5);
  ShardedSimulation kernel(opts(4, w));

  // From each shard, at a send time strictly inside a window, post to the
  // next shard "for now" — which must be clamped to the window boundary.
  std::mutex mu;
  struct Obs {
    std::int64_t sent_us;
    std::int64_t ran_us;
  };
  std::vector<Obs> observed;
  for (std::size_t s = 0; s < 4; ++s) {
    kernel.shard(s).schedule_at(
        SimTime::from_micros(1'700 + static_cast<std::int64_t>(s)),
        [&kernel, &mu, &observed, s] {
          const SimTime sent = kernel.shard(s).now();
          const std::size_t dst = (s + 1) % 4;
          kernel.post(s, dst, sent, [&kernel, &mu, &observed, sent, dst] {
            const std::lock_guard<std::mutex> lock(mu);
            observed.push_back({sent.micros(), kernel.shard(dst).now().micros()});
          });
        });
  }
  kernel.run_until(SimTime::from_millis(50));

  ASSERT_EQ(observed.size(), 4u);
  for (const auto& o : observed) {
    // Ran at a boundary strictly after the send instant...
    EXPECT_GT(o.ran_us, o.sent_us);
    // ...specifically the *next* boundary (send was mid-window).
    EXPECT_EQ(o.ran_us % w.micros(), 0);
    EXPECT_EQ(o.ran_us, ((o.sent_us / w.micros()) + 1) * w.micros());
  }
}

TEST(ShardedBarrier, FutureTimestampsSurviveClampingUnchanged) {
  const SimTime w = SimTime::from_millis(5);
  ShardedSimulation kernel(opts(2, w));

  // A post aimed well past the next boundary keeps its timestamp.
  std::int64_t ran_us = -1;
  kernel.shard(0).schedule_at(SimTime::from_micros(100), [&] {
    kernel.post(0, 1, SimTime::from_micros(42'000),
                [&] { ran_us = kernel.shard(1).now().micros(); });
  });
  kernel.run_until(SimTime::from_millis(100));
  EXPECT_EQ(ran_us, 42'000);
}

TEST(ShardedBarrier, MailboxDrainOrderIsSourceShardThenSendSequence) {
  const SimTime w = SimTime::from_millis(5);
  ShardedSimulation kernel(opts(4, w));

  // Shards 1..3 each send two back-to-back messages to shard 0 inside the
  // same window. All six land on the same boundary; the drain must order
  // them (src 1 seq 0), (src 1 seq 1), (src 2 seq 0), ... regardless of
  // which worker thread finished its window first.
  std::vector<std::pair<std::size_t, int>> order;
  for (std::size_t s = 1; s < 4; ++s) {
    kernel.shard(s).schedule_at(
        // Stagger send times *backwards* across shards so arrival order
        // within the window disagrees with shard order on purpose.
        SimTime::from_micros(3'000 - static_cast<std::int64_t>(s) * 500),
        [&kernel, &order, s] {
          const SimTime now = kernel.shard(s).now();
          for (int seq = 0; seq < 2; ++seq) {
            kernel.post(s, 0, now,
                        [&order, s, seq] { order.emplace_back(s, seq); });
          }
        });
  }
  kernel.run_until(SimTime::from_millis(20));

  const std::vector<std::pair<std::size_t, int>> want = {
      {1, 0}, {1, 1}, {2, 0}, {2, 1}, {3, 0}, {3, 1}};
  EXPECT_EQ(order, want);
}

TEST(ShardedBarrier, DrainOrderIsReproducibleAcrossRuns) {
  auto run = [] {
    ShardedSimulation kernel(opts(8, SimTime::from_millis(2)));
    std::vector<std::size_t> order;
    for (std::size_t s = 0; s < 8; ++s) {
      kernel.shard(s).schedule_at(
          SimTime::from_micros(500 + static_cast<std::int64_t>(s) * 7),
          [&kernel, &order, s] {
            // Fan out to every other shard; those echo back to shard 0.
            for (std::size_t dst = 0; dst < 8; ++dst) {
              if (dst == s) continue;
              kernel.post(s, dst, kernel.shard(s).now(),
                          [&kernel, &order, s, dst] {
                            kernel.post(dst, 0, kernel.shard(dst).now(),
                                        [&order, s, dst] {
                                          order.push_back(s * 8 + dst);
                                        });
                          });
            }
          });
    }
    kernel.run_until(SimTime::from_millis(30));
    return order;
  };

  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.size(), 56u);
  EXPECT_EQ(first, second);
}

TEST(ShardedBarrier, GlobalTasksRunAtBoundariesInPostOrder) {
  ShardedSimulation kernel(opts(4, SimTime::from_millis(5)));

  std::vector<int> order;
  std::vector<std::int64_t> at_us;
  kernel.shard(2).schedule_at(SimTime::from_micros(1'000), [&] {
    kernel.post_global(2, kernel.shard(2).now(), [&] {
      order.push_back(0);
      at_us.push_back(kernel.now().micros());
    });
    kernel.post_global(2, kernel.shard(2).now(), [&] {
      order.push_back(1);
      at_us.push_back(kernel.now().micros());
    });
  });
  kernel.run_until(SimTime::from_millis(20));

  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  ASSERT_EQ(at_us.size(), 2u);
  // Both ran at the same boundary, not inside the send window.
  EXPECT_EQ(at_us[0], at_us[1]);
  EXPECT_GE(at_us[0], 5'000);
  EXPECT_EQ(at_us[0] % 5'000, 0);
}

TEST(ShardedBarrier, SingleShardDelegatesWithoutClamping) {
  ShardedSimulation kernel(opts(1, SimTime::from_millis(5)));

  // K = 1: post is schedule_at — same-instant delivery, no boundary snap.
  std::int64_t ran_us = -1;
  kernel.shard(0).schedule_at(SimTime::from_micros(1'234), [&] {
    kernel.post(0, 0, kernel.now(),
                [&] { ran_us = kernel.now().micros(); });
  });
  kernel.run_until(SimTime::from_millis(10));
  EXPECT_EQ(ran_us, 1'234);
  EXPECT_EQ(kernel.cross_posts(), 0u);
  EXPECT_EQ(kernel.windows_run(), 0u);
}

TEST(ShardedBarrier, StopEndsTheRunFromAnyShard) {
  ShardedSimulation kernel(opts(4, SimTime::from_millis(5)));

  bool late_ran = false;
  kernel.shard(3).schedule_at(SimTime::from_millis(7), [&] {
    kernel.post_global(3, kernel.shard(3).now(), [&] { kernel.stop(); });
  });
  kernel.shard(1).schedule_at(SimTime::from_hours(1),
                              [&] { late_ran = true; });
  kernel.run_until(SimTime::from_hours(2));

  EXPECT_FALSE(late_ran);
  EXPECT_LT(kernel.now().micros(), SimTime::from_hours(1).micros());
}

}  // namespace
}  // namespace oddci::sim

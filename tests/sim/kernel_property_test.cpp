// Randomized differential test of the simulation kernel: a trace of random
// schedule/cancel operations is executed both by the kernel and by a naive
// reference executor (sorted vector); the observable execution order must
// match exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace oddci::sim {
namespace {

struct Op {
  std::int64_t at_us;
  int priority;     // 0, 10, 20
  int label;
  bool cancelled = false;
};

class KernelPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelPropertyTest, MatchesReferenceExecutor) {
  util::Random rng(GetParam());

  // Build a random batch of events, some of which get cancelled.
  std::vector<Op> ops;
  const int n = 200 + static_cast<int>(rng.uniform_u64(300));
  for (int i = 0; i < n; ++i) {
    Op op;
    op.at_us = static_cast<std::int64_t>(rng.uniform_u64(1000));  // many ties
    op.priority = static_cast<int>(rng.uniform_u64(3)) * 10;
    op.label = i;
    ops.push_back(op);
  }

  Simulation sim;
  std::vector<int> kernel_order;
  std::vector<EventId> ids;
  for (auto& op : ops) {
    ids.push_back(sim.schedule_at(
        SimTime::from_micros(op.at_us),
        [&kernel_order, label = op.label] { kernel_order.push_back(label); },
        static_cast<EventPriority>(op.priority)));
  }
  // Cancel a random ~20%.
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (rng.bernoulli(0.2)) {
      ops[i].cancelled = true;
      EXPECT_TRUE(sim.cancel(ids[i]));
    }
  }
  sim.run();

  // Reference: stable order by (time, priority, insertion index).
  std::vector<Op> reference;
  for (const auto& op : ops) {
    if (!op.cancelled) reference.push_back(op);
  }
  std::stable_sort(reference.begin(), reference.end(),
                   [](const Op& a, const Op& b) {
                     if (a.at_us != b.at_us) return a.at_us < b.at_us;
                     if (a.priority != b.priority) {
                       return a.priority < b.priority;
                     }
                     return a.label < b.label;
                   });
  std::vector<int> reference_order;
  for (const auto& op : reference) reference_order.push_back(op.label);

  EXPECT_EQ(kernel_order, reference_order);
  EXPECT_EQ(sim.events_executed(), reference_order.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 16));

// Dynamic scheduling property: events scheduled from within callbacks still
// execute in global (time, priority, seq) order.
TEST(KernelProperty, DynamicSchedulingPreservesOrder) {
  util::Random rng(99);
  Simulation sim;
  std::vector<std::int64_t> executed_times;
  std::function<void(int)> spawn = [&](int depth) {
    executed_times.push_back(sim.now().micros());
    if (depth < 4) {
      const auto d1 = SimTime::from_micros(
          static_cast<std::int64_t>(rng.uniform_u64(50)));
      const auto d2 = SimTime::from_micros(
          static_cast<std::int64_t>(rng.uniform_u64(50)));
      sim.schedule_in(d1, [&spawn, depth] { spawn(depth + 1); });
      sim.schedule_in(d2, [&spawn, depth] { spawn(depth + 1); });
    }
  };
  sim.schedule_at(SimTime::zero(), [&spawn] { spawn(0); });
  sim.run();
  EXPECT_TRUE(std::is_sorted(executed_times.begin(), executed_times.end()));
  EXPECT_EQ(executed_times.size(), 31u);  // full binary tree of depth 4
}

}  // namespace
}  // namespace oddci::sim

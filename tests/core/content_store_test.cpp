#include "core/content_store.hpp"

#include <gtest/gtest.h>

#include "broadcast/signature.hpp"
#include "core/wire.hpp"

namespace oddci::core {
namespace {

TEST(ContentStore, PutGetRoundTripThroughWireBytes) {
  ContentStore store;
  ControlMessage m;
  m.type = ControlType::kWakeup;
  m.instance = 3;
  m.image = {1, "image-1", util::Bits::from_megabytes(2)};
  m.sign_with(0xAB);
  const auto id = store.put_control(m);
  const auto got = store.get_control(id);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->instance, 3u);
  EXPECT_EQ(got->image.name, "image-1");
  EXPECT_TRUE(got->verify_with(0xAB));  // signature survives the encoding
  EXPECT_EQ(store.size(), 1u);
  // The stored representation really is the wire encoding.
  const std::string* bytes = store.get_bytes(id);
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(*bytes, wire::encode(m));
}

TEST(ContentStore, IdsAreUniqueAndNonZero) {
  ContentStore store;
  ControlMessage m;
  const auto a = store.put_control(m);
  const auto b = store.put_control(m);
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
}

TEST(ContentStore, UnknownIdReturnsNullopt) {
  ContentStore store;
  EXPECT_FALSE(store.get_control(42).has_value());
  EXPECT_EQ(store.get_bytes(42), nullptr);
  EXPECT_EQ(store.get_control_shared(42), nullptr);
}

TEST(ContentStore, SharedControlIsDecodedOnceAndPrepared) {
  ContentStore store;
  ControlMessage m;
  m.type = ControlType::kWakeup;
  m.instance = 9;
  m.sign_with(0xAB);
  const auto id = store.put_control(m);

  const auto prepared = store.get_control_shared(id);
  ASSERT_NE(prepared, nullptr);
  EXPECT_EQ(prepared->message.instance, 9u);
  // Canonical bytes and digest were computed once, at preparation time.
  EXPECT_EQ(prepared->canonical, m.canonical_bytes());
  EXPECT_EQ(prepared->digest, broadcast::content_digest(prepared->canonical));
  EXPECT_TRUE(prepared->verify_with(0xAB));
  EXPECT_FALSE(prepared->verify_with(0xCD));
  // Every subsequent reader shares the same decoded object: the memo turns
  // per-receiver decodes into one decode per broadcast.
  EXPECT_EQ(store.get_control_shared(id).get(), prepared.get());
}

TEST(ContentStore, EncoderWriterIsReusedAcrossPuts) {
  ContentStore store;
  ControlMessage m;
  m.instance = 1;
  const auto a = store.put_control(m);
  EXPECT_EQ(store.writer_reuses().value(), 0u);  // first encode allocates
  m.instance = 2;
  const auto b = store.put_control(m);
  EXPECT_EQ(store.writer_reuses().value(), 1u);
  // Reuse never corrupts the stored bytes.
  EXPECT_EQ(store.get_control(a)->instance, 1u);
  EXPECT_EQ(store.get_control(b)->instance, 2u);
}

TEST(ContentStore, RemoveDropsPreparedMemo) {
  ContentStore store;
  ControlMessage m;
  const auto id = store.put_control(m);
  ASSERT_NE(store.get_control_shared(id), nullptr);
  EXPECT_TRUE(store.remove(id));
  EXPECT_EQ(store.get_control_shared(id), nullptr);
}

TEST(ContentStore, StoredCopyIsIndependent) {
  ContentStore store;
  ControlMessage m;
  m.instance = 1;
  const auto id = store.put_control(m);
  m.instance = 2;  // mutate the original
  EXPECT_EQ(store.get_control(id)->instance, 1u);
}

TEST(ContentStore, RemoveDropsBlob) {
  ContentStore store;
  ControlMessage m;
  const auto id = store.put_control(m);
  EXPECT_TRUE(store.remove(id));
  EXPECT_FALSE(store.remove(id));
  EXPECT_FALSE(store.get_control(id).has_value());
  EXPECT_EQ(store.size(), 0u);
}

}  // namespace
}  // namespace oddci::core

#include "core/backend.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace oddci::core {
namespace {

/// A scripted PNA stand-in: requests tasks and returns results on command.
class FakePna final : public net::Endpoint {
 public:
  FakePna(sim::Simulation& sim, net::Network& net) : sim_(&sim), net_(&net) {
    id_ = net.register_endpoint(
        this, {util::BitRate::from_mbps(100), util::BitRate::from_mbps(100),
               sim::SimTime::zero()});
  }

  void request(net::NodeId backend, InstanceId instance) {
    net_->send(id_, backend,
               std::make_shared<TaskRequestMessage>(instance, id_));
  }

  void on_message(net::NodeId from, const net::MessagePtr& message) override {
    last_from = from;
    if (message->tag() == kTagTaskAssign) {
      assigns.push_back(
          std::static_pointer_cast<const TaskAssignMessage>(message));
    } else if (message->tag() == kTagNoTask) {
      ++no_task_replies;
    }
  }

  void complete(net::NodeId backend, const TaskAssignMessage& assign) {
    net_->send(id_, backend,
               std::make_shared<TaskResultMessage>(
                   assign.instance(), assign.task_index(), id_,
                   assign.result_size()));
  }

  net::NodeId id() const { return id_; }

  std::vector<std::shared_ptr<const TaskAssignMessage>> assigns;
  int no_task_replies = 0;
  net::NodeId last_from = net::kInvalidNode;

 private:
  sim::Simulation* sim_;
  net::Network* net_;
  net::NodeId id_ = net::kInvalidNode;
};

struct BackendTest : ::testing::Test {
  sim::Simulation sim;
  net::Network net{sim};
  net::LinkSpec fast{util::BitRate::from_mbps(100),
                     util::BitRate::from_mbps(100), sim::SimTime::zero()};

  workload::Job job = workload::make_uniform_job(
      "test", util::Bits::from_megabytes(1), 4, util::Bits::from_bytes(512),
      util::Bits::from_bytes(256), 10.0);
};

TEST_F(BackendTest, AssignsTasksInOrder) {
  Backend backend(sim, net, fast);
  bool complete = false;
  backend.submit(job, 1, [&] { complete = true; });
  EXPECT_TRUE(backend.job_active());
  EXPECT_EQ(backend.tasks_remaining(), 4u);

  FakePna pna(sim, net);
  pna.request(backend.node_id(), 1);
  pna.request(backend.node_id(), 1);
  sim.run();
  ASSERT_EQ(pna.assigns.size(), 2u);
  EXPECT_EQ(pna.assigns[0]->task_index(), 0u);
  EXPECT_EQ(pna.assigns[1]->task_index(), 1u);
  EXPECT_EQ(pna.assigns[0]->input_size(), util::Bits::from_bytes(512));
  EXPECT_DOUBLE_EQ(pna.assigns[0]->reference_seconds(), 10.0);
  EXPECT_FALSE(complete);
}

TEST_F(BackendTest, CompletionFiresWhenAllResultsArrive) {
  Backend backend(sim, net, fast);
  bool complete = false;
  backend.submit(job, 1, [&] { complete = true; });
  FakePna pna(sim, net);
  for (int i = 0; i < 4; ++i) pna.request(backend.node_id(), 1);
  sim.run();
  for (const auto& assign : pna.assigns) {
    pna.complete(backend.node_id(), *assign);
  }
  sim.run();
  EXPECT_TRUE(complete);
  EXPECT_FALSE(backend.job_active());
  EXPECT_EQ(backend.tasks_done(), 4u);
  EXPECT_EQ(backend.metrics().results_received, 4u);
  EXPECT_GE(backend.metrics().makespan_seconds(), 0.0);
  EXPECT_EQ(backend.completion_times().size(), 4u);
}

TEST_F(BackendTest, ExhaustedQueueRepliesNoTask) {
  Backend backend(sim, net, fast);
  backend.submit(job, 1, [] {});
  FakePna pna(sim, net);
  for (int i = 0; i < 5; ++i) pna.request(backend.node_id(), 1);
  sim.run();
  EXPECT_EQ(pna.assigns.size(), 4u);
  EXPECT_EQ(pna.no_task_replies, 1);
  EXPECT_EQ(backend.metrics().requests_denied, 1u);
}

TEST_F(BackendTest, WrongInstanceDenied) {
  Backend backend(sim, net, fast);
  backend.submit(job, 1, [] {});
  FakePna pna(sim, net);
  pna.request(backend.node_id(), 999);
  sim.run();
  EXPECT_TRUE(pna.assigns.empty());
  EXPECT_EQ(pna.no_task_replies, 1);
}

TEST_F(BackendTest, DuplicateResultsCountedOnce) {
  Backend backend(sim, net, fast);
  bool complete = false;
  backend.submit(job, 1, [&] { complete = true; });
  FakePna pna(sim, net);
  for (int i = 0; i < 4; ++i) pna.request(backend.node_id(), 1);
  sim.run();
  for (const auto& assign : pna.assigns) {
    pna.complete(backend.node_id(), *assign);
    pna.complete(backend.node_id(), *assign);  // duplicate
  }
  sim.run();
  EXPECT_TRUE(complete);
  // The duplicate of the last task lands after its first copy completed
  // the job, so it is a late straggler; the other three are duplicates of
  // still-active tasks. Either way only the first copy counts.
  EXPECT_EQ(backend.metrics().duplicate_results, 3u);
  EXPECT_EQ(backend.metrics().late_results, 1u);
  EXPECT_EQ(backend.tasks_done(), 4u);
}

TEST_F(BackendTest, TimeoutRequeuesLostTasks) {
  BackendOptions options;
  options.task_timeout = sim::SimTime::from_seconds(30);
  options.sweep_interval = sim::SimTime::from_seconds(5);
  Backend backend(sim, net, options.task_timeout > sim::SimTime::zero()
                                ? fast
                                : fast,
                  options);
  bool complete = false;
  backend.submit(job, 1, [&] { complete = true; });

  FakePna lost(sim, net), worker(sim, net);
  for (int i = 0; i < 4; ++i) lost.request(backend.node_id(), 1);
  sim.run_until(sim::SimTime::from_seconds(1));
  EXPECT_EQ(lost.assigns.size(), 4u);
  // `lost` never completes anything. After the timeout the tasks re-queue
  // and `worker` picks them up.
  sim.run_until(sim::SimTime::from_seconds(60));
  for (int i = 0; i < 4; ++i) worker.request(backend.node_id(), 1);
  sim.run_until(sim::SimTime::from_seconds(61));
  ASSERT_EQ(worker.assigns.size(), 4u);
  for (const auto& assign : worker.assigns) {
    worker.complete(backend.node_id(), *assign);
  }
  sim.run_until(sim::SimTime::from_seconds(62));
  EXPECT_TRUE(complete);
  EXPECT_EQ(backend.metrics().reassignments, 4u);
}

TEST_F(BackendTest, SetTaskTimeoutTakesEffectMidJob) {
  // The job starts with re-dispatch disabled; enabling it mid-job must
  // start the sweep immediately and recover the already-lost tasks.
  Backend backend(sim, net, fast);
  bool complete = false;
  backend.submit(job, 1, [&] { complete = true; });

  FakePna lost(sim, net), worker(sim, net);
  for (int i = 0; i < 4; ++i) lost.request(backend.node_id(), 1);
  sim.run_until(sim::SimTime::from_seconds(1));
  EXPECT_EQ(lost.assigns.size(), 4u);

  sim.run_until(sim::SimTime::from_seconds(200));
  EXPECT_EQ(backend.metrics().reassignments, 0u);  // no sweeper yet
  backend.set_task_timeout(sim::SimTime::from_seconds(30));
  sim.run_until(sim::SimTime::from_seconds(260));
  for (int i = 0; i < 4; ++i) worker.request(backend.node_id(), 1);
  sim.run_until(sim::SimTime::from_seconds(261));
  ASSERT_EQ(worker.assigns.size(), 4u);
  for (const auto& assign : worker.assigns) {
    worker.complete(backend.node_id(), *assign);
  }
  sim.run_until(sim::SimTime::from_seconds(262));
  EXPECT_TRUE(complete);
  EXPECT_EQ(backend.metrics().reassignments, 4u);

  // And zero cancels the sweep in place.
  backend.set_task_timeout(sim::SimTime::zero());
  EXPECT_EQ(backend.task_timeout(), sim::SimTime::zero());
}

TEST_F(BackendTest, RetryCapFailsTaskAndReportsJobFailure) {
  BackendOptions options;
  options.task_timeout = sim::SimTime::from_seconds(20);
  options.sweep_interval = sim::SimTime::from_seconds(5);
  options.max_task_retries = 2;
  Backend backend(sim, net, fast, options);
  bool complete = false;
  backend.submit(job, 1, [&] { complete = true; });

  // A PNA that takes every assignment and never completes any: each task
  // times out, re-queues twice, then fails — and the job fails with it.
  FakePna sink(sim, net);
  sim.schedule_timer_at(
      sim::SimTime::from_seconds(1),
      [&] {
        for (int i = 0; i < 4; ++i) sink.request(backend.node_id(), 1);
      },
      sim::SimTime::from_seconds(10));
  sim.run_until(sim::SimTime::from_seconds(600));

  EXPECT_TRUE(complete);  // on_complete fires on failure too...
  EXPECT_TRUE(backend.job_failed());
  EXPECT_FALSE(backend.job_active());
  EXPECT_EQ(backend.metrics().tasks_failed, 4u);
  EXPECT_EQ(backend.tasks_done(), 0u);
}

TEST_F(BackendTest, SubmitValidation) {
  Backend backend(sim, net, fast);
  backend.submit(job, 1, [] {});
  EXPECT_THROW(backend.submit(job, 2, [] {}), std::logic_error);

  Backend other(sim, net, fast);
  EXPECT_THROW(other.submit(job, kNoInstance, [] {}), std::invalid_argument);
  workload::Job bad = job;
  bad.tasks.clear();
  EXPECT_THROW(other.submit(bad, 1, [] {}), std::invalid_argument);
}

TEST_F(BackendTest, ClockStartBackdatesMakespan) {
  Backend backend(sim, net, fast);
  sim.run_until(sim::SimTime::from_seconds(100));
  bool complete = false;
  backend.submit(job, 1, [&] { complete = true; },
                 sim::SimTime::from_seconds(40));
  FakePna pna(sim, net);
  for (int i = 0; i < 4; ++i) pna.request(backend.node_id(), 1);
  sim.run_until(sim::SimTime::from_seconds(101));
  for (const auto& assign : pna.assigns) {
    pna.complete(backend.node_id(), *assign);
  }
  sim.run_until(sim::SimTime::from_seconds(102));
  ASSERT_TRUE(complete);
  // Completed shortly after t=101 with the clock started at t=40.
  EXPECT_GT(backend.metrics().makespan_seconds(), 60.0);
}

TEST_F(BackendTest, ResubmitAfterCompletionWorks) {
  Backend backend(sim, net, fast);
  bool first = false, second = false;
  backend.submit(job, 1, [&] { first = true; });
  FakePna pna(sim, net);
  for (int i = 0; i < 4; ++i) pna.request(backend.node_id(), 1);
  sim.run();
  for (const auto& assign : pna.assigns) {
    pna.complete(backend.node_id(), *assign);
  }
  sim.run();
  ASSERT_TRUE(first);
  backend.submit(job, 2, [&] { second = true; });
  EXPECT_TRUE(backend.job_active());
  pna.assigns.clear();
  for (int i = 0; i < 4; ++i) pna.request(backend.node_id(), 2);
  sim.run();
  for (const auto& assign : pna.assigns) {
    pna.complete(backend.node_id(), *assign);
  }
  sim.run();
  EXPECT_TRUE(second);
}

}  // namespace
}  // namespace oddci::core

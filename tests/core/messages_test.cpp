#include "core/messages.hpp"

#include <gtest/gtest.h>

namespace oddci::core {
namespace {

ControlMessage sample_wakeup() {
  ControlMessage m;
  m.type = ControlType::kWakeup;
  m.instance = 7;
  m.probability = 0.25;
  m.requirements.min_ram = util::Bits::from_megabytes(128);
  m.requirements.device_kind = "stb-st7109";
  m.heartbeat_interval = sim::SimTime::from_seconds(30);
  m.image = {3, "image-3", util::Bits::from_megabytes(10)};
  m.controller_node = 1;
  m.backend_node = 2;
  return m;
}

TEST(ControlMessage, SignVerifyRoundTrip) {
  ControlMessage m = sample_wakeup();
  m.sign_with(0xABCD);
  EXPECT_TRUE(m.verify_with(0xABCD));
  EXPECT_FALSE(m.verify_with(0xABCE));
}

TEST(ControlMessage, AnyFieldChangeBreaksSignature) {
  ControlMessage m = sample_wakeup();
  m.sign_with(1);

  auto tampered = m;
  tampered.instance = 8;
  EXPECT_FALSE(tampered.verify_with(1));

  tampered = m;
  tampered.probability = 0.26;
  EXPECT_FALSE(tampered.verify_with(1));

  tampered = m;
  tampered.type = ControlType::kReset;
  EXPECT_FALSE(tampered.verify_with(1));

  tampered = m;
  tampered.image.size = util::Bits::from_megabytes(11);
  EXPECT_FALSE(tampered.verify_with(1));

  tampered = m;
  tampered.backend_node = 3;
  EXPECT_FALSE(tampered.verify_with(1));

  tampered = m;
  tampered.requirements.device_kind = "other";
  EXPECT_FALSE(tampered.verify_with(1));
}

TEST(ControlMessage, UnsignedDoesNotVerify) {
  const ControlMessage m = sample_wakeup();
  EXPECT_FALSE(m.verify_with(1));
}

TEST(DirectMessages, WireSizesIncludePayloads) {
  const HeartbeatMessage hb(1, PnaState::kBusy, 7);
  EXPECT_EQ(hb.wire_size(), kHeaderBits);
  EXPECT_EQ(hb.tag(), kTagHeartbeat);
  EXPECT_EQ(hb.state(), PnaState::kBusy);

  const TaskAssignMessage assign(7, 42, util::Bits::from_bytes(512),
                                 util::Bits::from_bytes(256), 30.0);
  EXPECT_EQ(assign.wire_size().count(),
            kHeaderBits.count() + 512 * 8);
  EXPECT_EQ(assign.result_size(), util::Bits::from_bytes(256));
  EXPECT_EQ(assign.tag(), kTagTaskAssign);

  const TaskResultMessage result(7, 42, 1, util::Bits::from_bytes(256));
  EXPECT_EQ(result.wire_size().count(), kHeaderBits.count() + 256 * 8);
  EXPECT_EQ(result.tag(), kTagTaskResult);

  const TaskRequestMessage req(7, 1);
  EXPECT_EQ(req.wire_size(), kHeaderBits);

  const NoTaskMessage none(7);
  EXPECT_EQ(none.wire_size(), kHeaderBits);
  EXPECT_EQ(none.tag(), kTagNoTask);

  const HeartbeatReplyMessage reply(7, HeartbeatCommand::kReset);
  EXPECT_EQ(reply.command(), HeartbeatCommand::kReset);

  const BlobMessage blob(kTagRemoteQuery, 99, util::Bits::from_kilobytes(4));
  EXPECT_EQ(blob.wire_size().count(), kHeaderBits.count() + 4 * 1024 * 8);
  EXPECT_EQ(blob.correlation(), 99u);
}

}  // namespace
}  // namespace oddci::core

#include "core/provider.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace oddci::core {
namespace {

constexpr auto kMbps = [](double m) { return util::BitRate::from_mbps(m); };

class BeatSource final : public net::Endpoint {
 public:
  BeatSource(net::Network& net) : net_(&net) {
    id_ = net.register_endpoint(
        this, {kMbps(100), kMbps(100), sim::SimTime::zero()});
  }
  void beat(net::NodeId controller, PnaState state, InstanceId instance) {
    net_->send(id_, controller,
               std::make_shared<HeartbeatMessage>(id_, state, instance));
  }
  void on_message(net::NodeId, const net::MessagePtr&) override {}

 private:
  net::Network* net_;
  net::NodeId id_;
};

struct ProviderTest : ::testing::Test {
  sim::Simulation sim;
  net::Network net{sim};
  broadcast::BroadcastChannel channel{
      sim,
      broadcast::TransportStream(kMbps(1.1), util::BitRate::from_kbps(100)),
      3};
  ContentStore store;
  Controller controller{sim, net, channel, store, 1,
                        net::LinkSpec{kMbps(1000), kMbps(1000),
                                      sim::SimTime::zero()}};
  Provider provider{controller};

  InstanceSpec spec(std::size_t target) {
    InstanceSpec s;
    s.target_size = target;
    s.image_size = util::Bits::from_megabytes(1);
    return s;
  }
};

TEST_F(ProviderTest, RequestCreatesInstance) {
  controller.deploy_pna();
  const InstanceId id = provider.request_instance(spec(2), 99);
  EXPECT_NE(id, kNoInstance);
  EXPECT_EQ(provider.status(id)->target_size, 2u);
  EXPECT_EQ(provider.stats().instances_requested, 1u);
}

TEST_F(ProviderTest, ReadyCallbackFiresWhenTargetReached) {
  controller.deploy_pna();
  int ready_calls = 0;
  sim::SimTime ready_time;
  const InstanceId id = provider.request_instance(
      spec(2), 99, [&](InstanceId i, sim::SimTime at) {
        ++ready_calls;
        ready_time = at;
        EXPECT_NE(i, kNoInstance);
      });

  BeatSource a(net), b(net);
  sim.run_until(sim::SimTime::from_seconds(10));
  a.beat(controller.node_id(), PnaState::kBusy, id);
  sim.run_until(sim::SimTime::from_seconds(11));
  EXPECT_EQ(ready_calls, 0);  // only 1 of 2
  b.beat(controller.node_id(), PnaState::kBusy, id);
  sim.run_until(sim::SimTime::from_seconds(12));
  EXPECT_EQ(ready_calls, 1);
  EXPECT_GT(ready_time.seconds(), 10.0);

  // Shrinking and regrowing must not re-fire the one-shot callback.
  a.beat(controller.node_id(), PnaState::kIdle, kNoInstance);
  a.beat(controller.node_id(), PnaState::kBusy, id);
  sim.run_until(sim::SimTime::from_seconds(13));
  EXPECT_EQ(ready_calls, 1);
}

TEST_F(ProviderTest, ReleaseCancelsPendingReadiness) {
  controller.deploy_pna();
  int ready_calls = 0;
  const InstanceId id = provider.request_instance(
      spec(1), 99, [&](InstanceId, sim::SimTime) { ++ready_calls; });
  provider.release_instance(id);
  BeatSource a(net);
  a.beat(controller.node_id(), PnaState::kBusy, id);
  sim.run_until(sim.now() + sim::SimTime::from_seconds(5));
  EXPECT_EQ(ready_calls, 0);
  EXPECT_EQ(provider.stats().instances_released, 1u);
  EXPECT_FALSE(provider.status(id)->active);
}

TEST_F(ProviderTest, ResizeDelegates) {
  controller.deploy_pna();
  const InstanceId id = provider.request_instance(spec(2), 99);
  provider.resize_instance(id, 7);
  EXPECT_EQ(provider.status(id)->target_size, 7u);
  EXPECT_EQ(provider.stats().resizes, 1u);
}

}  // namespace
}  // namespace oddci::core

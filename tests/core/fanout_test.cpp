// System-level contract of the broadcast fan-out fast path: a deployed
// population shares one decoded, once-verified control message (the
// acceptance criterion: `verify_cache.hit` == N-1 for N receivers handling
// one broadcast), heartbeats are served from the pool once steady state
// laps the ring, and turning the fast path off removes every fast-path
// cell from the snapshot instead of leaving phantom zeros.

#include <gtest/gtest.h>

#include "core/system.hpp"

namespace oddci::core {
namespace {

SystemConfig fanout_config() {
  SystemConfig config;
  config.receivers = 400;
  config.channels = 2;
  config.aggregators = 4;
  config.seed = 20260806;
  // Fast heartbeats so the population laps the 4096-slot pool ring well
  // within the simulated window (400 agents * ~60 beats).
  config.controller.default_heartbeat = sim::SimTime::from_seconds(10);
  return config;
}

TEST(FanoutFastPath, BroadcastVerifiesOnceAcrossThePopulation) {
  SystemConfig config = fanout_config();
  ASSERT_TRUE(config.fanout_fast_path);  // on by default
  OddciSystem system(config);
  ASSERT_NE(system.verify_cache(), nullptr);
  ASSERT_NE(system.heartbeat_pool(), nullptr);

  // One broadcast: the PNA deployment hello, read by all 400 receivers.
  system.controller().deploy_pna();
  system.simulation().run_until(sim::SimTime::from_minutes(10));

  const auto snap = system.metrics_snapshot();
  const auto seen = snap.counter_value("pna.control_messages_seen");
  EXPECT_EQ(seen, config.receivers);
  // Exactly one signature hash for the whole population...
  EXPECT_EQ(snap.counter_value("verify_cache.miss"), 1u);
  // ...and every other receiver was served from the cache: hits == N - 1.
  EXPECT_EQ(snap.counter_value("verify_cache.hit"), seen - 1);
  EXPECT_EQ(snap.counter_value("pna.signature_failures", 0), 0u);

  // Steady-state heartbeats recycle pooled messages instead of allocating.
  EXPECT_GT(snap.counter_value("heartbeat.pool_reused"), 0u);
  EXPECT_GT(snap.counter_value("heartbeat.pooled_bytes"), 0u);
  // The writer-reuse cell is registered (value depends on how many controls
  // the Controller staged after the first).
  EXPECT_NE(snap.find_counter("wire.writer_reuse"), nullptr);
}

TEST(FanoutFastPath, OffModeRunsWithoutFastPathCells) {
  SystemConfig config = fanout_config();
  config.fanout_fast_path = false;
  OddciSystem system(config);
  EXPECT_EQ(system.verify_cache(), nullptr);
  EXPECT_EQ(system.heartbeat_pool(), nullptr);

  system.controller().deploy_pna();
  system.simulation().run_until(sim::SimTime::from_minutes(10));

  // The population still verifies (per receiver) and heartbeats normally.
  const auto snap = system.metrics_snapshot();
  EXPECT_EQ(snap.counter_value("pna.control_messages_seen"),
            config.receivers);
  EXPECT_EQ(snap.counter_value("pna.signature_failures", 0), 0u);

  // No phantom zero cells: off-mode snapshots simply lack the fast-path
  // counters rather than reporting them as zero.
  EXPECT_EQ(snap.find_counter("verify_cache.hit"), nullptr);
  EXPECT_EQ(snap.find_counter("verify_cache.miss"), nullptr);
  EXPECT_EQ(snap.find_counter("heartbeat.pool_reused"), nullptr);
  EXPECT_EQ(snap.find_counter("wire.writer_reuse"), nullptr);
  EXPECT_EQ(snap.find_gauge("verify_cache.size"), nullptr);
}

TEST(FanoutFastPath, DistinctBroadcastsEachCostOneHash) {
  // A second, different control message (an instance wakeup) must miss the
  // cache once and then be shared by every receiver that handles it.
  SystemConfig config = fanout_config();
  OddciSystem system(config);
  system.controller().deploy_pna();
  system.simulation().run_until(sim::SimTime::from_seconds(120));
  const auto after_deploy =
      system.metrics_snapshot().counter_value("verify_cache.miss");
  EXPECT_EQ(after_deploy, 1u);

  InstanceSpec spec;
  spec.name = "fanout-wakeup";
  spec.target_size = 40;
  spec.image_size = util::Bits::from_megabytes(1);
  system.provider().request_instance(spec, system.backend().node_id());
  system.simulation().run_until(sim::SimTime::from_minutes(10));

  const auto snap = system.metrics_snapshot();
  // Wakeup (and any follow-up controls) each hashed once; the population
  // count dwarfs the distinct-message count.
  const auto misses = snap.counter_value("verify_cache.miss");
  const auto hits = snap.counter_value("verify_cache.hit");
  const auto seen = snap.counter_value("pna.control_messages_seen");
  EXPECT_GT(misses, 1u);
  EXPECT_LT(misses, 16u);
  EXPECT_EQ(hits + misses, seen);
}

}  // namespace
}  // namespace oddci::core

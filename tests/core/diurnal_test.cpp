#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/churn.hpp"

namespace oddci::core {
namespace {

struct DiurnalTest : ::testing::Test {
  sim::Simulation sim;
  net::Network net{sim};
  net::LinkSpec link{util::BitRate::from_mbps(1), util::BitRate::from_mbps(1),
                     sim::SimTime::zero()};
  std::vector<std::unique_ptr<dtv::Receiver>> receivers;
  std::vector<dtv::Receiver*> raw;

  void make_receivers(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      receivers.push_back(std::make_unique<dtv::Receiver>(
          sim, net, dtv::DeviceProfile::stb_st7109(), link));
      raw.push_back(receivers.back().get());
    }
  }
};

TEST_F(DiurnalTest, OptionsValidation) {
  DiurnalOptions bad;
  bad.evening_start_hour_mean = 24.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = DiurnalOptions{};
  bad.viewing_hours_median = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = DiurnalOptions{};
  bad.standby_probability = 1.2;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = DiurnalOptions{};
  bad.viewing_hours_sigma = -0.1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  EXPECT_NO_THROW(DiurnalOptions{}.validate());
}

TEST_F(DiurnalTest, PrimeTimePeaksAndNightIsQuiet) {
  make_receivers(600);
  DiurnalAudience audience(sim, raw, 5, DiurnalOptions{});
  audience.start(/*start_hour=*/0.0);  // simulation starts at midnight

  // 03:00 — almost nobody watching.
  sim.run_until(sim::SimTime::from_hours(3));
  const std::size_t night_in_use = audience.in_use_count();
  // 20:30 — prime time.
  sim.run_until(sim::SimTime::from_hours(20.5));
  const std::size_t prime_in_use = audience.in_use_count();

  EXPECT_LT(night_in_use, 30u);
  EXPECT_GT(prime_in_use, 200u);
  EXPECT_GT(prime_in_use, 5 * std::max<std::size_t>(night_in_use, 1));
}

TEST_F(DiurnalTest, StandbyHabitControlsIdleMode) {
  make_receivers(400);
  DiurnalOptions options;
  options.standby_probability = 1.0;  // everyone leaves the box in standby
  DiurnalAudience all_standby(sim, raw, 6, options);
  all_standby.start(0.0);
  sim.run_until(sim::SimTime::from_hours(4));
  EXPECT_EQ(all_standby.off_count(), 0u);
}

TEST_F(DiurnalTest, RhythmRepeatsAcrossDays) {
  make_receivers(300);
  DiurnalAudience audience(sim, raw, 7, DiurnalOptions{});
  audience.start(0.0);
  sim.run_until(sim::SimTime::from_hours(21));
  const std::size_t day1 = audience.in_use_count();
  sim.run_until(sim::SimTime::from_hours(45));  // 21:00 next day
  const std::size_t day2 = audience.in_use_count();
  // Day 2 prime time is populated again (schedules are re-planned daily).
  EXPECT_GT(day2, 100u);
  EXPECT_NEAR(static_cast<double>(day2), static_cast<double>(day1),
              0.35 * static_cast<double>(day1));
}

TEST_F(DiurnalTest, CountsPartitionPopulation) {
  make_receivers(200);
  DiurnalAudience audience(sim, raw, 8, DiurnalOptions{});
  audience.start(12.0);
  sim.run_until(sim::SimTime::from_hours(6));
  EXPECT_EQ(audience.in_use_count() + audience.standby_count() +
                audience.off_count(),
            200u);
}

}  // namespace
}  // namespace oddci::core

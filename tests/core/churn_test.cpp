#include "core/churn.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace oddci::core {
namespace {

struct ChurnTest : ::testing::Test {
  sim::Simulation sim;
  net::Network net{sim};
  net::LinkSpec link{util::BitRate::from_mbps(1), util::BitRate::from_mbps(1),
                     sim::SimTime::zero()};
  std::vector<std::unique_ptr<dtv::Receiver>> receivers;
  std::vector<dtv::Receiver*> raw;

  void make_receivers(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      receivers.push_back(std::make_unique<dtv::Receiver>(
          sim, net, dtv::DeviceProfile::reference_stb(), link));
      raw.push_back(receivers.back().get());
    }
  }

  std::size_t powered_count() const {
    std::size_t on = 0;
    for (const auto& r : receivers) {
      if (r->powered()) ++on;
    }
    return on;
  }
};

TEST_F(ChurnTest, OptionsValidation) {
  ChurnOptions bad;
  bad.mean_on_seconds = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ChurnOptions{};
  bad.in_use_probability = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ChurnOptions{};
  bad.initial_on_fraction = 2.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  ChurnOptions ok;
  EXPECT_NO_THROW(ok.validate());
  EXPECT_NEAR(ok.steady_state_on_fraction(), 3600.0 / 5400.0, 1e-12);
}

TEST_F(ChurnTest, StartSamplesInitialPowerStates) {
  make_receivers(500);
  ChurnOptions options;
  options.mean_on_seconds = 3600;
  options.mean_off_seconds = 3600;  // steady-state 50% on
  ChurnProcess churn(sim, raw, 1, options);
  churn.start();
  const double frac = static_cast<double>(powered_count()) / 500.0;
  EXPECT_NEAR(frac, 0.5, 0.08);
}

TEST_F(ChurnTest, InitialOnFractionOverride) {
  make_receivers(300);
  ChurnOptions options;
  options.initial_on_fraction = 1.0;
  ChurnProcess churn(sim, raw, 2, options);
  churn.start();
  EXPECT_EQ(powered_count(), 300u);
}

TEST_F(ChurnTest, TogglesAccumulateOverTime) {
  make_receivers(100);
  ChurnOptions options;
  options.mean_on_seconds = 60;
  options.mean_off_seconds = 60;
  ChurnProcess churn(sim, raw, 3, options);
  churn.start();
  sim.run_until(sim::SimTime::from_minutes(30));
  // Expected ~ 100 nodes * 30 min / (1 min dwell) / 2 per direction.
  EXPECT_GT(churn.stats().switch_ons + churn.stats().switch_offs, 1000u);
  // The on-fraction stays near steady state.
  EXPECT_NEAR(static_cast<double>(powered_count()) / 100.0, 0.5, 0.15);
}

TEST_F(ChurnTest, InUseVsStandbySampling) {
  make_receivers(400);
  ChurnOptions options;
  options.initial_on_fraction = 1.0;
  options.in_use_probability = 0.25;
  ChurnProcess churn(sim, raw, 4, options);
  churn.start();
  std::size_t in_use = 0;
  for (const auto& r : receivers) {
    if (r->power_mode() == dtv::PowerMode::kInUse) ++in_use;
  }
  EXPECT_NEAR(static_cast<double>(in_use) / 400.0, 0.25, 0.07);
}

TEST_F(ChurnTest, StopFreezesPopulation) {
  make_receivers(50);
  ChurnOptions options;
  options.mean_on_seconds = 10;
  options.mean_off_seconds = 10;
  ChurnProcess churn(sim, raw, 5, options);
  churn.start();
  sim.run_until(sim::SimTime::from_seconds(100));
  churn.stop();
  const auto before = churn.stats();
  sim.run_until(sim::SimTime::from_seconds(200));
  EXPECT_EQ(churn.stats().switch_ons, before.switch_ons);
  EXPECT_EQ(churn.stats().switch_offs, before.switch_offs);
}

TEST_F(ChurnTest, DeterministicUnderSeed) {
  make_receivers(100);
  ChurnOptions options;
  auto run_once = [&](std::uint64_t seed) {
    ChurnProcess churn(sim, raw, seed, options);
    churn.start();
    std::vector<bool> states;
    for (const auto& r : receivers) states.push_back(r->powered());
    churn.stop();
    return states;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

}  // namespace
}  // namespace oddci::core

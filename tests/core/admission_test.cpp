// Provider admission-control queue tests.

#include <gtest/gtest.h>

#include "core/provider.hpp"

namespace oddci::core {
namespace {

constexpr auto kMbps = [](double m) { return util::BitRate::from_mbps(m); };

class BeatSource final : public net::Endpoint {
 public:
  explicit BeatSource(net::Network& net) : net_(&net) {
    id_ = net.register_endpoint(
        this, {kMbps(100), kMbps(100), sim::SimTime::zero()});
  }
  void beat(net::NodeId controller, PnaState state,
            InstanceId instance = kNoInstance) {
    net_->send(id_, controller,
               std::make_shared<HeartbeatMessage>(id_, state, instance));
  }
  void on_message(net::NodeId, const net::MessagePtr&) override {}
  [[nodiscard]] net::NodeId id() const { return id_; }

 private:
  net::Network* net_;
  net::NodeId id_;
};

struct AdmissionTest : ::testing::Test {
  sim::Simulation sim;
  net::Network net{sim};
  broadcast::BroadcastChannel channel{
      sim, broadcast::TransportStream(kMbps(1.1),
                                      util::BitRate::from_kbps(100)),
      3};
  ContentStore store;
  Controller controller{sim, net, channel, store, 1,
                        net::LinkSpec{kMbps(1000), kMbps(1000),
                                      sim::SimTime::zero()}};
  Provider provider{controller, sim, AdmissionOptions{}};
  std::vector<std::unique_ptr<BeatSource>> agents;

  void SetUp() override { controller.deploy_pna(); }

  /// Announce `n` idle agents so the idle-pool estimate covers them.
  void announce_idle(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      agents.push_back(std::make_unique<BeatSource>(net));
      agents.back()->beat(controller.node_id(), PnaState::kIdle);
    }
    sim.run_until(sim.now() + sim::SimTime::from_seconds(1));
  }

  InstanceSpec spec(std::size_t target) {
    InstanceSpec s;
    s.target_size = target;
    s.image_size = util::Bits::from_megabytes(1);
    return s;
  }
};

TEST_F(AdmissionTest, AdmitsImmediatelyWhenCapacityExists) {
  announce_idle(20);
  InstanceId admitted_id = kNoInstance;
  provider.enqueue_request(spec(10), 99,
                           [&](Provider::Ticket, InstanceId id) {
                             admitted_id = id;
                           });
  EXPECT_NE(admitted_id, kNoInstance);
  EXPECT_EQ(provider.queued_requests(), 0u);
  EXPECT_EQ(provider.stats().requests_admitted, 1u);
}

TEST_F(AdmissionTest, QueuesWhenPoolTooSmall) {
  announce_idle(5);
  InstanceId admitted_id = kNoInstance;
  provider.enqueue_request(spec(10), 99,
                           [&](Provider::Ticket, InstanceId id) {
                             admitted_id = id;
                           });
  EXPECT_EQ(admitted_id, kNoInstance);
  EXPECT_EQ(provider.queued_requests(), 1u);

  // More capacity appears: the periodic review admits the request.
  announce_idle(10);
  sim.run_until(sim.now() + sim::SimTime::from_seconds(31));
  EXPECT_NE(admitted_id, kNoInstance);
  EXPECT_EQ(provider.queued_requests(), 0u);
}

TEST_F(AdmissionTest, FifoOrderIsStrict) {
  announce_idle(8);
  std::vector<int> admitted;
  // Head request too large; the second would fit but must wait behind it.
  provider.enqueue_request(spec(20), 99,
                           [&](Provider::Ticket, InstanceId) {
                             admitted.push_back(1);
                           });
  provider.enqueue_request(spec(4), 99,
                           [&](Provider::Ticket, InstanceId) {
                             admitted.push_back(2);
                           });
  sim.run_until(sim.now() + sim::SimTime::from_seconds(60));
  EXPECT_TRUE(admitted.empty());
  EXPECT_EQ(provider.queued_requests(), 2u);

  announce_idle(20);
  sim.run_until(sim.now() + sim::SimTime::from_seconds(31));
  // Both admitted, head first.
  EXPECT_EQ(admitted, (std::vector<int>{1, 2}));
}

TEST_F(AdmissionTest, CancelRemovesQueuedRequest) {
  announce_idle(2);
  const auto ticket = provider.enqueue_request(spec(10), 99);
  EXPECT_EQ(provider.queued_requests(), 1u);
  EXPECT_TRUE(provider.cancel_request(ticket));
  EXPECT_FALSE(provider.cancel_request(ticket));
  EXPECT_EQ(provider.queued_requests(), 0u);
  EXPECT_EQ(provider.stats().requests_cancelled, 1u);
}

TEST_F(AdmissionTest, ReleaseTriggersReview) {
  announce_idle(12);
  // First instance consumes the pool (agents report busy for it).
  const InstanceId first = provider.request_instance(spec(10), 99);
  for (std::size_t i = 0; i < 10; ++i) {
    agents[i]->beat(controller.node_id(), PnaState::kBusy, first);
  }
  sim.run_until(sim.now() + sim::SimTime::from_seconds(1));
  ASSERT_EQ(controller.idle_pool_estimate(), 2u);

  InstanceId admitted_id = kNoInstance;
  provider.enqueue_request(spec(10), 99,
                           [&](Provider::Ticket, InstanceId id) {
                             admitted_id = id;
                           });
  EXPECT_EQ(admitted_id, kNoInstance);

  // Releasing the first instance frees its members; once they report idle
  // again the queue head is admitted.
  provider.release_instance(first);
  for (std::size_t i = 0; i < 10; ++i) {
    agents[i]->beat(controller.node_id(), PnaState::kIdle);
  }
  sim.run_until(sim.now() + sim::SimTime::from_seconds(31));
  EXPECT_NE(admitted_id, kNoInstance);
}

TEST_F(AdmissionTest, CapacityMarginRespected) {
  Controller other_controller{sim, net, channel, store, 2,
                              net::LinkSpec{kMbps(1000), kMbps(1000),
                                            sim::SimTime::zero()}};
  other_controller.deploy_pna();
  AdmissionOptions strict;
  strict.capacity_margin = 2.0;
  Provider strict_provider{other_controller, sim, strict};

  std::vector<std::unique_ptr<BeatSource>> local;
  for (int i = 0; i < 15; ++i) {
    local.push_back(std::make_unique<BeatSource>(net));
    local.back()->beat(other_controller.node_id(), PnaState::kIdle);
  }
  sim.run_until(sim.now() + sim::SimTime::from_seconds(1));

  // 15 idle, target 10, margin 2.0 => needs 20: queued.
  strict_provider.enqueue_request(spec(10), 99);
  EXPECT_EQ(strict_provider.queued_requests(), 1u);
}

TEST_F(AdmissionTest, Validation) {
  EXPECT_THROW(provider.enqueue_request(spec(0), 99), std::invalid_argument);
  Provider plain{controller};  // no simulation: queue unavailable
  EXPECT_THROW(plain.enqueue_request(spec(1), 99), std::logic_error);
  AdmissionOptions bad;
  bad.capacity_margin = 0.0;
  EXPECT_THROW(Provider(controller, sim, bad), std::invalid_argument);
  bad = AdmissionOptions{};
  bad.review_interval = sim::SimTime::zero();
  EXPECT_THROW(Provider(controller, sim, bad), std::invalid_argument);
}

}  // namespace
}  // namespace oddci::core

#include "core/aggregator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace oddci::core {
namespace {

constexpr auto kMbps = [](double m) { return util::BitRate::from_mbps(m); };

class ReportSink final : public net::Endpoint {
 public:
  void on_message(net::NodeId, const net::MessagePtr& message) override {
    if (message->tag() == kTagAggregateReport) {
      reports.push_back(
          std::static_pointer_cast<const AggregateReportMessage>(message));
    }
  }
  std::vector<std::shared_ptr<const AggregateReportMessage>> reports;
};

class BeatSource final : public net::Endpoint {
 public:
  explicit BeatSource(net::Network& net) : net_(&net) {
    id_ = net.register_endpoint(
        this, {kMbps(100), kMbps(100), sim::SimTime::zero()});
  }
  void beat(net::NodeId to, std::uint64_t pna, PnaState state,
            InstanceId instance) {
    net_->send(id_, to,
               std::make_shared<HeartbeatMessage>(pna, state, instance));
  }
  void on_message(net::NodeId, const net::MessagePtr&) override {}
  [[nodiscard]] net::NodeId id() const { return id_; }

 private:
  net::Network* net_;
  net::NodeId id_;
};

struct AggregatorTest : ::testing::Test {
  sim::Simulation sim;
  net::Network net{sim};
  ReportSink controller;
  net::NodeId controller_id = net.register_endpoint(
      &controller, {kMbps(1000), kMbps(1000), sim::SimTime::zero()});
  AggregatorOptions options;
};

TEST_F(AggregatorTest, ConsolidatesWindowIntoOneReport) {
  HeartbeatAggregator agg(sim, net, controller_id,
                          {kMbps(1000), kMbps(1000), sim::SimTime::zero()},
                          options);
  BeatSource src(net);
  for (std::uint64_t pna = 0; pna < 50; ++pna) {
    src.beat(agg.node_id(), pna, PnaState::kIdle, kNoInstance);
  }
  // The flush fires at t = 10 s; allow the report's network delivery.
  sim.run_until(sim::SimTime::from_seconds(11));
  ASSERT_EQ(controller.reports.size(), 1u);
  EXPECT_EQ(controller.reports[0]->entries().size(), 50u);
  EXPECT_EQ(agg.stats().heartbeats_received, 50u);
  EXPECT_EQ(agg.stats().reports_sent, 1u);
  EXPECT_EQ(agg.stats().entries_forwarded, 50u);
}

TEST_F(AggregatorTest, LatestStateWinsWithinWindow) {
  HeartbeatAggregator agg(sim, net, controller_id,
                          {kMbps(1000), kMbps(1000), sim::SimTime::zero()},
                          options);
  BeatSource src(net);
  src.beat(agg.node_id(), 7, PnaState::kIdle, kNoInstance);
  src.beat(agg.node_id(), 7, PnaState::kBusy, 3);
  sim.run_until(sim::SimTime::from_seconds(11));
  ASSERT_EQ(controller.reports.size(), 1u);
  const auto& entries = controller.reports[0]->entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].pna_id, 7u);
  EXPECT_EQ(entries[0].state, PnaState::kBusy);
  EXPECT_EQ(entries[0].instance, 3u);
}

TEST_F(AggregatorTest, EmptyWindowsSendNothing) {
  HeartbeatAggregator agg(sim, net, controller_id,
                          {kMbps(1000), kMbps(1000), sim::SimTime::zero()},
                          options);
  sim.run_until(sim::SimTime::from_seconds(60));
  EXPECT_TRUE(controller.reports.empty());
  EXPECT_EQ(agg.stats().reports_sent, 0u);
}

TEST_F(AggregatorTest, SteadyHeartbeatsRefreshEveryWindow) {
  HeartbeatAggregator agg(sim, net, controller_id,
                          {kMbps(1000), kMbps(1000), sim::SimTime::zero()},
                          options);
  BeatSource src(net);
  sim::PeriodicTask beats(sim, sim::SimTime::from_seconds(1),
                          sim::SimTime::from_seconds(5), [&] {
                            src.beat(agg.node_id(), 1, PnaState::kIdle,
                                     kNoInstance);
                          });
  sim.run_until(sim::SimTime::from_seconds(45));
  beats.cancel();
  // One report per 10 s window, each carrying the PNA's fresh state — this
  // is what keeps the Controller's liveness view from going stale.
  EXPECT_GE(controller.reports.size(), 4u);
}

TEST_F(AggregatorTest, ReportWireSizeScalesWithEntries) {
  std::vector<AggregateReportMessage::Entry> one = {{1, PnaState::kIdle, 0}};
  std::vector<AggregateReportMessage::Entry> many(100,
                                                  {1, PnaState::kIdle, 0});
  const AggregateReportMessage small(std::move(one));
  const AggregateReportMessage big(std::move(many));
  EXPECT_EQ(big.wire_size().count() - small.wire_size().count(),
            99 * 16 * 8);
  // Batched entries beat per-heartbeat headers: 100 heartbeats cost
  // 100 * 64 B of headers, one report costs 64 B + 100 * 16 B.
  const HeartbeatMessage hb(1, PnaState::kIdle, 0);
  EXPECT_LT(big.wire_size().count(), 100 * hb.wire_size().count());
}

TEST_F(AggregatorTest, OptionValidation) {
  AggregatorOptions bad;
  bad.report_interval = sim::SimTime::zero();
  EXPECT_THROW(HeartbeatAggregator(sim, net, controller_id,
                                   {kMbps(1), kMbps(1), sim::SimTime::zero()},
                                   bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace oddci::core

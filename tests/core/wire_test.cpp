#include "core/wire.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace oddci::core::wire {
namespace {

ControlMessage sample_control(util::Random& rng) {
  ControlMessage m;
  m.type = rng.bernoulli(0.5) ? ControlType::kWakeup : ControlType::kReset;
  m.instance = rng.engine().next();
  m.probability = rng.uniform();
  m.requirements.min_ram = util::Bits(
      static_cast<std::int64_t>(rng.uniform_u64(1u << 30)));
  m.requirements.min_flash = util::Bits(
      static_cast<std::int64_t>(rng.uniform_u64(1u << 20)));
  m.requirements.device_kind =
      rng.bernoulli(0.5) ? "stb-st7109" : std::string{};
  m.heartbeat_interval =
      sim::SimTime::from_seconds(rng.uniform(1.0, 300.0));
  m.image.image_id = rng.engine().next();
  m.image.name = "image-" + std::to_string(rng.uniform_u64(1000));
  m.image.size = util::Bits(
      static_cast<std::int64_t>(rng.uniform_u64(1u << 30)) + 1);
  m.controller_node = static_cast<net::NodeId>(rng.uniform_u64(1000));
  m.backend_node = static_cast<net::NodeId>(rng.uniform_u64(1000));
  const auto aggregator_count = rng.uniform_u64(5);
  for (std::uint64_t i = 0; i < aggregator_count; ++i) {
    m.aggregators.push_back(static_cast<net::NodeId>(rng.uniform_u64(1000)));
  }
  m.sign_with(0xFEED);
  return m;
}

bool control_equal(const ControlMessage& a, const ControlMessage& b) {
  return a.canonical_bytes() == b.canonical_bytes() &&
         a.signature == b.signature;
}

TEST(WirePrimitives, RoundTrip) {
  Writer w;
  w.u8(0xAB).u32(0xDEADBEEF).u64(0x0123456789ABCDEFull).i64(-42).f64(3.25)
      .str("hello");
  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(WirePrimitives, TruncationThrows) {
  Writer w;
  w.u64(7);
  Reader r(std::string_view(w.bytes()).substr(0, 5));
  EXPECT_THROW(r.u64(), WireError);
  Reader r2("");
  EXPECT_THROW(r2.u8(), WireError);
  // String length prefix larger than the remaining bytes.
  Writer w3;
  w3.u32(100);
  Reader r3(w3.bytes());
  EXPECT_THROW(r3.str(), WireError);
}

// Property: every randomly generated control message survives the wire
// byte-for-byte, including its signature (so verification still passes on
// the receiver side).
class ControlRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ControlRoundTrip, EncodeDecodePreservesEverything) {
  util::Random rng(GetParam());
  const ControlMessage original = sample_control(rng);
  const std::string bytes = encode(original);
  const ControlMessage decoded = decode_control(bytes);
  EXPECT_TRUE(control_equal(original, decoded));
  EXPECT_TRUE(decoded.verify_with(0xFEED));
  EXPECT_FALSE(decoded.verify_with(0xBEEF));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControlRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 26));

// Property: a reused (clear()'d) Writer produces byte-identical encodings
// to a fresh one — the allocation-free hot path can never change the wire
// format, and the retained buffer never leaks bytes between messages.
class ReusedWriterRoundTrip : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ReusedWriterRoundTrip, ControlEncodingsMatchFreshWriter) {
  util::Random rng(GetParam() + 1000);
  Writer reused;
  for (int i = 0; i < 8; ++i) {
    const ControlMessage original = sample_control(rng);
    reused.clear();
    encode_into(original, reused);
    EXPECT_EQ(reused.bytes(), encode(original));
    const ControlMessage decoded = decode_control(reused.bytes());
    EXPECT_TRUE(control_equal(original, decoded));
    EXPECT_TRUE(decoded.verify_with(0xFEED));
  }
  // clear() kept the allocation alive across iterations.
  EXPECT_GT(reused.capacity(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReusedWriterRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(DirectWire, ReusedWriterMatchesFreshEncodings) {
  Writer w;
  const HeartbeatMessage hb(42, PnaState::kJoining, 7);
  encode_into(hb, w);
  EXPECT_EQ(w.bytes(), encode(hb));

  // A longer message after a shorter one, and vice versa: clear() must
  // reset the length, not just the cursor.
  w.clear();
  const AggregateReportMessage report(
      {{1, PnaState::kIdle, 0}, {2, PnaState::kBusy, 9}});
  encode_into(report, w);
  EXPECT_EQ(w.bytes(), encode(report));

  w.clear();
  const NoTaskMessage none(7);
  encode_into(none, w);
  EXPECT_EQ(w.bytes(), encode(none));
  EXPECT_EQ(decode_message(w.bytes())->tag(), kTagNoTask);
}

TEST(ControlWire, MalformedInputsThrow) {
  util::Random rng(9);
  const std::string good = encode(sample_control(rng));
  // Bad magic.
  std::string bad_magic = good;
  bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0xFF);
  EXPECT_THROW(decode_control(bad_magic), WireError);
  // Every truncation point must throw, never crash or return garbage.
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_THROW(decode_control(std::string_view(good).substr(0, cut)),
                 WireError)
        << "cut at " << cut;
  }
  // Trailing garbage rejected.
  EXPECT_THROW(decode_control(good + "x"), WireError);
  // Unknown control type rejected (type byte right after the magic).
  std::string bad_type = good;
  bad_type[4] = 0x7F;
  EXPECT_THROW(decode_control(bad_type), WireError);
}

TEST(DirectWire, AllMessageTypesRoundTrip) {
  const HeartbeatMessage hb(42, PnaState::kJoining, 7);
  const auto hb2 = decode_message(encode(hb));
  const auto& hbd = static_cast<const HeartbeatMessage&>(*hb2);
  EXPECT_EQ(hbd.pna_id(), 42u);
  EXPECT_EQ(hbd.state(), PnaState::kJoining);
  EXPECT_EQ(hbd.instance(), 7u);

  // Keep each decoded message alive in a named pointer: binding a reference
  // through a temporary shared_ptr dangles once the statement ends.
  const HeartbeatReplyMessage reply(7, HeartbeatCommand::kReset);
  const auto reply2 = decode_message(encode(reply));
  const auto& rd = static_cast<const HeartbeatReplyMessage&>(*reply2);
  EXPECT_EQ(rd.command(), HeartbeatCommand::kReset);

  const TaskRequestMessage req(7, 42);
  const auto req2 = decode_message(encode(req));
  const auto& reqd = static_cast<const TaskRequestMessage&>(*req2);
  EXPECT_EQ(reqd.pna_id(), 42u);

  const TaskAssignMessage assign(7, 3, util::Bits(4096), util::Bits(2048),
                                 12.5);
  const auto assign2 = decode_message(encode(assign));
  const auto& ad = static_cast<const TaskAssignMessage&>(*assign2);
  EXPECT_EQ(ad.task_index(), 3u);
  EXPECT_EQ(ad.input_size(), util::Bits(4096));
  EXPECT_EQ(ad.result_size(), util::Bits(2048));
  EXPECT_DOUBLE_EQ(ad.reference_seconds(), 12.5);

  const TaskResultMessage result(7, 3, 42, util::Bits(2048));
  const auto result2 = decode_message(encode(result));
  const auto& resd = static_cast<const TaskResultMessage&>(*result2);
  EXPECT_EQ(resd.wire_size(), result.wire_size());

  const NoTaskMessage none(7);
  EXPECT_EQ(decode_message(encode(none))->tag(), kTagNoTask);

  const TaskAbortMessage abort_msg(7, 3, 42);
  const auto abort2 = decode_message(encode(abort_msg));
  const auto& abd = static_cast<const TaskAbortMessage&>(*abort2);
  EXPECT_EQ(abd.task_index(), 3u);

  const AggregateReportMessage report(
      {{1, PnaState::kIdle, 0}, {2, PnaState::kBusy, 9}});
  const auto report2 = decode_message(encode(report));
  const auto& repd = static_cast<const AggregateReportMessage&>(*report2);
  ASSERT_EQ(repd.entries().size(), 2u);
  EXPECT_EQ(repd.entries()[1].instance, 9u);
}

// Verified-execution fields (replica slot on assigns/results/aborts, the
// result digest) must survive the wire exactly: the quorum's composite
// outstanding keys and vote tallies are keyed on them.
TEST(DirectWire, VerifyFieldsRoundTrip) {
  const TaskAssignMessage assign(7, 3, util::Bits(4096), util::Bits(2048),
                                 12.5, {}, 2);
  const auto assign2 = decode_message(encode(assign));
  const auto& ad = static_cast<const TaskAssignMessage&>(*assign2);
  EXPECT_EQ(ad.replica(), 2u);
  // The verify fields ride the modelled transport-header budget: the
  // analytic wire size (what the timing model charges) is unchanged.
  EXPECT_EQ(ad.wire_size(), assign.wire_size());

  const TaskResultMessage result(7, 3, 42, util::Bits(2048), {},
                                 0xC0FFEE0DDC1ull, 4);
  const auto result2 = decode_message(encode(result));
  const auto& resd = static_cast<const TaskResultMessage&>(*result2);
  EXPECT_EQ(resd.digest(), 0xC0FFEE0DDC1ull);
  EXPECT_EQ(resd.replica(), 4u);
  EXPECT_EQ(resd.wire_size(), result.wire_size());

  const TaskAbortMessage abort_msg(7, 3, 42, {}, 1);
  const auto abort2 = decode_message(encode(abort_msg));
  const auto& abd = static_cast<const TaskAbortMessage&>(*abort2);
  EXPECT_EQ(abd.replica(), 1u);

  // Verify-off messages keep the pre-verification defaults on the wire.
  const TaskResultMessage naive(7, 3, 42, util::Bits(2048));
  const auto naive2 = decode_message(encode(naive));
  const auto& nd = static_cast<const TaskResultMessage&>(*naive2);
  EXPECT_EQ(nd.digest(), 0u);
  EXPECT_EQ(nd.replica(), 0u);
}

TEST(DirectWire, MalformedInputsThrow) {
  EXPECT_THROW(decode_message(""), WireError);
  EXPECT_THROW(decode_message("\x7f"), WireError);  // unknown tag
  const std::string good = encode(HeartbeatMessage(1, PnaState::kIdle, 0));
  for (std::size_t cut = 1; cut < good.size(); ++cut) {
    EXPECT_THROW(decode_message(std::string_view(good).substr(0, cut)),
                 WireError);
  }
  EXPECT_THROW(decode_message(good + "x"), WireError);
  // Invalid enum value on the wire.
  std::string bad_state = good;
  bad_state[9] = 0x55;  // state byte after tag + pna_id
  EXPECT_THROW(decode_message(bad_state), WireError);
  // Implausible aggregate count.
  Writer w;
  w.u8(kTagAggregateReport).u32(0xFFFFFFFF);
  EXPECT_THROW(decode_message(w.bytes()), WireError);
}

TEST(DirectWire, BlobHasNoWireFormat) {
  const BlobMessage blob(kTagRemoteQuery, 1, util::Bits(8));
  EXPECT_THROW(encode(blob), std::invalid_argument);
}

}  // namespace
}  // namespace oddci::core::wire

// Randomized invariants of the Controller's bookkeeping under arbitrary
// heartbeat interleavings:
//  * a PNA is a member of at most one instance at a time;
//  * members and joining sets are disjoint (reflected via current_size);
//  * idle pool <= known PNAs;
//  * current_size never exceeds the number of distinct busy reporters.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/controller.hpp"

namespace oddci::core {
namespace {

constexpr auto kMbps = [](double m) { return util::BitRate::from_mbps(m); };

class Beater final : public net::Endpoint {
 public:
  explicit Beater(net::Network& net) : net_(&net) {
    id_ = net.register_endpoint(
        this, {kMbps(100), kMbps(100), sim::SimTime::zero()});
  }
  void beat(net::NodeId controller, PnaState state, InstanceId instance) {
    net_->send(id_, controller,
               std::make_shared<HeartbeatMessage>(id_, state, instance));
  }
  void on_message(net::NodeId, const net::MessagePtr&) override {}
  [[nodiscard]] net::NodeId id() const { return id_; }

 private:
  net::Network* net_;
  net::NodeId id_;
};

class ControllerPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ControllerPropertyTest, BookkeepingInvariants) {
  util::Random rng(GetParam());
  sim::Simulation sim;
  net::Network net(sim);
  broadcast::BroadcastChannel channel{
      sim,
      broadcast::TransportStream(kMbps(1.1), util::BitRate::from_kbps(100)),
      GetParam()};
  ContentStore store;
  Controller controller{sim, net, channel, store, 1,
                        net::LinkSpec{kMbps(1000), kMbps(1000),
                                      sim::SimTime::zero()}};
  controller.deploy_pna();

  // Two live instances.
  InstanceSpec spec;
  spec.target_size = 10;
  spec.image_size = util::Bits::from_megabytes(1);
  const InstanceId a = controller.create_instance(spec, 99);
  const InstanceId b = controller.create_instance(spec, 99);

  constexpr std::size_t kAgents = 30;
  std::vector<std::unique_ptr<Beater>> agents;
  for (std::size_t i = 0; i < kAgents; ++i) {
    agents.push_back(std::make_unique<Beater>(net));
  }

  // Ground truth: the latest state each agent reported.
  std::map<std::uint64_t, std::pair<PnaState, InstanceId>> truth;

  for (int round = 0; round < 400; ++round) {
    auto& agent = agents[rng.uniform_u64(kAgents)];
    const auto state = static_cast<PnaState>(rng.uniform_u64(3));
    const InstanceId instance =
        state == PnaState::kIdle
            ? kNoInstance
            : (rng.bernoulli(0.5) ? a : b);
    agent->beat(controller.node_id(), state, instance);
    truth[agent->id()] = {state, instance};
    sim.run_until(sim.now() + sim::SimTime::from_millis(200));

    // Invariants after every delivery batch.
    const auto* sa = controller.status(a);
    const auto* sb = controller.status(b);
    ASSERT_NE(sa, nullptr);
    ASSERT_NE(sb, nullptr);

    std::size_t busy_a = 0, busy_b = 0;
    for (const auto& [pna, st] : truth) {
      if (st.first == PnaState::kBusy && st.second == a) ++busy_a;
      if (st.first == PnaState::kBusy && st.second == b) ++busy_b;
    }
    // Trimming may shrink membership below the reported-busy count (the
    // Controller evicts without the agent knowing yet), so membership is
    // bounded above by ground truth.
    EXPECT_LE(sa->current_size, busy_a);
    EXPECT_LE(sb->current_size, busy_b);
    EXPECT_LE(controller.idle_pool_estimate(), controller.known_pna_count());
    EXPECT_LE(controller.known_pna_count(), kAgents);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace oddci::core

// Quorum, escalation, spot-check, and reputation-ledger unit tests for the
// Backend-side Byzantine defense (core/verify.hpp), plus the seeded
// adversarial profile table (fault/byzantine.hpp).

#include "core/verify.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/byzantine.hpp"
#include "sim/simulation.hpp"
#include "workload/job.hpp"

namespace oddci::core {
namespace {

constexpr InstanceId kInstance = 7;

workload::Job small_job(std::size_t tasks) {
  return workload::make_uniform_job("verify-unit",
                                    util::Bits::from_megabytes(1), tasks,
                                    util::Bits::from_bytes(512),
                                    util::Bits::from_bytes(512), 5.0);
}

VerifyOptions base_options() {
  VerifyOptions o;
  o.enabled = true;
  o.spot_check_rate = 0.0;  // unit tests mint spot checks explicitly
  return o;
}

std::uint64_t honest(std::uint64_t index) {
  return fault::honest_result_digest(kInstance, index);
}

TEST(VerifyOptions, ValidateRejectsNonsense) {
  VerifyOptions o = base_options();
  o.redundancy = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = base_options();
  o.max_redundancy = 1;
  o.redundancy = 2;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = base_options();
  o.trusted_redundancy = 3;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = base_options();
  o.quarantine_below = 0.95;  // >= trusted_above
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = base_options();
  o.spot_check_rate = 1.5;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  EXPECT_NO_THROW(base_options().validate());
}

// A 2-quorum that splits 1-1 (one forged digest) cannot conclude: the
// verifier escalates to a 3rd replica, whose honest vote settles a 2-of-3
// strict majority for the truth.
TEST(Quorum, TwoWayTieEscalatesToThreeAndTruthWins) {
  sim::Simulation sim;
  const auto job = small_job(4);
  VerifyOptions options = base_options();
  options.eager_replicas = true;  // classic parallel k-way dispatch
  Verifier verifier(sim, options, 1);
  verifier.begin_job(kInstance, &job);

  const std::uint64_t index = 0;
  auto d0 = verifier.on_dispatch(index, 100);
  EXPECT_EQ(d0.replica, 0u);
  EXPECT_TRUE(d0.more_replicas);  // redundancy 2: one more wanted
  auto d1 = verifier.on_dispatch(index, 101);
  EXPECT_EQ(d1.replica, 1u);
  EXPECT_FALSE(d1.more_replicas);
  EXPECT_FALSE(verifier.needs_replica(index));

  auto v0 = verifier.on_result(index, 100, honest(index), {});
  EXPECT_EQ(v0.outcome, Verifier::Verdict::Outcome::kPending);
  const std::uint64_t forged =
      fault::forged_result_digest(0xBAD, kInstance, index);
  ASSERT_NE(forged, honest(index));
  auto v1 = verifier.on_result(index, 101, forged, {});
  EXPECT_EQ(v1.outcome, Verifier::Verdict::Outcome::kEscalated);
  EXPECT_TRUE(v1.requeue);
  EXPECT_TRUE(verifier.needs_replica(index));

  // The escalation replica may not be a prior participant.
  EXPECT_FALSE(verifier.may_assign(index, 100, false));
  EXPECT_FALSE(verifier.may_assign(index, 101, false));
  EXPECT_TRUE(verifier.may_assign(index, 102, false));
  auto d2 = verifier.on_dispatch(index, 102);
  EXPECT_EQ(d2.replica, 2u);
  auto v2 = verifier.on_result(index, 102, honest(index), {});
  EXPECT_EQ(v2.outcome, Verifier::Verdict::Outcome::kAccepted);
  EXPECT_FALSE(v2.wrong);

  const auto s = verifier.stats();
  EXPECT_EQ(s.tasks_verified, 1u);
  EXPECT_EQ(s.escalations, 1u);
  EXPECT_EQ(s.verified, 2u);
  EXPECT_EQ(s.outvoted, 1u);
  EXPECT_EQ(s.wrong_results, 0u);
  // Conservation identity closes with nothing outstanding.
  EXPECT_EQ(s.dispatched, s.verified + s.outvoted + s.discarded);
  EXPECT_EQ(s.outstanding, 0u);
}

// Two colluders sharing a forge seed win a 2-quorum outright — the attack
// that defeats naive voting. The accepted result is flagged wrong against
// ground truth, and the seeded spot checks then grind their reputation
// into quarantine, after which the poll gate never serves them real work.
TEST(Quorum, ColludersWinTwoQuorumAndSpotChecksQuarantineThem) {
  sim::Simulation sim;
  const auto job = small_job(4);
  Verifier verifier(sim, base_options(), 1);
  verifier.begin_job(kInstance, &job);

  const std::uint64_t index = 0;
  const std::uint64_t group_seed = 0xC0117;
  const std::uint64_t agreed_forgery =
      fault::forged_result_digest(group_seed, kInstance, index);
  verifier.on_dispatch(index, 200);
  verifier.on_dispatch(index, 201);
  verifier.on_result(index, 200, agreed_forgery, {});
  auto verdict = verifier.on_result(index, 201, agreed_forgery, {});
  EXPECT_EQ(verdict.outcome, Verifier::Verdict::Outcome::kAccepted);
  EXPECT_TRUE(verdict.wrong);
  EXPECT_EQ(verifier.stats().wrong_results, 1u);
  // Winning the vote *raised* their standing — that is the point of the
  // attack, and why voting alone is not enough.
  EXPECT_GT(verifier.reputation(200)->score, 0.5);

  // Spot checks carry a precomputed answer the colluders cannot know; a
  // few failures push the EWMA under the quarantine threshold.
  int fails = 0;
  while (verifier.reputation(200)->state != ReputationState::kQuarantined) {
    const auto spot = verifier.make_spot_check(200);
    verifier.on_spot_result(
        spot.index, 200,
        fault::forged_result_digest(group_seed, kInstance, spot.index));
    ASSERT_LT(++fails, 12) << "spot checks failed to quarantine a colluder";
  }
  EXPECT_EQ(verifier.stats().quarantines, 1u);
  EXPECT_EQ(verifier.stats().quarantined_now, 1u);
  EXPECT_EQ(verifier.stats().spot_failed, static_cast<std::uint64_t>(fails));

  // Quarantined duty: spot checks or nothing, never a real replica.
  for (int i = 0; i < 64; ++i) {
    EXPECT_NE(verifier.poll_gate(200), Verifier::PollGate::kTask);
  }
  EXPECT_GT(verifier.stats().polls_denied, 0u);
}

// EWMA arithmetic is exact: alpha = 0.25 from the 0.5 prior.
TEST(Reputation, EwmaArithmeticAndQuarantineThreshold) {
  sim::Simulation sim;
  const auto job = small_job(8);
  VerifyOptions options = base_options();
  Verifier verifier(sim, options, 1);
  verifier.begin_job(kInstance, &job);

  // Three consecutive outvotes: 0.5 -> 0.375 -> 0.28125 -> 0.2109375,
  // crossing quarantine_below = 0.25 on the third.
  const std::uint64_t liar = 300;
  const double expected[] = {0.375, 0.28125, 0.2109375};
  for (int round = 0; round < 3; ++round) {
    const std::uint64_t index = static_cast<std::uint64_t>(round);
    verifier.on_dispatch(index, liar);
    verifier.on_dispatch(index, 400 + round);
    verifier.on_result(index, 400 + round, honest(index), {});
    const auto tie = verifier.on_result(
        index, liar,
        fault::forged_result_digest(0xF00 + round, kInstance, index), {});
    ASSERT_EQ(tie.outcome, Verifier::Verdict::Outcome::kEscalated);
    verifier.on_dispatch(index, 500 + round);
    const auto settled =
        verifier.on_result(index, 500 + round, honest(index), {});
    ASSERT_EQ(settled.outcome, Verifier::Verdict::Outcome::kAccepted);
    const ReputationEntry* e = verifier.reputation(liar);
    ASSERT_NE(e, nullptr);
    EXPECT_DOUBLE_EQ(e->score, expected[round]);
    EXPECT_EQ(e->observations, static_cast<std::uint64_t>(round + 1));
  }
  EXPECT_EQ(verifier.reputation(liar)->state, ReputationState::kQuarantined);
  EXPECT_EQ(verifier.stats().quarantines, 1u);
}

// Parole: parole_checks consecutive spot passes restore probation at the
// initial reputation; a single failure resets the streak.
TEST(Reputation, ParoleRequiresConsecutiveSpotPasses) {
  sim::Simulation sim;
  const auto job = small_job(4);
  Verifier verifier(sim, base_options(), 1);
  verifier.begin_job(kInstance, &job);

  const std::uint64_t pna = 600;
  // Drive into quarantine with spot failures.
  while (verifier.reputation(pna) == nullptr ||
         verifier.reputation(pna)->state != ReputationState::kQuarantined) {
    const auto spot = verifier.make_spot_check(pna);
    verifier.on_spot_result(spot.index, pna, /*digest=*/0xDEAD | 1ull);
  }

  // Two passes, one fail: streak resets, still quarantined.
  for (int i = 0; i < 2; ++i) {
    const auto spot = verifier.make_spot_check(pna);
    verifier.on_spot_result(spot.index, pna, honest(spot.index));
  }
  {
    const auto spot = verifier.make_spot_check(pna);
    verifier.on_spot_result(spot.index, pna, 0xDEAD | 1ull);
  }
  EXPECT_EQ(verifier.reputation(pna)->state, ReputationState::kQuarantined);
  EXPECT_EQ(verifier.stats().paroles, 0u);

  // Three consecutive passes parole.
  for (int i = 0; i < 3; ++i) {
    const auto spot = verifier.make_spot_check(pna);
    verifier.on_spot_result(spot.index, pna, honest(spot.index));
  }
  const ReputationEntry* e = verifier.reputation(pna);
  EXPECT_EQ(e->state, ReputationState::kProbation);
  EXPECT_DOUBLE_EQ(e->score, 0.5);
  EXPECT_EQ(verifier.stats().paroles, 1u);
}

// Consistent agreement earns kTrusted, and a trusted first assignee gets
// the reduced-redundancy discount (a 1-quorum concludes on its own vote).
TEST(Reputation, TrustedStandingEarnsReducedRedundancy) {
  sim::Simulation sim;
  const auto job = small_job(16);
  Verifier verifier(sim, base_options(), 1);
  verifier.begin_job(kInstance, &job);

  const std::uint64_t star = 700;
  for (std::uint64_t index = 0; index < 8; ++index) {
    verifier.on_dispatch(index, star);
    verifier.on_dispatch(index, 800 + index);
    verifier.on_result(index, star, honest(index), {});
    verifier.on_result(index, 800 + index, honest(index), {});
  }
  const ReputationEntry* e = verifier.reputation(star);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, ReputationState::kTrusted);
  EXPECT_EQ(e->observations, 8u);
  EXPECT_EQ(verifier.stats().trusted_promotions, 1u);

  auto d = verifier.on_dispatch(8, star);
  EXPECT_FALSE(d.more_replicas);  // trusted_redundancy = 1
  auto v = verifier.on_result(8, star, honest(8), {});
  EXPECT_EQ(v.outcome, Verifier::Verdict::Outcome::kAccepted);
}

// Sequential quorum (the default dispatch mode): replicas go out one at a
// time, a pending vote re-queues the task, and a first vote cast by a
// node that earned kTrusted standing AFTER the task's first dispatch
// still concludes the round at a single dispatch (vote-time re-target).
TEST(Quorum, SequentialQuorumAndTrustedFirstVoteEarlyAccept) {
  sim::Simulation sim;
  const auto job = small_job(16);
  Verifier verifier(sim, base_options(), 1);
  verifier.begin_job(kInstance, &job);

  // Unproven pair: one replica at a time, the pending vote asks for more.
  auto d0 = verifier.on_dispatch(0, 500);
  EXPECT_FALSE(d0.more_replicas);  // sequential: nothing queued eagerly
  auto v0 = verifier.on_result(0, 500, honest(0), {});
  EXPECT_EQ(v0.outcome, Verifier::Verdict::Outcome::kPending);
  EXPECT_TRUE(v0.requeue);  // round wants a second replica
  verifier.on_dispatch(0, 501);
  auto v1 = verifier.on_result(0, 501, honest(0), {});
  EXPECT_EQ(v1.outcome, Verifier::Verdict::Outcome::kAccepted);
  EXPECT_EQ(verifier.stats().dispatched, 2u);

  // Task 15's first replica goes to `star` BEFORE it earns trust...
  const std::uint64_t star = 700;
  verifier.on_dispatch(15, star);
  // ...then star earns kTrusted on other tasks while the replica runs...
  for (std::uint64_t index = 1; index <= 8; ++index) {
    verifier.on_dispatch(index, star);
    verifier.on_dispatch(index, 800 + index);
    verifier.on_result(index, star, honest(index), {});
    verifier.on_result(index, 800 + index, honest(index), {});
  }
  ASSERT_EQ(verifier.reputation(star)->state, ReputationState::kTrusted);
  // ...so its (now-trusted) first vote concludes task 15 on its own.
  auto v15 = verifier.on_result(15, star, honest(15), {});
  EXPECT_EQ(v15.outcome, Verifier::Verdict::Outcome::kAccepted);
  EXPECT_FALSE(v15.wrong);
}

// The region-diversity rule: with a region function installed, a strict
// pass never co-locates two replicas of one task in one aggregator region
// (where colluders are recruited); the relaxed pass may.
TEST(Quorum, RegionStrictAssignmentAvoidsCorrelatedReplicas) {
  sim::Simulation sim;
  const auto job = small_job(4);
  Verifier verifier(sim, base_options(), 1);
  verifier.set_region_fn(
      [](std::uint64_t pna_id) { return static_cast<std::uint32_t>(pna_id % 4); });
  verifier.begin_job(kInstance, &job);

  verifier.on_dispatch(0, 40);  // region 0
  EXPECT_FALSE(verifier.may_assign(0, 44, /*region_strict=*/true));  // region 0
  EXPECT_TRUE(verifier.may_assign(0, 45, /*region_strict=*/true));   // region 1
  // Relaxed fallback (livelock escape) still excludes prior servers.
  EXPECT_TRUE(verifier.may_assign(0, 44, /*region_strict=*/false));
  EXPECT_FALSE(verifier.may_assign(0, 40, /*region_strict=*/false));
}

// Conservation identity under losses and crashes: every dispatch ends up
// verified, outvoted, discarded, or outstanding.
TEST(Quorum, ConservationHoldsThroughLossAndCrash) {
  sim::Simulation sim;
  const auto job = small_job(8);
  Verifier verifier(sim, base_options(), 1);
  verifier.begin_job(kInstance, &job);

  verifier.on_dispatch(0, 10);
  verifier.on_dispatch(0, 11);
  verifier.on_replica_lost(0);  // replica of task 0 timed out
  verifier.on_dispatch(1, 12);
  verifier.on_result(1, 12, honest(1), {});  // pending vote
  const auto spot = verifier.make_spot_check(13);

  auto s = verifier.stats();
  EXPECT_EQ(s.dispatched, 3u);
  EXPECT_EQ(s.discarded, 1u);
  EXPECT_EQ(s.outstanding, 2u);  // one live replica + one pending vote
  EXPECT_EQ(s.dispatched, s.verified + s.outvoted + s.discarded +
                              s.outstanding);
  EXPECT_EQ(s.spot_outstanding, 1u);

  verifier.on_crash();
  s = verifier.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.spot_outstanding, 0u);
  EXPECT_EQ(s.spot_flushed, 1u);
  EXPECT_EQ(s.dispatched, s.verified + s.outvoted + s.discarded);
  (void)spot;
}

// Adversarial profile table: deterministic per seed, fraction-accurate at
// scale, and the colluding group shares one forge seed inside one region.
TEST(ByzantineTable, SeededClassificationIsDeterministicAndCorrelated) {
  const std::size_t n = 50'000;
  std::vector<std::uint32_t> regions(n);
  for (std::size_t i = 0; i < n; ++i) {
    regions[i] = static_cast<std::uint32_t>(i % 16);
  }
  fault::ByzantineTable a(0x5EED, n, 0.10, 0.05, 3, regions);
  fault::ByzantineTable b(0x5EED, n, 0.10, 0.05, 3, regions);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(a.profile(i), b.profile(i)) << i;
  }
  EXPECT_NEAR(static_cast<double>(a.forgers() + a.colluders()) / n, 0.10,
              0.01);
  EXPECT_NEAR(static_cast<double>(a.freeriders()) / n, 0.05, 0.01);

  ASSERT_EQ(a.collusion_group().size(), 3u);
  const auto& group = a.collusion_group();
  const std::uint32_t region = regions[group[0]];
  const std::uint64_t seed0 = a.forge_seed(group[0]);
  for (const std::size_t member : group) {
    EXPECT_EQ(a.profile(member), fault::ByzantineProfile::kColluder);
    EXPECT_EQ(regions[member], region);  // one neighborhood
    EXPECT_EQ(a.forge_seed(member), seed0);  // one shared forgery stream
  }
  // Non-colluding adversaries never share the group seed (their garbage
  // cannot accidentally form a quorum with the colluders').
  for (std::size_t i = 0; i < n; ++i) {
    if (a.profile(i) == fault::ByzantineProfile::kForger ||
        a.profile(i) == fault::ByzantineProfile::kFreeRider) {
      EXPECT_NE(a.forge_seed(i), seed0);
      break;
    }
  }

  fault::ByzantineTable off(0x5EED, n, 0.0, 0.0, 0, regions);
  EXPECT_FALSE(off.active());
  EXPECT_EQ(off.adversaries(), 0u);
}

// Digest model: honest digests are stable pure functions; forged digests
// differ from honest ones and agree exactly across a shared forge seed.
TEST(ByzantineDigests, HonestAndForgedDigestProperties) {
  const std::uint64_t h = fault::honest_result_digest(1, 2);
  EXPECT_EQ(h, fault::honest_result_digest(1, 2));
  EXPECT_NE(h, fault::honest_result_digest(1, 3));
  EXPECT_NE(h, fault::honest_result_digest(2, 2));
  EXPECT_NE(h & 1ull, 0u);  // never the "no digest" sentinel

  const std::uint64_t f1 = fault::forged_result_digest(0xAA, 1, 2);
  const std::uint64_t f2 = fault::forged_result_digest(0xAA, 1, 2);
  const std::uint64_t f3 = fault::forged_result_digest(0xBB, 1, 2);
  EXPECT_EQ(f1, f2);
  EXPECT_NE(f1, h);
  EXPECT_NE(f1, f3);
}

}  // namespace
}  // namespace oddci::core

#include "core/pna.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace oddci::core {
namespace {

constexpr auto kMbps = [](double m) { return util::BitRate::from_mbps(m); };
constexpr broadcast::SigningKey kKey = 0x0DDC1;
constexpr std::uint32_t kAppId = 0x4F44;

/// Captures heartbeats and can answer with reset commands.
class FakeController final : public net::Endpoint {
 public:
  FakeController(sim::Simulation& sim, net::Network& net)
      : net_(&net) {
    id_ = net.register_endpoint(
        this, {kMbps(1000), kMbps(1000), sim::SimTime::zero()});
    (void)sim;
  }

  void on_message(net::NodeId from, const net::MessagePtr& message) override {
    if (message->tag() != kTagHeartbeat) return;
    const auto& hb = static_cast<const HeartbeatMessage&>(*message);
    heartbeats.push_back({hb.pna_id(), hb.state(), hb.instance()});
    if (reset_on_next_beat != kNoInstance) {
      net_->send(id_, from,
                 std::make_shared<HeartbeatReplyMessage>(
                     reset_on_next_beat, HeartbeatCommand::kReset));
      reset_on_next_beat = kNoInstance;
    }
  }

  struct Beat {
    std::uint64_t pna;
    PnaState state;
    InstanceId instance;
  };
  std::vector<Beat> heartbeats;
  InstanceId reset_on_next_beat = kNoInstance;
  [[nodiscard]] net::NodeId id() const { return id_; }

 private:
  net::Network* net_;
  net::NodeId id_ = net::kInvalidNode;
};

/// Serves a fixed number of scripted tasks.
class FakeBackend final : public net::Endpoint {
 public:
  FakeBackend(sim::Simulation& sim, net::Network& net, int tasks)
      : net_(&net), remaining_(tasks) {
    id_ = net.register_endpoint(
        this, {kMbps(1000), kMbps(1000), sim::SimTime::zero()});
    (void)sim;
  }

  void on_message(net::NodeId from, const net::MessagePtr& message) override {
    if (message->tag() == kTagTaskRequest) {
      ++requests;
      const auto& req = static_cast<const TaskRequestMessage&>(*message);
      if (remaining_ > 0) {
        --remaining_;
        net_->send(id_, from,
                   std::make_shared<TaskAssignMessage>(
                       req.instance(), next_index_++,
                       util::Bits::from_bytes(512),
                       util::Bits::from_bytes(256), 2.0));
      } else {
        net_->send(id_, from, std::make_shared<NoTaskMessage>(req.instance()));
      }
    } else if (message->tag() == kTagTaskResult) {
      ++results;
    }
  }

  int requests = 0;
  int results = 0;
  [[nodiscard]] net::NodeId id() const { return id_; }

 private:
  net::Network* net_;
  net::NodeId id_ = net::kInvalidNode;
  int remaining_;
  std::uint64_t next_index_ = 0;
};

struct PnaTest : ::testing::Test {
  sim::Simulation sim;
  net::Network net{sim};
  broadcast::BroadcastChannel channel{
      sim,
      broadcast::TransportStream(kMbps(1.1), util::BitRate::from_kbps(100)),
      5};
  ContentStore store;
  FakeController controller{sim, net};
  FakeBackend backend{sim, net, /*tasks=*/3};
  PnaEnvironment env;
  std::unique_ptr<dtv::Receiver> receiver;

  void SetUp() override {
    env.content_store = &store;
    env.trusted_key = kKey;
    env.task_poll_interval = sim::SimTime::from_seconds(5);

    receiver = std::make_unique<dtv::Receiver>(
        sim, net, dtv::DeviceProfile::reference_stb(),
        net::LinkSpec{util::BitRate::from_kbps(150),
                      util::BitRate::from_kbps(150),
                      sim::SimTime::from_millis(10)});
    receiver->application_manager().register_factory(
        "oddci-pna",
        [this] { return std::make_unique<PnaXlet>(env, /*seed=*/77); });
    receiver->tune(channel);

    // Deploy the PNA trigger application, as the Controller would.
    broadcast::AitEntry entry;
    entry.application_id = kAppId;
    entry.control_code = broadcast::AppControlCode::kAutostart;
    entry.application_name = "oddci-pna";
    entry.base_file = "pna.xlet";
    channel.ait().upsert(entry);
    channel.carousel().put_file("pna.xlet", util::Bits::from_kilobytes(64),
                                0);
  }

  void stage_control(ControlMessage msg,
                     broadcast::SigningKey key = kKey) {
    msg.controller_node = controller.id();
    if (msg.backend_node == net::kInvalidNode) {
      msg.backend_node = backend.id();
    }
    msg.sign_with(key);
    const auto content = store.put_control(msg);
    channel.carousel().put_file("oddci.config", util::Bits::from_bytes(512),
                                content);
    channel.commit();
  }

  ControlMessage wakeup(InstanceId instance, double probability = 1.0) {
    ControlMessage m;
    m.type = ControlType::kWakeup;
    m.instance = instance;
    m.probability = probability;
    m.heartbeat_interval = sim::SimTime::from_seconds(30);
    m.image = {1, "image-1", util::Bits::from_megabytes(1)};
    channel.carousel().put_file(m.image.name, m.image.size, m.image.image_id);
    return m;
  }

  PnaXlet* pna() {
    return dynamic_cast<PnaXlet*>(
        receiver->application_manager().find(kAppId));
  }
};

TEST_F(PnaTest, AutostartsAndHeartbeatsIdle) {
  ControlMessage hello;
  hello.type = ControlType::kReset;
  hello.instance = kNoInstance;
  stage_control(hello);
  sim.run_until(sim::SimTime::from_seconds(120));
  ASSERT_NE(pna(), nullptr);
  EXPECT_EQ(pna()->state(), PnaState::kIdle);
  ASSERT_FALSE(controller.heartbeats.empty());
  EXPECT_EQ(controller.heartbeats[0].state, PnaState::kIdle);
  EXPECT_EQ(controller.heartbeats[0].instance, kNoInstance);
  // ~1 heartbeat per 30 s.
  EXPECT_GE(controller.heartbeats.size(), 2u);
}

TEST_F(PnaTest, WakeupJoinsInstanceAndRunsTasks) {
  stage_control(wakeup(7));
  sim.run_until(sim::SimTime::from_seconds(300));
  ASSERT_NE(pna(), nullptr);
  EXPECT_EQ(pna()->state(), PnaState::kBusy);
  EXPECT_EQ(pna()->instance(), 7u);
  EXPECT_EQ(pna()->stats().joins, 1u);
  ASSERT_NE(pna()->dve(), nullptr);
  EXPECT_EQ(pna()->dve()->image().name, "image-1");
  // All three scripted tasks executed (2 s each on the reference STB).
  EXPECT_EQ(backend.results, 3);
  EXPECT_EQ(pna()->stats().tasks_completed, 3u);
  EXPECT_EQ(pna()->dve()->tasks_completed(), 3u);
}

TEST_F(PnaTest, ForgedSignatureRejected) {
  stage_control(wakeup(7), /*key=*/0xBAD);
  sim.run_until(sim::SimTime::from_seconds(120));
  ASSERT_NE(pna(), nullptr);
  EXPECT_EQ(pna()->state(), PnaState::kIdle);
  EXPECT_GE(pna()->stats().signature_failures, 1u);
  EXPECT_EQ(pna()->stats().joins, 0u);
  // An unverified message must not even configure heartbeating.
  EXPECT_TRUE(controller.heartbeats.empty());
}

TEST_F(PnaTest, ProbabilityZeroNeverJoins) {
  stage_control(wakeup(7, 0.0));
  sim.run_until(sim::SimTime::from_seconds(120));
  ASSERT_NE(pna(), nullptr);
  EXPECT_EQ(pna()->state(), PnaState::kIdle);
  EXPECT_GE(pna()->stats().wakeups_dropped_probability, 1u);
}

TEST_F(PnaTest, RequirementsMismatchRejected) {
  ControlMessage m = wakeup(7);
  m.requirements.min_ram = util::Bits::from_megabytes(1024);  // > 256 MB
  stage_control(m);
  sim.run_until(sim::SimTime::from_seconds(120));
  ASSERT_NE(pna(), nullptr);
  EXPECT_EQ(pna()->state(), PnaState::kIdle);
  EXPECT_GE(pna()->stats().wakeups_rejected_requirements, 1u);
}

TEST_F(PnaTest, DeviceKindRequirementMatches) {
  ControlMessage m = wakeup(7);
  m.requirements.device_kind = "reference-stb";
  stage_control(m);
  sim.run_until(sim::SimTime::from_seconds(300));
  EXPECT_EQ(pna()->state(), PnaState::kBusy);
}

TEST_F(PnaTest, BusyPnaDropsSecondWakeup) {
  stage_control(wakeup(7));
  sim.run_until(sim::SimTime::from_seconds(300));
  ASSERT_EQ(pna()->state(), PnaState::kBusy);
  ControlMessage second = wakeup(8);
  second.image.name = "image-2";
  second.image.image_id = 2;
  channel.carousel().put_file("image-2", second.image.size, 2);
  stage_control(second);
  sim.run_until(sim::SimTime::from_seconds(500));
  EXPECT_EQ(pna()->instance(), 7u);
  EXPECT_GE(pna()->stats().wakeups_dropped_busy, 1u);
}

TEST_F(PnaTest, BroadcastResetReturnsToIdle) {
  stage_control(wakeup(7));
  sim.run_until(sim::SimTime::from_seconds(300));
  ASSERT_EQ(pna()->state(), PnaState::kBusy);
  ControlMessage reset;
  reset.type = ControlType::kReset;
  reset.instance = 7;
  stage_control(reset);
  sim.run_until(sim::SimTime::from_seconds(400));
  EXPECT_EQ(pna()->state(), PnaState::kIdle);
  EXPECT_EQ(pna()->stats().resets, 1u);
  EXPECT_EQ(pna()->dve(), nullptr);
}

TEST_F(PnaTest, ResetForOtherInstanceIgnored) {
  stage_control(wakeup(7));
  sim.run_until(sim::SimTime::from_seconds(300));
  ASSERT_EQ(pna()->state(), PnaState::kBusy);
  ControlMessage reset;
  reset.type = ControlType::kReset;
  reset.instance = 99;
  stage_control(reset);
  sim.run_until(sim::SimTime::from_seconds(400));
  EXPECT_EQ(pna()->state(), PnaState::kBusy);
}

TEST_F(PnaTest, UnicastResetViaHeartbeatReply) {
  stage_control(wakeup(7));
  sim.run_until(sim::SimTime::from_seconds(300));
  ASSERT_EQ(pna()->state(), PnaState::kBusy);
  controller.reset_on_next_beat = 7;
  sim.run_until(sim::SimTime::from_seconds(400));
  EXPECT_EQ(pna()->state(), PnaState::kIdle);
  EXPECT_EQ(pna()->stats().resets, 1u);
}

TEST_F(PnaTest, JoiningStateReportedWhileImageLoads) {
  stage_control(wakeup(7));
  // The 1 MB image at ~1 Mbps takes ~8.4 s+ to read; before that the PNA
  // must have announced kJoining.
  sim.run_until(sim::SimTime::from_seconds(4));
  bool saw_joining = false;
  for (const auto& hb : controller.heartbeats) {
    if (hb.state == PnaState::kJoining && hb.instance == 7) {
      saw_joining = true;
    }
  }
  ASSERT_NE(pna(), nullptr);
  EXPECT_TRUE(saw_joining || pna()->state() == PnaState::kJoining);
}

TEST_F(PnaTest, PowerOffDestroysXlet) {
  stage_control(wakeup(7));
  sim.run_until(sim::SimTime::from_seconds(300));
  ASSERT_NE(pna(), nullptr);
  receiver->set_power_mode(dtv::PowerMode::kOff);
  EXPECT_EQ(pna(), nullptr);
  sim.run_until(sim::SimTime::from_seconds(400));  // must not crash
}

TEST_F(PnaTest, NullContentStoreRejected) {
  PnaEnvironment bad;
  bad.content_store = nullptr;
  EXPECT_THROW(PnaXlet(bad, 1), std::invalid_argument);
}

}  // namespace
}  // namespace oddci::core

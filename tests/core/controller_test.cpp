#include "core/controller.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace oddci::core {
namespace {

constexpr auto kMbps = [](double m) { return util::BitRate::from_mbps(m); };

/// Heartbeat-scripted agent stand-in, recording Controller replies.
class FakeAgent final : public net::Endpoint {
 public:
  FakeAgent(sim::Simulation& sim, net::Network& net) : net_(&net) {
    id_ = net.register_endpoint(
        this, {kMbps(100), kMbps(100), sim::SimTime::zero()});
    (void)sim;
  }

  void beat(net::NodeId controller, PnaState state, InstanceId instance) {
    net_->send(id_, controller,
               std::make_shared<HeartbeatMessage>(id_, state, instance));
  }

  void on_message(net::NodeId, const net::MessagePtr& message) override {
    if (message->tag() == kTagHeartbeatReply) {
      const auto& reply =
          static_cast<const HeartbeatReplyMessage&>(*message);
      if (reply.command() == HeartbeatCommand::kReset) ++resets;
    }
  }

  [[nodiscard]] net::NodeId id() const { return id_; }
  int resets = 0;

 private:
  net::Network* net_;
  net::NodeId id_ = net::kInvalidNode;
};

struct ControllerTest : ::testing::Test {
  sim::Simulation sim;
  net::Network net{sim};
  broadcast::BroadcastChannel channel{
      sim,
      broadcast::TransportStream(kMbps(1.1), util::BitRate::from_kbps(100)),
      11};
  ContentStore store;
  ControllerOptions options;
  std::unique_ptr<Controller> controller;

  void SetUp() override {
    options.policy.monitor_interval = sim::SimTime::from_seconds(10);
    controller = std::make_unique<Controller>(
        sim, net, channel, store, /*key=*/0x5EC7E7,
        net::LinkSpec{kMbps(1000), kMbps(1000), sim::SimTime::zero()},
        options);
  }

  InstanceSpec spec(std::size_t target) {
    InstanceSpec s;
    s.name = "job";
    s.target_size = target;
    s.image_size = util::Bits::from_megabytes(1);
    s.heartbeat_interval = sim::SimTime::from_seconds(30);
    return s;
  }

  /// The control message currently staged in the carousel config file
  /// (decoded from its stored wire bytes).
  std::optional<ControlMessage> staged_control() {
    const auto* file = channel.carousel().current().find("oddci.config");
    if (file == nullptr) return std::nullopt;
    return store.get_control(file->content_id);
  }
};

TEST_F(ControllerTest, DeployStagesTriggerApplication) {
  controller->deploy_pna();
  EXPECT_TRUE(controller->deployed());
  const auto autostarts = channel.ait().autostart_entries();
  ASSERT_EQ(autostarts.size(), 1u);
  EXPECT_EQ(autostarts[0].application_name, "oddci-pna");
  EXPECT_EQ(autostarts[0].base_file, "pna.xlet");
  EXPECT_NE(channel.carousel().current().find("pna.xlet"), nullptr);
  // The deployment hello is a signed reset matching no instance.
  const auto hello = staged_control();
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->type, ControlType::kReset);
  EXPECT_EQ(hello->instance, kNoInstance);
  EXPECT_TRUE(hello->verify_with(0x5EC7E7));
  EXPECT_EQ(hello->controller_node, controller->node_id());
}

TEST_F(ControllerTest, CreateInstanceRequiresDeploy) {
  EXPECT_THROW(controller->create_instance(spec(10), 0), std::logic_error);
}

TEST_F(ControllerTest, CreateInstanceStagesImageAndWakeup) {
  controller->deploy_pna();
  const InstanceId id = controller->create_instance(spec(10), 99);
  EXPECT_NE(id, kNoInstance);
  const auto wakeup = staged_control();
  ASSERT_TRUE(wakeup.has_value());
  EXPECT_EQ(wakeup->type, ControlType::kWakeup);
  EXPECT_EQ(wakeup->instance, id);
  EXPECT_EQ(wakeup->backend_node, 99u);
  EXPECT_TRUE(wakeup->verify_with(0x5EC7E7));
  // With no population info, the controller addresses everyone.
  EXPECT_DOUBLE_EQ(wakeup->probability, 1.0);
  EXPECT_NE(channel.carousel().current().find(wakeup->image.name), nullptr);
  const InstanceStatus* st = controller->status(id);
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->active);
  EXPECT_EQ(st->target_size, 10u);
  EXPECT_EQ(st->current_size, 0u);
}

TEST_F(ControllerTest, CreateInstanceValidation) {
  controller->deploy_pna();
  EXPECT_THROW(controller->create_instance(spec(0), 0),
               std::invalid_argument);
  auto s = spec(10);
  s.image_size = util::Bits(0);
  EXPECT_THROW(controller->create_instance(s, 0), std::invalid_argument);
}

TEST_F(ControllerTest, HeartbeatsBuildMembershipAndPool) {
  controller->deploy_pna();
  const InstanceId id = controller->create_instance(spec(2), 99);

  FakeAgent a(sim, net), b(sim, net), c(sim, net);
  a.beat(controller->node_id(), PnaState::kIdle, kNoInstance);
  b.beat(controller->node_id(), PnaState::kBusy, id);
  c.beat(controller->node_id(), PnaState::kJoining, id);
  sim.run_until(sim.now() + sim::SimTime::from_seconds(5));

  EXPECT_EQ(controller->idle_pool_estimate(), 1u);
  EXPECT_EQ(controller->known_pna_count(), 3u);
  EXPECT_EQ(controller->status(id)->current_size, 1u);  // only busy counts

  c.beat(controller->node_id(), PnaState::kBusy, id);
  sim.run_until(sim.now() + sim::SimTime::from_seconds(5));
  EXPECT_EQ(controller->status(id)->current_size, 2u);
  EXPECT_TRUE(controller->status(id)->reached_target_at.has_value());
}

TEST_F(ControllerTest, SizeCallbackFires) {
  controller->deploy_pna();
  const InstanceId id = controller->create_instance(spec(1), 99);
  std::vector<std::size_t> sizes;
  controller->set_size_callback(
      [&](InstanceId i, std::size_t current, std::size_t target) {
        EXPECT_EQ(i, id);
        EXPECT_EQ(target, 1u);
        sizes.push_back(current);
      });
  FakeAgent a(sim, net);
  a.beat(controller->node_id(), PnaState::kBusy, id);
  sim.run_until(sim.now() + sim::SimTime::from_seconds(5));
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1}));
}

TEST_F(ControllerTest, OversizedInstanceTrimmedViaHeartbeatReplies) {
  controller->deploy_pna();
  const InstanceId id = controller->create_instance(spec(2), 99);
  std::vector<std::unique_ptr<FakeAgent>> agents;
  for (int i = 0; i < 4; ++i) {
    agents.push_back(std::make_unique<FakeAgent>(sim, net));
    agents.back()->beat(controller->node_id(), PnaState::kBusy, id);
  }
  sim.run_until(sim.now() + sim::SimTime::from_seconds(5));
  EXPECT_EQ(controller->status(id)->current_size, 4u);

  // Monitor tick computes pending trims; subsequent heartbeats are answered
  // with unicast resets until the instance shrinks to target.
  sim.run_until(sim.now() + sim::SimTime::from_seconds(11));
  for (auto& agent : agents) {
    agent->beat(controller->node_id(), PnaState::kBusy, id);
  }
  sim.run_until(sim.now() + sim::SimTime::from_seconds(1));
  int resets = 0;
  for (auto& agent : agents) resets += agent->resets;
  EXPECT_EQ(resets, 2);
  EXPECT_EQ(controller->status(id)->current_size, 2u);
  EXPECT_EQ(controller->stats().unicast_resets, 2u);
}

TEST_F(ControllerTest, DestroyBroadcastsResetAndDropsImage) {
  controller->deploy_pna();
  const InstanceId id = controller->create_instance(spec(2), 99);
  const std::string image_name = staged_control()->image.name;
  controller->destroy_instance(id);
  const auto reset = staged_control();
  ASSERT_TRUE(reset.has_value());
  EXPECT_EQ(reset->type, ControlType::kReset);
  EXPECT_EQ(reset->instance, id);
  EXPECT_EQ(channel.carousel().current().find(image_name), nullptr);
  EXPECT_FALSE(controller->status(id)->active);
  EXPECT_THROW(controller->destroy_instance(999), std::invalid_argument);
}

TEST_F(ControllerTest, BusyHeartbeatToInactiveInstanceGetsReset) {
  controller->deploy_pna();
  const InstanceId id = controller->create_instance(spec(2), 99);
  controller->destroy_instance(id);
  FakeAgent straggler(sim, net);
  straggler.beat(controller->node_id(), PnaState::kBusy, id);
  sim.run_until(sim.now() + sim::SimTime::from_seconds(5));
  EXPECT_EQ(straggler.resets, 1);
}

TEST_F(ControllerTest, ResizeAdjustsTarget) {
  controller->deploy_pna();
  const InstanceId id = controller->create_instance(spec(2), 99);
  controller->resize_instance(id, 5);
  EXPECT_EQ(controller->status(id)->target_size, 5u);
  EXPECT_THROW(controller->resize_instance(id, 0), std::invalid_argument);
  EXPECT_THROW(controller->resize_instance(999, 1), std::invalid_argument);
}

TEST_F(ControllerTest, StaleMembersPrunedAfterMissedHeartbeats) {
  controller->deploy_pna();
  const InstanceId id = controller->create_instance(spec(1), 99);
  FakeAgent a(sim, net);
  a.beat(controller->node_id(), PnaState::kBusy, id);
  sim.run_until(sim.now() + sim::SimTime::from_seconds(5));
  EXPECT_EQ(controller->status(id)->current_size, 1u);
  // Silence for > stale_factor * heartbeat_interval (3 x 30 s).
  sim.run_until(sim.now() + sim::SimTime::from_seconds(120));
  EXPECT_EQ(controller->status(id)->current_size, 0u);
  EXPECT_GE(controller->stats().members_pruned, 1u);
}

TEST_F(ControllerTest, RecompositionRebroadcastsWakeup) {
  controller->deploy_pna();
  const InstanceId id = controller->create_instance(spec(2), 99);
  FakeAgent idler(sim, net);
  // Keep one idle PNA announcing itself so the probability is positive.
  sim::PeriodicTask keep_alive(
      sim, sim::SimTime::from_seconds(1), sim::SimTime::from_seconds(20),
      [&] { idler.beat(controller->node_id(), PnaState::kIdle, kNoInstance); });
  // Wait beyond the recomposition cooldown (3 cycles + heartbeat interval).
  sim.run_until(sim::SimTime::from_seconds(300));
  keep_alive.cancel();
  EXPECT_GE(controller->stats().recompositions, 1u);
  EXPECT_GE(controller->status(id)->wakeups_broadcast, 2u);
  // The rebroadcast probability targets the deficit within the idle pool.
  const auto wakeup = staged_control();
  ASSERT_TRUE(wakeup.has_value());
  EXPECT_EQ(wakeup->type, ControlType::kWakeup);
  EXPECT_DOUBLE_EQ(wakeup->probability, 1.0);  // deficit 2 > idle pool 1
}

TEST_F(ControllerTest, OptionValidation) {
  // Deliberately through the deprecated aliases: a bad value forwarded
  // into the policy must still throw at construction.
  ControllerOptions bad;
  bad.monitor_interval = sim::SimTime::zero();
  EXPECT_THROW(Controller(sim, net, channel, store, 1,
                          net::LinkSpec{kMbps(1), kMbps(1),
                                        sim::SimTime::zero()},
                          bad),
               std::invalid_argument);
  bad = ControllerOptions{};
  bad.stale_factor = 1.0;
  EXPECT_THROW(Controller(sim, net, channel, store, 1,
                          net::LinkSpec{kMbps(1), kMbps(1),
                                        sim::SimTime::zero()},
                          bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace oddci::core

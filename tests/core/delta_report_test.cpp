// Delta-encoded aggregate reports: wire round-trips (including the
// epoch-wrap serial arithmetic and foreign-frame rejection), the
// aggregator's ledger/flush behaviour, and the resync protocol hooks the
// Controller drives over the same channel.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/aggregator.hpp"
#include "core/messages.hpp"
#include "core/wire.hpp"

namespace oddci::core {
namespace {

constexpr auto kMbps = [](double m) { return util::BitRate::from_mbps(m); };

using Kind = DeltaReportMessage::Kind;
using Op = DeltaReportMessage::Op;
using Entry = DeltaReportMessage::Entry;

// --- wire round-trips -------------------------------------------------------

DeltaReportMessage round_trip(const DeltaReportMessage& in) {
  const std::string bytes = wire::encode(in);
  const net::MessagePtr out = wire::decode_message(bytes);
  EXPECT_EQ(out->tag(), kTagDeltaReport);
  return *std::static_pointer_cast<const DeltaReportMessage>(out);
}

TEST(DeltaWire, DeltaFrameRoundTripsAllFields) {
  std::vector<Entry> entries;
  entries.push_back({7, Op::kUpdate, PnaState::kBusy, 3,
                     obs::TraceContext{0xABCDull, 0x1234ull}});
  entries.push_back({9, Op::kExpire, PnaState::kIdle, kNoInstance, {}});
  const DeltaReportMessage in(5, 42, Kind::kDelta, 0xDEADBEEFCAFEull,
                              entries);
  const DeltaReportMessage out = round_trip(in);

  EXPECT_EQ(out.origin(), 5u);
  EXPECT_EQ(out.epoch(), 42u);
  EXPECT_EQ(out.kind(), Kind::kDelta);
  EXPECT_EQ(out.checksum(), 0xDEADBEEFCAFEull);
  ASSERT_EQ(out.entries().size(), 2u);
  EXPECT_EQ(out.entries()[0].pna_id, 7u);
  EXPECT_EQ(out.entries()[0].op, Op::kUpdate);
  EXPECT_EQ(out.entries()[0].state, PnaState::kBusy);
  EXPECT_EQ(out.entries()[0].instance, 3u);
  EXPECT_EQ(out.entries()[0].trace.trace_id, 0xABCDull);
  EXPECT_EQ(out.entries()[0].trace.parent_span, 0x1234ull);
  EXPECT_EQ(out.entries()[1].pna_id, 9u);
  EXPECT_EQ(out.entries()[1].op, Op::kExpire);
}

TEST(DeltaWire, ResyncFrameAtEpochWrapRoundTrips) {
  // The epoch that precedes the wrap and the checksum with all bits set
  // must both survive the trip — a resync at the serial boundary is the
  // worst case for the Controller's gap detection.
  const DeltaReportMessage in(0, 0xFFFFFFFFu, Kind::kResync,
                              ~0ull, {{1, Op::kUpdate, PnaState::kIdle,
                                       kNoInstance, {}}});
  const DeltaReportMessage out = round_trip(in);
  EXPECT_EQ(out.epoch(), 0xFFFFFFFFu);
  EXPECT_EQ(out.kind(), Kind::kResync);
  EXPECT_EQ(out.checksum(), ~0ull);
}

TEST(DeltaWire, EmptyDeltaIsAValidKeepalive) {
  const DeltaReportMessage out =
      round_trip(DeltaReportMessage(3, 17, Kind::kDelta, 0, {}));
  EXPECT_EQ(out.origin(), 3u);
  EXPECT_TRUE(out.entries().empty());
}

TEST(DeltaWire, BatchRoundTripsFramesInOrder) {
  std::vector<std::shared_ptr<const DeltaReportMessage>> frames;
  frames.push_back(std::make_shared<DeltaReportMessage>(
      0, 1, Kind::kDelta, 0,
      std::vector<Entry>{{10, Op::kUpdate, PnaState::kBusy, 1, {}}}));
  frames.push_back(std::make_shared<DeltaReportMessage>(
      1, 6, Kind::kResync, 99, std::vector<Entry>{}));
  const DeltaBatchMessage in(frames);

  const net::MessagePtr decoded = wire::decode_message(wire::encode(in));
  ASSERT_EQ(decoded->tag(), kTagDeltaBatch);
  const auto& out = *std::static_pointer_cast<const DeltaBatchMessage>(decoded);
  ASSERT_EQ(out.frames().size(), 2u);
  EXPECT_EQ(out.frames()[0]->origin(), 0u);
  EXPECT_EQ(out.frames()[0]->epoch(), 1u);
  ASSERT_EQ(out.frames()[0]->entries().size(), 1u);
  EXPECT_EQ(out.frames()[0]->entries()[0].pna_id, 10u);
  EXPECT_EQ(out.frames()[1]->origin(), 1u);
  EXPECT_EQ(out.frames()[1]->kind(), Kind::kResync);
  EXPECT_EQ(out.frames()[1]->checksum(), 99u);
}

// Frame layout: tag(1) origin(4) epoch(4) kind(1) checksum(8) count(4),
// then 34-byte entries starting with pna_id(8) op(1).
TEST(DeltaWire, CorruptKindByteIsRejected) {
  std::string bytes =
      wire::encode(DeltaReportMessage(0, 1, Kind::kDelta, 0, {}));
  bytes[9] = 0x09;  // neither kDelta nor kResync
  EXPECT_THROW((void)wire::decode_message(bytes), wire::WireError);
}

TEST(DeltaWire, CorruptOpByteIsRejected) {
  std::string bytes = wire::encode(DeltaReportMessage(
      0, 1, Kind::kDelta, 0,
      {{1, Op::kUpdate, PnaState::kIdle, kNoInstance, {}}}));
  bytes[22 + 8] = 0x07;  // first entry's op, past kExpire
  EXPECT_THROW((void)wire::decode_message(bytes), wire::WireError);
}

TEST(DeltaWire, ImplausibleEntryCountIsRejected) {
  // A foreign frame promising more entries than the buffer could hold must
  // be rejected before any allocation is attempted.
  std::string bytes =
      wire::encode(DeltaReportMessage(0, 1, Kind::kDelta, 0, {}));
  for (int i = 18; i < 22; ++i) bytes[i] = static_cast<char>(0xFF);
  EXPECT_THROW((void)wire::decode_message(bytes), wire::WireError);
}

TEST(DeltaWire, ImplausibleBatchCountIsRejected) {
  std::string bytes = wire::encode(DeltaBatchMessage({}));
  // Batch count is the u32 right after the tag byte.
  for (int i = 1; i < 5; ++i) bytes[i] = static_cast<char>(0xFF);
  EXPECT_THROW((void)wire::decode_message(bytes), wire::WireError);
}

TEST(DeltaWire, TruncatedFrameIsRejected) {
  const std::string bytes = wire::encode(DeltaReportMessage(
      0, 1, Kind::kDelta, 0,
      {{1, Op::kUpdate, PnaState::kIdle, kNoInstance, {}}}));
  EXPECT_THROW(
      (void)wire::decode_message(std::string_view(bytes).substr(0, 30)),
      wire::WireError);
}

// --- protocol primitives ----------------------------------------------------

TEST(DeltaProtocol, EpochFollowsWrapsLikeSerialArithmetic) {
  EXPECT_TRUE(epoch_follows(1, 0));
  EXPECT_TRUE(epoch_follows(0, 0xFFFFFFFFu));  // RFC 1982 wrap
  EXPECT_FALSE(epoch_follows(2, 0));           // gap
  EXPECT_FALSE(epoch_follows(0, 0));           // replay
  EXPECT_FALSE(epoch_follows(0xFFFFFFFFu, 0));
}

TEST(DeltaProtocol, MemberMixIsOrderIndependentAndCancels) {
  const std::uint64_t a = delta_member_mix(1, PnaState::kBusy, 7);
  const std::uint64_t b = delta_member_mix(2, PnaState::kIdle, kNoInstance);
  const std::uint64_t c = delta_member_mix(3, PnaState::kJoining, 7);
  // Set checksum: XOR in any order is the same, add-then-remove cancels.
  EXPECT_EQ((a ^ b) ^ c, (c ^ a) ^ b);
  EXPECT_EQ((a ^ b) ^ b, a);
  // Single-member differences are visible in every field.
  EXPECT_NE(a, delta_member_mix(2, PnaState::kBusy, 7));
  EXPECT_NE(a, delta_member_mix(1, PnaState::kIdle, 7));
  EXPECT_NE(a, delta_member_mix(1, PnaState::kBusy, 8));
}

// --- aggregator ledger behaviour -------------------------------------------

class DeltaSink final : public net::Endpoint {
 public:
  void on_message(net::NodeId, const net::MessagePtr& message) override {
    if (message->tag() == kTagDeltaReport) {
      frames.push_back(
          std::static_pointer_cast<const DeltaReportMessage>(message));
    }
  }
  std::vector<std::shared_ptr<const DeltaReportMessage>> frames;
};

net::LinkSpec fast_link(double mbps) {
  net::LinkSpec link;
  link.uplink = kMbps(mbps);
  link.downlink = kMbps(mbps);
  link.latency = sim::SimTime::zero();
  return link;
}

class BeatSource final : public net::Endpoint {
 public:
  explicit BeatSource(net::Network& net) : net_(&net) {
    id_ = net.register_endpoint(this, fast_link(100));
  }
  void beat(net::NodeId to, std::uint64_t pna, PnaState state,
            InstanceId instance) {
    net_->send(id_, to,
               std::make_shared<HeartbeatMessage>(pna, state, instance));
  }
  void on_message(net::NodeId, const net::MessagePtr&) override {}
  [[nodiscard]] net::NodeId id() const { return id_; }

 private:
  net::Network* net_;
  net::NodeId id_;
};

struct DeltaAggregatorTest : ::testing::Test {
  sim::Simulation sim;
  net::Network net{sim};
  DeltaSink controller;
  net::NodeId controller_id =
      net.register_endpoint(&controller, fast_link(1000));
  net::LinkSpec fast = fast_link(1000);
  AggregatorOptions options = [] {
    AggregatorOptions o;
    o.mode = HeartbeatMode::kDelta;
    o.resync_every = 4;
    return o;
  }();
};

TEST_F(DeltaAggregatorTest, FirstFrameIsAChecksummedResync) {
  HeartbeatAggregator agg(sim, net, controller_id, fast, options);
  BeatSource src(net);
  src.beat(agg.node_id(), 1, PnaState::kIdle, kNoInstance);
  src.beat(agg.node_id(), 2, PnaState::kBusy, 5);
  sim.run_until(sim::SimTime::from_seconds(11));

  ASSERT_EQ(controller.frames.size(), 1u);
  const auto& f = *controller.frames[0];
  EXPECT_EQ(f.kind(), Kind::kResync);
  ASSERT_EQ(f.entries().size(), 2u);
  std::uint64_t expect = 0;
  for (const auto& e : f.entries()) {
    expect ^= delta_member_mix(e.pna_id, e.state, e.instance);
  }
  EXPECT_EQ(f.checksum(), expect);
  EXPECT_EQ(agg.stats().resyncs_sent, 1u);
  EXPECT_EQ(agg.ledger_members(), 2u);
}

TEST_F(DeltaAggregatorTest, SteadyStateShipsOnlyChanges) {
  HeartbeatAggregator agg(sim, net, controller_id, fast, options);
  BeatSource src(net);
  // 20 members re-beat unchanged every window; one newcomer joins after
  // the initial resync.
  sim::PeriodicTask beats(sim, sim::SimTime::from_seconds(1),
                          sim::SimTime::from_seconds(5), [&] {
                            for (std::uint64_t pna = 0; pna < 20; ++pna) {
                              src.beat(agg.node_id(), pna, PnaState::kIdle,
                                       kNoInstance);
                            }
                          });
  sim.run_until(sim::SimTime::from_seconds(12));
  ASSERT_EQ(controller.frames.size(), 1u);  // the resync
  src.beat(agg.node_id(), 100, PnaState::kBusy, 2);
  sim.run_until(sim::SimTime::from_seconds(22));
  beats.cancel();

  ASSERT_EQ(controller.frames.size(), 2u);
  const auto& f = *controller.frames[1];
  EXPECT_EQ(f.kind(), Kind::kDelta);
  ASSERT_EQ(f.entries().size(), 1u);  // 20 unchanged members not re-sent
  EXPECT_EQ(f.entries()[0].pna_id, 100u);
  EXPECT_EQ(f.entries()[0].state, PnaState::kBusy);
  EXPECT_TRUE(epoch_follows(f.epoch(), controller.frames[0]->epoch()));
}

TEST_F(DeltaAggregatorTest, QuietWindowsSendEmptyKeepalives) {
  HeartbeatAggregator agg(sim, net, controller_id, fast, options);
  BeatSource src(net);
  src.beat(agg.node_id(), 1, PnaState::kIdle, kNoInstance);
  sim.run_until(sim::SimTime::from_seconds(35));
  // Resync at t=10, then empty keepalive deltas every window so the
  // Controller's liveness/failover view of this aggregator stays fresh.
  ASSERT_GE(controller.frames.size(), 3u);
  EXPECT_EQ(controller.frames[1]->kind(), Kind::kDelta);
  EXPECT_TRUE(controller.frames[1]->entries().empty());
  // Epochs stay consecutive across keepalives.
  for (std::size_t i = 1; i < controller.frames.size(); ++i) {
    EXPECT_TRUE(epoch_follows(controller.frames[i]->epoch(),
                              controller.frames[i - 1]->epoch()));
  }
}

TEST_F(DeltaAggregatorTest, PeriodicResyncEveryNthFrame) {
  HeartbeatAggregator agg(sim, net, controller_id, fast, options);
  BeatSource src(net);
  sim::PeriodicTask beats(sim, sim::SimTime::from_seconds(1),
                          sim::SimTime::from_seconds(5), [&] {
                            src.beat(agg.node_id(), 1, PnaState::kIdle,
                                     kNoInstance);
                          });
  // resync_every = 4: frames 1, 5, 9 are resyncs.
  sim.run_until(sim::SimTime::from_seconds(95));
  beats.cancel();
  ASSERT_GE(controller.frames.size(), 9u);
  EXPECT_EQ(controller.frames[0]->kind(), Kind::kResync);
  EXPECT_EQ(controller.frames[4]->kind(), Kind::kResync);
  EXPECT_EQ(controller.frames[8]->kind(), Kind::kResync);
  EXPECT_EQ(controller.frames[1]->kind(), Kind::kDelta);
  EXPECT_EQ(agg.stats().resyncs_sent, 3u);
}

TEST_F(DeltaAggregatorTest, SilentMembersAreExpiredWithExplicitDeltas) {
  options.expiry = sim::SimTime::from_seconds(25);
  HeartbeatAggregator agg(sim, net, controller_id, fast, options);
  BeatSource src(net);
  src.beat(agg.node_id(), 1, PnaState::kBusy, 9);
  // Member 2 keeps beating; member 1 goes silent after its first beat.
  sim::PeriodicTask beats(sim, sim::SimTime::from_seconds(1),
                          sim::SimTime::from_seconds(5), [&] {
                            src.beat(agg.node_id(), 2, PnaState::kIdle,
                                     kNoInstance);
                          });
  sim.run_until(sim::SimTime::from_seconds(60));
  beats.cancel();

  bool expired = false;
  for (const auto& f : controller.frames) {
    for (const auto& e : f->entries()) {
      if (e.pna_id == 1 && e.op == Op::kExpire) expired = true;
    }
  }
  EXPECT_TRUE(expired);
  EXPECT_GE(agg.stats().expiries_sent, 1u);
  EXPECT_EQ(agg.ledger_members(), 1u);  // only the live member remains
}

TEST_F(DeltaAggregatorTest, RestartAfterCrashLeadsWithAResync) {
  HeartbeatAggregator agg(sim, net, controller_id, fast, options);
  BeatSource src(net);
  sim::PeriodicTask beats(sim, sim::SimTime::from_seconds(1),
                          sim::SimTime::from_seconds(5), [&] {
                            src.beat(agg.node_id(), 1, PnaState::kIdle,
                                     kNoInstance);
                          });
  sim.run_until(sim::SimTime::from_seconds(12));
  const std::size_t before = controller.frames.size();
  sim.schedule_timer_in(sim::SimTime::from_seconds(1), [&] { agg.crash(); },
                        sim::SimTime::zero(), sim::EventPriority::kDefault);
  sim.schedule_timer_in(sim::SimTime::from_seconds(5), [&] { agg.restart(); },
                        sim::SimTime::zero(), sim::EventPriority::kDefault);
  sim.run_until(sim::SimTime::from_seconds(60));
  beats.cancel();

  // The ledger died with the crash; the first post-restart frame must be a
  // full resync so the Controller can rebuild the slice.
  ASSERT_GT(controller.frames.size(), before);
  EXPECT_EQ(controller.frames[before]->kind(), Kind::kResync);
}

TEST_F(DeltaAggregatorTest, ResyncRequestForcesFullFrameNextFlush) {
  options.resync_every = 1000;  // no scheduled resync inside this test
  HeartbeatAggregator agg(sim, net, controller_id, fast, options);
  BeatSource src(net);
  sim::PeriodicTask beats(sim, sim::SimTime::from_seconds(1),
                          sim::SimTime::from_seconds(5), [&] {
                            src.beat(agg.node_id(), 1, PnaState::kIdle,
                                     kNoInstance);
                          });
  sim.run_until(sim::SimTime::from_seconds(25));
  ASSERT_GE(controller.frames.size(), 2u);
  EXPECT_EQ(controller.frames[1]->kind(), Kind::kDelta);

  // The Controller's desync signal: an empty kResync frame sent downstream.
  const std::size_t before = controller.frames.size();
  net.send(controller_id, agg.node_id(),
           std::make_shared<DeltaReportMessage>(
               options.origin, 0, Kind::kResync, 0,
               std::vector<Entry>{}));
  sim.run_until(sim::SimTime::from_seconds(45));
  beats.cancel();

  ASSERT_GT(controller.frames.size(), before);
  EXPECT_EQ(controller.frames[before]->kind(), Kind::kResync);
}

}  // namespace
}  // namespace oddci::core

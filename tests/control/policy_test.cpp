#include "control/policy.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analytical/models.hpp"
#include "control/bandit_policy.hpp"
#include "control/proportional_policy.hpp"
#include "control/static_policy.hpp"
#include "core/controller.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace oddci::control {
namespace {

ControlObservation obs_at(std::size_t target, std::size_t members,
                          std::size_t joining, std::size_t idle,
                          std::uint64_t instance = 1) {
  ControlObservation o;
  o.now = sim::SimTime::from_seconds(100);
  o.instance = instance;
  o.target = target;
  o.members = members;
  o.joining = joining;
  o.idle_pool = idle;
  o.known_pnas = idle + members + joining;
  o.recruiting = true;
  o.heartbeat_interval = sim::SimTime::from_seconds(30);
  return o;
}

TEST(EngineKind, RoundTripsThroughStrings) {
  for (const EngineKind kind :
       {EngineKind::kStatic, EngineKind::kProportional, EngineKind::kBandit}) {
    EXPECT_EQ(engine_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW((void)engine_kind_from_string("pid"), std::invalid_argument);
}

TEST(PolicyOptions, ValidationRejectsOutOfRangeKnobs) {
  const auto bad = [](auto&& mutate) {
    PolicyOptions o;
    mutate(o);
    EXPECT_THROW(o.validate(), std::invalid_argument);
  };
  PolicyOptions ok;
  EXPECT_NO_THROW(ok.validate());
  bad([](PolicyOptions& o) { o.monitor_interval = sim::SimTime::zero(); });
  bad([](PolicyOptions& o) { o.stale_factor = 1.0; });
  bad([](PolicyOptions& o) { o.overshoot_margin = 0.0; });
  bad([](PolicyOptions& o) { o.min_suitability = -1.0; });
  bad([](PolicyOptions& o) { o.gain = 0.0; });
  bad([](PolicyOptions& o) { o.integral_gain = -0.1; });
  bad([](PolicyOptions& o) { o.max_step = 0.0; });
  bad([](PolicyOptions& o) { o.max_step = 1.5; });
  bad([](PolicyOptions& o) { o.trim_hysteresis = -0.1; });
  bad([](PolicyOptions& o) { o.arms.clear(); });
  bad([](PolicyOptions& o) { o.arms = {1.0, 0.0}; });
  bad([](PolicyOptions& o) { o.explore = 1.5; });
}

TEST(MakeEngine, DispatchesOnKindAndValidates) {
  PolicyOptions o;
  EXPECT_EQ(make_engine(o)->name(), "static");
  o.engine = EngineKind::kProportional;
  EXPECT_EQ(make_engine(o)->name(), "proportional");
  o.engine = EngineKind::kBandit;
  EXPECT_EQ(make_engine(o)->name(), "bandit");
  o.overshoot_margin = -1.0;
  EXPECT_THROW((void)make_engine(o), std::invalid_argument);
}

TEST(StaticPolicy, MatchesLegacyProbabilityRule) {
  PolicyOptions o;
  o.overshoot_margin = 1.3;
  StaticPolicy engine(o);

  // No population information: address everyone.
  EXPECT_DOUBLE_EQ(engine.initial_probability(obs_at(10, 0, 0, 0)), 1.0);
  // margin * target / idle.
  EXPECT_DOUBLE_EQ(engine.initial_probability(obs_at(10, 0, 0, 100)), 0.13);
  // Clamp at 1 when the deficit saturates the pool.
  EXPECT_DOUBLE_EQ(engine.initial_probability(obs_at(200, 0, 0, 100)), 1.0);

  // Deficit counts joining members; probability covers the residual gap.
  const ControlAction recruit = engine.decide(obs_at(10, 4, 2, 100));
  ASSERT_TRUE(recruit.probability.has_value());
  EXPECT_DOUBLE_EQ(*recruit.probability, 1.3 * 4.0 / 100.0);
  EXPECT_EQ(recruit.trim, 0u);

  // Exactly at target: no action either way.
  const ControlAction steady = engine.decide(obs_at(10, 10, 0, 100));
  EXPECT_FALSE(steady.probability.has_value());
  EXPECT_EQ(steady.trim, 0u);

  // Oversized: shed everything above target, like the pre-engine loop.
  const ControlAction trim = engine.decide(obs_at(10, 14, 0, 0));
  EXPECT_FALSE(trim.probability.has_value());
  EXPECT_EQ(trim.trim, 4u);
}

TEST(ProportionalPolicy, IntegralAccumulatesUnderDeficitAndResets) {
  PolicyOptions o;
  o.engine = EngineKind::kProportional;
  o.gain = 1.0;
  o.integral_gain = 0.5;
  o.integral_cap = 0.3;
  ProportionalPolicy engine(o);

  // Persistent deficit of 10 against a pool of 100: error 0.1 per tick.
  const auto deficit = obs_at(20, 10, 0, 100);
  const ControlAction first = engine.decide(deficit);
  ASSERT_TRUE(first.probability.has_value());
  EXPECT_DOUBLE_EQ(*first.probability, 0.1);  // pure feedforward
  EXPECT_DOUBLE_EQ(engine.integral(1), 0.05);

  const ControlAction second = engine.decide(deficit);
  EXPECT_DOUBLE_EQ(*second.probability, 0.15);  // feedforward + integral

  // Windup is capped.
  for (int i = 0; i < 20; ++i) (void)engine.decide(deficit);
  EXPECT_DOUBLE_EQ(engine.integral(1), 0.3);

  // Overshoot resets the integral and trims.
  const ControlAction trim = engine.decide(obs_at(20, 25, 0, 0));
  EXPECT_EQ(trim.trim, 5u);
  EXPECT_DOUBLE_EQ(engine.integral(1), 0.0);

  engine.forget(1);
  EXPECT_DOUBLE_EQ(engine.integral(1), 0.0);
}

TEST(ProportionalPolicy, MaxStepCapsAndHysteresisDampsTrims) {
  PolicyOptions o;
  o.engine = EngineKind::kProportional;
  o.max_step = 0.25;
  o.trim_hysteresis = 0.2;
  ProportionalPolicy engine(o);

  // Deficit would ask for 0.5; the ramp limit holds it to 0.25.
  const ControlAction capped = engine.decide(obs_at(100, 50, 0, 100));
  EXPECT_DOUBLE_EQ(*capped.probability, 0.25);

  // 15% over target sits inside the 20% hysteresis band: no trim.
  const ControlAction inside = engine.decide(obs_at(100, 115, 0, 0));
  EXPECT_EQ(inside.trim, 0u);
  // 25% over target exceeds the band: the whole excess is shed.
  const ControlAction outside = engine.decide(obs_at(100, 125, 0, 0));
  EXPECT_EQ(outside.trim, 25u);
}

TEST(BanditPolicy, DeterministicPerSeedAndLearnsFromOutcomes) {
  PolicyOptions o;
  o.engine = EngineKind::kBandit;
  o.seed = 0xB007;
  BanditPolicy a(o), b(o);

  // Identical decision trajectories for identical seeds: the only
  // randomness is the private stream.
  for (int tick = 0; tick < 50; ++tick) {
    const auto observation = obs_at(100, static_cast<std::size_t>(tick), 0,
                                    1000);
    const ControlAction left = a.decide(observation);
    const ControlAction right = b.decide(observation);
    ASSERT_EQ(left.probability.has_value(), right.probability.has_value());
    if (left.probability) {
      EXPECT_DOUBLE_EQ(*left.probability, *right.probability);
    }
    EXPECT_EQ(left.trim, right.trim);
  }

  // Scoring: a pull followed by full progress credits the pulled arm.
  BanditPolicy learner(o);
  (void)learner.decide(obs_at(100, 0, 0, 1000));   // pull (deficit 100)
  (void)learner.decide(obs_at(100, 100, 0, 1000)); // gap closed: reward 1
  double learned = 0.0;
  for (std::size_t regime = 0; regime < BanditPolicy::kRegimes; ++regime) {
    for (std::size_t arm = 0; arm < o.arms.size(); ++arm) {
      learned += learner.arm_value(regime, arm);
    }
  }
  EXPECT_DOUBLE_EQ(learned, 1.0);

  // forget() drops the pending pull: the next decision scores nothing.
  BanditPolicy forgetter(o);
  (void)forgetter.decide(obs_at(100, 0, 0, 1000));
  forgetter.forget(1);
  (void)forgetter.decide(obs_at(100, 100, 0, 1000));
  for (std::size_t regime = 0; regime < BanditPolicy::kRegimes; ++regime) {
    for (std::size_t arm = 0; arm < o.arms.size(); ++arm) {
      EXPECT_DOUBLE_EQ(forgetter.arm_value(regime, arm), 0.0);
    }
  }
}

TEST(Admission, FloorZeroAdmitsEverythingWithoutCounting) {
  PolicyOptions o;
  StaticPolicy engine(o);
  AdmissionRequest request;
  request.tasks = 100;
  request.input_bits = 1e9;  // grotesquely communication-heavy
  request.result_bits = 1e9;
  request.task_seconds = 0.001;
  request.delta = util::BitRate::from_kbps(150);
  EXPECT_EQ(engine.admit(request), Admission::kAdmit);
  EXPECT_EQ(engine.jobs_admitted(), 0u);
  EXPECT_EQ(engine.jobs_deferred(), 0u);
}

TEST(Admission, PhiFloorDefersCommunicationHeavyJobs) {
  PolicyOptions o;
  o.min_suitability = 10.0;
  StaticPolicy engine(o);

  AdmissionRequest heavy;
  heavy.tasks = 100;
  heavy.input_bits = 1e6;
  heavy.result_bits = 1e6;
  heavy.task_seconds = 1.0;  // Phi = 150e3 / 2e6 = 0.075
  heavy.delta = util::BitRate::from_kbps(150);
  ASSERT_LT(analytical::suitability(heavy.input_bits, heavy.result_bits,
                                    heavy.delta, heavy.task_seconds),
            o.min_suitability);
  EXPECT_EQ(engine.admit(heavy), Admission::kDefer);

  AdmissionRequest light = heavy;
  light.task_seconds = 1000.0;  // Phi = 75
  EXPECT_EQ(engine.admit(light), Admission::kAdmit);

  EXPECT_EQ(engine.jobs_admitted(), 1u);
  EXPECT_EQ(engine.jobs_deferred(), 1u);
}

TEST(StreamSeed, NamedStreamsAreDeterministicAndDisjoint) {
  EXPECT_EQ(util::stream_seed(42, "control.policy"),
            util::stream_seed(42, "control.policy"));
  EXPECT_NE(util::stream_seed(42, "control.policy"),
            util::stream_seed(42, "population"));
  EXPECT_NE(util::stream_seed(42, "control.policy"),
            util::stream_seed(43, "control.policy"));
  // The stream seed is not the root: a policy drawing from it never
  // replays the population's sequence.
  EXPECT_NE(util::stream_seed(42, "control.policy"), 42u);
}

struct DeprecatedAliasTest : ::testing::Test {
  std::vector<std::string> warnings;

  void SetUp() override {
    core::reset_controller_deprecation_warnings();
    util::Logger::instance().set_sink(
        [this](util::LogLevel level, const std::string& line) {
          if (level == util::LogLevel::kWarn) warnings.push_back(line);
        });
  }
  void TearDown() override { util::Logger::instance().clear_sink(); }
};

TEST_F(DeprecatedAliasTest, AliasesForwardIntoPolicyAndWinOverIt) {
  core::ControllerOptions options;
  options.policy.overshoot_margin = 1.1;
  options.overshoot_margin = 1.7;  // deprecated alias takes precedence
  options.stale_factor = 5.0;
  options.monitor_interval = sim::SimTime::from_seconds(25);

  const PolicyOptions effective = options.effective_policy();
  EXPECT_DOUBLE_EQ(effective.overshoot_margin, 1.7);
  EXPECT_DOUBLE_EQ(effective.stale_factor, 5.0);
  EXPECT_EQ(effective.monitor_interval, sim::SimTime::from_seconds(25));
  EXPECT_EQ(warnings.size(), 3u);
  for (const auto& line : warnings) {
    EXPECT_NE(line.find("deprecated"), std::string::npos) << line;
  }

  // Warnings fire once per field per process, not per call.
  (void)options.effective_policy();
  EXPECT_EQ(warnings.size(), 3u);
}

TEST_F(DeprecatedAliasTest, UnsetAliasesAreSilentAndLeavePolicyUntouched) {
  core::ControllerOptions options;
  options.policy.overshoot_margin = 1.3;
  const PolicyOptions effective = options.effective_policy();
  EXPECT_DOUBLE_EQ(effective.overshoot_margin, 1.3);
  EXPECT_DOUBLE_EQ(effective.stale_factor, 3.0);
  EXPECT_TRUE(warnings.empty());
}

}  // namespace
}  // namespace oddci::control

// System-level gates for the pluggable DecisionEngine: the default static
// engine must be indistinguishable from the pre-engine Controller, the
// proportional engine must actually converge under churn without grow/trim
// oscillation, Phi-driven admission must keep communication-heavy jobs off
// the air entirely, and every engine must replay byte-identically per
// (seed, shard count) — the bandit included, whose only randomness is the
// dedicated control.policy stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "control/policy.hpp"
#include "core/system.hpp"
#include "obs/export.hpp"
#include "obs/trace_export.hpp"
#include "workload/job.hpp"

namespace oddci::core {
namespace {

struct Export {
  std::string metrics_json;
  std::string chrome_trace;
  std::uint64_t events_executed = 0;
  bool completed = false;
};

Export run_traced(SystemConfig config) {
  config.obs.trace = true;
  config.obs.trace_capacity = 1 << 16;
  OddciSystem system(config);
  const auto job = workload::make_uniform_job(
      "control-gate", util::Bits::from_megabytes(2), 200,
      util::Bits::from_bytes(512), util::Bits::from_bytes(512), 10.0);
  const auto result = system.run_job(job, 100);

  Export e;
  e.metrics_json = obs::to_json(result.metrics);
  e.chrome_trace = obs::to_chrome_trace(*system.flight_recorder());
  e.events_executed = system.simulation().events_executed();
  e.completed = result.completed;
  return e;
}

// Selecting the static engine explicitly — even with a nonzero policy
// seed — must be byte-identical to the default-constructed config: the
// static engine draws no randomness, emits no trace events, and registers
// no metric cells, so the engine plumbing itself is invisible.
TEST(ControlSystem, ExplicitStaticIsByteIdenticalToDefault) {
  SystemConfig config;
  config.receivers = 3000;
  config.channels = 2;
  config.aggregators = 4;
  config.seed = 20260809;
  config.control.overshoot_margin = 1.3;

  const Export implicit = run_traced(config);

  config.control.engine = control::EngineKind::kStatic;
  config.control.seed = 0xDEADBEEF;  // unused by the static engine
  const Export explicit_static = run_traced(config);

  EXPECT_TRUE(implicit.completed);
  EXPECT_EQ(implicit.events_executed, explicit_static.events_executed);
  EXPECT_EQ(implicit.metrics_json, explicit_static.metrics_json);
  EXPECT_EQ(implicit.chrome_trace, explicit_static.chrome_trace);
}

// Under receiver churn the proportional engine must still form the
// instance, and the hysteresis band plus integral reset must keep the
// membership from see-sawing: bounded peak overshoot, no runaway trimming.
TEST(ControlSystem, ProportionalConvergesUnderChurnWithoutOscillation) {
  SystemConfig config;
  config.receivers = 2000;
  config.seed = 7;
  config.control.engine = control::EngineKind::kProportional;
  config.control.integral_gain = 0.3;
  config.control.integral_cap = 0.5;
  config.control.trim_hysteresis = 0.1;
  ChurnOptions churn;
  churn.mean_on_seconds = 3600.0;
  churn.mean_off_seconds = 600.0;
  config.churn = churn;
  OddciSystem system(config);
  system.controller().deploy_pna();
  system.simulation().run_until(sim::SimTime::from_seconds(120));

  constexpr std::size_t kTarget = 100;
  InstanceSpec spec;
  spec.name = "pi-churn";
  spec.target_size = kTarget;
  spec.image_size = util::Bits::from_megabytes(1);
  const auto id =
      system.provider().request_instance(spec, system.backend().node_id());

  std::size_t peak = 0;
  bool reached = false;
  for (int tick = 0; tick < 180; ++tick) {  // 30 simulated minutes
    system.simulation().run_until(system.simulation().now() +
                                  sim::SimTime::from_seconds(10));
    const std::size_t size = system.controller().status(id)->current_size;
    peak = std::max(peak, size);
    reached = reached || size >= kTarget;
  }
  EXPECT_TRUE(reached);
  // Peak membership stays within 50% of target — the PI loop ramps instead
  // of flooding (p = 1 would overshoot by ~10x in this population).
  EXPECT_LE(peak, kTarget + kTarget / 2);
  // Oscillation fingerprint: trims shed at most a modest multiple of the
  // hysteresis band over the whole half hour, not a sustained churn of
  // grow/trim cycles.
  EXPECT_LE(system.controller().status(id)->unicast_resets, kTarget);
}

// A communication-heavy job below the Phi floor must be deferred before
// anything touches the broadcast plane: no instance, no wakeup, the
// deferral visible on the RunResult and the engine's counters.
TEST(ControlSystem, PhiAdmissionDefersCommunicationHeavyJob) {
  SystemConfig config;
  config.receivers = 500;
  config.seed = 11;
  config.control.min_suitability = 50.0;

  OddciSystem system(config);
  // Phi = delta * p / (s + r): 1 s of compute against 1 MB round-trip at
  // 150 kbps is deep below the floor of 50.
  const auto heavy = workload::make_uniform_job(
      "chatty", util::Bits::from_megabytes(2), 50,
      util::Bits::from_kilobytes(512), util::Bits::from_kilobytes(512), 1.0);
  ASSERT_LT(workload::suitability(heavy, config.delta), 50.0);
  const auto deferred = system.run_job(heavy, 20);
  EXPECT_FALSE(deferred.admitted);
  EXPECT_FALSE(deferred.completed);
  EXPECT_EQ(deferred.final_instance_size, 0u);
  EXPECT_EQ(system.controller().engine().jobs_deferred(), 1u);
  EXPECT_EQ(system.controller().stats().recompositions, 0u);

  // The same system still admits a compute-heavy job afterwards.
  const auto light = workload::make_uniform_job(
      "crunchy", util::Bits::from_megabytes(2), 50,
      util::Bits::from_bytes(256), util::Bits::from_bytes(256), 60.0);
  ASSERT_GT(workload::suitability(light, config.delta), 50.0);
  const auto admitted = system.run_job(light, 20);
  EXPECT_TRUE(admitted.admitted);
  EXPECT_TRUE(admitted.completed);
  EXPECT_EQ(system.controller().engine().jobs_admitted(), 1u);
}

// Every engine replays byte-identically for a fixed (seed, shard count),
// shard counts above one included. The bandit's draws come exclusively
// from the named control.policy stream on the control shard, so worker
// shard scheduling cannot perturb them.
class EngineReplay
    : public ::testing::TestWithParam<std::tuple<control::EngineKind,
                                                 std::size_t>> {};

TEST_P(EngineReplay, SeededRunIsByteIdenticalPerShardCount) {
  const auto [kind, shards] = GetParam();
  auto run = [&] {
    SystemConfig config;
    config.receivers = 2000;
    config.channels = 2;
    config.seed = 20260809;
    config.shards = shards;
    config.control.engine = kind;
    config.control.overshoot_margin = 1.3;
    ChurnOptions churn;
    churn.mean_on_seconds = 1800.0;
    churn.mean_off_seconds = 900.0;
    config.churn = churn;
    OddciSystem system(config);
    const auto job = workload::make_uniform_job(
        "engine-replay", util::Bits::from_megabytes(2), 100,
        util::Bits::from_bytes(512), util::Bits::from_bytes(512), 10.0);
    const auto result = system.run_job(job, 50);
    return std::pair<std::string, bool>{obs::to_json(result.metrics),
                                        result.completed};
  };
  const auto first = run();
  const auto second = run();
  EXPECT_TRUE(first.second);
  EXPECT_EQ(first.first, second.first);
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesAndShardCounts, EngineReplay,
    ::testing::Combine(::testing::Values(control::EngineKind::kStatic,
                                         control::EngineKind::kProportional,
                                         control::EngineKind::kBandit),
                       ::testing::Values(std::size_t{1}, std::size_t{2})),
    [](const auto& info) {
      return std::string(
                 control::to_string(std::get<0>(info.param))) +
             "_K" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace oddci::core

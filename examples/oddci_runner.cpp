// oddci_runner — scenario driver: build an OddCI system from a key=value
// configuration file (see examples/scenarios/*.cfg), run one job, and print
// the measured metrics next to the paper's analytical model.
//
// Usage:
//   oddci_runner <scenario.cfg> [--progress] [key=value overrides...]
//
// Every parameter has a default, so `oddci_runner /dev/null` runs a sane
// baseline scenario. Overrides on the command line win over the file.
// `--progress` (or progress=1) streams one NDJSON line of run telemetry
// to stderr every `progress_every_s` of sim time (wall-gated to >= 2 Hz).

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

#include "analytical/models.hpp"
#include "control/policy.hpp"
#include "core/system.hpp"
#include "obs/export.hpp"
#include "obs/health.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_export.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "workload/job.hpp"

namespace {

using namespace oddci;

/// Resident set size in MiB (Linux /proc; 0.0 where unavailable).
double resident_mb() {
  std::ifstream statm("/proc/self/statm");
  std::uint64_t pages = 0;
  std::uint64_t resident = 0;
  if (!(statm >> pages >> resident)) return 0.0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<double>(resident) *
         static_cast<double>(page > 0 ? page : 4096) / (1024.0 * 1024.0);
}

/// Hang the NDJSON progress stream on the kernel's coordinator hook: every
/// `progress_every_s` of sim time (and at most ~2 lines per wall second)
/// one `oddci.progress.v1` object goes to stderr — sim time, event totals
/// and throughput, RSS, and per-shard executed/pending/lag. Stderr only:
/// stdout stays the report the scenario scripts parse.
void install_progress(core::OddciSystem& system, double every_s) {
  struct State {
    std::chrono::steady_clock::time_point start;
    std::chrono::steady_clock::time_point last_emit;
    std::uint64_t last_events = 0;
    double last_wall = 0.0;
  };
  auto state = std::make_shared<State>();
  state->start = std::chrono::steady_clock::now();
  state->last_emit = state->start - std::chrono::seconds(1);
  core::OddciSystem* sys = &system;
  system.kernel().set_progress(
      [sys, state] {
        const auto now = std::chrono::steady_clock::now();
        if (now - state->last_emit < std::chrono::milliseconds(500)) return;
        state->last_emit = now;
        auto& kernel = sys->kernel();
        const std::size_t shards = kernel.shard_count();
        std::uint64_t events = 0;
        double max_now_s = 0.0;
        for (std::size_t s = 0; s < shards; ++s) {
          events += kernel.shard(s).events_executed();
          max_now_s = std::max(max_now_s, kernel.shard(s).now().seconds());
        }
        const double wall =
            std::chrono::duration<double>(now - state->start).count();
        const double dw = wall - state->last_wall;
        const double rate =
            dw > 0.0
                ? static_cast<double>(events - state->last_events) / dw
                : 0.0;
        state->last_wall = wall;
        state->last_events = events;
        std::cerr << "{\"schema\":\"oddci.progress.v1\",\"sim_s\":"
                  << max_now_s << ",\"wall_s\":" << wall
                  << ",\"events\":" << events << ",\"events_per_s\":" << rate
                  << ",\"rss_mb\":" << resident_mb() << ",\"shards\":[";
        for (std::size_t s = 0; s < shards; ++s) {
          const sim::Simulation& shard = kernel.shard(s);
          if (s > 0) std::cerr << ',';
          std::cerr << "{\"shard\":" << s
                    << ",\"executed\":" << shard.events_executed()
                    << ",\"pending\":" << shard.pending_events()
                    << ",\"lag_s\":" << max_now_s - shard.now().seconds()
                    << '}';
        }
        std::cerr << "]}\n";
      },
      sim::SimTime::from_seconds(every_s));
}

core::SystemConfig system_config(const util::Config& cfg) {
  core::SystemConfig config;
  config.receivers =
      static_cast<std::size_t>(cfg.get_int("receivers", 1000));
  config.channels = static_cast<std::size_t>(cfg.get_int("channels", 1));
  config.beta = util::BitRate::from_mbps(cfg.get_double("beta_mbps", 1.0));
  config.delta =
      util::BitRate::from_kbps(cfg.get_double("delta_kbps", 150.0));
  config.section_loss = cfg.get_double("section_loss", 0.0);
  config.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  config.control.overshoot_margin = cfg.get_double("overshoot", 1.3);
  config.controller.default_heartbeat =
      sim::SimTime::from_seconds(cfg.get_double("heartbeat_s", 30.0));
  // Control-loop policy: which decision engine drives wakeup probability,
  // trimming, and Phi-driven admission (static | proportional | bandit).
  config.control.engine = control::engine_kind_from_string(
      cfg.get_string("control_engine", "static"));
  config.control.min_suitability = cfg.get_double("control_min_phi", 0.0);
  config.control.gain = cfg.get_double("control_gain", 1.0);
  config.control.integral_gain =
      cfg.get_double("control_integral_gain", 0.3);
  config.control.integral_cap = cfg.get_double("control_integral_cap", 0.5);
  config.control.max_step = cfg.get_double("control_max_step", 1.0);
  config.control.trim_hysteresis =
      cfg.get_double("control_trim_hysteresis", 0.0);
  config.control.explore = cfg.get_double("control_explore", 0.1);
  config.control.seed =
      static_cast<std::uint64_t>(cfg.get_int("control_seed", 0));
  config.tuned_fraction = cfg.get_double("tuned_fraction", 1.0);
  config.aggregators =
      static_cast<std::size_t>(cfg.get_int("aggregators", 0));
  // O(changes) return channel: delta-encoded aggregate reports, optional
  // relay tier, paced heartbeats, and the modeled (bounded-queue) links on
  // the PNA -> aggregator -> Controller path. All default off.
  const std::string hb_mode = cfg.get_string("heartbeat_mode", "naive");
  if (hb_mode == "delta") {
    config.heartbeat.mode = core::HeartbeatMode::kDelta;
  } else if (hb_mode != "naive") {
    throw std::runtime_error("heartbeat_mode must be 'naive' or 'delta'");
  }
  config.heartbeat.resync_every =
      static_cast<std::uint32_t>(cfg.get_int("resync_every", 30));
  const double expiry_s = cfg.get_double("heartbeat_expiry_s", 0.0);
  if (expiry_s > 0.0) {
    config.heartbeat.expiry = sim::SimTime::from_seconds(expiry_s);
  }
  config.heartbeat.tree_fanin =
      static_cast<std::size_t>(cfg.get_int("tree_fanin", 0));
  config.heartbeat.paced = cfg.get_bool("heartbeat_paced", false);
  const double pace_window_s = cfg.get_double("pace_window_s", 0.0);
  if (pace_window_s > 0.0) {
    config.heartbeat.pace_window = sim::SimTime::from_seconds(pace_window_s);
  }
  if (cfg.get_bool("return_channel", false)) {
    config.return_channel.enabled = true;
    config.return_channel.aggregator_uplink = util::BitRate::from_mbps(
        cfg.get_double("return_channel_agg_up_mbps", 2.0));
    config.return_channel.aggregator_downlink = util::BitRate::from_mbps(
        cfg.get_double("return_channel_agg_down_mbps", 8.0));
    config.return_channel.controller_downlink = util::BitRate::from_mbps(
        cfg.get_double("return_channel_ctl_down_mbps", 16.0));
    config.return_channel.queue_limit = sim::SimTime::from_seconds(
        cfg.get_double("return_channel_queue_s", 2.0));
  }
  config.obs.sample_interval =
      sim::SimTime::from_seconds(cfg.get_double("sample_interval_s", 10.0));
  // Kernel profiler: on when asked for explicitly or when a profile export
  // path is configured. (The `profile` key names the device profile.)
  config.obs.profile = cfg.get_bool("kernel_profile", false) ||
                       !cfg.get_string("profile_json", "").empty();
  // Causal flight recorder: on when a trace export path is configured.
  config.obs.trace = !cfg.get_string("trace_json", "").empty();
  config.obs.trace_capacity = static_cast<std::size_t>(
      cfg.get_int("trace_capacity", 1 << 16));
  config.obs.health_tamper_lost =
      static_cast<std::uint64_t>(cfg.get_int("health_tamper_lost", 0));
  config.fanout_fast_path = cfg.get_bool("fanout_fast_path", true);
  // Sharded parallel kernel: worker-thread shard count ("threads" is an
  // accepted alias). 1 = the classic single-threaded kernel; existing
  // scenario files are unchanged.
  config.shards = static_cast<std::size_t>(
      cfg.get_int("shards", cfg.get_int("threads", 1)));
  const double window_ms = cfg.get_double("window_ms", 0.0);
  if (window_ms > 0.0) {
    config.window = sim::SimTime::from_seconds(window_ms / 1e3);
  }

  const std::string technology = cfg.get_string("technology", "dtv");
  if (technology == "iptv") {
    config.technology = core::BroadcastTechnology::kIpMulticast;
    config.multicast.block_loss = config.section_loss;
  } else if (technology != "dtv") {
    throw std::runtime_error("technology must be 'dtv' or 'iptv'");
  }

  const std::string profile = cfg.get_string("profile", "reference-stb");
  if (profile == "stb-st7109") {
    config.profile = dtv::DeviceProfile::stb_st7109();
  } else if (profile == "reference-pc") {
    config.profile = dtv::DeviceProfile::reference_pc();
  } else if (profile == "mobile-phone") {
    config.profile = dtv::DeviceProfile::mobile_phone();
  } else if (profile == "reference-stb") {
    config.profile = dtv::DeviceProfile::reference_stb();
  } else {
    throw std::runtime_error("unknown device profile: " + profile);
  }

  const std::string power = cfg.get_string("power", "standby");
  config.initial_power = power == "in-use" ? dtv::PowerMode::kInUse
                                           : dtv::PowerMode::kStandby;

  if (cfg.get_bool("churn", false)) {
    core::ChurnOptions churn;
    churn.mean_on_seconds = cfg.get_double("churn_on_s", 3600.0);
    churn.mean_off_seconds = cfg.get_double("churn_off_s", 1800.0);
    churn.in_use_probability = cfg.get_double("churn_in_use", 0.7);
    config.churn = churn;
  }

  if (cfg.get_bool("fault", false)) {
    fault::FaultOptions& f = config.fault;
    f.enabled = true;
    f.seed = static_cast<std::uint64_t>(cfg.get_int("fault_seed", 0));
    f.message_loss = cfg.get_double("fault_loss", 0.0);
    f.message_duplication = cfg.get_double("fault_duplication", 0.0);
    f.latency_spike_probability =
        cfg.get_double("fault_latency_spike_p", 0.0);
    f.latency_spike_mean = sim::SimTime::from_seconds(
        cfg.get_double("fault_latency_spike_s", 0.5));
    f.partitions_per_hour = cfg.get_double("fault_partitions_ph", 0.0);
    f.partition_duration = sim::SimTime::from_seconds(
        cfg.get_double("fault_partition_s", 120.0));
    const double controller_crash_s =
        cfg.get_double("fault_controller_crash_s", 0.0);
    if (controller_crash_s > 0.0) {
      f.controller_crash_at.push_back(
          sim::SimTime::from_seconds(controller_crash_s));
    }
    f.controller_downtime = sim::SimTime::from_seconds(
        cfg.get_double("fault_controller_down_s", 30.0));
    const double backend_crash_s =
        cfg.get_double("fault_backend_crash_s", 0.0);
    if (backend_crash_s > 0.0) {
      f.backend_crash_at.push_back(
          sim::SimTime::from_seconds(backend_crash_s));
    }
    f.backend_downtime = sim::SimTime::from_seconds(
        cfg.get_double("fault_backend_down_s", 30.0));
    f.aggregator_crashes_per_hour =
        cfg.get_double("fault_aggregator_crash_ph", 0.0);
    f.aggregator_downtime = sim::SimTime::from_seconds(
        cfg.get_double("fault_aggregator_down_s", 60.0));
    f.pna_crashes_per_hour = cfg.get_double("fault_pna_crash_ph", 0.0);
    f.pna_hangs_per_hour = cfg.get_double("fault_pna_hang_ph", 0.0);
    f.pna_hang_duration = sim::SimTime::from_seconds(
        cfg.get_double("fault_pna_hang_s", 60.0));
    f.control_corruptions_per_hour =
        cfg.get_double("fault_corrupt_ph", 0.0);
    f.corrupt_exposure = sim::SimTime::from_seconds(
        cfg.get_double("fault_corrupt_exposure_s", 2.0));
    f.result_retry_limit =
        static_cast<int>(cfg.get_int("fault_result_retry_limit", 4));
    f.result_retry_base = sim::SimTime::from_seconds(
        cfg.get_double("fault_result_retry_s", 2.0));
    f.request_watchdog = sim::SimTime::from_seconds(
        cfg.get_double("fault_request_watchdog_s", 45.0));
    f.task_retry_cap =
        static_cast<int>(cfg.get_int("fault_task_retry_cap", 16));
    f.aggregator_failover_timeout = sim::SimTime::from_seconds(
        cfg.get_double("fault_failover_s", 60.0));
    // Byzantine adversary profiles (require fault=1): seeded fractions of
    // result forgers and free-riders, plus one colluding group sharing a
    // forgery seed.
    f.byzantine_forger_fraction = cfg.get_double("byzantine_forgers", 0.0);
    f.byzantine_freerider_fraction =
        cfg.get_double("byzantine_freeriders", 0.0);
    f.byzantine_collusion_size =
        static_cast<std::uint32_t>(cfg.get_int("byzantine_collusion", 0));
  }

  // Backend-side Byzantine defense: redundant dispatch + quorum voting,
  // seeded spot checks, and the reputation ledger. Off by default (the
  // naive path stays byte-identical to the pre-verification tree).
  if (cfg.get_bool("verify", false)) {
    core::VerifyOptions& v = config.verify;
    v.enabled = true;
    v.redundancy =
        static_cast<std::uint32_t>(cfg.get_int("verify_redundancy", 2));
    v.trusted_redundancy = static_cast<std::uint32_t>(
        cfg.get_int("verify_trusted_redundancy", 1));
    v.max_redundancy =
        static_cast<std::uint32_t>(cfg.get_int("verify_max_redundancy", 5));
    v.spot_check_rate = cfg.get_double("verify_spot_rate", 0.05);
    v.quarantine_spot_boost =
        cfg.get_double("verify_quarantine_boost", 4.0);
    v.parole_failure_limit = static_cast<std::uint32_t>(
        cfg.get_int("verify_parole_failure_limit", 4));
    v.implausible_speedup =
        cfg.get_double("verify_implausible_speedup", 64.0);
    v.eager_replicas = cfg.get_bool("verify_eager", false);
    v.ewma_alpha = cfg.get_double("reputation_alpha", 0.25);
    v.initial_reputation = cfg.get_double("reputation_initial", 0.5);
    v.quarantine_below =
        cfg.get_double("reputation_quarantine_below", 0.25);
    v.trusted_above = cfg.get_double("reputation_trusted_above", 0.9);
    v.min_observations = static_cast<std::uint32_t>(
        cfg.get_int("reputation_min_observations", 8));
    v.parole_checks = static_cast<std::uint32_t>(
        cfg.get_int("reputation_parole_checks", 3));
    v.seed = static_cast<std::uint64_t>(cfg.get_int("verify_seed", 0));
  }
  return config;
}

workload::Job job_from(const util::Config& cfg) {
  return workload::make_uniform_job(
      cfg.get_string("job_name", "scenario-job"),
      util::Bits::from_megabytes(cfg.get_int("image_mb", 10)),
      static_cast<std::size_t>(cfg.get_int("tasks", 2000)),
      util::Bits::from_bytes(cfg.get_int("task_input_bytes", 512)),
      util::Bits::from_bytes(cfg.get_int("task_result_bytes", 512)),
      cfg.get_double("task_seconds", 30.0));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: oddci_runner <scenario.cfg> [key=value ...]\n";
    return 2;
  }
  util::Config cfg;
  try {
    cfg = util::Config::load(argv[1]);
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--progress") == 0) {
        cfg.set("progress", "1");
        continue;
      }
      const char* eq = std::strchr(argv[i], '=');
      if (eq == nullptr) {
        throw std::runtime_error(std::string("override without '=': ") +
                                 argv[i]);
      }
      cfg.set(std::string(argv[i], static_cast<std::size_t>(eq - argv[i])),
              std::string(eq + 1));
    }
  } catch (const std::exception& e) {
    std::cerr << "config error: " << e.what() << "\n";
    return 2;
  }

  try {
    const core::SystemConfig config = system_config(cfg);
    const workload::Job job = job_from(cfg);
    const auto instance_size =
        static_cast<std::size_t>(cfg.get_int("instance_size", 200));
    const double deadline_h = cfg.get_double("deadline_hours", 48.0);

    std::cout << "scenario: " << argv[1] << "\n"
              << "  " << config.receivers << " receivers ("
              << config.profile.name << ", "
              << (config.technology ==
                          core::BroadcastTechnology::kIpMulticast
                      ? "iptv"
                      : "dtv")
              << ", " << config.channels << " channel(s)), instance "
              << instance_size << ", " << job.task_count() << " tasks x "
              << job.avg_reference_seconds() << " s\n\n";

    core::OddciSystem system(config);
    if (cfg.get_bool("progress", false)) {
      install_progress(system, cfg.get_double("progress_every_s", 30.0));
    }
    const auto result = system.run_job(
        job, instance_size, sim::SimTime::from_hours(deadline_h));

    if (!result.admitted) {
      std::cout << "job deferred: suitability below control_min_phi="
                << config.control.min_suitability
                << " (phi=" << workload::suitability(job, config.delta)
                << ")\n";
      return 1;
    }

    analytical::SystemModel sm{config.beta, config.delta};
    analytical::JobModel jm;
    jm.n = job.task_count();
    jm.s_bits = job.avg_input_bits();
    jm.r_bits = job.avg_result_bits();
    jm.p_seconds = job.avg_reference_seconds() *
                   config.profile.slowdown(config.initial_power);
    jm.image = job.image_size;

    util::Table table({"metric", "analytical", "measured"});
    table.add_row({"wakeup W (s)",
                   util::Table::fmt(
                       analytical::wakeup_seconds(job.image_size, config.beta),
                       1),
                   util::Table::fmt(result.wakeup_seconds, 1)});
    table.add_row(
        {"makespan M (s)",
         util::Table::fmt(
             analytical::makespan_seconds(sm, jm, instance_size), 1),
         util::Table::fmt(result.makespan_seconds, 1)});
    table.add_row(
        {"efficiency E",
         util::Table::fmt(analytical::efficiency(sm, jm, instance_size), 3),
         util::Table::fmt(result.efficiency(job.task_count(), jm.p_seconds,
                                            instance_size),
                          3)});
    table.print(std::cout);
    std::cout << "\n  completed: " << (result.completed ? "yes" : "NO")
              << " (" << result.job.results_received << "/"
              << job.task_count() << " tasks, "
              << result.job.reassignments << " reassignments, "
              << result.controller.recompositions << " recompositions)\n";

    if (const auto* injector = system.fault_injector()) {
      const auto fs = injector->stats();
      std::cout << "  faults: " << fs.messages_lost << " lost, "
                << fs.messages_duplicated << " duplicated, "
                << fs.latency_spikes << " spikes, "
                << fs.partitions_started << " partitions, "
                << fs.aggregator_crashes << " aggregator / "
                << fs.controller_crashes << " controller / "
                << fs.backend_crashes << " backend crashes, "
                << fs.pna_crashes << " pna crashes, " << fs.pna_hangs
                << " pna hangs, " << fs.control_corruptions
                << " corruptions\n"
                << "  recovery: " << result.job.duplicate_results
                << " duplicates dropped, " << result.job.late_results
                << " late, " << result.job.crash_requeues
                << " crash requeues, " << result.job.tasks_failed
                << " tasks failed\n";
      // Invariant: a completed job received every task exactly once —
      // duplicates and stragglers were deduped, nothing was lost or
      // double-counted. Under verification the per-task result count is
      // the quorum size, so the invariant moves to the verify gate below
      // (every task concluded by exactly one accepted quorum).
      const std::uint64_t unique = result.job.results_received -
                                   result.job.duplicate_results -
                                   result.job.late_results;
      if (system.verifier() == nullptr && result.completed &&
          unique != job.task_count()) {
        std::cerr << "INVARIANT VIOLATION: " << unique
                  << " unique results for " << job.task_count()
                  << " tasks\n";
        return 3;
      }
    }

    // Verification report + acceptance gate: with the defense on, print
    // the quorum/ledger tallies and fail (exit 3) if any wrong result was
    // accepted or the measured redundancy overhead — (replica + spot
    // dispatches) per verified task — exceeds the configured bound.
    if (const core::Verifier* verifier = system.verifier()) {
      const auto vs = verifier->stats();
      const double overhead =
          vs.tasks_verified > 0
              ? static_cast<double>(vs.dispatched + vs.spot_dispatched) /
                    static_cast<double>(vs.tasks_verified)
              : 0.0;
      std::cout << "  verify: " << vs.tasks_verified << " tasks verified, "
                << vs.wrong_results << " wrong, " << vs.outvoted
                << " outvoted, " << vs.escalations << " escalations, "
                << vs.spot_failed << "/" << vs.spot_dispatched
                << " spot fails, " << vs.implausible_returns
                << " implausible returns\n"
                << "  reputation: " << vs.quarantines << " quarantines ("
                << vs.quarantined_now << " now), " << vs.paroles
                << " paroles, " << vs.trusted_promotions
                << " trusted promotions; overhead "
                << util::Table::fmt(overhead, 2) << "x per verified task\n";
      const double max_overhead = cfg.get_double("verify_max_overhead", 0.0);
      if (result.completed && vs.tasks_verified != job.task_count()) {
        std::cerr << "INVARIANT VIOLATION: " << vs.tasks_verified
                  << " verified quorums for " << job.task_count()
                  << " tasks\n";
        return 3;
      }
      if (vs.wrong_results > 0) {
        std::cerr << "VERIFY VIOLATION: " << vs.wrong_results
                  << " wrong result(s) accepted\n";
        return 3;
      }
      if (max_overhead > 0.0 && overhead > max_overhead) {
        std::cerr << "VERIFY VIOLATION: redundancy overhead " << overhead
                  << " exceeds bound " << max_overhead << "\n";
        return 3;
      }
    }

    // Optional machine-readable exports of the run's full MetricsSnapshot
    // (scenario keys `metrics_json` / `series_csv`, empty = off).
    const std::string metrics_json = cfg.get_string("metrics_json", "");
    if (!metrics_json.empty()) {
      obs::write_json(metrics_json, result.metrics);
      std::cout << "  wrote " << metrics_json << "\n";
    }
    const std::string series_csv = cfg.get_string("series_csv", "");
    if (!series_csv.empty()) {
      obs::write_series_csv(series_csv, result.metrics);
      std::cout << "  wrote " << series_csv << "\n";
    }
    const std::string trace_json = cfg.get_string("trace_json", "");
    if (!trace_json.empty() && system.flight_recorder() != nullptr) {
      // Merge the per-shard rings so a K>1 run exports one chronological
      // population-wide trace, byte-identical per (seed, K).
      std::ofstream trace_out(trace_json, std::ios::binary);
      trace_out << obs::to_chrome_trace(
          obs::merge_events(system.flight_recorders()));
      std::cout << "  wrote " << trace_json << "\n";
    }

    if (system.profiler() != nullptr) {
      const obs::ProfileSnapshot prof = system.profile_snapshot();
      std::cout << "  profile: " << prof.run_wall_seconds << " s wall, "
                << prof.windows << " windows, utilization "
                << util::Table::fmt(prof.utilization_mean, 3)
                << ", imbalance " << util::Table::fmt(prof.imbalance_mean, 2)
                << " (max " << util::Table::fmt(prof.imbalance_max, 2)
                << ")\n";
      const std::string profile_json = cfg.get_string("profile_json", "");
      if (!profile_json.empty()) {
        obs::write_profile_json(profile_json, prof);
        std::cout << "  wrote " << profile_json << "\n";
      }
    }

    // Conservation audit: a Warning/Critical finding means a counter
    // balance the simulation must preserve did not close — fail loudly
    // with its own exit code so CI and scripts can tell it apart.
    if (!result.health.findings.empty()) {
      std::cout << "  health: "
                << obs::to_string(result.health.worst()) << " ("
                << result.health.samples << " samples)\n";
    }
    if (!result.health.ok()) {
      std::cerr << "HEALTH VIOLATION:\n" << result.health.to_text();
      return 4;
    }
    return result.completed ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

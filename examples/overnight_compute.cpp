// Domain example: overnight computing — exploiting the diurnal rhythm of a
// TV audience. During the evening most powered boxes are *in use* (slow:
// the middleware competes for the CPU); after midnight the same boxes sit
// in *standby* (1.65x faster) or switch off. This example runs the same
// workload in an "evening" and a "night" population and shows the standby
// advantage the paper measured in Section 4.4, end to end.
//
// Usage: overnight_compute [receivers]

#include <cstdlib>
#include <iostream>

#include "core/system.hpp"
#include "util/table.hpp"
#include "workload/job.hpp"

namespace {

using namespace oddci;

struct Outcome {
  double makespan_h;
  double compute_h;  ///< makespan minus wakeup
  bool completed;
};

Outcome run_shift(const char* label, dtv::PowerMode mode,
                  std::size_t receivers) {
  core::SystemConfig config;
  config.receivers = receivers;
  config.profile = dtv::DeviceProfile::stb_st7109();
  config.initial_power = mode;
  config.control.overshoot_margin = 1.3;
  config.seed = 20260704;
  core::OddciSystem system(config);

  const workload::Job job = workload::make_uniform_job(
      "overnight", util::Bits::from_megabytes(8), 3000,
      util::Bits::from_kilobytes(1), util::Bits::from_kilobytes(2),
      /*reference PC seconds=*/20.0);

  const auto result =
      system.run_job(job, receivers / 4, sim::SimTime::from_hours(100));
  std::cout << "  [" << label << "] "
            << (result.completed ? "completed" : "TIMED OUT") << " in "
            << util::Table::fmt(result.makespan_seconds / 3600.0, 2)
            << " h (wakeup " << util::Table::fmt(result.wakeup_seconds, 0)
            << " s)\n";
  return {result.makespan_seconds / 3600.0,
          (result.makespan_seconds - result.wakeup_seconds) / 3600.0,
          result.completed};
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t receivers =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 600;

  std::cout << "Overnight computing: same job, evening (in-use) vs night "
               "(standby) population\n"
            << "  " << receivers << " ST7109 STBs, instance size "
            << receivers / 4 << ", 3000 tasks x 20 s (reference PC)\n\n";

  const Outcome evening =
      run_shift("evening: boxes in use ", dtv::PowerMode::kInUse, receivers);
  const Outcome night =
      run_shift("night:   boxes standby", dtv::PowerMode::kStandby,
                receivers);

  if (!evening.completed || !night.completed) return 1;

  const double speedup = evening.compute_h / night.compute_h;
  std::cout << "\nStandby advantage (compute phase): "
            << util::Table::fmt(speedup, 2)
            << "x  (paper's device measurement: 1.65x, max error 17%)\n";
  // The end-to-end ratio should land close to the device-level 1.65x since
  // these tasks are compute-bound.
  return (speedup > 1.3 && speedup < 2.0) ? 0 : 1;
}

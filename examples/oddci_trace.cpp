// oddci_trace: inspector for Chrome-trace exports written by the causal
// flight recorder (obs::write_chrome_trace / quickstart's fifth argument).
//
// Usage:
//   oddci_trace validate <trace.json>
//       Strictly parse the file as an oddci.trace.v1 Chrome trace; print a
//       one-line inventory. Exit 0 iff the file is well formed.
//   oddci_trace summary <trace.json>
//       Event counts per kind and per component, distinct causal chains,
//       covered sim-time range.
//   oddci_trace timeline <trace.json> <trace_id>
//       Chronological hops of one causal chain (as printed by summary or
//       carried in the export's args.trace field).
//   oddci_trace funnel <trace.json>
//       Per-instance join funnel: control receipts -> probability gate ->
//       image acquisitions -> confirmed members (plus drops and resets).
//   oddci_trace slowest <trace.json> [N]
//       The N slowest confirmed wakeups (wakeup.accepted ->
//       member.joined), decomposed into acquire and confirm phases.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/trace_export.hpp"
#include "util/table.hpp"

namespace {

using oddci::obs::TraceComponent;
using oddci::obs::TraceEvent;
using oddci::obs::TraceEventKind;

double seconds(const TraceEvent& e) {
  return static_cast<double>(e.t_micros) / 1e6;
}

using SpanIndex = std::unordered_map<std::uint64_t, const TraceEvent*>;

SpanIndex index_by_span(const std::vector<TraceEvent>& events) {
  SpanIndex out;
  out.reserve(events.size());
  for (const TraceEvent& e : events) out.emplace(e.span_id, &e);
  return out;
}

/// Nearest ancestor of `e` with the given kind, or nullptr when the chain
/// leaves the retained window (the ring overwrote it) or has no such hop.
const TraceEvent* ancestor_of_kind(const TraceEvent& e, TraceEventKind kind,
                                   const SpanIndex& spans) {
  const TraceEvent* cur = &e;
  // The parent chain is acyclic by construction (span ids are allocated
  // monotonically); the bound guards against corrupted input files.
  for (int depth = 0; depth < 64; ++depth) {
    if (cur->parent_span == 0) return nullptr;
    const auto it = spans.find(cur->parent_span);
    if (it == spans.end()) return nullptr;
    cur = it->second;
    if (cur->kind == kind) return cur;
  }
  return nullptr;
}

int cmd_validate(const std::string& path) {
  const std::vector<TraceEvent> events = oddci::obs::read_chrome_trace(path);
  std::set<std::uint64_t> traces;
  std::int64_t t_min = events.empty() ? 0 : events.front().t_micros;
  std::int64_t t_max = t_min;
  for (const TraceEvent& e : events) {
    traces.insert(e.trace_id);
    t_min = std::min(t_min, e.t_micros);
    t_max = std::max(t_max, e.t_micros);
  }
  std::cout << path << ": valid " << oddci::obs::kTraceSchema << ", "
            << events.size() << " events, " << traces.size()
            << " causal chains";
  if (!events.empty()) {
    std::cout << ", t = [" << static_cast<double>(t_min) / 1e6 << ", "
              << static_cast<double>(t_max) / 1e6 << "] s";
  }
  std::cout << "\n";
  return 0;
}

int cmd_summary(const std::vector<TraceEvent>& events) {
  std::map<TraceEventKind, std::uint64_t> by_kind;
  std::map<TraceComponent, std::uint64_t> by_component;
  std::set<std::uint64_t> traces;
  for (const TraceEvent& e : events) {
    ++by_kind[e.kind];
    ++by_component[e.component];
    traces.insert(e.trace_id);
  }

  oddci::util::Table kinds({"event", "count"});
  for (const auto& [kind, count] : by_kind) {
    kinds.add_row({std::string(to_string(kind)),
                   oddci::util::Table::fmt_int(static_cast<long long>(count))});
  }
  oddci::util::Table components({"component", "count"});
  for (const auto& [component, count] : by_component) {
    components.add_row(
        {std::string(to_string(component)),
         oddci::util::Table::fmt_int(static_cast<long long>(count))});
  }

  std::cout << events.size() << " events across " << traces.size()
            << " causal chains\n\n";
  kinds.print(std::cout);
  std::cout << "\n";
  components.print(std::cout);
  if (!events.empty()) {
    std::cout << "\nsim time covered: " << seconds(events.front()) << " .. "
              << seconds(events.back()) << " s\n";
  }
  return 0;
}

int cmd_timeline(const std::vector<TraceEvent>& events,
                 std::uint64_t trace_id) {
  oddci::util::Table table(
      {"t (s)", "component", "event", "actor", "arg", "span", "parent"});
  for (const TraceEvent& e : events) {
    if (e.trace_id != trace_id) continue;
    table.add_row({oddci::util::Table::fmt(seconds(e), 6),
                   std::string(to_string(e.component)),
                   std::string(to_string(e.kind)), std::to_string(e.actor),
                   std::to_string(e.arg), std::to_string(e.span_id),
                   std::to_string(e.parent_span)});
  }
  if (table.rows() == 0) {
    std::cerr << "no events with trace id " << trace_id << "\n";
    return 1;
  }
  std::cout << "trace " << trace_id << ":\n";
  table.print(std::cout);
  return 0;
}

int cmd_funnel(const std::vector<TraceEvent>& events) {
  struct Funnel {
    std::uint64_t received = 0, accepted = 0, dropped_busy = 0,
                  dropped_probability = 0, rejected = 0, acquired = 0,
                  aborted = 0, joined = 0, pruned = 0, resets = 0;
  };
  // These kinds all carry the instance id in `arg` (see the enum docs).
  std::map<std::uint64_t, Funnel> by_instance;
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEventKind::kControlReceived:
        ++by_instance[e.arg].received;
        break;
      case TraceEventKind::kWakeupAccepted:
        ++by_instance[e.arg].accepted;
        break;
      case TraceEventKind::kWakeupDroppedBusy:
        ++by_instance[e.arg].dropped_busy;
        break;
      case TraceEventKind::kWakeupDroppedProbability:
        ++by_instance[e.arg].dropped_probability;
        break;
      case TraceEventKind::kWakeupRejectedRequirements:
        ++by_instance[e.arg].rejected;
        break;
      case TraceEventKind::kImageAcquired:
        ++by_instance[e.arg].acquired;
        break;
      case TraceEventKind::kJoinAborted:
        ++by_instance[e.arg].aborted;
        break;
      case TraceEventKind::kMemberJoined:
        ++by_instance[e.arg].joined;
        break;
      case TraceEventKind::kMemberPruned:
        ++by_instance[e.arg].pruned;
        break;
      case TraceEventKind::kResetApplied:
        ++by_instance[e.arg].resets;
        break;
      default:
        break;
    }
  }
  if (by_instance.empty()) {
    std::cerr << "no join-funnel events in this trace\n";
    return 1;
  }
  oddci::util::Table table({"instance", "received", "p-drop", "busy-drop",
                            "rejected", "accepted", "acquired", "aborted",
                            "joined", "pruned", "resets"});
  const auto fmt = [](std::uint64_t v) {
    return oddci::util::Table::fmt_int(static_cast<long long>(v));
  };
  for (const auto& [instance, f] : by_instance) {
    table.add_row({std::to_string(instance), fmt(f.received),
                   fmt(f.dropped_probability), fmt(f.dropped_busy),
                   fmt(f.rejected), fmt(f.accepted), fmt(f.acquired),
                   fmt(f.aborted), fmt(f.joined), fmt(f.pruned),
                   fmt(f.resets)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_slowest(const std::vector<TraceEvent>& events, std::size_t n) {
  const SpanIndex spans = index_by_span(events);
  struct Wakeup {
    double total, acquire, confirm;
    std::uint64_t pna, instance;
  };
  std::vector<Wakeup> wakeups;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEventKind::kMemberJoined) continue;
    const TraceEvent* accepted =
        ancestor_of_kind(e, TraceEventKind::kWakeupAccepted, spans);
    if (accepted == nullptr) continue;  // chain left the ring
    const TraceEvent* acquired =
        ancestor_of_kind(e, TraceEventKind::kImageAcquired, spans);
    const double t_accept = seconds(*accepted);
    const double t_acquire =
        acquired != nullptr ? seconds(*acquired) : seconds(e);
    wakeups.push_back({seconds(e) - t_accept, t_acquire - t_accept,
                       seconds(e) - t_acquire, accepted->actor, e.arg});
  }
  if (wakeups.empty()) {
    std::cerr << "no confirmed wakeups (wakeup.accepted -> member.joined) "
                 "in this trace\n";
    return 1;
  }
  std::stable_sort(wakeups.begin(), wakeups.end(),
                   [](const Wakeup& a, const Wakeup& b) {
                     return a.total > b.total;
                   });
  if (wakeups.size() > n) wakeups.resize(n);

  oddci::util::Table table({"pna", "instance", "wakeup (s)", "acquire (s)",
                            "confirm (s)"});
  for (const Wakeup& w : wakeups) {
    table.add_row({std::to_string(w.pna), std::to_string(w.instance),
                   oddci::util::Table::fmt(w.total, 3),
                   oddci::util::Table::fmt(w.acquire, 3),
                   oddci::util::Table::fmt(w.confirm, 3)});
  }
  std::cout << wakeups.size() << " slowest confirmed wakeups:\n";
  table.print(std::cout);
  return 0;
}

int usage() {
  std::cerr
      << "usage: oddci_trace <command> <trace.json> [args]\n"
         "  validate <trace.json>             strict parse, inventory line\n"
         "  summary  <trace.json>             counts per kind/component\n"
         "  timeline <trace.json> <trace_id>  hops of one causal chain\n"
         "  funnel   <trace.json>             per-instance join funnel\n"
         "  slowest  <trace.json> [N]         N slowest wakeups (default "
         "10)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string path = argv[2];

  try {
    if (command == "validate") return cmd_validate(path);

    const std::vector<TraceEvent> events =
        oddci::obs::read_chrome_trace(path);
    if (command == "summary") return cmd_summary(events);
    if (command == "timeline") {
      if (argc < 4) return usage();
      return cmd_timeline(events, std::strtoull(argv[3], nullptr, 10));
    }
    if (command == "funnel") return cmd_funnel(events);
    if (command == "slowest") {
      const std::size_t n =
          argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 10;
      return cmd_slowest(events, n);
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "oddci_trace: " << path << ": " << e.what() << "\n";
    return 1;
  }
}

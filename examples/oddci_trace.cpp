// oddci_trace: inspector for Chrome-trace exports written by the causal
// flight recorder (obs::write_chrome_trace / quickstart's fifth argument).
//
// Usage:
//   oddci_trace validate <trace.json>
//       Strictly parse the file as an oddci.trace.v1 Chrome trace; print a
//       one-line inventory. Exit 0 iff the file is well formed.
//   oddci_trace summary <trace.json | metrics.json>
//       Event counts per kind and per component, distinct causal chains,
//       covered sim-time range. Given an oddci.metrics.v1 snapshot instead,
//       prints the histograms as quantile summaries (count/mean/p50/p90/
//       p99/max) rather than raw bucket dumps.
//   oddci_trace timeline <trace.json> <trace_id>
//       Chronological hops of one causal chain (as printed by summary or
//       carried in the export's args.trace field).
//   oddci_trace funnel <trace.json>
//       Per-instance join funnel: control receipts -> probability gate ->
//       image acquisitions -> confirmed members (plus drops and resets).
//   oddci_trace slowest <trace.json> [N]
//       The N slowest confirmed wakeups (wakeup.accepted ->
//       member.joined), decomposed into acquire and confirm phases.
//   oddci_trace profile <run.profile.json> [trace.json]
//       Bottleneck report from an oddci.profile.v1 kernel profile: phase
//       wall shares, slowest shard, barrier-stall fraction, window
//       utilization and mailbox depth; an optional flight-recorder trace
//       is merged in as a per-component event overlay.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_export.hpp"
#include "util/table.hpp"

namespace {

using oddci::obs::TraceComponent;
using oddci::obs::TraceEvent;
using oddci::obs::TraceEventKind;

double seconds(const TraceEvent& e) {
  return static_cast<double>(e.t_micros) / 1e6;
}

using SpanIndex = std::unordered_map<std::uint64_t, const TraceEvent*>;

SpanIndex index_by_span(const std::vector<TraceEvent>& events) {
  SpanIndex out;
  out.reserve(events.size());
  for (const TraceEvent& e : events) out.emplace(e.span_id, &e);
  return out;
}

/// Nearest ancestor of `e` with the given kind, or nullptr when the chain
/// leaves the retained window (the ring overwrote it) or has no such hop.
const TraceEvent* ancestor_of_kind(const TraceEvent& e, TraceEventKind kind,
                                   const SpanIndex& spans) {
  const TraceEvent* cur = &e;
  // The parent chain is acyclic by construction (span ids are allocated
  // monotonically); the bound guards against corrupted input files.
  for (int depth = 0; depth < 64; ++depth) {
    if (cur->parent_span == 0) return nullptr;
    const auto it = spans.find(cur->parent_span);
    if (it == spans.end()) return nullptr;
    cur = it->second;
    if (cur->kind == kind) return cur;
  }
  return nullptr;
}

int cmd_validate(const std::string& path) {
  const std::vector<TraceEvent> events = oddci::obs::read_chrome_trace(path);
  std::set<std::uint64_t> traces;
  std::int64_t t_min = events.empty() ? 0 : events.front().t_micros;
  std::int64_t t_max = t_min;
  for (const TraceEvent& e : events) {
    traces.insert(e.trace_id);
    t_min = std::min(t_min, e.t_micros);
    t_max = std::max(t_max, e.t_micros);
  }
  std::cout << path << ": valid " << oddci::obs::kTraceSchema << ", "
            << events.size() << " events, " << traces.size()
            << " causal chains";
  if (!events.empty()) {
    std::cout << ", t = [" << static_cast<double>(t_min) / 1e6 << ", "
              << static_cast<double>(t_max) / 1e6 << "] s";
  }
  std::cout << "\n";
  return 0;
}

int cmd_summary(const std::vector<TraceEvent>& events) {
  std::map<TraceEventKind, std::uint64_t> by_kind;
  std::map<TraceComponent, std::uint64_t> by_component;
  std::set<std::uint64_t> traces;
  for (const TraceEvent& e : events) {
    ++by_kind[e.kind];
    ++by_component[e.component];
    traces.insert(e.trace_id);
  }

  oddci::util::Table kinds({"event", "count"});
  for (const auto& [kind, count] : by_kind) {
    kinds.add_row({std::string(to_string(kind)),
                   oddci::util::Table::fmt_int(static_cast<long long>(count))});
  }
  oddci::util::Table components({"component", "count"});
  for (const auto& [component, count] : by_component) {
    components.add_row(
        {std::string(to_string(component)),
         oddci::util::Table::fmt_int(static_cast<long long>(count))});
  }

  std::cout << events.size() << " events across " << traces.size()
            << " causal chains\n\n";
  kinds.print(std::cout);
  std::cout << "\n";
  components.print(std::cout);
  if (!events.empty()) {
    std::cout << "\nsim time covered: " << seconds(events.front()) << " .. "
              << seconds(events.back()) << " s\n";
  }
  return 0;
}

int cmd_timeline(const std::vector<TraceEvent>& events,
                 std::uint64_t trace_id) {
  oddci::util::Table table(
      {"t (s)", "component", "event", "actor", "arg", "span", "parent"});
  for (const TraceEvent& e : events) {
    if (e.trace_id != trace_id) continue;
    table.add_row({oddci::util::Table::fmt(seconds(e), 6),
                   std::string(to_string(e.component)),
                   std::string(to_string(e.kind)), std::to_string(e.actor),
                   std::to_string(e.arg), std::to_string(e.span_id),
                   std::to_string(e.parent_span)});
  }
  if (table.rows() == 0) {
    std::cerr << "no events with trace id " << trace_id << "\n";
    return 1;
  }
  std::cout << "trace " << trace_id << ":\n";
  table.print(std::cout);
  return 0;
}

int cmd_funnel(const std::vector<TraceEvent>& events) {
  struct Funnel {
    std::uint64_t received = 0, accepted = 0, dropped_busy = 0,
                  dropped_probability = 0, rejected = 0, acquired = 0,
                  aborted = 0, joined = 0, pruned = 0, resets = 0;
  };
  // These kinds all carry the instance id in `arg` (see the enum docs).
  std::map<std::uint64_t, Funnel> by_instance;
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEventKind::kControlReceived:
        ++by_instance[e.arg].received;
        break;
      case TraceEventKind::kWakeupAccepted:
        ++by_instance[e.arg].accepted;
        break;
      case TraceEventKind::kWakeupDroppedBusy:
        ++by_instance[e.arg].dropped_busy;
        break;
      case TraceEventKind::kWakeupDroppedProbability:
        ++by_instance[e.arg].dropped_probability;
        break;
      case TraceEventKind::kWakeupRejectedRequirements:
        ++by_instance[e.arg].rejected;
        break;
      case TraceEventKind::kImageAcquired:
        ++by_instance[e.arg].acquired;
        break;
      case TraceEventKind::kJoinAborted:
        ++by_instance[e.arg].aborted;
        break;
      case TraceEventKind::kMemberJoined:
        ++by_instance[e.arg].joined;
        break;
      case TraceEventKind::kMemberPruned:
        ++by_instance[e.arg].pruned;
        break;
      case TraceEventKind::kResetApplied:
        ++by_instance[e.arg].resets;
        break;
      default:
        break;
    }
  }
  if (by_instance.empty()) {
    std::cerr << "no join-funnel events in this trace\n";
    return 1;
  }
  oddci::util::Table table({"instance", "received", "p-drop", "busy-drop",
                            "rejected", "accepted", "acquired", "aborted",
                            "joined", "pruned", "resets"});
  const auto fmt = [](std::uint64_t v) {
    return oddci::util::Table::fmt_int(static_cast<long long>(v));
  };
  for (const auto& [instance, f] : by_instance) {
    table.add_row({std::to_string(instance), fmt(f.received),
                   fmt(f.dropped_probability), fmt(f.dropped_busy),
                   fmt(f.rejected), fmt(f.accepted), fmt(f.acquired),
                   fmt(f.aborted), fmt(f.joined), fmt(f.pruned),
                   fmt(f.resets)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_slowest(const std::vector<TraceEvent>& events, std::size_t n) {
  const SpanIndex spans = index_by_span(events);
  struct Wakeup {
    double total, acquire, confirm;
    std::uint64_t pna, instance;
  };
  std::vector<Wakeup> wakeups;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEventKind::kMemberJoined) continue;
    const TraceEvent* accepted =
        ancestor_of_kind(e, TraceEventKind::kWakeupAccepted, spans);
    if (accepted == nullptr) continue;  // chain left the ring
    const TraceEvent* acquired =
        ancestor_of_kind(e, TraceEventKind::kImageAcquired, spans);
    const double t_accept = seconds(*accepted);
    const double t_acquire =
        acquired != nullptr ? seconds(*acquired) : seconds(e);
    wakeups.push_back({seconds(e) - t_accept, t_acquire - t_accept,
                       seconds(e) - t_acquire, accepted->actor, e.arg});
  }
  if (wakeups.empty()) {
    std::cerr << "no confirmed wakeups (wakeup.accepted -> member.joined) "
                 "in this trace\n";
    return 1;
  }
  std::stable_sort(wakeups.begin(), wakeups.end(),
                   [](const Wakeup& a, const Wakeup& b) {
                     return a.total > b.total;
                   });
  if (wakeups.size() > n) wakeups.resize(n);

  oddci::util::Table table({"pna", "instance", "wakeup (s)", "acquire (s)",
                            "confirm (s)"});
  for (const Wakeup& w : wakeups) {
    table.add_row({std::to_string(w.pna), std::to_string(w.instance),
                   oddci::util::Table::fmt(w.total, 3),
                   oddci::util::Table::fmt(w.acquire, 3),
                   oddci::util::Table::fmt(w.confirm, 3)});
  }
  std::cout << wakeups.size() << " slowest confirmed wakeups:\n";
  table.print(std::cout);
  return 0;
}

/// First bytes of `path`, for schema sniffing (the JSON exports all carry
/// a leading "schema" member).
std::string file_head(const std::string& path) {
  std::ifstream in(path);
  std::string head(256, '\0');
  in.read(head.data(), static_cast<std::streamsize>(head.size()));
  head.resize(static_cast<std::size_t>(std::max<std::streamsize>(
      0, in.gcount())));
  return head;
}

int cmd_metrics_summary(const oddci::obs::MetricsSnapshot& snap) {
  using oddci::util::Table;
  std::cout << "metrics snapshot at t = " << snap.taken_at_seconds << " s: "
            << snap.counters.size() << " counters, " << snap.gauges.size()
            << " gauges, " << snap.histograms.size() << " histograms, "
            << snap.series.size() << " series, " << snap.spans.size()
            << " spans\n";
  if (snap.histograms.empty()) return 0;
  Table table({"histogram", "count", "mean", "p50", "p90", "p99", "max"});
  for (const auto& h : snap.histograms) {
    const double mean =
        h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
    table.add_row(
        {h.name, Table::fmt_int(static_cast<long long>(h.count)),
         Table::fmt(mean, 6),
         Table::fmt(oddci::obs::histogram_quantile(h, 0.50), 6),
         Table::fmt(oddci::obs::histogram_quantile(h, 0.90), 6),
         Table::fmt(oddci::obs::histogram_quantile(h, 0.99), 6),
         Table::fmt(h.max, 6)});
  }
  std::cout << "\n";
  table.print(std::cout);
  return 0;
}

int cmd_profile(const std::string& path, const char* trace_path) {
  using oddci::util::Table;
  const oddci::obs::ProfileSnapshot p = oddci::obs::read_profile_json(path);
  const double exec = p.execute_seconds_total();
  const double barrier = p.barrier_seconds_total();
  const double accounted = exec + barrier + p.drain_seconds + p.global_seconds;

  std::cout << path << ": " << p.shards << " shard(s), "
            << p.sim_seconds << " sim-s in " << p.run_wall_seconds
            << " wall-s";
  if (p.run_wall_seconds > 0.0) {
    std::cout << " (" << Table::fmt(p.sim_seconds / p.run_wall_seconds, 1)
              << "x real time)";
  }
  std::cout << " over " << p.runs << " run(s)\n\n";

  // Top phases by wall share (of the phase-accounted total, which spans
  // all shards — at K > 1 it can exceed the coordinator's run wall).
  struct Phase {
    const char* name;
    double seconds;
  };
  std::vector<Phase> phases{{"execute", exec},
                            {"barrier-wait", barrier},
                            {"mailbox-drain", p.drain_seconds},
                            {"global-tasks", p.global_seconds}};
  std::stable_sort(phases.begin(), phases.end(),
                   [](const Phase& a, const Phase& b) {
                     return a.seconds > b.seconds;
                   });
  Table phase_table({"phase", "wall (s)", "share"});
  for (const Phase& ph : phases) {
    phase_table.add_row(
        {ph.name, Table::fmt(ph.seconds, 3),
         accounted > 0.0
             ? Table::fmt(100.0 * ph.seconds / accounted, 1) + "%"
             : "-"});
  }
  phase_table.print(std::cout);

  if (p.windows > 0) {
    const double worker_wall =
        static_cast<double>(p.shards) * p.window_span_seconds;
    std::cout << "\nwindows: " << p.windows << " spanning "
              << Table::fmt(p.window_span_seconds, 3)
              << " wall-s, utilization "
              << Table::fmt(p.utilization_mean, 3) << ", imbalance "
              << Table::fmt(p.imbalance_mean, 2) << " mean / "
              << Table::fmt(p.imbalance_max, 2) << " max\n"
              << "barrier stall: "
              << (worker_wall > 0.0
                      ? Table::fmt(100.0 * barrier / worker_wall, 1) + "%"
                      : std::string("-"))
              << " of worker window time\n"
              << "mailbox: " << p.mail_items << " items over "
              << p.drain_calls << " drains (max " << p.mail_items_max
              << " per drain), " << p.cross_posts << " cross posts, "
              << p.clamped_posts << " clamped\n";
  }

  if (!p.per_shard.empty()) {
    Table shard_table({"shard", "execute (s)", "calls", "barrier (s)",
                       "executed", "pending"});
    std::size_t slowest = 0;
    for (std::size_t s = 0; s < p.per_shard.size(); ++s) {
      const auto& sh = p.per_shard[s];
      if (sh.execute_seconds > p.per_shard[slowest].execute_seconds) {
        slowest = s;
      }
      shard_table.add_row(
          {std::to_string(s), Table::fmt(sh.execute_seconds, 3),
           Table::fmt_int(static_cast<long long>(sh.execute_calls)),
           Table::fmt(sh.barrier_seconds, 3),
           Table::fmt_int(static_cast<long long>(sh.events_executed)),
           Table::fmt_int(static_cast<long long>(sh.events_pending))});
    }
    std::cout << "\n";
    shard_table.print(std::cout);
    if (p.per_shard.size() > 1 && exec > 0.0) {
      std::cout << "slowest shard: " << slowest << " ("
                << Table::fmt(
                       100.0 * p.per_shard[slowest].execute_seconds / exec, 1)
                << "% of execute time)\n";
    }
  }

  if (trace_path != nullptr) {
    // Flight-recorder overlay: what the sim was doing while the kernel
    // burned that wall time.
    const std::vector<TraceEvent> events =
        oddci::obs::read_chrome_trace(trace_path);
    std::map<TraceComponent, std::uint64_t> by_component;
    for (const TraceEvent& e : events) ++by_component[e.component];
    Table overlay({"component", "events"});
    for (const auto& [component, count] : by_component) {
      overlay.add_row({std::string(to_string(component)),
                       Table::fmt_int(static_cast<long long>(count))});
    }
    std::cout << "\ntrace overlay (" << trace_path << ", " << events.size()
              << " events):\n";
    overlay.print(std::cout);
  }
  return 0;
}

int usage() {
  std::cerr
      << "usage: oddci_trace <command> <trace.json> [args]\n"
         "  validate <trace.json>             strict parse, inventory line\n"
         "  summary  <trace.json>             counts per kind/component\n"
         "  timeline <trace.json> <trace_id>  hops of one causal chain\n"
         "  funnel   <trace.json>             per-instance join funnel\n"
         "  slowest  <trace.json> [N]         N slowest wakeups (default "
         "10)\n"
         "  profile  <run.profile.json> [trace.json]\n"
         "                                    kernel bottleneck report\n"
         "\n"
         "summary also accepts an oddci.metrics.v1 snapshot and prints\n"
         "histogram quantile summaries.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string path = argv[2];

  try {
    if (command == "validate") return cmd_validate(path);
    if (command == "profile") {
      return cmd_profile(path, argc > 3 ? argv[3] : nullptr);
    }
    if (command == "summary" &&
        file_head(path).find(oddci::obs::kMetricsSchema) !=
            std::string::npos) {
      return cmd_metrics_summary(oddci::obs::read_json(path));
    }

    const std::vector<TraceEvent> events =
        oddci::obs::read_chrome_trace(path);
    if (command == "summary") return cmd_summary(events);
    if (command == "timeline") {
      if (argc < 4) return usage();
      return cmd_timeline(events, std::strtoull(argv[3], nullptr, 10));
    }
    if (command == "funnel") return cmd_funnel(events);
    if (command == "slowest") {
      const std::size_t n =
          argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 10;
      return cmd_slowest(events, n);
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "oddci_trace: " << path << ": " << e.what() << "\n";
    return 1;
  }
}

// Domain example: a bioinformatics BLAST campaign on OddCI-DTV.
//
// The paper's motivating scenario (Section 4.4): comparing query sequences
// against a large database, chunked into independent tasks, executed on a
// population of ST7109-class set-top boxes that viewers switch on and off.
// Each task is "search one query against one database chunk"; its
// reference-PC duration comes from the same cell model that calibrates
// Table II, and the bits really exist — the example builds the query set
// with the workload generator and runs one representative chunk locally so
// you can see the actual search output.
//
// Usage: blast_campaign [receivers] [instance_size]

#include <cstdlib>
#include <sstream>
#include <iostream>

#include "core/system.hpp"
#include "util/table.hpp"
#include "workload/blast.hpp"
#include "workload/blast_tests.hpp"
#include "workload/job.hpp"
#include "workload/sequence.hpp"
#include "workload/traceback.hpp"

int main(int argc, char** argv) {
  using namespace oddci;

  const std::size_t receivers =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;
  const std::size_t instance_size =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200;

  // --- the science: 2000 queries x database chunks -------------------------
  constexpr std::size_t kQueries = 2000;
  constexpr std::size_t kQueryLen = 400;
  constexpr std::size_t kChunkResidues = 2'000'000;  // residues per chunk

  // Per-task reference-PC seconds from the Table II cell model.
  const double cells = static_cast<double>(kQueryLen) * kChunkResidues;
  const double task_pc_seconds = cells / workload::kReferencePcCellsPerSecond;

  // Run ONE task for real so the example demonstrates actual output.
  {
    workload::SequenceGenerator gen(2024);
    const std::string query = gen.random_dna(kQueryLen);
    auto chunk = gen.random_database(200, 900, 1100);
    chunk[42] = gen.mutate(query, 0.04, 0.004);
    workload::BlastDatabase db(std::move(chunk), 11);
    workload::BlastParams params;
    params.word_size = 11;
    const auto result = workload::blast_search(query, db, params);
    std::cout << "Representative task (1 query vs 1 chunk sample): "
              << result.hits.size() << " hit(s)";
    if (!result.hits.empty()) {
      const auto& best = result.hits[0];
      std::cout << ", best score " << best.score << " (E = " << best.evalue
                << ")\n\n";
      // Reconstruct and print the actual alignment for the best hit, as a
      // BLAST report would.
      const auto alignment = workload::smith_waterman_traceback(
          query, db.sequence(best.subject));
      const std::string block = workload::format_alignment(alignment);
      // First few lines only.
      std::istringstream lines(block);
      std::string line;
      for (int i = 0; i < 7 && std::getline(lines, line); ++i) {
        std::cout << "  " << line << "\n";
      }
    }
    std::cout << "\n";
  }

  // --- the infrastructure: an OddCI-DTV instance of real STBs -------------
  core::SystemConfig config;
  config.receivers = receivers;
  config.profile = dtv::DeviceProfile::stb_st7109();
  config.initial_power = dtv::PowerMode::kStandby;
  config.control.overshoot_margin = 1.3;
  config.seed = 99;
  // Evening-TV churn: boxes come and go.
  core::ChurnOptions churn;
  churn.mean_on_seconds = 3 * 3600;
  churn.mean_off_seconds = 3600;
  churn.in_use_probability = 0.5;
  config.churn = churn;

  core::OddciSystem system(config);

  workload::Job job = workload::make_uniform_job(
      "blast-campaign", util::Bits::from_megabytes(8),  // BLAST image ~8 MB
      kQueries, util::Bits::from_kilobytes(1),          // query upload
      util::Bits::from_kilobytes(4),                    // report download
      task_pc_seconds);

  std::cout << "BLAST campaign: " << kQueries << " tasks x "
            << util::Table::fmt(task_pc_seconds, 1)
            << " s (reference PC) each\n"
            << "  = " << util::Table::fmt(
                   job.total_reference_seconds() / 3600.0, 1)
            << " CPU-hours on the reference PC\n"
            << "Infrastructure: " << receivers << " ST7109 STBs (standby ~"
            << util::Table::fmt(
                   config.profile.slowdown(dtv::PowerMode::kStandby), 1)
            << "x PC, in-use ~"
            << util::Table::fmt(
                   config.profile.slowdown(dtv::PowerMode::kInUse), 1)
            << "x), instance target " << instance_size << "\n\n";

  const auto result =
      system.run_job(job, instance_size, sim::SimTime::from_hours(200));

  const double single_pc_hours = job.total_reference_seconds() / 3600.0;
  const double single_stb_hours =
      single_pc_hours * config.profile.slowdown(dtv::PowerMode::kInUse);

  util::Table table({"metric", "value"});
  table.add_row({"wakeup time (s)", util::Table::fmt(result.wakeup_seconds, 1)});
  table.add_row({"campaign makespan (h)",
                 util::Table::fmt(result.makespan_seconds / 3600.0, 2)});
  table.add_row({"single reference PC (h)",
                 util::Table::fmt(single_pc_hours, 1)});
  table.add_row({"single STB in use (h)",
                 util::Table::fmt(single_stb_hours, 1)});
  table.add_row({"speedup vs single PC",
                 util::Table::fmt(single_pc_hours * 3600.0 /
                                      result.makespan_seconds, 1)});
  table.add_row({"task reassignments (churn)",
                 util::Table::fmt_int(
                     static_cast<long long>(result.job.reassignments))});
  table.add_row({"wakeup rebroadcasts",
                 util::Table::fmt_int(static_cast<long long>(
                     result.controller.recompositions))});
  table.add_row({"tasks completed",
                 util::Table::fmt_int(static_cast<long long>(
                     result.job.results_received))});
  table.print(std::cout);

  if (!result.completed) {
    std::cout << "\ncampaign DID NOT complete within the deadline\n";
    return 1;
  }
  std::cout << "\nThe campaign that would take "
            << util::Table::fmt(single_pc_hours, 0)
            << " h on one PC finished in "
            << util::Table::fmt(result.makespan_seconds / 3600.0, 1)
            << " h on viewers' set-top boxes.\n";
  return 0;
}

// Domain example: elasticity — the Provider managing several OddCI
// instances on one broadcast network: create two instances with different
// requirements, grow one, shrink it, dismantle both, and watch the
// population reallocate. This is the "fast setup, fast initialization and
// fast dismantle of customized DCI" story from the abstract.
//
// Usage: elastic_provider [receivers]

#include <cstdlib>
#include <iostream>

#include "core/system.hpp"
#include "util/table.hpp"

namespace {

using namespace oddci;

void snapshot(core::OddciSystem& system, const char* label) {
  std::cout << "t = " << util::Table::fmt(
                   system.simulation().now().seconds() / 60.0, 1)
            << " min — " << label << "\n";
  util::Table table({"instance", "name", "active", "target", "current",
                     "wakeups", "trims"});
  for (const auto& st : system.controller().all_statuses()) {
    table.add_row({util::Table::fmt_int(static_cast<long long>(st.id)),
                   st.name, st.active ? "yes" : "no",
                   util::Table::fmt_int(static_cast<long long>(st.target_size)),
                   util::Table::fmt_int(
                       static_cast<long long>(st.current_size)),
                   util::Table::fmt_int(
                       static_cast<long long>(st.wakeups_broadcast)),
                   util::Table::fmt_int(
                       static_cast<long long>(st.unicast_resets))});
  }
  table.print(std::cout);
  std::cout << "  idle pool estimate: "
            << system.controller().idle_pool_estimate() << " / "
            << system.controller().known_pna_count() << " known PNAs\n\n";
}

void advance(core::OddciSystem& system, double minutes) {
  system.simulation().run_until(system.simulation().now() +
                                sim::SimTime::from_minutes(minutes));
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t receivers =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 800;

  core::SystemConfig config;
  config.receivers = receivers;
  config.seed = 4711;
  config.control.overshoot_margin = 1.3;
  core::OddciSystem system(config);

  std::cout << "Elastic provider demo: " << receivers
            << " receivers on one broadcast channel\n\n";

  system.controller().deploy_pna();
  advance(system, 3);
  snapshot(system, "after PNA deployment (everyone idle)");

  // Instance A: a medium pool for a rendering job.
  core::InstanceSpec spec_a;
  spec_a.name = "render-farm";
  spec_a.target_size = 150;
  spec_a.image_size = util::Bits::from_megabytes(6);
  const auto a =
      system.provider().request_instance(spec_a, system.backend().node_id());
  advance(system, 10);
  snapshot(system, "instance A requested (target 150)");

  // Instance B: a second, smaller pool coexisting on the same channel.
  core::InstanceSpec spec_b;
  spec_b.name = "param-sweep";
  spec_b.target_size = 60;
  spec_b.image_size = util::Bits::from_megabytes(2);
  const auto b =
      system.provider().request_instance(spec_b, system.backend().node_id());
  advance(system, 10);
  snapshot(system, "instance B requested (target 60) — A and B coexist");

  // Elastic growth of A.
  system.provider().resize_instance(a, 300);
  advance(system, 15);
  snapshot(system, "A resized 150 -> 300 (recomposition recruits more PNAs)");

  // Elastic shrink of A: the Controller trims via heartbeat replies.
  system.provider().resize_instance(a, 80);
  advance(system, 10);
  snapshot(system, "A resized 300 -> 80 (unicast resets trim the excess)");

  // Dismantle both; the pool drains back to idle.
  system.provider().release_instance(a);
  system.provider().release_instance(b);
  advance(system, 10);
  snapshot(system, "A and B released (broadcast resets)");

  const auto idle = system.controller().idle_pool_estimate();
  std::cout << "Final state: " << idle
            << " PNAs idle and ready for the next request.\n";
  return idle > receivers / 2 ? 0 : 1;
}

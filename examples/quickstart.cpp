// Quickstart: instantiate an OddCI-DTV system, run one bag-of-tasks job on
// an on-demand instance, and compare the measured wakeup/makespan with the
// paper's analytical model.
//
// Usage: quickstart [receivers] [instance_size] [tasks] [metrics.json]
//                   [trace.json]
//
// When a fourth argument is given, the run's full MetricsSnapshot (counters,
// latency histograms, sampled time series, trace spans) is exported there as
// oddci.metrics.v1 JSON. A fifth argument switches the causal flight
// recorder on and exports the recorded protocol hops there as Chrome trace
// JSON (open in https://ui.perfetto.dev or chrome://tracing; inspect with
// examples/oddci_trace).

#include <cstdlib>
#include <iostream>

#include "analytical/models.hpp"
#include "core/system.hpp"
#include "obs/export.hpp"
#include "obs/trace_export.hpp"
#include "util/table.hpp"
#include "workload/job.hpp"

int main(int argc, char** argv) {
  using namespace oddci;

  const std::size_t receivers =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500;
  const std::size_t instance_size =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100;
  const std::size_t tasks =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2000;
  const char* metrics_path = argc > 4 ? argv[4] : nullptr;
  const char* trace_path = argc > 5 ? argv[5] : nullptr;

  // System: beta = 1 Mbps of unused broadcast capacity, delta = 150 Kbps
  // ADSL-class return channels — the paper's Section 5.2 reference values.
  core::SystemConfig config;
  config.receivers = receivers;
  config.beta = util::BitRate::from_mbps(1.0);
  config.delta = util::BitRate::from_kbps(150.0);
  config.seed = 7;
  config.obs.trace = trace_path != nullptr;

  core::OddciSystem system(config);

  // Job: 10 MB image, `tasks` independent tasks of 30 s each on the
  // reference device, 512-byte input and 512-byte result per task.
  workload::Job job = workload::make_uniform_job(
      "quickstart", util::Bits::from_megabytes(10), tasks,
      util::Bits::from_bytes(512), util::Bits::from_bytes(512), 30.0);

  std::cout << "OddCI quickstart\n"
            << "  receivers:     " << receivers << "\n"
            << "  instance size: " << instance_size << "\n"
            << "  tasks:         " << tasks << " x "
            << job.tasks.front().reference_seconds << " s\n"
            << "  image:         " << job.image_size.to_string() << " @ beta "
            << config.beta.to_string() << "\n\n";

  core::RunResult result = system.run_job(job, instance_size);

  analytical::SystemModel model{config.beta, config.delta};
  analytical::JobModel jm;
  jm.n = job.task_count();
  jm.s_bits = job.avg_input_bits();
  jm.r_bits = job.avg_result_bits();
  jm.p_seconds = job.avg_reference_seconds();
  jm.image = job.image_size;

  const double w_model = analytical::wakeup_seconds(job.image_size, config.beta);
  const double m_model = analytical::makespan_seconds(model, jm, instance_size);
  const double e_model = analytical::efficiency(model, jm, instance_size);
  const double e_measured = result.efficiency(
      job.task_count(), job.avg_reference_seconds(), instance_size);

  util::Table table({"metric", "analytical", "measured"});
  table.add_row({"wakeup W (s)", util::Table::fmt(w_model, 1),
                 util::Table::fmt(result.wakeup_seconds, 1)});
  table.add_row({"makespan M (s)", util::Table::fmt(m_model, 1),
                 util::Table::fmt(result.makespan_seconds, 1)});
  table.add_row({"efficiency E", util::Table::fmt(e_model, 3),
                 util::Table::fmt(e_measured, 3)});
  table.print(std::cout);

  std::cout << "\n  tasks done:      " << result.job.results_received << "/"
            << tasks << (result.completed ? " (complete)" : " (INCOMPLETE)")
            << "\n  assignments:     " << result.job.assignments
            << "\n  wakeup bcasts:   " << result.controller.wakeup_broadcasts
            << "\n  heartbeats:      " << result.controller.heartbeats_received
            << "\n  direct messages: " << result.network.messages_delivered
            << "\n";

  // The same counters — and much more (histograms, series, spans) — are in
  // the registry-backed snapshot the run returned.
  if (metrics_path != nullptr) {
    obs::write_json(metrics_path, result.metrics);
    std::cout << "\n  wrote " << metrics_path << " ("
              << result.metrics.counters.size() << " counters, "
              << result.metrics.series.size() << " series, "
              << result.metrics.histograms.size() << " histograms)\n";
  }
  if (trace_path != nullptr) {
    const obs::FlightRecorder& recorder = *system.flight_recorder();
    obs::write_chrome_trace(trace_path, recorder);
    std::cout << "  wrote " << trace_path << " (" << recorder.size()
              << " events retained, " << recorder.overwritten()
              << " overwritten)\n";
  }
  return result.completed ? 0 : 1;
}

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

/// Observability: named counters, gauges, log-bucketed latency histograms
/// and sim-time-stamped series, collected through a `MetricsRegistry`.
///
/// Design contract (the overhead budget of the simulation hot path):
///
///  * metric cells are plain `std::uint64_t` / `double` slots owned either
///    by the instrumented component itself or by the registry; updating one
///    is a single arithmetic instruction plus (for histograms) a cheap
///    bucket-index computation — no allocation, no locking, no map lookup;
///  * names are resolved exactly once, at registration/link time, never on
///    the update path;
///  * `snapshot()` walks the registered metrics and copies their current
///    values into a plain-data `MetricsSnapshot` that owns all its storage,
///    so a snapshot outlives the system that produced it.
///
/// Components expose their metrics by value (`obs::Counter` members) so
/// they stay fully functional when constructed standalone (unit tests);
/// the registry links those cells by pointer and the linked component must
/// outlive any `snapshot()` call.
namespace oddci::obs {

/// Monotonic event counter. A plain uint64 cell with a named home in the
/// registry; incrementing is as cheap as `++member`.
class Counter {
 public:
  constexpr Counter() = default;

  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  Counter& operator++() noexcept {
    ++value_;
    return *this;
  }
  Counter& operator+=(std::uint64_t n) noexcept {
    value_ += n;
    return *this;
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value gauge (instantaneous level, e.g. queue depth).
class Gauge {
 public:
  constexpr Gauge() = default;

  void set(double v) noexcept { value_ = v; }
  void add(double d) noexcept { value_ += d; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Log2-bucketed histogram for non-negative samples (latencies in
/// seconds). Bucket 0 absorbs everything below `min_value`; bucket i
/// (1 <= i < kBucketCount-1) covers [min_value * 2^(i-1), min_value * 2^i);
/// the last bucket is the overflow. With the default 1 microsecond floor
/// the top regular bucket starts beyond a simulated year, so overflow is
/// effectively unreachable for latency data.
class LogHistogram {
 public:
  static constexpr std::size_t kBucketCount = 48;

  explicit LogHistogram(double min_value = 1e-6);

  void record(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double min_value() const noexcept { return min_value_; }

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_.at(i);
  }
  /// Lower/upper edge of bucket i (bucket 0 starts at 0; the last bucket
  /// has an infinite upper edge).
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// bucket holding the target rank. Exact min/max at q = 0 / 1.
  [[nodiscard]] double quantile(double q) const;

  /// Bucket index for sample `x` (exposed for the bucketing tests).
  [[nodiscard]] static std::size_t bucket_index(double x,
                                                double min_value) noexcept;

  void reset() noexcept;

 private:
  double min_value_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<std::uint64_t> counts_;
};

/// Append-only (time, value) series with a point cap: once full, further
/// points are counted as dropped instead of growing without bound on very
/// long simulations.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t max_points = 1 << 16);

  void record(double t_seconds, double value);

  [[nodiscard]] std::size_t size() const { return times_.size(); }
  [[nodiscard]] bool empty() const { return times_.empty(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] const std::vector<double>& times() const { return times_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  std::size_t max_points_;
  std::uint64_t dropped_ = 0;
  std::vector<double> times_;
  std::vector<double> values_;
};

// --- snapshot ---------------------------------------------------------------

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
  bool operator==(const CounterSample&) const = default;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
  bool operator==(const GaugeSample&) const = default;
};

struct HistogramSample {
  std::string name;
  double min_value = 0.0;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Full bucket array (LogHistogram::kBucketCount entries).
  std::vector<std::uint64_t> buckets;
  bool operator==(const HistogramSample&) const = default;
};

/// Quantile estimate over an exported `HistogramSample`, mirroring
/// LogHistogram::quantile exactly: same power-of-two bucket geometry,
/// linear interpolation within the bucket, exact min/max at q <= 0 / >= 1.
/// 0.0 on an empty histogram.
[[nodiscard]] double histogram_quantile(const HistogramSample& sample,
                                        double q);

struct SeriesSample {
  std::string name;
  std::uint64_t dropped = 0;
  std::vector<double> times;
  std::vector<double> values;
  bool operator==(const SeriesSample&) const = default;
};

struct SpanSample {
  std::string name;
  std::uint64_t key = 0;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  bool operator==(const SpanSample&) const = default;
};

/// Plain-data copy of everything the registry knows, ordered by name so
/// exports are deterministic. Owns all its storage.
struct MetricsSnapshot {
  double taken_at_seconds = 0.0;
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<SeriesSample> series;
  std::vector<SpanSample> spans;

  [[nodiscard]] const CounterSample* find_counter(std::string_view name) const;
  [[nodiscard]] const GaugeSample* find_gauge(std::string_view name) const;
  [[nodiscard]] const HistogramSample* find_histogram(
      std::string_view name) const;
  [[nodiscard]] const SeriesSample* find_series(std::string_view name) const;

  /// Counter value by name, `fallback` if absent.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name,
                                            std::uint64_t fallback = 0) const;

  bool operator==(const MetricsSnapshot&) const = default;
};

// --- registry ---------------------------------------------------------------

/// Name -> metric directory. Metrics are either *owned* (created via
/// counter()/gauge()/histogram()/series(); stable addresses for the life
/// of the registry) or *linked* (cells owned by a component that must
/// outlive snapshot() calls). Probes are lazy gauges evaluated at snapshot
/// time — for values that are cheap to compute but wasteful to maintain.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LogHistogram& histogram(std::string_view name, double min_value = 1e-6);
  TimeSeries& series(std::string_view name, std::size_t max_points = 1 << 16);

  void link_counter(std::string_view name, const Counter& cell);
  void link_histogram(std::string_view name, const LogHistogram& hist);
  /// Evaluated at snapshot time; exported as a gauge.
  void link_probe(std::string_view name, std::function<double()> probe);

  /// Counter whose value is computed at snapshot time — used by the
  /// sharded kernel to merge per-shard cells under one name without
  /// putting an atomic on the update path. Shadows any direct link.
  void link_counter_fn(std::string_view name,
                       std::function<std::uint64_t()> fn);
  /// Histogram exported as the element-wise sum of several per-shard
  /// histograms (identical min_value expected). Shadows any direct link.
  void link_histogram_set(std::string_view name,
                          std::vector<const LogHistogram*> set);

  [[nodiscard]] bool has(std::string_view name) const;

  /// Record a completed trace span (bounded retention; see max_spans()).
  void record_span(std::string_view name, std::uint64_t key,
                   double start_seconds, double end_seconds);
  void set_max_spans(std::size_t n) { max_spans_ = n; }
  [[nodiscard]] std::size_t max_spans() const { return max_spans_; }
  [[nodiscard]] std::uint64_t spans_dropped() const { return spans_dropped_; }

  [[nodiscard]] MetricsSnapshot snapshot(double now_seconds) const;

 private:
  // Owned storage: deques so addresses stay stable as metrics register.
  std::deque<Counter> owned_counters_;
  std::deque<Gauge> owned_gauges_;
  std::deque<LogHistogram> owned_histograms_;
  std::deque<TimeSeries> owned_series_;

  // Name directories (ordered => deterministic snapshots/exports).
  std::map<std::string, const Counter*, std::less<>> counters_;
  std::map<std::string, Gauge*, std::less<>> gauges_;
  std::map<std::string, const LogHistogram*, std::less<>> histograms_;
  std::map<std::string, TimeSeries*, std::less<>> series_;
  std::map<std::string, std::function<double()>, std::less<>> probes_;
  std::map<std::string, std::function<std::uint64_t()>, std::less<>>
      counter_fns_;
  std::map<std::string, std::vector<const LogHistogram*>, std::less<>>
      histogram_sets_;

  std::vector<SpanSample> spans_;
  std::size_t max_spans_ = 4096;
  std::uint64_t spans_dropped_ = 0;
};

// --- shared instrument blocks ----------------------------------------------

/// Aggregate counters for an entire PNA population: every agent of one
/// system increments the same cells through a shared pointer in its
/// environment (per-agent `PnaStats` remain per-agent).
struct PnaCounters {
  Counter control_messages_seen;
  Counter signature_failures;
  Counter wakeups_dropped_busy;
  Counter wakeups_rejected_requirements;
  Counter wakeups_dropped_probability;
  Counter joins;
  Counter resets;
  Counter tasks_completed;
  Counter heartbeats_sent;
  /// Beats deferred to a pacing-window slot (paced heartbeat mode only;
  /// registered separately so unpaced snapshots carry no phantom cell).
  Counter heartbeats_paced;
  /// Results uploaded with a deliberately wrong digest (forgers and
  /// colluders) and tasks returned without computing (free-riders).
  /// Byzantine profiles only; registered separately so honest-population
  /// snapshots carry no phantom cells.
  Counter results_forged;
  Counter results_freeridden;

  void link(MetricsRegistry& registry) const;
  void link_paced(MetricsRegistry& registry) const;
  void link_byzantine(MetricsRegistry& registry) const;
};

/// Shared counters for all broadcast media of one system (carousel and
/// multicast channels alike).
struct BroadcastCounters {
  Counter commits;
  Counter files_staged;
  Counter files_removed;
  Counter announcements;

  void link(MetricsRegistry& registry) const;
};

}  // namespace oddci::obs

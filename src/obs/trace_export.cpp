#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <unordered_map>

#include "obs/json.hpp"

namespace oddci::obs {

namespace {

using json::append_i64;
using json::append_string;
using json::append_u64;

// Track layout: a single synthetic process, one "thread" per component so
// Perfetto shows one named lane per protocol role.
constexpr std::uint64_t kPid = 1;

std::uint64_t tid_of(TraceComponent component) {
  return static_cast<std::uint64_t>(component);
}

void append_event_args(std::string& out, const TraceEvent& e) {
  // Ids are emitted as strings: JSON numbers above 2^53 would be mangled
  // by double-based readers, and the round-trip must be exact.
  out += "{\"trace\":\"";
  append_u64(out, e.trace_id);
  out += "\",\"span\":\"";
  append_u64(out, e.span_id);
  out += "\",\"parent\":\"";
  append_u64(out, e.parent_span);
  out += "\",\"actor\":\"";
  append_u64(out, e.actor);
  out += "\",\"arg\":\"";
  append_u64(out, e.arg);
  out += "\"}";
}

std::uint64_t u64_arg(const json::Object& args, const std::string& key) {
  const std::string& text = json::member(args, key).as_string();
  return std::strtoull(text.c_str(), nullptr, 10);
}

}  // namespace

std::vector<TraceEvent> merge_events(
    const std::vector<const FlightRecorder*>& recorders) {
  std::vector<TraceEvent> merged;
  std::size_t total = 0;
  for (const FlightRecorder* r : recorders) {
    if (r != nullptr) total += r->size();
  }
  merged.reserve(total);
  // Appending recorder by recorder (each chronological) and stable-sorting
  // on time alone yields exactly the (time, recorder index, ring order)
  // tie-break.
  for (const FlightRecorder* r : recorders) {
    if (r == nullptr) continue;
    const std::vector<TraceEvent> events = r->events();
    merged.insert(merged.end(), events.begin(), events.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t_micros < b.t_micros;
                   });
  return merged;
}

std::string to_chrome_trace(const std::vector<TraceEvent>& events) {
  // Flow arrows need the parent's track and timestamp; index the retained
  // events by span id. A parent the ring has overwritten simply gets no
  // arrow — the child's args still carry the id for offline joining.
  std::unordered_map<std::uint64_t, const TraceEvent*> by_span;
  by_span.reserve(events.size());
  for (const TraceEvent& e : events) by_span.emplace(e.span_id, &e);

  std::string out;
  out.reserve(256 + events.size() * 192);
  out += "{\"schema\":";
  append_string(out, kTraceSchema);
  out += ",\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

  // Name the per-component tracks first ("M" metadata events).
  bool first = true;
  for (auto c = static_cast<std::uint8_t>(TraceComponent::kProvider);
       c <= static_cast<std::uint8_t>(TraceComponent::kNetwork); ++c) {
    const auto component = static_cast<TraceComponent>(c);
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
    append_u64(out, kPid);
    out += ",\"tid\":";
    append_u64(out, tid_of(component));
    out += ",\"args\":{\"name\":";
    append_string(out, to_string(component));
    out += "}}";
  }

  for (const TraceEvent& e : events) {
    // The hop itself: an "X" complete event. Hops are instantaneous in
    // sim time; a 1us duration keeps them visible as slices.
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"X\",\"name\":";
    append_string(out, to_string(e.kind));
    out += ",\"cat\":";
    append_string(out, to_string(e.component));
    out += ",\"pid\":";
    append_u64(out, kPid);
    out += ",\"tid\":";
    append_u64(out, tid_of(e.component));
    out += ",\"ts\":";
    append_i64(out, e.t_micros);
    out += ",\"dur\":1,\"args\":";
    append_event_args(out, e);
    out += '}';

    const auto parent_it =
        e.parent_span != 0 ? by_span.find(e.parent_span) : by_span.end();
    if (parent_it != by_span.end()) {
      // Causal arrow parent -> child: the "s" step sits on the parent's
      // track at the parent's time, the "f" step on the child's. The flow
      // id is the child span id (unique), shared by the s/f pair.
      const TraceEvent& parent = *parent_it->second;
      out += ",{\"ph\":\"s\",\"name\":\"flow\",\"cat\":\"causal\",\"id\":";
      append_u64(out, e.span_id);
      out += ",\"pid\":";
      append_u64(out, kPid);
      out += ",\"tid\":";
      append_u64(out, tid_of(parent.component));
      out += ",\"ts\":";
      append_i64(out, parent.t_micros);
      out += "},{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"flow\",\"cat\":"
             "\"causal\",\"id\":";
      append_u64(out, e.span_id);
      out += ",\"pid\":";
      append_u64(out, kPid);
      out += ",\"tid\":";
      append_u64(out, tid_of(e.component));
      out += ",\"ts\":";
      append_i64(out, e.t_micros);
      out += '}';
    }
  }

  out += "]}\n";
  return out;
}

std::string to_chrome_trace(const FlightRecorder& recorder) {
  return to_chrome_trace(recorder.events());
}

void write_chrome_trace(const std::string& path,
                        const FlightRecorder& recorder) {
  json::write_file(path, to_chrome_trace(recorder));
}

std::vector<TraceEvent> events_from_chrome_trace(std::string_view text) {
  const json::Value root = json::parse(text);
  const json::Object& obj = root.as_object();
  if (json::member(obj, "schema").as_string() != kTraceSchema) {
    throw std::runtime_error("trace json: unknown schema");
  }

  std::vector<TraceEvent> out;
  for (const json::Value& entry :
       json::member(obj, "traceEvents").as_array()) {
    const json::Object& eo = entry.as_object();
    const std::string& ph = json::member(eo, "ph").as_string();
    if (ph != "X") continue;  // metadata and flow events carry no payload

    TraceEvent e;
    e.t_micros = json::member(eo, "ts").as_i64();
    e.kind = kind_from_string(json::member(eo, "name").as_string());
    e.component =
        component_from_string(json::member(eo, "cat").as_string());
    if (e.kind == TraceEventKind{} || e.component == TraceComponent{}) {
      throw std::runtime_error("trace json: unknown event name or category");
    }
    const json::Object& args = json::member(eo, "args").as_object();
    e.trace_id = u64_arg(args, "trace");
    e.span_id = u64_arg(args, "span");
    e.parent_span = u64_arg(args, "parent");
    e.actor = u64_arg(args, "actor");
    e.arg = u64_arg(args, "arg");
    out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> read_chrome_trace(const std::string& path) {
  return events_from_chrome_trace(json::read_file(path));
}

}  // namespace oddci::obs

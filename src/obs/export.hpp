#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

/// Snapshot exporters. The JSON form (`oddci.metrics.v1`) is the machine
/// interface — a single object holding every counter, gauge, histogram,
/// series and span; doubles are printed with %.17g so a parsed-back
/// snapshot compares bit-identical to the original. The CSV form is a
/// long-format table of the time series only (series,time,value rows),
/// for spreadsheet/plotting workflows.
namespace oddci::obs {

inline constexpr std::string_view kMetricsSchema = "oddci.metrics.v1";

[[nodiscard]] std::string to_json(const MetricsSnapshot& snap);
void write_json(const std::string& path, const MetricsSnapshot& snap);

/// Parse a snapshot back from its JSON form. Throws std::runtime_error on
/// malformed input or a schema mismatch.
[[nodiscard]] MetricsSnapshot snapshot_from_json(std::string_view json);
[[nodiscard]] MetricsSnapshot read_json(const std::string& path);

/// Time series only, long format: header `series,time,value`.
[[nodiscard]] std::string series_to_csv(const MetricsSnapshot& snap);
void write_series_csv(const std::string& path, const MetricsSnapshot& snap);

/// Parse series back from the long-format CSV (times/values only; the
/// dropped counts are not part of the CSV form).
[[nodiscard]] std::vector<SeriesSample> series_from_csv(std::string_view csv);

}  // namespace oddci::obs

#include "obs/flight_recorder.hpp"

#include <stdexcept>

namespace oddci::obs {

std::string_view to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kInstanceRequest: return "instance.request";
    case TraceEventKind::kControlFormat: return "control.format";
    case TraceEventKind::kCarouselCommit: return "carousel.commit";
    case TraceEventKind::kControlReceived: return "control.received";
    case TraceEventKind::kWakeupAccepted: return "wakeup.accepted";
    case TraceEventKind::kWakeupDroppedBusy: return "wakeup.dropped_busy";
    case TraceEventKind::kWakeupDroppedProbability:
      return "wakeup.dropped_probability";
    case TraceEventKind::kWakeupRejectedRequirements:
      return "wakeup.rejected_requirements";
    case TraceEventKind::kImageAcquired: return "image.acquired";
    case TraceEventKind::kJoinAborted: return "join.aborted";
    case TraceEventKind::kHeartbeatSent: return "heartbeat.sent";
    case TraceEventKind::kMemberJoined: return "member.joined";
    case TraceEventKind::kInstanceReady: return "instance.ready";
    case TraceEventKind::kInstanceReleased: return "instance.released";
    case TraceEventKind::kMemberPruned: return "member.pruned";
    case TraceEventKind::kResetApplied: return "reset.applied";
    case TraceEventKind::kTrimReset: return "trim.reset";
    case TraceEventKind::kAggregateFlush: return "aggregate.flush";
    case TraceEventKind::kTaskDispatched: return "task.dispatched";
    case TraceEventKind::kTaskExecuted: return "task.executed";
    case TraceEventKind::kTaskResult: return "task.result";
    case TraceEventKind::kTaskAborted: return "task.aborted";
    case TraceEventKind::kTaskRequeued: return "task.requeued";
    case TraceEventKind::kPowerChange: return "power.change";
    case TraceEventKind::kTuned: return "tuner.change";
    case TraceEventKind::kMessageDropped: return "message.dropped";
    case TraceEventKind::kFaultMessageLost: return "fault.message_lost";
    case TraceEventKind::kFaultMessageDuplicated:
      return "fault.message_duplicated";
    case TraceEventKind::kFaultLatencySpike: return "fault.latency_spike";
    case TraceEventKind::kFaultPartitionStart: return "fault.partition_start";
    case TraceEventKind::kFaultPartitionEnd: return "fault.partition_end";
    case TraceEventKind::kFaultCrash: return "fault.crash";
    case TraceEventKind::kFaultRestart: return "fault.restart";
    case TraceEventKind::kFaultPnaHang: return "fault.pna_hang";
    case TraceEventKind::kFaultControlCorrupted:
      return "fault.control_corrupted";
    case TraceEventKind::kTaskFailed: return "task.failed";
    case TraceEventKind::kRecoveryResultRetry: return "recovery.result_retry";
    case TraceEventKind::kRecoveryRequestRetry:
      return "recovery.request_retry";
    case TraceEventKind::kRecoveryAggregatorFailover:
      return "recovery.aggregator_failover";
    case TraceEventKind::kRecoveryAggregatorRestore:
      return "recovery.aggregator_restore";
    case TraceEventKind::kControlDecision:
      return "control.decision";
    case TraceEventKind::kControlTrim:
      return "control.trim";
    case TraceEventKind::kControlAdmit:
      return "control.admit";
    case TraceEventKind::kControlDefer:
      return "control.defer";
    case TraceEventKind::kQueueDropped:
      return "net.queue_drop";
    case TraceEventKind::kVerifyQuorum: return "verify.quorum";
    case TraceEventKind::kVerifyOutvoted: return "verify.outvoted";
    case TraceEventKind::kVerifyEscalated: return "verify.escalated";
    case TraceEventKind::kVerifySpotFailed: return "verify.spot_failed";
    case TraceEventKind::kReputationQuarantined:
      return "reputation.quarantined";
    case TraceEventKind::kReputationParoled: return "reputation.paroled";
  }
  return "unknown";
}

std::string_view to_string(TraceComponent component) {
  switch (component) {
    case TraceComponent::kProvider: return "provider";
    case TraceComponent::kController: return "controller";
    case TraceComponent::kCarousel: return "carousel";
    case TraceComponent::kReceiver: return "receiver";
    case TraceComponent::kPna: return "pna";
    case TraceComponent::kAggregator: return "aggregator";
    case TraceComponent::kBackend: return "backend";
    case TraceComponent::kNetwork: return "network";
  }
  return "unknown";
}

namespace {
// The enumerators are dense and small; scan rather than maintain a map.
constexpr TraceEventKind kFirstKind = TraceEventKind::kInstanceRequest;
constexpr TraceEventKind kLastKind = TraceEventKind::kReputationParoled;
constexpr TraceComponent kFirstComponent = TraceComponent::kProvider;
constexpr TraceComponent kLastComponent = TraceComponent::kNetwork;
}  // namespace

TraceEventKind kind_from_string(std::string_view name) {
  for (auto k = static_cast<std::uint8_t>(kFirstKind);
       k <= static_cast<std::uint8_t>(kLastKind); ++k) {
    if (to_string(static_cast<TraceEventKind>(k)) == name) {
      return static_cast<TraceEventKind>(k);
    }
  }
  return TraceEventKind{};
}

TraceComponent component_from_string(std::string_view name) {
  for (auto c = static_cast<std::uint8_t>(kFirstComponent);
       c <= static_cast<std::uint8_t>(kLastComponent); ++c) {
    if (to_string(static_cast<TraceComponent>(c)) == name) {
      return static_cast<TraceComponent>(c);
    }
  }
  return TraceComponent{};
}

FlightRecorder::FlightRecorder(std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("FlightRecorder: capacity must be > 0");
  }
  ring_.resize(capacity);
}

#ifndef ODDCI_NO_TRACE

void FlightRecorder::record(const TraceEvent& event) noexcept {
  ring_[head_] = event;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  if (count_ < ring_.size()) ++count_;
  ++total_;
}

TraceContext FlightRecorder::emit(sim::SimTime t, TraceEventKind kind,
                                  TraceComponent component,
                                  TraceContext parent, std::uint64_t actor,
                                  std::uint64_t arg) noexcept {
  TraceEvent e;
  e.t_micros = t.micros();
  e.span_id = next_id();
  e.trace_id = parent.trace_id != 0 ? parent.trace_id : e.span_id;
  e.parent_span = parent.parent_span;
  e.actor = actor;
  e.arg = arg;
  e.kind = kind;
  e.component = component;
  record(e);
  return e.context();
}

#endif  // ODDCI_NO_TRACE

std::vector<TraceEvent> FlightRecorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  // Oldest retained event sits at head_ once the ring has wrapped.
  const std::size_t start =
      count_ == ring_.size() ? head_ : (head_ + ring_.size() - count_) %
                                           ring_.size();
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::clear() noexcept {
  head_ = 0;
  count_ = 0;
}

}  // namespace oddci::obs

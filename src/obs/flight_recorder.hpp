#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

/// Causal flight recorder: a bounded, overwrite-on-full ring buffer of
/// fixed-size trace events, recording the protocol's multi-hop cycles
/// (Provider request -> Controller format -> carousel commit -> PNA receipt
/// -> join decision -> heartbeat consolidation -> Backend dispatch/result)
/// as causally linked events stamped with sim time.
///
/// Design contract:
///  * `TraceEvent` is a trivially copyable POD; `record()` copies it into a
///    preallocated ring — no allocation, no locking, no formatting on the
///    hot path. When the ring is full the oldest event is overwritten (the
///    recorder is a *flight recorder*, not an archive).
///  * Causality is a (trace_id, span_id, parent_span) triple. Every event
///    gets a fresh span id from a deterministic counter; children carry
///    their parent's `TraceContext` so two same-seed runs produce identical
///    id assignments and therefore byte-identical exports.
///  * The recorder is off by default: components hold a nullable
///    `FlightRecorder*` and skip emission when it is null. Defining
///    `ODDCI_NO_TRACE` (CMake option ODDCI_TRACING=OFF) additionally
///    compiles `record()`/`emit()` down to no-ops.
namespace oddci::obs {

/// Trace context carried across hops (on the wire and in task records).
/// `trace_id` names the causal chain; `parent_span` is the span id of the
/// event that caused the current one. A zero trace id means "no context":
/// the next emitted event starts a new root trace.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;

  [[nodiscard]] constexpr bool valid() const noexcept { return trace_id != 0; }
  bool operator==(const TraceContext&) const = default;
};

/// What happened. The `arg` field of the event is kind-specific (documented
/// per enumerator); `actor` is the acting entity (PNA/node id, instance id,
/// carousel generation — see the emitting component).
enum class TraceEventKind : std::uint8_t {
  kInstanceRequest = 1,   ///< Provider asked for an instance (arg: target size)
  kControlFormat,         ///< Controller formatted a control msg (arg: ControlType)
  kCarouselCommit,        ///< broadcast medium committed (arg: files on air)
  kControlReceived,       ///< PNA decoded a control message (arg: instance)
  kWakeupAccepted,        ///< idle PNA passed the probability gate (arg: instance)
  kWakeupDroppedBusy,     ///< busy PNA dropped a wakeup (arg: instance)
  kWakeupDroppedProbability,   ///< probability gate said no (arg: instance)
  kWakeupRejectedRequirements, ///< device not compliant (arg: instance)
  kImageAcquired,         ///< image read from the carousel finished (arg: instance)
  kJoinAborted,           ///< pending join cancelled, image off air (arg: instance)
  kHeartbeatSent,         ///< PNA sent a status report (arg: PnaState)
  kMemberJoined,          ///< Controller confirmed a member (arg: instance)
  kInstanceReady,         ///< instance reached its target size (arg: size)
  kInstanceReleased,      ///< Provider released the instance (arg: instance)
  kMemberPruned,          ///< stale member dropped by the monitor (arg: instance)
  kResetApplied,          ///< PNA tore down its DVE (arg: instance)
  kTrimReset,             ///< Controller sent a unicast trim reset (arg: instance)
  kAggregateFlush,        ///< aggregator sent a consolidated report (arg: entries)
  kTaskDispatched,        ///< Backend assigned a task (arg: task index)
  kTaskExecuted,          ///< PNA finished executing a task (arg: task index)
  kTaskResult,            ///< Backend accepted a result (arg: task index)
  kTaskAborted,           ///< task handed back by a reset PNA (arg: task index)
  kTaskRequeued,          ///< timeout sweep re-queued a task (arg: task index)
  kPowerChange,           ///< receiver power mode changed (arg: PowerMode)
  kTuned,                 ///< receiver tuned (arg 1) or untuned (arg 0)
  kMessageDropped,        ///< delivery to a detached endpoint (arg: tag)
  kFaultMessageLost,      ///< injector dropped a direct message (arg: tag)
  kFaultMessageDuplicated,///< injector duplicated a direct message (arg: tag)
  kFaultLatencySpike,     ///< injector delayed a message (arg: extra micros)
  kFaultPartitionStart,   ///< region black-holed (actor: region, arg: node)
  kFaultPartitionEnd,     ///< partition healed (actor: region, arg: node)
  kFaultCrash,            ///< component crashed, in-flight state dropped
  kFaultRestart,          ///< crashed component came back up
  kFaultPnaHang,          ///< PNA frozen (arg: hang duration in micros)
  kFaultControlCorrupted, ///< tampered control message put on the air
  kTaskFailed,            ///< task hit the retry cap, job fails (arg: index)
  kRecoveryResultRetry,   ///< PNA re-sent an unacked result (arg: index)
  kRecoveryRequestRetry,  ///< PNA watchdog re-sent a task request
  kRecoveryAggregatorFailover, ///< silent aggregator voided (actor: shard)
  kRecoveryAggregatorRestore,  ///< aggregator back in routing (actor: shard)
  kControlDecision,  ///< engine picked a wakeup probability (arg: p * 1e6)
  kControlTrim,      ///< engine requested member trimming (arg: count)
  kControlAdmit,     ///< Phi admission passed a job (arg: Phi * 1e6)
  kControlDefer,     ///< Phi admission deferred a job (arg: Phi * 1e6)
  kQueueDropped,     ///< bounded link queue tail-dropped a message (arg: tag)
  kVerifyQuorum,     ///< quorum accepted a result (actor: votes, arg: index)
  kVerifyOutvoted,   ///< vote rejected by a quorum (actor: pna, arg: index)
  kVerifyEscalated,  ///< tied vote widened (actor: new target, arg: index)
  kVerifySpotFailed, ///< spot-check answer wrong (actor: pna, arg: index)
  kReputationQuarantined, ///< agent quarantined (actor: pna, arg: epoch)
  kReputationParoled,     ///< agent paroled (actor: pna, arg: epoch)
};

/// Which component emitted the event — one export track per component.
enum class TraceComponent : std::uint8_t {
  kProvider = 1,
  kController,
  kCarousel,
  kReceiver,
  kPna,
  kAggregator,
  kBackend,
  kNetwork,
};

[[nodiscard]] std::string_view to_string(TraceEventKind kind);
[[nodiscard]] std::string_view to_string(TraceComponent component);
/// Inverse of to_string; returns the zero value for unknown names.
[[nodiscard]] TraceEventKind kind_from_string(std::string_view name);
[[nodiscard]] TraceComponent component_from_string(std::string_view name);

/// One recorded hop. Fixed size, trivially copyable; 56 bytes.
struct TraceEvent {
  std::int64_t t_micros = 0;        ///< sim time of the hop
  std::uint64_t trace_id = 0;       ///< causal chain this hop belongs to
  std::uint64_t span_id = 0;        ///< this hop's own id
  std::uint64_t parent_span = 0;    ///< span that caused it (0 = root)
  std::uint64_t actor = 0;          ///< acting entity (pna/node/instance id)
  std::uint64_t arg = 0;            ///< kind-specific argument
  TraceEventKind kind{};
  TraceComponent component{};

  bool operator==(const TraceEvent&) const = default;

  /// Context a child event should carry.
  [[nodiscard]] TraceContext context() const noexcept {
    return TraceContext{trace_id, span_id};
  }
};

static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must stay a hot-path POD");
static_assert(sizeof(TraceEvent) <= 64, "TraceEvent must stay cache-friendly");

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 1 << 16);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Allocate a span id (monotonic, deterministic). With an id stream set
  /// (sharded kernel), ids are `offset + 1 + n * stride` — disjoint across
  /// the per-shard recorders of one system, so a merged export never sees
  /// a span-id collision.
  std::uint64_t next_id() noexcept { return id_offset_ + 1 + (id_next_++) * id_stride_; }

  /// Partition the id space for per-shard recorders: recorder s of K uses
  /// offset s, stride K. The default (0, 1) is the classic dense counter.
  /// Call before any emit(); re-seeding later would reuse ids.
  void set_id_stream(std::uint64_t offset, std::uint64_t stride) noexcept {
    id_offset_ = offset;
    id_stride_ = stride == 0 ? 1 : stride;
  }

#ifdef ODDCI_NO_TRACE
  void record(const TraceEvent&) noexcept {}
  TraceContext emit(sim::SimTime, TraceEventKind, TraceComponent,
                    TraceContext = {}, std::uint64_t = 0,
                    std::uint64_t = 0) noexcept {
    return {};
  }
#else
  /// Copy `event` into the ring, overwriting the oldest event when full.
  void record(const TraceEvent& event) noexcept;

  /// Stamp and record one hop: allocates a fresh span id, resolves the
  /// trace id (a zero parent starts a new root trace), and returns the
  /// context children of this hop should carry.
  TraceContext emit(sim::SimTime t, TraceEventKind kind,
                    TraceComponent component, TraceContext parent = {},
                    std::uint64_t actor = 0, std::uint64_t arg = 0) noexcept;
#endif

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Every record() ever, including overwritten ones.
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return total_;
  }
  /// Events lost to overwrite (total_recorded - size).
  [[nodiscard]] std::uint64_t overwritten() const noexcept {
    return total_ - count_;
  }

  /// Chronological copy of the retained events (oldest first).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Drop all retained events; id allocation and totals keep counting.
  void clear() noexcept;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< next write position
  std::size_t count_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t id_next_ = 0;
  std::uint64_t id_offset_ = 0;
  std::uint64_t id_stride_ = 1;
};

/// True when the recorder is compiled in (ODDCI_TRACING=ON, the default).
#ifdef ODDCI_NO_TRACE
inline constexpr bool kTracingCompiledIn = false;
#else
inline constexpr bool kTracingCompiledIn = true;
#endif

}  // namespace oddci::obs

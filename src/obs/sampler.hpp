#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

/// Sim-time sampler: a `PeriodicTask` on the timer wheel that reads a set
/// of probes every `interval` of simulated time and appends the values to
/// named `TimeSeries` in the registry. Probes are registered once, before
/// start(); each tick is a plain loop over preallocated closures — no
/// allocation, no RNG, so two runs of the same seeded scenario produce
/// bit-identical series.
namespace oddci::obs {

class Sampler {
 public:
  struct Options {
    sim::SimTime interval = sim::SimTime::from_seconds(10);
    std::size_t max_points = 1 << 16;

    void validate() const;
  };

  Sampler(sim::Simulation& simulation, MetricsRegistry& registry);
  Sampler(sim::Simulation& simulation, MetricsRegistry& registry,
          Options options);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Record probe() at every tick (levels: pool sizes, queue depths).
  void add_gauge_series(std::string_view name, std::function<double()> probe);

  /// Record the per-second rate of `cell` over the last interval
  /// (counter deltas: heartbeat rate, delivery rate). The cell must
  /// outlive the sampler.
  void add_rate_series(std::string_view name, const Counter& cell);

  /// First tick fires one interval from now.
  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] sim::SimTime interval() const { return options_.interval; }

 private:
  void tick();

  struct GaugeProbe {
    TimeSeries* series;
    std::function<double()> fn;
  };
  struct RateProbe {
    TimeSeries* series;
    const Counter* cell;
    std::uint64_t last = 0;
  };

  sim::Simulation& simulation_;
  MetricsRegistry& registry_;
  Options options_;
  std::vector<GaugeProbe> gauges_;
  std::vector<RateProbe> rates_;
  sim::PeriodicTask task_;
  bool running_ = false;
  std::uint64_t ticks_ = 0;
};

}  // namespace oddci::obs

#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/sharded.hpp"
#include "sim/simulation.hpp"

/// Sim-time sampler: a `PeriodicTask` on the timer wheel that reads a set
/// of probes every `interval` of simulated time and appends the values to
/// named `TimeSeries` in the registry. Probes are registered once, before
/// start(); each tick is a plain loop over preallocated closures — no
/// allocation, no RNG, so two runs of the same seeded scenario produce
/// bit-identical series.
namespace oddci::obs {

class Sampler {
 public:
  struct Options {
    sim::SimTime interval = sim::SimTime::from_seconds(10);
    std::size_t max_points = 1 << 16;

    void validate() const;
  };

  Sampler(sim::Simulation& simulation, MetricsRegistry& registry);
  Sampler(sim::Simulation& simulation, MetricsRegistry& registry,
          Options options);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Record probe() at every tick (levels: pool sizes, queue depths).
  void add_gauge_series(std::string_view name, std::function<double()> probe);

  /// Record the per-second rate of `cell` over the last interval
  /// (counter deltas: heartbeat rate, delivery rate). The cell must
  /// outlive the sampler.
  void add_rate_series(std::string_view name, const Counter& cell);

  /// Rate series over a computed value — the sharded kernel merges
  /// per-shard counter cells through a reader function.
  void add_rate_series_fn(std::string_view name,
                          std::function<std::uint64_t()> fn);

  /// Side hook invoked after the probes at every tick — the system hangs
  /// periodic health audits here, reusing the sampler's coordinator-safe
  /// tick points (all shards parked under the sharded kernel). The hook
  /// must not schedule events or mutate sim state. Call before start();
  /// null disables.
  void set_on_tick(std::function<void()> hook) { on_tick_ = std::move(hook); }

  /// Drive ticks through the sharded kernel's global-task queue instead of
  /// a shard-local timer: each tick runs on the coordinator at a window
  /// boundary, with every shard parked, so probes may read state spanning
  /// shards. No-op with a single shard (the PeriodicTask path is used).
  /// Call before start(); the sampler must outlive the kernel's run loop.
  void set_sharded(sim::ShardedSimulation* sharded) { sharded_ = sharded; }

  /// First tick fires one interval from now.
  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] sim::SimTime interval() const { return options_.interval; }

 private:
  void tick();

  struct GaugeProbe {
    TimeSeries* series;
    std::function<double()> fn;
  };
  struct RateProbe {
    TimeSeries* series;
    const Counter* cell;
    std::uint64_t last = 0;
  };
  struct RateFnProbe {
    TimeSeries* series;
    std::function<std::uint64_t()> fn;
    std::uint64_t last = 0;
  };

  void schedule_global_tick();

  sim::Simulation& simulation_;
  MetricsRegistry& registry_;
  Options options_;
  std::vector<GaugeProbe> gauges_;
  std::vector<RateProbe> rates_;
  std::vector<RateFnProbe> rate_fns_;
  std::function<void()> on_tick_;
  sim::PeriodicTask task_;
  sim::ShardedSimulation* sharded_ = nullptr;
  sim::SimTime next_tick_at_;
  bool running_ = false;
  std::uint64_t ticks_ = 0;
};

}  // namespace oddci::obs

#include "obs/export.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <variant>
#include <vector>

namespace oddci::obs {

namespace {

// --- writing ----------------------------------------------------------------

// %.17g is the shortest printf format guaranteed to round-trip an IEEE
// double through text; infinities are spelled as strings the parser
// understands ("inf"/"-inf" never appear in our data, but be safe).
void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

void append_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

template <typename T, typename Append>
void append_array(std::string& out, const std::vector<T>& items,
                  Append&& append_item) {
  out += '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ',';
    append_item(out, items[i]);
  }
  out += ']';
}

// --- parsing ----------------------------------------------------------------

// Minimal JSON document model. Numbers keep their source text so uint64
// counters above 2^53 survive the round trip exactly.
struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, std::string /*number text*/,
               std::shared_ptr<std::string> /*string*/,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<std::string>(v);
  }
  [[nodiscard]] double as_double() const {
    if (!is_number()) throw std::runtime_error("metrics json: expected number");
    return std::strtod(std::get<std::string>(v).c_str(), nullptr);
  }
  [[nodiscard]] std::uint64_t as_u64() const {
    if (!is_number()) throw std::runtime_error("metrics json: expected number");
    return std::strtoull(std::get<std::string>(v).c_str(), nullptr, 10);
  }
  [[nodiscard]] const std::string& as_string() const {
    const auto* p = std::get_if<std::shared_ptr<std::string>>(&v);
    if (p == nullptr) throw std::runtime_error("metrics json: expected string");
    return **p;
  }
  [[nodiscard]] const JsonArray& as_array() const {
    const auto* p = std::get_if<std::shared_ptr<JsonArray>>(&v);
    if (p == nullptr) throw std::runtime_error("metrics json: expected array");
    return **p;
  }
  [[nodiscard]] const JsonObject& as_object() const {
    const auto* p = std::get_if<std::shared_ptr<JsonObject>>(&v);
    if (p == nullptr) throw std::runtime_error("metrics json: expected object");
    return **p;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      throw std::runtime_error("metrics json: trailing content");
    }
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) {
      throw std::runtime_error("metrics json: unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("metrics json: expected '") + c +
                               "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue{std::make_shared<std::string>(parse_string())};
      case 't': expect_literal("true"); return JsonValue{true};
      case 'f': expect_literal("false"); return JsonValue{false};
      case 'n': expect_literal("null"); return JsonValue{nullptr};
      default: return parse_number();
    }
  }

  void expect_literal(std::string_view lit) {
    skip_ws();
    if (text_.substr(pos_, lit.size()) != lit) {
      throw std::runtime_error("metrics json: bad literal");
    }
    pos_ += lit.size();
  }

  JsonValue parse_object() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    if (!consume('}')) {
      while (true) {
        std::string key = parse_string();
        expect(':');
        obj->emplace(std::move(key), parse_value());
        if (consume('}')) break;
        expect(',');
      }
    }
    return JsonValue{std::move(obj)};
  }

  JsonValue parse_array() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    if (!consume(']')) {
      while (true) {
        arr->push_back(parse_value());
        if (consume(']')) break;
        expect(',');
      }
    }
    return JsonValue{std::move(arr)};
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        throw std::runtime_error("metrics json: unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        throw std::runtime_error("metrics json: bad escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            throw std::runtime_error("metrics json: bad \\u escape");
          }
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          const auto code = std::strtoul(hex.c_str(), nullptr, 16);
          // The writer only emits \u00xx for control characters; keep the
          // parser symmetric and reject anything beyond Latin-1.
          if (code > 0xFF) {
            throw std::runtime_error("metrics json: unsupported \\u escape");
          }
          out += static_cast<char>(code);
          break;
        }
        default:
          throw std::runtime_error("metrics json: bad escape");
      }
    }
    return out;
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      throw std::runtime_error("metrics json: expected value");
    }
    return JsonValue{std::string(text_.substr(start, pos_ - start))};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const JsonValue& member(const JsonObject& obj, const std::string& key) {
  const auto it = obj.find(key);
  if (it == obj.end()) {
    throw std::runtime_error("metrics json: missing field '" + key + "'");
  }
  return it->second;
}

std::vector<double> double_array(const JsonValue& value) {
  const JsonArray& arr = value.as_array();
  std::vector<double> out;
  out.reserve(arr.size());
  for (const auto& v : arr) out.push_back(v.as_double());
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("metrics export: cannot open " + path);
  }
  out << content;
  if (!out) {
    throw std::runtime_error("metrics export: write failed for " + path);
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("metrics export: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

// --- JSON -------------------------------------------------------------------

std::string to_json(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":";
  append_string(out, kMetricsSchema);
  out += ",\"taken_at_seconds\":";
  append_double(out, snap.taken_at_seconds);

  out += ",\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) out += ',';
    append_string(out, snap.counters[i].name);
    out += ':';
    append_u64(out, snap.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) out += ',';
    append_string(out, snap.gauges[i].name);
    out += ':';
    append_double(out, snap.gauges[i].value);
  }

  out += "},\"histograms\":";
  append_array(out, snap.histograms,
               [](std::string& o, const HistogramSample& h) {
                 o += "{\"name\":";
                 append_string(o, h.name);
                 o += ",\"min_value\":";
                 append_double(o, h.min_value);
                 o += ",\"count\":";
                 append_u64(o, h.count);
                 o += ",\"sum\":";
                 append_double(o, h.sum);
                 o += ",\"min\":";
                 append_double(o, h.min);
                 o += ",\"max\":";
                 append_double(o, h.max);
                 // Sparse bucket encoding: only non-empty buckets.
                 o += ",\"bucket_count\":";
                 append_u64(o, h.buckets.size());
                 o += ",\"buckets\":[";
                 bool first = true;
                 for (std::size_t i = 0; i < h.buckets.size(); ++i) {
                   if (h.buckets[i] == 0) continue;
                   if (!first) o += ',';
                   first = false;
                   o += "[";
                   append_u64(o, i);
                   o += ',';
                   append_u64(o, h.buckets[i]);
                   o += ']';
                 }
                 o += "]}";
               });

  out += ",\"series\":";
  append_array(out, snap.series, [](std::string& o, const SeriesSample& s) {
    o += "{\"name\":";
    append_string(o, s.name);
    o += ",\"dropped\":";
    append_u64(o, s.dropped);
    o += ",\"times\":";
    append_array(o, s.times,
                 [](std::string& oo, double v) { append_double(oo, v); });
    o += ",\"values\":";
    append_array(o, s.values,
                 [](std::string& oo, double v) { append_double(oo, v); });
    o += '}';
  });

  out += ",\"spans\":";
  append_array(out, snap.spans, [](std::string& o, const SpanSample& s) {
    o += "{\"name\":";
    append_string(o, s.name);
    o += ",\"key\":";
    append_u64(o, s.key);
    o += ",\"start_seconds\":";
    append_double(o, s.start_seconds);
    o += ",\"end_seconds\":";
    append_double(o, s.end_seconds);
    o += '}';
  });

  out += "}\n";
  return out;
}

void write_json(const std::string& path, const MetricsSnapshot& snap) {
  write_file(path, to_json(snap));
}

MetricsSnapshot snapshot_from_json(std::string_view json) {
  const JsonValue root = JsonParser(json).parse();
  const JsonObject& obj = root.as_object();
  if (member(obj, "schema").as_string() != kMetricsSchema) {
    throw std::runtime_error("metrics json: unknown schema");
  }

  MetricsSnapshot snap;
  snap.taken_at_seconds = member(obj, "taken_at_seconds").as_double();

  for (const auto& [name, value] : member(obj, "counters").as_object()) {
    snap.counters.push_back(CounterSample{name, value.as_u64()});
  }
  for (const auto& [name, value] : member(obj, "gauges").as_object()) {
    snap.gauges.push_back(GaugeSample{name, value.as_double()});
  }

  for (const auto& h : member(obj, "histograms").as_array()) {
    const JsonObject& ho = h.as_object();
    HistogramSample sample;
    sample.name = member(ho, "name").as_string();
    sample.min_value = member(ho, "min_value").as_double();
    sample.count = member(ho, "count").as_u64();
    sample.sum = member(ho, "sum").as_double();
    sample.min = member(ho, "min").as_double();
    sample.max = member(ho, "max").as_double();
    sample.buckets.assign(member(ho, "bucket_count").as_u64(), 0);
    for (const auto& entry : member(ho, "buckets").as_array()) {
      const JsonArray& pair = entry.as_array();
      if (pair.size() != 2) {
        throw std::runtime_error("metrics json: bad bucket entry");
      }
      const std::uint64_t index = pair[0].as_u64();
      if (index >= sample.buckets.size()) {
        throw std::runtime_error("metrics json: bucket index out of range");
      }
      sample.buckets[index] = pair[1].as_u64();
    }
    snap.histograms.push_back(std::move(sample));
  }

  for (const auto& s : member(obj, "series").as_array()) {
    const JsonObject& so = s.as_object();
    SeriesSample sample;
    sample.name = member(so, "name").as_string();
    sample.dropped = member(so, "dropped").as_u64();
    sample.times = double_array(member(so, "times"));
    sample.values = double_array(member(so, "values"));
    if (sample.times.size() != sample.values.size()) {
      throw std::runtime_error("metrics json: series length mismatch");
    }
    snap.series.push_back(std::move(sample));
  }

  for (const auto& s : member(obj, "spans").as_array()) {
    const JsonObject& so = s.as_object();
    snap.spans.push_back(SpanSample{member(so, "name").as_string(),
                                    member(so, "key").as_u64(),
                                    member(so, "start_seconds").as_double(),
                                    member(so, "end_seconds").as_double()});
  }

  return snap;
}

MetricsSnapshot read_json(const std::string& path) {
  return snapshot_from_json(read_file(path));
}

// --- CSV --------------------------------------------------------------------

std::string series_to_csv(const MetricsSnapshot& snap) {
  std::string out = "series,time,value\n";
  for (const auto& s : snap.series) {
    for (std::size_t i = 0; i < s.times.size(); ++i) {
      // Series names are metric identifiers (no commas/quotes); written
      // bare to keep the file trivially greppable.
      out += s.name;
      out += ',';
      append_double(out, s.times[i]);
      out += ',';
      append_double(out, s.values[i]);
      out += '\n';
    }
  }
  return out;
}

void write_series_csv(const std::string& path, const MetricsSnapshot& snap) {
  write_file(path, series_to_csv(snap));
}

std::vector<SeriesSample> series_from_csv(std::string_view csv) {
  std::vector<SeriesSample> out;
  std::size_t pos = 0;
  bool header = true;
  while (pos < csv.size()) {
    std::size_t eol = csv.find('\n', pos);
    if (eol == std::string_view::npos) eol = csv.size();
    const std::string_view line = csv.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (header) {
      if (line != "series,time,value") {
        throw std::runtime_error("metrics csv: bad header");
      }
      header = false;
      continue;
    }
    const std::size_t c1 = line.find(',');
    const std::size_t c2 =
        c1 == std::string_view::npos ? c1 : line.find(',', c1 + 1);
    if (c2 == std::string_view::npos) {
      throw std::runtime_error("metrics csv: bad row");
    }
    const std::string_view name = line.substr(0, c1);
    const std::string time_text(line.substr(c1 + 1, c2 - c1 - 1));
    const std::string value_text(line.substr(c2 + 1));
    if (out.empty() || out.back().name != name) {
      out.push_back(SeriesSample{std::string(name), 0, {}, {}});
    }
    out.back().times.push_back(std::strtod(time_text.c_str(), nullptr));
    out.back().values.push_back(std::strtod(value_text.c_str(), nullptr));
  }
  if (header) {
    throw std::runtime_error("metrics csv: empty input");
  }
  return out;
}

}  // namespace oddci::obs

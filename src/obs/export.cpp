#include "obs/export.hpp"

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "obs/json.hpp"

namespace oddci::obs {

namespace {

using json::append_double;
using json::append_string;
using json::append_u64;
using json::member;
using json::read_file;
using json::write_file;

template <typename T, typename Append>
void append_array(std::string& out, const std::vector<T>& items,
                  Append&& append_item) {
  out += '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ',';
    append_item(out, items[i]);
  }
  out += ']';
}

std::vector<double> double_array(const json::Value& value) {
  const json::Array& arr = value.as_array();
  std::vector<double> out;
  out.reserve(arr.size());
  for (const auto& v : arr) out.push_back(v.as_double());
  return out;
}

}  // namespace

// --- JSON -------------------------------------------------------------------

std::string to_json(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":";
  append_string(out, kMetricsSchema);
  out += ",\"taken_at_seconds\":";
  append_double(out, snap.taken_at_seconds);

  out += ",\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) out += ',';
    append_string(out, snap.counters[i].name);
    out += ':';
    append_u64(out, snap.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) out += ',';
    append_string(out, snap.gauges[i].name);
    out += ':';
    append_double(out, snap.gauges[i].value);
  }

  out += "},\"histograms\":";
  append_array(out, snap.histograms,
               [](std::string& o, const HistogramSample& h) {
                 o += "{\"name\":";
                 append_string(o, h.name);
                 o += ",\"min_value\":";
                 append_double(o, h.min_value);
                 o += ",\"count\":";
                 append_u64(o, h.count);
                 o += ",\"sum\":";
                 append_double(o, h.sum);
                 o += ",\"min\":";
                 append_double(o, h.min);
                 o += ",\"max\":";
                 append_double(o, h.max);
                 // Quantiles are derived from the buckets at export time
                 // (not parsed back), so re-exporting a parsed snapshot
                 // recomputes byte-identical values.
                 o += ",\"p50\":";
                 append_double(o, histogram_quantile(h, 0.50));
                 o += ",\"p90\":";
                 append_double(o, histogram_quantile(h, 0.90));
                 o += ",\"p99\":";
                 append_double(o, histogram_quantile(h, 0.99));
                 // Sparse bucket encoding: only non-empty buckets.
                 o += ",\"bucket_count\":";
                 append_u64(o, h.buckets.size());
                 o += ",\"buckets\":[";
                 bool first = true;
                 for (std::size_t i = 0; i < h.buckets.size(); ++i) {
                   if (h.buckets[i] == 0) continue;
                   if (!first) o += ',';
                   first = false;
                   o += "[";
                   append_u64(o, i);
                   o += ',';
                   append_u64(o, h.buckets[i]);
                   o += ']';
                 }
                 o += "]}";
               });

  out += ",\"series\":";
  append_array(out, snap.series, [](std::string& o, const SeriesSample& s) {
    o += "{\"name\":";
    append_string(o, s.name);
    o += ",\"dropped\":";
    append_u64(o, s.dropped);
    o += ",\"times\":";
    append_array(o, s.times,
                 [](std::string& oo, double v) { append_double(oo, v); });
    o += ",\"values\":";
    append_array(o, s.values,
                 [](std::string& oo, double v) { append_double(oo, v); });
    o += '}';
  });

  out += ",\"spans\":";
  append_array(out, snap.spans, [](std::string& o, const SpanSample& s) {
    o += "{\"name\":";
    append_string(o, s.name);
    o += ",\"key\":";
    append_u64(o, s.key);
    o += ",\"start_seconds\":";
    append_double(o, s.start_seconds);
    o += ",\"end_seconds\":";
    append_double(o, s.end_seconds);
    o += '}';
  });

  out += "}\n";
  return out;
}

void write_json(const std::string& path, const MetricsSnapshot& snap) {
  write_file(path, to_json(snap));
}

MetricsSnapshot snapshot_from_json(std::string_view json) {
  const json::Value root = json::parse(json);
  const json::Object& obj = root.as_object();
  if (member(obj, "schema").as_string() != kMetricsSchema) {
    throw std::runtime_error("metrics json: unknown schema");
  }

  MetricsSnapshot snap;
  snap.taken_at_seconds = member(obj, "taken_at_seconds").as_double();

  for (const auto& [name, value] : member(obj, "counters").as_object()) {
    snap.counters.push_back(CounterSample{name, value.as_u64()});
  }
  for (const auto& [name, value] : member(obj, "gauges").as_object()) {
    snap.gauges.push_back(GaugeSample{name, value.as_double()});
  }

  for (const auto& h : member(obj, "histograms").as_array()) {
    const json::Object& ho = h.as_object();
    HistogramSample sample;
    sample.name = member(ho, "name").as_string();
    sample.min_value = member(ho, "min_value").as_double();
    sample.count = member(ho, "count").as_u64();
    sample.sum = member(ho, "sum").as_double();
    sample.min = member(ho, "min").as_double();
    sample.max = member(ho, "max").as_double();
    sample.buckets.assign(member(ho, "bucket_count").as_u64(), 0);
    for (const auto& entry : member(ho, "buckets").as_array()) {
      const json::Array& pair = entry.as_array();
      if (pair.size() != 2) {
        throw std::runtime_error("metrics json: bad bucket entry");
      }
      const std::uint64_t index = pair[0].as_u64();
      if (index >= sample.buckets.size()) {
        throw std::runtime_error("metrics json: bucket index out of range");
      }
      sample.buckets[index] = pair[1].as_u64();
    }
    snap.histograms.push_back(std::move(sample));
  }

  for (const auto& s : member(obj, "series").as_array()) {
    const json::Object& so = s.as_object();
    SeriesSample sample;
    sample.name = member(so, "name").as_string();
    sample.dropped = member(so, "dropped").as_u64();
    sample.times = double_array(member(so, "times"));
    sample.values = double_array(member(so, "values"));
    if (sample.times.size() != sample.values.size()) {
      throw std::runtime_error("metrics json: series length mismatch");
    }
    snap.series.push_back(std::move(sample));
  }

  for (const auto& s : member(obj, "spans").as_array()) {
    const json::Object& so = s.as_object();
    snap.spans.push_back(SpanSample{member(so, "name").as_string(),
                                    member(so, "key").as_u64(),
                                    member(so, "start_seconds").as_double(),
                                    member(so, "end_seconds").as_double()});
  }

  return snap;
}

MetricsSnapshot read_json(const std::string& path) {
  return snapshot_from_json(read_file(path));
}

// --- CSV --------------------------------------------------------------------

std::string series_to_csv(const MetricsSnapshot& snap) {
  std::string out = "series,time,value\n";
  for (const auto& s : snap.series) {
    for (std::size_t i = 0; i < s.times.size(); ++i) {
      // Series names are metric identifiers (no commas/quotes); written
      // bare to keep the file trivially greppable.
      out += s.name;
      out += ',';
      append_double(out, s.times[i]);
      out += ',';
      append_double(out, s.values[i]);
      out += '\n';
    }
  }
  return out;
}

void write_series_csv(const std::string& path, const MetricsSnapshot& snap) {
  write_file(path, series_to_csv(snap));
}

std::vector<SeriesSample> series_from_csv(std::string_view csv) {
  std::vector<SeriesSample> out;
  std::size_t pos = 0;
  bool header = true;
  while (pos < csv.size()) {
    std::size_t eol = csv.find('\n', pos);
    if (eol == std::string_view::npos) eol = csv.size();
    const std::string_view line = csv.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (header) {
      if (line != "series,time,value") {
        throw std::runtime_error("metrics csv: bad header");
      }
      header = false;
      continue;
    }
    const std::size_t c1 = line.find(',');
    const std::size_t c2 =
        c1 == std::string_view::npos ? c1 : line.find(',', c1 + 1);
    if (c2 == std::string_view::npos) {
      throw std::runtime_error("metrics csv: bad row");
    }
    const std::string_view name = line.substr(0, c1);
    const std::string time_text(line.substr(c1 + 1, c2 - c1 - 1));
    const std::string value_text(line.substr(c2 + 1));
    if (out.empty() || out.back().name != name) {
      out.push_back(SeriesSample{std::string(name), 0, {}, {}});
    }
    out.back().times.push_back(std::strtod(time_text.c_str(), nullptr));
    out.back().values.push_back(std::strtod(value_text.c_str(), nullptr));
  }
  if (header) {
    throw std::runtime_error("metrics csv: empty input");
  }
  return out;
}

}  // namespace oddci::obs

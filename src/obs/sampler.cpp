#include "obs/sampler.hpp"

#include <stdexcept>

namespace oddci::obs {

void Sampler::Options::validate() const {
  if (interval <= sim::SimTime::zero()) {
    throw std::invalid_argument("Sampler: interval must be > 0");
  }
  if (max_points == 0) {
    throw std::invalid_argument("Sampler: max_points must be > 0");
  }
}

Sampler::Sampler(sim::Simulation& simulation, MetricsRegistry& registry)
    : Sampler(simulation, registry, Options{}) {}

Sampler::Sampler(sim::Simulation& simulation, MetricsRegistry& registry,
                 Options options)
    : simulation_(simulation), registry_(registry), options_(options) {
  options_.validate();
}

Sampler::~Sampler() { stop(); }

void Sampler::add_gauge_series(std::string_view name,
                               std::function<double()> probe) {
  if (running_) {
    throw std::logic_error("Sampler: register probes before start()");
  }
  TimeSeries& series = registry_.series(name, options_.max_points);
  gauges_.push_back(GaugeProbe{&series, std::move(probe)});
}

void Sampler::add_rate_series(std::string_view name, const Counter& cell) {
  if (running_) {
    throw std::logic_error("Sampler: register probes before start()");
  }
  TimeSeries& series = registry_.series(name, options_.max_points);
  rates_.push_back(RateProbe{&series, &cell, cell.value()});
}

void Sampler::add_rate_series_fn(std::string_view name,
                                 std::function<std::uint64_t()> fn) {
  if (running_) {
    throw std::logic_error("Sampler: register probes before start()");
  }
  TimeSeries& series = registry_.series(name, options_.max_points);
  const std::uint64_t initial = fn();
  rate_fns_.push_back(RateFnProbe{&series, std::move(fn), initial});
}

void Sampler::start() {
  if (running_) return;
  running_ = true;
  if (sharded_ != nullptr && sharded_->shard_count() > 1) {
    // Tick on the coordinator at window boundaries so probes may read
    // cross-shard state with every worker parked. The requested times
    // stay on the interval grid; each actually fires at the first
    // boundary >= its slot, which is deterministic for a fixed K.
    next_tick_at_ = simulation_.now() + options_.interval;
    schedule_global_tick();
    return;
  }
  task_ = sim::PeriodicTask(simulation_,
                            simulation_.now() + options_.interval,
                            options_.interval, [this] { tick(); });
}

void Sampler::schedule_global_tick() {
  sharded_->post_global(0, next_tick_at_, [this] {
    if (!running_) return;
    tick();
    next_tick_at_ = next_tick_at_ + options_.interval;
    schedule_global_tick();
  });
}

void Sampler::stop() {
  if (!running_) return;
  task_.cancel();
  running_ = false;
}

void Sampler::tick() {
  ++ticks_;
  const double now = simulation_.now().seconds();
  for (auto& probe : gauges_) {
    probe.series->record(now, probe.fn());
  }
  const double dt = options_.interval.seconds();
  for (auto& probe : rates_) {
    const std::uint64_t value = probe.cell->value();
    probe.series->record(
        now, static_cast<double>(value - probe.last) / dt);
    probe.last = value;
  }
  for (auto& probe : rate_fns_) {
    const std::uint64_t value = probe.fn();
    probe.series->record(
        now, static_cast<double>(value - probe.last) / dt);
    probe.last = value;
  }
  if (on_tick_) on_tick_();
}

}  // namespace oddci::obs

#include "obs/profiler.hpp"

#include <stdexcept>

#include "obs/json.hpp"
#include "sim/sharded.hpp"

namespace oddci::obs {
namespace {

constexpr double kNanosPerSecond = 1e9;

double seconds(std::uint64_t nanos) {
  return static_cast<double>(nanos) / kNanosPerSecond;
}

}  // namespace

double ProfileSnapshot::execute_seconds_total() const {
  double total = 0.0;
  for (const ProfileShard& s : per_shard) total += s.execute_seconds;
  return total;
}

double ProfileSnapshot::barrier_seconds_total() const {
  double total = 0.0;
  for (const ProfileShard& s : per_shard) total += s.barrier_seconds;
  return total;
}

ProfileSnapshot take_profile(const KernelProfiler& profiler) {
  ProfileSnapshot out;
  out.shards = profiler.shard_count();
  out.run_wall_seconds = seconds(profiler.run_wall_nanos());
  out.sim_seconds = static_cast<double>(profiler.sim_micros()) / 1e6;
  out.runs = profiler.runs();
  out.windows = profiler.windows();
  out.window_span_seconds = seconds(profiler.window_span_nanos());
  out.utilization_mean = profiler.utilization_mean();
  out.imbalance_mean = profiler.imbalance_mean();
  out.imbalance_max = profiler.imbalance_max();
  out.drain_seconds = seconds(profiler.drain_nanos());
  out.drain_calls = profiler.drain_calls();
  out.mail_items = profiler.mail_items();
  out.mail_items_max = profiler.mail_items_max();
  out.global_seconds = seconds(profiler.global_nanos());
  out.global_tasks = profiler.global_tasks();
  out.per_shard.resize(profiler.shard_count());
  for (std::size_t i = 0; i < profiler.shard_count(); ++i) {
    ProfileShard& s = out.per_shard[i];
    s.execute_seconds = seconds(profiler.execute_nanos(i));
    s.execute_calls = profiler.execute_calls(i);
    s.barrier_seconds = seconds(profiler.barrier_nanos(i));
  }
  return out;
}

ProfileSnapshot take_profile(const KernelProfiler& profiler,
                             const sim::ShardedSimulation& kernel) {
  ProfileSnapshot out = take_profile(profiler);
  out.cross_posts = kernel.cross_posts();
  out.clamped_posts = kernel.clamped_posts();
  const std::size_t k =
      out.per_shard.size() < kernel.shard_count() ? out.per_shard.size()
                                                  : kernel.shard_count();
  for (std::size_t i = 0; i < k; ++i) {
    const sim::Simulation& shard = kernel.shard(i);
    ProfileShard& s = out.per_shard[i];
    s.events_executed = shard.events_executed();
    s.events_scheduled = shard.events_scheduled();
    s.events_cancelled = shard.events_cancelled();
    s.events_pending = shard.pending_events();
  }
  return out;
}

std::string to_profile_json(const ProfileSnapshot& snapshot) {
  std::string out;
  out.reserve(1024 + snapshot.per_shard.size() * 256);
  out += "{\"schema\":";
  json::append_string(out, kProfileSchema);
  out += ",\"shards\":";
  json::append_u64(out, snapshot.shards);
  out += ",\"run\":{\"wall_seconds\":";
  json::append_double(out, snapshot.run_wall_seconds);
  out += ",\"sim_seconds\":";
  json::append_double(out, snapshot.sim_seconds);
  out += ",\"runs\":";
  json::append_u64(out, snapshot.runs);
  out += "},\"windows\":{\"count\":";
  json::append_u64(out, snapshot.windows);
  out += ",\"wall_seconds\":";
  json::append_double(out, snapshot.window_span_seconds);
  out += ",\"utilization_mean\":";
  json::append_double(out, snapshot.utilization_mean);
  out += ",\"imbalance_mean\":";
  json::append_double(out, snapshot.imbalance_mean);
  out += ",\"imbalance_max\":";
  json::append_double(out, snapshot.imbalance_max);
  out += "},\"drain\":{\"wall_seconds\":";
  json::append_double(out, snapshot.drain_seconds);
  out += ",\"calls\":";
  json::append_u64(out, snapshot.drain_calls);
  out += ",\"mail_items\":";
  json::append_u64(out, snapshot.mail_items);
  out += ",\"mail_items_max\":";
  json::append_u64(out, snapshot.mail_items_max);
  out += "},\"global\":{\"wall_seconds\":";
  json::append_double(out, snapshot.global_seconds);
  out += ",\"tasks\":";
  json::append_u64(out, snapshot.global_tasks);
  out += "},\"kernel\":{\"cross_posts\":";
  json::append_u64(out, snapshot.cross_posts);
  out += ",\"clamped_posts\":";
  json::append_u64(out, snapshot.clamped_posts);
  out += "},\"per_shard\":[";
  for (std::size_t i = 0; i < snapshot.per_shard.size(); ++i) {
    const ProfileShard& s = snapshot.per_shard[i];
    if (i != 0) out += ',';
    out += "{\"shard\":";
    json::append_u64(out, i);
    out += ",\"execute_seconds\":";
    json::append_double(out, s.execute_seconds);
    out += ",\"execute_calls\":";
    json::append_u64(out, s.execute_calls);
    out += ",\"barrier_seconds\":";
    json::append_double(out, s.barrier_seconds);
    out += ",\"events_executed\":";
    json::append_u64(out, s.events_executed);
    out += ",\"events_scheduled\":";
    json::append_u64(out, s.events_scheduled);
    out += ",\"events_cancelled\":";
    json::append_u64(out, s.events_cancelled);
    out += ",\"events_pending\":";
    json::append_u64(out, s.events_pending);
    out += '}';
  }
  out += "]}";
  return out;
}

ProfileSnapshot profile_from_json(std::string_view text) {
  const json::Value doc = json::parse(text);
  const json::Object& root = doc.as_object();
  const std::string& schema = json::member(root, "schema").as_string();
  if (schema != kProfileSchema) {
    throw std::runtime_error("profile_from_json: unsupported schema '" +
                             schema + "'");
  }
  ProfileSnapshot out;
  out.shards = json::member(root, "shards").as_u64();
  const json::Object& run = json::member(root, "run").as_object();
  out.run_wall_seconds = json::member(run, "wall_seconds").as_double();
  out.sim_seconds = json::member(run, "sim_seconds").as_double();
  out.runs = json::member(run, "runs").as_u64();
  const json::Object& windows = json::member(root, "windows").as_object();
  out.windows = json::member(windows, "count").as_u64();
  out.window_span_seconds = json::member(windows, "wall_seconds").as_double();
  out.utilization_mean = json::member(windows, "utilization_mean").as_double();
  out.imbalance_mean = json::member(windows, "imbalance_mean").as_double();
  out.imbalance_max = json::member(windows, "imbalance_max").as_double();
  const json::Object& drain = json::member(root, "drain").as_object();
  out.drain_seconds = json::member(drain, "wall_seconds").as_double();
  out.drain_calls = json::member(drain, "calls").as_u64();
  out.mail_items = json::member(drain, "mail_items").as_u64();
  out.mail_items_max = json::member(drain, "mail_items_max").as_u64();
  const json::Object& global = json::member(root, "global").as_object();
  out.global_seconds = json::member(global, "wall_seconds").as_double();
  out.global_tasks = json::member(global, "tasks").as_u64();
  const json::Object& kernel = json::member(root, "kernel").as_object();
  out.cross_posts = json::member(kernel, "cross_posts").as_u64();
  out.clamped_posts = json::member(kernel, "clamped_posts").as_u64();
  for (const json::Value& entry :
       json::member(root, "per_shard").as_array()) {
    const json::Object& obj = entry.as_object();
    ProfileShard s;
    s.execute_seconds = json::member(obj, "execute_seconds").as_double();
    s.execute_calls = json::member(obj, "execute_calls").as_u64();
    s.barrier_seconds = json::member(obj, "barrier_seconds").as_double();
    s.events_executed = json::member(obj, "events_executed").as_u64();
    s.events_scheduled = json::member(obj, "events_scheduled").as_u64();
    s.events_cancelled = json::member(obj, "events_cancelled").as_u64();
    s.events_pending = json::member(obj, "events_pending").as_u64();
    out.per_shard.push_back(std::move(s));
  }
  return out;
}

void write_profile_json(const std::string& path,
                        const ProfileSnapshot& snapshot) {
  json::write_file(path, to_profile_json(snapshot));
}

ProfileSnapshot read_profile_json(const std::string& path) {
  return profile_from_json(json::read_file(path));
}

}  // namespace oddci::obs

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

/// Conservation-invariant health auditor.
///
/// Every message the system puts on the wire, every heartbeat a PNA emits
/// and every event a shard schedules must be accounted for somewhere —
/// delivered, dropped, lost to an injected fault, or still in flight. The
/// auditor evaluates those balances over a `HealthLedger` (a plain-data
/// bundle of counters the owning system collects at a safe point) and
/// grades each check:
///
///  * kCritical — an invariant is arithmetically violated (more arrivals
///    than sends, a shard's executed+cancelled+pending != scheduled, a
///    pool that handed out a different number of messages than the
///    heartbeat path requested). These indicate double counting or silent
///    loss and fail the run.
///  * kWarning  — reserved for soft breaches (none today; severity space
///    kept so downstream exit-code policy is stable).
///  * kInfo     — expected imbalances, e.g. copies still serializing when
///    a deadline-stopped run ends (positive in-flight residual).
///  * kOk       — the balance holds exactly.
///
/// The ledger is collected only at coordinator-safe points (sampler global
/// ticks with all shards parked, or after run_until returns), so the
/// counters are mutually coherent. Evaluation reads no wall clock and
/// schedules nothing: with a fixed seed the report itself is deterministic.
namespace oddci::obs {

enum class HealthSeverity : int {
  kOk = 0,
  kInfo = 1,
  kWarning = 2,
  kCritical = 3,
};

[[nodiscard]] std::string_view to_string(HealthSeverity severity);

/// Counter bundle for one audit. All fields are totals since run start.
struct HealthLedger {
  // Wire-level message accounting (net::Network + fault::FaultInjector).
  std::uint64_t messages_sent = 0;        ///< Network::send accepted
  std::uint64_t messages_lost = 0;        ///< injector loss + partition drops
  std::uint64_t messages_duplicated = 0;  ///< extra copies injected
  std::uint64_t arrivals_scheduled = 0;   ///< copies scheduled toward a dst
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;     ///< detached-endpoint drops

  // Bounded-queue tail drops (return-channel model only; all zero when no
  // LinkSpec sets a queue bound). Uplink drops are shed before an arrival
  // is scheduled; downlink drops are shed at edge arrival.
  std::uint64_t uplink_queue_dropped = 0;
  std::uint64_t downlink_queue_dropped = 0;

  // Heartbeat stream (heartbeat-tagged subset of the wire accounting).
  std::uint64_t heartbeats_emitted = 0;     ///< PNA sends
  std::uint64_t heartbeats_received = 0;    ///< controller + aggregators
  std::uint64_t heartbeats_lost = 0;        ///< tagged injector losses
  std::uint64_t heartbeats_duplicated = 0;  ///< tagged injected duplicates
  std::uint64_t heartbeats_dropped = 0;     ///< tagged detached drops
  std::uint64_t heartbeats_uplink_queue_dropped = 0;    ///< tagged tail drops
  std::uint64_t heartbeats_downlink_queue_dropped = 0;  ///< tagged tail drops

  // Delta-mode membership reconstruction (kDelta heartbeat encoding only).
  // The incremental count is the Controller's O(1) mirror maintained by
  // delta application; the view count recomputes Σ members from the actual
  // instance sets. Divergence means a delta/resync was mis-applied.
  bool delta_active = false;
  std::uint64_t delta_checksum_failures = 0;
  std::uint64_t delta_members_incremental = 0;
  std::uint64_t delta_members_view = 0;

  // Per-shard kernel event accounting.
  struct ShardEvents {
    std::uint64_t scheduled = 0;
    std::uint64_t executed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t pending = 0;
    bool operator==(const ShardEvents&) const = default;
  };
  std::vector<ShardEvents> shards;

  // Heartbeat message-pool balance (fast path only).
  bool pool_active = false;
  std::uint64_t pool_acquired = 0;  ///< reused + allocated
  std::uint64_t pool_expected = 0;  ///< heartbeats sent through the pool

  // Verified-execution result conservation (verify mode only). Every
  // dispatched replica must be accounted for: verified by a quorum,
  // outvoted by one, written off (timeout/abort/crash/dropped round), or
  // still outstanding (live or awaiting a quorum). Spot checks balance
  // separately.
  bool verify_active = false;
  std::uint64_t verify_dispatched = 0;
  std::uint64_t verify_verified = 0;
  std::uint64_t verify_outvoted = 0;
  std::uint64_t verify_discarded = 0;
  std::uint64_t verify_outstanding = 0;
  std::uint64_t spot_dispatched = 0;
  std::uint64_t spot_passed = 0;
  std::uint64_t spot_failed = 0;
  std::uint64_t spot_flushed = 0;
  std::uint64_t spot_outstanding = 0;

  // Byzantine detection audit (seeded adversaries + verification on).
  // `byz_undetected` counts known-seeded adversaries that finished the run
  // with enough reputation observations to have been caught yet still
  // stand above the quarantine threshold.
  bool byz_active = false;
  std::uint64_t byz_adversaries = 0;
  std::uint64_t byz_undetected = 0;

  bool operator==(const HealthLedger&) const = default;
};

struct HealthFinding {
  HealthSeverity severity = HealthSeverity::kOk;
  std::string check;   ///< stable id, e.g. "net.message_conservation"
  std::string detail;  ///< human-readable balance with the numbers

  bool operator==(const HealthFinding&) const = default;
};

struct HealthReport {
  double taken_at_seconds = 0.0;
  std::uint64_t samples = 0;  ///< periodic audits folded into this report
  /// Sim time of the first sample that graded >= kWarning; -1 if none.
  double first_violation_seconds = -1.0;
  std::vector<HealthFinding> findings;

  [[nodiscard]] HealthSeverity worst() const;
  [[nodiscard]] bool ok() const {
    return worst() < HealthSeverity::kWarning;
  }
  /// Multi-line human-readable rendering (one finding per line).
  [[nodiscard]] std::string to_text() const;
};

/// Stateful wrapper: sample periodically, finalize once at run end. The
/// ledger function is called at every audit and must be safe to call at
/// coordinator-parked points.
class HealthAuditor {
 public:
  using LedgerFn = std::function<HealthLedger()>;

  explicit HealthAuditor(LedgerFn ledger_fn);

  /// Evaluate one ledger. `at_end` relaxes in-flight checks appropriate
  /// only mid-run (a positive residual mid-run is kOk; at run end it is
  /// surfaced as kInfo).
  [[nodiscard]] static HealthReport evaluate(const HealthLedger& ledger,
                                             double now_seconds, bool at_end);

  /// Periodic audit: record the first violation time, keep no findings.
  void sample(double now_seconds);

  /// Final audit: full report with the sample history folded in.
  [[nodiscard]] HealthReport finalize(double now_seconds);

  [[nodiscard]] std::uint64_t samples() const { return samples_; }

 private:
  LedgerFn ledger_fn_;
  std::uint64_t samples_ = 0;
  double first_violation_seconds_ = -1.0;
};

}  // namespace oddci::obs

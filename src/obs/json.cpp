#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace oddci::obs::json {

// --- writing ----------------------------------------------------------------

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

void append_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("obs export: cannot open " + path);
  }
  out << content;
  if (!out) {
    throw std::runtime_error("obs export: write failed for " + path);
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("obs export: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- document model ---------------------------------------------------------

double Value::as_double() const {
  if (!is_number()) throw std::runtime_error("json: expected number");
  return std::strtod(std::get<std::string>(v).c_str(), nullptr);
}

std::uint64_t Value::as_u64() const {
  if (!is_number()) throw std::runtime_error("json: expected number");
  return std::strtoull(std::get<std::string>(v).c_str(), nullptr, 10);
}

std::int64_t Value::as_i64() const {
  if (!is_number()) throw std::runtime_error("json: expected number");
  return std::strtoll(std::get<std::string>(v).c_str(), nullptr, 10);
}

const std::string& Value::as_string() const {
  const auto* p = std::get_if<std::shared_ptr<std::string>>(&v);
  if (p == nullptr) throw std::runtime_error("json: expected string");
  return **p;
}

const Array& Value::as_array() const {
  const auto* p = std::get_if<std::shared_ptr<Array>>(&v);
  if (p == nullptr) throw std::runtime_error("json: expected array");
  return **p;
}

const Object& Value::as_object() const {
  const auto* p = std::get_if<std::shared_ptr<Object>>(&v);
  if (p == nullptr) throw std::runtime_error("json: expected object");
  return **p;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    Value value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      throw std::runtime_error("json: trailing content");
    }
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) {
      throw std::runtime_error("json: unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("json: expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Value parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value{std::make_shared<std::string>(parse_string())};
      case 't': expect_literal("true"); return Value{true};
      case 'f': expect_literal("false"); return Value{false};
      case 'n': expect_literal("null"); return Value{nullptr};
      default: return parse_number();
    }
  }

  void expect_literal(std::string_view lit) {
    skip_ws();
    if (text_.substr(pos_, lit.size()) != lit) {
      throw std::runtime_error("json: bad literal");
    }
    pos_ += lit.size();
  }

  Value parse_object() {
    expect('{');
    auto obj = std::make_shared<Object>();
    if (!consume('}')) {
      while (true) {
        std::string key = parse_string();
        expect(':');
        obj->emplace(std::move(key), parse_value());
        if (consume('}')) break;
        expect(',');
      }
    }
    return Value{std::move(obj)};
  }

  Value parse_array() {
    expect('[');
    auto arr = std::make_shared<Array>();
    if (!consume(']')) {
      while (true) {
        arr->push_back(parse_value());
        if (consume(']')) break;
        expect(',');
      }
    }
    return Value{std::move(arr)};
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        throw std::runtime_error("json: unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        throw std::runtime_error("json: bad escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            throw std::runtime_error("json: bad \\u escape");
          }
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          const auto code = std::strtoul(hex.c_str(), nullptr, 16);
          // The writers only emit \u00xx for control characters; keep the
          // parser symmetric and reject anything beyond Latin-1.
          if (code > 0xFF) {
            throw std::runtime_error("json: unsupported \\u escape");
          }
          out += static_cast<char>(code);
          break;
        }
        default:
          throw std::runtime_error("json: bad escape");
      }
    }
    return out;
  }

  Value parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      throw std::runtime_error("json: expected value");
    }
    return Value{std::string(text_.substr(start, pos_ - start))};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse(); }

const Value& member(const Object& obj, const std::string& key) {
  const auto it = obj.find(key);
  if (it == obj.end()) {
    throw std::runtime_error("json: missing field '" + key + "'");
  }
  return it->second;
}

const Value* find(const Object& obj, const std::string& key) {
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

}  // namespace oddci::obs::json

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

/// Lightweight trace spans for the simulation's multi-event cycles —
/// wakeup -> acquire -> join on the control plane, dispatch -> result on
/// the task plane. A span is opened under a (name, key) pair and closed
/// later from a different callback; closing records the duration into an
/// optional latency histogram and retains the completed span (bounded) in
/// the registry for export.
///
/// Span names are interned once at attach time (`intern()`); the hot-path
/// begin/end/discard calls take the small NameId and key a flat hash map
/// on a trivially hashable (name_id, key) pair — no std::string
/// construction or tree walk per event. The string_view overloads remain
/// for call sites that have not cached an id; they intern on first use.
///
/// The tracer is deliberately tolerant: ending a span that was never begun
/// is a counted no-op (components emit end events for cycles that started
/// before tracing was attached), and beginning an already-open span
/// restarts it (a wakeup retransmitted before the instance formed).
namespace oddci::obs {

class Tracer {
 public:
  /// Interned span-name id. Ids are assigned densely from 1 in intern
  /// order; 0 is never a valid id.
  using NameId = std::uint32_t;

  explicit Tracer(MetricsRegistry& registry) : registry_(&registry) {}

  /// Map a span name to its small id, assigning one on first sight.
  /// Call once at attach/setup time and cache the result.
  NameId intern(std::string_view name) {
    const auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<NameId>(names_.size() + 1);
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// The name behind an id (empty for an unknown id).
  [[nodiscard]] std::string_view name_of(NameId id) const {
    return id == 0 || id > names_.size() ? std::string_view{}
                                         : std::string_view(names_[id - 1]);
  }

  void begin(NameId name, std::uint64_t key, double now_seconds) {
    open_.insert_or_assign(OpenKey{name, key}, now_seconds);
  }
  void begin(std::string_view name, std::uint64_t key, double now_seconds) {
    begin(intern(name), key, now_seconds);
  }

  /// Close an open span. Returns the duration in seconds, or a negative
  /// value if no matching span was open.
  double end(NameId name, std::uint64_t key, double now_seconds,
             LogHistogram* latency = nullptr) {
    const auto it = open_.find(OpenKey{name, key});
    if (it == open_.end()) {
      ++unmatched_ends_;
      return -1.0;
    }
    const double start = it->second;
    open_.erase(it);
    const double duration = now_seconds - start;
    if (latency != nullptr) latency->record(duration);
    registry_->record_span(name_of(name), key, start, now_seconds);
    return duration;
  }
  double end(std::string_view name, std::uint64_t key, double now_seconds,
             LogHistogram* latency = nullptr) {
    return end(intern(name), key, now_seconds, latency);
  }

  /// Discard an open span without recording it (cycle abandoned: instance
  /// destroyed before forming, task re-queued).
  bool discard(NameId name, std::uint64_t key) {
    return open_.erase(OpenKey{name, key}) > 0;
  }
  bool discard(std::string_view name, std::uint64_t key) {
    return discard(intern(name), key);
  }

  [[nodiscard]] std::size_t open_count() const { return open_.size(); }
  [[nodiscard]] std::size_t interned_count() const { return names_.size(); }
  [[nodiscard]] std::uint64_t unmatched_ends() const {
    return unmatched_ends_;
  }

 private:
  struct OpenKey {
    NameId name;
    std::uint64_t key;
    bool operator==(const OpenKey&) const = default;
  };
  struct OpenKeyHash {
    std::size_t operator()(const OpenKey& k) const noexcept {
      // splitmix64-style mix over the packed pair; names are dense small
      // ints, keys are ids — a multiplicative mix spreads both.
      std::uint64_t x = (static_cast<std::uint64_t>(k.name) << 56) ^ k.key;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      return static_cast<std::size_t>(x * 0x94d049bb133111ebULL);
    }
  };

  MetricsRegistry* registry_;
  // Interning table: names_ is the id->name side; ids_ owns its own key
  // copies and supports heterogeneous string_view lookup via std::less<>.
  std::vector<std::string> names_;
  std::map<std::string, NameId, std::less<>> ids_;
  std::unordered_map<OpenKey, double, OpenKeyHash> open_;
  std::uint64_t unmatched_ends_ = 0;
};

}  // namespace oddci::obs

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "obs/metrics.hpp"

/// Lightweight trace spans for the simulation's multi-event cycles —
/// wakeup -> acquire -> join on the control plane, dispatch -> result on
/// the task plane. A span is opened under a (name, key) pair and closed
/// later from a different callback; closing records the duration into an
/// optional latency histogram and retains the completed span (bounded) in
/// the registry for export.
///
/// The tracer is deliberately tolerant: ending a span that was never begun
/// is a counted no-op (components emit end events for cycles that started
/// before tracing was attached), and beginning an already-open span
/// restarts it (a wakeup retransmitted before the instance formed).
namespace oddci::obs {

class Tracer {
 public:
  explicit Tracer(MetricsRegistry& registry) : registry_(&registry) {}

  void begin(std::string_view name, std::uint64_t key, double now_seconds) {
    open_.insert_or_assign(Key{std::string(name), key}, now_seconds);
  }

  /// Close an open span. Returns the duration in seconds, or a negative
  /// value if no matching span was open.
  double end(std::string_view name, std::uint64_t key, double now_seconds,
             LogHistogram* latency = nullptr) {
    const auto it = open_.find(Key{std::string(name), key});
    if (it == open_.end()) {
      ++unmatched_ends_;
      return -1.0;
    }
    const double start = it->second;
    open_.erase(it);
    const double duration = now_seconds - start;
    if (latency != nullptr) latency->record(duration);
    registry_->record_span(name, key, start, now_seconds);
    return duration;
  }

  /// Discard an open span without recording it (cycle abandoned: instance
  /// destroyed before forming, task re-queued).
  bool discard(std::string_view name, std::uint64_t key) {
    return open_.erase(Key{std::string(name), key}) > 0;
  }

  [[nodiscard]] std::size_t open_count() const { return open_.size(); }
  [[nodiscard]] std::uint64_t unmatched_ends() const {
    return unmatched_ends_;
  }

 private:
  using Key = std::pair<std::string, std::uint64_t>;

  MetricsRegistry* registry_;
  std::map<Key, double> open_;
  std::uint64_t unmatched_ends_ = 0;
};

}  // namespace oddci::obs

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

/// Shared JSON machinery for the obs exporters (metrics and trace).
///
/// Writing: append_* helpers that print doubles with %.17g (the shortest
/// format guaranteed to round-trip an IEEE double) and uint64 as decimal
/// text, so exports are deterministic and parse back bit-identical.
///
/// Reading: a minimal strict document model. Numbers keep their source
/// text so uint64 values above 2^53 survive the round trip exactly.
namespace oddci::obs::json {

// --- writing ----------------------------------------------------------------

void append_double(std::string& out, double v);
void append_u64(std::string& out, std::uint64_t v);
void append_i64(std::string& out, std::int64_t v);
/// Quoted + escaped.
void append_string(std::string& out, std::string_view s);

void write_file(const std::string& path, const std::string& content);
[[nodiscard]] std::string read_file(const std::string& path);

// --- document model ---------------------------------------------------------

struct Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  std::variant<std::nullptr_t, bool, std::string /*number text*/,
               std::shared_ptr<std::string> /*string*/,
               std::shared_ptr<Array>, std::shared_ptr<Object>>
      v = nullptr;

  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<std::string>(v);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::shared_ptr<std::string>>(v);
  }
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] std::int64_t as_i64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
};

/// Parse a complete document; throws std::runtime_error on malformed input
/// or trailing content.
[[nodiscard]] Value parse(std::string_view text);

/// Object member access; throws std::runtime_error when absent.
[[nodiscard]] const Value& member(const Object& obj, const std::string& key);
/// Nullable variant: nullptr when absent.
[[nodiscard]] const Value* find(const Object& obj, const std::string& key);

}  // namespace oddci::obs::json

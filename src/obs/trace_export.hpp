#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/flight_recorder.hpp"

/// Chrome `trace_event` JSON export for FlightRecorder events.
///
/// The output is the standard JSON-object format loadable by Perfetto and
/// chrome://tracing: one "thread" track per TraceComponent (named via "M"
/// metadata events), each recorded hop as an "X" complete event stamped
/// with its sim-time microseconds, and an "s"/"f" flow-event pair along
/// every parent->child edge so the UI draws causal arrows across tracks.
///
/// Determinism contract: events are written in recorder order, ids and
/// timestamps as decimal text — two byte-identical recorders produce
/// byte-identical exports. uint64 values that may exceed 2^53 (trace and
/// span ids) are carried in `args` as JSON *strings* so they survive a
/// round trip through double-based JSON readers exactly.
namespace oddci::obs {

inline constexpr std::string_view kTraceSchema = "oddci.trace.v1";

/// Serialize to Chrome trace JSON (object form with "traceEvents").
[[nodiscard]] std::string to_chrome_trace(const FlightRecorder& recorder);
[[nodiscard]] std::string to_chrome_trace(const std::vector<TraceEvent>& events);

void write_chrome_trace(const std::string& path, const FlightRecorder& recorder);

/// Merge the retained events of several recorders (the sharded kernel's
/// per-shard rings) into one chronological stream. Ties at equal sim time
/// break on recorder index, then ring order — a pure function of the ring
/// contents, so a seeded run exports byte-identically for a fixed shard
/// count. Null entries are skipped.
[[nodiscard]] std::vector<TraceEvent> merge_events(
    const std::vector<const FlightRecorder*>& recorders);

/// Parse a Chrome trace produced by to_chrome_trace back into events
/// (chronologically ordered, exactly as recorded). Throws
/// std::runtime_error on malformed input or a foreign schema.
[[nodiscard]] std::vector<TraceEvent> events_from_chrome_trace(
    std::string_view json);
[[nodiscard]] std::vector<TraceEvent> read_chrome_trace(
    const std::string& path);

}  // namespace oddci::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace oddci::obs {

// --- LogHistogram -----------------------------------------------------------

LogHistogram::LogHistogram(double min_value) : min_value_(min_value) {
  if (!(min_value > 0.0)) {
    throw std::invalid_argument("LogHistogram: min_value must be > 0");
  }
  counts_.assign(kBucketCount, 0);
}

std::size_t LogHistogram::bucket_index(double x, double min_value) noexcept {
  if (!(x >= min_value)) return 0;  // sub-floor, zero, negative and NaN
  // frexp leaves the exponent unspecified for infinities; they belong in
  // the overflow bucket with every other oversized sample.
  if (std::isinf(x)) return kBucketCount - 1;
  int exp = 0;
  // x/min in [1, inf): frexp yields f in [0.5, 1) with f * 2^exp, so
  // exp >= 1 and bucket i covers ratios in [2^(i-1), 2^i).
  (void)std::frexp(x / min_value, &exp);
  const auto idx = static_cast<std::size_t>(exp);
  return std::min(idx, kBucketCount - 1);
}

void LogHistogram::record(double x) noexcept {
  ++counts_[bucket_index(x, min_value_)];
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
}

double LogHistogram::bucket_lo(std::size_t i) const {
  if (i >= kBucketCount) throw std::out_of_range("LogHistogram: bucket index");
  if (i == 0) return 0.0;
  return min_value_ * std::ldexp(1.0, static_cast<int>(i) - 1);
}

double LogHistogram::bucket_hi(std::size_t i) const {
  if (i >= kBucketCount) throw std::out_of_range("LogHistogram: bucket index");
  if (i == kBucketCount - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return min_value_ * std::ldexp(1.0, static_cast<int>(i));
}

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double rank = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (counts_[i] == 0) continue;
    const auto next = seen + counts_[i];
    if (rank <= static_cast<double>(next)) {
      const double lo = std::max(bucket_lo(i), min_);
      const double hi = std::min(
          i + 1 == kBucketCount ? max_ : bucket_hi(i), max_);
      const double within =
          (rank - static_cast<double>(seen)) /
          static_cast<double>(counts_[i]);
      return lo + (std::max(hi, lo) - lo) * within;
    }
    seen = next;
  }
  return max_;
}

void LogHistogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

// --- TimeSeries -------------------------------------------------------------

TimeSeries::TimeSeries(std::size_t max_points) : max_points_(max_points) {}

void TimeSeries::record(double t_seconds, double value) {
  if (times_.size() >= max_points_) {
    ++dropped_;
    return;
  }
  times_.push_back(t_seconds);
  values_.push_back(value);
}

// --- MetricsSnapshot --------------------------------------------------------

double histogram_quantile(const HistogramSample& sample, double q) {
  if (sample.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return sample.min;
  if (q >= 1.0) return sample.max;
  const std::size_t n = sample.buckets.size();
  const double rank = q * static_cast<double>(sample.count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (sample.buckets[i] == 0) continue;
    const std::uint64_t next = seen + sample.buckets[i];
    if (rank <= static_cast<double>(next)) {
      const double bucket_lo =
          i == 0 ? 0.0
                 : sample.min_value * std::ldexp(1.0, static_cast<int>(i) - 1);
      const double bucket_hi =
          i + 1 >= n ? sample.max
                     : sample.min_value * std::ldexp(1.0, static_cast<int>(i));
      const double lo = std::max(bucket_lo, sample.min);
      const double hi = std::min(bucket_hi, sample.max);
      const double within = (rank - static_cast<double>(seen)) /
                            static_cast<double>(sample.buckets[i]);
      return lo + (std::max(hi, lo) - lo) * within;
    }
    seen = next;
  }
  return sample.max;
}

namespace {

template <typename Sample>
const Sample* find_by_name(const std::vector<Sample>& samples,
                           std::string_view name) {
  for (const auto& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace

const CounterSample* MetricsSnapshot::find_counter(
    std::string_view name) const {
  return find_by_name(counters, name);
}

const GaugeSample* MetricsSnapshot::find_gauge(std::string_view name) const {
  return find_by_name(gauges, name);
}

const HistogramSample* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  return find_by_name(histograms, name);
}

const SeriesSample* MetricsSnapshot::find_series(std::string_view name) const {
  return find_by_name(series, name);
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name,
                                             std::uint64_t fallback) const {
  const auto* c = find_counter(name);
  return c != nullptr ? c->value : fallback;
}

// --- MetricsRegistry --------------------------------------------------------

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it != counters_.end()) {
    // Owned cells are handed back for re-use; a name linked to a foreign
    // cell cannot be re-registered as owned.
    return const_cast<Counter&>(*it->second);
  }
  Counter& cell = owned_counters_.emplace_back();
  counters_.emplace(std::string(name), &cell);
  return cell;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  Gauge& cell = owned_gauges_.emplace_back();
  gauges_.emplace(std::string(name), &cell);
  return cell;
}

LogHistogram& MetricsRegistry::histogram(std::string_view name,
                                         double min_value) {
  auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    return const_cast<LogHistogram&>(*it->second);
  }
  LogHistogram& hist = owned_histograms_.emplace_back(min_value);
  histograms_.emplace(std::string(name), &hist);
  return hist;
}

TimeSeries& MetricsRegistry::series(std::string_view name,
                                    std::size_t max_points) {
  auto it = series_.find(name);
  if (it != series_.end()) return *it->second;
  TimeSeries& s = owned_series_.emplace_back(max_points);
  series_.emplace(std::string(name), &s);
  return s;
}

void MetricsRegistry::link_counter(std::string_view name,
                                   const Counter& cell) {
  counters_.insert_or_assign(std::string(name), &cell);
}

void MetricsRegistry::link_histogram(std::string_view name,
                                     const LogHistogram& hist) {
  histograms_.insert_or_assign(std::string(name), &hist);
}

void MetricsRegistry::link_probe(std::string_view name,
                                 std::function<double()> probe) {
  probes_.insert_or_assign(std::string(name), std::move(probe));
}

void MetricsRegistry::link_counter_fn(std::string_view name,
                                      std::function<std::uint64_t()> fn) {
  counter_fns_.insert_or_assign(std::string(name), std::move(fn));
}

void MetricsRegistry::link_histogram_set(
    std::string_view name, std::vector<const LogHistogram*> set) {
  histogram_sets_.insert_or_assign(std::string(name), std::move(set));
}

bool MetricsRegistry::has(std::string_view name) const {
  return counters_.count(name) > 0 || gauges_.count(name) > 0 ||
         histograms_.count(name) > 0 || series_.count(name) > 0 ||
         probes_.count(name) > 0 || counter_fns_.count(name) > 0 ||
         histogram_sets_.count(name) > 0;
}

void MetricsRegistry::record_span(std::string_view name, std::uint64_t key,
                                  double start_seconds, double end_seconds) {
  if (spans_.size() >= max_spans_) {
    ++spans_dropped_;
    return;
  }
  spans_.push_back(
      SpanSample{std::string(name), key, start_seconds, end_seconds});
}

MetricsSnapshot MetricsRegistry::snapshot(double now_seconds) const {
  MetricsSnapshot snap;
  snap.taken_at_seconds = now_seconds;

  snap.counters.reserve(counters_.size() + counter_fns_.size());
  for (const auto& [name, cell] : counters_) {
    if (counter_fns_.count(name) > 0) continue;  // shadowed by a merged link
    snap.counters.push_back(CounterSample{name, cell->value()});
  }
  for (const auto& [name, fn] : counter_fns_) {
    snap.counters.push_back(CounterSample{name, fn()});
  }
  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const CounterSample& a, const CounterSample& b) {
              return a.name < b.name;
            });

  snap.gauges.reserve(gauges_.size() + probes_.size());
  for (const auto& [name, cell] : gauges_) {
    snap.gauges.push_back(GaugeSample{name, cell->value()});
  }
  for (const auto& [name, probe] : probes_) {
    snap.gauges.push_back(GaugeSample{name, probe()});
  }
  std::sort(snap.gauges.begin(), snap.gauges.end(),
            [](const GaugeSample& a, const GaugeSample& b) {
              return a.name < b.name;
            });

  snap.histograms.reserve(histograms_.size() + histogram_sets_.size());
  for (const auto& [name, hist] : histograms_) {
    if (histogram_sets_.count(name) > 0) continue;  // shadowed
    HistogramSample h;
    h.name = name;
    h.min_value = hist->min_value();
    h.count = hist->count();
    h.sum = hist->sum();
    h.min = hist->min();
    h.max = hist->max();
    h.buckets.reserve(LogHistogram::kBucketCount);
    for (std::size_t i = 0; i < LogHistogram::kBucketCount; ++i) {
      h.buckets.push_back(hist->bucket(i));
    }
    snap.histograms.push_back(std::move(h));
  }
  for (const auto& [name, set] : histogram_sets_) {
    HistogramSample h;
    h.name = name;
    h.buckets.assign(LogHistogram::kBucketCount, 0);
    for (const LogHistogram* hist : set) {
      if (h.min_value == 0.0) h.min_value = hist->min_value();
      if (hist->count() > 0) {
        h.min = h.count > 0 ? std::min(h.min, hist->min()) : hist->min();
        h.max = h.count > 0 ? std::max(h.max, hist->max()) : hist->max();
      }
      h.count += hist->count();
      h.sum += hist->sum();
      for (std::size_t i = 0; i < LogHistogram::kBucketCount; ++i) {
        h.buckets[i] += hist->bucket(i);
      }
    }
    snap.histograms.push_back(std::move(h));
  }
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSample& a, const HistogramSample& b) {
              return a.name < b.name;
            });

  snap.series.reserve(series_.size());
  for (const auto& [name, s] : series_) {
    snap.series.push_back(
        SeriesSample{name, s->dropped(), s->times(), s->values()});
  }

  snap.spans = spans_;
  return snap;
}

// --- shared instrument blocks ----------------------------------------------

void PnaCounters::link(MetricsRegistry& registry) const {
  registry.link_counter("pna.control_messages_seen", control_messages_seen);
  registry.link_counter("pna.signature_failures", signature_failures);
  registry.link_counter("pna.wakeups_dropped_busy", wakeups_dropped_busy);
  registry.link_counter("pna.wakeups_rejected_requirements",
                        wakeups_rejected_requirements);
  registry.link_counter("pna.wakeups_dropped_probability",
                        wakeups_dropped_probability);
  registry.link_counter("pna.joins", joins);
  registry.link_counter("pna.resets", resets);
  registry.link_counter("pna.tasks_completed", tasks_completed);
  registry.link_counter("pna.heartbeats_sent", heartbeats_sent);
}

void PnaCounters::link_paced(MetricsRegistry& registry) const {
  registry.link_counter("pna.heartbeats_paced", heartbeats_paced);
}

void PnaCounters::link_byzantine(MetricsRegistry& registry) const {
  registry.link_counter("pna.results_forged", results_forged);
  registry.link_counter("pna.results_freeridden", results_freeridden);
}

void BroadcastCounters::link(MetricsRegistry& registry) const {
  registry.link_counter("broadcast.commits", commits);
  registry.link_counter("broadcast.files_staged", files_staged);
  registry.link_counter("broadcast.files_removed", files_removed);
  registry.link_counter("broadcast.announcements", announcements);
}

}  // namespace oddci::obs

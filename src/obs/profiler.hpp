#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// Kernel wall-clock profiler: where does real time go when the simulated
/// clock advances?
///
/// The profiler attributes wall time to four phases of the sharded kernel —
/// per-shard event *execute*, *barrier* stall (a shard parked at the window
/// fence while slower shards finish), coordinator mailbox *drain*, and
/// *global* tasks — plus window-utilization, mailbox-depth and a
/// load-imbalance index (max/mean shard busy time per window).
///
/// Determinism boundary: the profiler reads `steady_clock` and nothing
/// else. It never schedules events, never touches the metrics registry or
/// flight recorder, and never consumes randomness, so a seeded run's
/// metrics snapshot and Chrome trace are byte-identical with the profiler
/// on or off. Wall-clock data leaves the process only through its own
/// `oddci.profile.v1` export.
///
/// Layering: obs links sim, so sim cannot link obs. Every method the
/// kernel hot path calls is defined inline in this header, which includes
/// no sim headers — `sim/simulation.cpp` and `sim/sharded.cpp` include it
/// without creating a link edge. Only the snapshot/JSON code (profiler.cpp)
/// sees sim types.
///
/// Threading: `add_execute(shard, ...)` is written by that shard's worker
/// thread into a cache-line-padded cell; everything else is
/// coordinator-only. The coordinator reads the execute cells exclusively in
/// `on_window`, after the barrier's `work_done_` wait — the barrier mutex
/// provides the happens-before edge.
namespace oddci::sim {
class ShardedSimulation;
}  // namespace oddci::sim

namespace oddci::obs {

inline constexpr std::string_view kProfileSchema = "oddci.profile.v1";

class KernelProfiler {
 public:
  explicit KernelProfiler(std::size_t shards)
      : exec_(shards == 0 ? 1 : shards),
        exec_seen_(exec_.size(), 0),
        barrier_nanos_(exec_.size(), 0) {}

  KernelProfiler(const KernelProfiler&) = delete;
  KernelProfiler& operator=(const KernelProfiler&) = delete;

  [[nodiscard]] static std::uint64_t now_nanos() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  [[nodiscard]] std::size_t shard_count() const { return exec_.size(); }

  // --- shard-thread side ----------------------------------------------------

  /// One timed batch of event execution on `shard` (a run/run_until/
  /// run_window call body). Cache-line-private per shard; no locks.
  void add_execute(std::size_t shard, std::uint64_t nanos) {
    ExecCell& cell = exec_[shard];
    cell.nanos += nanos;
    ++cell.calls;
  }

  // --- coordinator side -----------------------------------------------------

  void begin_run() { run_start_nanos_ = now_nanos(); }

  void end_run(std::int64_t sim_micros_advanced) {
    run_wall_nanos_ += now_nanos() - run_start_nanos_;
    ++runs_;
    if (sim_micros_advanced > 0) {
      sim_micros_ += static_cast<std::uint64_t>(sim_micros_advanced);
    }
  }

  /// One parallel window completed; `span_nanos` is the coordinator-measured
  /// wall span from worker release to the last shard finishing. Charges each
  /// shard's idle remainder (span minus its execute delta) to barrier stall
  /// and folds utilization / imbalance for this window.
  void on_window(std::uint64_t span_nanos) {
    ++windows_;
    window_span_nanos_ += span_nanos;
    const std::size_t k = exec_.size();
    std::uint64_t busy_sum = 0;
    std::uint64_t busy_max = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint64_t total = exec_[i].nanos;
      const std::uint64_t delta = total - exec_seen_[i];
      exec_seen_[i] = total;
      busy_sum += delta;
      if (delta > busy_max) busy_max = delta;
      barrier_nanos_[i] += span_nanos > delta ? span_nanos - delta : 0;
    }
    if (span_nanos > 0) {
      util_sum_ += static_cast<double>(busy_sum) /
                   (static_cast<double>(k) * static_cast<double>(span_nanos));
      ++windows_spanned_;
    }
    if (busy_sum > 0) {
      const double mean =
          static_cast<double>(busy_sum) / static_cast<double>(k);
      const double ratio = static_cast<double>(busy_max) / mean;
      imbalance_sum_ += ratio;
      if (ratio > imbalance_max_) imbalance_max_ = ratio;
      ++windows_busy_;
    }
  }

  /// One drain pass: wall nanos spent moving mail (global-task time
  /// excluded by the caller) and the number of mailbox items moved.
  void add_drain(std::uint64_t nanos, std::uint64_t mail_items) {
    drain_nanos_ += nanos;
    ++drain_calls_;
    mail_items_ += mail_items;
    if (mail_items > mail_items_max_) mail_items_max_ = mail_items;
  }

  /// Global tasks executed during a drain: wall nanos and task count.
  void add_global(std::uint64_t nanos, std::uint64_t tasks) {
    global_nanos_ += nanos;
    global_tasks_ += tasks;
  }

  // --- accessors (snapshot side) --------------------------------------------

  [[nodiscard]] std::uint64_t execute_nanos(std::size_t shard) const {
    return exec_[shard].nanos;
  }
  [[nodiscard]] std::uint64_t execute_calls(std::size_t shard) const {
    return exec_[shard].calls;
  }
  [[nodiscard]] std::uint64_t barrier_nanos(std::size_t shard) const {
    return barrier_nanos_[shard];
  }
  [[nodiscard]] std::uint64_t run_wall_nanos() const { return run_wall_nanos_; }
  [[nodiscard]] std::uint64_t runs() const { return runs_; }
  [[nodiscard]] std::uint64_t sim_micros() const { return sim_micros_; }
  [[nodiscard]] std::uint64_t windows() const { return windows_; }
  [[nodiscard]] std::uint64_t window_span_nanos() const {
    return window_span_nanos_;
  }
  [[nodiscard]] std::uint64_t drain_nanos() const { return drain_nanos_; }
  [[nodiscard]] std::uint64_t drain_calls() const { return drain_calls_; }
  [[nodiscard]] std::uint64_t mail_items() const { return mail_items_; }
  [[nodiscard]] std::uint64_t mail_items_max() const { return mail_items_max_; }
  [[nodiscard]] std::uint64_t global_nanos() const { return global_nanos_; }
  [[nodiscard]] std::uint64_t global_tasks() const { return global_tasks_; }
  [[nodiscard]] double utilization_mean() const {
    return windows_spanned_ > 0
               ? util_sum_ / static_cast<double>(windows_spanned_)
               : 0.0;
  }
  [[nodiscard]] double imbalance_mean() const {
    return windows_busy_ > 0
               ? imbalance_sum_ / static_cast<double>(windows_busy_)
               : 0.0;
  }
  [[nodiscard]] double imbalance_max() const { return imbalance_max_; }

 private:
  struct alignas(64) ExecCell {
    std::uint64_t nanos = 0;
    std::uint64_t calls = 0;
  };

  // Written by shard worker threads, read by the coordinator at barriers.
  std::vector<ExecCell> exec_;

  // Coordinator-only state.
  std::vector<std::uint64_t> exec_seen_;
  std::vector<std::uint64_t> barrier_nanos_;
  std::uint64_t run_start_nanos_ = 0;
  std::uint64_t run_wall_nanos_ = 0;
  std::uint64_t runs_ = 0;
  std::uint64_t sim_micros_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t windows_spanned_ = 0;
  std::uint64_t windows_busy_ = 0;
  std::uint64_t window_span_nanos_ = 0;
  std::uint64_t drain_nanos_ = 0;
  std::uint64_t drain_calls_ = 0;
  std::uint64_t mail_items_ = 0;
  std::uint64_t mail_items_max_ = 0;
  std::uint64_t global_nanos_ = 0;
  std::uint64_t global_tasks_ = 0;
  double util_sum_ = 0.0;
  double imbalance_sum_ = 0.0;
  double imbalance_max_ = 0.0;
};

// --- snapshot ---------------------------------------------------------------

/// Per-shard slice of a profile: wall phases plus the shard's kernel event
/// counters (filled when a kernel is supplied to `take_profile`).
struct ProfileShard {
  double execute_seconds = 0.0;
  std::uint64_t execute_calls = 0;
  double barrier_seconds = 0.0;
  std::uint64_t events_executed = 0;
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_cancelled = 0;
  std::uint64_t events_pending = 0;
  bool operator==(const ProfileShard&) const = default;
};

/// Plain-data profile export (`oddci.profile.v1`). Owns all its storage.
struct ProfileSnapshot {
  std::uint64_t shards = 1;
  double run_wall_seconds = 0.0;
  double sim_seconds = 0.0;
  std::uint64_t runs = 0;
  std::uint64_t windows = 0;
  double window_span_seconds = 0.0;
  double utilization_mean = 0.0;
  double imbalance_mean = 0.0;
  double imbalance_max = 0.0;
  double drain_seconds = 0.0;
  std::uint64_t drain_calls = 0;
  std::uint64_t mail_items = 0;
  std::uint64_t mail_items_max = 0;
  double global_seconds = 0.0;
  std::uint64_t global_tasks = 0;
  std::uint64_t cross_posts = 0;
  std::uint64_t clamped_posts = 0;
  std::vector<ProfileShard> per_shard;
  bool operator==(const ProfileSnapshot&) const = default;

  [[nodiscard]] double execute_seconds_total() const;
  [[nodiscard]] double barrier_seconds_total() const;
};

/// Snapshot the profiler's accumulators alone.
[[nodiscard]] ProfileSnapshot take_profile(const KernelProfiler& profiler);

/// Snapshot plus the kernel's own counters (per-shard event accounting,
/// cross/clamped posts). Call with every worker parked (between runs).
[[nodiscard]] ProfileSnapshot take_profile(
    const KernelProfiler& profiler, const sim::ShardedSimulation& kernel);

[[nodiscard]] std::string to_profile_json(const ProfileSnapshot& snapshot);
[[nodiscard]] ProfileSnapshot profile_from_json(std::string_view json);
void write_profile_json(const std::string& path,
                        const ProfileSnapshot& snapshot);
[[nodiscard]] ProfileSnapshot read_profile_json(const std::string& path);

}  // namespace oddci::obs

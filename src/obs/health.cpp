#include "obs/health.hpp"

#include <utility>

namespace oddci::obs {
namespace {

std::string u64(std::uint64_t v) { return std::to_string(v); }

void add_finding(HealthReport& report, HealthSeverity severity,
                 std::string check, std::string detail) {
  report.findings.push_back(
      HealthFinding{severity, std::move(check), std::move(detail)});
}

/// messages sent = delivered + dropped + lost + in-flight, checked in two
/// halves: the injector side (sent - lost + duplicated == scheduled,
/// exact) and the delivery side (scheduled - delivered - dropped ==
/// in-flight >= 0).
void check_messages(const HealthLedger& l, bool at_end, HealthReport& out) {
  // Uplink queue drops are shed before the interposer and before any
  // arrival is scheduled, so they leave the balance on the "removed before
  // arrival" side next to the injected losses.
  const std::uint64_t removed = l.messages_lost + l.uplink_queue_dropped;
  const std::uint64_t expected_scheduled =
      l.messages_sent - removed + l.messages_duplicated;
  if (removed > l.messages_sent ||
      l.arrivals_scheduled != expected_scheduled) {
    add_finding(out, HealthSeverity::kCritical, "net.message_conservation",
                "arrivals_scheduled=" + u64(l.arrivals_scheduled) +
                    " != sent-lost-uplink_qdrop+duplicated=" +
                    u64(l.messages_sent) + "-" + u64(l.messages_lost) + "-" +
                    u64(l.uplink_queue_dropped) + "+" +
                    u64(l.messages_duplicated));
    return;
  }
  const std::uint64_t accounted = l.messages_delivered + l.messages_dropped +
                                  l.downlink_queue_dropped;
  if (accounted > l.arrivals_scheduled) {
    add_finding(out, HealthSeverity::kCritical, "net.message_conservation",
                "delivered+dropped+downlink_qdrop=" +
                    u64(l.messages_delivered) + "+" +
                    u64(l.messages_dropped) + "+" +
                    u64(l.downlink_queue_dropped) +
                    " exceeds arrivals_scheduled=" +
                    u64(l.arrivals_scheduled));
    return;
  }
  const std::uint64_t in_flight = l.arrivals_scheduled - accounted;
  if (in_flight > 0 && at_end) {
    add_finding(out, HealthSeverity::kInfo, "net.message_conservation",
                u64(in_flight) + " copies still in flight at run end "
                "(serializing past the deadline)");
    return;
  }
  add_finding(out, HealthSeverity::kOk, "net.message_conservation",
              "sent=" + u64(l.messages_sent) + " lost=" +
                  u64(l.messages_lost) + " delivered=" +
                  u64(l.messages_delivered) + " dropped=" +
                  u64(l.messages_dropped) + " in_flight=" + u64(in_flight));
}

/// heartbeats emitted = aggregated + lost + dropped + in-flight, over the
/// heartbeat-tagged slice of the wire counters.
void check_heartbeats(const HealthLedger& l, bool at_end, HealthReport& out) {
  const std::uint64_t removed =
      l.heartbeats_lost + l.heartbeats_uplink_queue_dropped;
  if (removed > l.heartbeats_emitted) {
    add_finding(out, HealthSeverity::kCritical, "hb.conservation",
                "heartbeats_lost+uplink_qdrop=" + u64(l.heartbeats_lost) +
                    "+" + u64(l.heartbeats_uplink_queue_dropped) +
                    " exceeds emitted=" + u64(l.heartbeats_emitted));
    return;
  }
  const std::uint64_t on_wire =
      l.heartbeats_emitted - removed + l.heartbeats_duplicated;
  const std::uint64_t accounted = l.heartbeats_received +
                                  l.heartbeats_dropped +
                                  l.heartbeats_downlink_queue_dropped;
  if (accounted > on_wire) {
    add_finding(out, HealthSeverity::kCritical, "hb.conservation",
                "received+dropped+downlink_qdrop=" +
                    u64(l.heartbeats_received) + "+" +
                    u64(l.heartbeats_dropped) + "+" +
                    u64(l.heartbeats_downlink_queue_dropped) +
                    " exceeds emitted-lost-uplink_qdrop+duplicated=" +
                    u64(on_wire));
    return;
  }
  const std::uint64_t in_flight = on_wire - accounted;
  if (in_flight > 0 && at_end) {
    add_finding(out, HealthSeverity::kInfo, "hb.conservation",
                u64(in_flight) + " heartbeats in flight at run end");
    return;
  }
  add_finding(out, HealthSeverity::kOk, "hb.conservation",
              "emitted=" + u64(l.heartbeats_emitted) + " received=" +
                  u64(l.heartbeats_received) + " lost=" +
                  u64(l.heartbeats_lost) + " dropped=" +
                  u64(l.heartbeats_dropped) + " in_flight=" + u64(in_flight));
}

/// Per shard: events scheduled = executed + cancelled + pending, exactly.
void check_shards(const HealthLedger& l, HealthReport& out) {
  bool clean = true;
  for (std::size_t i = 0; i < l.shards.size(); ++i) {
    const HealthLedger::ShardEvents& s = l.shards[i];
    const std::uint64_t accounted = s.executed + s.cancelled + s.pending;
    if (accounted != s.scheduled) {
      clean = false;
      add_finding(out, HealthSeverity::kCritical, "sim.event_conservation",
                  "shard " + u64(i) + ": executed+cancelled+pending=" +
                      u64(accounted) + " != scheduled=" + u64(s.scheduled));
    }
  }
  if (clean) {
    add_finding(out, HealthSeverity::kOk, "sim.event_conservation",
                u64(l.shards.size()) + " shard(s) balance exactly");
  }
}

/// Pool acquire balance: the heartbeat fast path acquires exactly one
/// message per emitted beat; reused+allocated must match.
void check_pool(const HealthLedger& l, HealthReport& out) {
  if (!l.pool_active) return;
  if (l.pool_acquired != l.pool_expected) {
    add_finding(out, HealthSeverity::kCritical, "pool.acquire_balance",
                "pool acquired=" + u64(l.pool_acquired) +
                    " != heartbeats through the pool=" +
                    u64(l.pool_expected));
    return;
  }
  add_finding(out, HealthSeverity::kOk, "pool.acquire_balance",
              "acquired=" + u64(l.pool_acquired) + " matches emissions");
}

/// Delta-mode membership reconstruction: the incrementally maintained
/// member total must equal the recomputed per-instance view exactly, and
/// no resync checksum may ever have failed — either breach means delta
/// application silently diverged from the aggregators' ledgers. Emits
/// nothing at all in naive mode (no phantom check in the report).
void check_delta_membership(const HealthLedger& l, HealthReport& out) {
  if (!l.delta_active) return;
  if (l.delta_checksum_failures > 0) {
    add_finding(out, HealthSeverity::kCritical, "delta.membership",
                u64(l.delta_checksum_failures) +
                    " resync checksum failure(s): aggregator ledger and "
                    "controller view disagree");
    return;
  }
  if (l.delta_members_incremental != l.delta_members_view) {
    add_finding(out, HealthSeverity::kCritical, "delta.membership",
                "incremental member total=" +
                    u64(l.delta_members_incremental) +
                    " != recomputed membership view=" +
                    u64(l.delta_members_view));
    return;
  }
  add_finding(out, HealthSeverity::kOk, "delta.membership",
              "members=" + u64(l.delta_members_view) +
                  " reconstructed exactly from deltas and resyncs");
}

/// Verified-execution result conservation: every dispatched replica is
/// verified, outvoted, written off, or still outstanding — exactly; spot
/// checks balance on their own identity. Silent in non-verify runs.
void check_verify_conservation(const HealthLedger& l, bool at_end,
                               HealthReport& out) {
  if (!l.verify_active) return;
  const std::uint64_t accounted =
      l.verify_verified + l.verify_outvoted + l.verify_discarded +
      l.verify_outstanding;
  if (accounted != l.verify_dispatched) {
    add_finding(out, HealthSeverity::kCritical, "verify.result_conservation",
                "verified+outvoted+discarded+outstanding=" +
                    u64(l.verify_verified) + "+" + u64(l.verify_outvoted) +
                    "+" + u64(l.verify_discarded) + "+" +
                    u64(l.verify_outstanding) +
                    " != dispatched=" + u64(l.verify_dispatched));
    return;
  }
  const std::uint64_t spot_accounted =
      l.spot_passed + l.spot_failed + l.spot_flushed + l.spot_outstanding;
  if (spot_accounted != l.spot_dispatched) {
    add_finding(out, HealthSeverity::kCritical, "verify.result_conservation",
                "spot passed+failed+flushed+outstanding=" +
                    u64(l.spot_passed) + "+" + u64(l.spot_failed) + "+" +
                    u64(l.spot_flushed) + "+" + u64(l.spot_outstanding) +
                    " != spot dispatched=" + u64(l.spot_dispatched));
    return;
  }
  if (at_end && l.verify_outstanding + l.spot_outstanding > 0) {
    add_finding(out, HealthSeverity::kInfo, "verify.result_conservation",
                u64(l.verify_outstanding) + " replica(s) and " +
                    u64(l.spot_outstanding) +
                    " spot check(s) unresolved at run end");
    return;
  }
  add_finding(out, HealthSeverity::kOk, "verify.result_conservation",
              "dispatched=" + u64(l.verify_dispatched) + " verified=" +
                  u64(l.verify_verified) + " outvoted=" +
                  u64(l.verify_outvoted) + " discarded=" +
                  u64(l.verify_discarded) + " outstanding=" +
                  u64(l.verify_outstanding));
}

/// Byzantine detection audit: with seeded adversaries and verification
/// both on, any adversary that accumulated enough reputation observations
/// yet finished the run above the quarantine threshold escaped the
/// defense. Only meaningful at run end. Silent without seeded adversaries.
void check_byzantine_detection(const HealthLedger& l, bool at_end,
                               HealthReport& out) {
  if (!l.byz_active) return;
  if (at_end && l.byz_undetected > 0) {
    add_finding(out, HealthSeverity::kWarning, "byzantine.detection",
                u64(l.byz_undetected) + " of " + u64(l.byz_adversaries) +
                    " seeded adversaries observed repeatedly yet still "
                    "above the quarantine threshold");
    return;
  }
  add_finding(out, HealthSeverity::kOk, "byzantine.detection",
              u64(l.byz_adversaries) +
                  " seeded adversaries, none unquarantined after repeated "
                  "observation");
}

}  // namespace

std::string_view to_string(HealthSeverity severity) {
  switch (severity) {
    case HealthSeverity::kOk:
      return "ok";
    case HealthSeverity::kInfo:
      return "info";
    case HealthSeverity::kWarning:
      return "warning";
    case HealthSeverity::kCritical:
      return "critical";
  }
  return "unknown";
}

HealthSeverity HealthReport::worst() const {
  HealthSeverity worst = HealthSeverity::kOk;
  for (const HealthFinding& f : findings) {
    if (f.severity > worst) worst = f.severity;
  }
  return worst;
}

std::string HealthReport::to_text() const {
  std::string out = "health: " + std::string(to_string(worst())) + " (" +
                    std::to_string(findings.size()) + " checks, " +
                    std::to_string(samples) + " periodic samples)\n";
  for (const HealthFinding& f : findings) {
    out += "  [" + std::string(to_string(f.severity)) + "] " + f.check +
           ": " + f.detail + "\n";
  }
  if (first_violation_seconds >= 0.0) {
    out += "  first violation at t=" +
           std::to_string(first_violation_seconds) + "s\n";
  }
  return out;
}

HealthAuditor::HealthAuditor(LedgerFn ledger_fn)
    : ledger_fn_(std::move(ledger_fn)) {}

HealthReport HealthAuditor::evaluate(const HealthLedger& ledger,
                                     double now_seconds, bool at_end) {
  HealthReport report;
  report.taken_at_seconds = now_seconds;
  check_messages(ledger, at_end, report);
  check_heartbeats(ledger, at_end, report);
  check_shards(ledger, report);
  check_pool(ledger, report);
  check_delta_membership(ledger, report);
  check_verify_conservation(ledger, at_end, report);
  check_byzantine_detection(ledger, at_end, report);
  return report;
}

void HealthAuditor::sample(double now_seconds) {
  ++samples_;
  if (first_violation_seconds_ >= 0.0) return;
  const HealthReport report =
      evaluate(ledger_fn_(), now_seconds, /*at_end=*/false);
  if (!report.ok()) first_violation_seconds_ = now_seconds;
}

HealthReport HealthAuditor::finalize(double now_seconds) {
  HealthReport report =
      evaluate(ledger_fn_(), now_seconds, /*at_end=*/true);
  report.samples = samples_;
  report.first_violation_seconds =
      first_violation_seconds_ >= 0.0 ? first_violation_seconds_
      : !report.ok()                  ? now_seconds
                                      : -1.0;
  return report;
}

}  // namespace oddci::obs

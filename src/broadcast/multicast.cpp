#include "broadcast/multicast.hpp"

#include <algorithm>
#include <stdexcept>

namespace oddci::broadcast {

void MulticastOptions::validate() const {
  if (fec_overhead < 0.0) {
    throw std::invalid_argument("MulticastOptions: negative FEC overhead");
  }
  if (block_loss < 0.0 || block_loss >= 1.0) {
    throw std::invalid_argument(
        "MulticastOptions: block loss must be in [0, 1)");
  }
  if (join_latency < sim::SimTime::zero()) {
    throw std::invalid_argument("MulticastOptions: negative join latency");
  }
  if (announce_repetition <= sim::SimTime::zero()) {
    throw std::invalid_argument(
        "MulticastOptions: announce repetition must be positive");
  }
}

MulticastChannel::MulticastChannel(sim::Simulation& simulation,
                                   util::BitRate capacity,
                                   std::uint64_t seed,
                                   MulticastOptions options)
    : simulation_(simulation),
      capacity_(capacity),
      options_(options),
      rng_(seed) {
  if (capacity.bps() <= 0.0) {
    throw std::invalid_argument("MulticastChannel: capacity must be > 0");
  }
  options_.validate();
}

void MulticastChannel::put_file(const std::string& name, util::Bits size,
                                std::uint64_t content_id) {
  if (name.empty()) {
    throw std::invalid_argument("MulticastChannel: empty file name");
  }
  if (size.count() <= 0) {
    throw std::invalid_argument("MulticastChannel: file size must be > 0");
  }
  auto it = staged_.find(name);
  if (it != staged_.end()) {
    it->second.size = size;
    it->second.content_id = content_id;
    ++it->second.version;
  } else {
    staged_.emplace(name, CarouselFile{name, size, 1, content_id});
  }
  if (counters_ != nullptr) ++counters_->files_staged;
}

bool MulticastChannel::remove_file(const std::string& name) {
  const bool removed = staged_.erase(name) > 0;
  if (removed && counters_ != nullptr) ++counters_->files_removed;
  return removed;
}

std::uint64_t MulticastChannel::commit() {
  active_.generation = next_generation_++;
  active_.epoch = simulation_.now();
  active_.rate = capacity_;
  active_.phase_bits = 0;  // block coding: phase is meaningless
  active_.files.clear();
  active_.files.reserve(staged_.size());
  for (const auto& [name, file] : staged_) {
    active_.files.push_back(file);
  }
  if (counters_ != nullptr) ++counters_->commits;
  if (recorder_ != nullptr) {
    recorder_->emit(simulation_.now(),
                    obs::TraceEventKind::kCarouselCommit,
                    obs::TraceComponent::kCarousel, {}, active_.generation,
                    active_.files.size());
  }
  for (const auto& [id, listener] : listeners_) {
    (void)listener;
    schedule_announcement(id);
  }
  return active_.generation;
}

void MulticastChannel::schedule_announcement(ListenerId id) {
  if (counters_ != nullptr) ++counters_->announcements;
  const double jitter_s =
      rng_.uniform(0.0, options_.announce_repetition.seconds());
  const std::uint64_t generation = active_.generation;
  simulation_.schedule_timer_in(
      sim::SimTime::from_seconds(jitter_s),
      [this, id, generation] {
        auto it = listeners_.find(id);
        if (it == listeners_.end()) return;
        if (active_.generation != generation) return;  // superseded
        it->second->on_signalling(ait_, active_);
      },
      sim::SimTime::zero(), sim::EventPriority::kDelivery);
}

ListenerId MulticastChannel::tune(BroadcastListener* listener) {
  if (listener == nullptr) {
    throw std::invalid_argument("MulticastChannel: null listener");
  }
  const ListenerId id = next_listener_++;
  listeners_.emplace(id, listener);
  if (active_.generation > 0) {
    schedule_announcement(id);
  }
  return id;
}

void MulticastChannel::untune(ListenerId id) { listeners_.erase(id); }

double MulticastChannel::session_rate_bps(const CarouselFile& file) const {
  // Sessions are sized proportionally to their content, with a small floor
  // so tiny signalling files still repeat at a useful rate (the usual
  // FLUTE deployment pattern). Shares are normalized so the multiplex is
  // never oversubscribed.
  constexpr double kMinShare = 0.02;
  const double total =
      static_cast<double>(active_.total_size().count());
  double share_sum = 0.0;
  double my_share = kMinShare;
  for (const auto& f : active_.files) {
    const double share =
        std::max(kMinShare, static_cast<double>(f.size.count()) / total);
    share_sum += share;
    if (f.name == file.name) my_share = share;
  }
  if (share_sum <= 0.0) return capacity_.bps();
  return capacity_.bps() * my_share / share_sum;
}

std::optional<double> MulticastChannel::acquisition_seconds(
    const std::string& name) const {
  const CarouselFile* file = active_.find(name);
  if (file == nullptr) return std::nullopt;
  const double effective_rate =
      session_rate_bps(*file) * (1.0 - options_.block_loss);
  const double bits =
      static_cast<double>(file->size.count()) * (1.0 + options_.fec_overhead);
  return options_.join_latency.seconds() + bits / effective_rate;
}

std::optional<sim::SimTime> MulticastChannel::file_ready_at(
    const std::string& name, sim::SimTime listen_from) {
  const auto seconds = acquisition_seconds(name);
  if (!seconds) return std::nullopt;
  // Mild stochastic spread (block-arrival granularity, +-2%).
  const double jitter = rng_.uniform(0.98, 1.02);
  return listen_from + sim::SimTime::from_seconds(*seconds * jitter);
}

double MulticastChannel::acquisition_horizon_seconds() const {
  double horizon = 0.0;
  for (const auto& file : active_.files) {
    horizon = std::max(horizon, acquisition_seconds(file.name).value_or(0.0));
  }
  return 2.0 * horizon;
}

}  // namespace oddci::broadcast

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

/// Keyed-hash message signatures.
///
/// Section 3.2 of the paper requires that "the PNA are configured to only
/// accept messages broadcast by their associated Controller (this can be
/// easily achieved through a digital signature mechanism)". We model that
/// contract with a keyed 64-bit hash: it is interface-compatible with a real
/// MAC (sign/verify over the message bytes with a shared key) while staying
/// dependency-free. It is NOT cryptographically secure and must not be used
/// outside the simulation.
namespace oddci::broadcast {

using SigningKey = std::uint64_t;
using Signature = std::uint64_t;

/// FNV-1a 64-bit over the key bytes followed by the content bytes, with a
/// finalizing avalanche mix.
[[nodiscard]] Signature sign(SigningKey key, std::string_view content);

[[nodiscard]] bool verify(SigningKey key, std::string_view content,
                          Signature signature);

/// Unkeyed content digest (same FNV-1a + avalanche construction, no key
/// prefix). Used as the memoization handle of `VerifyCache`: a broadcast
/// payload is digested once at encode/decode time and every receiver's
/// verification is then a cache lookup instead of a fresh keyed hash. The
/// digest is an index, not a security boundary — cache hits re-check byte
/// identity, so a colliding forgery still fails verification.
[[nodiscard]] std::uint64_t content_digest(std::string_view content);

/// Canonical byte serialization helpers so that logically-equal messages
/// sign identically.
class SignBuffer {
 public:
  SignBuffer& add(std::string_view s);
  SignBuffer& add_u64(std::uint64_t v);
  SignBuffer& add_i64(std::int64_t v);
  SignBuffer& add_double(double v);

  [[nodiscard]] const std::string& bytes() const { return buffer_; }

 private:
  std::string buffer_;
};

}  // namespace oddci::broadcast

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "broadcast/signature.hpp"
#include "obs/metrics.hpp"

/// Memoized signature verification for broadcast fan-out.
///
/// One control message reaches every tuned receiver at once; without
/// memoization each of N PNAs independently re-hashes the identical
/// payload to check the identical signature — N keyed hashes for one
/// broadcast. A population shares one VerifyCache: the first agent pays
/// the full `broadcast::verify`, every later agent resolves the same
/// (payload, key, signature) triple with a table lookup plus a byte
/// compare, so a broadcast performs exactly one signature hash per
/// distinct (message, key).
///
/// Security contract:
///  * The 64-bit digest is only an index. A hit additionally compares the
///    stored payload bytes against the queried bytes, so a tampered copy
///    that happens to collide on the digest misses the fast path and goes
///    through full verification (where it fails).
///  * The signing key and the claimed signature are part of the match: a
///    rotated key or a re-signed payload never reuses a stale verdict.
///  * Negative verdicts are cached too — a forged broadcast also costs
///    one hash for the whole population, not N.
///  * Capacity is a hard bound with FIFO eviction: a flood of unique
///    messages recycles slots instead of growing the table.
namespace oddci::broadcast {

class VerifyCache {
 public:
  /// A handful of slots suffice: at any instant the carousel carries one
  /// configuration file per channel plus, transiently, its predecessor.
  explicit VerifyCache(std::size_t capacity = 16);

  VerifyCache(const VerifyCache&) = delete;
  VerifyCache& operator=(const VerifyCache&) = delete;

  /// Verify `signature` over `canonical` under `key`, memoized by
  /// (`digest`, key, signature). `digest` must be
  /// `content_digest(canonical)` — typically precomputed once when the
  /// shared payload was decoded.
  [[nodiscard]] bool verify(std::string_view canonical, std::uint64_t digest,
                            SigningKey key, Signature signature);

  /// Convenience overload that digests `canonical` itself (tests, callers
  /// without a precomputed digest).
  [[nodiscard]] bool verify(std::string_view canonical, SigningKey key,
                            Signature signature) {
    return verify(canonical, content_digest(canonical), key, signature);
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] const obs::Counter& hits() const { return hits_; }
  [[nodiscard]] const obs::Counter& misses() const { return misses_; }

  /// Expose hit/miss counters as `verify_cache.hit` / `verify_cache.miss`
  /// plus a `verify_cache.size` probe. The cache must outlive snapshots.
  void link_metrics(obs::MetricsRegistry& registry) const;

 private:
  struct Entry {
    std::uint64_t digest = 0;
    SigningKey key = 0;
    Signature signature = 0;
    bool verdict = false;
    std::string canonical;  ///< identity check against digest collisions
  };

  std::size_t capacity_;
  std::size_t next_evict_ = 0;  ///< FIFO cursor once full
  std::vector<Entry> entries_;
  obs::Counter hits_;
  obs::Counter misses_;
};

}  // namespace oddci::broadcast

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/quantity.hpp"

/// DSM-CC object carousel model.
///
/// The carousel cyclically transmits a file system over the broadcast
/// channel's unused capacity beta. We do not simulate individual MPEG-2
/// sections (a 10 MB image at 1 Mbps would be ~450k packets per cycle);
/// instead the cycle layout is kept analytically: each file occupies a
/// contiguous byte range of the cycle, and `read_completion_time` computes
/// when a receiver that starts listening at a given instant has captured a
/// file in full. This reproduces exactly the semantics behind the paper's
/// wakeup-overhead model (best case I/beta, worst case ~2I/beta, mean
/// 1.5·I/beta when the image dominates the cycle).
namespace oddci::broadcast {

struct CarouselFile {
  std::string name;
  util::Bits size;
  std::uint32_t version = 1;
  /// Opaque handle to the file's logical content (e.g. a core::ImageId or a
  /// pointer into a content store); the carousel itself only schedules bits.
  std::uint64_t content_id = 0;
};

/// Immutable view of one carousel generation's contents.
struct CarouselSnapshot {
  std::uint64_t generation = 0;
  sim::SimTime epoch;          ///< when this generation started transmitting
  util::BitRate rate;          ///< beta at generation start
  /// Rotation of the cycle at the epoch: the multiplexer's output is a
  /// continuous stream, so a new generation starts transmitting from an
  /// arbitrary position of its cycle, not from file 0. This is what makes
  /// the mean acquisition latency 1.5 cycles rather than 1.
  std::int64_t phase_bits = 0;
  std::vector<CarouselFile> files;
  /// Bit offset of each file within the cycle (parallel to `files`). Part
  /// of the snapshot so that a receiver holding a retained copy (sharded
  /// kernel: snapshots travel to receiver shards inside signalling
  /// capsules) can compute read times without touching the live carousel.
  std::vector<std::int64_t> offsets;

  [[nodiscard]] util::Bits total_size() const;
  [[nodiscard]] double cycle_seconds() const;
  [[nodiscard]] const CarouselFile* find(const std::string& name) const;

  /// Absolute time at which a receiver that begins listening at
  /// `listen_from` (>= the epoch) finishes acquiring `file_name`, or
  /// nullopt if the file is not in this generation. A receiver must
  /// capture a file from its first byte: if it tunes mid-file it waits
  /// for the next cycle.
  [[nodiscard]] std::optional<sim::SimTime> read_completion_time(
      const std::string& file_name, sim::SimTime listen_from) const;
};

class ObjectCarousel {
 public:
  /// `rate` is the capacity available to the carousel (beta).
  explicit ObjectCarousel(util::BitRate rate);

  /// Replace/add a file. Bumps the file version if it already exists.
  /// Takes effect at the next `commit`.
  void put_file(const std::string& name, util::Bits size,
                std::uint64_t content_id);

  /// Remove a file at the next `commit`. Returns false if absent.
  bool remove_file(const std::string& name);

  /// Change the carousel bit-rate from the next commit on (e.g. the
  /// multiplexer reallocated capacity).
  void set_rate(util::BitRate rate);

  /// Atomically start transmitting the staged contents at time `now`,
  /// beginning at cycle rotation `phase_bits` (clamped into the cycle).
  /// Returns the new generation number. Reads of files whose module
  /// changed are invalidated (module-version semantics); unchanged modules
  /// keep assembling.
  std::uint64_t commit(sim::SimTime now, std::int64_t phase_bits = 0);

  [[nodiscard]] const CarouselSnapshot& current() const { return active_; }
  [[nodiscard]] bool has_committed() const { return active_.generation > 0; }

  /// Absolute time at which a receiver that begins listening at `listen_from`
  /// (>= the generation epoch) finishes acquiring `file_name`, or nullopt if
  /// the file is not in the active generation. A receiver must capture a file
  /// from its first byte: if it tunes mid-file it waits for the next cycle.
  [[nodiscard]] std::optional<sim::SimTime> read_completion_time(
      const std::string& file_name, sim::SimTime listen_from) const;

  /// Mean acquisition latency for `file_name` over a uniformly random tune-in
  /// phase (the analytical counterpart of read_completion_time).
  [[nodiscard]] std::optional<double> mean_acquisition_seconds(
      const std::string& file_name) const;

 private:
  util::BitRate staged_rate_;
  std::map<std::string, CarouselFile> staged_;  // ordered => stable layout
  CarouselSnapshot active_;
  std::uint64_t next_generation_ = 1;
};

}  // namespace oddci::broadcast

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/quantity.hpp"

/// MPEG-2 transport stream multiplexer model.
///
/// A DTV transport stream carries elementary streams (audio, video,
/// subtitles, ...) plus data services. The OddCI carousel only gets the
/// *unused* capacity beta = total - sum(elementary stream rates) minus a
/// fixed signalling overhead (PSI/SI tables: PAT, PMT, AIT repetition).
/// Benches vary the A/V load to sweep beta.
namespace oddci::broadcast {

struct ElementaryStream {
  std::uint16_t pid = 0;  ///< packet identifier
  std::string kind;       ///< "video", "audio", ...
  util::BitRate rate;
};

class TransportStream {
 public:
  /// `total` is the full multiplex capacity (e.g. ~19 Mbps for ISDB-T/ATSC).
  /// `signalling_overhead` is reserved for PSI/SI tables.
  explicit TransportStream(util::BitRate total,
                           util::BitRate signalling_overhead =
                               util::BitRate::from_kbps(100));

  /// Add an elementary stream; throws if the multiplex would be oversubscribed.
  void add_stream(const ElementaryStream& stream);

  /// Remove by PID. Returns false if absent.
  bool remove_stream(std::uint16_t pid);

  [[nodiscard]] util::BitRate total() const { return total_; }
  [[nodiscard]] util::BitRate reserved() const;
  /// Capacity left over for the data carousel (beta).
  [[nodiscard]] util::BitRate unused() const;

  [[nodiscard]] const std::vector<ElementaryStream>& streams() const {
    return streams_;
  }

 private:
  util::BitRate total_;
  util::BitRate signalling_;
  std::vector<ElementaryStream> streams_;
};

}  // namespace oddci::broadcast

#include "broadcast/transport_stream.hpp"

#include <stdexcept>

namespace oddci::broadcast {

TransportStream::TransportStream(util::BitRate total,
                                 util::BitRate signalling_overhead)
    : total_(total), signalling_(signalling_overhead) {
  if (total.bps() <= 0.0) {
    throw std::invalid_argument("TransportStream: total capacity must be > 0");
  }
  if (signalling_overhead.bps() < 0.0 ||
      signalling_overhead.bps() >= total.bps()) {
    throw std::invalid_argument(
        "TransportStream: signalling overhead out of range");
  }
}

void TransportStream::add_stream(const ElementaryStream& stream) {
  if (stream.rate.bps() <= 0.0) {
    throw std::invalid_argument("TransportStream: stream rate must be > 0");
  }
  for (const auto& s : streams_) {
    if (s.pid == stream.pid) {
      throw std::invalid_argument("TransportStream: duplicate PID");
    }
  }
  const double new_reserved = reserved().bps() + stream.rate.bps();
  if (new_reserved > total_.bps()) {
    throw std::invalid_argument("TransportStream: multiplex oversubscribed");
  }
  streams_.push_back(stream);
}

bool TransportStream::remove_stream(std::uint16_t pid) {
  for (auto it = streams_.begin(); it != streams_.end(); ++it) {
    if (it->pid == pid) {
      streams_.erase(it);
      return true;
    }
  }
  return false;
}

util::BitRate TransportStream::reserved() const {
  double r = signalling_.bps();
  for (const auto& s : streams_) r += s.rate.bps();
  return util::BitRate(r);
}

util::BitRate TransportStream::unused() const {
  return util::BitRate(total_.bps() - reserved().bps());
}

}  // namespace oddci::broadcast

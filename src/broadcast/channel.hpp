#pragma once

#include <cstdint>
#include <unordered_map>

#include "broadcast/ait.hpp"
#include "broadcast/carousel.hpp"
#include "broadcast/medium.hpp"
#include "broadcast/transport_stream.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

/// One broadcast (TV) channel: a transport stream carrying A/V elementary
/// streams, PSI/SI signalling (including the AIT) and a DSM-CC object
/// carousel on the unused capacity.
///
/// Receivers `tune()` in and are notified whenever new signalling starts to
/// be transmitted. Acquisition is not instantaneous: tables repeat with a
/// configurable period, so each receiver observes a change after a random
/// phase delay in [0, repetition_period) — this models the real spread in
/// trigger-application launch times across a population of set-top boxes.
namespace oddci::broadcast {

class BroadcastListener {
 public:
  virtual ~BroadcastListener() = default;

  /// New signalling (AIT version and/or carousel generation) acquired.
  virtual void on_signalling(const Ait& ait,
                             const CarouselSnapshot& snapshot) = 0;
};

class BroadcastChannel final : public BroadcastMedium {
 public:
  BroadcastChannel(sim::Simulation& simulation, TransportStream transport,
                   std::uint64_t seed,
                   sim::SimTime table_repetition =
                       sim::SimTime::from_millis(500));

  BroadcastChannel(const BroadcastChannel&) = delete;
  BroadcastChannel& operator=(const BroadcastChannel&) = delete;

  [[nodiscard]] const TransportStream& transport() const { return transport_; }
  [[nodiscard]] util::BitRate carousel_rate() const {
    return transport_.unused();
  }

  /// Staging interface: mutate the AIT and carousel contents, then commit.
  Ait& ait() override { return ait_; }
  ObjectCarousel& carousel() { return carousel_; }
  [[nodiscard]] const ObjectCarousel& carousel() const { return carousel_; }

  void put_file(const std::string& name, util::Bits size,
                std::uint64_t content_id) override {
    carousel_.put_file(name, size, content_id);
    if (counters_ != nullptr) ++counters_->files_staged;
  }
  bool remove_file(const std::string& name) override {
    const bool removed = carousel_.remove_file(name);
    if (removed && counters_ != nullptr) ++counters_->files_removed;
    return removed;
  }
  [[nodiscard]] const CarouselSnapshot& current() const override {
    return carousel_.current();
  }

  /// Atomically start transmitting the staged carousel and current AIT.
  /// Every tuned listener is scheduled to acquire the new signalling after
  /// its own phase delay. Returns the new carousel generation.
  std::uint64_t commit() override;

  /// Attach a listener (receiver tuned to this channel). If signalling is
  /// already on air, the listener acquires it after a phase delay.
  ListenerId tune(BroadcastListener* listener) override;

  /// Detach; pending acquisitions for this listener are dropped.
  void untune(ListenerId id) override;

  [[nodiscard]] std::size_t tuned_count() const override {
    return listeners_.size();
  }

  /// Mean acquisition is 1.5 cycles; by two full cycles a clean-channel
  /// receiver has certainly seen every module once.
  [[nodiscard]] double acquisition_horizon_seconds() const override {
    if (!carousel_.has_committed()) return 0.0;
    return 2.0 * carousel_.current().cycle_seconds();
  }

  /// Broadcast reception is not loss-free: model an i.i.d. per-section
  /// loss probability (DSM-CC sections are ~4 KB). Receivers accumulate
  /// sections across cycles, so a lost section costs one extra carousel
  /// cycle for that section; a file completes when its last section lands.
  /// Default 0 (clean channel).
  void set_section_loss(
      double per_section_loss,
      util::Bits section_size = util::Bits::from_kilobytes(4));
  [[nodiscard]] double section_loss() const { return section_loss_; }

  /// When a listener that starts reading at `listen_from` will have the
  /// named carousel file fully acquired. With section loss enabled the
  /// extra cycles are sampled from the channel's RNG (per call — each
  /// receiver's reception experiences independent losses).
  [[nodiscard]] std::optional<sim::SimTime> file_ready_at(
      const std::string& name, sim::SimTime listen_from) override;

  [[nodiscard]] std::uint64_t commits() const { return commit_count_; }

 private:
  void schedule_acquisition(ListenerId id);

  sim::Simulation& simulation_;
  TransportStream transport_;
  Ait ait_;
  ObjectCarousel carousel_;
  sim::SimTime table_repetition_;
  double section_loss_ = 0.0;
  util::Bits section_size_ = util::Bits::from_kilobytes(4);
  util::Random rng_;
  std::unordered_map<ListenerId, BroadcastListener*> listeners_;
  ListenerId next_listener_ = 1;
  std::uint64_t commit_count_ = 0;
};

}  // namespace oddci::broadcast

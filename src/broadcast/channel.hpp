#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "broadcast/ait.hpp"
#include "broadcast/carousel.hpp"
#include "broadcast/medium.hpp"
#include "broadcast/transport_stream.hpp"
#include "sim/sharded.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

/// One broadcast (TV) channel: a transport stream carrying A/V elementary
/// streams, PSI/SI signalling (including the AIT) and a DSM-CC object
/// carousel on the unused capacity.
///
/// Receivers `tune()` in and are notified whenever new signalling starts to
/// be transmitted. Acquisition is not instantaneous: tables repeat with a
/// configurable period, so each receiver observes a change after a random
/// phase delay in [0, repetition_period) — this models the real spread in
/// trigger-application launch times across a population of set-top boxes.
namespace oddci::broadcast {

/// Immutable copy of one generation's on-air signalling, shared across
/// shards of the sharded kernel: the channel (control shard) freezes its
/// AIT, carousel snapshot and loss model at commit; receivers on other
/// shards retain the capsule and compute acquisition times from it without
/// ever touching the live channel.
struct SignallingCapsule {
  Ait ait;
  CarouselSnapshot snapshot;
  double section_loss = 0.0;
  util::Bits section_size;
};

/// Extra full carousel cycles needed to capture every section of `file`
/// under i.i.d. per-section loss `p` (in (0,1)), inverted from one
/// pre-drawn Uniform(0,1) sample `u` — callers own the draw, so each RNG
/// stream's consumption order is explicit. Each section needs
/// Geometric(1-p) passes and the file completes when the slowest section
/// lands: P(max passes <= m) = (1 - p^m)^k, so
///   m = ceil( log(1 - u^(1/k)) / log(p) ).
[[nodiscard]] double section_loss_extra_cycles(const CarouselFile& file,
                                               double p,
                                               util::Bits section_size,
                                               double u);

class BroadcastListener {
 public:
  virtual ~BroadcastListener() = default;

  /// New signalling (AIT version and/or carousel generation) acquired.
  virtual void on_signalling(const Ait& ait,
                             const CarouselSnapshot& snapshot) = 0;

  /// Sharded-kernel delivery: signalling that crosses shards travels as a
  /// shared immutable capsule. The default unwraps to on_signalling.
  virtual void on_signalling_capsule(
      const std::shared_ptr<const SignallingCapsule>& capsule) {
    on_signalling(capsule->ait, capsule->snapshot);
  }
};

class BroadcastChannel final : public BroadcastMedium {
 public:
  BroadcastChannel(sim::Simulation& simulation, TransportStream transport,
                   std::uint64_t seed,
                   sim::SimTime table_repetition =
                       sim::SimTime::from_millis(500));

  BroadcastChannel(const BroadcastChannel&) = delete;
  BroadcastChannel& operator=(const BroadcastChannel&) = delete;

  [[nodiscard]] const TransportStream& transport() const { return transport_; }
  [[nodiscard]] util::BitRate carousel_rate() const {
    return transport_.unused();
  }

  /// Staging interface: mutate the AIT and carousel contents, then commit.
  Ait& ait() override { return ait_; }
  ObjectCarousel& carousel() { return carousel_; }
  [[nodiscard]] const ObjectCarousel& carousel() const { return carousel_; }

  void put_file(const std::string& name, util::Bits size,
                std::uint64_t content_id) override {
    carousel_.put_file(name, size, content_id);
    if (counters_ != nullptr) ++counters_->files_staged;
  }
  bool remove_file(const std::string& name) override {
    const bool removed = carousel_.remove_file(name);
    if (removed && counters_ != nullptr) ++counters_->files_removed;
    return removed;
  }
  [[nodiscard]] const CarouselSnapshot& current() const override {
    return carousel_.current();
  }

  /// Atomically start transmitting the staged carousel and current AIT.
  /// Every tuned listener is scheduled to acquire the new signalling after
  /// its own phase delay. Returns the new carousel generation.
  std::uint64_t commit() override;

  /// Attach a listener (receiver tuned to this channel). If signalling is
  /// already on air, the listener acquires it after a phase delay.
  ListenerId tune(BroadcastListener* listener) override;

  /// Sharded-kernel tune: the caller supplies a stable listener id (so the
  /// same receiver keeps its id across power cycles — cross-shard re-tunes
  /// stay deterministic) and its kernel shard, which routes capsule
  /// deliveries. Must only run on the channel's own (control) shard.
  ListenerId tune_with_id(ListenerId id, BroadcastListener* listener,
                          std::uint32_t shard) override;

  /// Detach; pending acquisitions for this listener are dropped.
  void untune(ListenerId id) override;

  /// Attach the sharded kernel: acquisition timers stay on the channel's
  /// shard, but the final signalling delivery to a listener on another
  /// shard is posted through the kernel mailbox as a capsule. Call before
  /// any tune or commit.
  void set_sharded(sim::ShardedSimulation* sharded) { sharded_ = sharded; }

  [[nodiscard]] std::size_t tuned_count() const override {
    return listeners_.size();
  }

  /// Mean acquisition is 1.5 cycles; by two full cycles a clean-channel
  /// receiver has certainly seen every module once.
  [[nodiscard]] double acquisition_horizon_seconds() const override {
    if (!carousel_.has_committed()) return 0.0;
    return 2.0 * carousel_.current().cycle_seconds();
  }

  /// Broadcast reception is not loss-free: model an i.i.d. per-section
  /// loss probability (DSM-CC sections are ~4 KB). Receivers accumulate
  /// sections across cycles, so a lost section costs one extra carousel
  /// cycle for that section; a file completes when its last section lands.
  /// Default 0 (clean channel).
  void set_section_loss(
      double per_section_loss,
      util::Bits section_size = util::Bits::from_kilobytes(4));
  [[nodiscard]] double section_loss() const { return section_loss_; }

  /// When a listener that starts reading at `listen_from` will have the
  /// named carousel file fully acquired. With section loss enabled the
  /// extra cycles are sampled from the channel's RNG (per call — each
  /// receiver's reception experiences independent losses).
  [[nodiscard]] std::optional<sim::SimTime> file_ready_at(
      const std::string& name, sim::SimTime listen_from) override;

  [[nodiscard]] std::uint64_t commits() const { return commit_count_; }

 private:
  void schedule_acquisition(ListenerId id);
  [[nodiscard]] std::uint32_t listener_shard(ListenerId id) const {
    auto it = listener_shards_.find(id);
    return it != listener_shards_.end() ? it->second : 0u;
  }

  sim::Simulation& simulation_;
  TransportStream transport_;
  Ait ait_;
  ObjectCarousel carousel_;
  sim::SimTime table_repetition_;
  double section_loss_ = 0.0;
  util::Bits section_size_ = util::Bits::from_kilobytes(4);
  util::Random rng_;
  std::unordered_map<ListenerId, BroadcastListener*> listeners_;
  /// Shard homes survive untune: a listener id is bound to its shard for
  /// the life of the channel (ids are stable across power cycles).
  std::unordered_map<ListenerId, std::uint32_t> listener_shards_;
  ListenerId next_listener_ = 1;
  std::uint64_t commit_count_ = 0;
  sim::ShardedSimulation* sharded_ = nullptr;
  /// Current generation's frozen signalling (built at commit when the
  /// kernel has multiple shards).
  std::shared_ptr<const SignallingCapsule> capsule_;
};

}  // namespace oddci::broadcast

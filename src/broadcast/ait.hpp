#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

/// Application Information Table (AIT).
///
/// The AIT is carried in the transport stream and tells the receiver which
/// interactive applications exist and what to do with them. The field that
/// drives the OddCI wakeup process is `application_control_code`: a value of
/// AUTOSTART makes every tuned receiver launch the application (the PNA
/// Xlet) without user intervention — a "trigger application".
namespace oddci::broadcast {

enum class AppControlCode : std::uint8_t {
  kAutostart = 0x01,  ///< start immediately, no user action (trigger app)
  kPresent = 0x02,    ///< available, user-launched
  kDestroy = 0x03,    ///< stop gracefully (destroyXlet)
  kKill = 0x04,       ///< stop immediately
};

struct AitEntry {
  std::uint32_t application_id = 0;
  AppControlCode control_code = AppControlCode::kPresent;
  std::string application_name;
  /// Name of the carousel file holding the application's code base.
  std::string base_file;
};

class Ait {
 public:
  Ait() = default;

  /// Insert or replace the entry for `application_id`; bumps the table
  /// version.
  void upsert(const AitEntry& entry);

  /// Remove an application from the table; bumps the version if present.
  bool remove(std::uint32_t application_id);

  [[nodiscard]] std::optional<AitEntry> find(
      std::uint32_t application_id) const;
  [[nodiscard]] const std::vector<AitEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::uint32_t version() const { return version_; }

  /// Applications the receiver must launch automatically.
  [[nodiscard]] std::vector<AitEntry> autostart_entries() const;

 private:
  std::vector<AitEntry> entries_;
  std::uint32_t version_ = 0;
};

[[nodiscard]] const char* to_string(AppControlCode code);

}  // namespace oddci::broadcast

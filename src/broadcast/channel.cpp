#include "broadcast/channel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oddci::broadcast {

BroadcastChannel::BroadcastChannel(sim::Simulation& simulation,
                                   TransportStream transport,
                                   std::uint64_t seed,
                                   sim::SimTime table_repetition)
    : simulation_(simulation),
      transport_(std::move(transport)),
      carousel_(transport_.unused()),
      table_repetition_(table_repetition),
      rng_(seed) {
  if (table_repetition <= sim::SimTime::zero()) {
    throw std::invalid_argument(
        "BroadcastChannel: table repetition must be positive");
  }
}

std::uint64_t BroadcastChannel::commit() {
  carousel_.set_rate(transport_.unused());
  // Continuous-multiplex semantics: the new generation picks up at a
  // random rotation of its cycle (the stream never "restarts"), which is
  // what gives acquisition its half-cycle average wait.
  const std::int64_t phase =
      static_cast<std::int64_t>(rng_.engine().next() >> 1);
  const std::uint64_t generation =
      carousel_.commit(simulation_.now(), phase);
  ++commit_count_;
  if (counters_ != nullptr) ++counters_->commits;
  if (recorder_ != nullptr) {
    recorder_->emit(simulation_.now(),
                    obs::TraceEventKind::kCarouselCommit,
                    obs::TraceComponent::kCarousel, {}, generation,
                    carousel_.current().files.size());
  }
  if (sharded_ != nullptr && sharded_->shard_count() > 1) {
    // Freeze this generation's signalling once; every cross-shard delivery
    // shares the same immutable capsule.
    capsule_ = std::make_shared<const SignallingCapsule>(SignallingCapsule{
        ait_, carousel_.current(), section_loss_, section_size_});
  }
  for (const auto& [id, listener] : listeners_) {
    (void)listener;
    schedule_acquisition(id);
  }
  return generation;
}

void BroadcastChannel::schedule_acquisition(ListenerId id) {
  if (counters_ != nullptr) ++counters_->announcements;
  // Phase delay until the receiver sees the updated tables on air.
  const double phase_s =
      rng_.uniform(0.0, table_repetition_.seconds());
  const std::uint64_t generation = carousel_.current().generation;
  simulation_.schedule_timer_in(
      sim::SimTime::from_seconds(phase_s),
      [this, id, generation] {
        auto it = listeners_.find(id);
        if (it == listeners_.end()) return;        // untuned meanwhile
        if (carousel_.current().generation != generation) {
          return;  // superseded by a newer commit; its own event will fire
        }
        if (sharded_ == nullptr || sharded_->shard_count() == 1) {
          it->second->on_signalling(ait_, carousel_.current());
          return;
        }
        // Sharded: the superseded check above ran live on the channel's
        // shard; only the final delivery crosses, as a frozen capsule.
        const std::uint32_t shard = listener_shard(id);
        if (shard == 0) {
          it->second->on_signalling_capsule(capsule_);
          return;
        }
        sharded_->post(0, shard, simulation_.now(),
                       [listener = it->second, capsule = capsule_] {
                         listener->on_signalling_capsule(capsule);
                       });
      },
      sim::SimTime::zero(), sim::EventPriority::kDelivery);
}

void BroadcastChannel::set_section_loss(double per_section_loss,
                                        util::Bits section_size) {
  if (per_section_loss < 0.0 || per_section_loss >= 1.0) {
    throw std::invalid_argument(
        "BroadcastChannel: section loss must be in [0, 1)");
  }
  if (section_size.count() <= 0) {
    throw std::invalid_argument(
        "BroadcastChannel: section size must be positive");
  }
  section_loss_ = per_section_loss;
  section_size_ = section_size;
}

double section_loss_extra_cycles(const CarouselFile& file, double p,
                                 util::Bits section_size, double u) {
  const auto sections = static_cast<double>(
      (file.size.count() + section_size.count() - 1) / section_size.count());
  const double root = std::pow(u, 1.0 / sections);
  double passes = 1.0;
  if (root < 1.0) {
    passes = std::ceil(std::log1p(-root) / std::log(p));
    passes = std::max(passes, 1.0);
  }
  return passes - 1.0;
}

std::optional<sim::SimTime> BroadcastChannel::file_ready_at(
    const std::string& name, sim::SimTime listen_from) {
  auto base = carousel_.read_completion_time(name, listen_from);
  if (!base || section_loss_ <= 0.0) return base;

  const CarouselFile* file = carousel_.current().find(name);
  const double u = rng_.uniform();
  const double extra_cycles =
      section_loss_extra_cycles(*file, section_loss_, section_size_, u);
  return *base + sim::SimTime::from_seconds(
                     extra_cycles * carousel_.current().cycle_seconds());
}

ListenerId BroadcastChannel::tune(BroadcastListener* listener) {
  if (listener == nullptr) {
    throw std::invalid_argument("BroadcastChannel: null listener");
  }
  const ListenerId id = next_listener_++;
  listeners_.emplace(id, listener);
  if (carousel_.has_committed()) {
    schedule_acquisition(id);
  }
  return id;
}

ListenerId BroadcastChannel::tune_with_id(ListenerId id,
                                          BroadcastListener* listener,
                                          std::uint32_t shard) {
  if (listener == nullptr) {
    throw std::invalid_argument("BroadcastChannel: null listener");
  }
  if (id == 0 || listeners_.count(id) > 0) {
    throw std::invalid_argument("BroadcastChannel: bad stable listener id");
  }
  // Stay clear of the auto-assigned range so plain tune() never collides.
  next_listener_ = std::max(next_listener_, id + 1);
  listeners_.emplace(id, listener);
  listener_shards_[id] = shard;
  if (carousel_.has_committed()) {
    schedule_acquisition(id);
  }
  return id;
}

void BroadcastChannel::untune(ListenerId id) { listeners_.erase(id); }

}  // namespace oddci::broadcast

#include "broadcast/signature.hpp"

#include <bit>
#include <cstring>

namespace oddci::broadcast {

namespace {
constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t avalanche(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

Signature sign(SigningKey key, std::string_view content) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, &key, sizeof(key));
  h = fnv1a(h, content.data(), content.size());
  return avalanche(h);
}

bool verify(SigningKey key, std::string_view content, Signature signature) {
  return sign(key, content) == signature;
}

std::uint64_t content_digest(std::string_view content) {
  return avalanche(fnv1a(kFnvOffset, content.data(), content.size()));
}

SignBuffer& SignBuffer::add(std::string_view s) {
  add_u64(s.size());
  buffer_.append(s.data(), s.size());
  return *this;
}

SignBuffer& SignBuffer::add_u64(std::uint64_t v) {
  char raw[sizeof(v)];
  std::memcpy(raw, &v, sizeof(v));
  buffer_.append(raw, sizeof(v));
  return *this;
}

SignBuffer& SignBuffer::add_i64(std::int64_t v) {
  return add_u64(std::bit_cast<std::uint64_t>(v));
}

SignBuffer& SignBuffer::add_double(double v) {
  return add_u64(std::bit_cast<std::uint64_t>(v));
}

}  // namespace oddci::broadcast

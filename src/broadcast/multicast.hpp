#pragma once

#include <map>
#include <unordered_map>

#include "broadcast/channel.hpp"  // BroadcastListener
#include "broadcast/medium.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

/// IP-multicast content delivery (the OddCI-IPTV variant of Section 3.3).
///
/// Files are delivered as block-coded multicast sessions in the style of
/// FLUTE/ALC with fountain-like FEC: each staged file loops continuously on
/// its own session, the total capacity split equally across active
/// sessions. Two modelling differences from the DSM-CC carousel matter:
///
///  * **No phase wait.** A receiver can start collecting coded blocks at
///    any point of the loop and decodes after receiving size*(1+fec)
///    worth of them — acquisition is size/rate, not the carousel's
///    0.5-cycle wait + full read (so wakeup ~ I/beta instead of 1.5 I/beta).
///  * **Graceful loss.** A lost block is just another block to collect:
///    loss p inflates acquisition by 1/(1-p) instead of costing whole
///    extra carousel cycles.
///
/// Signalling (the AIT analogue) is a session announcement repeated every
/// `announce_repetition`, giving each tuned receiver a uniform jitter
/// before it reacts to a commit — same semantics as the DTV tables.
namespace oddci::broadcast {

struct MulticastOptions {
  /// FEC/coding overhead: extra fraction of the file size that must be
  /// received before decoding succeeds.
  double fec_overhead = 0.05;
  /// i.i.d. block loss probability.
  double block_loss = 0.0;
  /// IGMP join + first-block latency.
  sim::SimTime join_latency = sim::SimTime::from_millis(150);
  /// Repetition period of the session announcements.
  sim::SimTime announce_repetition = sim::SimTime::from_millis(500);

  void validate() const;
};

class MulticastChannel final : public BroadcastMedium {
 public:
  /// `capacity` is the total multicast bandwidth available to OddCI
  /// content (the beta analogue), split equally across staged files.
  MulticastChannel(sim::Simulation& simulation, util::BitRate capacity,
                   std::uint64_t seed, MulticastOptions options = {});

  MulticastChannel(const MulticastChannel&) = delete;
  MulticastChannel& operator=(const MulticastChannel&) = delete;

  [[nodiscard]] util::BitRate capacity() const { return capacity_; }

  // --- BroadcastMedium --------------------------------------------------------
  Ait& ait() override { return ait_; }
  void put_file(const std::string& name, util::Bits size,
                std::uint64_t content_id) override;
  bool remove_file(const std::string& name) override;
  std::uint64_t commit() override;
  [[nodiscard]] const CarouselSnapshot& current() const override {
    return active_;
  }
  ListenerId tune(BroadcastListener* listener) override;
  void untune(ListenerId id) override;
  [[nodiscard]] std::size_t tuned_count() const override {
    return listeners_.size();
  }
  [[nodiscard]] std::optional<sim::SimTime> file_ready_at(
      const std::string& name, sim::SimTime listen_from) override;
  [[nodiscard]] double acquisition_horizon_seconds() const override;

  /// Deterministic expected acquisition time for a file (no jitter term).
  [[nodiscard]] std::optional<double> acquisition_seconds(
      const std::string& name) const;

 private:
  void schedule_announcement(ListenerId id);
  [[nodiscard]] double session_rate_bps(const CarouselFile& file) const;

  sim::Simulation& simulation_;
  util::BitRate capacity_;
  MulticastOptions options_;
  util::Random rng_;

  Ait ait_;
  std::map<std::string, CarouselFile> staged_;
  CarouselSnapshot active_;
  std::uint64_t next_generation_ = 1;

  std::unordered_map<ListenerId, BroadcastListener*> listeners_;
  ListenerId next_listener_ = 1;
};

}  // namespace oddci::broadcast

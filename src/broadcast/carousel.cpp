#include "broadcast/carousel.hpp"

#include <cmath>
#include <stdexcept>

namespace oddci::broadcast {

util::Bits CarouselSnapshot::total_size() const {
  util::Bits total;
  for (const auto& f : files) total += f.size;
  return total;
}

double CarouselSnapshot::cycle_seconds() const {
  return util::transmission_seconds(total_size(), rate);
}

const CarouselFile* CarouselSnapshot::find(const std::string& name) const {
  for (const auto& f : files) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::optional<sim::SimTime> CarouselSnapshot::read_completion_time(
    const std::string& file_name, sim::SimTime listen_from) const {
  if (generation == 0) return std::nullopt;
  if (listen_from < epoch) {
    throw std::invalid_argument(
        "CarouselSnapshot: listen_from precedes the generation epoch");
  }
  const std::int64_t cycle_bits = total_size().count();
  if (cycle_bits == 0) return std::nullopt;

  for (std::size_t i = 0; i < files.size(); ++i) {
    const CarouselFile& f = files[i];
    if (f.name != file_name) continue;

    const double beta = rate.bps();
    const double cycle_s = static_cast<double>(cycle_bits) / beta;
    const double start_offset_s = static_cast<double>(offsets[i]) / beta;
    const double read_s = static_cast<double>(f.size.count()) / beta;

    // Phase of the carousel at listen_from, in seconds within the cycle,
    // accounting for the rotation the generation started at.
    const double phase0 = static_cast<double>(phase_bits) / beta;
    const double elapsed = (listen_from - epoch).seconds() + phase0;
    const double phase = std::fmod(elapsed, cycle_s);

    // Wait until the next emission of the file's first byte.
    double wait = start_offset_s - phase;
    if (wait < 0.0) wait += cycle_s;

    return listen_from + sim::SimTime::from_seconds(wait + read_s);
  }
  return std::nullopt;
}

ObjectCarousel::ObjectCarousel(util::BitRate rate) : staged_rate_(rate) {
  if (rate.bps() <= 0.0) {
    throw std::invalid_argument("ObjectCarousel: rate must be > 0");
  }
}

void ObjectCarousel::put_file(const std::string& name, util::Bits size,
                              std::uint64_t content_id) {
  if (name.empty()) {
    throw std::invalid_argument("ObjectCarousel: empty file name");
  }
  if (size.count() <= 0) {
    throw std::invalid_argument("ObjectCarousel: file size must be > 0");
  }
  auto it = staged_.find(name);
  if (it != staged_.end()) {
    it->second.size = size;
    it->second.content_id = content_id;
    ++it->second.version;
  } else {
    staged_.emplace(name, CarouselFile{name, size, 1, content_id});
  }
}

bool ObjectCarousel::remove_file(const std::string& name) {
  return staged_.erase(name) > 0;
}

void ObjectCarousel::set_rate(util::BitRate rate) {
  if (rate.bps() <= 0.0) {
    throw std::invalid_argument("ObjectCarousel: rate must be > 0");
  }
  staged_rate_ = rate;
}

std::uint64_t ObjectCarousel::commit(sim::SimTime now,
                                     std::int64_t phase_bits) {
  active_.generation = next_generation_++;
  active_.epoch = now;
  active_.rate = staged_rate_;
  active_.phase_bits = phase_bits;
  active_.files.clear();
  active_.files.reserve(staged_.size());
  active_.offsets.clear();
  active_.offsets.reserve(staged_.size());
  std::int64_t offset = 0;
  for (const auto& [name, file] : staged_) {
    active_.files.push_back(file);
    active_.offsets.push_back(offset);
    offset += file.size.count();
  }
  if (offset > 0) {
    active_.phase_bits = ((phase_bits % offset) + offset) % offset;
  } else {
    active_.phase_bits = 0;
  }
  return active_.generation;
}

std::optional<sim::SimTime> ObjectCarousel::read_completion_time(
    const std::string& file_name, sim::SimTime listen_from) const {
  return active_.read_completion_time(file_name, listen_from);
}

std::optional<double> ObjectCarousel::mean_acquisition_seconds(
    const std::string& file_name) const {
  if (!has_committed()) return std::nullopt;
  const CarouselFile* f = active_.find(file_name);
  if (f == nullptr) return std::nullopt;
  const double beta = active_.rate.bps();
  const double cycle_s =
      static_cast<double>(active_.total_size().count()) / beta;
  const double read_s = static_cast<double>(f->size.count()) / beta;
  // Uniform phase => mean wait of half a cycle, plus the read itself.
  return 0.5 * cycle_s + read_s;
}

}  // namespace oddci::broadcast

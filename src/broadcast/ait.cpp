#include "broadcast/ait.hpp"

#include <algorithm>

namespace oddci::broadcast {

void Ait::upsert(const AitEntry& entry) {
  for (auto& e : entries_) {
    if (e.application_id == entry.application_id) {
      e = entry;
      ++version_;
      return;
    }
  }
  entries_.push_back(entry);
  ++version_;
}

bool Ait::remove(std::uint32_t application_id) {
  auto it = std::remove_if(entries_.begin(), entries_.end(),
                           [application_id](const AitEntry& e) {
                             return e.application_id == application_id;
                           });
  if (it == entries_.end()) return false;
  entries_.erase(it, entries_.end());
  ++version_;
  return true;
}

std::optional<AitEntry> Ait::find(std::uint32_t application_id) const {
  for (const auto& e : entries_) {
    if (e.application_id == application_id) return e;
  }
  return std::nullopt;
}

std::vector<AitEntry> Ait::autostart_entries() const {
  std::vector<AitEntry> out;
  for (const auto& e : entries_) {
    if (e.control_code == AppControlCode::kAutostart) out.push_back(e);
  }
  return out;
}

const char* to_string(AppControlCode code) {
  switch (code) {
    case AppControlCode::kAutostart:
      return "AUTOSTART";
    case AppControlCode::kPresent:
      return "PRESENT";
    case AppControlCode::kDestroy:
      return "DESTROY";
    case AppControlCode::kKill:
      return "KILL";
  }
  return "?";
}

}  // namespace oddci::broadcast

#include "broadcast/verify_cache.hpp"

namespace oddci::broadcast {

VerifyCache::VerifyCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  entries_.reserve(capacity_);
}

bool VerifyCache::verify(std::string_view canonical, std::uint64_t digest,
                         SigningKey key, Signature signature) {
  for (const Entry& e : entries_) {
    if (e.digest == digest && e.key == key && e.signature == signature &&
        e.canonical == canonical) {
      hits_.inc();
      return e.verdict;
    }
  }
  misses_.inc();
  const bool verdict = broadcast::verify(key, canonical, signature);
  if (entries_.size() < capacity_) {
    entries_.push_back(
        Entry{digest, key, signature, verdict, std::string(canonical)});
  } else {
    Entry& slot = entries_[next_evict_];
    next_evict_ = (next_evict_ + 1) % capacity_;
    slot.digest = digest;
    slot.key = key;
    slot.signature = signature;
    slot.verdict = verdict;
    slot.canonical.assign(canonical.data(), canonical.size());
  }
  return verdict;
}

void VerifyCache::link_metrics(obs::MetricsRegistry& registry) const {
  registry.link_counter("verify_cache.hit", hits_);
  registry.link_counter("verify_cache.miss", misses_);
  registry.link_probe("verify_cache.size",
                      [this] { return static_cast<double>(size()); });
}

}  // namespace oddci::broadcast

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "broadcast/ait.hpp"
#include "broadcast/carousel.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

/// Abstraction over broadcast delivery technologies.
///
/// Section 3.3 of the paper lists several one-to-many substrates an OddCI
/// can be built on: digital TV in its various modalities, multicast over
/// broadband, mobile networks, IPTV. The OddCI components only need the
/// operations below; `BroadcastChannel` (DSM-CC carousel over a DTV
/// transport stream) and `MulticastChannel` (block-coded IP multicast
/// sessions) are the two provided implementations.
namespace oddci::broadcast {

class BroadcastListener;
using ListenerId = std::uint64_t;

class BroadcastMedium {
 public:
  virtual ~BroadcastMedium() = default;

  // --- signalling -----------------------------------------------------------
  /// The application-information table announced on this medium.
  virtual Ait& ait() = 0;

  // --- content staging -------------------------------------------------------
  /// Stage (or replace, bumping the version of) a file for transmission.
  virtual void put_file(const std::string& name, util::Bits size,
                        std::uint64_t content_id) = 0;
  virtual bool remove_file(const std::string& name) = 0;
  /// Atomically start transmitting the staged contents; notifies tuned
  /// listeners. Returns the new generation number.
  virtual std::uint64_t commit() = 0;

  /// Snapshot of what is currently on air.
  [[nodiscard]] virtual const CarouselSnapshot& current() const = 0;

  // --- receivers --------------------------------------------------------------
  virtual ListenerId tune(BroadcastListener* listener) = 0;
  /// Sharded-kernel tune with a caller-chosen stable id and the listener's
  /// kernel shard (used to route deliveries). Media that do not support
  /// sharding fall back to a plain tune and ignore both.
  virtual ListenerId tune_with_id(ListenerId id, BroadcastListener* listener,
                                  std::uint32_t shard) {
    (void)id;
    (void)shard;
    return tune(listener);
  }
  virtual void untune(ListenerId id) = 0;
  [[nodiscard]] virtual std::size_t tuned_count() const = 0;

  /// When a receiver that starts listening at `listen_from` has fully
  /// acquired the named file (technology-specific; may be stochastic).
  [[nodiscard]] virtual std::optional<sim::SimTime> file_ready_at(
      const std::string& name, sim::SimTime listen_from) = 0;

  /// Upper-bound estimate of how long a willing receiver needs to acquire
  /// everything currently on air — the Controller waits this long before
  /// concluding a wakeup was ignored rather than still in flight.
  [[nodiscard]] virtual double acquisition_horizon_seconds() const = 0;

  // --- observability ----------------------------------------------------------
  /// Attach shared broadcast counters (commits, staged/removed files,
  /// per-listener announcements). nullptr detaches. The cells must outlive
  /// the medium; all media of one system may share one block.
  void set_counters(obs::BroadcastCounters* counters) { counters_ = counters; }

  /// Attach a flight recorder: every commit() is emitted as an
  /// infrastructure-level carousel.commit event (the broadcast plane is
  /// one-to-many, so cycle events are not tied to a single trace).
  /// nullptr detaches.
  void set_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

 protected:
  obs::BroadcastCounters* counters_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace oddci::broadcast

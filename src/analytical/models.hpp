#pragma once

#include <cstddef>

#include "util/quantity.hpp"

/// Closed-form performance models from Section 5 of the paper, used both to
/// generate the analytical curves of Figures 6/7 and to cross-validate the
/// discrete-event simulation.
namespace oddci::analytical {

/// Infrastructure parameters: unused broadcast capacity beta and the
/// per-node direct-channel capacity delta.
struct SystemModel {
  util::BitRate beta = util::BitRate::from_mbps(1.0);
  util::BitRate delta = util::BitRate::from_kbps(150.0);
};

/// Application parameters: n tasks, per-task average input s and result r
/// (bits), average per-task processing time p on a member node (seconds),
/// and the image size I.
struct JobModel {
  std::size_t n = 0;
  double s_bits = 0.0;
  double r_bits = 0.0;
  double p_seconds = 0.0;
  util::Bits image;
};

/// Average wakeup overhead, Section 5.1: W = 1.5 * I / beta
/// (half a carousel cycle of waiting plus a full cycle to read the image,
/// assuming the image dominates the carousel contents).
[[nodiscard]] double wakeup_seconds(util::Bits image, util::BitRate beta);
/// Best case: the node starts reading exactly at the image start.
[[nodiscard]] double wakeup_best_seconds(util::Bits image,
                                         util::BitRate beta);
/// Worst case: the node just missed the image start and waits a full cycle.
[[nodiscard]] double wakeup_worst_seconds(util::Bits image,
                                          util::BitRate beta);

/// Average makespan, Eq. (1):
///   M = 1.5*I/beta + (n/N) * ((s + r)/delta + p)
[[nodiscard]] double makespan_seconds(const SystemModel& system,
                                      const JobModel& job, std::size_t N);

/// Efficiency, Eq. (2): E = n * p / (M * N).
[[nodiscard]] double efficiency(const SystemModel& system, const JobModel& job,
                                std::size_t N);

/// Suitability Phi = (delta * p) / (s + r): compute per unit of
/// communication.
///
/// NOTE on the paper: Section 5.2.2 *prints* Phi = (s+r)/(delta*p) but then
/// states that low Phi means unsuitable (communication-heavy), that
/// efficiency grows with Phi, and that Phi = 1 corresponds to p = 53 ms
/// while Phi = 100,000 corresponds to ~1.5 h. Those statements are only
/// mutually consistent if Phi grows with p — i.e. the printed formula is
/// inverted. We implement the operationally correct orientation,
/// Phi = delta*p/(s+r), which reproduces Figures 6 and 7 exactly as drawn.
[[nodiscard]] double suitability(double s_bits, double r_bits,
                                 util::BitRate delta, double p_seconds);

/// Task processing time that yields a target suitability:
/// p = Phi * (s + r) / delta.
[[nodiscard]] double task_seconds_for_suitability(double payload_bits,
                                                  util::BitRate delta,
                                                  double phi);

/// Task ratio n/N required to reach efficiency E (inverting Eq. 2 with Eq. 1):
///   k = E*W / (p - E*(c + p)),  c = (s+r)/delta.
/// Returns a negative value when E is unreachable for these parameters
/// (i.e. E >= p / (c + p), the asymptotic efficiency).
[[nodiscard]] double ratio_for_efficiency(const SystemModel& system,
                                          const JobModel& job,
                                          double target_efficiency);

/// Asymptotic efficiency as n/N -> infinity: p / (c + p).
[[nodiscard]] double asymptotic_efficiency(const SystemModel& system,
                                           const JobModel& job);

}  // namespace oddci::analytical

#include "analytical/models.hpp"

#include <limits>
#include <stdexcept>

namespace oddci::analytical {

namespace {
void check_beta(util::BitRate beta) {
  if (beta.bps() <= 0.0) {
    throw std::invalid_argument("analytical: beta must be > 0");
  }
}
void check_job(const JobModel& job) {
  if (job.n == 0) {
    throw std::invalid_argument("analytical: job must have tasks");
  }
  if (job.p_seconds <= 0.0) {
    throw std::invalid_argument("analytical: p must be > 0");
  }
  if (job.s_bits < 0.0 || job.r_bits < 0.0) {
    throw std::invalid_argument("analytical: negative payload");
  }
}
}  // namespace

double wakeup_seconds(util::Bits image, util::BitRate beta) {
  check_beta(beta);
  return 1.5 * static_cast<double>(image.count()) / beta.bps();
}

double wakeup_best_seconds(util::Bits image, util::BitRate beta) {
  check_beta(beta);
  return static_cast<double>(image.count()) / beta.bps();
}

double wakeup_worst_seconds(util::Bits image, util::BitRate beta) {
  check_beta(beta);
  return 2.0 * static_cast<double>(image.count()) / beta.bps();
}

double makespan_seconds(const SystemModel& system, const JobModel& job,
                        std::size_t N) {
  check_job(job);
  if (N == 0) {
    throw std::invalid_argument("analytical: N must be > 0");
  }
  if (system.delta.bps() <= 0.0) {
    throw std::invalid_argument("analytical: delta must be > 0");
  }
  const double W = wakeup_seconds(job.image, system.beta);
  const double per_task =
      (job.s_bits + job.r_bits) / system.delta.bps() + job.p_seconds;
  return W + static_cast<double>(job.n) / static_cast<double>(N) * per_task;
}

double efficiency(const SystemModel& system, const JobModel& job,
                  std::size_t N) {
  const double M = makespan_seconds(system, job, N);
  return static_cast<double>(job.n) * job.p_seconds /
         (M * static_cast<double>(N));
}

double suitability(double s_bits, double r_bits, util::BitRate delta,
                   double p_seconds) {
  if (delta.bps() <= 0.0 || p_seconds <= 0.0) {
    throw std::invalid_argument("analytical: delta and p must be > 0");
  }
  if (s_bits + r_bits <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return delta.bps() * p_seconds / (s_bits + r_bits);
}

double task_seconds_for_suitability(double payload_bits, util::BitRate delta,
                                    double phi) {
  if (delta.bps() <= 0.0 || phi <= 0.0 || payload_bits <= 0.0) {
    throw std::invalid_argument("analytical: invalid suitability inversion");
  }
  return phi * payload_bits / delta.bps();
}

double asymptotic_efficiency(const SystemModel& system, const JobModel& job) {
  check_job(job);
  const double c = (job.s_bits + job.r_bits) / system.delta.bps();
  return job.p_seconds / (c + job.p_seconds);
}

double ratio_for_efficiency(const SystemModel& system, const JobModel& job,
                            double target_efficiency) {
  check_job(job);
  if (target_efficiency <= 0.0 || target_efficiency >= 1.0) {
    throw std::invalid_argument("analytical: target efficiency in (0,1)");
  }
  const double W = wakeup_seconds(job.image, system.beta);
  const double c = (job.s_bits + job.r_bits) / system.delta.bps();
  const double denom =
      job.p_seconds - target_efficiency * (c + job.p_seconds);
  if (denom <= 0.0) return -1.0;  // unreachable
  return target_efficiency * W / denom;
}

}  // namespace oddci::analytical

#include "fault/byzantine.hpp"

namespace oddci::fault {

std::string_view to_string(ByzantineProfile profile) {
  switch (profile) {
    case ByzantineProfile::kHonest:
      return "honest";
    case ByzantineProfile::kForger:
      return "forger";
    case ByzantineProfile::kFreeRider:
      return "freerider";
    case ByzantineProfile::kColluder:
      return "colluder";
  }
  return "unknown";
}

namespace {

/// Pure per-receiver classification hash in [0, 1). Hash-based (not a
/// sequential stream) so the table is identical no matter what order or
/// shard the receivers are built on.
double classify_uniform(std::uint64_t seed, std::size_t index) {
  util::SplitMix64 mix(seed ^ (0xA24BAED4963EE407ull +
                               static_cast<std::uint64_t>(index) *
                                   0x9E3779B97F4A7C15ull));
  // 53-bit mantissa fill, same convention as util::Random::uniform.
  return static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
}

std::uint64_t private_seed(std::uint64_t seed, std::size_t index) {
  util::SplitMix64 mix(seed ^ 0xD1B54A32D192ED03ull);
  const std::uint64_t base = mix.next();
  util::SplitMix64 mix2(base + static_cast<std::uint64_t>(index));
  return mix2.next();
}

}  // namespace

ByzantineTable::ByzantineTable(std::uint64_t seed, std::size_t receivers,
                               double forger_fraction,
                               double freerider_fraction,
                               std::size_t collusion_size,
                               const std::vector<std::uint32_t>& regions)
    : seed_(seed) {
  util::SplitMix64 group_mix(seed ^ 0x8CB92BA72F3D8DD7ull);
  group_seed_ = group_mix.next();

  profiles_.assign(receivers, ByzantineProfile::kHonest);
  for (std::size_t i = 0; i < receivers; ++i) {
    const double u = classify_uniform(seed, i);
    if (u < forger_fraction) {
      profiles_[i] = ByzantineProfile::kForger;
      ++forgers_;
    } else if (u < forger_fraction + freerider_fraction) {
      profiles_[i] = ByzantineProfile::kFreeRider;
      ++freeriders_;
    }
  }

  if (collusion_size >= 2 && receivers > 0) {
    // Recruit the group from one aggregator region: the region of the
    // first forger, or region 0 of an otherwise honest population.
    // Forgers of that region are promoted first; if the region runs out
    // of forgers, honest neighbors are conscripted (the group's size is
    // the experiment's contract, the overlap with the forger fraction is
    // not).
    std::uint32_t home = 0;
    for (std::size_t i = 0; i < receivers; ++i) {
      if (profiles_[i] == ByzantineProfile::kForger) {
        home = i < regions.size() ? regions[i] : 0;
        break;
      }
    }
    auto region_of = [&](std::size_t i) -> std::uint32_t {
      return i < regions.size() ? regions[i] : 0;
    };
    for (int pass = 0; pass < 2 && collusion_group_.size() < collusion_size;
         ++pass) {
      const bool want_forgers = pass == 0;
      for (std::size_t i = 0;
           i < receivers && collusion_group_.size() < collusion_size; ++i) {
        if (region_of(i) != home) continue;
        const bool is_forger = profiles_[i] == ByzantineProfile::kForger;
        if (is_forger != want_forgers) continue;
        if (profiles_[i] == ByzantineProfile::kFreeRider) continue;
        if (profiles_[i] == ByzantineProfile::kColluder) continue;
        if (is_forger) --forgers_;
        profiles_[i] = ByzantineProfile::kColluder;
        ++colluders_;
        collusion_group_.push_back(i);
      }
    }
  }
}

std::uint64_t ByzantineTable::forge_seed(std::size_t receiver_index) const {
  if (receiver_index < profiles_.size() &&
      profiles_[receiver_index] == ByzantineProfile::kColluder) {
    return group_seed_;
  }
  return private_seed(seed_, receiver_index);
}

}  // namespace oddci::fault

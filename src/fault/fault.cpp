#include "fault/fault.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace oddci::fault {

namespace {

void check_probability(double p, const char* name) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string(name) + " must be in [0, 1]");
  }
}

void check_rate(double r, const char* name) {
  if (r < 0.0) {
    throw std::invalid_argument(std::string(name) + " must be >= 0");
  }
}

void check_positive(sim::SimTime t, const char* name) {
  if (t <= sim::SimTime::zero()) {
    throw std::invalid_argument(std::string(name) + " must be > 0");
  }
}

}  // namespace

void FaultOptions::validate() const {
  check_probability(message_loss, "fault message_loss");
  check_probability(message_duplication, "fault message_duplication");
  check_probability(latency_spike_probability,
                    "fault latency_spike_probability");
  check_rate(partitions_per_hour, "fault partitions_per_hour");
  check_rate(aggregator_crashes_per_hour, "fault aggregator_crashes_per_hour");
  check_rate(pna_crashes_per_hour, "fault pna_crashes_per_hour");
  check_rate(pna_hangs_per_hour, "fault pna_hangs_per_hour");
  check_rate(control_corruptions_per_hour,
             "fault control_corruptions_per_hour");
  if (latency_spike_probability > 0.0) {
    check_positive(latency_spike_mean, "fault latency_spike_mean");
  }
  if (partitions_per_hour > 0.0) {
    check_positive(partition_duration, "fault partition_duration");
  }
  if (aggregator_crashes_per_hour > 0.0) {
    check_positive(aggregator_downtime, "fault aggregator_downtime");
  }
  if (pna_hangs_per_hour > 0.0) {
    check_positive(pna_hang_duration, "fault pna_hang_duration");
  }
  if (control_corruptions_per_hour > 0.0) {
    check_positive(corrupt_exposure, "fault corrupt_exposure");
  }
  if (!controller_crash_at.empty()) {
    check_positive(controller_downtime, "fault controller_downtime");
  }
  if (!backend_crash_at.empty()) {
    check_positive(backend_downtime, "fault backend_downtime");
  }
  check_probability(byzantine_forger_fraction,
                    "fault byzantine_forger_fraction");
  check_probability(byzantine_freerider_fraction,
                    "fault byzantine_freerider_fraction");
  if (byzantine_forger_fraction + byzantine_freerider_fraction > 1.0) {
    throw std::invalid_argument(
        "fault byzantine fractions must sum to <= 1");
  }
  if (byzantine_collusion_size == 1) {
    throw std::invalid_argument(
        "fault byzantine_collusion_size must be 0 or >= 2");
  }
  if (result_retry_limit < 0) {
    throw std::invalid_argument("fault result_retry_limit must be >= 0");
  }
  if (task_retry_cap < 0) {
    throw std::invalid_argument("fault task_retry_cap must be >= 0");
  }
}

FaultInjector::FaultInjector(sim::Simulation& simulation,
                             const FaultOptions& options, std::uint64_t seed)
    : simulation_(simulation),
      options_(options),
      rng_(seed),
      plan_rng_(rng_.split()),
      wire_rng_(rng_.split()) {
  options_.validate();
}

void FaultInjector::set_controller_hooks(Hook crash, Hook restart) {
  controller_crash_ = std::move(crash);
  controller_restart_ = std::move(restart);
}

void FaultInjector::set_backend_hooks(Hook crash, Hook restart) {
  backend_crash_ = std::move(crash);
  backend_restart_ = std::move(restart);
}

void FaultInjector::add_region(net::NodeId aggregator_node, Hook crash,
                               Hook restart) {
  if (started_) {
    throw std::logic_error("add_region after FaultInjector::start");
  }
  Region region;
  region.node = aggregator_node;
  region.crash = std::move(crash);
  region.restart = std::move(restart);
  regions_.push_back(std::move(region));
}

void FaultInjector::set_pna_fault(PnaFaultFn fn) { pna_fault_ = std::move(fn); }

void FaultInjector::set_sharded(sim::ShardedSimulation* sharded) {
  if (started_) {
    throw std::logic_error("set_sharded after FaultInjector::start");
  }
  sharded_ = sharded;
  wire_shards_.clear();
  if (sharded_ == nullptr || sharded_->shard_count() <= 1) return;
  wire_shards_.resize(sharded_->shard_count());
  for (std::size_t s = 0; s < wire_shards_.size(); ++s) {
    // Independent verdict stream per shard, split deterministically from
    // the injector seed: one shard's traffic never perturbs another's
    // draws, so any fixed shard count replays byte-identically.
    wire_shards_[s].rng = wire_rng_.split();
    wire_shards_[s].sim = &sharded_->shard(s);
  }
}

void FaultInjector::set_shard_recorder(std::size_t shard,
                                       obs::FlightRecorder* recorder) {
  if (shard >= wire_shards_.size()) {
    throw std::out_of_range("FaultInjector: shard recorder index");
  }
  wire_shards_[shard].recorder = recorder;
}

void FaultInjector::plan_at(sim::SimTime at, std::function<void()> fn) {
  if (sharded_ != nullptr && sharded_->shard_count() > 1) {
    // Global tasks run on the coordinator with every shard parked, which
    // is what makes blackholed_/regions_ writes visible to all wire paths.
    sharded_->post_global(0, at, std::move(fn));
    return;
  }
  simulation_.schedule_at(at, std::move(fn));
}

void FaultInjector::plan_in(sim::SimTime delay, std::function<void()> fn) {
  plan_at(simulation_.now() + delay, std::move(fn));
}

void FaultInjector::set_control_corruptor(std::function<bool()> corrupt,
                                          std::function<void()> restore) {
  corrupt_ = std::move(corrupt);
  restore_ = std::move(restore);
}

void FaultInjector::link_metrics(obs::MetricsRegistry& registry) const {
  if (sharded_wire()) {
    // Per-shard wire counters merged at snapshot time (call after
    // set_sharded; reads happen between windows, so no synchronization).
    registry.link_counter_fn("fault.messages_lost", [this] {
      std::uint64_t total = messages_lost_.value();
      for (const WireShard& w : wire_shards_) total += w.lost;
      return total;
    });
    registry.link_counter_fn("fault.messages_duplicated", [this] {
      std::uint64_t total = messages_duplicated_.value();
      for (const WireShard& w : wire_shards_) total += w.duplicated;
      return total;
    });
    registry.link_counter_fn("fault.latency_spikes", [this] {
      std::uint64_t total = latency_spikes_.value();
      for (const WireShard& w : wire_shards_) total += w.spikes;
      return total;
    });
    registry.link_counter_fn("fault.partition_dropped", [this] {
      std::uint64_t total = partition_dropped_.value();
      for (const WireShard& w : wire_shards_) total += w.partition_dropped;
      return total;
    });
  } else {
    registry.link_counter("fault.messages_lost", messages_lost_);
    registry.link_counter("fault.messages_duplicated", messages_duplicated_);
    registry.link_counter("fault.latency_spikes", latency_spikes_);
    registry.link_counter("fault.partition_dropped", partition_dropped_);
  }
  registry.link_counter("fault.partitions_started", partitions_started_);
  registry.link_counter("fault.partitions_healed", partitions_healed_);
  registry.link_counter("fault.controller_crashes", controller_crashes_);
  registry.link_counter("fault.backend_crashes", backend_crashes_);
  registry.link_counter("fault.aggregator_crashes", aggregator_crashes_);
  registry.link_counter("fault.pna_crashes", pna_crashes_);
  registry.link_counter("fault.pna_hangs", pna_hangs_);
  registry.link_counter("fault.control_corruptions", control_corruptions_);
}

void FaultInjector::start() {
  if (started_) throw std::logic_error("FaultInjector::start called twice");
  started_ = true;

  for (const sim::SimTime at : options_.controller_crash_at) {
    if (at <= simulation_.now()) continue;
    plan_at(at, [this] {
      if (!controller_crash_) return;
      ++controller_crashes_;
      emit(obs::TraceEventKind::kFaultCrash, obs::TraceComponent::kController,
           0, 0);
      controller_crash_();
      plan_in(options_.controller_downtime, [this] {
        emit(obs::TraceEventKind::kFaultRestart,
             obs::TraceComponent::kController, 0, 0);
        controller_restart_();
      });
    });
  }
  for (const sim::SimTime at : options_.backend_crash_at) {
    if (at <= simulation_.now()) continue;
    plan_at(at, [this] {
      if (!backend_crash_) return;
      ++backend_crashes_;
      emit(obs::TraceEventKind::kFaultCrash, obs::TraceComponent::kBackend, 0,
           0);
      backend_crash_();
      plan_in(options_.backend_downtime, [this] {
        emit(obs::TraceEventKind::kFaultRestart,
             obs::TraceComponent::kBackend, 0, 0);
        backend_restart_();
      });
    });
  }

  arm_poisson(options_.partitions_per_hour, [this] { start_partition(); });
  arm_poisson(options_.aggregator_crashes_per_hour,
              [this] { crash_aggregator(); });
  arm_poisson(options_.pna_crashes_per_hour, [this] { fire_pna(false); });
  arm_poisson(options_.pna_hangs_per_hour, [this] { fire_pna(true); });
  arm_poisson(options_.control_corruptions_per_hour,
              [this] { fire_corruption(); });
}

void FaultInjector::arm_poisson(double per_hour, std::function<void()> action) {
  if (per_hour <= 0.0) return;
  const double gap_s = plan_rng_.exponential(3600.0 / per_hour);
  plan_in(sim::SimTime::from_seconds(gap_s),
          [this, per_hour, action = std::move(action)]() mutable {
            action();
            arm_poisson(per_hour, std::move(action));
          });
}

void FaultInjector::set_blackholed(net::NodeId id, bool on) {
  if (id >= blackholed_.size()) blackholed_.resize(id + 1, 0);
  blackholed_[id] = on ? 1 : 0;
}

void FaultInjector::start_partition() {
  // Deterministic victim pick among regions that are neither already cut
  // off nor down (a crashed aggregator's region has nothing to black-hole).
  std::vector<std::size_t> candidates;
  candidates.reserve(regions_.size());
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (!regions_[i].partitioned && !regions_[i].crashed) candidates.push_back(i);
  }
  if (candidates.empty()) return;
  const std::size_t index = candidates[static_cast<std::size_t>(
      plan_rng_.uniform_u64(candidates.size()))];
  Region& region = regions_[index];
  region.partitioned = true;
  set_blackholed(region.node, true);
  ++active_partitions_;
  ++partitions_started_;
  emit(obs::TraceEventKind::kFaultPartitionStart, obs::TraceComponent::kNetwork,
       index, region.node);
  plan_in(options_.partition_duration, [this, index] {
    Region& healed = regions_[index];
    healed.partitioned = false;
    set_blackholed(healed.node, false);
    --active_partitions_;
    ++partitions_healed_;
    emit(obs::TraceEventKind::kFaultPartitionEnd,
         obs::TraceComponent::kNetwork, index, healed.node);
  });
}

void FaultInjector::crash_aggregator() {
  std::vector<std::size_t> candidates;
  candidates.reserve(regions_.size());
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (!regions_[i].crashed) candidates.push_back(i);
  }
  if (candidates.empty()) return;
  const std::size_t index = candidates[static_cast<std::size_t>(
      plan_rng_.uniform_u64(candidates.size()))];
  Region& region = regions_[index];
  region.crashed = true;
  if (region.crash) region.crash();
  ++aggregator_crashes_;
  emit(obs::TraceEventKind::kFaultCrash, obs::TraceComponent::kAggregator,
       index, region.node);
  plan_in(options_.aggregator_downtime, [this, index] {
    Region& revived = regions_[index];
    revived.crashed = false;
    if (revived.restart) revived.restart();
    emit(obs::TraceEventKind::kFaultRestart, obs::TraceComponent::kAggregator,
         index, revived.node);
  });
}

void FaultInjector::fire_pna(bool hang) {
  if (!pna_fault_) return;
  const std::uint64_t pick = plan_rng_.engine().next();
  if (!pna_fault_(pick, hang, options_.pna_hang_duration)) return;
  if (hang) {
    ++pna_hangs_;
    emit(obs::TraceEventKind::kFaultPnaHang, obs::TraceComponent::kPna, pick,
         static_cast<std::uint64_t>(options_.pna_hang_duration.micros()));
  } else {
    ++pna_crashes_;
    emit(obs::TraceEventKind::kFaultCrash, obs::TraceComponent::kPna, pick, 0);
  }
}

void FaultInjector::fire_corruption() {
  if (!corrupt_ || !corrupt_()) return;
  ++control_corruptions_;
  emit(obs::TraceEventKind::kFaultControlCorrupted,
       obs::TraceComponent::kController, 0, 0);
  plan_in(options_.corrupt_exposure, [this] {
    if (restore_) restore_();
  });
}

FaultInjector::Stats FaultInjector::stats() const {
  Stats s;
  s.messages_lost = messages_lost_.value();
  s.messages_duplicated = messages_duplicated_.value();
  s.latency_spikes = latency_spikes_.value();
  s.partition_dropped = partition_dropped_.value();
  s.tracked_lost = tracked_lost_.value();
  s.tracked_duplicated = tracked_duplicated_.value();
  for (const WireShard& wire : wire_shards_) {
    s.messages_lost += wire.lost;
    s.messages_duplicated += wire.duplicated;
    s.latency_spikes += wire.spikes;
    s.partition_dropped += wire.partition_dropped;
    s.tracked_lost += wire.tracked_lost;
    s.tracked_duplicated += wire.tracked_duplicated;
  }
  s.partitions_started = partitions_started_.value();
  s.partitions_healed = partitions_healed_.value();
  s.controller_crashes = controller_crashes_.value();
  s.backend_crashes = backend_crashes_.value();
  s.aggregator_crashes = aggregator_crashes_.value();
  s.pna_crashes = pna_crashes_.value();
  s.pna_hangs = pna_hangs_.value();
  s.control_corruptions = control_corruptions_.value();
  return s;
}

net::SendInterposer::Action FaultInjector::on_send(
    net::NodeId from, net::NodeId to, const net::Message& message,
    std::size_t src_shard) {
  if (sharded_wire()) {
    return on_send_sharded(from, to, message, src_shard);
  }
  Action action;
  // A partitioned region is a hard black hole: nothing in or out. This
  // draws nothing from the wire stream, so healing a partition rejoins the
  // deterministic per-message draw sequence unchanged.
  if (active_partitions_ != 0 && (blackholed(from) || blackholed(to))) {
    action.drop = true;
    ++partition_dropped_;
    if (tracked(message)) ++tracked_lost_;
    emit(obs::TraceEventKind::kFaultMessageLost, obs::TraceComponent::kNetwork,
         to, static_cast<std::uint64_t>(message.tag()));
    return action;
  }
  // One fixed draw order per message; a lost message short-circuits so the
  // duplication/spike draws stay aligned across replays.
  if (options_.message_loss > 0.0 && wire_rng_.bernoulli(options_.message_loss)) {
    action.drop = true;
    ++messages_lost_;
    if (tracked(message)) ++tracked_lost_;
    emit(obs::TraceEventKind::kFaultMessageLost, obs::TraceComponent::kNetwork,
         to, static_cast<std::uint64_t>(message.tag()));
    return action;
  }
  if (options_.message_duplication > 0.0 &&
      wire_rng_.bernoulli(options_.message_duplication)) {
    action.duplicate = true;
    ++messages_duplicated_;
    if (tracked(message)) ++tracked_duplicated_;
    emit(obs::TraceEventKind::kFaultMessageDuplicated,
         obs::TraceComponent::kNetwork, to,
         static_cast<std::uint64_t>(message.tag()));
  }
  if (options_.latency_spike_probability > 0.0 &&
      wire_rng_.bernoulli(options_.latency_spike_probability)) {
    action.extra_latency = sim::SimTime::from_seconds(
        wire_rng_.exponential(options_.latency_spike_mean.seconds()));
    ++latency_spikes_;
    emit(obs::TraceEventKind::kFaultLatencySpike, obs::TraceComponent::kNetwork,
         to, static_cast<std::uint64_t>(action.extra_latency.micros()));
  }
  return action;
}

net::SendInterposer::Action FaultInjector::on_send_sharded(
    net::NodeId from, net::NodeId to, const net::Message& message,
    std::size_t src_shard) {
  // Same verdict sequence as the classic path, but every mutable touch —
  // RNG draws, counters, trace emission, even the clock read — belongs to
  // the source shard; blackholed_/active_partitions_ are only *read* here
  // (they mutate exclusively at window boundaries via plan events).
  Action action;
  WireShard& wire = wire_shards_[src_shard];
  if (active_partitions_ != 0 && (blackholed(from) || blackholed(to))) {
    action.drop = true;
    ++wire.partition_dropped;
    if (tracked(message)) ++wire.tracked_lost;
    emit_wire(src_shard, obs::TraceEventKind::kFaultMessageLost, to,
              static_cast<std::uint64_t>(message.tag()));
    return action;
  }
  if (options_.message_loss > 0.0 &&
      wire.rng.bernoulli(options_.message_loss)) {
    action.drop = true;
    ++wire.lost;
    if (tracked(message)) ++wire.tracked_lost;
    emit_wire(src_shard, obs::TraceEventKind::kFaultMessageLost, to,
              static_cast<std::uint64_t>(message.tag()));
    return action;
  }
  if (options_.message_duplication > 0.0 &&
      wire.rng.bernoulli(options_.message_duplication)) {
    action.duplicate = true;
    ++wire.duplicated;
    if (tracked(message)) ++wire.tracked_duplicated;
    emit_wire(src_shard, obs::TraceEventKind::kFaultMessageDuplicated, to,
              static_cast<std::uint64_t>(message.tag()));
  }
  if (options_.latency_spike_probability > 0.0 &&
      wire.rng.bernoulli(options_.latency_spike_probability)) {
    action.extra_latency = sim::SimTime::from_seconds(
        wire.rng.exponential(options_.latency_spike_mean.seconds()));
    ++wire.spikes;
    emit_wire(src_shard, obs::TraceEventKind::kFaultLatencySpike, to,
              static_cast<std::uint64_t>(action.extra_latency.micros()));
  }
  return action;
}

void FaultInjector::emit(obs::TraceEventKind kind,
                         obs::TraceComponent component, std::uint64_t actor,
                         std::uint64_t arg) {
  if (recorder_ == nullptr) return;
  recorder_->emit(simulation_.now(), kind, component, {}, actor, arg);
}

void FaultInjector::emit_wire(std::size_t shard, obs::TraceEventKind kind,
                              std::uint64_t actor, std::uint64_t arg) {
  WireShard& wire = wire_shards_[shard];
  if (wire.recorder == nullptr) return;
  wire.recorder->emit(wire.sim->now(), kind, obs::TraceComponent::kNetwork,
                      {}, actor, arg);
}

}  // namespace oddci::fault

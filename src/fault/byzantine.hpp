#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

/// Adversarial PNA profiles.
///
/// PR 5's injector models *crash/omission* faults — messages lost, nodes
/// down. An open receiver population also contains *Byzantine* nodes that
/// stay perfectly live on the wire while lying about the work: result
/// forgers (compute, then corrupt the payload before upload), free-riders
/// (accept tasks, never compute, return instantly with garbage), and
/// colluding groups that share a forgery seed so their wrong answers
/// *agree* — the case that defeats naive 2-way voting.
///
/// The profile assignment is a deterministic table built once at system
/// construction from a named stream of the fault seed
/// (`util::stream_seed(fault_seed, "fault.byzantine")`): each receiver
/// index is classified by a pure SplitMix64 hash against the configured
/// fractions, so the table is identical for any shard count and costs no
/// live RNG draws — enabling Byzantine profiles never perturbs the PR 5
/// fault plan or wire verdict streams. Colluders are recruited from the
/// forgers of a single aggregator region (collusion is modeled as
/// region-correlated: one neighborhood, one modified firmware image),
/// which is exactly the correlation the Backend's replica routing is told
/// to avoid.
///
/// This layer never includes core headers; the digest helpers below are
/// pure functions over (instance, task index) that core/verify.cpp and
/// core/pna.cpp share as the canonical result-digest model.
namespace oddci::fault {

enum class ByzantineProfile : std::uint8_t {
  kHonest = 0,
  kForger,     ///< computes on time, uploads a corrupted digest
  kFreeRider,  ///< skips the compute, returns garbage immediately
  kColluder,   ///< forger sharing the group forgery seed
};

[[nodiscard]] std::string_view to_string(ByzantineProfile profile);

/// Canonical digest of an honestly computed result for (instance, task).
/// The simulation does not carry real payload bytes, so the digest *is*
/// the result: a pure mix of the task identity that every honest replica
/// reproduces exactly (byte-for-byte quorum agreement) and that the
/// Backend can precompute for seeded spot-check tasks.
[[nodiscard]] constexpr std::uint64_t honest_result_digest(
    std::uint64_t instance, std::uint64_t task_index) {
  util::SplitMix64 mix(instance ^ 0x9E3779B97F4A7C15ull);
  const std::uint64_t a = mix.next();
  util::SplitMix64 mix2(a ^ task_index);
  return mix2.next() | 1ull;  // never 0: 0 means "no digest on the wire"
}

/// A forged result: deterministic in (forge_seed, instance, task), wrong
/// with overwhelming probability, and *equal across forgers that share
/// forge_seed* — that sharing is what makes a colluding group dangerous.
[[nodiscard]] constexpr std::uint64_t forged_result_digest(
    std::uint64_t forge_seed, std::uint64_t instance,
    std::uint64_t task_index) {
  util::SplitMix64 mix(forge_seed ^
                       honest_result_digest(instance, task_index));
  return mix.next() | 1ull;
}

/// Deterministic per-receiver profile table.
class ByzantineTable {
 public:
  /// `regions[i]` is receiver i's aggregator region (the collusion
  /// correlation key); empty regions are treated as a single region 0.
  ByzantineTable(std::uint64_t seed, std::size_t receivers,
                 double forger_fraction, double freerider_fraction,
                 std::size_t collusion_size,
                 const std::vector<std::uint32_t>& regions);

  [[nodiscard]] std::size_t size() const { return profiles_.size(); }
  [[nodiscard]] ByzantineProfile profile(std::size_t receiver_index) const {
    return receiver_index < profiles_.size() ? profiles_[receiver_index]
                                             : ByzantineProfile::kHonest;
  }
  /// Forgery seed for a non-honest receiver: colluders share the group
  /// seed, every other adversary gets a private one (their garbage never
  /// agrees with anyone's).
  [[nodiscard]] std::uint64_t forge_seed(std::size_t receiver_index) const;

  [[nodiscard]] bool active() const {
    return forgers_ + freeriders_ + colluders_ > 0;
  }
  [[nodiscard]] std::size_t forgers() const { return forgers_; }
  [[nodiscard]] std::size_t freeriders() const { return freeriders_; }
  [[nodiscard]] std::size_t colluders() const { return colluders_; }
  [[nodiscard]] std::size_t adversaries() const {
    return forgers_ + freeriders_ + colluders_;
  }
  /// Receiver indices of the colluding group (ascending).
  [[nodiscard]] const std::vector<std::size_t>& collusion_group() const {
    return collusion_group_;
  }

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t group_seed_ = 0;
  std::vector<ByzantineProfile> profiles_;
  std::vector<std::size_t> collusion_group_;
  std::size_t forgers_ = 0;
  std::size_t freeriders_ = 0;
  std::size_t colluders_ = 0;
};

}  // namespace oddci::fault

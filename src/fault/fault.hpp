#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "net/network.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/sharded.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

/// Deterministic fault injection.
///
/// The paper's availability claim rests on surviving uncoordinated device
/// churn, but real deployments also face lossy return channels, regional
/// outages, and server crashes. This subsystem composes those faults from a
/// single seeded plan so every failure scenario is replayable: the same
/// seed produces the same faults at the same sim times against the same
/// victims, and the recovery machinery they flush out (PNA result retry,
/// aggregator failover, Controller crash recovery, Backend retry caps) can
/// be asserted on byte-identical exports.
///
/// Two pseudo-random streams, both derived from the one injector seed:
///  * the *plan* stream draws Poisson interarrival gaps and victim picks
///    for scheduled faults (partitions, crashes, hangs, corruption);
///  * the *wire* stream draws the per-message loss/duplication/latency
///    verdicts inside `net::Network::send`.
/// Splitting them keeps message-level noise from perturbing the schedule
/// of the big structural faults.
namespace oddci::fault {

/// Fault-matrix configuration. All knobs default to "off": an enabled
/// injector with default options interposes on the network but never
/// fires, which is useful for A/B-ing the interposition overhead alone.
struct FaultOptions {
  /// Master switch: when false the system builds no injector at all and
  /// is event-trajectory-identical to a tree without this subsystem.
  bool enabled = false;
  /// Injector seed; 0 derives one from the system seed.
  std::uint64_t seed = 0;

  // --- direct-channel faults (interposed per message in Network::send) ---
  double message_loss = 0.0;          ///< P(message silently dropped)
  double message_duplication = 0.0;   ///< P(message delivered twice)
  double latency_spike_probability = 0.0;
  /// Mean of the exponential extra delay added on a latency spike.
  sim::SimTime latency_spike_mean = sim::SimTime::from_millis(500);

  // --- regional partitions (black-hole one aggregator's node) ---
  double partitions_per_hour = 0.0;
  sim::SimTime partition_duration = sim::SimTime::from_seconds(120);

  // --- crash-restart of the servers ---
  /// Absolute sim times at which the Controller crashes (one-shot each).
  std::vector<sim::SimTime> controller_crash_at;
  sim::SimTime controller_downtime = sim::SimTime::from_seconds(30);
  std::vector<sim::SimTime> backend_crash_at;
  sim::SimTime backend_downtime = sim::SimTime::from_seconds(30);
  double aggregator_crashes_per_hour = 0.0;
  sim::SimTime aggregator_downtime = sim::SimTime::from_seconds(60);

  // --- PNA process faults ---
  double pna_crashes_per_hour = 0.0;  ///< kill + immediate watchdog relaunch
  double pna_hangs_per_hour = 0.0;    ///< freeze, then watchdog kill+relaunch
  sim::SimTime pna_hang_duration = sim::SimTime::from_seconds(60);

  // --- Byzantine receiver profiles (see fault/byzantine.hpp) ---
  /// Fraction of receivers that compute but upload corrupted results.
  double byzantine_forger_fraction = 0.0;
  /// Fraction that accept tasks and return garbage instantly, never
  /// computing (they still heartbeat like honest members).
  double byzantine_freerider_fraction = 0.0;
  /// Size of one colluding group sharing a forgery seed (their wrong
  /// answers agree, defeating naive 2-way voting). 0 disables; >= 2
  /// otherwise. Recruited from a single aggregator region.
  std::size_t byzantine_collusion_size = 0;

  // --- control-plane corruption (tampered signed config on the air) ---
  double control_corruptions_per_hour = 0.0;
  /// How long the tampered configuration stays on air before the
  /// legitimate generation is restored.
  sim::SimTime corrupt_exposure = sim::SimTime::from_seconds(2);

  // --- recovery knobs (wired into the components by the system harness) ---
  /// Bounded PNA result-upload retry: attempts before giving up (the
  /// Backend's timeout sweep then re-dispatches the task).
  int result_retry_limit = 4;
  /// First retry delay; doubles per attempt, with deterministic jitter.
  sim::SimTime result_retry_base = sim::SimTime::from_seconds(2);
  /// A busy PNA whose task request went unanswered re-polls after this.
  sim::SimTime request_watchdog = sim::SimTime::from_seconds(45);
  /// Backend per-task requeue cap; a task re-queued this many times is
  /// reported failed instead of silently re-dispatched forever.
  int task_retry_cap = 16;
  /// Controller voids a silent aggregator from the heartbeat routing after
  /// this long without a consolidated report (PNAs re-home to the
  /// Controller); a resumed report restores it.
  sim::SimTime aggregator_failover_timeout = sim::SimTime::from_seconds(60);

  void validate() const;
};

/// Seeded fault driver. Owns the fault plan (scheduled as ordinary sim
/// events) and interposes on every direct-channel send; the actual
/// crash/restart mechanics live in the components and are reached through
/// registered hooks, so the injector never includes core headers.
class FaultInjector final : public net::SendInterposer {
 public:
  using Hook = std::function<void()>;
  /// Applies a hang (duration > 0) or crash to a PNA chosen from `pick`
  /// (an unbounded uniform draw; the callee reduces it to a victim).
  /// Returns false when no eligible victim exists.
  using PnaFaultFn =
      std::function<bool(std::uint64_t pick, bool hang, sim::SimTime duration)>;

  FaultInjector(sim::Simulation& simulation, const FaultOptions& options,
                std::uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void set_controller_hooks(Hook crash, Hook restart);
  void set_backend_hooks(Hook crash, Hook restart);
  /// Declare one aggregator region: its direct-channel node (black-holed
  /// during a partition) and its crash/restart hooks.
  void add_region(net::NodeId aggregator_node, Hook crash, Hook restart);
  void set_pna_fault(PnaFaultFn fn);
  /// `corrupt` puts a tampered control message on the air (returns false
  /// when nothing is on air); `restore` brings the legitimate one back.
  void set_control_corruptor(std::function<bool()> corrupt,
                             std::function<void()> restore);

  /// Attach a flight recorder: every injected fault is emitted as a
  /// fault.* trace event. nullptr detaches.
  void set_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  /// Attach the sharded kernel (call before start() and before any send is
  /// interposed). With more than one shard the plan runs as global tasks at
  /// window boundaries — every shard parked, so partition state mutates
  /// race-free — and each shard gets its own wire stream and counters so
  /// per-message verdicts never contend across threads.
  void set_sharded(sim::ShardedSimulation* sharded);

  /// Wire-fault trace events for sends originating on `shard` go to this
  /// recorder (plan-level faults still use set_recorder's). Only meaningful
  /// after set_sharded with >1 shard.
  void set_shard_recorder(std::size_t shard, obs::FlightRecorder* recorder);

  /// Expose the fault.* counters in `registry`. The injector must outlive
  /// snapshot() calls.
  void link_metrics(obs::MetricsRegistry& registry) const;

  /// Count wire faults against messages with this tag separately
  /// (Stats::tracked_lost / tracked_duplicated). The system passes the
  /// heartbeat tag as a plain int — consistent with this layer never
  /// including core headers — so the health auditor can balance the
  /// heartbeat stream. -1 disables.
  void set_tracked_tag(int tag) { tracked_tag_ = tag; }

  /// Build and schedule the seeded plan: the one-shot crash events and the
  /// Poisson chains for partitions, aggregator crashes, PNA faults, and
  /// control corruption. Call once, after all hooks are registered.
  void start();

  struct Stats {
    std::uint64_t messages_lost = 0;
    std::uint64_t messages_duplicated = 0;
    std::uint64_t latency_spikes = 0;
    std::uint64_t partition_dropped = 0;
    /// Tracked-tag slice of the wire faults (losses include partition
    /// drops); see set_tracked_tag.
    std::uint64_t tracked_lost = 0;
    std::uint64_t tracked_duplicated = 0;
    std::uint64_t partitions_started = 0;
    std::uint64_t partitions_healed = 0;
    std::uint64_t controller_crashes = 0;
    std::uint64_t backend_crashes = 0;
    std::uint64_t aggregator_crashes = 0;
    std::uint64_t pna_crashes = 0;
    std::uint64_t pna_hangs = 0;
    std::uint64_t control_corruptions = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Regions currently black-holed (diagnostics/tests).
  [[nodiscard]] std::size_t active_partitions() const {
    return active_partitions_;
  }

  // --- net::SendInterposer ---------------------------------------------------
  Action on_send(net::NodeId from, net::NodeId to, const net::Message& message,
                 std::size_t src_shard) override;

 private:
  /// One shard's wire-fault state: its own verdict stream, counters and
  /// clock, all touched only by the thread running that shard's window.
  struct alignas(64) WireShard {
    util::Random rng{0};
    sim::Simulation* sim = nullptr;
    obs::FlightRecorder* recorder = nullptr;
    std::uint64_t lost = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t spikes = 0;
    std::uint64_t partition_dropped = 0;
    std::uint64_t tracked_lost = 0;
    std::uint64_t tracked_duplicated = 0;
  };

  struct Region {
    net::NodeId node = net::kInvalidNode;
    Hook crash;
    Hook restart;
    bool partitioned = false;
    bool crashed = false;
  };

  [[nodiscard]] bool blackholed(net::NodeId id) const {
    return id < blackholed_.size() && blackholed_[id] != 0;
  }
  [[nodiscard]] bool tracked(const net::Message& message) const {
    return tracked_tag_ >= 0 && message.tag() == tracked_tag_;
  }
  void set_blackholed(net::NodeId id, bool on);

  /// Self-re-arming Poisson chain: fires `action` with exponential
  /// interarrival gaps of mean 3600/per_hour seconds, forever.
  void arm_poisson(double per_hour, std::function<void()> action);

  /// Plan-event scheduling: classic kernel timers at K = 1, coordinator
  /// global tasks (all shards parked) under the sharded kernel.
  void plan_at(sim::SimTime at, std::function<void()> fn);
  void plan_in(sim::SimTime delay, std::function<void()> fn);
  [[nodiscard]] bool sharded_wire() const { return !wire_shards_.empty(); }

  void start_partition();
  void crash_aggregator();
  void fire_pna(bool hang);
  void fire_corruption();

  [[nodiscard]] Action on_send_sharded(net::NodeId from, net::NodeId to,
                                       const net::Message& message,
                                       std::size_t src_shard);

  void emit(obs::TraceEventKind kind, obs::TraceComponent component,
            std::uint64_t actor, std::uint64_t arg);
  void emit_wire(std::size_t shard, obs::TraceEventKind kind,
                 std::uint64_t actor, std::uint64_t arg);

  sim::Simulation& simulation_;
  FaultOptions options_;
  util::Random rng_;
  util::Random plan_rng_;
  util::Random wire_rng_;
  sim::ShardedSimulation* sharded_ = nullptr;
  /// Non-empty exactly when the kernel has >1 shard.
  std::vector<WireShard> wire_shards_;

  Hook controller_crash_;
  Hook controller_restart_;
  Hook backend_crash_;
  Hook backend_restart_;
  std::vector<Region> regions_;
  PnaFaultFn pna_fault_;
  std::function<bool()> corrupt_;
  std::function<void()> restore_;

  /// Dense by node id (aggregator nodes are small by construction);
  /// consulted per send only while a partition is active.
  std::vector<char> blackholed_;
  std::size_t active_partitions_ = 0;
  bool started_ = false;

  int tracked_tag_ = -1;
  obs::Counter tracked_lost_;
  obs::Counter tracked_duplicated_;

  obs::Counter messages_lost_;
  obs::Counter messages_duplicated_;
  obs::Counter latency_spikes_;
  obs::Counter partition_dropped_;
  obs::Counter partitions_started_;
  obs::Counter partitions_healed_;
  obs::Counter controller_crashes_;
  obs::Counter backend_crashes_;
  obs::Counter aggregator_crashes_;
  obs::Counter pna_crashes_;
  obs::Counter pna_hangs_;
  obs::Counter control_corruptions_;

  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace oddci::fault

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/quantity.hpp"

/// Executable comparator models for Table I.
///
/// The paper's Table I is a qualitative matrix: which of the three
/// requirements (extremely high scalability, efficient setup, on-demand
/// instantiation) each technology class meets. To *regenerate* rather than
/// transcribe it, each technology is modelled just finely enough to answer
/// three measurable questions:
///   1. how long does it take to assemble N productive workers?
///   2. how many specialized per-node interventions does that require?
///   3. can the pool be re-targeted to a new application on demand, and how
///      long does that take?
/// A judge then applies uniform thresholds to produce the check marks.
namespace oddci::baseline {

struct AssemblyResult {
  bool achievable = false;
  double seconds = 0.0;              ///< time until N workers are productive
  double interventions = 0.0;        ///< specialized per-node interventions
};

class InfrastructureModel {
 public:
  virtual ~InfrastructureModel() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Assemble a pool of `nodes` workers for a fresh application.
  [[nodiscard]] virtual AssemblyResult assemble(std::size_t nodes) const = 0;

  /// The largest pool the technology can practically reach.
  [[nodiscard]] virtual std::size_t scale_limit() const = 0;

  /// Whether a pool can be instantiated for one application, for a bounded
  /// time, and then released/reassigned without per-owner renegotiation.
  [[nodiscard]] virtual bool on_demand() const = 0;

  /// Time to re-target an existing pool of `nodes` to a different
  /// application (software swap).
  [[nodiscard]] virtual double reconfigure_seconds(
      std::size_t nodes) const = 0;
};

/// Voluntary computing (SETI@home/BOINC-style): enormous reachable scale,
/// but growth is driven by a recruitment campaign whose rate the provider
/// does not control, and retargeting requires volunteers to opt in.
class VoluntaryComputingModel final : public InfrastructureModel {
 public:
  struct Params {
    double peak_joins_per_day = 5000.0;  ///< campaign steady-state rate
    double ramp_days = 30.0;             ///< logistic ramp to the peak
    std::size_t reachable_population = 200'000'000;
    /// Each volunteer performs the (simple) install themselves.
    double interventions_per_node = 0.0;
    /// Fraction of existing volunteers who opt in when a new application
    /// is announced (BOINC project attach).
    double retarget_opt_in = 0.3;
    double retarget_campaign_days = 14.0;
  };

  VoluntaryComputingModel() : VoluntaryComputingModel(Params{}) {}
  explicit VoluntaryComputingModel(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override {
    return "voluntary-computing";
  }
  [[nodiscard]] AssemblyResult assemble(std::size_t nodes) const override;
  [[nodiscard]] std::size_t scale_limit() const override {
    return params_.reachable_population;
  }
  [[nodiscard]] bool on_demand() const override { return false; }
  [[nodiscard]] double reconfigure_seconds(std::size_t nodes) const override;

 private:
  Params params_;
};

/// Desktop grid (Condor/OurGrid-style): genuinely on-demand, but every node
/// crosses an administrative boundary, so setup costs admin time per node
/// and the federation has a practical ceiling.
class DesktopGridModel final : public InfrastructureModel {
 public:
  struct Params {
    double admin_seconds_per_node = 300.0;  ///< install/configure/trust
    double parallel_admins = 10.0;
    std::size_t federation_ceiling = 30'000;
    double software_swap_seconds_per_node = 30.0;
  };

  DesktopGridModel() : DesktopGridModel(Params{}) {}
  explicit DesktopGridModel(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "desktop-grid"; }
  [[nodiscard]] AssemblyResult assemble(std::size_t nodes) const override;
  [[nodiscard]] std::size_t scale_limit() const override {
    return params_.federation_ceiling;
  }
  [[nodiscard]] bool on_demand() const override { return true; }
  [[nodiscard]] double reconfigure_seconds(std::size_t nodes) const override;

 private:
  Params params_;
};

/// IaaS (EC2-style, 2009 vintage): fully on-demand and zero-touch, but VM
/// provisioning concurrency, account quotas and the shared image/storage
/// service bound the practical pool size.
class IaasModel final : public InfrastructureModel {
 public:
  struct Params {
    double vm_boot_seconds = 120.0;
    double provisioning_concurrency = 500.0;  ///< simultaneous API launches
    std::size_t quota = 10'000;
    /// Shared storage serving the image: effective aggregate throughput.
    util::BitRate storage_throughput = util::BitRate::from_mbps(100'000.0);
    util::Bits vm_image = util::Bits::from_megabytes(1024);
  };

  IaasModel() : IaasModel(Params{}) {}
  explicit IaasModel(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "iaas"; }
  [[nodiscard]] AssemblyResult assemble(std::size_t nodes) const override;
  [[nodiscard]] std::size_t scale_limit() const override {
    return params_.quota;
  }
  [[nodiscard]] bool on_demand() const override { return true; }
  [[nodiscard]] double reconfigure_seconds(std::size_t nodes) const override;

 private:
  Params params_;
};

/// OddCI over a broadcast network: assembly time is the wakeup process,
/// 1.5·I/beta, independent of N up to the tuned population.
class OddciModel final : public InfrastructureModel {
 public:
  struct Params {
    util::BitRate beta = util::BitRate::from_mbps(1.0);
    util::Bits image = util::Bits::from_megabytes(10);
    std::size_t tuned_population = 100'000'000;
  };

  OddciModel() : OddciModel(Params{}) {}
  explicit OddciModel(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "oddci"; }
  [[nodiscard]] AssemblyResult assemble(std::size_t nodes) const override;
  [[nodiscard]] std::size_t scale_limit() const override {
    return params_.tuned_population;
  }
  [[nodiscard]] bool on_demand() const override { return true; }
  [[nodiscard]] double reconfigure_seconds(std::size_t nodes) const override;

 private:
  Params params_;
};

/// Uniform requirement thresholds applied to every model.
struct JudgeThresholds {
  /// "Extremely high scalability": the technology can reach pools of at
  /// least this many nodes (regardless of how long the ramp takes —
  /// voluntary computing qualifies even though recruitment is slow).
  std::size_t scale_nodes = 1'000'000;
  /// "Efficient setup" is judged at this probe size (capped at the
  /// technology's own ceiling): zero specialized per-node interventions
  /// and completion within `setup_seconds`.
  std::size_t setup_probe_nodes = 10'000;
  double setup_seconds = 3600.0;
};

struct RequirementVerdict {
  std::string technology;
  bool extremely_high_scalability = false;
  bool efficient_setup = false;
  bool on_demand_instantiation = false;
  /// Raw evidence (for the bench's detail rows).
  double assemble_1e2_seconds = 0.0;
  double assemble_1e6_seconds = 0.0;
  double interventions_1e6 = 0.0;
};

[[nodiscard]] RequirementVerdict judge(const InfrastructureModel& model,
                                       const JudgeThresholds& thresholds = {});

/// All four technology models with default parameters.
[[nodiscard]] std::vector<std::unique_ptr<InfrastructureModel>>
default_models();

}  // namespace oddci::baseline

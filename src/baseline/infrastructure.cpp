#include "baseline/infrastructure.hpp"

#include <algorithm>
#include <cmath>

namespace oddci::baseline {

namespace {
constexpr double kDaySeconds = 86400.0;
}

AssemblyResult VoluntaryComputingModel::assemble(std::size_t nodes) const {
  AssemblyResult r;
  if (nodes > params_.reachable_population) return r;
  r.achievable = true;
  // Logistic-ramped recruitment: rate(t) = peak / (1 + e^-(t - ramp)/tau).
  // Integrate numerically (day granularity) until the cumulative joins
  // reach `nodes`.
  const double tau = params_.ramp_days / 4.0;
  double joined = 0.0;
  double day = 0.0;
  while (joined < static_cast<double>(nodes) && day < 365.0 * 20.0) {
    const double rate =
        params_.peak_joins_per_day /
        (1.0 + std::exp(-(day - params_.ramp_days) / tau));
    joined += rate;
    day += 1.0;
  }
  r.seconds = day * kDaySeconds;
  r.interventions =
      params_.interventions_per_node * static_cast<double>(nodes);
  return r;
}

double VoluntaryComputingModel::reconfigure_seconds(std::size_t nodes) const {
  // Retargeting needs volunteers to explicitly attach the new project: a
  // fresh (shorter) campaign reaching nodes / opt_in volunteers.
  const auto needed = static_cast<std::size_t>(
      static_cast<double>(nodes) / params_.retarget_opt_in);
  (void)needed;
  return params_.retarget_campaign_days * kDaySeconds;
}

AssemblyResult DesktopGridModel::assemble(std::size_t nodes) const {
  AssemblyResult r;
  if (nodes > params_.federation_ceiling) return r;
  r.achievable = true;
  r.seconds = params_.admin_seconds_per_node *
              static_cast<double>(nodes) / params_.parallel_admins;
  r.interventions = static_cast<double>(nodes);  // one admin touch per node
  return r;
}

double DesktopGridModel::reconfigure_seconds(std::size_t nodes) const {
  return params_.software_swap_seconds_per_node *
         static_cast<double>(nodes) / params_.parallel_admins;
}

AssemblyResult IaasModel::assemble(std::size_t nodes) const {
  AssemblyResult r;
  if (nodes > params_.quota) return r;
  r.achievable = true;
  // Pipeline of `provisioning_concurrency` simultaneous boots, each gated
  // by its share of the image-serving storage throughput.
  const double image_s =
      static_cast<double>(params_.vm_image.count()) /
      (params_.storage_throughput.bps() / params_.provisioning_concurrency);
  const double per_vm = params_.vm_boot_seconds + image_s;
  const double waves = std::ceil(static_cast<double>(nodes) /
                                 params_.provisioning_concurrency);
  r.seconds = waves * per_vm;
  r.interventions = 0.0;
  return r;
}

double IaasModel::reconfigure_seconds(std::size_t nodes) const {
  // Re-imaging is a fresh launch of the same pool.
  return assemble(nodes).seconds;
}

AssemblyResult OddciModel::assemble(std::size_t nodes) const {
  AssemblyResult r;
  if (nodes > params_.tuned_population) return r;
  r.achievable = true;
  // The wakeup process: every tuned receiver loads the image from the
  // carousel concurrently — time does not depend on N.
  r.seconds = 1.5 * static_cast<double>(params_.image.count()) /
              params_.beta.bps();
  r.interventions = 0.0;
  return r;
}

double OddciModel::reconfigure_seconds(std::size_t nodes) const {
  // Reset + new wakeup: another broadcast cycle.
  return assemble(nodes).seconds;
}

RequirementVerdict judge(const InfrastructureModel& model,
                         const JudgeThresholds& thresholds) {
  RequirementVerdict v;
  v.technology = model.name();

  const AssemblyResult small = model.assemble(100);
  const AssemblyResult big = model.assemble(thresholds.scale_nodes);
  v.assemble_1e2_seconds = small.achievable ? small.seconds : -1.0;
  v.assemble_1e6_seconds = big.achievable ? big.seconds : -1.0;
  v.interventions_1e6 = big.achievable ? big.interventions : -1.0;

  v.extremely_high_scalability =
      big.achievable && model.scale_limit() >= thresholds.scale_nodes;

  // Setup efficiency is about the *process*, not the reachable scale: probe
  // at a size within the technology's own ceiling.
  const std::size_t probe =
      std::min(thresholds.setup_probe_nodes, model.scale_limit());
  const AssemblyResult probe_result = model.assemble(probe);
  v.efficient_setup = probe_result.achievable &&
                      probe_result.interventions == 0.0 &&
                      probe_result.seconds <= thresholds.setup_seconds;

  v.on_demand_instantiation = model.on_demand();
  return v;
}

std::vector<std::unique_ptr<InfrastructureModel>> default_models() {
  std::vector<std::unique_ptr<InfrastructureModel>> models;
  models.push_back(std::make_unique<VoluntaryComputingModel>());
  models.push_back(std::make_unique<DesktopGridModel>());
  models.push_back(std::make_unique<IaasModel>());
  models.push_back(std::make_unique<OddciModel>());
  return models;
}

}  // namespace oddci::baseline

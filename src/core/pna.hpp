#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/content_store.hpp"
#include "core/dve.hpp"
#include "core/messages.hpp"
#include "dtv/receiver.hpp"
#include "dtv/xlet.hpp"
#include "fault/byzantine.hpp"
#include "net/message_pool.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

/// Processing Node Agent (PNA).
///
/// The PNA is deployed as a trigger Xlet (AUTOSTART in the AIT): every
/// tuned receiver loads and starts it. It listens to the broadcast channel
/// for signed control messages, manages the DVE that runs the user image,
/// sends periodic heartbeats to the Controller over the direct channel, and
/// drives the Backend task-pull loop while busy.
namespace oddci::core {

/// Deployment-wide PNA configuration (what the carousel's configuration
/// file and the agent's build-time defaults provide).
struct PnaEnvironment {
  const ContentStore* content_store = nullptr;
  broadcast::SigningKey trusted_key = 0;
  std::string config_file = "oddci.config";
  /// Retry period for polling the Backend after a NoTask reply.
  sim::SimTime task_poll_interval = sim::SimTime::from_seconds(10);

  /// Population-wide counters shared by every agent of one system
  /// (nullable: standalone agents run uninstrumented). Per-agent PnaStats
  /// stay per-agent.
  obs::PnaCounters* counters = nullptr;
  /// Wakeup accept -> image acquired, across the population (nullable).
  obs::LogHistogram* acquire_latency = nullptr;
  /// Causal flight recorder shared by the population (nullable: tracing
  /// off). Agents emit receipt/decision/heartbeat/task events and carry
  /// contexts onto outgoing messages.
  obs::FlightRecorder* recorder = nullptr;

  /// Heartbeat pacing window (zero = off, the legacy fire-immediately
  /// path). With a window, every beat — periodic or event-driven — is
  /// deferred to this agent's deterministic phase slot within the window
  /// and beats that coalesce while one is pending are absorbed, so a
  /// population-wide wakeup storm spreads over the window instead of
  /// landing on the return channel in one burst.
  sim::SimTime heartbeat_pace_window;
  /// Root of the per-agent pacing phase (a dedicated named RNG stream, so
  /// enabling pacing never perturbs the population's draw sequences).
  std::uint64_t heartbeat_phase_seed = 0;

  // --- fan-out fast path (both nullable: agents fall back to the
  // per-message decode/verify/allocate slow path) ---------------------------

  /// Population-shared memoized signature verification: with N agents
  /// sharing one cache, a broadcast costs one keyed hash, not N.
  broadcast::VerifyCache* verify_cache = nullptr;
  /// Population-shared heartbeat recycling pool (see net::MessagePool).
  net::MessagePool<HeartbeatMessage>* heartbeat_pool = nullptr;

  // --- fault-injection recovery protocol (nullable: with no Recovery block
  // the agent speaks the zero-fault wire protocol, bit for bit) ---------------

  /// Bounded result-upload retry and task-request watchdog parameters,
  /// plus the population-wide recovery.* counters.
  struct Recovery {
    /// Retry attempts before an unacknowledged result is abandoned (the
    /// Backend's timeout sweep then re-dispatches the task).
    int result_retry_limit = 4;
    /// First retry delay; doubles per attempt, with deterministic jitter.
    sim::SimTime result_retry_base = sim::SimTime::from_seconds(2);
    /// A busy agent whose task request went unanswered re-asks after this
    /// (covers lost requests, lost assignments, and a crashed Backend).
    sim::SimTime request_watchdog = sim::SimTime::from_seconds(45);
    obs::Counter result_retries;
    obs::Counter request_retries;
  };
  Recovery* recovery = nullptr;

  // --- Byzantine adversary model (nullable: with no block attached the
  // agent stamps no result digests — the pre-verification wire bytes,
  // bit for bit) -------------------------------------------------------------

  /// Adversarial profile table plus the node-id base mapping node ids back
  /// to receiver indices. Attached when Byzantine profiles or verified
  /// execution are configured; honest agents then stamp the canonical
  /// digest on every result, adversaries follow their profile. A null
  /// `table` (verification on, zero adversaries) means everyone is honest.
  struct Byzantine {
    const fault::ByzantineTable* table = nullptr;
    net::NodeId base = 0;  ///< node id of receiver index 0
  };
  const Byzantine* byzantine = nullptr;
};

struct PnaStats {
  std::uint64_t control_messages_seen = 0;
  std::uint64_t signature_failures = 0;
  std::uint64_t wakeups_dropped_busy = 0;
  std::uint64_t wakeups_rejected_requirements = 0;
  std::uint64_t wakeups_dropped_probability = 0;
  std::uint64_t joins = 0;
  std::uint64_t resets = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t heartbeats_sent = 0;
};

class PnaXlet final : public dtv::Xlet, public dtv::CarouselAware {
 public:
  /// `environment` is shared by reference across the whole population and
  /// must outlive the Xlet (it is deployment-wide state: one copy per
  /// system, not one per agent).
  PnaXlet(const PnaEnvironment& environment, std::uint64_t seed);
  ~PnaXlet() override;

  // --- dtv::Xlet ----------------------------------------------------------
  void init_xlet(dtv::XletContext& context) override;
  void start_xlet() override;
  void pause_xlet() override;
  void destroy_xlet(bool unconditional) override;

  // --- dtv::CarouselAware ---------------------------------------------------
  void on_carousel_update(
      const broadcast::CarouselSnapshot& snapshot) override;

  // --- introspection ---------------------------------------------------------
  [[nodiscard]] PnaState state() const {
    if (dve_) return PnaState::kBusy;
    if (pending_join_) return PnaState::kJoining;
    return PnaState::kIdle;
  }
  [[nodiscard]] InstanceId instance() const {
    if (dve_) return dve_->instance();
    if (pending_join_) return *pending_join_;
    return kNoInstance;
  }
  [[nodiscard]] const Dve* dve() const { return dve_.get(); }
  [[nodiscard]] const PnaStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t pna_id() const;

  // --- fault injection -------------------------------------------------------

  /// Crash the agent process: every outstanding callback and timer dies,
  /// all state (DVE, pending join, pending result, heartbeat) is lost, and
  /// the middleware watchdog relaunches the trigger Xlet, which re-reads
  /// the on-air configuration. A mid-task crash sends no abort — the
  /// Backend's timeout sweep recovers the task. Returns false when the
  /// Xlet is not running.
  bool fault_crash();
  /// Freeze the agent for `duration`: timers and message handling stop
  /// (heartbeats go silent, the Controller prunes it as stale), then the
  /// watchdog kills and relaunches it like fault_crash(). Returns false
  /// when not running or already hung.
  bool fault_hang(sim::SimTime duration);

 private:
  void acquire_config();
  void handle_control(const ControlMessage& message);
  /// Fast-path entry: verification resolves against the shared
  /// canonical bytes/digest (memoized when a VerifyCache is attached).
  void handle_control(const PreparedControl& prepared);
  /// Post-verification dispatch common to both entry points.
  void dispatch_control(const ControlMessage& message);
  void handle_wakeup(const ControlMessage& message);
  void handle_reset(const ControlMessage& message);
  void join_instance(const ControlMessage& message);
  void leave_instance();

  void ensure_heartbeat(const ControlMessage& message);
  /// Pacing gate: immediate in the legacy path, deferred to this agent's
  /// phase slot (coalescing) when the environment sets a pace window.
  void send_heartbeat();
  /// Build and transmit the beat (the legacy send_heartbeat body).
  void send_heartbeat_now();

  void request_task();
  void schedule_task_poll();
  void on_direct_message(net::NodeId from, const net::MessagePtr& message);

  /// Schedule the next bounded-backoff retry of pending_result_.
  void arm_result_retry();
  /// Schedule the unanswered-task-request watchdog.
  void arm_request_watchdog();

  /// Emit a trace event (no-op returning {} when no recorder is attached).
  obs::TraceContext trace_emit(obs::TraceEventKind kind,
                               obs::TraceContext parent, std::uint64_t arg);

  /// Deployment-wide environment, shared (not copied) population-wide: at
  /// 1M agents an embedded copy is ~100 MB of identical bytes.
  const PnaEnvironment* env_;
  util::Random rng_;
  dtv::XletContext* context_ = nullptr;
  bool started_ = false;

  /// Guards async callbacks (carousel reads, scheduled polls) against the
  /// Xlet having been destroyed.
  std::shared_ptr<bool> alive_;

  std::unique_ptr<Dve> dve_;
  /// A wakeup accepted but whose image is still being read from the
  /// carousel; a reset or a competing wakeup cancels it.
  std::optional<InstanceId> pending_join_;

  net::NodeId controller_node_ = net::kInvalidNode;
  /// Where heartbeats go: the Controller itself, or this agent's shard
  /// aggregator when the control message configured an aggregation tier.
  net::NodeId heartbeat_target_ = net::kInvalidNode;
  net::NodeId backend_node_ = net::kInvalidNode;
  sim::PeriodicTask heartbeat_;
  bool heartbeat_running_ = false;
  /// A paced beat is already scheduled for this agent's next phase slot;
  /// further beats coalesce into it (the slot sends the *current* state).
  bool pace_pending_ = false;
  sim::SimTime heartbeat_interval_;
  /// Content ids of the last configuration handled and of the read in
  /// flight: the same broadcast generation announced twice (launch
  /// signalling) is acquired and processed once.
  std::uint64_t last_handled_content_ = 0;
  std::uint64_t pending_read_content_ = 0;

  std::optional<dtv::Receiver::ExecToken> running_exec_;
  /// Task index currently executing (for abort notification on reset).
  std::optional<std::uint64_t> running_task_;
  /// Replica slot of the running task (echoed on results and aborts).
  std::uint32_t running_replica_ = 0;
  /// When the pending join's image read started (acquire latency).
  sim::SimTime join_started_at_;
  /// Trace contexts threading the causal chain: the last verified control
  /// message, the join in progress (wakeup accepted / image acquired), and
  /// the task currently executing.
  obs::TraceContext control_ctx_;
  obs::TraceContext join_ctx_;
  obs::TraceContext running_task_ctx_;

  /// A result sent but not yet acknowledged (recovery protocol only; see
  /// PnaEnvironment::Recovery). Retried with exponential backoff until
  /// acked, superseded, or the attempt limit is hit.
  struct PendingResult {
    InstanceId instance = kNoInstance;
    std::uint64_t task_index = 0;
    util::Bits result_size;
    obs::TraceContext trace;
    int attempts = 0;
    std::uint64_t digest = 0;    ///< result digest the retry re-sends
    std::uint32_t replica = 0;   ///< replica slot the retry re-sends
  };
  std::optional<PendingResult> pending_result_;
  /// Generation guards invalidating in-flight retry/watchdog timers (the
  /// wheel has no cancel; a stale firing sees a bumped generation).
  std::uint64_t result_gen_ = 0;
  std::uint64_t request_gen_ = 0;
  /// Frozen by fault_hang(): message handling and config reads are inert
  /// until the watchdog kills and relaunches the Xlet.
  bool hung_ = false;
  PnaStats stats_;
};

}  // namespace oddci::core

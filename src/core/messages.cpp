#include "core/messages.hpp"

namespace oddci::core {

std::string ControlMessage::canonical_bytes() const {
  broadcast::SignBuffer buf;
  buf.add_u64(static_cast<std::uint64_t>(type));
  buf.add_u64(instance);
  buf.add_double(probability);
  buf.add_i64(requirements.min_ram.count());
  buf.add_i64(requirements.min_flash.count());
  buf.add(requirements.device_kind);
  buf.add_i64(heartbeat_interval.micros());
  buf.add_u64(image.image_id);
  buf.add(image.name);
  buf.add_i64(image.size.count());
  buf.add_u64(controller_node);
  buf.add_u64(backend_node);
  buf.add_u64(aggregators.size());
  for (auto node : aggregators) buf.add_u64(node);
  return buf.bytes();
}

void ControlMessage::sign_with(broadcast::SigningKey key) {
  signature = broadcast::sign(key, canonical_bytes());
}

bool ControlMessage::verify_with(broadcast::SigningKey key) const {
  return broadcast::verify(key, canonical_bytes(), signature);
}

std::shared_ptr<const PreparedControl> PreparedControl::make(
    ControlMessage msg) {
  auto prepared = std::make_shared<PreparedControl>();
  prepared->message = std::move(msg);
  prepared->canonical = prepared->message.canonical_bytes();
  prepared->digest = broadcast::content_digest(prepared->canonical);
  return prepared;
}

}  // namespace oddci::core

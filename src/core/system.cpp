#include "core/system.hpp"

#include <algorithm>
#include <stdexcept>

#include "broadcast/transport_stream.hpp"
#include "util/logging.hpp"

namespace oddci::core {

void SystemConfig::validate() const {
  if (receivers == 0) {
    throw std::invalid_argument("SystemConfig: need at least one receiver");
  }
  if (channels == 0) {
    throw std::invalid_argument("SystemConfig: need at least one channel");
  }
  if (beta.bps() <= 0.0 || delta.bps() <= 0.0) {
    throw std::invalid_argument("SystemConfig: channel capacities must be > 0");
  }
  if (tuned_fraction < 0.0 || tuned_fraction > 1.0) {
    throw std::invalid_argument("SystemConfig: tuned_fraction out of [0,1]");
  }
  if (initial_power == dtv::PowerMode::kOff && !churn) {
    throw std::invalid_argument(
        "SystemConfig: all receivers off with no churn would deadlock");
  }
  if (shards == 0) {
    throw std::invalid_argument("SystemConfig: shards must be >= 1");
  }
  if (shards > 1 && technology != BroadcastTechnology::kDtvCarousel) {
    throw std::invalid_argument(
        "SystemConfig: shards > 1 requires the DTV carousel (multicast "
        "sessions are not shard-routed)");
  }
  if (window < sim::SimTime::zero()) {
    throw std::invalid_argument("SystemConfig: window must be >= 0");
  }
  // Control-loop policy knobs, with any deprecated ControllerOptions
  // aliases applied on top of `control` exactly as the Controller will.
  {
    ControllerOptions effective = controller;
    effective.policy = control;
    effective.effective_policy().validate();
  }
  if (controller.default_heartbeat <= sim::SimTime::zero()) {
    throw std::invalid_argument(
        "SystemConfig: controller.default_heartbeat must be > 0");
  }
  if (controller.pna_xlet_size.count() <= 0) {
    throw std::invalid_argument(
        "SystemConfig: controller.pna_xlet_size must be > 0");
  }
  if (obs.enabled) {
    if (obs.sample_interval <= sim::SimTime::zero()) {
      throw std::invalid_argument(
          "SystemConfig: obs.sample_interval must be > 0");
    }
    if (obs.max_series_points == 0) {
      throw std::invalid_argument(
          "SystemConfig: obs.max_series_points must be > 0");
    }
    if (obs.trace && obs.trace_capacity == 0) {
      throw std::invalid_argument(
          "SystemConfig: obs.trace_capacity must be > 0");
    }
  }
  if (obs.trace && !obs.enabled) {
    throw std::invalid_argument(
        "SystemConfig: obs.trace requires obs.enabled");
  }
  if (heartbeat.mode == HeartbeatMode::kDelta && heartbeat.resync_every == 0) {
    throw std::invalid_argument(
        "SystemConfig: heartbeat.resync_every must be >= 1 in delta mode");
  }
  if (heartbeat.tree_fanin > 0) {
    if (heartbeat.mode != HeartbeatMode::kDelta) {
      throw std::invalid_argument(
          "SystemConfig: heartbeat.tree_fanin requires delta mode (relays "
          "batch delta frames)");
    }
    if (aggregators == 0) {
      throw std::invalid_argument(
          "SystemConfig: heartbeat.tree_fanin requires an aggregator tier");
    }
  }
  if (heartbeat.expiry < sim::SimTime::zero() ||
      heartbeat.pace_window < sim::SimTime::zero()) {
    throw std::invalid_argument(
        "SystemConfig: heartbeat.expiry and heartbeat.pace_window must be "
        ">= 0");
  }
  if (return_channel.enabled) {
    if (return_channel.aggregator_uplink.bps() <= 0.0 ||
        return_channel.aggregator_downlink.bps() <= 0.0 ||
        return_channel.controller_downlink.bps() <= 0.0) {
      throw std::invalid_argument(
          "SystemConfig: return_channel capacities must be > 0");
    }
    if (return_channel.queue_limit <= sim::SimTime::zero()) {
      throw std::invalid_argument(
          "SystemConfig: return_channel.queue_limit must be > 0");
    }
  }
  if (fault.enabled) fault.validate();
  if (verify.enabled) verify.validate();
  if (!fault.enabled && (fault.byzantine_forger_fraction > 0.0 ||
                         fault.byzantine_freerider_fraction > 0.0 ||
                         fault.byzantine_collusion_size > 0)) {
    throw std::invalid_argument(
        "SystemConfig: byzantine_* profiles require fault.enabled");
  }
}

double RunResult::efficiency(std::size_t n, double device_task_seconds,
                             std::size_t node_count) const {
  if (makespan_seconds <= 0.0 || node_count == 0) return 0.0;
  return static_cast<double>(n) * device_task_seconds /
         (makespan_seconds * static_cast<double>(node_count));
}

OddciSystem::OddciSystem(const SystemConfig& config) : config_(config) {
  config_.validate();

  sim::ShardedSimulation::Options kopts;
  kopts.shards = config_.shards;
  kopts.window = config_.window;
  if (kopts.window <= sim::SimTime::zero()) {
    // Auto window: the shortest cross-shard wire (receiver vs server
    // propagation delay) bounds how far a boundary clamp can defer a
    // delivery; floor at 1 ms so tiny latencies don't thrash the barrier
    // and cap at 5 ms so huge ones don't make windows needlessly coarse.
    kopts.window = std::min(config_.receiver_latency, config_.server_latency);
    if (kopts.window < sim::SimTime::from_millis(1)) {
      kopts.window = sim::SimTime::from_millis(1);
    }
    if (kopts.window > sim::SimTime::from_millis(5)) {
      kopts.window = sim::SimTime::from_millis(5);
    }
  }
  sharded_ = std::make_unique<sim::ShardedSimulation>(kopts);
  simulation_ = &sharded_->control();
  const std::size_t K = sharded_->shard_count();

  if (config_.obs.profile) {
    profiler_ = std::make_unique<obs::KernelProfiler>(K);
    sharded_->set_profiler(profiler_.get());
  }

  network_ = std::make_unique<net::Network>(*simulation_);
  if (K > 1) network_->set_sharded(sharded_.get());
  // Tag the heartbeat stream for conservation accounting: net (and the
  // fault injector below) stay ignorant of core's message taxonomy and
  // receive the raw tag value; the health auditor balances emitted vs
  // received vs lost over these cells.
  network_->set_tracked_tag(static_cast<int>(kTagHeartbeat));
  // Every receiver, every aggregator, every relay, the Controller, and the
  // Backend get an endpoint; size the table once up front.
  const std::size_t relay_count =
      config_.heartbeat.tree_fanin > 0 && config_.aggregators > 0
          ? (config_.aggregators + config_.heartbeat.tree_fanin - 1) /
                config_.heartbeat.tree_fanin
          : 0;
  network_->reserve_endpoints(config_.receivers + config_.aggregators +
                              relay_count + 2);
  store_ = std::make_unique<ContentStore>();
  store_->set_concurrent(K > 1);

  util::Random rng(config_.seed);
  key_ = rng.engine().next() | 1;  // non-zero signing key

  // Transport streams: model the carousel capacity directly as the unused
  // rate (examples that want explicit A/V elementary streams can build
  // their own BroadcastChannel).
  const auto signalling = util::BitRate::from_kbps(100.0);
  channels_.reserve(config_.channels);
  for (std::size_t c = 0; c < config_.channels; ++c) {
    if (config_.technology == BroadcastTechnology::kIpMulticast) {
      broadcast::MulticastOptions mopts = config_.multicast;
      mopts.announce_repetition = config_.table_repetition;
      channels_.push_back(std::make_unique<broadcast::MulticastChannel>(
          *simulation_, config_.beta, rng.engine().next(), mopts));
      continue;
    }
    broadcast::TransportStream ts(
        util::BitRate(config_.beta.bps() + signalling.bps()), signalling);
    auto dtv = std::make_unique<broadcast::BroadcastChannel>(
        *simulation_, std::move(ts), rng.engine().next(),
        config_.table_repetition);
    if (config_.section_loss > 0.0) {
      dtv->set_section_loss(config_.section_loss);
    }
    if (K > 1) dtv->set_sharded(sharded_.get());
    channels_.push_back(std::move(dtv));
  }

  const net::LinkSpec server_link{config_.server_capacity,
                                  config_.server_capacity,
                                  config_.server_latency};
  ControllerOptions copts = config_.controller;
  copts.policy = config_.control;
  if (copts.policy.seed == 0) {
    // Dedicated named RNG stream for the policy: disjoint from every
    // population stream, so enabling an RNG-drawing engine (bandit) never
    // perturbs receiver seeding or the fault plan.
    copts.policy.seed = util::stream_seed(config_.seed, "control.policy");
  }
  if (config_.fault.enabled && config_.aggregators > 0) {
    copts.aggregator_timeout = config_.fault.aggregator_failover_timeout;
  }
  copts.heartbeat_mode = config_.heartbeat.mode;
  // The Controller's ingress (downlink) is where consolidated reports
  // land; the constrained return-channel model caps it and bounds its
  // queue. Its uplink (control replies, trim resets) stays provisioned.
  net::LinkSpec controller_link = server_link;
  if (config_.return_channel.enabled) {
    controller_link.downlink = config_.return_channel.controller_downlink;
    controller_link.downlink_queue = config_.return_channel.queue_limit;
  }
  std::vector<broadcast::BroadcastMedium*> channel_ptrs;
  channel_ptrs.reserve(channels_.size());
  for (auto& c : channels_) channel_ptrs.push_back(c.get());
  controller_ = std::make_unique<Controller>(*simulation_, *network_,
                                             std::move(channel_ptrs), *store_,
                                             key_, controller_link, copts);

  if (config_.aggregators > 0) {
    // Constrained return channel: the tier's access links get finite
    // capacity and bounded queues (tail drop past the limit).
    net::LinkSpec tier_link = server_link;
    if (config_.return_channel.enabled) {
      tier_link.uplink = config_.return_channel.aggregator_uplink;
      tier_link.downlink = config_.return_channel.aggregator_downlink;
      tier_link.uplink_queue = config_.return_channel.queue_limit;
      tier_link.downlink_queue = config_.return_channel.queue_limit;
    }
    AggregatorOptions aopts;
    aopts.report_interval = config_.aggregator_report_interval;
    aopts.mode = config_.heartbeat.mode;
    aopts.resync_every = config_.heartbeat.resync_every;
    if (config_.heartbeat.mode == HeartbeatMode::kDelta) {
      // Aggregator-side expiry takes over naive-mode staleness pruning;
      // auto mode mirrors the Controller's horizon exactly.
      aopts.expiry = config_.heartbeat.expiry > sim::SimTime::zero()
                         ? config_.heartbeat.expiry
                         : sim::SimTime::from_seconds(
                               config_.controller.default_heartbeat.seconds() *
                               copts.effective_policy().stale_factor);
    }
    // Paced mode de-synchronizes the tier's flush boundaries with a
    // dedicated named stream (enabling it never perturbs other draws).
    util::SplitMix64 flush_phases(
        util::stream_seed(config_.seed, "aggregator.flush.phase"));
    const auto draw_phase = [&]() {
      const std::int64_t interval_us = aopts.report_interval.micros();
      if (!config_.heartbeat.paced || interval_us <= 0) {
        return sim::SimTime::zero();
      }
      return sim::SimTime::from_micros(static_cast<std::int64_t>(
          flush_phases.next() % static_cast<std::uint64_t>(interval_us)));
    };
    // Relay tier first (the leaves point upstream at it). Relays live on
    // the control shard: their upstream hop to the Controller is
    // intra-shard; leaf-to-relay hops cross through the kernel mailboxes.
    for (std::size_t r = 0; r < relay_count; ++r) {
      relays_.push_back(std::make_unique<AggregatorRelay>(
          *simulation_, *network_, controller_->node_id(), tier_link,
          aopts.report_interval, draw_phase()));
    }
    std::vector<net::NodeId> aggregator_nodes;
    for (std::size_t a = 0; a < config_.aggregators; ++a) {
      // Aggregator `a` lives on shard a % K; its endpoint registers there
      // so the heartbeats it hears (all from receivers homed on it, placed
      // on the same shard below) never cross a shard boundary.
      if (K > 1) {
        network_->set_register_shard(static_cast<std::uint32_t>(a % K));
      }
      aopts.origin = static_cast<std::uint32_t>(a);
      aopts.flush_phase = draw_phase();
      aggregators_.push_back(std::make_unique<HeartbeatAggregator>(
          K > 1 ? sharded_->shard(a % K) : *simulation_, *network_,
          controller_->node_id(), tier_link, aopts));
      // Agents pick aggregators[pna_id % k], so aggregator `a` only ever
      // hears ids congruent to a (mod k) — declare that shard so its
      // window is a dense vector instead of a hash map.
      aggregators_.back()->set_shard(config_.aggregators, a);
      if (!relays_.empty()) {
        aggregators_.back()->set_upstream(
            relays_[a / config_.heartbeat.tree_fanin]->node_id());
      }
      aggregator_nodes.push_back(aggregators_.back()->node_id());
    }
    if (K > 1) network_->set_register_shard(0);
    controller_->set_aggregators(std::move(aggregator_nodes));
  }

  provider_ = std::make_unique<Provider>(*controller_);

  BackendOptions bopts;
  bopts.task_timeout = config_.task_timeout;
  if (config_.fault.enabled) {
    bopts.max_task_retries = config_.fault.task_retry_cap;
    bopts.ack_results = true;
  }
  backend_ =
      std::make_unique<Backend>(*simulation_, *network_, server_link, bopts);
  backend_->set_decision_engine(&controller_->engine());
  backend_->set_admission_context(
      config_.delta, config_.profile.slowdown(dtv::PowerMode::kInUse));

  if (config_.verify.enabled) {
    // The Verifier's stream is named off the system seed (overridable), so
    // turning verification on never perturbs population seeding, and its
    // draws happen in Backend handler order on the control shard — the
    // verified trajectory replays byte-identically per (seed, K).
    const std::uint64_t vseed =
        config_.verify.seed != 0
            ? config_.verify.seed
            : util::stream_seed(config_.seed, "verify.dispatch");
    verifier_ =
        std::make_unique<Verifier>(*simulation_, config_.verify, vseed);
    if (config_.aggregators >= 2) {
      // Collusion correlates with the aggregator region (one neighborhood,
      // one modified firmware image), and pna id % A is exactly the
      // region routing agents use — tell the replica scheduler.
      const std::uint64_t A = config_.aggregators;
      verifier_->set_region_fn([A](std::uint64_t pna_id) {
        return static_cast<std::uint32_t>(pna_id % A);
      });
    }
    backend_->set_verifier(verifier_.get());
  }

  pna_env_.content_store = store_.get();
  pna_env_.trusted_key = key_;
  pna_env_.task_poll_interval = config_.task_poll_interval;
  if (config_.heartbeat.paced) {
    sim::SimTime pace_window = config_.heartbeat.pace_window;
    if (pace_window <= sim::SimTime::zero()) {
      pace_window = std::min(config_.aggregator_report_interval,
                             config_.controller.default_heartbeat);
    }
    pna_env_.heartbeat_pace_window = pace_window;
    pna_env_.heartbeat_phase_seed =
        util::stream_seed(config_.seed, "heartbeat.pace.phase");
  }
  if (config_.fanout_fast_path && K == 1) {
    verify_cache_ = std::make_unique<broadcast::VerifyCache>();
    // The ring must outlast the in-flight window or acquires find their
    // slot still referenced and fall back to allocation: heartbeats live
    // ~tens of milliseconds (delivery + aggregator handling), so size the
    // lap time well past that at population beat rates.
    const std::size_t pool_slots =
        std::clamp<std::size_t>(config_.receivers / 8, 4096, 1u << 17);
    heartbeat_pool_ =
        std::make_unique<net::MessagePool<HeartbeatMessage>>(pool_slots);
    pna_env_.verify_cache = verify_cache_.get();
    pna_env_.heartbeat_pool = heartbeat_pool_.get();
  }

  if (K > 1) {
    // Per-shard agent-side state: every hot-path cell an agent touches is
    // private to its shard's window thread. The base pna_env_ keeps the
    // shared read-only plumbing (store, key, poll interval); each shard's
    // copy overrides the mutable pieces.
    shard_pna_counters_.resize(K);
    shard_acquire_latency_.assign(K, obs::LogHistogram(1e-3));
    shard_recoveries_.resize(K);
    util::SplitMix64 loss_seeds(config_.seed ^ 0x10555EEDull);
    shard_loss_rngs_.reserve(K);
    shard_envs_.reserve(K);
    for (std::size_t s = 0; s < K; ++s) {
      shard_loss_rngs_.emplace_back(loss_seeds.next());
      if (config_.fanout_fast_path) {
        shard_verify_caches_.push_back(
            std::make_unique<broadcast::VerifyCache>());
        shard_heartbeat_pools_.push_back(
            std::make_unique<net::MessagePool<HeartbeatMessage>>(
                std::clamp<std::size_t>(config_.receivers / K / 8, 4096,
                                        1u << 17)));
      }
      PnaEnvironment env = pna_env_;
      if (config_.fanout_fast_path) {
        env.verify_cache = shard_verify_caches_[s].get();
        env.heartbeat_pool = shard_heartbeat_pools_[s].get();
      }
      shard_envs_.push_back(env);
    }
  }

  net::LinkSpec stb_link{config_.delta, config_.delta,
                         config_.receiver_latency};
  if (config_.return_channel.enabled) {
    // The PNA leg of the constrained path: a storm of beats that outruns
    // the uplink's committed backlog sheds at the set-top box.
    stb_link.uplink_queue = config_.return_channel.queue_limit;
  }
  receivers_.reserve(config_.receivers);
  const std::size_t A = config_.aggregators;
  for (std::size_t i = 0; i < config_.receivers; ++i) {
    // Placement follows the heartbeat routing: receiver i's pna id is its
    // node id (A + 2 + i), so it homes on aggregator (2 + i) % A, which
    // lives on shard ((2 + i) % A) % K — the per-heartbeat hop never
    // crosses a shard boundary. With no aggregation tier, round-robin.
    const std::size_t s = K == 1 ? 0 : (A > 0 ? ((2 + i) % A) % K : i % K);
    if (K > 1) network_->set_register_shard(static_cast<std::uint32_t>(s));
    auto receiver = std::make_unique<dtv::Receiver>(
        K > 1 ? sharded_->shard(s) : *simulation_, *network_,
        config_.profile, stb_link);
    receiver->set_power_mode(config_.initial_power);
    const std::uint64_t pna_seed = rng.engine().next();
    const PnaEnvironment* env = K > 1 ? &shard_envs_[s] : &pna_env_;
    receiver->application_manager().register_factory(
        "oddci-pna", [env, pna_seed] {
          return std::make_unique<PnaXlet>(*env, pna_seed);
        });
    if (K > 1) {
      receiver->set_shard_context(sharded_.get(),
                                  static_cast<std::uint32_t>(s),
                                  static_cast<broadcast::ListenerId>(i + 1),
                                  &shard_loss_rngs_[s]);
    }
    if (rng.uniform() < config_.tuned_fraction) {
      receiver->tune(*channels_[i % channels_.size()]);
    }
    receivers_.push_back(std::move(receiver));
  }
  if (K > 1) {
    network_->set_register_shard(0);
    // Construction-time tunes above ran direct (single-threaded); from
    // here on, off-control-shard receivers route (un)tunes through the
    // mailboxes.
    for (auto& r : receivers_) r->activate_shard_routing();
  }

  // Adversarial profile table: built after the receivers so it can key
  // collusion on their aggregator regions (node id % A). The table is a
  // pure hash of the fault seed's "fault.byzantine" stream — no live
  // draws, so enabling profiles never perturbs the PR 5 fault plan.
  if (config_.fault.enabled &&
      (config_.fault.byzantine_forger_fraction > 0.0 ||
       config_.fault.byzantine_freerider_fraction > 0.0 ||
       config_.fault.byzantine_collusion_size >= 2)) {
    const std::uint64_t fseed = config_.fault.seed != 0
                                    ? config_.fault.seed
                                    : (config_.seed ^ 0x0DDC1FA17ull);
    std::vector<std::uint32_t> regions;
    regions.reserve(receivers_.size());
    for (const auto& r : receivers_) {
      regions.push_back(
          A > 0 ? static_cast<std::uint32_t>(r->node_id() % A) : 0u);
    }
    byz_table_ = std::make_unique<fault::ByzantineTable>(
        util::stream_seed(fseed, "fault.byzantine"), receivers_.size(),
        config_.fault.byzantine_forger_fraction,
        config_.fault.byzantine_freerider_fraction,
        config_.fault.byzantine_collusion_size, regions);
  }
  if ((byz_table_ && byz_table_->active()) || verifier_) {
    // Agents need the block whenever results carry digests: adversaries to
    // forge them, and — under verification — honest agents to compute them.
    byz_block_.table = byz_table_.get();
    byz_block_.base =
        receivers_.empty() ? 0 : receivers_.front()->node_id();
    pna_env_.byzantine = &byz_block_;
    for (auto& env : shard_envs_) env.byzantine = &byz_block_;
  }

  if (config_.churn) {
    const std::uint64_t churn_seed = rng.engine().next();
    if (K == 1) {
      std::vector<dtv::Receiver*> raw;
      raw.reserve(receivers_.size());
      for (auto& r : receivers_) raw.push_back(r.get());
      churn_ = std::make_unique<ChurnProcess>(*simulation_, std::move(raw),
                                              churn_seed, *config_.churn);
      churn_->start();
    } else {
      // One churn process per shard, on that shard's kernel, over that
      // shard's receivers: power cycles are ordinary intra-shard events.
      std::vector<std::vector<dtv::Receiver*>> per_shard(K);
      for (auto& r : receivers_) per_shard[r->shard()].push_back(r.get());
      util::SplitMix64 churn_seeds(churn_seed);
      for (std::size_t s = 0; s < K; ++s) {
        churn_procs_.push_back(std::make_unique<ChurnProcess>(
            sharded_->shard(s), std::move(per_shard[s]), churn_seeds.next(),
            *config_.churn));
        churn_procs_.back()->start();
      }
    }
  }

  if (config_.fault.enabled) {
    // The fault plan gets its own seed stream: derived from the system
    // seed by default so one scenario seed reproduces everything, but
    // overridable to vary the fault schedule against a fixed population.
    const std::uint64_t fseed = config_.fault.seed != 0
                                    ? config_.fault.seed
                                    : (config_.seed ^ 0x0DDC1FA17ull);
    injector_ = std::make_unique<fault::FaultInjector>(*simulation_,
                                                       config_.fault, fseed);
    if (K > 1) injector_->set_sharded(sharded_.get());
    injector_->set_tracked_tag(static_cast<int>(kTagHeartbeat));
    network_->set_interposer(injector_.get());
    injector_->set_controller_hooks([this] { controller_->crash(); },
                                    [this] { controller_->restart(); });
    injector_->set_backend_hooks([this] { backend_->crash(); },
                                [this] { backend_->restart(); });
    for (auto& aggregator : aggregators_) {
      HeartbeatAggregator* agg = aggregator.get();
      injector_->add_region(agg->node_id(), [agg] { agg->crash(); },
                            [agg] { agg->restart(); });
    }
    injector_->set_pna_fault(
        [this](std::uint64_t pick, bool hang, sim::SimTime duration) {
          return apply_pna_fault(pick, hang, duration);
        });
    injector_->set_control_corruptor(
        [this] { return controller_->corrupt_on_air_control(); },
        [this] { controller_->restore_on_air_control(); });
    pna_recovery_.result_retry_limit = config_.fault.result_retry_limit;
    pna_recovery_.result_retry_base = config_.fault.result_retry_base;
    pna_recovery_.request_watchdog = config_.fault.request_watchdog;
    pna_env_.recovery = &pna_recovery_;
    for (std::size_t s = 0; s < shard_envs_.size(); ++s) {
      shard_recoveries_[s] = pna_recovery_;
      shard_envs_[s].recovery = &shard_recoveries_[s];
    }
  }

  if (config_.obs.enabled) {
    wire_observability();
  }

  if (injector_) injector_->start();
}

void OddciSystem::wire_observability() {
  const std::size_t K = sharded_->shard_count();
  registry_ = std::make_unique<obs::MetricsRegistry>();
  registry_->set_max_spans(config_.obs.max_spans);
  tracer_ = std::make_unique<obs::Tracer>(*registry_);

  // Component cells: linked by pointer, owned by the components.
  network_->link_metrics(*registry_);
  controller_->link_metrics(*registry_);
  // Engines register their own "control.*" cells; the default StaticPolicy
  // registers none (byte-identical snapshots vs. the pre-engine tree).
  controller_->engine().link_metrics(*registry_);
  controller_->set_tracer(tracer_.get());
  backend_->link_metrics(*registry_);
  backend_->set_tracer(tracer_.get());
  // Verify/reputation cells — only when the defense is on, so verify-off
  // snapshots are byte-identical to a build without the subsystem.
  if (verifier_) verifier_->link_metrics(*registry_);
  provider_->link_metrics(*registry_);
  for (std::size_t a = 0; a < aggregators_.size(); ++a) {
    aggregators_[a]->link_metrics(*registry_,
                                  "aggregator." + std::to_string(a));
  }
  for (std::size_t r = 0; r < relays_.size(); ++r) {
    relays_[r]->link_metrics(*registry_, "relay." + std::to_string(r));
  }
  // Return-channel health: queue-drop counters and snapshot-time backlog
  // gauges over the constrained reporting path. Registered only when the
  // model is on, so legacy snapshots stay byte-identical.
  if (config_.return_channel.enabled) {
    network_->link_queue_metrics(*registry_);
    registry_->link_probe("net.controller_downlink_backlog_seconds", [this] {
      return network_->downlink_backlog_seconds(controller_->node_id());
    });
    registry_->link_probe("net.aggregator_uplink_backlog_seconds", [this] {
      double worst = 0.0;
      for (const auto& a : aggregators_) {
        worst =
            std::max(worst, network_->uplink_backlog_seconds(a->node_id()));
      }
      return worst;
    });
    registry_->link_probe("net.aggregator_downlink_backlog_seconds", [this] {
      double worst = 0.0;
      for (const auto& a : aggregators_) {
        worst =
            std::max(worst, network_->downlink_backlog_seconds(a->node_id()));
      }
      return worst;
    });
  }

  // Shared blocks: owned here, incremented by the population / the media.
  // Under a sharded kernel each shard increments its own cells and the
  // registry exports the merged sum lazily at snapshot time — same names,
  // no atomic on the hot path.
  if (K == 1) {
    pna_counters_.link(*registry_);
    registry_->link_histogram("pna.acquire_latency_seconds",
                              pna_acquire_latency_);
    pna_env_.counters = &pna_counters_;
    pna_env_.acquire_latency = &pna_acquire_latency_;
  } else {
    const auto merged = [this](obs::Counter obs::PnaCounters::*cell) {
      return [this, cell]() -> std::uint64_t {
        std::uint64_t sum = 0;
        for (const auto& c : shard_pna_counters_) sum += (c.*cell).value();
        return sum;
      };
    };
    registry_->link_counter_fn(
        "pna.control_messages_seen",
        merged(&obs::PnaCounters::control_messages_seen));
    registry_->link_counter_fn("pna.signature_failures",
                               merged(&obs::PnaCounters::signature_failures));
    registry_->link_counter_fn(
        "pna.wakeups_dropped_busy",
        merged(&obs::PnaCounters::wakeups_dropped_busy));
    registry_->link_counter_fn(
        "pna.wakeups_rejected_requirements",
        merged(&obs::PnaCounters::wakeups_rejected_requirements));
    registry_->link_counter_fn(
        "pna.wakeups_dropped_probability",
        merged(&obs::PnaCounters::wakeups_dropped_probability));
    registry_->link_counter_fn("pna.joins", merged(&obs::PnaCounters::joins));
    registry_->link_counter_fn("pna.resets",
                               merged(&obs::PnaCounters::resets));
    registry_->link_counter_fn("pna.tasks_completed",
                               merged(&obs::PnaCounters::tasks_completed));
    registry_->link_counter_fn("pna.heartbeats_sent",
                               merged(&obs::PnaCounters::heartbeats_sent));
    std::vector<const obs::LogHistogram*> hists;
    hists.reserve(K);
    for (const auto& h : shard_acquire_latency_) hists.push_back(&h);
    registry_->link_histogram_set("pna.acquire_latency_seconds",
                                  std::move(hists));
    for (std::size_t s = 0; s < K; ++s) {
      shard_envs_[s].counters = &shard_pna_counters_[s];
      shard_envs_[s].acquire_latency = &shard_acquire_latency_[s];
    }
  }
  // Pacing effectiveness counter — registered only when pacing is on (no
  // phantom zero cell in unpaced snapshots).
  if (config_.heartbeat.paced) {
    if (K == 1) {
      pna_counters_.link_paced(*registry_);
    } else {
      registry_->link_counter_fn("pna.heartbeats_paced", [this] {
        std::uint64_t sum = 0;
        for (const auto& c : shard_pna_counters_) {
          sum += c.heartbeats_paced.value();
        }
        return sum;
      });
    }
  }
  // Adversarial-behaviour counters — registered only when the profile
  // table seeded at least one adversary (no phantom zero cells otherwise).
  if (byz_table_ && byz_table_->active()) {
    if (K == 1) {
      pna_counters_.link_byzantine(*registry_);
    } else {
      registry_->link_counter_fn("pna.results_forged", [this] {
        std::uint64_t sum = 0;
        for (const auto& c : shard_pna_counters_) {
          sum += c.results_forged.value();
        }
        return sum;
      });
      registry_->link_counter_fn("pna.results_freeridden", [this] {
        std::uint64_t sum = 0;
        for (const auto& c : shard_pna_counters_) {
          sum += c.results_freeridden.value();
        }
        return sum;
      });
    }
  }
  broadcast_counters_.link(*registry_);
  for (auto& channel : channels_) {
    channel->set_counters(&broadcast_counters_);
  }

  // Fast-path effectiveness counters — registered only when the fast path
  // exists, so fast-path-off snapshots carry no phantom zero cells.
  if (verify_cache_) verify_cache_->link_metrics(*registry_);
  if (heartbeat_pool_) heartbeat_pool_->link_metrics(*registry_, "heartbeat");
  if (K > 1 && config_.fanout_fast_path) {
    registry_->link_counter_fn("verify_cache.hit", [this] {
      std::uint64_t sum = 0;
      for (const auto& c : shard_verify_caches_) sum += c->hits().value();
      return sum;
    });
    registry_->link_counter_fn("verify_cache.miss", [this] {
      std::uint64_t sum = 0;
      for (const auto& c : shard_verify_caches_) sum += c->misses().value();
      return sum;
    });
    registry_->link_probe("verify_cache.size", [this] {
      std::size_t sum = 0;
      for (const auto& c : shard_verify_caches_) sum += c->size();
      return static_cast<double>(sum);
    });
    registry_->link_counter_fn("heartbeat.pool_reused", [this] {
      std::uint64_t sum = 0;
      for (const auto& p : shard_heartbeat_pools_) sum += p->reused().value();
      return sum;
    });
    registry_->link_counter_fn("heartbeat.pool_allocated", [this] {
      std::uint64_t sum = 0;
      for (const auto& p : shard_heartbeat_pools_) {
        sum += p->allocated().value();
      }
      return sum;
    });
    registry_->link_counter_fn("heartbeat.pooled_bytes", [this] {
      std::uint64_t sum = 0;
      for (const auto& p : shard_heartbeat_pools_) {
        sum += p->pooled_bytes().value();
      }
      return sum;
    });
  }
  if (config_.fanout_fast_path) {
    registry_->link_counter("wire.writer_reuse", store_->writer_reuses());
  }

  // Fault/recovery cells — only when fault injection is on, so fault-off
  // snapshots are byte-identical to a build without the subsystem.
  if (injector_) injector_->link_metrics(*registry_);
  if (pna_env_.recovery != nullptr) {
    if (K == 1) {
      registry_->link_counter("recovery.result_retries",
                              pna_recovery_.result_retries);
      registry_->link_counter("recovery.request_retries",
                              pna_recovery_.request_retries);
    } else {
      registry_->link_counter_fn("recovery.result_retries", [this] {
        std::uint64_t sum = 0;
        for (const auto& r : shard_recoveries_) {
          sum += r.result_retries.value();
        }
        return sum;
      });
      registry_->link_counter_fn("recovery.request_retries", [this] {
        std::uint64_t sum = 0;
        for (const auto& r : shard_recoveries_) {
          sum += r.request_retries.value();
        }
        return sum;
      });
    }
  }

  if (config_.obs.trace && K == 1) {
    // Causal flight recorder: one ring shared by every component, so the
    // export interleaves all tracks in recording order.
    recorder_ = std::make_unique<obs::FlightRecorder>(
        config_.obs.trace_capacity);
    provider_->set_flight_recorder(recorder_.get());
    controller_->set_flight_recorder(recorder_.get());
    // Engines gate their own emission (the static default never emits), so
    // attaching the recorder costs nothing by default.
    controller_->engine().set_flight_recorder(recorder_.get());
    backend_->set_flight_recorder(recorder_.get());
    if (verifier_) verifier_->set_flight_recorder(recorder_.get());
    for (auto& aggregator : aggregators_) {
      aggregator->set_flight_recorder(recorder_.get());
    }
    network_->set_recorder(recorder_.get());
    for (auto& channel : channels_) channel->set_recorder(recorder_.get());
    for (auto& receiver : receivers_) receiver->set_recorder(recorder_.get());
    pna_env_.recorder = recorder_.get();
    if (injector_) injector_->set_recorder(recorder_.get());
    // Protocol-trace log lines share the recorder's clock: while this
    // system is tracing, every Logger line carries t=<sim seconds>.
    util::Logger::instance().set_clock(
        [this] { return simulation_->now().seconds(); });
  } else if (config_.obs.trace) {
    // One ring per shard, written only by that shard's window thread.
    // Strided id streams (offset s, stride K) keep event ids disjoint, so
    // obs::merge_events() yields one chronological population-wide export.
    shard_recorders_.reserve(K);
    for (std::size_t s = 0; s < K; ++s) {
      auto rec =
          std::make_unique<obs::FlightRecorder>(config_.obs.trace_capacity);
      rec->set_id_stream(s, K);
      shard_recorders_.push_back(std::move(rec));
    }
    obs::FlightRecorder* control_rec = shard_recorders_.front().get();
    provider_->set_flight_recorder(control_rec);
    controller_->set_flight_recorder(control_rec);
    // Engine decisions all happen on the control shard — its ring is the
    // right home for control.* events at any K.
    controller_->engine().set_flight_recorder(control_rec);
    backend_->set_flight_recorder(control_rec);
    // Quorum decisions happen in Backend handlers on the control shard.
    if (verifier_) verifier_->set_flight_recorder(control_rec);
    for (std::size_t a = 0; a < aggregators_.size(); ++a) {
      aggregators_[a]->set_flight_recorder(shard_recorders_[a % K].get());
    }
    network_->set_recorder(control_rec);
    for (std::size_t s = 0; s < K; ++s) {
      network_->set_shard_recorder(s, shard_recorders_[s].get());
    }
    for (auto& channel : channels_) channel->set_recorder(control_rec);
    for (auto& receiver : receivers_) {
      receiver->set_recorder(shard_recorders_[receiver->shard()].get());
    }
    for (std::size_t s = 0; s < K; ++s) {
      shard_envs_[s].recorder = shard_recorders_[s].get();
    }
    if (injector_) {
      injector_->set_recorder(control_rec);
      for (std::size_t s = 0; s < K; ++s) {
        injector_->set_shard_recorder(s, shard_recorders_[s].get());
      }
    }
    util::Logger::instance().set_clock(
        [this] { return simulation_->now().seconds(); });
  }

  // Sim-time series. Every probe is O(1): the controller maintains its
  // population mirrors incrementally, so sampling never scans the
  // million-receiver maps.
  obs::Sampler::Options sopts;
  sopts.interval = config_.obs.sample_interval;
  sopts.max_points = config_.obs.max_series_points;
  sampler_ = std::make_unique<obs::Sampler>(*simulation_, *registry_, sopts);
  if (K > 1) sampler_->set_sharded(sharded_.get());
  sampler_->add_gauge_series("series.instance_size", [this] {
    return static_cast<double>(controller_->total_member_count());
  });
  sampler_->add_gauge_series("series.idle_pool", [this] {
    return static_cast<double>(controller_->idle_known());
  });
  sampler_->add_gauge_series("series.backend_pending", [this] {
    return static_cast<double>(backend_->tasks_remaining());
  });
  sampler_->add_gauge_series("series.carousel_files", [this] {
    return static_cast<double>(channels_.front()->current().files.size());
  });
  if (K == 1) {
    sampler_->add_rate_series("series.heartbeat_rate",
                              pna_counters_.heartbeats_sent);
  } else {
    sampler_->add_rate_series_fn("series.heartbeat_rate", [this] {
      std::uint64_t sum = 0;
      for (const auto& c : shard_pna_counters_) {
        sum += c.heartbeats_sent.value();
      }
      return sum;
    });
  }
  // Conservation auditor, sampled at the same parked tick points the
  // series probes use; run_job folds the final verdict into RunResult.
  health_ = std::make_unique<obs::HealthAuditor>(
      [this] { return health_ledger(); });
  sampler_->set_on_tick(
      [this] { health_->sample(simulation_->now().seconds()); });
  sampler_->start();
}

broadcast::BroadcastMedium& OddciSystem::channel(std::size_t i) {
  if (i >= channels_.size()) {
    throw std::out_of_range("OddciSystem: channel index out of range");
  }
  return *channels_[i];
}

obs::MetricsSnapshot OddciSystem::metrics_snapshot() const {
  if (!registry_) return obs::MetricsSnapshot{};
  return registry_->snapshot(simulation_->now().seconds());
}

obs::ProfileSnapshot OddciSystem::profile_snapshot() const {
  if (!profiler_) return obs::ProfileSnapshot{};
  return obs::take_profile(*profiler_, *sharded_);
}

obs::HealthLedger OddciSystem::health_ledger() const {
  obs::HealthLedger ledger;
  const net::NetworkStats net = network_->stats();
  ledger.messages_sent = net.messages_sent;
  ledger.arrivals_scheduled = net.arrivals_scheduled;
  ledger.messages_delivered = net.messages_delivered;
  ledger.messages_dropped = net.messages_dropped;
  ledger.heartbeats_dropped = net.tracked_dropped;
  ledger.uplink_queue_dropped = net.uplink_queue_dropped;
  ledger.downlink_queue_dropped = net.downlink_queue_dropped;
  ledger.heartbeats_uplink_queue_dropped = net.tracked_uplink_queue_dropped;
  ledger.heartbeats_downlink_queue_dropped =
      net.tracked_downlink_queue_dropped;
  if (config_.heartbeat.mode == HeartbeatMode::kDelta) {
    ledger.delta_active = true;
    ledger.delta_checksum_failures =
        controller_->delta_stats().checksum_failures;
    ledger.delta_members_incremental = controller_->total_member_count();
    ledger.delta_members_view = controller_->membership_view_count();
  }
  if (injector_) {
    const fault::FaultInjector::Stats faults = injector_->stats();
    // Partition drops never reach schedule_arrival either, so they count
    // with the wire losses on the "removed before arrival" side.
    ledger.messages_lost = faults.messages_lost + faults.partition_dropped;
    ledger.messages_duplicated = faults.messages_duplicated;
    ledger.heartbeats_lost = faults.tracked_lost;
    ledger.heartbeats_duplicated = faults.tracked_duplicated;
  }
  const std::size_t K = sharded_->shard_count();
  if (K == 1) {
    ledger.heartbeats_emitted = pna_counters_.heartbeats_sent.value();
  } else {
    for (const auto& c : shard_pna_counters_) {
      ledger.heartbeats_emitted += c.heartbeats_sent.value();
    }
  }
  ledger.heartbeats_received = controller_->stats().heartbeats_received;
  for (const auto& aggregator : aggregators_) {
    ledger.heartbeats_received += aggregator->stats().heartbeats_received;
  }
  ledger.shards.reserve(K);
  for (std::size_t s = 0; s < K; ++s) {
    const sim::Simulation& shard = sharded_->shard(s);
    obs::HealthLedger::ShardEvents events;
    events.scheduled = shard.events_scheduled();
    events.executed = shard.events_executed();
    events.cancelled = shard.events_cancelled();
    events.pending = shard.pending_events();
    ledger.shards.push_back(events);
  }
  // Pool balance only holds on the fan-out fast path, where every emitted
  // heartbeat goes through exactly one pool acquire.
  if (heartbeat_pool_) {
    ledger.pool_active = true;
    ledger.pool_acquired = heartbeat_pool_->reused().value() +
                           heartbeat_pool_->allocated().value();
    ledger.pool_expected = ledger.heartbeats_emitted;
  } else if (!shard_heartbeat_pools_.empty()) {
    ledger.pool_active = true;
    for (const auto& pool : shard_heartbeat_pools_) {
      ledger.pool_acquired +=
          pool->reused().value() + pool->allocated().value();
    }
    ledger.pool_expected = ledger.heartbeats_emitted;
  }
  if (verifier_) {
    const Verifier::Stats v = verifier_->stats();
    ledger.verify_active = true;
    ledger.verify_dispatched = v.dispatched;
    ledger.verify_verified = v.verified;
    ledger.verify_outvoted = v.outvoted;
    ledger.verify_discarded = v.discarded;
    ledger.verify_outstanding = v.outstanding;
    ledger.spot_dispatched = v.spot_dispatched;
    ledger.spot_passed = v.spot_passed;
    ledger.spot_failed = v.spot_failed;
    ledger.spot_flushed = v.spot_flushed;
    ledger.spot_outstanding = v.spot_outstanding;
  }
  if (verifier_ && byz_table_ && byz_table_->active()) {
    // Detection audit: a seeded adversary that accumulated enough ledger
    // observations to be caught yet still stands above the quarantine
    // threshold is a defense failure the auditor should flag.
    ledger.byz_active = true;
    ledger.byz_adversaries = byz_table_->adversaries();
    const double threshold = verifier_->options().quarantine_below;
    for (std::size_t i = 0; i < byz_table_->size(); ++i) {
      if (byz_table_->profile(i) == fault::ByzantineProfile::kHonest) {
        continue;
      }
      const ReputationEntry* entry =
          verifier_->reputation(byz_block_.base + i);
      if (entry == nullptr) continue;  // never dispatched to: nothing to catch
      if (entry->observations >= 4 &&
          entry->state != ReputationState::kQuarantined &&
          entry->score >= threshold) {
        ++ledger.byz_undetected;
      }
    }
  }
  if (config_.obs.health_tamper_lost > 0) {
    // Seeded violation hook: under-report wire losses so the arrival
    // balance no longer closes (tests and the runner's exit-code path).
    const std::uint64_t cut =
        std::min(config_.obs.health_tamper_lost, ledger.messages_lost);
    ledger.messages_lost -= cut;
  }
  return ledger;
}

OddciSystem::~OddciSystem() {
  // The logger clock captures this system's simulation; remove it before
  // the simulation goes away.
  if (recorder_ || !shard_recorders_.empty()) {
    util::Logger::instance().clear_clock();
  }
}

std::vector<const obs::FlightRecorder*> OddciSystem::flight_recorders()
    const {
  std::vector<const obs::FlightRecorder*> out;
  if (recorder_) out.push_back(recorder_.get());
  for (const auto& rec : shard_recorders_) out.push_back(rec.get());
  return out;
}

bool OddciSystem::apply_pna_fault(std::uint64_t pick, bool hang,
                                  sim::SimTime duration) {
  const std::size_t n = receivers_.size();
  if (n == 0) return false;
  // Deterministic scan from the picked offset: prefer a busy agent (a
  // mid-task crash exercises the whole recovery chain), fall back to the
  // first live idle one.
  PnaXlet* idle_victim = nullptr;
  for (std::size_t k = 0; k < n; ++k) {
    dtv::Receiver& receiver = *receivers_[(pick + k) % n];
    if (!receiver.powered()) continue;
    auto* xlet =
        receiver.application_manager().find(config_.controller.pna_application_id);
    auto* pna = dynamic_cast<PnaXlet*>(xlet);
    if (pna == nullptr) continue;
    if (pna->state() == PnaState::kBusy) {
      return hang ? pna->fault_hang(duration) : pna->fault_crash();
    }
    if (idle_victim == nullptr) idle_victim = pna;
  }
  if (idle_victim == nullptr) return false;
  return hang ? idle_victim->fault_hang(duration)
              : idle_victim->fault_crash();
}

std::size_t OddciSystem::busy_pna_count() const {
  std::size_t busy = 0;
  for (const auto& receiver : receivers_) {
    if (!receiver->powered()) continue;
    auto& apps =
        const_cast<dtv::Receiver&>(*receiver).application_manager();
    if (auto* xlet = apps.find(0x4F44)) {
      auto* pna = dynamic_cast<PnaXlet*>(xlet);
      if (pna != nullptr && pna->state() == PnaState::kBusy) ++busy;
    }
  }
  return busy;
}

RunResult OddciSystem::run_job(const workload::Job& job,
                               std::size_t instance_size,
                               sim::SimTime deadline) {
  if (!controller_->deployed()) {
    controller_->deploy_pna();
    sharded_->run_until(simulation_->now() + config_.warmup);
  }

  RunResult result;

  // Phi-driven admission (control.min_suitability > 0 only): a deferred
  // job never requests an instance, so no receiver is woken for work the
  // direct channel cannot feed profitably.
  if (!backend_->would_admit(job)) {
    result.admitted = false;
    if (registry_) {
      result.metrics = registry_->snapshot(simulation_->now().seconds());
    }
    return result;
  }

  const sim::SimTime t0 = simulation_->now();

  InstanceSpec spec;
  spec.name = job.name;
  spec.target_size = instance_size;
  spec.image_size = job.image_size;
  spec.heartbeat_interval = config_.controller.default_heartbeat;

  // Tasks assigned to PNAs that are reset (trimming) or churned away must
  // be re-dispatched; derive a timeout from the worst-case task cycle if
  // none was configured.
  if (config_.task_timeout <= sim::SimTime::zero()) {
    const double payload_s =
        (job.avg_input_bits() + job.avg_result_bits()) / config_.delta.bps();
    const double exec_s =
        job.avg_reference_seconds() *
        config_.profile.slowdown(dtv::PowerMode::kInUse);
    backend_->set_task_timeout(sim::SimTime::from_seconds(
        3.0 * (payload_s + exec_s) +
        2.0 * config_.controller.default_heartbeat.seconds() + 30.0));
  }

  const InstanceId id = provider_->request_instance(
      spec, backend_->node_id(),
      [&result, t0](InstanceId, sim::SimTime ready_at) {
        result.wakeup_seconds = (ready_at - t0).seconds();
      });

  bool done = false;
  // Task dispatch/result events chain off the instance's control.format
  // context, so one trace id spans wakeup through the last result.
  backend_->submit(job, id, [this, &done] {
    done = true;
    sharded_->stop();
  }, t0, controller_->trace_context(id));

  sharded_->run_until(t0 + deadline);

  // A job whose every task hit the retry cap also fires on_complete (the
  // Backend reports the failure explicitly); that is not success.
  result.completed = done && !backend_->job_failed();
  result.job = backend_->metrics();
  if (done) {
    result.makespan_seconds = result.job.makespan_seconds();
  }
  const InstanceStatus* st = controller_->status(id);
  if (st != nullptr) {
    result.final_instance_size = st->current_size;
    if (result.wakeup_seconds < 0.0 && st->reached_target_at) {
      result.wakeup_seconds = (*st->reached_target_at - t0).seconds();
    }
  }
  result.controller = controller_->stats();
  result.network = network_->stats();
  if (registry_) {
    result.metrics = registry_->snapshot(simulation_->now().seconds());
  }
  if (health_) {
    result.health = health_->finalize(simulation_->now().seconds());
  }

  provider_->release_instance(id);
  return result;
}

}  // namespace oddci::core

#include "core/aggregator.hpp"

#include <stdexcept>

namespace oddci::core {

HeartbeatAggregator::HeartbeatAggregator(sim::Simulation& simulation,
                                         net::Network& network,
                                         net::NodeId controller,
                                         const net::LinkSpec& link,
                                         AggregatorOptions options)
    : simulation_(simulation),
      network_(network),
      controller_(controller),
      options_(options) {
  if (options_.report_interval <= sim::SimTime::zero()) {
    throw std::invalid_argument(
        "HeartbeatAggregator: report interval must be > 0");
  }
  if (options_.mode == HeartbeatMode::kDelta && options_.resync_every == 0) {
    throw std::invalid_argument(
        "HeartbeatAggregator: resync_every must be >= 1");
  }
  if (options_.flush_phase < sim::SimTime::zero() ||
      options_.flush_phase >= options_.report_interval) {
    throw std::invalid_argument(
        "HeartbeatAggregator: flush phase must be in [0, report interval)");
  }
  node_id_ = network_.register_endpoint(this, link);
  reporter_ = sim::PeriodicTask(
      simulation_,
      simulation_.now() + options_.report_interval + options_.flush_phase,
      options_.report_interval, [this] { flush(); });
}

HeartbeatAggregator::~HeartbeatAggregator() { reporter_.cancel(); }

void HeartbeatAggregator::set_shard(std::uint64_t stride,
                                    std::uint64_t phase) {
  if (stride == 0 || phase >= stride) {
    throw std::invalid_argument("HeartbeatAggregator: bad shard");
  }
  shard_stride_ = stride;
  shard_phase_ = phase;
}

void HeartbeatAggregator::on_message(net::NodeId /*from*/,
                                     const net::MessagePtr& message) {
  if (message->tag() == kTagDeltaReport &&
      options_.mode == HeartbeatMode::kDelta) {
    // Controller resync request (an empty downstream kResync frame): make
    // the next flush a full frame, so a desynced Controller recovers in
    // about one window instead of waiting out the resync_every cadence.
    next_resync_ = 0;
    return;
  }
  if (message->tag() != kTagHeartbeat) return;
  const auto& hb = static_cast<const HeartbeatMessage&>(*message);
  ++stats_.heartbeats_received;
  const std::uint64_t id = hb.pna_id();
  if (options_.mode == HeartbeatMode::kDelta) {
    ledger_note(id, hb);
    return;
  }
  if (id % shard_stride_ == shard_phase_) {
    const std::uint64_t slot = id / shard_stride_;
    if (slot < kMaxDenseSlots) {
      if (slot >= dense_.size()) dense_.resize(slot + 1);
      DenseRecord& cell = dense_[slot];
      if (cell.epoch != epoch_) {
        cell.epoch = epoch_;
        touched_.push_back(static_cast<std::uint32_t>(slot));
      }
      cell.rec = Record{hb.state(), hb.instance(), hb.trace()};
      return;
    }
  }
  overflow_[id] = Record{hb.state(), hb.instance(), hb.trace()};
}

void HeartbeatAggregator::ledger_note(std::uint64_t id,
                                      const HeartbeatMessage& hb) {
  announcing_ = false;
  auto note = [&](LedgerRecord& rec, auto mark_dirty) {
    const bool changed = !rec.known || rec.state != hb.state() ||
                         rec.instance != hb.instance();
    if (!rec.known) {
      rec.known = true;
      ++ledger_members_;
    }
    if (changed && !rec.dirty) {
      rec.dirty = true;
      mark_dirty();
    }
    rec.state = hb.state();
    rec.instance = hb.instance();
    rec.trace = hb.trace();
    rec.last_seen = simulation_.now();
  };
  if (id % shard_stride_ == shard_phase_) {
    const std::uint64_t slot = id / shard_stride_;
    if (slot < kMaxDenseSlots) {
      if (slot >= ledger_.size()) ledger_.resize(slot + 1);
      LedgerRecord& rec = ledger_[slot];
      const bool fresh = !rec.known;
      note(rec, [&] {
        ledger_dirty_.push_back(static_cast<std::uint32_t>(slot));
      });
      if (fresh) {
        ledger_order_.push_back(static_cast<std::uint32_t>(slot));
      }
      return;
    }
  }
  note(ledger_overflow_[id], [&] { overflow_dirty_.push_back(id); });
}

void HeartbeatAggregator::flush() {
  if (options_.mode == HeartbeatMode::kDelta) {
    flush_delta();
    return;
  }
  if (touched_.empty() && overflow_.empty()) {
    if (!announcing_) return;
    // Still cut off from our shard after a restart: repeat the recovery
    // announcement until the Controller restores our routing slot (a lost
    // announcement must not leave us failed over forever).
    ++stats_.reports_sent;
    network_.send(
        node_id_, controller_,
        std::make_shared<AggregateReportMessage>(
            std::vector<AggregateReportMessage::Entry>{}));
    return;
  }
  announcing_ = false;
  std::vector<AggregateReportMessage::Entry> entries;
  entries.reserve(window_size());
  // Dense slots flush in arrival order (deterministic), then overflow ids.
  for (const std::uint32_t slot : touched_) {
    const Record& rec = dense_[slot].rec;
    entries.push_back({slot * shard_stride_ + shard_phase_, rec.state,
                       rec.instance, rec.trace});
  }
  for (const auto& [pna, rec] : overflow_) {
    entries.push_back({pna, rec.state, rec.instance, rec.trace});
  }
  touched_.clear();
  ++epoch_;  // every dense cell is now logically outside the window
  overflow_.clear();
  if (recorder_ != nullptr) {
    recorder_->emit(simulation_.now(), obs::TraceEventKind::kAggregateFlush,
                    obs::TraceComponent::kAggregator, {}, node_id_,
                    entries.size());
  }
  stats_.entries_forwarded += entries.size();
  ++stats_.reports_sent;
  network_.send(node_id_, controller_,
                std::make_shared<AggregateReportMessage>(std::move(entries)));
}

void HeartbeatAggregator::flush_delta() {
  const auto now = simulation_.now();
  std::vector<DeltaReportMessage::Entry> entries;

  // Expire members silent past the horizon, compacting the first-seen
  // order list in place. This walk is O(ledger) per window — the same
  // asymptotic work the aggregator already does absorbing its shard's
  // heartbeats — and it is what lets the *upstream* path be O(changes).
  if (options_.expiry > sim::SimTime::zero()) {
    std::size_t keep = 0;
    for (const std::uint32_t slot : ledger_order_) {
      LedgerRecord& rec = ledger_[slot];
      if (!rec.known) continue;  // vacated earlier
      if (now - rec.last_seen > options_.expiry) {
        entries.push_back({slot * shard_stride_ + shard_phase_,
                           DeltaReportMessage::Op::kExpire, rec.state,
                           rec.instance, {}});
        rec.known = false;
        rec.dirty = false;
        --ledger_members_;
        continue;
      }
      ledger_order_[keep++] = slot;
    }
    ledger_order_.resize(keep);
    for (auto it = ledger_overflow_.begin(); it != ledger_overflow_.end();) {
      if (now - it->second.last_seen > options_.expiry) {
        entries.push_back({it->first, DeltaReportMessage::Op::kExpire,
                           it->second.state, it->second.instance, {}});
        --ledger_members_;
        it = ledger_overflow_.erase(it);
      } else {
        ++it;
      }
    }
    stats_.expiries_sent += entries.size();
  }

  const bool resync = next_resync_ == 0;
  std::uint64_t checksum = 0;
  if (resync) {
    next_resync_ = options_.resync_every - 1;
    // A resync replaces the Controller's whole slice, so explicit expiry
    // entries are redundant — the frame is exactly the live ledger.
    entries.clear();
    entries.reserve(ledger_members_);
    for (const std::uint32_t slot : ledger_order_) {
      LedgerRecord& rec = ledger_[slot];
      if (!rec.known) continue;
      rec.dirty = false;
      entries.push_back({slot * shard_stride_ + shard_phase_,
                         DeltaReportMessage::Op::kUpdate, rec.state,
                         rec.instance, rec.trace});
      checksum ^= delta_member_mix(entries.back().pna_id, rec.state,
                                   rec.instance);
    }
    for (auto& [id, rec] : ledger_overflow_) {
      rec.dirty = false;
      entries.push_back({id, DeltaReportMessage::Op::kUpdate, rec.state,
                         rec.instance, rec.trace});
      checksum ^= delta_member_mix(id, rec.state, rec.instance);
    }
    ledger_dirty_.clear();
    overflow_dirty_.clear();
    ++stats_.resyncs_sent;
  } else {
    --next_resync_;
    for (const std::uint32_t slot : ledger_dirty_) {
      LedgerRecord& rec = ledger_[slot];
      if (!rec.dirty) continue;  // expired above
      rec.dirty = false;
      entries.push_back({slot * shard_stride_ + shard_phase_,
                         DeltaReportMessage::Op::kUpdate, rec.state,
                         rec.instance, rec.trace});
    }
    ledger_dirty_.clear();
    for (const std::uint64_t id : overflow_dirty_) {
      auto it = ledger_overflow_.find(id);
      if (it == ledger_overflow_.end() || !it->second.dirty) continue;
      it->second.dirty = false;
      entries.push_back({id, DeltaReportMessage::Op::kUpdate,
                         it->second.state, it->second.instance,
                         it->second.trace});
    }
    overflow_dirty_.clear();
    // Nothing ever reported and nothing to say: stay silent, like the
    // naive tier before its first window (the Controller's failover clock
    // only arms after an aggregator's first report).
    if (entries.empty() && delta_epoch_ == 0 && !announcing_) {
      ++next_resync_;  // the skipped frame doesn't advance the cadence
      return;
    }
    // An empty delta still goes out: it advances the epoch and doubles as
    // the liveness keepalive that stops the Controller failing us over.
  }

  ++delta_epoch_;
  if (recorder_ != nullptr) {
    recorder_->emit(simulation_.now(), obs::TraceEventKind::kAggregateFlush,
                    obs::TraceComponent::kAggregator, {}, node_id_,
                    entries.size());
  }
  stats_.entries_forwarded += entries.size();
  ++stats_.reports_sent;
  network_.send(node_id_, controller_,
                std::make_shared<DeltaReportMessage>(
                    options_.origin, delta_epoch_,
                    resync ? DeltaReportMessage::Kind::kResync
                           : DeltaReportMessage::Kind::kDelta,
                    checksum, std::move(entries)));
}

void HeartbeatAggregator::clear_ledger() {
  for (const std::uint32_t slot : ledger_order_) {
    ledger_[slot] = LedgerRecord{};
  }
  ledger_order_.clear();
  ledger_dirty_.clear();
  ledger_overflow_.clear();
  overflow_dirty_.clear();
  ledger_members_ = 0;
}

void HeartbeatAggregator::crash() {
  if (crashed_) return;
  crashed_ = true;
  network_.unregister_endpoint(node_id_);
  reporter_.cancel();
  // The unreported window dies with the process; the PNAs it covered will
  // be re-heard on their next heartbeat. The delta ledger dies too — a
  // restarted process has no memory of who it covered, which is exactly
  // why its first frame back is a (possibly empty) resync.
  touched_.clear();
  ++epoch_;
  overflow_.clear();
  clear_ledger();
}

void HeartbeatAggregator::restart() {
  if (!crashed_) return;
  crashed_ = false;
  network_.reattach_endpoint(node_id_, this);
  reporter_ = sim::PeriodicTask(
      simulation_,
      simulation_.now() + options_.report_interval + options_.flush_phase,
      options_.report_interval, [this] { flush(); });
  // Announce recovery with an empty report: if the Controller failed this
  // aggregator over while it was down, its shard is heartbeating the
  // Controller directly and would never repopulate the window here — the
  // announcement is what restores the routing slot.
  announcing_ = true;
  if (options_.mode == HeartbeatMode::kDelta) {
    // The announcement is a resync (the ledger was lost in the crash, so
    // it is empty): the Controller must rebuild this origin's slice from
    // scratch, never trust post-restart deltas against pre-crash state.
    next_resync_ = 0;
    flush_delta();
    return;
  }
  ++stats_.reports_sent;
  network_.send(
      node_id_, controller_,
      std::make_shared<AggregateReportMessage>(
          std::vector<AggregateReportMessage::Entry>{}));
}

void HeartbeatAggregator::link_metrics(obs::MetricsRegistry& registry,
                                       const std::string& prefix) const {
  registry.link_probe(prefix + ".heartbeats_received", [this] {
    return static_cast<double>(stats_.heartbeats_received);
  });
  registry.link_probe(prefix + ".reports_sent", [this] {
    return static_cast<double>(stats_.reports_sent);
  });
  registry.link_probe(prefix + ".entries_forwarded", [this] {
    return static_cast<double>(stats_.entries_forwarded);
  });
  registry.link_probe(prefix + ".window_size", [this] {
    return static_cast<double>(window_size());
  });
  if (options_.mode == HeartbeatMode::kDelta) {
    registry.link_probe(prefix + ".resyncs_sent", [this] {
      return static_cast<double>(stats_.resyncs_sent);
    });
    registry.link_probe(prefix + ".expiries_sent", [this] {
      return static_cast<double>(stats_.expiries_sent);
    });
    registry.link_probe(prefix + ".ledger_members", [this] {
      return static_cast<double>(ledger_members_);
    });
  }
}

AggregatorRelay::AggregatorRelay(sim::Simulation& simulation,
                                 net::Network& network, net::NodeId controller,
                                 const net::LinkSpec& link,
                                 sim::SimTime report_interval,
                                 sim::SimTime flush_phase)
    : simulation_(simulation), network_(network), controller_(controller) {
  if (report_interval <= sim::SimTime::zero()) {
    throw std::invalid_argument("AggregatorRelay: report interval must be > 0");
  }
  if (flush_phase < sim::SimTime::zero() || flush_phase >= report_interval) {
    throw std::invalid_argument(
        "AggregatorRelay: flush phase must be in [0, report interval)");
  }
  node_id_ = network_.register_endpoint(this, link);
  reporter_ = sim::PeriodicTask(simulation_,
                                simulation_.now() + report_interval +
                                    flush_phase,
                                report_interval, [this] { flush(); });
}

AggregatorRelay::~AggregatorRelay() { reporter_.cancel(); }

void AggregatorRelay::on_message(net::NodeId /*from*/,
                                 const net::MessagePtr& message) {
  if (message->tag() != kTagDeltaReport) return;
  ++stats_.frames_received;
  pending_.push_back(
      std::static_pointer_cast<const DeltaReportMessage>(message));
}

void AggregatorRelay::flush() {
  if (pending_.empty()) return;
  ++stats_.batches_sent;
  network_.send(node_id_, controller_,
                std::make_shared<DeltaBatchMessage>(std::move(pending_)));
  pending_.clear();
}

void AggregatorRelay::link_metrics(obs::MetricsRegistry& registry,
                                   const std::string& prefix) const {
  registry.link_probe(prefix + ".frames_received", [this] {
    return static_cast<double>(stats_.frames_received);
  });
  registry.link_probe(prefix + ".batches_sent", [this] {
    return static_cast<double>(stats_.batches_sent);
  });
}

}  // namespace oddci::core

#include "core/aggregator.hpp"

#include <stdexcept>

namespace oddci::core {

HeartbeatAggregator::HeartbeatAggregator(sim::Simulation& simulation,
                                         net::Network& network,
                                         net::NodeId controller,
                                         const net::LinkSpec& link,
                                         AggregatorOptions options)
    : simulation_(simulation),
      network_(network),
      controller_(controller),
      options_(options) {
  if (options_.report_interval <= sim::SimTime::zero()) {
    throw std::invalid_argument(
        "HeartbeatAggregator: report interval must be > 0");
  }
  node_id_ = network_.register_endpoint(this, link);
  reporter_ = sim::PeriodicTask(
      simulation_, simulation_.now() + options_.report_interval,
      options_.report_interval, [this] { flush(); });
}

HeartbeatAggregator::~HeartbeatAggregator() { reporter_.cancel(); }

void HeartbeatAggregator::set_shard(std::uint64_t stride,
                                    std::uint64_t phase) {
  if (stride == 0 || phase >= stride) {
    throw std::invalid_argument("HeartbeatAggregator: bad shard");
  }
  shard_stride_ = stride;
  shard_phase_ = phase;
}

void HeartbeatAggregator::on_message(net::NodeId /*from*/,
                                     const net::MessagePtr& message) {
  if (message->tag() != kTagHeartbeat) return;
  const auto& hb = static_cast<const HeartbeatMessage&>(*message);
  ++stats_.heartbeats_received;
  const std::uint64_t id = hb.pna_id();
  if (id % shard_stride_ == shard_phase_) {
    const std::uint64_t slot = id / shard_stride_;
    if (slot < kMaxDenseSlots) {
      if (slot >= dense_.size()) dense_.resize(slot + 1);
      DenseRecord& cell = dense_[slot];
      if (cell.epoch != epoch_) {
        cell.epoch = epoch_;
        touched_.push_back(static_cast<std::uint32_t>(slot));
      }
      cell.rec = Record{hb.state(), hb.instance(), hb.trace()};
      return;
    }
  }
  overflow_[id] = Record{hb.state(), hb.instance(), hb.trace()};
}

void HeartbeatAggregator::flush() {
  if (touched_.empty() && overflow_.empty()) {
    if (!announcing_) return;
    // Still cut off from our shard after a restart: repeat the recovery
    // announcement until the Controller restores our routing slot (a lost
    // announcement must not leave us failed over forever).
    ++stats_.reports_sent;
    network_.send(
        node_id_, controller_,
        std::make_shared<AggregateReportMessage>(
            std::vector<AggregateReportMessage::Entry>{}));
    return;
  }
  announcing_ = false;
  std::vector<AggregateReportMessage::Entry> entries;
  entries.reserve(window_size());
  // Dense slots flush in arrival order (deterministic), then overflow ids.
  for (const std::uint32_t slot : touched_) {
    const Record& rec = dense_[slot].rec;
    entries.push_back({slot * shard_stride_ + shard_phase_, rec.state,
                       rec.instance, rec.trace});
  }
  for (const auto& [pna, rec] : overflow_) {
    entries.push_back({pna, rec.state, rec.instance, rec.trace});
  }
  touched_.clear();
  ++epoch_;  // every dense cell is now logically outside the window
  overflow_.clear();
  if (recorder_ != nullptr) {
    recorder_->emit(simulation_.now(), obs::TraceEventKind::kAggregateFlush,
                    obs::TraceComponent::kAggregator, {}, node_id_,
                    entries.size());
  }
  stats_.entries_forwarded += entries.size();
  ++stats_.reports_sent;
  network_.send(node_id_, controller_,
                std::make_shared<AggregateReportMessage>(std::move(entries)));
}

void HeartbeatAggregator::crash() {
  if (crashed_) return;
  crashed_ = true;
  network_.unregister_endpoint(node_id_);
  reporter_.cancel();
  // The unreported window dies with the process; the PNAs it covered will
  // be re-heard on their next heartbeat.
  touched_.clear();
  ++epoch_;
  overflow_.clear();
}

void HeartbeatAggregator::restart() {
  if (!crashed_) return;
  crashed_ = false;
  network_.reattach_endpoint(node_id_, this);
  reporter_ = sim::PeriodicTask(
      simulation_, simulation_.now() + options_.report_interval,
      options_.report_interval, [this] { flush(); });
  // Announce recovery with an empty report: if the Controller failed this
  // aggregator over while it was down, its shard is heartbeating the
  // Controller directly and would never repopulate the window here — the
  // announcement is what restores the routing slot.
  announcing_ = true;
  ++stats_.reports_sent;
  network_.send(
      node_id_, controller_,
      std::make_shared<AggregateReportMessage>(
          std::vector<AggregateReportMessage::Entry>{}));
}

void HeartbeatAggregator::link_metrics(obs::MetricsRegistry& registry,
                                       const std::string& prefix) const {
  registry.link_probe(prefix + ".heartbeats_received", [this] {
    return static_cast<double>(stats_.heartbeats_received);
  });
  registry.link_probe(prefix + ".reports_sent", [this] {
    return static_cast<double>(stats_.reports_sent);
  });
  registry.link_probe(prefix + ".entries_forwarded", [this] {
    return static_cast<double>(stats_.entries_forwarded);
  });
  registry.link_probe(prefix + ".window_size", [this] {
    return static_cast<double>(window_size());
  });
}

}  // namespace oddci::core

#include "core/backend.hpp"

#include <stdexcept>

namespace oddci::core {

Backend::Backend(sim::Simulation& simulation, net::Network& network,
                 const net::LinkSpec& link, BackendOptions options)
    : simulation_(simulation), network_(network), options_(options) {
  node_id_ = network_.register_endpoint(this, link);
}

Backend::~Backend() {
  if (sweeper_running_) sweeper_.cancel();
}

bool Backend::would_admit(const workload::Job& job) {
  if (engine_ == nullptr) return true;
  control::AdmissionRequest request;
  request.now = simulation_.now();
  request.tasks = job.task_count();
  request.input_bits = job.avg_input_bits();
  request.result_bits = job.avg_result_bits();
  request.task_seconds = job.avg_reference_seconds() * admission_slowdown_;
  request.delta = admission_delta_;
  return engine_->admit(request) == control::Admission::kAdmit;
}

void Backend::submit(const workload::Job& job, InstanceId instance,
                     std::function<void()> on_complete,
                     std::optional<sim::SimTime> clock_start,
                     obs::TraceContext trace) {
  if (active_) {
    throw std::logic_error("Backend: a job is already active");
  }
  job.validate();
  if (instance == kNoInstance) {
    throw std::invalid_argument("Backend: invalid instance id");
  }

  active_ = true;
  instance_ = instance;
  job_trace_ = trace;
  job_ = job;
  on_complete_ = std::move(on_complete);

  pending_.clear();
  outstanding_.clear();
  done_.assign(job_.tasks.size(), false);
  done_count_ = 0;
  retry_counts_.assign(job_.tasks.size(), 0);
  failed_.assign(job_.tasks.size(), false);
  failed_count_ = 0;
  job_failed_ = false;
  completion_times_.clear();
  completion_times_.reserve(job_.tasks.size());
  for (std::uint64_t i = 0; i < job_.tasks.size(); ++i) {
    pending_.push_back(i);
  }

  metrics_ = JobMetrics{};
  metrics_.submitted_at = clock_start.value_or(simulation_.now());
  metrics_.task_count = job_.tasks.size();

  if (options_.task_timeout > sim::SimTime::zero()) {
    arm_sweeper();
  }
}

void Backend::arm_sweeper() {
  sweeper_ = sim::PeriodicTask(
      simulation_, simulation_.now() + options_.sweep_interval,
      options_.sweep_interval, [this] { sweep_timeouts(); });
  sweeper_running_ = true;
}

void Backend::set_task_timeout(sim::SimTime timeout) {
  options_.task_timeout = timeout;
  if (!active_ || crashed_) return;
  if (sweeper_running_) {
    sweeper_.cancel();
    sweeper_running_ = false;
  }
  if (timeout > sim::SimTime::zero()) arm_sweeper();
}

void Backend::on_message(net::NodeId from, const net::MessagePtr& message) {
  switch (message->tag()) {
    case kTagTaskRequest:
      handle_request(from, static_cast<const TaskRequestMessage&>(*message));
      break;
    case kTagTaskResult:
      handle_result(from, static_cast<const TaskResultMessage&>(*message));
      break;
    case kTagTaskAbort: {
      const auto& abort = static_cast<const TaskAbortMessage&>(*message);
      if (!active_ || abort.instance() != instance_) break;
      const std::uint64_t index = abort.task_index();
      if (index < done_.size() && !done_[index] && !failed_[index] &&
          outstanding_.erase(index) > 0) {
        ++metrics_.aborts_received;
        if (tracer_ != nullptr) tracer_->discard("task.cycle", index);
        if (recorder_ != nullptr) {
          recorder_->emit(simulation_.now(),
                          obs::TraceEventKind::kTaskAborted,
                          obs::TraceComponent::kBackend, abort.trace(),
                          abort.pna_id(), index);
        }
        note_retry(index);
      }
      break;
    }
    default:
      break;
  }
}

void Backend::handle_request(net::NodeId from,
                             const TaskRequestMessage& request) {
  if (!active_ || request.instance() != instance_ || pending_.empty()) {
    ++metrics_.requests_denied;
    network_.send(node_id_, from,
                  std::make_shared<NoTaskMessage>(instance_));
    return;
  }
  const std::uint64_t index = pending_.front();
  pending_.pop_front();
  obs::TraceContext dispatch;
  if (recorder_ != nullptr) {
    dispatch = recorder_->emit(
        simulation_.now(), obs::TraceEventKind::kTaskDispatched,
        obs::TraceComponent::kBackend, job_trace_, from, index);
  }
  outstanding_[index] = Outstanding{from, simulation_.now(), dispatch};
  ++metrics_.assignments;
  if (tracer_ != nullptr) {
    tracer_->begin("task.cycle", index, simulation_.now().seconds());
  }

  const workload::Task& task = job_.tasks[index];
  network_.send(node_id_, from,
                std::make_shared<TaskAssignMessage>(
                    instance_, index, task.input_size, task.result_size,
                    task.reference_seconds, dispatch));
}

void Backend::handle_result(net::NodeId from, const TaskResultMessage& result) {
  if (result.instance() != instance_) return;
  const std::uint64_t index = result.task_index();
  if (index >= done_.size()) return;
  ++metrics_.results_received;
  // Ack before any dedup decision: the ack is idempotent, and a duplicate
  // delivery's sender needs it just as much as the first one's.
  if (options_.ack_results) {
    network_.send(node_id_, from,
                  std::make_shared<TaskResultAckMessage>(instance_, index));
  }
  if (!active_) {
    // Straggler of the final re-dispatch wave: the job already ended.
    ++metrics_.late_results;
    return;
  }
  if (done_[index] || failed_[index]) {
    // Re-dispatched, trim-raced, or duplicate-delivered tasks legitimately
    // finish twice; only the first result is kept.
    ++metrics_.duplicate_results;
    return;
  }
  done_[index] = true;
  ++done_count_;
  task_retries_.record(static_cast<double>(retry_counts_[index]));
  const auto out_it = outstanding_.find(index);
  if (out_it != outstanding_.end()) {
    task_cycle_.record(
        (simulation_.now() - out_it->second.assigned_at).seconds());
    outstanding_.erase(out_it);
  }
  if (tracer_ != nullptr) {
    tracer_->end("task.cycle", index, simulation_.now().seconds());
  }
  if (recorder_ != nullptr) {
    recorder_->emit(simulation_.now(), obs::TraceEventKind::kTaskResult,
                    obs::TraceComponent::kBackend, result.trace(),
                    result.pna_id(), index);
  }
  completion_times_.push_back(
      (simulation_.now() - metrics_.submitted_at).seconds());

  check_job_done();
}

void Backend::check_job_done() {
  if (!active_ || done_count_ + failed_count_ != done_.size()) return;
  if (failed_count_ == 0) {
    metrics_.completed_at = simulation_.now();
  } else {
    job_failed_ = true;
  }
  active_ = false;
  if (sweeper_running_) {
    sweeper_.cancel();
    sweeper_running_ = false;
  }
  if (on_complete_) {
    // Move out first: the callback may submit a new job.
    auto cb = std::move(on_complete_);
    on_complete_ = nullptr;
    cb();
  }
}

bool Backend::note_retry(std::uint64_t index) {
  if (options_.max_task_retries > 0 &&
      retry_counts_[index] >=
          static_cast<std::uint16_t>(options_.max_task_retries)) {
    fail_task(index);
    return false;
  }
  ++retry_counts_[index];
  pending_.push_back(index);
  return true;
}

void Backend::fail_task(std::uint64_t index) {
  failed_[index] = true;
  ++failed_count_;
  ++metrics_.tasks_failed;
  if (recorder_ != nullptr) {
    recorder_->emit(simulation_.now(), obs::TraceEventKind::kTaskFailed,
                    obs::TraceComponent::kBackend, job_trace_, 0, index);
  }
  check_job_done();
}

void Backend::sweep_timeouts() {
  if (!active_) return;
  std::vector<std::uint64_t> expired;
  for (const auto& [index, out] : outstanding_) {
    if (simulation_.now() - out.assigned_at > options_.task_timeout) {
      expired.push_back(index);
    }
  }
  for (std::uint64_t index : expired) {
    const obs::TraceContext dispatch = outstanding_.at(index).trace;
    outstanding_.erase(index);
    if (tracer_ != nullptr) tracer_->discard("task.cycle", index);
    if (note_retry(index)) {
      ++metrics_.reassignments;
      if (recorder_ != nullptr) {
        recorder_->emit(simulation_.now(), obs::TraceEventKind::kTaskRequeued,
                        obs::TraceComponent::kBackend, dispatch, 0, index);
      }
    }
  }
}

void Backend::crash() {
  if (crashed_) return;
  crashed_ = true;
  network_.unregister_endpoint(node_id_);
  if (sweeper_running_) {
    sweeper_.cancel();
    sweeper_running_ = false;
  }
  // The assignment table is in-memory state and dies with the process; the
  // job ledger (done_/failed_/pending_/retry_counts_) is stable storage.
  outstanding_.clear();
}

void Backend::restart() {
  if (!crashed_) return;
  crashed_ = false;
  network_.reattach_endpoint(node_id_, this);
  if (active_) {
    // Every task that was outstanding at crash time lost its assignment
    // record; without it the timeout sweep can never reclaim the task, so
    // re-queue them all now. Exempt from the retry cap: this is work the
    // Backend lost, not work that keeps failing.
    std::vector<bool> queued(done_.size(), false);
    for (const std::uint64_t index : pending_) queued[index] = true;
    for (std::uint64_t index = 0; index < done_.size(); ++index) {
      if (done_[index] || failed_[index] || queued[index]) continue;
      pending_.push_back(index);
      ++metrics_.crash_requeues;
      if (recorder_ != nullptr) {
        recorder_->emit(simulation_.now(), obs::TraceEventKind::kTaskRequeued,
                        obs::TraceComponent::kBackend, job_trace_, 0, index);
      }
    }
    if (options_.task_timeout > sim::SimTime::zero()) arm_sweeper();
  }
}

void Backend::link_metrics(obs::MetricsRegistry& registry) const {
  registry.link_histogram("backend.task_cycle_seconds", task_cycle_);
  registry.link_histogram("backend.task_retries", task_retries_);
  registry.link_probe("backend.duplicate_results", [this] {
    return static_cast<double>(metrics_.duplicate_results);
  });
  registry.link_probe("backend.late_results", [this] {
    return static_cast<double>(metrics_.late_results);
  });
  if (options_.max_task_retries > 0) {
    registry.link_probe("backend.tasks_failed", [this] {
      return static_cast<double>(metrics_.tasks_failed);
    });
    registry.link_probe("backend.crash_requeues", [this] {
      return static_cast<double>(metrics_.crash_requeues);
    });
  }
  registry.link_probe("backend.pending_tasks", [this] {
    return static_cast<double>(pending_.size());
  });
  registry.link_probe("backend.outstanding_tasks", [this] {
    return static_cast<double>(outstanding_.size());
  });
  registry.link_probe("backend.tasks_done", [this] {
    return static_cast<double>(done_count_);
  });
  registry.link_probe("backend.assignments", [this] {
    return static_cast<double>(metrics_.assignments);
  });
  registry.link_probe("backend.reassignments", [this] {
    return static_cast<double>(metrics_.reassignments);
  });
  registry.link_probe("backend.requests_denied", [this] {
    return static_cast<double>(metrics_.requests_denied);
  });
}

}  // namespace oddci::core

#include "core/backend.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/verify.hpp"

namespace oddci::core {

Backend::Backend(sim::Simulation& simulation, net::Network& network,
                 const net::LinkSpec& link, BackendOptions options)
    : simulation_(simulation), network_(network), options_(options) {
  node_id_ = network_.register_endpoint(this, link);
}

Backend::~Backend() {
  if (sweeper_running_) sweeper_.cancel();
}

bool Backend::would_admit(const workload::Job& job) {
  if (engine_ == nullptr) return true;
  control::AdmissionRequest request;
  request.now = simulation_.now();
  request.tasks = job.task_count();
  request.input_bits = job.avg_input_bits();
  request.result_bits = job.avg_result_bits();
  request.task_seconds = job.avg_reference_seconds() * admission_slowdown_;
  request.delta = admission_delta_;
  if (verifier_ != nullptr) {
    // Verified execution multiplies every task's bandwidth/compute cost by
    // the observed redundancy factor; discount the suitability accordingly.
    request.verify_overhead = verifier_->overhead_estimate();
  }
  return engine_->admit(request) == control::Admission::kAdmit;
}

void Backend::submit(const workload::Job& job, InstanceId instance,
                     std::function<void()> on_complete,
                     std::optional<sim::SimTime> clock_start,
                     obs::TraceContext trace) {
  if (active_) {
    throw std::logic_error("Backend: a job is already active");
  }
  job.validate();
  if (instance == kNoInstance) {
    throw std::invalid_argument("Backend: invalid instance id");
  }

  active_ = true;
  instance_ = instance;
  job_trace_ = trace;
  job_ = job;
  on_complete_ = std::move(on_complete);

  pending_.clear();
  outstanding_.clear();
  done_.assign(job_.tasks.size(), false);
  done_count_ = 0;
  retry_counts_.assign(job_.tasks.size(), 0);
  failed_.assign(job_.tasks.size(), false);
  failed_count_ = 0;
  job_failed_ = false;
  completion_times_.clear();
  completion_times_.reserve(job_.tasks.size());
  for (std::uint64_t i = 0; i < job_.tasks.size(); ++i) {
    pending_.push_back(i);
  }

  if (verifier_ != nullptr) {
    verifier_->begin_job(instance, &job_);
    pending_marks_.assign(job_.tasks.size(), 1);
    revote_counts_.assign(job_.tasks.size(), 0);
  }

  metrics_ = JobMetrics{};
  metrics_.submitted_at = clock_start.value_or(simulation_.now());
  metrics_.task_count = job_.tasks.size();

  if (options_.task_timeout > sim::SimTime::zero()) {
    arm_sweeper();
  }
}

void Backend::arm_sweeper() {
  sweeper_ = sim::PeriodicTask(
      simulation_, simulation_.now() + options_.sweep_interval,
      options_.sweep_interval, [this] { sweep_timeouts(); });
  sweeper_running_ = true;
}

void Backend::set_task_timeout(sim::SimTime timeout) {
  options_.task_timeout = timeout;
  if (!active_ || crashed_) return;
  if (sweeper_running_) {
    sweeper_.cancel();
    sweeper_running_ = false;
  }
  if (timeout > sim::SimTime::zero()) arm_sweeper();
}

void Backend::on_message(net::NodeId from, const net::MessagePtr& message) {
  switch (message->tag()) {
    case kTagTaskRequest:
      handle_request(from, static_cast<const TaskRequestMessage&>(*message));
      break;
    case kTagTaskResult:
      handle_result(from, static_cast<const TaskResultMessage&>(*message));
      break;
    case kTagTaskAbort: {
      const auto& abort = static_cast<const TaskAbortMessage&>(*message);
      if (!active_ || abort.instance() != instance_) break;
      const std::uint64_t index = abort.task_index();
      // Naive aborts always carry replica 0, so the composite key stays
      // numerically identical to the raw index there.
      if (index < done_.size() && !done_[index] && !failed_[index] &&
          outstanding_.erase(vkey(index, abort.replica())) > 0) {
        ++metrics_.aborts_received;
        if (verifier_ == nullptr && tracer_ != nullptr) {
          tracer_->discard("task.cycle", index);
        }
        if (recorder_ != nullptr) {
          recorder_->emit(simulation_.now(),
                          obs::TraceEventKind::kTaskAborted,
                          obs::TraceComponent::kBackend, abort.trace(),
                          abort.pna_id(), index);
        }
        if (verifier_ != nullptr) verifier_->on_replica_lost(index);
        note_retry(index);
      }
      break;
    }
    default:
      break;
  }
}

void Backend::handle_request(net::NodeId from,
                             const TaskRequestMessage& request) {
  if (verifier_ != nullptr) {
    handle_request_verified(from, request);
    return;
  }
  if (!active_ || request.instance() != instance_ || pending_.empty()) {
    ++metrics_.requests_denied;
    network_.send(node_id_, from,
                  std::make_shared<NoTaskMessage>(instance_));
    return;
  }
  const std::uint64_t index = pending_.front();
  pending_.pop_front();
  obs::TraceContext dispatch;
  if (recorder_ != nullptr) {
    dispatch = recorder_->emit(
        simulation_.now(), obs::TraceEventKind::kTaskDispatched,
        obs::TraceComponent::kBackend, job_trace_, from, index);
  }
  outstanding_[index] = Outstanding{from, simulation_.now(), dispatch};
  ++metrics_.assignments;
  if (tracer_ != nullptr) {
    tracer_->begin("task.cycle", index, simulation_.now().seconds());
  }

  const workload::Task& task = job_.tasks[index];
  network_.send(node_id_, from,
                std::make_shared<TaskAssignMessage>(
                    instance_, index, task.input_size, task.result_size,
                    task.reference_seconds, dispatch));
}

void Backend::handle_request_verified(net::NodeId from,
                                      const TaskRequestMessage& request) {
  if (!active_ || request.instance() != instance_) {
    ++metrics_.requests_denied;
    network_.send(node_id_, from, std::make_shared<NoTaskMessage>(instance_));
    return;
  }
  switch (verifier_->poll_gate(from)) {
    case Verifier::PollGate::kDeny:
      // Quarantined and no parole slot this poll.
      ++metrics_.requests_denied;
      network_.send(node_id_, from,
                    std::make_shared<NoTaskMessage>(instance_));
      return;
    case Verifier::PollGate::kSpot: {
      const Verifier::SpotTask spot = verifier_->make_spot_check(from);
      obs::TraceContext dispatch;
      if (recorder_ != nullptr) {
        dispatch = recorder_->emit(
            simulation_.now(), obs::TraceEventKind::kTaskDispatched,
            obs::TraceComponent::kBackend, job_trace_, from, spot.index);
      }
      // Spot checks never enter the outstanding table or the assignment
      // tally: they are verification traffic, not job progress.
      network_.send(node_id_, from,
                    std::make_shared<TaskAssignMessage>(
                        instance_, spot.index, spot.input_size,
                        spot.result_size, spot.reference_seconds, dispatch));
      return;
    }
    case Verifier::PollGate::kTask:
      break;
  }

  // Bounded two-pass scan over the head of the queue: prefer a task this
  // PNA may serve under the strict region-diversity rule (no two replicas
  // from one collusion-correlated aggregator region); fall back to any
  // task it has not already served. Stale entries (concluded or failed
  // since queuing) are dropped lazily as they surface.
  constexpr std::size_t kScanLimit = 32;
  std::size_t scanned = 0;
  std::size_t pos = 0;
  std::size_t strict_pos = pending_.size();
  std::size_t relaxed_pos = pending_.size();
  while (pos < pending_.size() && scanned < kScanLimit) {
    const std::uint64_t idx = pending_[pos];
    if (done_[idx] || failed_[idx] || !verifier_->needs_replica(idx)) {
      pending_marks_[idx] = 0;
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(pos));
      continue;
    }
    ++scanned;
    if (verifier_->may_assign(idx, from, /*region_strict=*/true)) {
      strict_pos = pos;
      break;
    }
    if (relaxed_pos == pending_.size() &&
        verifier_->may_assign(idx, from, /*region_strict=*/false)) {
      relaxed_pos = pos;
    }
    ++pos;
  }

  const bool relaxed = strict_pos >= pending_.size();
  const std::size_t pick = relaxed ? relaxed_pos : strict_pos;
  if (pick >= pending_.size()) {
    ++metrics_.requests_denied;
    network_.send(node_id_, from, std::make_shared<NoTaskMessage>(instance_));
    return;
  }
  const std::uint64_t index = pending_[pick];
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(pick));
  pending_marks_[index] = 0;
  if (relaxed) verifier_->note_region_relaxed();

  const Verifier::Dispatch d = verifier_->on_dispatch(index, from);
  if (d.more_replicas) push_pending(index);

  obs::TraceContext dispatch;
  if (recorder_ != nullptr) {
    dispatch = recorder_->emit(
        simulation_.now(), obs::TraceEventKind::kTaskDispatched,
        obs::TraceComponent::kBackend, job_trace_, from, index);
  }
  outstanding_[vkey(index, d.replica)] =
      Outstanding{from, simulation_.now(), dispatch};
  ++metrics_.assignments;

  const workload::Task& task = job_.tasks[index];
  network_.send(node_id_, from,
                std::make_shared<TaskAssignMessage>(
                    instance_, index, task.input_size, task.result_size,
                    task.reference_seconds, dispatch, d.replica));
}

void Backend::handle_result(net::NodeId from, const TaskResultMessage& result) {
  if (verifier_ != nullptr) {
    handle_result_verified(from, result);
    return;
  }
  if (result.instance() != instance_) return;
  const std::uint64_t index = result.task_index();
  if (index >= done_.size()) return;
  ++metrics_.results_received;
  // Ack before any dedup decision: the ack is idempotent, and a duplicate
  // delivery's sender needs it just as much as the first one's.
  if (options_.ack_results) {
    network_.send(node_id_, from,
                  std::make_shared<TaskResultAckMessage>(instance_, index));
  }
  if (!active_) {
    // Straggler of the final re-dispatch wave: the job already ended.
    ++metrics_.late_results;
    return;
  }
  if (done_[index] || failed_[index]) {
    // Re-dispatched, trim-raced, or duplicate-delivered tasks legitimately
    // finish twice; only the first result is kept.
    ++metrics_.duplicate_results;
    return;
  }
  done_[index] = true;
  ++done_count_;
  task_retries_.record(static_cast<double>(retry_counts_[index]));
  const auto out_it = outstanding_.find(index);
  if (out_it != outstanding_.end()) {
    task_cycle_.record(
        (simulation_.now() - out_it->second.assigned_at).seconds());
    outstanding_.erase(out_it);
  }
  if (tracer_ != nullptr) {
    tracer_->end("task.cycle", index, simulation_.now().seconds());
  }
  if (recorder_ != nullptr) {
    recorder_->emit(simulation_.now(), obs::TraceEventKind::kTaskResult,
                    obs::TraceComponent::kBackend, result.trace(),
                    result.pna_id(), index);
  }
  completion_times_.push_back(
      (simulation_.now() - metrics_.submitted_at).seconds());

  check_job_done();
}

void Backend::handle_result_verified(net::NodeId from,
                                     const TaskResultMessage& result) {
  if (result.instance() != instance_) return;
  const std::uint64_t index = result.task_index();
  if (verifier_->is_spot_index(index)) {
    // Seeded spot-check: verification traffic, graded against the
    // precomputed answer and kept out of every job-progress metric.
    if (options_.ack_results) {
      network_.send(node_id_, from,
                    std::make_shared<TaskResultAckMessage>(instance_, index));
    }
    verifier_->on_spot_result(index, result.pna_id(), result.digest());
    return;
  }
  if (index >= done_.size()) return;
  ++metrics_.results_received;
  if (options_.ack_results) {
    network_.send(node_id_, from,
                  std::make_shared<TaskResultAckMessage>(instance_, index));
  }
  if (!active_) {
    ++metrics_.late_results;
    return;
  }
  if (done_[index] || failed_[index]) {
    ++metrics_.duplicate_results;
    return;
  }
  const auto out_it = outstanding_.find(vkey(index, result.replica()));
  if (out_it == outstanding_.end()) {
    // The replica's slot was already written off (timeout sweep or crash);
    // its vote died with it.
    ++metrics_.duplicate_results;
    return;
  }
  const double cycle_seconds =
      (simulation_.now() - out_it->second.assigned_at).seconds();
  task_cycle_.record(cycle_seconds);
  outstanding_.erase(out_it);

  const Verifier::Verdict verdict =
      verifier_->on_result(index, result.pna_id(), result.digest(),
                           result.trace(), cycle_seconds);
  switch (verdict.outcome) {
    case Verifier::Verdict::Outcome::kAccepted:
      done_[index] = true;
      ++done_count_;
      task_retries_.record(static_cast<double>(retry_counts_[index]));
      task_revotes_.record(static_cast<double>(revote_counts_[index]));
      if (recorder_ != nullptr) {
        recorder_->emit(simulation_.now(), obs::TraceEventKind::kTaskResult,
                        obs::TraceComponent::kBackend, result.trace(),
                        result.pna_id(), index);
      }
      completion_times_.push_back(
          (simulation_.now() - metrics_.submitted_at).seconds());
      check_job_done();
      break;
    case Verifier::Verdict::Outcome::kEscalated:
    case Verifier::Verdict::Outcome::kDiscarded:
      // Quorum-driven re-queue: tracked apart from loss retries so a noisy
      // vote can never trip the per-task retry cap.
      ++revote_counts_[index];
      if (verdict.requeue) push_pending(index);
      break;
    case Verifier::Verdict::Outcome::kPending:
      // Sequential quorum: the vote landed but the round wants another
      // replica that is not yet live — put the task back in the queue.
      if (verdict.requeue) push_pending(index);
      break;
  }
}

void Backend::check_job_done() {
  if (!active_ || done_count_ + failed_count_ != done_.size()) return;
  if (failed_count_ == 0) {
    metrics_.completed_at = simulation_.now();
  } else {
    job_failed_ = true;
  }
  active_ = false;
  if (sweeper_running_) {
    sweeper_.cancel();
    sweeper_running_ = false;
  }
  if (on_complete_) {
    // Move out first: the callback may submit a new job.
    auto cb = std::move(on_complete_);
    on_complete_ = nullptr;
    cb();
  }
}

bool Backend::note_retry(std::uint64_t index) {
  if (options_.max_task_retries > 0 &&
      retry_counts_[index] >=
          static_cast<std::uint16_t>(options_.max_task_retries)) {
    fail_task(index);
    return false;
  }
  ++retry_counts_[index];
  push_pending(index);
  return true;
}

void Backend::push_pending(std::uint64_t index) {
  if (verifier_ != nullptr) {
    if (pending_marks_[index] != 0) return;
    pending_marks_[index] = 1;
  }
  pending_.push_back(index);
}

void Backend::fail_task(std::uint64_t index) {
  failed_[index] = true;
  ++failed_count_;
  ++metrics_.tasks_failed;
  if (verifier_ != nullptr) {
    // Write off the task's remaining live replicas: their results, if any
    // ever arrive, will be refused by the failed_ guard, and the verifier's
    // conservation ledger must not count them outstanding forever.
    for (auto it = outstanding_.begin(); it != outstanding_.end();) {
      if ((it->first & kIndexMask) == index) {
        verifier_->on_replica_lost(index);
        it = outstanding_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (recorder_ != nullptr) {
    recorder_->emit(simulation_.now(), obs::TraceEventKind::kTaskFailed,
                    obs::TraceComponent::kBackend, job_trace_, 0, index);
  }
  check_job_done();
}

void Backend::sweep_timeouts() {
  if (!active_) return;
  std::vector<std::uint64_t> expired;
  for (const auto& [key, out] : outstanding_) {
    if (simulation_.now() - out.assigned_at > options_.task_timeout) {
      expired.push_back(key);
    }
  }
  for (std::uint64_t key : expired) {
    // A key scanned as expired may already be gone: failing one task (via
    // note_retry below) writes off its sibling replicas.
    const auto it = outstanding_.find(key);
    if (it == outstanding_.end()) continue;
    const obs::TraceContext dispatch = it->second.trace;
    outstanding_.erase(it);
    const std::uint64_t index = key & kIndexMask;
    if (verifier_ == nullptr && tracer_ != nullptr) {
      tracer_->discard("task.cycle", index);
    }
    if (verifier_ != nullptr) verifier_->on_replica_lost(index);
    if (note_retry(index)) {
      ++metrics_.reassignments;
      if (recorder_ != nullptr) {
        recorder_->emit(simulation_.now(), obs::TraceEventKind::kTaskRequeued,
                        obs::TraceComponent::kBackend, dispatch, 0, index);
      }
    }
  }
}

void Backend::crash() {
  if (crashed_) return;
  crashed_ = true;
  network_.unregister_endpoint(node_id_);
  if (sweeper_running_) {
    sweeper_.cancel();
    sweeper_running_ = false;
  }
  // The assignment table is in-memory state and dies with the process; the
  // job ledger (done_/failed_/pending_/retry_counts_) is stable storage.
  // The verifier's volatile quorum state dies the same way (its reputation
  // ledger is durable).
  outstanding_.clear();
  if (verifier_ != nullptr) verifier_->on_crash();
}

void Backend::restart() {
  if (!crashed_) return;
  crashed_ = false;
  network_.reattach_endpoint(node_id_, this);
  if (active_) {
    // Every task that was outstanding at crash time lost its assignment
    // record; without it the timeout sweep can never reclaim the task, so
    // re-queue them all now. Exempt from the retry cap: this is work the
    // Backend lost, not work that keeps failing.
    std::vector<bool> queued(done_.size(), false);
    for (const std::uint64_t index : pending_) queued[index] = true;
    for (std::uint64_t index = 0; index < done_.size(); ++index) {
      if (done_[index] || failed_[index] || queued[index]) continue;
      pending_.push_back(index);
      ++metrics_.crash_requeues;
      if (recorder_ != nullptr) {
        recorder_->emit(simulation_.now(), obs::TraceEventKind::kTaskRequeued,
                        obs::TraceComponent::kBackend, job_trace_, 0, index);
      }
    }
    if (verifier_ != nullptr) {
      std::fill(pending_marks_.begin(), pending_marks_.end(), 0);
      for (const std::uint64_t index : pending_) pending_marks_[index] = 1;
    }
    if (options_.task_timeout > sim::SimTime::zero()) arm_sweeper();
  }
}

void Backend::link_metrics(obs::MetricsRegistry& registry) const {
  registry.link_histogram("backend.task_cycle_seconds", task_cycle_);
  registry.link_histogram("backend.task_retries", task_retries_);
  if (verifier_ != nullptr) {
    registry.link_histogram("backend.task_revotes", task_revotes_);
  }
  registry.link_probe("backend.duplicate_results", [this] {
    return static_cast<double>(metrics_.duplicate_results);
  });
  registry.link_probe("backend.late_results", [this] {
    return static_cast<double>(metrics_.late_results);
  });
  if (options_.max_task_retries > 0) {
    registry.link_probe("backend.tasks_failed", [this] {
      return static_cast<double>(metrics_.tasks_failed);
    });
    registry.link_probe("backend.crash_requeues", [this] {
      return static_cast<double>(metrics_.crash_requeues);
    });
  }
  registry.link_probe("backend.pending_tasks", [this] {
    return static_cast<double>(pending_.size());
  });
  registry.link_probe("backend.outstanding_tasks", [this] {
    return static_cast<double>(outstanding_.size());
  });
  registry.link_probe("backend.tasks_done", [this] {
    return static_cast<double>(done_count_);
  });
  registry.link_probe("backend.assignments", [this] {
    return static_cast<double>(metrics_.assignments);
  });
  registry.link_probe("backend.reassignments", [this] {
    return static_cast<double>(metrics_.reassignments);
  });
  registry.link_probe("backend.requests_denied", [this] {
    return static_cast<double>(metrics_.requests_denied);
  });
}

}  // namespace oddci::core

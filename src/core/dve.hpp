#pragma once

#include "core/messages.hpp"
#include "sim/time.hpp"

/// Device Virtual Environment: the sandbox a PNA creates to load and run a
/// user application image (Section 3.2). Destroying the DVE frees the node
/// and returns the PNA to idle.
namespace oddci::core {

class Dve {
 public:
  Dve(InstanceId instance, ImageSpec image, sim::SimTime created_at)
      : instance_(instance), image_(std::move(image)),
        created_at_(created_at) {}

  [[nodiscard]] InstanceId instance() const { return instance_; }
  [[nodiscard]] const ImageSpec& image() const { return image_; }
  [[nodiscard]] sim::SimTime created_at() const { return created_at_; }

  [[nodiscard]] std::uint64_t tasks_completed() const {
    return tasks_completed_;
  }
  void record_task_completed() { ++tasks_completed_; }

 private:
  InstanceId instance_;
  ImageSpec image_;
  sim::SimTime created_at_;
  std::uint64_t tasks_completed_ = 0;
};

}  // namespace oddci::core

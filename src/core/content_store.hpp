#pragma once

#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "core/messages.hpp"
#include "core/wire.hpp"
#include "obs/metrics.hpp"

/// Logical contents of carousel files.
///
/// The broadcast layer schedules *bits*; the payloads live here, keyed by
/// the carousel file's content id — stored as the actual wire encoding
/// (core/wire.hpp), exactly the bytes a real carousel module would carry.
/// The Controller writes, PNAs read-and-decode once the carousel says the
/// file has been acquired.
namespace oddci::core {

class ContentStore {
 public:
  /// Sharded kernel: the Controller (control shard) writes while PNAs on
  /// worker shards read, inside the same window. Turn on reader/writer
  /// locking and eager decode-memoization at put time (readers then never
  /// mutate the memo). Single-shard runs never touch the mutex.
  void set_concurrent(bool on) { concurrent_ = on; }

  /// Encode and store a control message; returns its content id.
  std::uint64_t put_control(const ControlMessage& message);

  /// Fetch and decode by content id; nullopt if absent or (defensively)
  /// if the stored bytes fail to parse.
  [[nodiscard]] std::optional<ControlMessage> get_control(
      std::uint64_t id) const;

  /// Shared-decode fast path: the first reader of a content id pays the
  /// decode + canonicalization + digest; every later reader of the same id
  /// gets the same immutable `PreparedControl`. This is what lets a
  /// broadcast to N receivers decode once instead of N times. Returns
  /// nullptr if absent or unparsable.
  [[nodiscard]] PreparedControlPtr get_control_shared(std::uint64_t id) const;

  /// Raw stored bytes (diagnostics/tests); nullptr if absent.
  [[nodiscard]] const std::string* get_bytes(std::uint64_t id) const;

  /// Drop a superseded payload (it left the carousel). Returns false if
  /// the id was unknown.
  bool remove(std::uint64_t id);

  [[nodiscard]] std::size_t size() const { return blobs_.size(); }

  /// Times the shared encode buffer was reused with warm capacity
  /// (i.e. put_control calls after the first).
  [[nodiscard]] const obs::Counter& writer_reuses() const {
    return writer_reuses_;
  }

 private:
  std::unordered_map<std::uint64_t, std::string> blobs_;
  /// Lazily-populated decode memo for get_control_shared; entries die with
  /// their blob (remove()) so a re-used id can never serve stale bytes.
  mutable std::unordered_map<std::uint64_t, PreparedControlPtr> prepared_;
  /// Encode buffer reused across put_control calls (capacity persists).
  wire::Writer writer_;
  bool writer_used_ = false;
  obs::Counter writer_reuses_;
  std::uint64_t next_id_ = 1;
  bool concurrent_ = false;
  mutable std::shared_mutex mutex_;
};

}  // namespace oddci::core

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/messages.hpp"

/// Logical contents of carousel files.
///
/// The broadcast layer schedules *bits*; the payloads live here, keyed by
/// the carousel file's content id — stored as the actual wire encoding
/// (core/wire.hpp), exactly the bytes a real carousel module would carry.
/// The Controller writes, PNAs read-and-decode once the carousel says the
/// file has been acquired.
namespace oddci::core {

class ContentStore {
 public:
  /// Encode and store a control message; returns its content id.
  std::uint64_t put_control(const ControlMessage& message);

  /// Fetch and decode by content id; nullopt if absent or (defensively)
  /// if the stored bytes fail to parse.
  [[nodiscard]] std::optional<ControlMessage> get_control(
      std::uint64_t id) const;

  /// Raw stored bytes (diagnostics/tests); nullptr if absent.
  [[nodiscard]] const std::string* get_bytes(std::uint64_t id) const;

  /// Drop a superseded payload (it left the carousel). Returns false if
  /// the id was unknown.
  bool remove(std::uint64_t id);

  [[nodiscard]] std::size_t size() const { return blobs_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::string> blobs_;
  std::uint64_t next_id_ = 1;
};

}  // namespace oddci::core

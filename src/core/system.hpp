#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "broadcast/channel.hpp"
#include "broadcast/multicast.hpp"
#include "core/aggregator.hpp"
#include "core/backend.hpp"
#include "core/churn.hpp"
#include "core/content_store.hpp"
#include "core/controller.hpp"
#include "core/pna.hpp"
#include "core/provider.hpp"
#include "core/verify.hpp"
#include "dtv/receiver.hpp"
#include "fault/fault.hpp"
#include "net/network.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "sim/sharded.hpp"
#include "sim/simulation.hpp"
#include "workload/job.hpp"

/// End-to-end OddCI-DTV system harness: wires the simulation kernel, the
/// broadcast channel, a population of receivers running the PNA trigger
/// application, and the Provider/Controller/Backend trio. This is the
/// public entry point the examples and the benchmark harnesses use.
namespace oddci::core {

/// Which one-to-many substrate carries the PNA and images (Section 3.3).
enum class BroadcastTechnology {
  kDtvCarousel,   ///< DSM-CC object carousel on a DTV transport stream
  kIpMulticast,   ///< block-coded IP multicast sessions (OddCI-IPTV)
};

struct SystemConfig {
  std::size_t receivers = 1000;
  BroadcastTechnology technology = BroadcastTechnology::kDtvCarousel;
  /// Parameters of the multicast delivery (kIpMulticast only).
  broadcast::MulticastOptions multicast;
  /// Number of broadcast (TV) channels carrying the PNA (Section 4.3:
  /// more channels reach more receivers). Receivers are spread uniformly
  /// across channels; the Controller stages control messages on all.
  std::size_t channels = 1;
  /// Unused broadcast capacity available to the carousel (the paper's beta),
  /// per channel.
  util::BitRate beta = util::BitRate::from_mbps(1.0);
  /// Per-section broadcast loss probability (0 = clean channel); lost
  /// sections are recovered on later carousel cycles.
  double section_loss = 0.0;
  /// Per-receiver direct-channel capacity, both directions (delta).
  util::BitRate delta = util::BitRate::from_kbps(150.0);
  sim::SimTime receiver_latency = sim::SimTime::from_millis(50);
  /// Controller/Backend access capacity (well provisioned by assumption).
  util::BitRate server_capacity = util::BitRate::from_mbps(10000.0);
  sim::SimTime server_latency = sim::SimTime::from_millis(5);

  dtv::DeviceProfile profile = dtv::DeviceProfile::reference_stb();
  dtv::PowerMode initial_power = dtv::PowerMode::kStandby;
  /// Fraction of receivers tuned to the OddCI channel (the rest never see
  /// the carousel).
  double tuned_fraction = 1.0;

  /// Control-plane knobs, passed to the Controller verbatim. This is the
  /// single home for the heartbeat cadence (`controller.default_heartbeat`),
  /// the maintenance-loop interval (`controller.monitor_interval`), the
  /// wakeup overshoot margin (`controller.overshoot_margin`) and the PNA
  /// Xlet size (`controller.pna_xlet_size`) — previously duplicated as
  /// top-level scalars.
  ControllerOptions controller;
  /// Control-loop policy: which DecisionEngine drives wakeup probability,
  /// trimming and Phi-driven job admission, plus its knobs (see
  /// control::PolicyOptions). The default StaticPolicy reproduces the
  /// pre-engine Controller bit for bit. A policy seed of 0 is replaced by
  /// a named stream derived from `seed` (util::stream_seed), so an
  /// RNG-drawing engine never perturbs population seeding.
  control::PolicyOptions control;
  sim::SimTime task_poll_interval = sim::SimTime::from_seconds(10);
  sim::SimTime task_timeout = sim::SimTime::zero();
  sim::SimTime table_repetition = sim::SimTime::from_millis(500);
  /// Settling time between PNA deployment and the first instance request in
  /// run_job(): lets the agent population launch and heartbeat so the
  /// Controller's idle-pool estimate is populated (the paper's steady-state
  /// assumption — processing nodes are switched on and reporting before an
  /// instance is requested).
  sim::SimTime warmup = sim::SimTime::from_seconds(90);

  /// Heartbeat-aggregation tier: number of regional aggregators (0 = PNAs
  /// report straight to the Controller). See core/aggregator.hpp.
  std::size_t aggregators = 0;
  sim::SimTime aggregator_report_interval = sim::SimTime::from_seconds(10);

  /// Return-channel encoding and pacing: the O(changes) heartbeat path.
  /// Everything here defaults off, leaving the naive O(receivers) tree
  /// event-trajectory-identical to prior versions.
  struct HeartbeatOptions {
    /// Report encoding between the aggregation tier and the Controller.
    /// kDelta keeps per-aggregator membership ledgers and ships only
    /// joins/leaves/expiries plus periodic checksummed resyncs; the
    /// Controller applies epoch-stamped frames incrementally instead of
    /// rescanning its PNA directory every monitor tick.
    HeartbeatMode mode = HeartbeatMode::kNaive;
    /// Delta mode: every Nth frame per aggregator is a full resync.
    std::uint32_t resync_every = 30;
    /// Delta mode: aggregator-side silence horizon before a ledger member
    /// is expired with an explicit delta. Zero = auto (default_heartbeat *
    /// the policy's stale_factor — the same horizon naive pruning uses).
    sim::SimTime expiry = sim::SimTime::zero();
    /// Optional relay tier (delta mode only): leaf aggregators per relay.
    /// Relays batch their leaves' frames into one upstream message per
    /// window, so Controller ingress message rate stays flat as the leaf
    /// tier widens. Zero = leaves report straight to the Controller.
    std::size_t tree_fanin = 0;
    /// Pace heartbeats: defer every beat to the agent's deterministic
    /// phase slot within the pacing window (coalescing bursts), and
    /// phase-jitter the aggregators' flush boundaries. Phases come from
    /// dedicated named RNG streams, so unpaced trajectories are unchanged.
    bool paced = false;
    /// Pacing window; zero = auto (min(aggregator_report_interval,
    /// controller.default_heartbeat)).
    sim::SimTime pace_window = sim::SimTime::zero();
  };
  HeartbeatOptions heartbeat;

  /// Constrained return channel: finite bandwidth and bounded queues on
  /// the PNA -> aggregator -> Controller reporting path (deterministic
  /// tail drop past the queue bound). Disabled = the legacy
  /// well-provisioned server links, byte-identical trajectories.
  struct ReturnChannelOptions {
    bool enabled = false;
    /// Aggregator access link (uplink carries reports to the Controller,
    /// downlink absorbs the PNA heartbeat fan-in).
    util::BitRate aggregator_uplink = util::BitRate::from_mbps(2.0);
    util::BitRate aggregator_downlink = util::BitRate::from_mbps(8.0);
    /// Controller ingress capacity for the consolidated reports.
    util::BitRate controller_downlink = util::BitRate::from_mbps(16.0);
    /// Per-direction queue bound, in seconds of committed serialization
    /// backlog; exceeding it tail-drops deterministically.
    sim::SimTime queue_limit = sim::SimTime::from_seconds(2);
  };
  ReturnChannelOptions return_channel;

  std::optional<ChurnOptions> churn;  ///< nullopt = static population
  std::uint64_t seed = 42;

  /// Sharded parallel event kernel: number of worker shards the receiver
  /// population is partitioned across (see sim/sharded.hpp). 1 = the
  /// classic single-threaded kernel, event-trajectory-identical to prior
  /// versions; >1 runs the shards in parallel threads under a conservative
  /// time-window barrier (deterministic for a fixed shard count, but a
  /// different count yields a different — equally valid — trajectory).
  /// Requires kDtvCarousel when >1.
  std::size_t shards = 1;
  /// Conservative window width for shards > 1. Zero = auto: the minimum
  /// cross-shard delivery latency (receiver vs server propagation delay),
  /// capped at 5 ms so boundary clamping never exceeds the shortest wire.
  sim::SimTime window = sim::SimTime::zero();

  /// Broadcast fan-out fast path: population-shared decoded control
  /// messages with digest-memoized signature verification (one keyed hash
  /// per broadcast instead of one per receiver) and pooled heartbeat
  /// messages (zero steady-state allocation). Off = every agent decodes
  /// and verifies independently — the pre-fast-path behaviour, kept as
  /// the A/B baseline for benches and byte-identical determinism tests.
  bool fanout_fast_path = true;

  /// Observability. Instrumentation counters are always live (they are
  /// plain increments); this controls the registry/sampler/tracer harness.
  struct ObsOptions {
    /// Build the metrics registry, sampler and tracer. Off = run_job
    /// returns an empty MetricsSnapshot and no sampling timers run.
    bool enabled = true;
    /// Sim-time cadence of the series sampler.
    sim::SimTime sample_interval = sim::SimTime::from_seconds(10);
    /// Cap per series; further points are counted as dropped.
    std::size_t max_series_points = 1 << 16;
    /// Completed trace spans retained for export.
    std::size_t max_spans = 4096;
    /// Causal flight recorder: record every protocol hop (request ->
    /// format -> carousel -> receipt -> join -> heartbeat -> dispatch ->
    /// result) as a trace event and carry trace contexts on the wire.
    /// Off by default — the per-hop emit is cheap but not free, and the
    /// acceptance contract is "disabled costs nothing".
    bool trace = false;
    /// Ring capacity of the flight recorder, in events; the oldest events
    /// are overwritten when a run outgrows it.
    std::size_t trace_capacity = 1 << 16;
    /// Kernel wall-clock profiler (see obs/profiler.hpp): per-shard
    /// execute / barrier / drain / global phase attribution exported as
    /// `oddci.profile.v1`. Wall-clock data never reaches the metrics
    /// snapshot or Chrome trace, so seeded exports stay byte-identical
    /// with this on or off. Works with obs.enabled false too (the
    /// profiler needs no registry).
    bool profile = false;
    /// Test hook for the health auditor: under-report this many injected
    /// message losses in the conservation ledger, forcing a seeded
    /// violation (exercises the runner's nonzero-exit path). 0 = honest.
    std::uint64_t health_tamper_lost = 0;
  };
  ObsOptions obs;

  /// Deterministic fault injection and control-plane recovery (see
  /// src/fault/fault.hpp). Disabled by default; with `fault.enabled`
  /// false the system's event trajectory is identical to a build without
  /// the subsystem — no extra rng draws, timers, messages, or metric
  /// cells.
  fault::FaultOptions fault;

  /// Byzantine defense: k-way redundant dispatch with quorum voting,
  /// seeded spot checks, and the reputation ledger (see core/verify.hpp).
  /// Disabled by default; with `verify.enabled` false the Backend never
  /// constructs a Verifier and the dispatch path is byte-identical to the
  /// pre-verification tree.
  VerifyOptions verify;

  void validate() const;
};

/// Metrics of one job executed over one instance.
struct RunResult {
  /// Time from the instance request until the target size was reached (the
  /// measured wakeup overhead W); <0 if the target was never reached.
  double wakeup_seconds = -1.0;
  /// Time from the instance request until the last result arrived; <0 if
  /// the job did not finish before the deadline.
  double makespan_seconds = -1.0;
  bool completed = false;
  /// False when Phi-driven admission (control.min_suitability > 0)
  /// deferred the job: no instance was requested, and every other field
  /// keeps its "never ran" default.
  bool admitted = true;
  JobMetrics job;
  /// Control-plane and traffic counter views, snapshotted at job end.
  /// These mirror `metrics` (same registry cells) under the legacy field
  /// names so existing callers compile unchanged.
  Controller::Stats controller;
  net::NetworkStats network;
  std::size_t final_instance_size = 0;
  /// Full metrics snapshot: counters, gauges, histograms (join/acquire/task
  /// latency), sampled series (instance size, idle pool, heartbeat rate)
  /// and trace spans. Empty when SystemConfig::obs.enabled is false.
  obs::MetricsSnapshot metrics;
  /// Conservation-invariant audit at run end (plus periodic samples during
  /// the run). Empty — trivially ok() — when obs is disabled.
  obs::HealthReport health;

  /// Efficiency per the paper's Eq. (2): E = n * p / (M * N) with p the
  /// per-task time on the member device (pass the *device-scaled* value).
  [[nodiscard]] double efficiency(std::size_t n, double device_task_seconds,
                                  std::size_t node_count) const;
};

class OddciSystem {
 public:
  explicit OddciSystem(const SystemConfig& config);
  ~OddciSystem();

  OddciSystem(const OddciSystem&) = delete;
  OddciSystem& operator=(const OddciSystem&) = delete;

  /// The control shard's kernel (shard 0) — the only shard at K = 1.
  [[nodiscard]] sim::Simulation& simulation() { return sharded_->control(); }
  /// The sharded kernel wrapper (always present; K = 1 delegates through).
  [[nodiscard]] sim::ShardedSimulation& kernel() { return *sharded_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  /// Broadcast medium `i` (the first by default). Throws std::out_of_range
  /// for an invalid index instead of silently returning the front.
  [[nodiscard]] broadcast::BroadcastMedium& channel(std::size_t i = 0);
  [[nodiscard]] const std::vector<std::unique_ptr<broadcast::BroadcastMedium>>&
  channels() const {
    return channels_;
  }
  [[nodiscard]] Controller& controller() { return *controller_; }
  [[nodiscard]] Provider& provider() { return *provider_; }
  [[nodiscard]] Backend& backend() { return *backend_; }
  [[nodiscard]] ChurnProcess* churn() { return churn_.get(); }
  [[nodiscard]] const std::vector<std::unique_ptr<HeartbeatAggregator>>&
  aggregators() const {
    return aggregators_;
  }
  /// Relay tier (heartbeat.tree_fanin > 0 only; empty otherwise).
  [[nodiscard]] const std::vector<std::unique_ptr<AggregatorRelay>>& relays()
      const {
    return relays_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<dtv::Receiver>>& receivers()
      const {
    return receivers_;
  }
  [[nodiscard]] const SystemConfig& config() const { return config_; }

  /// Metrics registry holding every instrumented cell of this system;
  /// nullptr when SystemConfig::obs.enabled is false.
  [[nodiscard]] obs::MetricsRegistry* metrics() { return registry_.get(); }
  [[nodiscard]] const obs::MetricsRegistry* metrics() const {
    return registry_.get();
  }
  /// Snapshot of every metric at the current sim time (empty if obs is
  /// disabled).
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;
  /// The sim-time series sampler; nullptr when obs is disabled.
  [[nodiscard]] obs::Sampler* sampler() { return sampler_.get(); }
  /// The causal flight recorder; nullptr unless SystemConfig::obs.trace.
  /// Under a sharded kernel this is shard 0's ring (control-plane events);
  /// use flight_recorders() for the full per-shard set.
  [[nodiscard]] obs::FlightRecorder* flight_recorder() {
    if (recorder_) return recorder_.get();
    return shard_recorders_.empty() ? nullptr : shard_recorders_.front().get();
  }
  [[nodiscard]] const obs::FlightRecorder* flight_recorder() const {
    if (recorder_) return recorder_.get();
    return shard_recorders_.empty() ? nullptr : shard_recorders_.front().get();
  }
  /// Every live recorder ring, shard order — merge with
  /// obs::merge_events() for a population-wide chronological export.
  /// Empty unless SystemConfig::obs.trace.
  [[nodiscard]] std::vector<const obs::FlightRecorder*> flight_recorders()
      const;

  /// Kernel wall-clock profiler; nullptr unless SystemConfig::obs.profile.
  [[nodiscard]] obs::KernelProfiler* profiler() { return profiler_.get(); }
  [[nodiscard]] const obs::KernelProfiler* profiler() const {
    return profiler_.get();
  }
  /// Profile snapshot including per-shard kernel event counters. Default
  /// (empty) when no profiler is attached. Call between runs.
  [[nodiscard]] obs::ProfileSnapshot profile_snapshot() const;

  /// Conservation ledger over the current counters (see obs/health.hpp).
  /// Heartbeat/pool balances need the obs counter wiring, so call only
  /// with SystemConfig::obs.enabled; the auditor and tests use this.
  [[nodiscard]] obs::HealthLedger health_ledger() const;

  /// Fan-out fast-path components; nullptr when
  /// SystemConfig::fanout_fast_path is false.
  [[nodiscard]] const broadcast::VerifyCache* verify_cache() const {
    return verify_cache_.get();
  }
  [[nodiscard]] const net::MessagePool<HeartbeatMessage>* heartbeat_pool()
      const {
    return heartbeat_pool_.get();
  }

  /// Fault injector driving the configured fault plan; nullptr when
  /// SystemConfig::fault.enabled is false.
  [[nodiscard]] fault::FaultInjector* fault_injector() {
    return injector_.get();
  }
  [[nodiscard]] const fault::FaultInjector* fault_injector() const {
    return injector_.get();
  }

  /// Backend-side Byzantine defense; nullptr when
  /// SystemConfig::verify.enabled is false.
  [[nodiscard]] Verifier* verifier() { return verifier_.get(); }
  [[nodiscard]] const Verifier* verifier() const { return verifier_.get(); }

  /// Seeded adversarial-profile table; nullptr unless fault injection is
  /// on with a nonzero byzantine_* knob.
  [[nodiscard]] const fault::ByzantineTable* byzantine_table() const {
    return byz_table_.get();
  }

  /// Number of PNAs currently busy (joined or joining an instance).
  [[nodiscard]] std::size_t busy_pna_count() const;

  /// Convenience: deploy the PNA (if not yet), request an instance of
  /// `instance_size` nodes, submit `job`, run until completion or
  /// `deadline`, and collect the metrics. Leaves the instance dismantled.
  RunResult run_job(const workload::Job& job, std::size_t instance_size,
                    sim::SimTime deadline = sim::SimTime::from_hours(24));

 private:
  void wire_observability();
  /// FaultInjector's PNA-fault callback: pick a victim agent (preferring a
  /// busy one so crashes hit in-flight tasks) and crash or hang it.
  bool apply_pna_fault(std::uint64_t pick, bool hang, sim::SimTime duration);

  SystemConfig config_;
  std::unique_ptr<sim::ShardedSimulation> sharded_;
  /// The control shard's kernel — `&sharded_->control()`. Kept as a raw
  /// alias so single-kernel call sites read unchanged.
  sim::Simulation* simulation_ = nullptr;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<broadcast::BroadcastMedium>> channels_;
  std::unique_ptr<ContentStore> store_;
  /// Fast-path components (only with config_.fanout_fast_path); declared
  /// before the receivers so they outlive every agent holding a pointer.
  std::unique_ptr<broadcast::VerifyCache> verify_cache_;
  std::unique_ptr<net::MessagePool<HeartbeatMessage>> heartbeat_pool_;
  // --- per-shard state (shards > 1 only; empty otherwise) -------------------
  // Each worker shard gets private instances of everything an agent touches
  // on the hot path — counters, histograms, verify cache, heartbeat pool,
  // recovery block, flight-recorder ring, loss RNG — so no two window
  // threads ever share a mutable cell. All declared before receivers_:
  // agents hold pointers into these for their whole life.
  std::vector<obs::PnaCounters> shard_pna_counters_;
  std::vector<obs::LogHistogram> shard_acquire_latency_;
  std::vector<std::unique_ptr<obs::FlightRecorder>> shard_recorders_;
  std::vector<std::unique_ptr<broadcast::VerifyCache>> shard_verify_caches_;
  std::vector<std::unique_ptr<net::MessagePool<HeartbeatMessage>>>
      shard_heartbeat_pools_;
  std::vector<PnaEnvironment::Recovery> shard_recoveries_;
  std::vector<PnaEnvironment> shard_envs_;
  /// Per-shard carousel section-loss streams (K > 1): the channel's own
  /// stream only serves its shard-0 listeners.
  std::vector<util::Random> shard_loss_rngs_;
  std::unique_ptr<Controller> controller_;
  /// Relay tier declared before the leaves: leaves hold its node ids.
  std::vector<std::unique_ptr<AggregatorRelay>> relays_;
  std::vector<std::unique_ptr<HeartbeatAggregator>> aggregators_;
  std::unique_ptr<Provider> provider_;
  /// Byzantine-defense verifier (only with config_.verify.enabled).
  /// Declared before the Backend, which holds a raw pointer into it.
  std::unique_ptr<Verifier> verifier_;
  std::unique_ptr<Backend> backend_;
  /// Fault plan + wire interposer (only with config_.fault.enabled).
  std::unique_ptr<fault::FaultInjector> injector_;
  /// Adversarial PNA profile table (fault.byzantine_* knobs) and the
  /// nullable environment block the agents read it through; both declared
  /// before receivers_, whose agents hold pointers into them.
  std::unique_ptr<fault::ByzantineTable> byz_table_;
  PnaEnvironment::Byzantine byz_block_;
  std::vector<std::unique_ptr<dtv::Receiver>> receivers_;
  PnaEnvironment pna_env_;
  /// PNA-side recovery parameters + counters; pna_env_.recovery points
  /// here when fault injection is enabled.
  PnaEnvironment::Recovery pna_recovery_;
  std::unique_ptr<ChurnProcess> churn_;
  /// K > 1: one churn process per shard, each driving its shard's receivers
  /// on its shard's kernel (churn_ stays null).
  std::vector<std::unique_ptr<ChurnProcess>> churn_procs_;
  broadcast::SigningKey key_ = 0;

  // Observability harness (only when config_.obs.enabled). Declared after
  // the components it links so destruction detaches cleanly.
  std::unique_ptr<obs::MetricsRegistry> registry_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::Sampler> sampler_;
  /// Wall-clock profiler (obs.profile) and conservation auditor
  /// (obs.enabled); both read-only with respect to the event trajectory.
  std::unique_ptr<obs::KernelProfiler> profiler_;
  std::unique_ptr<obs::HealthAuditor> health_;
  obs::PnaCounters pna_counters_;
  obs::BroadcastCounters broadcast_counters_;
  obs::LogHistogram pna_acquire_latency_{1e-3};
};

}  // namespace oddci::core
